#pragma once
/// \file exception.hpp
/// miniSYCL error type, mirroring sycl::exception / errc.

#include <stdexcept>
#include <string>

namespace sycl {

enum class errc {
  success = 0,
  runtime,
  kernel,
  invalid,
  nd_range_error,
  feature_not_supported,
};

class exception : public std::runtime_error {
 public:
  exception(errc code, const std::string& what_arg)
      : std::runtime_error(what_arg), code_(code) {}

  [[nodiscard]] errc code() const noexcept { return code_; }

 private:
  errc code_;
};

}  // namespace sycl
