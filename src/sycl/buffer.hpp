#pragma once
/// \file buffer.hpp
/// miniSYCL buffers and accessors. Because the executor is the host,
/// buffers reference (or own) host memory directly and accessors are
/// thin pointer+range views; SYCL copy-back semantics degenerate to
/// no-ops while the API shape is preserved.
///
/// What is *not* a no-op anymore: constructing an accessor inside a
/// command group registers (base pointer, access_mode) with the
/// handler, which is how the out-of-order queue derives its dependency
/// DAG; and buffer destruction / host_accessor construction are host
/// synchronization points that block until no in-flight command still
/// references the storage (SYCL 2020 buffer semantics).

#include <cstddef>
#include <memory>
#include <vector>

#include "sycl/access.hpp"
#include "sycl/detail/scheduler.hpp"
#include "sycl/handler.hpp"
#include "sycl/range.hpp"

namespace sycl {

template <typename T, int Dims = 1>
class buffer {
 public:
  /// Buffer over existing host memory (no copy; writes are visible
  /// immediately, equivalent to a same-context host buffer).
  buffer(T* host_data, range<Dims> r) : data_(host_data), range_(r) {}

  /// Buffer owning zero-initialized storage.
  explicit buffer(range<Dims> r)
      : owned_(std::make_shared<std::vector<T>>(r.size())),
        data_(owned_->data()),
        range_(r) {}

  buffer(const buffer&) = default;
  buffer& operator=(const buffer&) = default;

  /// Destruction waits for every in-flight command that accesses this
  /// buffer's storage - the point where SYCL guarantees writes are
  /// visible to the host.
  ~buffer() {
    if (data_ != nullptr) detail::sync_host_access(data_);
  }

  [[nodiscard]] range<Dims> get_range() const { return range_; }
  [[nodiscard]] std::size_t size() const { return range_.size(); }
  [[nodiscard]] std::size_t byte_size() const { return size() * sizeof(T); }

  [[nodiscard]] T* data() const { return data_; }

 private:
  std::shared_ptr<std::vector<T>> owned_;  ///< null when wrapping host memory
  T* data_ = nullptr;
  range<Dims> range_;
};

template <typename T, int Dims = 1>
class accessor {
 public:
  accessor(buffer<T, Dims>& buf, handler& h, read_only_tag)
      : accessor(buf, h, access_mode::read) {}
  accessor(buffer<T, Dims>& buf, handler& h, write_only_tag)
      : accessor(buf, h, access_mode::write) {}
  accessor(buffer<T, Dims>& buf, handler& h, read_write_tag = {})
      : accessor(buf, h, access_mode::read_write) {}

  [[nodiscard]] T& operator[](const id<Dims>& i) const {
    return data_[detail::linearize(i, range_)];
  }
  [[nodiscard]] T& operator[](std::size_t i) const
    requires(Dims == 1)
  {
    return data_[i];
  }

  [[nodiscard]] range<Dims> get_range() const { return range_; }
  [[nodiscard]] access_mode mode() const { return mode_; }
  [[nodiscard]] T* get_pointer() const { return data_; }

 private:
  accessor(buffer<T, Dims>& buf, handler& h, access_mode m)
      : data_(buf.data()), range_(buf.get_range()), mode_(m) {
    h.require(static_cast<const void*>(data_), mode_);
  }

  T* data_;
  range<Dims> range_;
  access_mode mode_;
};

/// Host-side accessor (outside command groups). Construction is a
/// synchronization point: it blocks until no in-flight command still
/// references the buffer's storage.
template <typename T, int Dims = 1>
class host_accessor {
 public:
  explicit host_accessor(buffer<T, Dims>& buf)
      : data_(buf.data()), range_(buf.get_range()) {
    detail::sync_host_access(data_);
  }

  [[nodiscard]] T& operator[](const id<Dims>& i) const {
    return data_[detail::linearize(i, range_)];
  }
  [[nodiscard]] T& operator[](std::size_t i) const
    requires(Dims == 1)
  {
    return data_[i];
  }

 private:
  T* data_;
  range<Dims> range_;
};

}  // namespace sycl
