// Unit tests for miniSYCL: ranges, flat and nd_range parallel_for,
// barriers, local memory, reductions, atomics, buffers and USM.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "sycl/sycl.hpp"

TEST(Range, SizeAndIndexing) {
  sycl::range<3> r(4, 5, 6);
  EXPECT_EQ(r.size(), 120u);
  EXPECT_EQ(r[0], 4u);
  EXPECT_EQ(r[2], 6u);
}

TEST(Range, LinearizeRoundTrip) {
  sycl::range<3> r(3, 4, 5);
  for (std::size_t lin = 0; lin < r.size(); ++lin) {
    auto idx = sycl::detail::delinearize(lin, r);
    EXPECT_EQ(sycl::detail::linearize(idx, r), lin);
  }
}

TEST(Range, LastDimensionMovesFastest) {
  sycl::range<2> r(2, 8);
  auto i0 = sycl::detail::delinearize(0, r);
  auto i1 = sycl::detail::delinearize(1, r);
  EXPECT_EQ(i0[1] + 1, i1[1]);
  EXPECT_EQ(i0[0], i1[0]);
}

TEST(NdRange, RejectsNonDividingLocal) {
  EXPECT_THROW(sycl::nd_range<1>(sycl::range<1>(100), sycl::range<1>(32)),
               std::invalid_argument);
  EXPECT_NO_THROW(sycl::nd_range<1>(sycl::range<1>(128), sycl::range<1>(32)));
}

TEST(Queue, FlatParallelForVisitsAllItems1D) {
  sycl::queue q;
  std::vector<int> v(1000, 0);
  int* p = v.data();
  q.parallel_for(sycl::range<1>(1000), [=](sycl::item<1> it) {
    p[it.get_linear_id()] += static_cast<int>(it[0]);
  });
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(v[static_cast<std::size_t>(i)], i);
}

TEST(Queue, FlatParallelForAcceptsIdKernel) {
  sycl::queue q;
  std::vector<int> v(64, 0);
  int* p = v.data();
  q.parallel_for(sycl::range<1>(64), [=](sycl::id<1> i) { p[i[0]] = 7; });
  for (int x : v) EXPECT_EQ(x, 7);
}

TEST(Queue, FlatParallelFor3D) {
  sycl::queue q;
  const std::size_t nx = 5, ny = 6, nz = 7;
  std::vector<int> v(nx * ny * nz, 0);
  int* p = v.data();
  q.parallel_for(sycl::range<3>(nx, ny, nz), [=](sycl::item<3> it) {
    p[(it[0] * ny + it[1]) * nz + it[2]] += 1;
  });
  for (int x : v) EXPECT_EQ(x, 1);
}

TEST(Queue, NdRangeGlobalIdsCoverSpace) {
  sycl::queue q;
  const std::size_t n = 256;
  std::vector<int> hits(n, 0);
  int* p = hits.data();
  q.parallel_for(sycl::nd_range<1>(sycl::range<1>(n), sycl::range<1>(32)),
                 [=](sycl::nd_item<1> it) { p[it.get_global_id(0)] += 1; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(Queue, NdRangeGroupDecomposition) {
  sycl::queue q;
  std::vector<int> group_of(64, -1), local_of(64, -1);
  int* g = group_of.data();
  int* l = local_of.data();
  q.parallel_for(sycl::nd_range<1>(sycl::range<1>(64), sycl::range<1>(16)),
                 [=](sycl::nd_item<1> it) {
                   g[it.get_global_id(0)] = static_cast<int>(it.get_group(0));
                   l[it.get_global_id(0)] =
                       static_cast<int>(it.get_local_id(0));
                 });
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(group_of[i], static_cast<int>(i / 16));
    EXPECT_EQ(local_of[i], static_cast<int>(i % 16));
  }
}

TEST(Queue, NdRange2DShape) {
  sycl::queue q;
  const std::size_t ny = 8, nx = 12;
  std::vector<int> v(ny * nx, 0);
  int* p = v.data();
  q.parallel_for(
      sycl::nd_range<2>(sycl::range<2>(ny, nx), sycl::range<2>(2, 4)),
      [=](sycl::nd_item<2> it) {
        p[it.get_global_id(0) * nx + it.get_global_id(1)] += 1;
      });
  for (int x : v) EXPECT_EQ(x, 1);
}

TEST(Queue, WorkGroupSizeLimitEnforced) {
  sycl::device_profile prof;
  prof.max_work_group_size = 64;
  sycl::queue q{sycl::device(prof)};
  EXPECT_THROW(
      q.parallel_for(sycl::nd_range<1>(sycl::range<1>(256), sycl::range<1>(128)),
                     [](sycl::nd_item<1>) {}),
      sycl::exception);
}

TEST(Queue, BarrierAndLocalMemoryReverse) {
  // Stage values into local memory, barrier, read back reversed.
  sycl::queue q;
  const std::size_t n = 128, wg = 16;
  std::vector<int> out(n, 0);
  int* p = out.data();
  sycl::local_accessor<int, 1> scratch{sycl::range<1>(wg)};
  q.parallel_for(sycl::nd_range<1>(sycl::range<1>(n), sycl::range<1>(wg)),
                 [=](sycl::nd_item<1> it) {
                   const std::size_t li = it.get_local_id(0);
                   scratch[li] = static_cast<int>(it.get_global_id(0));
                   it.barrier();
                   p[it.get_global_id(0)] = scratch[wg - 1 - li];
                 });
  for (std::size_t g = 0; g < n / wg; ++g)
    for (std::size_t li = 0; li < wg; ++li)
      EXPECT_EQ(out[g * wg + li], static_cast<int>(g * wg + (wg - 1 - li)));
}

TEST(Queue, LocalMemoryIsZeroInitialisedPerGroup) {
  sycl::queue q;
  const std::size_t n = 64, wg = 8;
  std::vector<int> first(n / wg, -1);
  int* p = first.data();
  sycl::local_accessor<int, 1> counter{sycl::range<1>(1)};
  q.parallel_for(sycl::nd_range<1>(sycl::range<1>(n), sycl::range<1>(wg)),
                 [=](sycl::nd_item<1> it) {
                   if (it.get_local_id(0) == 0)
                     p[it.get_group(0)] = counter[0];  // must read 0
                 });
  for (int v : first) EXPECT_EQ(v, 0);
}

TEST(Reduction, FlatSum) {
  sycl::queue q;
  double sum = 0.0;
  q.parallel_for(sycl::range<1>(1000),
                 sycl::reduction(&sum, sycl::plus<double>{}),
                 [=](sycl::item<1> it, auto& r) {
                   r += static_cast<double>(it[0] + 1);
                 });
  EXPECT_DOUBLE_EQ(sum, 1000.0 * 1001.0 / 2.0);
}

TEST(Reduction, CombinesWithExistingValue) {
  sycl::queue q;
  double sum = 100.0;
  q.parallel_for(sycl::range<1>(10), sycl::reduction(&sum, sycl::plus<double>{}),
                 [=](sycl::item<1>, auto& r) { r += 1.0; });
  EXPECT_DOUBLE_EQ(sum, 110.0);
}

TEST(Reduction, Minimum) {
  sycl::queue q;
  double mn = std::numeric_limits<double>::max();
  q.parallel_for(sycl::range<1>(100),
                 sycl::reduction(&mn, sycl::minimum<double>{}),
                 [=](sycl::item<1> it, auto& r) {
                   r.combine(100.0 - static_cast<double>(it[0]));
                 });
  EXPECT_DOUBLE_EQ(mn, 1.0);
}

TEST(Reduction, Maximum) {
  sycl::queue q;
  double mx = std::numeric_limits<double>::lowest();
  q.parallel_for(sycl::range<1>(100),
                 sycl::reduction(&mx, sycl::maximum<double>{}),
                 [=](sycl::item<1> it, auto& r) {
                   r.combine(static_cast<double>(it[0]));
                 });
  EXPECT_DOUBLE_EQ(mx, 99.0);
}

TEST(Reduction, NdRangeSum) {
  sycl::queue q;
  double sum = 0.0;
  q.parallel_for(sycl::nd_range<1>(sycl::range<1>(512), sycl::range<1>(64)),
                 sycl::reduction(&sum, sycl::plus<double>{}),
                 [=](sycl::nd_item<1>, auto& r) { r += 1.0; });
  EXPECT_DOUBLE_EQ(sum, 512.0);
}

TEST(Reduction, TwoDimensionalIterationSpace) {
  sycl::queue q;
  double sum = 0.0;
  q.parallel_for(sycl::range<2>(20, 30),
                 sycl::reduction(&sum, sycl::plus<double>{}),
                 [=](sycl::item<2>, auto& r) { r += 1.0; });
  EXPECT_DOUBLE_EQ(sum, 600.0);
}

TEST(Atomics, ConcurrentFloatFetchAdd) {
  sycl::queue q;
  double total = 0.0;
  double* t = &total;
  q.parallel_for(sycl::range<1>(10000), [=](sycl::item<1>) {
    sycl::atomic_ref<double> a(*t);
    a.fetch_add(1.0);
  });
  EXPECT_DOUBLE_EQ(total, 10000.0);
}

TEST(Atomics, FetchMinMax) {
  sycl::queue q;
  int mn = 1 << 30, mx = -(1 << 30);
  int* pmn = &mn;
  int* pmx = &mx;
  q.parallel_for(sycl::range<1>(1000), [=](sycl::item<1> it) {
    const int v = static_cast<int>(it[0]) - 500;
    sycl::atomic_ref<int>(*pmn).fetch_min(v);
    sycl::atomic_ref<int>(*pmx).fetch_max(v);
  });
  EXPECT_EQ(mn, -500);
  EXPECT_EQ(mx, 499);
}

TEST(Buffer, AccessorReadsAndWritesHostData) {
  std::vector<float> host(100);
  std::iota(host.begin(), host.end(), 0.0f);
  sycl::queue q;
  {
    sycl::buffer<float, 1> buf(host.data(), sycl::range<1>(100));
    q.submit([&](sycl::handler& h) {
      sycl::accessor<float, 1> acc(buf, h, sycl::read_write);
      h.parallel_for(sycl::range<1>(100),
                     [=](sycl::item<1> it) { acc[it.get_id()] *= 2.0f; });
    });
  }
  for (std::size_t i = 0; i < 100; ++i)
    EXPECT_FLOAT_EQ(host[i], 2.0f * static_cast<float>(i));
}

TEST(Buffer, OwnedBufferZeroInitialised) {
  sycl::buffer<double, 2> buf(sycl::range<2>(4, 4));
  sycl::host_accessor<double, 2> acc(buf);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j)
      EXPECT_EQ((acc[sycl::id<2>(i, j)]), 0.0);
}

TEST(Usm, AllocFreeTracksOutstanding) {
  sycl::queue q;
  const std::size_t before = sycl::usm_outstanding();
  double* p = sycl::malloc_device<double>(256, q);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(sycl::usm_outstanding(), before + 1);
  q.fill(p, 3.0, 256);
  EXPECT_DOUBLE_EQ(p[255], 3.0);
  sycl::free(p, q);
  EXPECT_EQ(sycl::usm_outstanding(), before);
}

TEST(Usm, MemcpyCopiesBytes) {
  sycl::queue q;
  std::vector<int> src(64);
  std::iota(src.begin(), src.end(), 5);
  int* dst = sycl::malloc_shared<int>(64, q);
  q.memcpy(dst, src.data(), 64 * sizeof(int));
  for (int i = 0; i < 64; ++i) EXPECT_EQ(dst[static_cast<std::size_t>(i)], src[static_cast<std::size_t>(i)]);
  sycl::free(dst, q);
}

TEST(LaunchLog, RecordsShapesAndFlatness) {
  auto& log = sycl::launch_log::instance();
  log.clear();
  log.set_enabled(true);
  sycl::queue q;
  q.parallel_for("flat_kernel", sycl::range<2>(8, 16), [](sycl::item<2>) {});
  q.parallel_for("nd_kernel",
                 sycl::nd_range<2>(sycl::range<2>(8, 16), sycl::range<2>(2, 8)),
                 [](sycl::nd_item<2>) {});
  log.set_enabled(false);
  auto recs = log.snapshot();
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].kernel_name, "flat_kernel");
  EXPECT_FALSE(recs[0].local.has_value());
  EXPECT_EQ(recs[0].global[1], 16u);
  EXPECT_EQ(recs[1].kernel_name, "nd_kernel");
  ASSERT_TRUE(recs[1].local.has_value());
  EXPECT_EQ((*recs[1].local)[0], 2u);
  log.clear();
}

TEST(LaunchLog, DisabledLogRecordsNothing) {
  auto& log = sycl::launch_log::instance();
  log.clear();
  sycl::queue q;
  q.parallel_for(sycl::range<1>(8), [](sycl::item<1>) {});
  EXPECT_EQ(log.size(), 0u);
}

TEST(SingleTask, Runs) {
  sycl::queue q;
  int x = 0;
  q.single_task([&] { x = 9; });
  EXPECT_EQ(x, 9);
}

// Parameterized sweep: nd_range results must be identical for any legal
// work-group size (SYCL portability invariant the whole study rests on).
class WorkGroupSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(WorkGroupSweep, SaxpyIndependentOfGroupSize) {
  const std::size_t wg = GetParam();
  const std::size_t n = 768;  // divisible by all tested sizes
  sycl::queue q;
  std::vector<float> x(n, 2.0f), y(n, 1.0f);
  float* xp = x.data();
  float* yp = y.data();
  q.parallel_for(sycl::nd_range<1>(sycl::range<1>(n), sycl::range<1>(wg)),
                 [=](sycl::nd_item<1> it) {
                   const std::size_t i = it.get_global_id(0);
                   yp[i] = 3.0f * xp[i] + yp[i];
                 });
  for (float v : y) EXPECT_FLOAT_EQ(v, 7.0f);
}

INSTANTIATE_TEST_SUITE_P(Sizes, WorkGroupSweep,
                         ::testing::Values(1, 2, 4, 8, 16, 32, 64, 128, 256));

// ---------------------------------------------------------------------
// Out-of-order queue: accessor-derived dependency DAG, real
// synchronization points, asynchronous error capture.

namespace {

/// Declare a raw allocation in a command group's footprint.
void touch(sycl::handler& h, const void* p, sycl::access_mode m) {
  h.require(p, m);
}

}  // namespace

TEST(OutOfOrder, RawChainExecutesInSubmissionOrder) {
  sycl::queue q;
  std::vector<int> v(64, 0);
  int* p = v.data();
  // write -> read-modify -> read-modify: each step depends on the last.
  q.submit([&](sycl::handler& h) {
    touch(h, p, sycl::access_mode::write);
    h.parallel_for(sycl::range<1>(v.size()),
                   [p](sycl::id<1> i) { p[i[0]] = 1; });
  });
  for (int step = 0; step < 4; ++step) {
    q.submit([&](sycl::handler& h) {
      touch(h, p, sycl::access_mode::read_write);
      h.parallel_for(sycl::range<1>(v.size()),
                     [p](sycl::id<1> i) { p[i[0]] = 2 * p[i[0]] + 1; });
    });
  }
  q.wait();
  // 1 -> 3 -> 7 -> 15 -> 31: any reordering gives a different value.
  for (int x : v) EXPECT_EQ(x, 31);
}

TEST(OutOfOrder, IndependentCommandsRunConcurrently) {
  // Two commands with disjoint footprints must be in flight at the same
  // time: each raises its flag and then waits (with a deadline) to see
  // the other's. A serializing scheduler times out on both.
  sycl::queue q;
  int a = 0, b = 0;
  std::atomic<bool> fa{false}, fb{false};
  std::atomic<bool> saw_a{false}, saw_b{false};
  auto handshake = [](std::atomic<bool>& mine, std::atomic<bool>& other,
                      std::atomic<bool>& saw) {
    mine.store(true);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (std::chrono::steady_clock::now() < deadline) {
      if (other.load()) {
        saw.store(true);
        return;
      }
      std::this_thread::yield();
    }
  };
  q.submit([&](sycl::handler& h) {
    touch(h, &a, sycl::access_mode::write);
    h.single_task([&] { handshake(fa, fb, saw_a); });
  });
  q.submit([&](sycl::handler& h) {
    touch(h, &b, sycl::access_mode::write);
    h.single_task([&] { handshake(fb, fa, saw_b); });
  });
  q.wait();
  EXPECT_TRUE(saw_a.load());
  EXPECT_TRUE(saw_b.load());
}

TEST(OutOfOrder, WarHazardDefersWriterUntilReaderFinishes) {
  sycl::queue q;
  std::vector<int> src(256);
  std::iota(src.begin(), src.end(), 0);
  std::vector<int> copy(src.size(), -1);
  int* sp = src.data();
  int* cp = copy.data();
  // Slow reader: copies src while stalling, so an unordered writer
  // would race it and corrupt the copy.
  q.submit([&](sycl::handler& h) {
    touch(h, sp, sycl::access_mode::read);
    touch(h, cp, sycl::access_mode::write);
    h.single_task([sp, cp, n = src.size()] {
      for (std::size_t i = 0; i < n; ++i) {
        cp[i] = sp[i];
        if (i % 64 == 0)
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    });
  });
  // Writer conflicts (WAR) and must wait for the reader.
  q.submit([&](sycl::handler& h) {
    touch(h, sp, sycl::access_mode::write);
    h.parallel_for(sycl::range<1>(src.size()),
                   [sp](sycl::id<1> i) { sp[i[0]] = -7; });
  });
  q.wait();
  for (std::size_t i = 0; i < copy.size(); ++i)
    EXPECT_EQ(copy[i], static_cast<int>(i)) << "reader saw the writer";
  for (int x : src) EXPECT_EQ(x, -7);
}

TEST(OutOfOrder, AccessorsDeriveTheFootprint) {
  // Same RAW chain, but the footprint comes from buffer accessors
  // instead of explicit require() calls.
  std::vector<float> host(128, 0.0f);
  {
    sycl::buffer<float, 1> buf(host.data(), sycl::range<1>(host.size()));
    sycl::queue q;
    q.submit([&](sycl::handler& h) {
      sycl::accessor out(buf, h, sycl::write_only);
      h.parallel_for(sycl::range<1>(host.size()),
                     [out](sycl::id<1> i) { out[i[0]] = 2.0f; });
    });
    q.submit([&](sycl::handler& h) {
      sycl::accessor io(buf, h, sycl::read_write);
      h.parallel_for(sycl::range<1>(host.size()),
                     [io](sycl::id<1> i) { io[i[0]] += 3.0f; });
    });
    // Buffer destruction is a synchronization point: no q.wait() needed.
  }
  for (float x : host) EXPECT_FLOAT_EQ(x, 5.0f);
}

TEST(OutOfOrder, HostAccessorSynchronizes) {
  std::vector<int> host(64, 0);
  sycl::buffer<int, 1> buf(host.data(), sycl::range<1>(host.size()));
  sycl::queue q;
  q.submit([&](sycl::handler& h) {
    sycl::accessor out(buf, h, sycl::write_only);
    h.single_task([out, n = host.size()] {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      for (std::size_t i = 0; i < n; ++i) out[i] = 9;
    });
  });
  sycl::host_accessor ha(buf);
  for (std::size_t i = 0; i < host.size(); ++i) EXPECT_EQ(ha[i], 9);
}

TEST(OutOfOrder, UndeclaredFootprintRunsSynchronously) {
  // A command group with no accessors / require / depends_on cannot be
  // placed in the DAG; it must have run by the time submit returns.
  sycl::queue q;
  int x = 0;
  q.submit([&](sycl::handler& h) { h.single_task([&x] { x = 42; }); });
  EXPECT_EQ(x, 42);
}

TEST(OutOfOrder, InOrderPropertyKeepsSynchronousSemantics) {
  sycl::queue q(sycl::property_list{sycl::property::queue::in_order{}});
  EXPECT_TRUE(q.is_in_order());
  int x = 0;
  q.submit([&](sycl::handler& h) {
    h.require(&x, sycl::access_mode::write);
    h.single_task([&x] { x = 7; });
  });
  EXPECT_EQ(x, 7);  // visible immediately: no wait() was issued

  sycl::queue ooo;
  EXPECT_FALSE(ooo.is_in_order());
}

TEST(OutOfOrder, EventWaitRethrowsKernelException) {
  sycl::queue q;
  int x = 0;
  sycl::event ev = q.submit([&](sycl::handler& h) {
    h.require(&x, sycl::access_mode::write);
    h.single_task([] { throw std::runtime_error("boom"); });
  });
  EXPECT_THROW(ev.wait(), std::runtime_error);
  // Consumed: the queue has nothing left to surface.
  EXPECT_NO_THROW(q.wait_and_throw());
}

TEST(OutOfOrder, WaitAndThrowRethrowsWithoutHandler) {
  sycl::queue q;
  int x = 0;
  q.submit([&](sycl::handler& h) {
    h.require(&x, sycl::access_mode::write);
    h.single_task([] { throw std::logic_error("async"); });
  });
  EXPECT_THROW(q.wait_and_throw(), std::logic_error);
}

TEST(OutOfOrder, QueueStaysUsableAfterDeliveredException) {
  // Regression for the resilience paths: after wait_and_throw delivers
  // a kernel exception, the queue, the scheduler DAG and the shared
  // command pool must accept and order new work as if nothing happened.
  sycl::queue q;
  std::vector<int> v(32, 0);
  int* p = v.data();
  q.submit([&](sycl::handler& h) {
    h.require(p, sycl::access_mode::write);
    h.single_task([] { throw std::runtime_error("first wave"); });
  });
  EXPECT_THROW(q.wait_and_throw(), std::runtime_error);

  // Same footprint, new work: a RAW chain that only yields 7 when the
  // dependency edges are honoured.
  q.submit([&](sycl::handler& h) {
    h.require(p, sycl::access_mode::write);
    h.parallel_for(sycl::range<1>(v.size()),
                   [p](sycl::id<1> i) { p[i[0]] = 3; });
  });
  q.submit([&](sycl::handler& h) {
    h.require(p, sycl::access_mode::read_write);
    h.parallel_for(sycl::range<1>(v.size()),
                   [p](sycl::id<1> i) { p[i[0]] = 2 * p[i[0]] + 1; });
  });
  EXPECT_NO_THROW(q.wait_and_throw());
  for (int x : v) ASSERT_EQ(x, 7);

  // Other queues on the same scheduler are unaffected.
  sycl::queue q2;
  int y = 0;
  q2.submit([&](sycl::handler& h) {
    h.require(&y, sycl::access_mode::write);
    h.single_task([&y] { y = 5; });
  });
  EXPECT_NO_THROW(q2.wait_and_throw());
  EXPECT_EQ(y, 5);
}

TEST(OutOfOrder, AsyncHandlerReceivesExceptionList) {
  std::size_t delivered = 0;
  std::string what;
  sycl::queue q([&](sycl::exception_list l) {
    delivered = l.size();
    for (auto& e : l) {
      try {
        std::rethrow_exception(e);
      } catch (const std::exception& ex) {
        what = ex.what();
      }
    }
  });
  int x = 0;
  q.submit([&](sycl::handler& h) {
    h.require(&x, sycl::access_mode::write);
    h.single_task([] { throw std::runtime_error("handled"); });
  });
  EXPECT_NO_THROW(q.wait_and_throw());
  EXPECT_EQ(delivered, 1u);
  EXPECT_EQ(what, "handled");
}

TEST(OutOfOrder, DependsOnOrdersDisjointFootprints) {
  // Two commands with unrelated footprints, ordered only by the event:
  // the second copies what the first (slowly) produced.
  sycl::queue q;
  int* src = sycl::malloc_shared<int>(64, q);
  int* dst = sycl::malloc_shared<int>(64, q);
  sycl::event first = q.submit([&](sycl::handler& h) {
    h.require(src, sycl::access_mode::write);
    h.single_task([src] {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      for (int i = 0; i < 64; ++i) src[i] = i * i;
    });
  });
  q.submit([&](sycl::handler& h) {
    h.require(dst, sycl::access_mode::write);
    h.depends_on(first);
    h.single_task([src, dst] {
      for (int i = 0; i < 64; ++i) dst[i] = src[i];
    });
  });
  q.wait();
  for (int i = 0; i < 64; ++i) EXPECT_EQ(dst[i], i * i);
  sycl::free(src, q);
  sycl::free(dst, q);
}

TEST(OutOfOrder, CommandRecordsCarryDagAndTimestamps) {
  auto& log = sycl::launch_log::instance();
  log.clear();
  log.set_enabled(true);
  sycl::queue q;
  std::vector<double> v(32, 0.0);
  double* p = v.data();
  q.submit([&](sycl::handler& h) {
    touch(h, p, sycl::access_mode::write);
    h.single_task([p] { p[0] = 1.0; });
  });
  q.submit([&](sycl::handler& h) {
    touch(h, p, sycl::access_mode::read_write);
    h.single_task([p] { p[0] += 1.0; });
  });
  q.wait();
  log.set_enabled(false);
  const auto cmds = log.commands_snapshot();
  log.clear();
  ASSERT_EQ(cmds.size(), 2u);
  EXPECT_EQ(cmds[0].profile.dep_edges, 0u);
  EXPECT_EQ(cmds[1].profile.dep_edges, 1u);  // the RAW edge
  for (const auto& c : cmds) {
    EXPECT_GE(c.profile.start_seconds, c.profile.submit_seconds);
    EXPECT_GE(c.profile.end_seconds, c.profile.start_seconds);
  }
  EXPECT_EQ(cmds[0].queue_id, cmds[1].queue_id);
  EXPECT_EQ(v[0], 2.0);
}

TEST(OutOfOrder, QueueWaitScopesToTheQueue) {
  // wait() on one queue must not be confused by another queue's
  // commands; both drain correctly regardless.
  sycl::queue q1, q2;
  int a = 0, b = 0;
  q1.submit([&](sycl::handler& h) {
    h.require(&a, sycl::access_mode::write);
    h.single_task([&a] { a = 1; });
  });
  q2.submit([&](sycl::handler& h) {
    h.require(&b, sycl::access_mode::write);
    h.single_task([&b] {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      b = 2;
    });
  });
  q1.wait();
  EXPECT_EQ(a, 1);
  q2.wait();
  EXPECT_EQ(b, 2);
}
