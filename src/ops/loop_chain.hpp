#pragma once
/// \file loop_chain.hpp
/// Lazy dataflow capture with cross-loop fusion - the OPS
/// "loop-chaining / tiling" optimization (Reguly et al., the lever
/// behind the fusion headroom bench/ablation_fusion quantifies),
/// extended from eager overlapped tiling to a captured dataflow graph.
///
/// Loops are enqueued instead of executed. execute() then
///  1. builds a producer->consumer graph from the captured accessor
///     footprints (ops/dataflow.hpp - the par_loop-level mirror of the
///     OoO scheduler's RAW/WAR/WAW derivation),
///  2. partitions the chain into fusable segments: split at WAR edges,
///     after reductions, and around in-place stencil reads,
///  3. runs each segment as one fused sweep, tile-by-tile along the
///     slowest dimension. Tile k of loop i is expanded by the summed
///     slow radii of the later loops in its segment (ghost-zone /
///     overlapped tiling), so every value a later loop reads inside the
///     tile was produced in the same tile. Chain-internal intermediates
///     then stay cache-resident instead of making DRAM round trips.
///
/// In-place (Acc::RW) dats are legal: the chain double-buffers the rows
/// a loop executes - saving each row right before its first execution
/// and restoring it before any ghost re-execution - which keeps
/// read-modify-write updates idempotent under overlap recompute.
/// Pointwise RW only; a nonzero-radius RW read isolates its loop into
/// an unfused singleton segment (see dataflow.hpp for why).
///
/// The fuse/no-fuse decision and the tile depth are autotuned per
/// chain-composition site (kFuse | kTile axes, hwmodel priors); with
/// tuning off, hwmodel picks the deepest LLC-resident tile per segment
/// (memory_model::chain_tile_rows). tile == 0 or fuse == false runs the
/// unfused reference schedule, which is bit-exact with the fused one by
/// construction. Per-chain eliminated bytes are reported through
/// sycl::launch_log (fusion_record) and surfaced in the study report.

#include <algorithm>
#include <climits>
#include <functional>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "hwmodel/memory_model.hpp"
#include "hwmodel/tuning_priors.hpp"
#include "ops/dataflow.hpp"
#include "ops/par_loop.hpp"
#include "sycl/launch_log.hpp"

namespace syclport::ops {

class LoopChain {
 public:
  LoopChain(Context& ctx, Block& block) : ctx_(&ctx), block_(&block) {}

  /// Queue one full-interior loop (Range::all).
  template <typename K, typename... Args>
  void enqueue(Meta meta, K kernel, Args... args) {
    enqueue(meta, Range::all(*block_), kernel, args...);
  }

  /// Queue one loop over an explicit range. Boundary loops (restricted
  /// or halo-extending ranges) are legal: the dataflow partitioner
  /// decides what can be overlap-tiled with what. Kernel + args are
  /// captured by value; execution is deferred to execute(). The loop's
  /// profile is recorded now, in capture order, so a fused chain is
  /// profile-wise the same logical schedule as the unfused one.
  template <typename K, typename... Args>
  void enqueue(Meta meta, Range r, K kernel, Args... args) {
    Queued q;
    q.node.name = meta.name;
    q.node.lo = r.lo;
    q.node.hi = r.hi;
    (collect(q, r, args), ...);

    if (ctx_->opt.record) {
      // par_loop records and returns without running in ModelOnly.
      const Mode saved = ctx_->opt.mode;
      ctx_->opt.mode = Mode::ModelOnly;
      par_loop(*ctx_, meta, *block_, r, kernel, args...);
      ctx_->opt.mode = saved;
    }

    Context* ctx = ctx_;
    Block* block = block_;
    q.run = [ctx, block, meta, r, kernel, args...](long lo, long hi) {
      Range rr = r;
      rr.lo[0] = std::max(rr.lo[0], lo);
      rr.hi[0] = std::min(rr.hi[0], hi);
      // Execute directly without re-recording: the profile was taken at
      // enqueue, and a tiled chain is one logical schedule, not
      // tiles x loops entries.
      const bool rec = ctx->opt.record;
      ctx->opt.record = false;
      par_loop(*ctx, meta, *block, rr, kernel, args...);
      ctx->opt.record = rec;
    };
    queued_.push_back(std::move(q));
  }

  /// Number of queued loops.
  [[nodiscard]] std::size_t size() const { return queued_.size(); }

  /// Run everything captured, then clear the queue - also on a kernel
  /// throw mid-chain, so the chain object stays reusable after an
  /// exception.
  ///
  /// tile_opt: explicit slow-dimension tile depth; 0 forces the unfused
  /// reference schedule. nullopt = decide: the autotuner picks fuse and
  /// tile for this chain-composition site when tuning is enabled,
  /// otherwise hwmodel picks the deepest cache-resident tile per
  /// segment. fuse_opt pins the fuse decision (FusedScope passes true
  /// under SYCLPORT_FUSION=on, leaving only the tile depth to tune).
  void execute(std::optional<std::size_t> tile_opt = std::nullopt,
               std::optional<bool> fuse_opt = std::nullopt) {
    if (queued_.empty()) return;
    struct ClearGuard {
      std::vector<Queued>* q;
      ~ClearGuard() { q->clear(); }
    } guard{&queued_};
    last_ = Telemetry{};

    const long extent = static_cast<long>(block_->size(0));
    const int dims = std::clamp(block_->dims(), 1, 3);
    std::vector<dataflow::Node> nodes;
    nodes.reserve(queued_.size());
    for (const Queued& q : queued_) nodes.push_back(q.node);
    const std::vector<std::size_t> cuts = dataflow::partition(nodes, dims);
    const char* site_name = dataflow::intern_chain_name(nodes);
    const hw::Platform& host = hw::nearest_host_platform();

    bool fuse = fuse_opt.value_or(true);
    std::optional<std::size_t> forced_tile = tile_opt;
    std::optional<rt::autotune::TunedLaunchParams> tuned;
    if (!tile_opt) {
      hw::seed_autotuner_priors();
      rt::autotune::ScopedTune tune_override(ctx_->opt.tune);
      if (rt::autotune::current_phase() == rt::autotune::Phase::None &&
          rt::autotune::Autotuner::instance().enabled()) {
        rt::autotune::Site site;
        site.name = site_name;
        site.dims = dims;
        for (int d = 0; d < site.dims; ++d)
          site.global[static_cast<std::size_t>(d)] = block_->size(d);
        // Fuse + tile are the chain's own axes; first-touch rides along
        // because the chain scope is the one tuned region that
        // allocates inside itself (double-buffer shadows, lazily
        // materialized buffers). A pinned fuse decision (fuse_opt)
        // drops the kFuse axis and tunes the tile depth alone.
        site.axes = rt::autotune::kTile | rt::autotune::kFirstTouch |
                    (fuse_opt ? 0u : rt::autotune::kFuse);
        tuned.emplace(site);  // scope spans the whole chain execution
        if (tuned->phase() != rt::autotune::Phase::None) {
          const rt::autotune::Config& cfg = tuned->config();
          if (cfg.fuse) fuse = *cfg.fuse;
          if (cfg.tile) forced_tile = *cfg.tile;
        }
      }
    }

    const bool live = ctx_->executing();
    for (std::size_t k = 0; k + 1 < cuts.size(); ++k)
      run_segment(nodes, cuts[k], cuts[k + 1], extent, fuse, forced_tile,
                  host, live);
    last_.loops = nodes.size();
    last_.segments = cuts.size() - 1;

    if (sycl::launch_log::instance().enabled()) {
      sycl::fusion_record rec;
      rec.chain = site_name;
      rec.loops = last_.loops;
      rec.segments = last_.segments;
      rec.tile = last_.tile;
      rec.fused = last_.fused;
      rec.fusable_bytes = last_.fusable_bytes;
      rec.eliminated_bytes = last_.eliminated_bytes;
      rec.rw_copy_bytes = last_.rw_copy_bytes;
      sycl::launch_log::instance().append_fusion(std::move(rec));
    }
  }

  // Telemetry of the most recent execute().
  [[nodiscard]] std::size_t last_segments() const { return last_.segments; }
  [[nodiscard]] std::size_t last_tile() const { return last_.tile; }
  [[nodiscard]] bool last_fused() const { return last_.fused; }
  /// Name-level internal producer->consumer bound (bytes) of the chain.
  [[nodiscard]] double last_fusable_bytes() const {
    return last_.fusable_bytes;
  }
  /// Modeled DRAM bytes the executed schedule eliminated.
  [[nodiscard]] double last_eliminated_bytes() const {
    return last_.eliminated_bytes;
  }
  /// RW double-buffer save/restore traffic the fused schedule paid.
  [[nodiscard]] double last_rw_copy_bytes() const {
    return last_.rw_copy_bytes;
  }

 private:
  struct Queued {
    dataflow::Node node;
    std::function<void(long, long)> run;
    /// Row save/restore closures, one per RW dat arg: (lo, hi, save)
    /// copies interior slow rows [lo, hi) between the live dat and its
    /// lazily allocated shadow, returning the bytes copied.
    std::vector<std::function<double(long, long, bool)>> rw;

    double rw_rows(long lo, long hi, bool save) {
      double copied = 0.0;
      if (lo < hi)
        for (auto& f : rw) copied += f(lo, hi, save);
      return copied;
    }
  };

  struct Telemetry {
    std::size_t loops = 0;
    std::size_t segments = 0;
    std::size_t tile = 0;
    bool fused = false;
    double fusable_bytes = 0.0;
    double eliminated_bytes = 0.0;
    double rw_copy_bytes = 0.0;
  };

  template <typename T>
  void collect(Queued& q, const Range& r, const DatArg<T>& a) {
    const int dims = std::clamp(block_->dims(), 1, 3);
    // Stencil radii mapped onto the slow..fast Range layout (x fastest).
    std::array<long, 3> rad{0, 0, 0};
    rad[static_cast<std::size_t>(dims - 1)] = a.st.radius_x;
    if (dims >= 2) rad[static_cast<std::size_t>(dims - 2)] = a.st.radius_y;
    if (dims >= 3) rad[0] = a.st.radius_z;

    double pts = 1.0;
    for (int d = 0; d < dims; ++d) {
      const auto i = static_cast<std::size_t>(d);
      pts *= static_cast<double>(std::max(0L, r.hi[i] - r.lo[i]));
    }
    const double bytes = pts * a.dat->ncomp() * sizeof(T);

    if (a.acc == Acc::R || a.acc == Acc::RW) {
      dataflow::AccessBox box;
      box.dat = a.dat;
      box.bytes = bytes;
      box.read = true;
      box.lo = r.lo;
      box.hi = r.hi;
      for (int d = 0; d < dims; ++d) {
        const auto i = static_cast<std::size_t>(d);
        box.lo[i] -= rad[i];
        box.hi[i] += rad[i];
      }
      q.node.acc.push_back(box);
      q.node.radius_slow =
          std::max(q.node.radius_slow, static_cast<int>(rad[0]));
    }
    if (a.acc == Acc::W || a.acc == Acc::RW) {
      dataflow::AccessBox box;
      box.dat = a.dat;
      box.bytes = bytes;
      box.write = true;
      box.lo = r.lo;
      box.hi = r.hi;
      q.node.acc.push_back(box);
    }
    if (a.acc == Acc::RW) {
      q.node.rw_max_radius =
          std::max(q.node.rw_max_radius, a.st.max_radius());
      Dat<T>* d = a.dat;
      auto shadow = std::make_shared<std::vector<T>>();
      q.rw.push_back([d, shadow](long lo, long hi, bool save) -> double {
        if (!d->allocated() || lo >= hi) return 0.0;
        const auto ss = static_cast<std::size_t>(d->stride_slow());
        const std::size_t total = d->alloc_bytes() / sizeof(T);
        if (shadow->empty()) shadow->resize(total);
        const long nslab = static_cast<long>(total / ss);
        const long halo = d->halo();
        double copied = 0.0;
        for (long row = lo; row < hi; ++row) {
          const long slab = row + halo;
          if (slab < 0 || slab >= nslab) continue;
          T* live = d->storage() + static_cast<std::size_t>(slab) * ss;
          T* shad = shadow->data() + static_cast<std::size_t>(slab) * ss;
          if (save)
            std::copy(live, live + ss, shad);
          else
            std::copy(shad, shad + ss, live);
          copied += static_cast<double>(ss * sizeof(T));
        }
        return copied;
      });
    }
  }
  template <typename T>
  void collect(Queued& q, const Range&, const RedArg<T>&) {
    q.node.reduction = true;
  }

  void run_segment(const std::vector<dataflow::Node>& nodes, std::size_t b,
                   std::size_t e, long extent, bool fuse,
                   std::optional<std::size_t> forced_tile,
                   const hw::Platform& host, bool live) {
    const std::size_t n = e - b;
    const int dims = std::clamp(block_->dims(), 1, 3);
    const double fusable = dataflow::internal_edge_bytes(nodes, b, e, dims);
    last_.fusable_bytes += fusable;

    // Ghost expansion: suffix slow radii of the later loops.
    std::vector<long> expand(n, 0);
    for (std::size_t i = n; i-- > 1;)
      expand[i - 1] = expand[i] + nodes[b + i].radius_slow;
    const long ghost = 2 * expand[0];

    // Slab working set per slow row across the segment's distinct dats.
    double row_bytes = 0.0;
    {
      std::vector<std::pair<const void*, double>> per_dat;
      for (std::size_t i = b; i < e; ++i) {
        const double rows = static_cast<double>(
            std::max(1L, nodes[i].hi[0] - nodes[i].lo[0]));
        for (const dataflow::AccessBox& a : nodes[i].acc) {
          const double rb = a.bytes / rows;
          bool found = false;
          for (auto& [id, v] : per_dat)
            if (id == a.dat) {
              v = std::max(v, rb);
              found = true;
            }
          if (!found) per_dat.emplace_back(a.dat, rb);
        }
      }
      for (const auto& [id, v] : per_dat) row_bytes += v;
    }

    std::size_t tile = 0;
    if (fuse) {
      if (forced_tile)
        tile = *forced_tile;
      else if (n > 1 && fusable > 0.0)
        tile = hw::chain_tile_rows(host, row_bytes, extent, ghost);
    }

    if (tile == 0 || static_cast<long>(tile) >= extent) {
      if (live)
        for (std::size_t i = b; i < e; ++i)
          queued_[i].run(nodes[i].lo[0], nodes[i].hi[0]);
      return;
    }

    last_.fused = true;
    last_.tile = std::max(last_.tile, tile);
    last_.eliminated_bytes +=
        fusable * hw::chain_tile_residency(host, row_bytes, tile, ghost);
    if (!live) return;

    std::vector<long> done_hi(n, LONG_MIN);
    for (long t0 = 0; t0 < extent; t0 += static_cast<long>(tile)) {
      const long t1 = std::min(extent, t0 + static_cast<long>(tile));
      for (std::size_t i = 0; i < n; ++i) {
        Queued& q = queued_[b + i];
        const long rlo = nodes[b + i].lo[0];
        const long rhi = nodes[b + i].hi[0];
        // First/last tile absorb rows outside [0, extent): boundary
        // loops touch halo rows the tile walk itself never visits.
        const long lo =
            t0 == 0 ? rlo : std::max(rlo, t0 - expand[i]);
        const long hi =
            t1 == extent ? rhi : std::min(rhi, t1 + expand[i]);
        if (lo >= hi) continue;
        // Zero expansion means this loop's tiles partition its rows
        // exactly - no ghost re-execution, so no double-buffering.
        if (!q.rw.empty() && expand[i] > 0) {
          // Double-buffer: restore already-executed rows about to be
          // ghost-re-executed, save fresh rows before their first
          // execution (capturing the state this loop first sees).
          const long done = done_hi[i];
          const long redo_hi = done == LONG_MIN ? lo : std::min(done, hi);
          last_.rw_copy_bytes += q.rw_rows(lo, redo_hi, false);
          last_.rw_copy_bytes += q.rw_rows(std::max(lo, redo_hi), hi, true);
        }
        q.run(lo, hi);
        done_hi[i] = std::max(done_hi[i], hi);
      }
    }
  }

  Context* ctx_;
  Block* block_;
  std::vector<Queued> queued_;
  Telemetry last_;
};

}  // namespace syclport::ops
