// Integration tests for the structured-mesh applications and
// BabelStream: backend equivalence (every parallelization computes the
// serial answer), formulation equivalence (OpenSBLI SA == SN),
// stability/finiteness, and profile sanity.

#include <gtest/gtest.h>

#include <cmath>

#include "apps/apps.hpp"
#include "stream/babelstream.hpp"

namespace apps = syclport::apps;
namespace ops = syclport::ops;
namespace hw = syclport::hw;

namespace {

ops::Options backend(ops::Backend b) {
  ops::Options o;
  o.backend = b;
  o.nd_local = {1, 2, 16};  // divides nothing special: exercises masking
  return o;
}

const std::vector<ops::Backend> kBackends = {
    ops::Backend::Serial, ops::Backend::Threads, ops::Backend::SyclFlat,
    ops::Backend::SyclNd, ops::Backend::MPI};

}  // namespace

TEST(BabelStream, ChecksumMatchesClosedForm) {
  for (int reps : {1, 3}) {
    const auto rs = syclport::stream::run(backend(ops::Backend::Threads),
                                          4096, reps);
    EXPECT_NEAR(rs.checksum, syclport::stream::expected_checksum(4096, reps),
                1e-6 * std::fabs(rs.checksum));
  }
}

TEST(BabelStream, AllBackendsAgree) {
  for (ops::Backend b : kBackends) {
    const auto rs = syclport::stream::run(backend(b), 2048, 2);
    EXPECT_NEAR(rs.checksum, syclport::stream::expected_checksum(2048, 2),
                1e-9)
        << static_cast<int>(b);
  }
}

TEST(BabelStream, ProfilesCarryExpectedTraffic) {
  const std::size_t n = 8192;
  const auto rs = syclport::stream::run(backend(ops::Backend::Threads), n, 1);
  ASSERT_EQ(rs.profiles.size(), 5u);
  using syclport::stream::Kernel;
  EXPECT_DOUBLE_EQ(rs.profiles[0].total_bytes(),
                   syclport::stream::kernel_bytes(Kernel::Copy, n));
  EXPECT_DOUBLE_EQ(rs.profiles[3].total_bytes(),
                   syclport::stream::kernel_bytes(Kernel::Triad, n));
  EXPECT_EQ(rs.profiles[4].reduction, hw::ReductionKind::BuiltIn);
}

TEST(Rtm, StableAndNonTrivial) {
  const auto rs = apps::run_rtm(backend(ops::Backend::Threads),
                                apps::rtm_small());
  EXPECT_TRUE(std::isfinite(rs.checksum));
  EXPECT_GT(rs.checksum, 0.0);  // wave energy injected
}

TEST(Rtm, BackendsMatchSerial) {
  const double ref =
      apps::run_rtm(backend(ops::Backend::Serial), apps::rtm_small()).checksum;
  for (ops::Backend b : kBackends) {
    const double got = apps::run_rtm(backend(b), apps::rtm_small()).checksum;
    EXPECT_NEAR(got, ref, 1e-9 * std::max(1.0, std::fabs(ref)))
        << static_cast<int>(b);
  }
}

TEST(Rtm, ProfileShapesMatchStencil) {
  const auto rs =
      apps::run_rtm(backend(ops::Backend::Serial), apps::rtm_small());
  bool found_fd = false;
  for (const auto& p : rs.profiles) {
    if (p.name != "rtm_lap") continue;
    found_fd = true;
    EXPECT_EQ(p.radius_fast, 4);
    EXPECT_EQ(p.radius_slow, 4);
    EXPECT_EQ(p.elem_bytes, 4u);
    EXPECT_EQ(p.cls, hw::KernelClass::Interior);
  }
  EXPECT_TRUE(found_fd);
}

TEST(Acoustic, StableAndDamped) {
  const auto rs = apps::run_acoustic(backend(ops::Backend::Threads),
                                     apps::acoustic_small());
  EXPECT_TRUE(std::isfinite(rs.checksum));
  EXPECT_GT(rs.checksum, 0.0);
}

TEST(Acoustic, BackendsMatchSerial) {
  const double ref = apps::run_acoustic(backend(ops::Backend::Serial),
                                        apps::acoustic_small())
                         .checksum;
  for (ops::Backend b : kBackends) {
    const double got =
        apps::run_acoustic(backend(b), apps::acoustic_small()).checksum;
    EXPECT_NEAR(got, ref, 1e-9 * std::max(1.0, std::fabs(ref)));
  }
}

TEST(Acoustic, HasSpongeBoundaryLoops) {
  const auto rs = apps::run_acoustic(backend(ops::Backend::Serial),
                                     apps::acoustic_small());
  int boundary = 0, interior = 0;
  for (const auto& p : rs.profiles) {
    if (p.cls == hw::KernelClass::Boundary) ++boundary;
    if (p.cls == hw::KernelClass::Interior) ++interior;
  }
  EXPECT_GT(boundary, interior);  // 6 sponges + source vs 1 fd per step
}

TEST(OpenSBLI, SaAndSnAgree) {
  // Same discretization, different storage strategy: results must match
  // to rounding. This is the strongest cross-validation in the suite.
  const auto sa = apps::run_opensbli_sa(backend(ops::Backend::Threads),
                                        apps::opensbli_small());
  const auto sn = apps::run_opensbli_sn(backend(ops::Backend::Threads),
                                        apps::opensbli_small());
  EXPECT_NEAR(sa.checksum, sn.checksum,
              1e-10 * std::fabs(sa.checksum));
}

TEST(OpenSBLI, SaMovesMoreBytesSnBurnsMoreFlops) {
  const auto sa = apps::run_opensbli_sa(backend(ops::Backend::Serial),
                                        apps::opensbli_small());
  const auto sn = apps::run_opensbli_sn(backend(ops::Backend::Serial),
                                        apps::opensbli_small());
  double sa_bytes = 0, sn_bytes = 0, sa_flops = 0, sn_flops = 0;
  for (const auto& p : sa.profiles) {
    sa_bytes += p.total_bytes();
    sa_flops += p.flops;
  }
  for (const auto& p : sn.profiles) {
    sn_bytes += p.total_bytes();
    sn_flops += p.flops;
  }
  EXPECT_GT(sa_bytes, 1.5 * sn_bytes);
  EXPECT_GT(sn_flops / sn_bytes, sa_flops / sa_bytes);  // intensity flips
}

TEST(OpenSBLI, BackendsMatchSerial) {
  const double ref = apps::run_opensbli_sa(backend(ops::Backend::Serial),
                                           apps::opensbli_small())
                         .checksum;
  for (ops::Backend b : kBackends) {
    const double got =
        apps::run_opensbli_sa(backend(b), apps::opensbli_small()).checksum;
    EXPECT_NEAR(got, ref, 1e-9 * std::fabs(ref));
  }
}

TEST(CloverLeaf2D, MassAndEnergyStayFinite) {
  const auto rs = apps::run_cloverleaf2d(backend(ops::Backend::Threads),
                                         apps::cloverleaf2d_small());
  EXPECT_TRUE(std::isfinite(rs.checksum));
  EXPECT_GT(rs.checksum, 0.0);
}

TEST(CloverLeaf2D, BackendsMatchSerial) {
  const double ref = apps::run_cloverleaf2d(backend(ops::Backend::Serial),
                                            apps::cloverleaf2d_small())
                         .checksum;
  for (ops::Backend b : kBackends) {
    const double got =
        apps::run_cloverleaf2d(backend(b), apps::cloverleaf2d_small())
            .checksum;
    EXPECT_NEAR(got, ref, 1e-9 * std::fabs(ref)) << static_cast<int>(b);
  }
}

TEST(CloverLeaf2D, BoundaryLoopsPresentAndSmall) {
  const auto rs = apps::run_cloverleaf2d(backend(ops::Backend::Serial),
                                         apps::cloverleaf2d_small());
  double boundary_bytes = 0.0, interior_bytes = 0.0;
  int nboundary = 0;
  for (const auto& p : rs.profiles) {
    if (p.cls == hw::KernelClass::Boundary) {
      boundary_bytes += p.total_bytes();
      ++nboundary;
    } else {
      interior_bytes += p.total_bytes();
    }
  }
  EXPECT_GT(nboundary, 50);  // many per-field, per-side halo loops
  EXPECT_LT(boundary_bytes, 0.25 * interior_bytes);
}

TEST(CloverLeaf2D, HasReductionKernels) {
  const auto rs = apps::run_cloverleaf2d(backend(ops::Backend::Serial),
                                         apps::cloverleaf2d_small());
  int reductions = 0;
  for (const auto& p : rs.profiles)
    if (p.reduction != hw::ReductionKind::None) ++reductions;
  // calc_dt each iteration + field_summary once.
  EXPECT_EQ(reductions, apps::cloverleaf2d_small().iters + 1);
}

TEST(CloverLeaf3D, MassAndEnergyStayFinite) {
  const auto rs = apps::run_cloverleaf3d(backend(ops::Backend::Threads),
                                         apps::cloverleaf3d_small());
  EXPECT_TRUE(std::isfinite(rs.checksum));
  EXPECT_GT(rs.checksum, 0.0);
}

TEST(CloverLeaf3D, BackendsMatchSerial) {
  const double ref = apps::run_cloverleaf3d(backend(ops::Backend::Serial),
                                            apps::cloverleaf3d_small())
                         .checksum;
  for (ops::Backend b : {ops::Backend::Threads, ops::Backend::SyclNd}) {
    const double got =
        apps::run_cloverleaf3d(backend(b), apps::cloverleaf3d_small())
            .checksum;
    EXPECT_NEAR(got, ref, 1e-9 * std::fabs(ref));
  }
}

TEST(CloverLeaf3D, BoundaryShareExceeds2D) {
  // Paper §4.1: 3D spends a larger fraction in boundary updates (7.8%
  // vs 1.5% on the A100). At equal-ish footprint the boundary-to-
  // interior byte ratio must be higher in 3D.
  auto ratio = [](const apps::RunSummary& rs) {
    double b = 0, i = 0;
    for (const auto& p : rs.profiles)
      (p.cls == hw::KernelClass::Boundary ? b : i) += p.total_bytes();
    return b / i;
  };
  const auto r2 = ratio(apps::run_cloverleaf2d(backend(ops::Backend::Serial),
                                               {{48, 48, 1}, 2}));
  const auto r3 = ratio(apps::run_cloverleaf3d(backend(ops::Backend::Serial),
                                               {{16, 16, 16}, 2}));
  EXPECT_GT(r3, r2);
}

TEST(ModelOnly, PaperScaleSchedulesWithoutAllocating) {
  // The full 7680^2 CloverLeaf and 1000^3 Acoustic schedules must be
  // recordable in ModelOnly mode without touching memory.
  ops::Options o = backend(ops::Backend::SyclNd);
  o.mode = ops::Mode::ModelOnly;
  const auto clover =
      apps::run_cloverleaf2d(o, {{7680, 7680, 1}, 2});
  EXPECT_GT(clover.profiles.size(), 20u);
  EXPECT_EQ(clover.checksum, 0.0);
  const auto ac = apps::run_acoustic(o, {{1000, 1000, 1000}, 2});
  double bytes = 0;
  for (const auto& p : ac.profiles) bytes += p.total_bytes();
  EXPECT_GT(bytes, 2.0 * 8e9);  // two sweeps over ~GB-scale arrays
}


TEST(OpenSBLI, Rk3SaAndSnAgree) {
  const auto sa = apps::run_opensbli_sa_rk3(backend(ops::Backend::Threads),
                                            apps::opensbli_small());
  const auto sn = apps::run_opensbli_sn_rk3(backend(ops::Backend::Threads),
                                            apps::opensbli_small());
  EXPECT_NEAR(sa.checksum, sn.checksum, 1e-10 * std::fabs(sa.checksum));
  EXPECT_TRUE(std::isfinite(sa.checksum));
}

TEST(OpenSBLI, Rk3HasThreeResidualsPerIteration) {
  const auto rk1 = apps::run_opensbli_sn(backend(ops::Backend::Serial),
                                         apps::opensbli_small());
  const auto rk3 = apps::run_opensbli_sn_rk3(backend(ops::Backend::Serial),
                                             apps::opensbli_small());
  auto residuals = [](const apps::RunSummary& rs) {
    int n = 0;
    for (const auto& p : rs.profiles)
      if (p.name == std::string("sbli_residual_sn")) ++n;
    return n;
  };
  EXPECT_EQ(residuals(rk3), 3 * residuals(rk1));
}

TEST(OpenSBLI, Rk3DiffersFromEulerButStaysClose) {
  const double euler = apps::run_opensbli_sn(backend(ops::Backend::Serial),
                                             apps::opensbli_small())
                           .checksum;
  const double rk3 = apps::run_opensbli_sn_rk3(backend(ops::Backend::Serial),
                                               apps::opensbli_small())
                         .checksum;
  EXPECT_NE(euler, rk3);                       // different schemes
  EXPECT_NEAR(euler, rk3, 1e-3 * std::fabs(euler));  // same physics
}
