# Empty dependencies file for fig9_mgcfd_cpu.
# This may be replaced when dependencies are built.
