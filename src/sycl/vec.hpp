#pragma once
/// \file vec.hpp
/// miniSYCL sycl::vec<T, N>: the fixed-width vector type with
/// element-wise arithmetic, named accessors (x/y/z/w), load/store and
/// the common aliases (float4, double3, ...). Purely a host type here;
/// platform vectorization is a hardware-model concern.

#include <array>
#include <cstddef>

namespace sycl {

template <typename T, int N>
class vec {
  static_assert(N >= 1 && N <= 16);

 public:
  vec() = default;
  explicit vec(T splat) { v_.fill(splat); }
  template <typename... Ts>
    requires(sizeof...(Ts) == N && N > 1)
  vec(Ts... vals) : v_{static_cast<T>(vals)...} {}

  [[nodiscard]] T& operator[](int i) { return v_[static_cast<std::size_t>(i)]; }
  [[nodiscard]] const T& operator[](int i) const {
    return v_[static_cast<std::size_t>(i)];
  }

  [[nodiscard]] T& x() { return v_[0]; }
  [[nodiscard]] T& y() requires(N >= 2) { return v_[1]; }
  [[nodiscard]] T& z() requires(N >= 3) { return v_[2]; }
  [[nodiscard]] T& w() requires(N >= 4) { return v_[3]; }
  [[nodiscard]] const T& x() const { return v_[0]; }
  [[nodiscard]] const T& y() const requires(N >= 2) { return v_[1]; }
  [[nodiscard]] const T& z() const requires(N >= 3) { return v_[2]; }
  [[nodiscard]] const T& w() const requires(N >= 4) { return v_[3]; }

  [[nodiscard]] static constexpr int size() { return N; }

  /// Element-wise arithmetic.
  friend vec operator+(vec a, const vec& b) { return a += b; }
  friend vec operator-(vec a, const vec& b) { return a -= b; }
  friend vec operator*(vec a, const vec& b) { return a *= b; }
  friend vec operator/(vec a, const vec& b) { return a /= b; }
  friend vec operator*(vec a, T s) { return a *= vec(s); }
  friend vec operator*(T s, vec a) { return a *= vec(s); }

  vec& operator+=(const vec& o) { return apply(o, [](T a, T b) { return a + b; }); }
  vec& operator-=(const vec& o) { return apply(o, [](T a, T b) { return a - b; }); }
  vec& operator*=(const vec& o) { return apply(o, [](T a, T b) { return a * b; }); }
  vec& operator/=(const vec& o) { return apply(o, [](T a, T b) { return a / b; }); }

  friend bool operator==(const vec& a, const vec& b) { return a.v_ == b.v_; }

  /// Load/store from element pointers (SYCL's vec::load/store take
  /// offsets in units of whole vectors).
  void load(std::size_t offset, const T* ptr) {
    for (int i = 0; i < N; ++i)
      v_[static_cast<std::size_t>(i)] = ptr[offset * N + static_cast<std::size_t>(i)];
  }
  void store(std::size_t offset, T* ptr) const {
    for (int i = 0; i < N; ++i)
      ptr[offset * N + static_cast<std::size_t>(i)] = v_[static_cast<std::size_t>(i)];
  }

  /// Horizontal sum (convenience; dot products in the apps).
  [[nodiscard]] T hsum() const {
    T s{};
    for (const T& e : v_) s += e;
    return s;
  }

 private:
  template <typename F>
  vec& apply(const vec& o, F f) {
    for (int i = 0; i < N; ++i)
      v_[static_cast<std::size_t>(i)] =
          f(v_[static_cast<std::size_t>(i)], o.v_[static_cast<std::size_t>(i)]);
    return *this;
  }

  std::array<T, static_cast<std::size_t>(N)> v_{};
};

using float2 = vec<float, 2>;
using float3 = vec<float, 3>;
using float4 = vec<float, 4>;
using double2 = vec<double, 2>;
using double3 = vec<double, 3>;
using double4 = vec<double, 4>;
using int2 = vec<int, 2>;
using int4 = vec<int, 4>;

}  // namespace sycl
