#include "runtime/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <limits>

#include "runtime/env.hpp"
#include "runtime/fault/fault.hpp"

namespace syclport::rt {

namespace {

/// parallel_for targets this many chunks per worker before the grain
/// floor is applied (matches the seed's size()*4 split).
constexpr std::size_t kChunksPerWorker = 4;

inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#else
  std::this_thread::yield();
#endif
}

/// Spin-then-park helper. Back-to-back launches in the apps arrive within
/// microseconds, so a short busy spin skips the condvar wake latency on
/// the common path. The spin degrades pause -> sched_yield -> park (the
/// caller parks once spin() returns false); on a single-CPU machine
/// pausing only burns the timeslice the peer thread needs, so the pause
/// phase is skipped entirely there.
class SpinWait {
 public:
  /// Single-CPU machines go straight to the yield phase.
  SpinWait() noexcept : count_(single_cpu() ? kPauseIters : 0) {}

  bool spin() noexcept {
    if (count_ >= kPauseIters + kYieldIters) return false;
    if (count_ >= kPauseIters) {
      std::this_thread::yield();
    } else {
      cpu_relax();
    }
    ++count_;
    return true;
  }

 private:
  static bool single_cpu() noexcept {
    static const bool v = std::thread::hardware_concurrency() <= 1;
    return v;
  }
  static constexpr int kPauseIters = 2048;
  static constexpr int kYieldIters = 32;
  int count_ = 0;
};

constexpr std::uint64_t pack(std::uint32_t begin, std::uint32_t end) noexcept {
  return (static_cast<std::uint64_t>(begin) << 32) | end;
}
constexpr std::uint32_t range_begin(std::uint64_t r) noexcept {
  return static_cast<std::uint32_t>(r >> 32);
}
constexpr std::uint32_t range_end(std::uint64_t r) noexcept {
  return static_cast<std::uint32_t>(r);
}

/// Set while a thread is executing chunks of a pool's job; a launch
/// issued from such a thread must run inline (the workers are busy with
/// the outer job, and blocking on them would deadlock).
thread_local const ThreadPool* t_active_pool = nullptr;

/// Set while a ScopedSerialExecution is alive on this thread; forces
/// launches from this thread onto the serial path.
thread_local bool t_force_serial = false;

/// Stats of the most recent launch issued from this thread.
thread_local LaunchStats t_last_stats{};

// --- process-wide launch params --------------------------------------------

std::atomic<Schedule> g_schedule{Schedule::Steal};
std::atomic<std::size_t> g_grain{1};
std::once_flag g_params_once;

void init_params_from_env() {
  if (const auto v = env::get("SYCLPORT_SCHEDULE")) {
    if (const auto s = parse_schedule(*v))
      g_schedule.store(*s, std::memory_order_relaxed);
    else
      env::warn_invalid("SYCLPORT_SCHEDULE", *v, "static|dynamic|steal");
  }
  if (const auto v = env::get_long("SYCLPORT_GRAIN", 1,
                                   std::numeric_limits<long>::max()))
    g_grain.store(static_cast<std::size_t>(*v), std::memory_order_relaxed);
}

}  // namespace

std::optional<Schedule> parse_schedule(std::string_view s) noexcept {
  if (s == "static") return Schedule::Static;
  if (s == "dynamic") return Schedule::Dynamic;
  if (s == "steal") return Schedule::Steal;
  return std::nullopt;
}

const char* to_string(Schedule s) noexcept {
  switch (s) {
    case Schedule::Static: return "static";
    case Schedule::Dynamic: return "dynamic";
    case Schedule::Steal: return "steal";
  }
  return "?";
}

LaunchParams launch_params() noexcept {
  std::call_once(g_params_once, init_params_from_env);
  return {g_schedule.load(std::memory_order_relaxed),
          g_grain.load(std::memory_order_relaxed)};
}

void set_launch_params(const LaunchParams& p) noexcept {
  std::call_once(g_params_once, init_params_from_env);
  g_schedule.store(p.schedule, std::memory_order_relaxed);
  g_grain.store(std::max<std::size_t>(1, p.grain), std::memory_order_relaxed);
}

ScopedLaunchParams::ScopedLaunchParams(std::optional<Schedule> schedule,
                                       std::optional<std::size_t> grain) noexcept
    : saved_(launch_params()) {
  LaunchParams p = saved_;
  if (schedule) p.schedule = *schedule;
  if (grain) p.grain = *grain;
  set_launch_params(p);
}

ScopedLaunchParams::~ScopedLaunchParams() { set_launch_params(saved_); }

ScopedSerialExecution::ScopedSerialExecution() noexcept
    : saved_(t_force_serial) {
  t_force_serial = true;
}

ScopedSerialExecution::~ScopedSerialExecution() { t_force_serial = saved_; }

bool serial_execution_forced() noexcept { return t_force_serial; }

// --- pool lifecycle ---------------------------------------------------------

ThreadPool::ThreadPool(unsigned threads)
    : threads_(std::max(1u, threads)), slots_(new WorkerSlot[threads_]) {
  workers_.reserve(threads_ - 1);
  for (unsigned i = 1; i < threads_; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  stop_.store(true, std::memory_order_relaxed);
  {
    std::lock_guard lock(mu_);
  }
  cv_start_.notify_all();
  for (auto& t : workers_) t.join();
}

// --- claim protocol ---------------------------------------------------------

bool ThreadPool::pop_own(unsigned worker_id, std::uint32_t& b,
                         std::uint32_t& e) {
  auto& range = slots_[worker_id].range;
  std::uint64_t cur = range.load(std::memory_order_relaxed);
  for (;;) {
    const std::uint32_t begin = range_begin(cur), end = range_end(cur);
    if (begin >= end) return false;
    if (range.compare_exchange_weak(cur, pack(begin + 1, end),
                                    std::memory_order_acq_rel,
                                    std::memory_order_relaxed)) {
      b = begin;
      e = begin + 1;
      return true;
    }
  }
}

bool ThreadPool::steal(unsigned worker_id, std::uint32_t& b, std::uint32_t& e) {
  for (unsigned k = 1; k < threads_; ++k) {
    const unsigned victim = (worker_id + k) % threads_;
    auto& range = slots_[victim].range;
    std::uint64_t cur = range.load(std::memory_order_acquire);
    for (;;) {
      const std::uint32_t begin = range_begin(cur), end = range_end(cur);
      if (begin >= end) break;
      const std::uint32_t take = (end - begin + 1) / 2;
      if (range.compare_exchange_weak(cur, pack(begin, end - take),
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
        // Keep the first stolen chunk, expose the rest in our own (empty)
        // slot so other thieves can re-steal from it.
        if (take > 1)
          slots_[worker_id].range.store(pack(end - take + 1, end),
                                        std::memory_order_release);
        slots_[worker_id].steals += 1;
        slots_[worker_id].stolen_chunks += take;
        b = end - take;
        e = b + 1;
        return true;
      }
    }
  }
  return false;
}

void ThreadPool::work(unsigned worker_id) {
  const ThreadPool* prev = t_active_pool;
  t_active_pool = this;
  detail::JobState& job = job_state_;
  switch (job_schedule_) {
    case Schedule::Dynamic:
      for (;;) {
        if (job.cancel.load(std::memory_order_relaxed)) break;
        const std::size_t c = next_chunk_.fetch_add(1, std::memory_order_relaxed);
        if (c >= job_chunks_) break;
        invoke_(job, ctx_, c, c + 1);
      }
      break;
    case Schedule::Static: {
      const std::uint64_t r =
          slots_[worker_id].range.exchange(0, std::memory_order_acq_rel);
      if (range_begin(r) < range_end(r))
        invoke_(job, ctx_, range_begin(r), range_end(r));
      break;
    }
    case Schedule::Steal: {
      std::uint32_t b = 0, e = 0;
      while (!job.cancel.load(std::memory_order_relaxed) &&
             (pop_own(worker_id, b, e) || steal(worker_id, b, e)))
        invoke_(job, ctx_, b, e);
      break;
    }
  }
  t_active_pool = prev;
}

// --- launch/join ------------------------------------------------------------

void ThreadPool::worker_loop(unsigned worker_id) {
  std::uint64_t seen = 0;
  for (;;) {
    std::uint64_t gen = generation_.load(std::memory_order_acquire);
    SpinWait spinner;
    while (gen == seen && !stop_.load(std::memory_order_relaxed) &&
           spinner.spin())
      gen = generation_.load(std::memory_order_acquire);
    if (gen == seen && !stop_.load(std::memory_order_relaxed)) {
      std::unique_lock lock(mu_);
      cv_start_.wait(lock, [&] {
        return stop_.load(std::memory_order_relaxed) ||
               generation_.load(std::memory_order_acquire) != seen;
      });
      gen = generation_.load(std::memory_order_acquire);
    }
    if (stop_.load(std::memory_order_relaxed)) return;
    seen = gen;
    // Injected worker stall / late start: the worker sleeps briefly
    // before touching its chunk range, so the launch's work must be
    // re-balanced onto the remaining workers (steal schedule) or wait
    // it out (static) - either way the launch completes correctly.
    if (fault::armed())
      if (const auto r = fault::roll(fault::Site::PoolStall); r.fire)
        fault::inject_sleep(r.value, 100, 2000);
    work(worker_id);
    if (pending_workers_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard lock(mu_);
      cv_done_.notify_all();
    }
  }
}

bool ThreadPool::wait_done_spin() const noexcept {
  SpinWait spinner;
  do {
    if (pending_workers_.load(std::memory_order_acquire) == 0) return true;
  } while (spinner.spin());
  return pending_workers_.load(std::memory_order_acquire) == 0;
}

void ThreadPool::dispatch(RangeFn invoke, void* ctx, std::size_t nchunks) {
  Schedule sched = launch_params().schedule;
  // The packed per-worker ranges hold 32-bit chunk indices; fall back to
  // the shared counter for (absurdly) larger launches.
  if (nchunks > 0xffffffffull && sched != Schedule::Dynamic)
    sched = Schedule::Dynamic;
  if (threads_ == 1 || nchunks == 1 || t_active_pool == this ||
      t_force_serial) {
    run_serial(invoke, ctx, nchunks, sched);
    return;
  }
  submit(invoke, ctx, nchunks, sched);
}

void ThreadPool::run_serial(RangeFn invoke, void* ctx, std::size_t nchunks,
                            Schedule sched) {
  detail::JobState job;
  invoke(job, ctx, 0, nchunks);
  t_last_stats = LaunchStats{sched, nchunks, 0, 0, false};
  if (job.first_error) std::rethrow_exception(job.first_error);
}

void ThreadPool::submit(RangeFn invoke, void* ctx, std::size_t nchunks,
                        Schedule sched) {
  std::lock_guard submit_lock(submit_mu_);
  invoke_ = invoke;
  ctx_ = ctx;
  job_chunks_ = nchunks;
  job_schedule_ = sched;
  job_state_.cancel.store(false, std::memory_order_relaxed);
  job_state_.first_error = nullptr;
  if (sched == Schedule::Dynamic) {
    next_chunk_.store(0, std::memory_order_relaxed);
  } else {
    for (unsigned i = 0; i < threads_; ++i) {
      const auto lo = static_cast<std::uint32_t>(nchunks * i / threads_);
      const auto hi = static_cast<std::uint32_t>(nchunks * (i + 1) / threads_);
      slots_[i].range.store(pack(lo, hi), std::memory_order_relaxed);
    }
  }
  for (unsigned i = 0; i < threads_; ++i)
    slots_[i].steals = slots_[i].stolen_chunks = 0;
  pending_workers_.store(threads_ - 1, std::memory_order_relaxed);
  generation_.fetch_add(1, std::memory_order_release);
  {
    std::lock_guard lock(mu_);
  }
  cv_start_.notify_all();

  work(0);

  if (!wait_done_spin()) {
    std::unique_lock lock(mu_);
    cv_done_.wait(lock, [&] {
      return pending_workers_.load(std::memory_order_acquire) == 0;
    });
  }

  LaunchStats st{sched, nchunks, 0, 0, true};
  for (unsigned i = 0; i < threads_; ++i) {
    st.steals += slots_[i].steals;
    st.stolen_chunks += slots_[i].stolen_chunks;
  }
  t_last_stats = st;
  invoke_ = nullptr;
  ctx_ = nullptr;
  if (job_state_.first_error) {
    std::exception_ptr err = job_state_.first_error;
    job_state_.first_error = nullptr;
    std::rethrow_exception(err);
  }
}

std::size_t ThreadPool::chunk_size(std::size_t n) const noexcept {
  const std::size_t grain = std::max<std::size_t>(1, launch_params().grain);
  const std::size_t target = static_cast<std::size_t>(threads_) * kChunksPerWorker;
  return std::max(grain, (n + target - 1) / target);
}

// --- type-erased wrappers ---------------------------------------------------

void ThreadPool::run_chunks(std::size_t nchunks,
                            const std::function<void(std::size_t)>& fn) {
  run_chunks(nchunks, [&fn](std::size_t c) { fn(c); });
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn) {
  parallel_for(n, [&fn](std::size_t b, std::size_t e) { fn(b, e); });
}

LaunchStats ThreadPool::last_stats() noexcept { return t_last_stats; }

ThreadPool& ThreadPool::global() {
  static ThreadPool pool([] {
    if (const auto v = env::get_long("SYCLPORT_THREADS", 1, 4096))
      return static_cast<unsigned>(*v);
    return std::max(2u, std::thread::hardware_concurrency());
  }());
  return pool;
}

}  // namespace syclport::rt
