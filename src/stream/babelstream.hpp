#pragma once
/// \file babelstream.hpp
/// BabelStream (Deakin et al.) reproduction: the Copy / Mul / Add /
/// Triad / Dot kernels whose Triad bandwidth is the paper's Table 1 and
/// the denominator of every architectural-efficiency number. Kernels
/// are expressed through the OPS DSL so they run on every backend and
/// produce LoopProfiles for the hardware model.

#include "apps/common.hpp"
#include "ops/ops.hpp"

namespace syclport::stream {

/// Which BabelStream kernel (Table 1 reports Triad).
enum class Kernel : std::uint8_t { Copy, Mul, Add, Triad, Dot };

/// Default array length: 2^25 doubles per array, BabelStream's default.
inline constexpr std::size_t kDefaultN = 1u << 25;

/// Run `reps` repetitions of all five kernels over arrays of `n`
/// doubles. The checksum folds the final array contents and the dot
/// result; profiles carry one entry per kernel execution.
[[nodiscard]] apps::RunSummary run(const ops::Options& opt,
                                   std::size_t n = kDefaultN, int reps = 1);

/// Expected checksum for given (n, reps) - closed form, used to
/// validate every backend (BabelStream's own self-check approach).
[[nodiscard]] double expected_checksum(std::size_t n, int reps);

/// Useful bytes moved by one execution of `k` over arrays of `n`
/// doubles (the BabelStream bandwidth numerator).
[[nodiscard]] double kernel_bytes(Kernel k, std::size_t n);

}  // namespace syclport::stream
