#pragma once
/// \file halo.hpp
/// Face halo exchange for rank-local structured fields with ghost
/// layers, over the mini-MPI communicator. Pack, sendrecv, unpack -
/// the OPS MPI backend's exchange structure (paper §3). Header-only
/// template so any element type works.

#include <span>
#include <vector>

#include "minimpi/cart.hpp"
#include "minimpi/comm.hpp"

namespace syclport::mpi {

/// A rank-local field of `dims` dimensions with interior extents
/// `local[0..dims-1]` (slowest first, fastest last) and `halo` ghost
/// layers on every side. Storage row-major including ghosts.
template <typename T>
struct LocalField {
  int dims = 2;
  std::array<std::size_t, 3> local{1, 1, 1};
  int halo = 1;
  std::vector<T> data;

  [[nodiscard]] std::size_t padded(int d) const {
    return local[static_cast<std::size_t>(d)] + 2 * static_cast<std::size_t>(halo);
  }
  [[nodiscard]] std::size_t volume() const {
    std::size_t v = 1;
    for (int d = 0; d < dims; ++d) v *= padded(d);
    return v;
  }
  void allocate() { data.assign(volume(), T{}); }

  /// Index with coordinates relative to the interior origin: -halo ..
  /// local[d]+halo-1 are valid.
  [[nodiscard]] T& at(std::ptrdiff_t i, std::ptrdiff_t j = 0,
                      std::ptrdiff_t k = 0) {
    std::array<std::ptrdiff_t, 3> c{i, j, k};
    std::size_t lin = 0;
    for (int d = 0; d < dims; ++d)
      lin = lin * padded(d) +
            static_cast<std::size_t>(c[static_cast<std::size_t>(d)] + halo);
    return data[lin];
  }
};

namespace detail {
/// Iterate a face slab of thickness `halo` at `side` (0: low, 1: high)
/// of dimension `dim`, interior-adjacent (`ghost` false) or the ghost
/// region itself (`ghost` true); call fn(i,j,k) for every point.
template <typename T, typename Fn>
void for_face(const LocalField<T>& f, int dim, int side, bool ghost, Fn&& fn) {
  std::array<std::ptrdiff_t, 3> lo{0, 0, 0}, hi{1, 1, 1};
  for (int d = 0; d < f.dims; ++d) {
    lo[static_cast<std::size_t>(d)] = 0;
    hi[static_cast<std::size_t>(d)] =
        static_cast<std::ptrdiff_t>(f.local[static_cast<std::size_t>(d)]);
  }
  const auto ext = static_cast<std::ptrdiff_t>(f.local[static_cast<std::size_t>(dim)]);
  if (side == 0) {
    lo[static_cast<std::size_t>(dim)] = ghost ? -f.halo : 0;
    hi[static_cast<std::size_t>(dim)] = ghost ? 0 : f.halo;
  } else {
    lo[static_cast<std::size_t>(dim)] = ghost ? ext : ext - f.halo;
    hi[static_cast<std::size_t>(dim)] = ghost ? ext + f.halo : ext;
  }
  for (std::ptrdiff_t i = lo[0]; i < hi[0]; ++i)
    for (std::ptrdiff_t j = lo[1]; j < hi[1]; ++j)
      for (std::ptrdiff_t k = lo[2]; k < hi[2]; ++k) fn(i, j, k);
}
}  // namespace detail

/// Exchange all face halos of `f` with the Cartesian neighbours.
/// Tags encode (dim, direction) so concurrent exchanges cannot cross.
template <typename T>
void exchange_halos(Comm& comm, const CartDecomp& cart, LocalField<T>& f) {
  for (int dim = 0; dim < f.dims; ++dim) {
    for (int side = 0; side < 2; ++side) {
      const int nb = cart.neighbour(dim, side == 0 ? -1 : +1);
      const int send_tag = 100 + dim * 4 + side;
      const int recv_tag = 100 + dim * 4 + (1 - side);
      if (nb < 0) continue;
      std::vector<T> out;
      detail::for_face(f, dim, side, /*ghost=*/false,
                       [&](auto i, auto j, auto k) {
                         out.push_back(f.at(i, j, k));
                       });
      comm.send(nb, send_tag, std::span<const T>(out));
      std::vector<T> in(out.size());
      comm.recv(nb, recv_tag, std::span<T>(in));
      std::size_t idx = 0;
      detail::for_face(f, dim, side, /*ghost=*/true,
                       [&](auto i, auto j, auto k) {
                         f.at(i, j, k) = in[idx++];
                       });
    }
  }
}

}  // namespace syclport::mpi
