#pragma once
/// \file context.hpp
/// OPS execution context: which backend lowers par_loops, whether loops
/// execute or only contribute to the performance-model schedule, and
/// the collected per-loop profiles.

#include <array>
#include <cstddef>
#include <optional>
#include <vector>

#include "hwmodel/loop_profile.hpp"
#include "runtime/thread_pool.hpp"
#include "sycl/sycl.hpp"

namespace syclport::ops {

/// How par_loops are lowered (paper §3's parallelizations).
enum class Backend : std::uint8_t {
  Serial,      ///< reference scalar loops
  Threads,     ///< OpenMP-like thread-pool loops (the MPI+X "X")
  SyclFlat,    ///< sycl::parallel_for(range): runtime picks the shape
  SyclNd,      ///< sycl::parallel_for(nd_range): tuned shape
  MPI,         ///< owner-compute rank decomposition (serial per rank)
  MPIThreads,  ///< rank decomposition + threads inside ranks
};

/// Execute kernels, or only walk the schedule for the hardware model.
enum class Mode : std::uint8_t { Execute, ModelOnly };

struct Options {
  Backend backend = Backend::Threads;
  Mode mode = Mode::Execute;
  bool record = true;  ///< collect LoopProfiles
  /// Tuned nd_range work-group shape, slowest dim first (used by
  /// Backend::SyclNd); the paper tunes one shape per application.
  std::array<std::size_t, 3> nd_local{1, 4, 64};
  /// Simulated rank count for halo accounting under MPI backends.
  int sim_ranks = 4;
  /// Executor chunk-distribution policy for this context's loops;
  /// nullopt = process default (SYCLPORT_SCHEDULE env, default steal).
  std::optional<rt::Schedule> schedule;
  /// Minimum iterations per executor chunk; nullopt = process default
  /// (SYCLPORT_GRAIN env, default 1).
  std::optional<std::size_t> grain;
  /// Online autotuner override for this context's loops: true/false
  /// forces tuning on/off regardless of SYCLPORT_TUNE; nullopt defers
  /// to the env mode. Explicit `schedule`/`grain` above always win over
  /// the tuner (they pin that axis). See docs/tuning.md.
  std::optional<bool> tune;
};

class Context {
 public:
  explicit Context(Options o) : opt(o) {}
  Context() = default;

  Options opt;
  sycl::queue queue;  ///< used by the SYCL backends

  [[nodiscard]] bool executing() const { return opt.mode == Mode::Execute; }

  /// Profiles recorded by par_loop, in program order.
  std::vector<hw::LoopProfile> profiles;
  void clear_profiles() { profiles.clear(); }

  /// Sum a field of the recorded profiles (test/report convenience).
  [[nodiscard]] double total_useful_bytes() const {
    double s = 0.0;
    for (const auto& p : profiles) s += p.total_bytes();
    return s;
  }
};

}  // namespace syclport::ops
