#include "runtime/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>

namespace syclport::rt {

ThreadPool::ThreadPool(unsigned threads) : threads_(std::max(1u, threads)) {
  workers_.reserve(threads_ - 1);
  for (unsigned i = 1; i < threads_; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::work(unsigned /*worker_id*/) {
  for (;;) {
    const std::size_t c = next_chunk_.fetch_add(1, std::memory_order_relaxed);
    if (c >= job_chunks_) break;
    try {
      (*job_)(c);
    } catch (...) {
      std::lock_guard lock(mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
  }
}

void ThreadPool::worker_loop(unsigned worker_id) {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock lock(mu_);
      cv_start_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
    }
    work(worker_id);
    {
      std::lock_guard lock(mu_);
      if (--pending_workers_ == 0) cv_done_.notify_all();
    }
  }
}

void ThreadPool::run_chunks(std::size_t nchunks,
                            const std::function<void(std::size_t)>& fn) {
  if (nchunks == 0) return;
  if (threads_ == 1 || nchunks == 1) {
    for (std::size_t c = 0; c < nchunks; ++c) fn(c);
    return;
  }
  {
    std::lock_guard lock(mu_);
    job_ = &fn;
    job_chunks_ = nchunks;
    next_chunk_.store(0, std::memory_order_relaxed);
    first_error_ = nullptr;
    pending_workers_ = threads_ - 1;
    ++generation_;
  }
  cv_start_.notify_all();
  work(0);
  {
    std::unique_lock lock(mu_);
    cv_done_.wait(lock, [&] { return pending_workers_ == 0; });
    job_ = nullptr;
    if (first_error_) std::rethrow_exception(first_error_);
  }
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t nchunks =
      std::min<std::size_t>(n, static_cast<std::size_t>(threads_) * 4);
  const std::size_t chunk = (n + nchunks - 1) / nchunks;
  run_chunks(nchunks, [&](std::size_t c) {
    const std::size_t b = c * chunk;
    const std::size_t e = std::min(n, b + chunk);
    if (b < e) fn(b, e);
  });
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool([] {
    if (const char* env = std::getenv("SYCLPORT_THREADS")) {
      const int v = std::atoi(env);
      if (v >= 1) return static_cast<unsigned>(v);
    }
    return std::max(2u, std::thread::hardware_concurrency());
  }());
  return pool;
}

}  // namespace syclport::rt
