#include "op2/dist.hpp"

#include <stdexcept>
#include <string>

namespace syclport::op2::dist {

DistMesh::DistMesh(mpi::Comm& comm, const Map& global_e2n,
                   std::span<const std::array<double, 3>> coords)
    : comm_(&comm) {
  const int me = comm.rank();
  const int np = comm.size();
  if (coords.size() != global_e2n.to().size())
    throw std::invalid_argument("DistMesh: coords/node-set size mismatch");

  // Deterministic partition: identical on every rank, no broadcast
  // needed (PT-Scotch would require one; RCB is pure function of input).
  const std::vector<int> node_part = rcb_partition(coords, np);

  // Owned nodes in ascending global order; local index = position.
  std::unordered_map<int, int> g2l;
  for (std::size_t g = 0; g < node_part.size(); ++g) {
    if (node_part[g] == me) {
      g2l.emplace(static_cast<int>(g), static_cast<int>(owned_nodes_.size()));
      owned_nodes_.push_back(static_cast<int>(g));
    }
  }
  n_owned_ = owned_nodes_.size();

  // Owner-compute: an edge executes on the owner of its first node.
  // Remote nodes referenced by owned edges become halo slots.
  const std::size_t ge = global_e2n.from().size();
  for (std::size_t e = 0; e < ge; ++e) {
    if (node_part[static_cast<std::size_t>(global_e2n.at(e, 0))] != me)
      continue;
    owned_edges_.push_back(static_cast<int>(e));
    for (int i = 0; i < global_e2n.arity(); ++i) {
      const int g = global_e2n.at(e, i);
      if (node_part[static_cast<std::size_t>(g)] == me) continue;
      if (g2l.emplace(g, static_cast<int>(n_owned_ + halo_nodes_.size()))
              .second)
        halo_nodes_.push_back(g);
    }
  }

  local_nodes_ = std::make_unique<Set>(
      "nodes_r" + std::to_string(me), n_owned_ + halo_nodes_.size());
  local_edges_ = std::make_unique<Set>("edges_r" + std::to_string(me),
                                       owned_edges_.size());
  local_e2n_ = std::make_unique<Map>(*local_edges_, *local_nodes_,
                                     global_e2n.arity(),
                                     "e2n_r" + std::to_string(me));
  for (std::size_t le = 0; le < owned_edges_.size(); ++le)
    for (int i = 0; i < global_e2n.arity(); ++i)
      local_e2n_->at(le, i) =
          g2l.at(global_e2n.at(static_cast<std::size_t>(owned_edges_[le]), i));
  local_e2n_->check();

  // Interior/boundary split for halo/compute overlap: an owned edge is
  // "boundary" iff it touches any halo node (local index >= n_owned_),
  // i.e. it reads values the halo import refreshes. Interior edges can
  // run concurrently with the import.
  for (std::size_t le = 0; le < owned_edges_.size(); ++le) {
    bool touches_halo = false;
    for (int i = 0; i < global_e2n.arity(); ++i)
      if (static_cast<std::size_t>(local_e2n_->at(le, i)) >= n_owned_) {
        touches_halo = true;
        break;
      }
    (touches_halo ? boundary_edges_ : interior_edges_)
        .push_back(static_cast<int>(le));
  }

  // Group halo global ids by their owner, preserving halo order (the
  // payload order of every subsequent exchange).
  recv_idx_.assign(static_cast<std::size_t>(np), {});
  std::vector<std::vector<int>> want_gids(static_cast<std::size_t>(np));
  for (std::size_t h = 0; h < halo_nodes_.size(); ++h) {
    const int g = halo_nodes_[h];
    const auto owner = static_cast<std::size_t>(
        node_part[static_cast<std::size_t>(g)]);
    recv_idx_[owner].push_back(static_cast<int>(n_owned_ + h));
    want_gids[owner].push_back(g);
  }

  // Negotiate send lists: tell every peer which of its nodes we import.
  for (int peer = 0; peer < np; ++peer) {
    if (peer == me) continue;
    const auto& want = want_gids[static_cast<std::size_t>(peer)];
    const int count = static_cast<int>(want.size());
    comm.send(peer, /*tag=*/60, count);
    if (count > 0) comm.send(peer, /*tag=*/61, std::span<const int>(want));
  }
  send_idx_.assign(static_cast<std::size_t>(np), {});
  for (int peer = 0; peer < np; ++peer) {
    if (peer == me) continue;
    int count = 0;
    comm.recv(peer, /*tag=*/60, count);
    if (count == 0) continue;
    std::vector<int> gids(static_cast<std::size_t>(count));
    comm.recv(peer, /*tag=*/61, std::span<int>(gids));
    auto& out = send_idx_[static_cast<std::size_t>(peer)];
    out.reserve(gids.size());
    for (int g : gids) out.push_back(g2l.at(g));  // must be owned here
  }
}

}  // namespace syclport::op2::dist
