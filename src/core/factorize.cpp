#include "core/factorize.hpp"

#include <algorithm>

namespace syclport {

std::array<int, 3> balanced_factors(int n, int dims) {
  std::array<int, 3> grid{1, 1, 1};
  int r = std::max(1, n);
  while (r > 1) {
    int f = 2;
    while (f * f <= r && r % f != 0) ++f;
    if (f * f > r) f = r;
    int* slot = &grid[0];
    for (int d = 1; d < dims; ++d)
      if (grid[static_cast<std::size_t>(d)] < *slot)
        slot = &grid[static_cast<std::size_t>(d)];
    *slot *= f;
    r /= f;
  }
  return grid;
}

}  // namespace syclport
