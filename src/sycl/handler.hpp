#pragma once
/// \file handler.hpp
/// miniSYCL command-group handler: the executor behind parallel_for.
///
/// - parallel_for(range)    : "flat" launch; work-items execute with no
///   group structure. The work-group shape the real runtime would pick
///   is *not* chosen here - it is modeled later by the compiler
///   heuristics in hwmodel, which is precisely the flat-formulation
///   effect (paper §3).
/// - parallel_for(nd_range) : explicit work-group shape; groups are
///   scheduled over the thread pool and work-items may use barriers and
///   local memory (fiber-backed, see runtime/fiber.hpp).
/// - reductions             : SYCL 2020 reduction objects, implemented
///   with per-chunk/per-group partials combined under a lock.

#include <atomic>
#include <concepts>
#include <mutex>
#include <string>
#include <utility>

#include "core/timing.hpp"
#include "runtime/fiber.hpp"
#include "runtime/thread_pool.hpp"
#include "sycl/detail/local_arena.hpp"
#include "sycl/device.hpp"
#include "sycl/exception.hpp"
#include "sycl/item.hpp"
#include "sycl/launch_log.hpp"
#include "sycl/range.hpp"
#include "sycl/reduction.hpp"

namespace sycl {

class queue;

namespace detail {

template <int Dims>
[[nodiscard]] inline std::array<std::size_t, 3> to3(const range<Dims>& r) {
  std::array<std::size_t, 3> out{1, 1, 1};
  for (int d = 0; d < Dims; ++d) out[static_cast<std::size_t>(d)] = r[d];
  return out;
}

template <typename K, int Dims>
inline void invoke_flat(const K& k, const id<Dims>& i, const range<Dims>& r) {
  if constexpr (std::invocable<const K&, item<Dims>>) {
    k(item<Dims>(i, r));
  } else {
    static_assert(std::invocable<const K&, id<Dims>>,
                  "kernel must accept sycl::item or sycl::id");
    k(i);
  }
}

}  // namespace detail

class handler {
 public:
  explicit handler(const device& dev) : dev_(dev) {}

  // --- flat parallel_for -------------------------------------------------
  template <int Dims, typename K>
  void parallel_for(range<Dims> r, const K& k) {
    parallel_for("(unnamed)", r, k);
  }

  template <int Dims, typename K>
  void parallel_for(const char* name, range<Dims> r, const K& k) {
    syclport::WallTimer t;
    const std::size_t total = r.size();
    // Templated fast path: the lambda is dispatched inline by the pool,
    // no std::function is constructed per launch or per chunk.
    syclport::rt::ThreadPool::global().parallel_for(
        total, [&](std::size_t b, std::size_t e) {
          for (std::size_t lin = b; lin < e; ++lin)
            detail::invoke_flat(k, detail::delinearize(lin, r), r);
        });
    log(name, Dims, detail::to3(r), std::nullopt, false, false, t.seconds(),
        syclport::rt::ThreadPool::last_stats());
  }

  // --- flat parallel_for with one reduction --------------------------------
  template <int Dims, typename T, typename Op, typename K>
  void parallel_for(range<Dims> r, reduction_descriptor<T, Op> red,
                    const K& k) {
    parallel_for("(unnamed)", r, red, k);
  }

  template <int Dims, typename T, typename Op, typename K>
  void parallel_for(const char* name, range<Dims> r,
                    reduction_descriptor<T, Op> red, const K& k) {
    syclport::WallTimer t;
    std::mutex mu;
    T acc = red.identity;
    syclport::rt::ThreadPool::global().parallel_for(
        r.size(), [&](std::size_t b, std::size_t e) {
          reducer<T, Op> part(red.identity, red.op);
          for (std::size_t lin = b; lin < e; ++lin) {
            const id<Dims> i = detail::delinearize(lin, r);
            if constexpr (std::invocable<const K&, item<Dims>,
                                         reducer<T, Op>&>) {
              k(item<Dims>(i, r), part);
            } else {
              k(i, part);
            }
          }
          std::lock_guard lock(mu);
          acc = red.op(acc, part.value());
        });
    *red.target = red.op(*red.target, acc);
    log(name, Dims, detail::to3(r), std::nullopt, false, true, t.seconds(),
        syclport::rt::ThreadPool::last_stats());
  }

  // --- nd_range parallel_for ----------------------------------------------
  template <int Dims, typename K>
  void parallel_for(nd_range<Dims> ndr, const K& k) {
    parallel_for("(unnamed)", ndr, k);
  }

  template <int Dims, typename K>
  void parallel_for(const char* name, nd_range<Dims> ndr, const K& k) {
    check_nd_range(ndr);
    syclport::WallTimer t;
    const range<Dims> groups = ndr.get_group_range();
    const range<Dims> local = ndr.get_local_range();
    const range<Dims> global = ndr.get_global_range();
    std::atomic<bool> used_barrier{false};
    syclport::rt::ThreadPool::global().run_chunks(
        groups.size(), [&](std::size_t g) {
          detail::local_reset();
          const id<Dims> gid = detail::delinearize(g, groups);
          const bool b = syclport::rt::run_barrier_group(
              local.size(), [&](std::size_t li) {
                const id<Dims> lid = detail::delinearize(li, local);
                id<Dims> glob;
                for (int d = 0; d < Dims; ++d)
                  glob[d] = gid[d] * local[d] + lid[d];
                k(nd_item<Dims>(glob, lid,
                                group<Dims>(gid, groups, local, li), global,
                                dev_.profile().sub_group_size));
              });
          if (b) used_barrier.store(true, std::memory_order_relaxed);
        });
    log(name, Dims, detail::to3(global), detail::to3(local),
        used_barrier.load(), false, t.seconds(),
        syclport::rt::ThreadPool::last_stats());
  }

  // --- nd_range parallel_for with one reduction ----------------------------
  template <int Dims, typename T, typename Op, typename K>
  void parallel_for(nd_range<Dims> ndr, reduction_descriptor<T, Op> red,
                    const K& k) {
    parallel_for("(unnamed)", ndr, red, k);
  }

  template <int Dims, typename T, typename Op, typename K>
  void parallel_for(const char* name, nd_range<Dims> ndr,
                    reduction_descriptor<T, Op> red, const K& k) {
    check_nd_range(ndr);
    syclport::WallTimer t;
    const range<Dims> groups = ndr.get_group_range();
    const range<Dims> local = ndr.get_local_range();
    const range<Dims> global = ndr.get_global_range();
    std::mutex mu;
    T acc = red.identity;
    std::atomic<bool> used_barrier{false};
    syclport::rt::ThreadPool::global().run_chunks(
        groups.size(), [&](std::size_t g) {
          detail::local_reset();
          const id<Dims> gid = detail::delinearize(g, groups);
          reducer<T, Op> part(red.identity, red.op);
          const bool b = syclport::rt::run_barrier_group(
              local.size(), [&](std::size_t li) {
                const id<Dims> lid = detail::delinearize(li, local);
                id<Dims> glob;
                for (int d = 0; d < Dims; ++d)
                  glob[d] = gid[d] * local[d] + lid[d];
                k(nd_item<Dims>(glob, lid,
                                group<Dims>(gid, groups, local, li), global,
                                dev_.profile().sub_group_size),
                  part);
              });
          if (b) used_barrier.store(true, std::memory_order_relaxed);
          std::lock_guard lock(mu);
          acc = red.op(acc, part.value());
        });
    *red.target = red.op(*red.target, acc);
    log(name, Dims, detail::to3(global), detail::to3(local),
        used_barrier.load(), true, t.seconds(),
        syclport::rt::ThreadPool::last_stats());
  }

  // --- single task ----------------------------------------------------------
  template <typename K>
  void single_task(const K& k) {
    syclport::WallTimer t;
    k();
    log("(single_task)", 1, {1, 1, 1}, std::array<std::size_t, 3>{1, 1, 1},
        false, false, t.seconds(), syclport::rt::LaunchStats{});
  }

  /// SYCL accessor registration; dependency tracking is a no-op here.
  template <typename Acc>
  void require(const Acc&) {}

 private:
  template <int Dims>
  void check_nd_range(const nd_range<Dims>& ndr) const {
    if (ndr.get_local_range().size() > dev_.max_work_group_size())
      throw exception(errc::nd_range_error,
                      "work-group size exceeds device limit");
  }

  void log(const char* name, int dims, std::array<std::size_t, 3> global,
           std::optional<std::array<std::size_t, 3>> local, bool barrier,
           bool reduction, double secs, syclport::rt::LaunchStats stats) {
    auto& lg = launch_log::instance();
    if (!lg.enabled()) return;
    lg.append(launch_record{name, dims, global, local, barrier, reduction,
                            secs, stats});
  }

  device dev_;
};

}  // namespace sycl
