#!/usr/bin/env bash
# Build the memory-sensitive test binaries with AddressSanitizer +
# UndefinedBehaviorSanitizer and run them.
#
# The subset is defined by the `asan` build/test presets in
# CMakePresets.json: the rt::mem subsystem tests (pool lifecycle,
# first-touch paths, streaming fill/copy, USM round-trips), the full
# miniSYCL suite including the fiber-based nd_range tests that the TSan
# preset must exclude (TSan cannot track swapcontext; ASan can, via its
# fiber annotations - see docs/executor.md), and the runtime suite.
#
# Usage: tools/check_asan.sh  (from the repository root)

set -euo pipefail
cd "$(dirname "$0")/.."

cmake --workflow --preset asan
echo "ASan/UBSan memory suite passed."
