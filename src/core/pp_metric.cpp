#include "core/pp_metric.hpp"

#include <vector>

#include "core/statistics.hpp"

namespace syclport {

double pp_metric(std::span<const double> efficiencies) noexcept {
  if (efficiencies.empty()) return 0.0;
  for (double e : efficiencies)
    if (e <= 0.0) return 0.0;
  return stats::harmonic_mean(efficiencies);
}

double pp_supported_only(std::span<const double> efficiencies) noexcept {
  std::vector<double> ok;
  ok.reserve(efficiencies.size());
  for (double e : efficiencies)
    if (e > 0.0) ok.push_back(e);
  if (ok.empty()) return 0.0;
  return stats::harmonic_mean(ok);
}

}  // namespace syclport
