#include "apps/opensbli/opensbli.hpp"

#include <cmath>

#include "ops/fusion.hpp"

namespace syclport::apps {

namespace {

// State component indices (5-component dat).
constexpr int RHO = 0, U = 1, V = 2, W = 3, P = 4;
constexpr double kGamma = 1.4;
constexpr double kDt = 0.004;
constexpr double kEps = 0.05;  // artificial dissipation coefficient

/// 4th-order central first derivative: (8(f+1 - f-1) - (f+2 - f-2)) / 12.
template <typename Acc>
double d1(const Acc& s, int c, int dx, int dy, int dz) {
  return (8.0 * (s.comp(c, dx, dy, dz) - s.comp(c, -dx, -dy, -dz)) -
          (s.comp(c, 2 * dx, 2 * dy, 2 * dz) -
           s.comp(c, -2 * dx, -2 * dy, -2 * dz))) /
         12.0;
}

/// Residual of the non-conservative compressible equations given the
/// three directional gradients (g?[var] = d var / d dir) plus a 6-point
/// dissipation stencil on the state.
template <typename AccR, typename AccS>
void residual_from_grads(const AccR& r, const AccS& s, const double gx[5],
                         const double gy[5], const double gz[5]) {
  const double rho = s.comp(RHO, 0, 0, 0);
  const double u = s.comp(U, 0, 0, 0), v = s.comp(V, 0, 0, 0),
               w = s.comp(W, 0, 0, 0);
  const double p = s.comp(P, 0, 0, 0);
  const double div = gx[U] + gy[V] + gz[W];
  auto adv = [&](int c) { return u * gx[c] + v * gy[c] + w * gz[c]; };
  auto diss = [&](int c) {
    return kEps * (s.comp(c, 1, 0, 0) + s.comp(c, -1, 0, 0) +
                   s.comp(c, 0, 1, 0) + s.comp(c, 0, -1, 0) +
                   s.comp(c, 0, 0, 1) + s.comp(c, 0, 0, -1) -
                   6.0 * s.comp(c, 0, 0, 0));
  };
  r.comp(RHO, 0, 0, 0) = -adv(RHO) - rho * div + diss(RHO);
  r.comp(U, 0, 0, 0) = -adv(U) - gx[P] / rho + diss(U);
  r.comp(V, 0, 0, 0) = -adv(V) - gy[P] / rho + diss(V);
  r.comp(W, 0, 0, 0) = -adv(W) - gz[P] / rho + diss(W);
  r.comp(P, 0, 0, 0) = -adv(P) - kGamma * p * div + diss(P);
}

RunSummary run_opensbli(const ops::Options& opt, ProblemSize ps,
                        bool store_all, int rk_stages) {
  ops::Context ctx(opt);
  ops::Block grid(ctx, "opensbli", 3, ps.grid);
  ops::Dat<double> state(grid, "state", 5, 2);
  ops::Dat<double> state0(grid, "state0", 5, 0);  // RK3 stage base
  ops::Dat<double> res(grid, "res", 5, 0);
  // Store-All work arrays: one 5-component gradient dat per direction.
  ops::Dat<double> gradx(grid, "gradx", 5, 0);
  ops::Dat<double> grady(grid, "grady", 5, 0);
  ops::Dat<double> gradz(grid, "gradz", 5, 0);

  const long nz = static_cast<long>(ps.grid[0]);
  const long ny = static_cast<long>(ps.grid[1]);
  const long nx = static_cast<long>(ps.grid[2]);

  if (ctx.executing()) {
    // Smooth pressure/density pulse at rest (halos included so the
    // central stencils see consistent data without explicit BC loops).
    for (long k = -2; k < nz + 2; ++k)
      for (long j = -2; j < ny + 2; ++j)
        for (long i = -2; i < nx + 2; ++i) {
          const double z = (static_cast<double>(k) / nz - 0.5);
          const double y = (static_cast<double>(j) / ny - 0.5);
          const double x = (static_cast<double>(i) / nx - 0.5);
          const double bump = 0.1 * std::exp(-40.0 * (x * x + y * y + z * z));
          state.at(k, j, i, RHO) = 1.0 + bump;
          state.at(k, j, i, U) = 0.0;
          state.at(k, j, i, V) = 0.0;
          state.at(k, j, i, W) = 0.0;
          state.at(k, j, i, P) = 1.0 + bump;
        }
  }

  const ops::Stencil sx{2, 0, 0, 5}, sy{0, 2, 0, 5}, sz{0, 0, 2, 5};

  // One residual evaluation (SA: derivative sweeps + pointwise residual;
  // SN: fused recompute). Factored so RK3 can call it per stage. Loops
  // go through the step's FusedScope: in SA mode the deriv_x/y/z +
  // residual chain is the canonical fusable shape (three stored
  // gradient dats whose round trips die in cache under fusion).
  auto eval_residual = [&](ops::FusedScope& fs) {
    if (store_all) {
      // Three derivative sweeps, each storing 5 gradient components.
      fs.loop({"sbli_deriv_x", hw::KernelClass::Interior, 30.0},
              [](ops::ACC<double> g, ops::ACC<double> s) {
                for (int c = 0; c < 5; ++c)
                  g.comp(c, 0, 0, 0) = d1(s, c, 1, 0, 0);
              },
              ops::arg(gradx, ops::S_PT, ops::Acc::W),
              ops::arg(state, sx, ops::Acc::R));
      fs.loop({"sbli_deriv_y", hw::KernelClass::Interior, 30.0},
              [](ops::ACC<double> g, ops::ACC<double> s) {
                for (int c = 0; c < 5; ++c)
                  g.comp(c, 0, 0, 0) = d1(s, c, 0, 1, 0);
              },
              ops::arg(grady, ops::S_PT, ops::Acc::W),
              ops::arg(state, sy, ops::Acc::R));
      fs.loop({"sbli_deriv_z", hw::KernelClass::Interior, 30.0},
              [](ops::ACC<double> g, ops::ACC<double> s) {
                for (int c = 0; c < 5; ++c)
                  g.comp(c, 0, 0, 0) = d1(s, c, 0, 0, 1);
              },
              ops::arg(gradz, ops::S_PT, ops::Acc::W),
              ops::arg(state, sz, ops::Acc::R));
      // Pointwise residual from the stored gradients.
      fs.loop({"sbli_residual_sa", hw::KernelClass::Interior, 75.0},
              [](ops::ACC<double> r, ops::ACC<double> s,
                 ops::ACC<double> gx, ops::ACC<double> gy,
                 ops::ACC<double> gz) {
                double ax[5], ay[5], az[5];
                for (int c = 0; c < 5; ++c) {
                  ax[c] = gx.comp(c, 0, 0, 0);
                  ay[c] = gy.comp(c, 0, 0, 0);
                  az[c] = gz.comp(c, 0, 0, 0);
                }
                residual_from_grads(r, s, ax, ay, az);
              },
              ops::arg(res, ops::S_PT, ops::Acc::W),
              ops::arg(state, ops::star(1, 3), ops::Acc::R),
              ops::arg(gradx, ops::S_PT, ops::Acc::R),
              ops::arg(grady, ops::S_PT, ops::Acc::R),
              ops::arg(gradz, ops::S_PT, ops::Acc::R));
    } else {
      // Store-None: recompute every derivative in one fused kernel.
      fs.loop({"sbli_residual_sn", hw::KernelClass::Interior, 190.0},
              [](ops::ACC<double> r, ops::ACC<double> s) {
                double ax[5], ay[5], az[5];
                for (int c = 0; c < 5; ++c) {
                  ax[c] = d1(s, c, 1, 0, 0);
                  ay[c] = d1(s, c, 0, 1, 0);
                  az[c] = d1(s, c, 0, 0, 1);
                }
                residual_from_grads(r, s, ax, ay, az);
              },
              ops::arg(res, ops::S_PT, ops::Acc::W),
              ops::arg(state, ops::star(2, 3), ops::Acc::R));
    }
  };

  for (int t = 0; t < ps.iters; ++t) {
    // One capture scope per step; the dataflow partitioner cuts at the
    // state-update WAR edges by itself, so the whole step can be
    // enqueued unconditionally.
    ops::FusedScope fs(ctx, grid);
    if (rk_stages == 1) {
      eval_residual(fs);
      // Forward-Euler update of the five state components.
      fs.loop({"sbli_update", hw::KernelClass::Interior, 10.0},
              [](ops::ACC<double> s, ops::ACC<double> r) {
                for (int c = 0; c < 5; ++c)
                  s.comp(c, 0, 0, 0) += kDt * r.comp(c, 0, 0, 0);
              },
              ops::arg(state, ops::S_PT, ops::Acc::RW),
              ops::arg(res, ops::S_PT, ops::Acc::R));
      continue;  // fs flushes on scope exit
    }
    // SSP-RK3 (Shu-Osher): u' = a*u0 + b*(u + dt*L(u)) per stage.
    fs.loop({"sbli_rk_store", hw::KernelClass::Interior, 0.0},
            [](ops::ACC<double> s0, ops::ACC<double> s) {
              for (int c = 0; c < 5; ++c)
                s0.comp(c, 0, 0, 0) = s.comp(c, 0, 0, 0);
            },
            ops::arg(state0, ops::S_PT, ops::Acc::W),
            ops::arg(state, ops::S_PT, ops::Acc::R));
    constexpr double kA[3] = {0.0, 3.0 / 4.0, 1.0 / 3.0};
    constexpr double kB[3] = {1.0, 1.0 / 4.0, 2.0 / 3.0};
    for (int stage = 0; stage < 3; ++stage) {
      eval_residual(fs);
      const double a = kA[stage], b = kB[stage];
      fs.loop({"sbli_rk_update", hw::KernelClass::Interior, 25.0},
              [a, b](ops::ACC<double> s, ops::ACC<double> s0,
                     ops::ACC<double> r) {
                for (int c = 0; c < 5; ++c)
                  s.comp(c, 0, 0, 0) =
                      a * s0.comp(c, 0, 0, 0) +
                      b * (s.comp(c, 0, 0, 0) +
                           kDt * r.comp(c, 0, 0, 0));
              },
              ops::arg(state, ops::S_PT, ops::Acc::RW),
              ops::arg(state0, ops::S_PT, ops::Acc::R),
              ops::arg(res, ops::S_PT, ops::Acc::R));
    }
  }

  RunSummary rs;
  rs.profiles = std::move(ctx.profiles);
  if (ctx.executing()) {
    double sum = 0.0;
    for (long k = 0; k < nz; ++k)
      for (long j = 0; j < ny; ++j)
        for (long i = 0; i < nx; ++i) sum += state.at(k, j, i, RHO);
    rs.checksum = sum;
  }
  return rs;
}

}  // namespace

RunSummary run_opensbli_sa(const ops::Options& opt, ProblemSize ps) {
  return run_opensbli(opt, ps, /*store_all=*/true, /*rk_stages=*/1);
}

RunSummary run_opensbli_sn(const ops::Options& opt, ProblemSize ps) {
  return run_opensbli(opt, ps, /*store_all=*/false, /*rk_stages=*/1);
}

RunSummary run_opensbli_sa_rk3(const ops::Options& opt, ProblemSize ps) {
  return run_opensbli(opt, ps, /*store_all=*/true, /*rk_stages=*/3);
}

RunSummary run_opensbli_sn_rk3(const ops::Options& opt, ProblemSize ps) {
  return run_opensbli(opt, ps, /*store_all=*/false, /*rk_stages=*/3);
}

}  // namespace syclport::apps
