#pragma once
/// \file tuning_priors.hpp
/// Bridge from the analytic hardware model to the online autotuner:
/// turn the calibrated Platform descriptor closest to the host into
/// rt::autotune::Priors, so the successive-halving search starts from
/// the configurations the model already predicts to be competitive
/// (schedule ordering, cache-sized grains, work-group totals) instead
/// of a blind grid.

#include "hwmodel/platform.hpp"
#include "runtime/autotune/config.hpp"

namespace syclport::hw {

/// The calibrated CPU platform whose core count is nearest the host's
/// (the runtime executes on the host CPU; GPU descriptors only shape
/// nd_range priors indirectly through their shared work-group totals).
[[nodiscard]] const Platform& nearest_host_platform();

/// Priors derived from `p`: schedule order (NUMA-penalized platforms
/// prefer Steal, single-domain ones Static), grain seeds sized so a
/// chunk's triad footprint sits in L1 / in a per-core LLC share, and
/// the study's work-group totals.
[[nodiscard]] rt::autotune::Priors tuning_priors(const Platform& p);

/// Install tuning_priors(nearest_host_platform()) into
/// rt::autotune::Autotuner::instance(), once per process. Called from
/// the ops/op2 entry points; cheap after the first call.
void seed_autotuner_priors();

}  // namespace syclport::hw
