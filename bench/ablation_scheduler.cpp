// Ablation: executor scheduling policy (static vs dynamic vs steal).
//
// The paper attributes much of the CPU-side SYCL gap to runtime
// scheduling and barrier-emulation overhead (§4.2), so the executor's
// own overhead must be small and measurable for the flat/nd_range and
// workgroup ablations to reflect modeled effects rather than executor
// noise. This bench isolates that overhead on three axes:
//
//   1. launch latency   - back-to-back launches of trivial chunk sets
//                         (spin-then-park wake path, join cost);
//   2. balanced sweep   - steady-state bandwidth-bound triad throughput
//                         across chunk grains (claim-path contention);
//   3. unbalanced chunks- front-loaded per-chunk work, where static
//                         splits serialise on the loaded worker and the
//                         shared dynamic counter pays one contended
//                         fetch_add per fine chunk; steal-half should
//                         win or tie everywhere.
//
// Emits ablation_scheduler.csv next to the binary like the other
// ablations.

#include <cstddef>
#include <iostream>
#include <vector>

#include "core/report.hpp"
#include "core/timing.hpp"
#include "runtime/thread_pool.hpp"

using namespace syclport;

namespace {

constexpr rt::Schedule kSchedules[] = {rt::Schedule::Static,
                                       rt::Schedule::Dynamic,
                                       rt::Schedule::Steal};

/// Spin work whose loop survives optimisation when the result is unused.
double spin(int iters) {
  volatile double x = 1.0;
  for (int i = 0; i < iters; ++i) x = x * 1.0000001 + 1e-9;
  return x;
}

/// Median-of-reps wall seconds of `fn()`.
template <typename F>
double timed_median(int reps, F&& fn) {
  std::vector<double> t;
  t.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    WallTimer w;
    fn();
    t.push_back(w.seconds());
  }
  std::sort(t.begin(), t.end());
  return t[t.size() / 2];
}

double launch_latency_us(rt::ThreadPool& pool, rt::Schedule sched) {
  rt::ScopedLaunchParams scope(sched, std::nullopt);
  const std::size_t nchunks = pool.size() * 4;
  std::atomic<std::size_t> sink{0};
  auto launch = [&] {
    pool.run_chunks(nchunks, [&](std::size_t c) {
      sink.fetch_add(c, std::memory_order_relaxed);
    });
  };
  for (int i = 0; i < 200; ++i) launch();  // warm up spin path
  const int batch = 2000;
  const double s = timed_median(5, [&] {
    for (int i = 0; i < batch; ++i) launch();
  });
  return s / batch * 1e6;
}

double balanced_gbs(rt::ThreadPool& pool, rt::Schedule sched,
                    std::size_t grain, std::vector<double>& a,
                    const std::vector<double>& b,
                    const std::vector<double>& c) {
  rt::ScopedLaunchParams scope(sched, grain);
  const std::size_t n = a.size();
  auto sweep = [&] {
    pool.parallel_for(n, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) a[i] = b[i] + 0.4 * c[i];
    });
  };
  sweep();  // warm up
  const double s = timed_median(7, sweep);
  return 3.0 * static_cast<double>(n) * sizeof(double) / s / 1e9;
}

struct UnbalancedResult {
  double ms = 0.0;
  rt::LaunchStats stats;
};

UnbalancedResult unbalanced_ms(rt::ThreadPool& pool, rt::Schedule sched) {
  rt::ScopedLaunchParams scope(sched, std::nullopt);
  // 4096 fine chunks; the first eighth carries ~64x the work of the
  // rest, so an even static split leaves most workers idle while the
  // shared dynamic counter pays contention on every tiny tail chunk.
  const std::size_t nchunks = 4096;
  auto job = [&] {
    pool.run_chunks(nchunks, [&](std::size_t chunk) {
      spin(chunk < nchunks / 8 ? 6400 : 100);
    });
  };
  job();  // warm up
  UnbalancedResult r;
  r.ms = timed_median(7, job) * 1e3;
  r.stats = rt::ThreadPool::last_stats();
  return r;
}

}  // namespace

int main() {
  rt::ThreadPool& pool = rt::ThreadPool::global();
  std::cout << "=== Ablation: executor scheduling (static vs dynamic vs "
               "steal), "
            << pool.size() << " workers ===\n\n";

  report::Table t({"experiment", "schedule", "grain", "metric", "value"});

  std::cout << "-- launch latency (back-to-back trivial launches) --\n";
  for (const auto sched : kSchedules) {
    const double us = launch_latency_us(pool, sched);
    std::cout << "  " << rt::to_string(sched) << ": " << report::fmt(us, 2)
              << " us/launch\n";
    t.add_row({"launch_latency", rt::to_string(sched), "-", "us_per_launch",
               report::fmt(us, 3)});
  }

  std::cout << "\n-- balanced triad (32 MiB x 3 streams) --\n";
  {
    const std::size_t n = 1u << 22;
    std::vector<double> a(n, 0.0), b(n, 1.0), c(n, 2.0);
    for (const auto sched : kSchedules) {
      for (const std::size_t grain : {std::size_t{1}, std::size_t{4096},
                                      std::size_t{65536}}) {
        const double gbs = balanced_gbs(pool, sched, grain, a, b, c);
        std::cout << "  " << rt::to_string(sched) << " grain " << grain
                  << ": " << report::fmt(gbs, 2) << " GB/s\n";
        t.add_row({"balanced_triad", rt::to_string(sched),
                   std::to_string(grain), "GB_per_s", report::fmt(gbs, 3)});
      }
    }
  }

  std::cout << "\n-- unbalanced chunks (front-loaded 64x skew, 4096 chunks) "
               "--\n";
  for (const auto sched : kSchedules) {
    const UnbalancedResult r = unbalanced_ms(pool, sched);
    std::cout << "  " << rt::to_string(sched) << ": " << report::fmt(r.ms, 2)
              << " ms (steals " << r.stats.steals << ", stolen chunks "
              << r.stats.stolen_chunks << ")\n";
    t.add_row({"unbalanced", rt::to_string(sched), "-", "wall_ms",
               report::fmt(r.ms, 3)});
    t.add_row({"unbalanced", rt::to_string(sched), "-", "steals",
               std::to_string(r.stats.steals)});
  }

  std::cout << "\n";
  t.render(std::cout);
  if (t.save_csv("ablation_scheduler.csv"))
    std::cout << "\nwrote ablation_scheduler.csv\n";
  std::cout << "(steal must be no worse than dynamic on latency/balanced and "
               "beat static on unbalanced; dynamic's shared counter pays "
               "per-chunk contention the per-worker ranges avoid.)\n";
  return 0;
}
