#include "core/statistics.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace syclport::stats {

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - m) * (x - m);
  return std::sqrt(ss / static_cast<double>(xs.size() - 1));
}

double harmonic_mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double inv = 0.0;
  for (double x : xs) {
    if (x <= 0.0) return 0.0;
    inv += 1.0 / x;
  }
  return static_cast<double>(xs.size()) / inv;
}

double geometric_mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double logsum = 0.0;
  for (double x : xs) {
    if (x <= 0.0) return 0.0;
    logsum += std::log(x);
  }
  return std::exp(logsum / static_cast<double>(xs.size()));
}

double weighted_mean(std::span<const double> xs,
                     std::span<const double> ws) noexcept {
  double num = 0.0, den = 0.0;
  const std::size_t n = std::min(xs.size(), ws.size());
  for (std::size_t i = 0; i < n; ++i) {
    num += xs[i] * ws[i];
    den += ws[i];
  }
  return den > 0.0 ? num / den : 0.0;
}

double min(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  return *std::min_element(xs.begin(), xs.end());
}

double max(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  return *std::max_element(xs.begin(), xs.end());
}

double median(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  std::vector<double> v(xs.begin(), xs.end());
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid),
                   v.end());
  if (v.size() % 2 == 1) return v[mid];
  const double hi = v[mid];
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid) - 1,
                   v.end());
  return 0.5 * (v[mid - 1] + hi);
}

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  std::vector<double> v(xs.begin(), xs.end());
  // Type-7 (linear) interpolation: rank r = p/100 * (n-1), value
  // between the floor(r)-th and ceil(r)-th order statistics.
  const double r = p / 100.0 * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(r);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(lo),
                   v.end());
  const double vlo = v[lo];
  if (hi == lo) return vlo;
  const double vhi =
      *std::min_element(v.begin() + static_cast<std::ptrdiff_t>(hi), v.end());
  return vlo + (r - static_cast<double>(lo)) * (vhi - vlo);
}

}  // namespace syclport::stats
