#include "hwmodel/tuning_priors.hpp"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <thread>

#include "hwmodel/memory_model.hpp"
#include "runtime/autotune/autotune.hpp"

namespace syclport::hw {

namespace {

/// Round to the nearest power of two, clamped to [lo, hi].
[[nodiscard]] std::size_t pow2_clamp(double v, std::size_t lo, std::size_t hi) {
  const double l = std::log2(std::max(v, 1.0));
  const auto p = static_cast<std::size_t>(1)
                 << static_cast<unsigned>(std::lround(std::max(l, 0.0)));
  return std::clamp(p, lo, hi);
}

}  // namespace

const Platform& nearest_host_platform() {
  const auto host_cores =
      static_cast<double>(std::max(1u, std::thread::hardware_concurrency()));
  const Platform* best = &platform(kCpuPlatforms[0]);
  double best_d = 1e30;
  for (const PlatformId id : kCpuPlatforms) {
    const Platform& p = platform(id);
    const double d = std::abs(std::log2(host_cores / p.cores));
    if (d < best_d) {
      best_d = d;
      best = &p;
    }
  }
  return *best;
}

rt::autotune::Priors tuning_priors(const Platform& p) {
  rt::autotune::Priors pr;
  // Schedule ordering (paper §4.1 / PR 1 ablation): multi-NUMA CPUs
  // with first-touch penalties favour stealing (it repairs imbalance
  // without a shared counter); single-domain parts run Static with
  // near-zero overhead, so try it first there.
  if (p.numa_domains > 1 || p.numa_penalty < 1.0)
    pr.schedule_order = {rt::Schedule::Steal, rt::Schedule::Static,
                         rt::Schedule::Dynamic};
  else
    pr.schedule_order = {rt::Schedule::Static, rt::Schedule::Steal,
                         rt::Schedule::Dynamic};

  // Grain seeds: a chunk of a three-array double-precision sweep that
  // (a) fits the per-core L1 slice and (b) fits a per-core share of the
  // LLC - the two residency regimes the memory model distinguishes.
  constexpr double kTriadBytes = 3.0 * sizeof(double);
  const double l1_items =
      p.l1.bytes / std::max(1, p.cores) / kTriadBytes;
  const double llc_items =
      p.llc.bytes / std::max(1, p.cores) / kTriadBytes;
  pr.grains = {1, pow2_clamp(l1_items, 64, 1u << 15),
               pow2_clamp(llc_items, 256, 1u << 20)};

  // Work-group totals: a sub-group-aligned small tile and the study's
  // 256-item default (the shape the OPS/OP2 apps tune around).
  pr.wg_totals = {pow2_clamp(4.0 * p.sub_group, 16, 128), 256};

  // LoopChain tile depths (kTile axis): cache-residency-derived. The
  // anchor is the deepest tile whose chain slab - a representative
  // bandwidth-bound chain of ~6 double fields over a study-scale
  // 1536-point row - stays within the usable LLC (memory_model's
  // chain_tile_residency); bracketed 4x either side so successive
  // halving can resolve the chain's real row size.
  constexpr double kChainRowBytes = 6.0 * sizeof(double) * 1536.0;
  const std::size_t fit = pow2_clamp(
      usable_llc_bytes(p) / kChainRowBytes, 8, 512);
  pr.tiles = {std::max<std::size_t>(4, fit / 4), fit,
              std::min<std::size_t>(2048, fit * 4)};

  // First-touch order (kFirstTouch axis): on multi-domain parts (or
  // ones with a modeled first-touch penalty) parallel placement is the
  // expected winner, so try it first; on single-domain parts the two
  // should tie and serial touch - which skips the pool fan-out - leads.
  if (p.numa_domains > 1 || p.numa_penalty < 1.0)
    pr.first_touch_order = {true, false};
  else
    pr.first_touch_order = {false, true};

  // Kernel-variant seeds (kRegTile|kVecWidth|kUnroll): vector widths
  // bracket the platform's SIMD/sub-group width (CPUs want the compiler
  // fed full vectors, GPUs get ILP from >1 element per work-item);
  // register rows and unroll stay small - they multiply live state.
  const int sg = std::clamp(p.sub_group, 1, 8);
  pr.vec_widths = {1, std::max(2, sg / 2), sg};
  pr.reg_tiles = {1, 2, 4};
  pr.unrolls = {1, 2};
  // Register-capacity bound: GPUs hold more live elements per work-item
  // (large register files), CPUs spill past ~one vector register's
  // worth of accumulator rows.
  pr.max_variant_elems = p.gpu ? 32 : 16;
  // Cache-block seed (kCacheBlock): a fast-dimension slice of a
  // three-stream double sweep that stays resident in a per-core L1
  // share while rows above revisit it.
  pr.cache_blocks = {
      0, pow2_clamp(p.l1.bytes / std::max(1, p.cores) / kTriadBytes, 128,
                    1u << 12)};

  // Indirect strategy x layout (kIndirect|kLayout, op2 edge loops).
  // CPUs: atomic throughput is 1-2 orders below GPUs while wide SIMD
  // sits idle in the racy eager sweep, so the staged lowering (dense
  // gathered streams, ordered scatter, fully vectorized) leads, and
  // SoA - which feeds those streams unit-strided - is raced against
  // AoS. GPU-like descriptors keep atomics/AoS first: hardware atomics
  // are near-free and a warp's AoS gather coalesces (paper §4.3).
  if (p.gpu) {
    pr.indirect_order = {1, 4, -1, -1};  // atomics, staged
    pr.layout_order = {0, -1, -1};       // AoS
  } else {
    pr.indirect_order = {4, 1, 3, -1};   // staged, atomics, hierarchical
    pr.layout_order = {0, 1, -1};        // AoS, SoA
  }
  return pr;
}

void seed_autotuner_priors() {
  static std::once_flag once;
  std::call_once(once, [] {
    rt::autotune::Autotuner::instance().set_priors(
        tuning_priors(nearest_host_platform()));
  });
}

}  // namespace syclport::hw
