# Empty dependencies file for ablation_coloring.
# This may be replaced when dependencies are built.
