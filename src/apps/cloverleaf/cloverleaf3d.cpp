#include "apps/cloverleaf/cloverleaf3d.hpp"

#include <cmath>

#include "ops/fusion.hpp"

namespace syclport::apps {

namespace {
constexpr double kGamma = 1.4;
constexpr double kDt = 0.0015;
constexpr double kRhoFloor = 1e-8;

using D = ops::Dat<double>;
using A = ops::ACC<double>;

/// Mirror one field into `depth` halo layers on all six faces. Issued
/// through the step's capture scope; the in-place stencil (RW with
/// nonzero radius) makes the partitioner isolate each strip.
void update_halo3d(ops::FusedScope& fs, ops::Block& grid, D& f, int depth) {
  const long nz = static_cast<long>(grid.size(0));
  const long ny = static_cast<long>(grid.size(1));
  const long nx = static_cast<long>(grid.size(2));
  const ops::Stencil reach{2 * depth, 2 * depth, 2 * depth, 2};

  ops::Range xlo{{0, 0, -depth}, {nz, ny, 0}};
  fs.loop({"halo_xlo", hw::KernelClass::Boundary, 0.0}, xlo,
                [](A a) { a(0, 0, 0) = a(1, 0, 0); },
                ops::arg(f, reach, ops::Acc::RW));
  ops::Range xhi{{0, 0, nx}, {nz, ny, nx + depth}};
  fs.loop({"halo_xhi", hw::KernelClass::Boundary, 0.0}, xhi,
                [](A a) { a(0, 0, 0) = a(-1, 0, 0); },
                ops::arg(f, reach, ops::Acc::RW));
  ops::Range ylo{{0, -depth, -depth}, {nz, 0, nx + depth}};
  fs.loop({"halo_ylo", hw::KernelClass::Boundary, 0.0}, ylo,
                [](A a) { a(0, 0, 0) = a(0, 1, 0); },
                ops::arg(f, reach, ops::Acc::RW));
  ops::Range yhi{{0, ny, -depth}, {nz, ny + depth, nx + depth}};
  fs.loop({"halo_yhi", hw::KernelClass::Boundary, 0.0}, yhi,
                [](A a) { a(0, 0, 0) = a(0, -1, 0); },
                ops::arg(f, reach, ops::Acc::RW));
  ops::Range zlo{{-depth, -depth, -depth}, {0, ny + depth, nx + depth}};
  fs.loop({"halo_zlo", hw::KernelClass::Boundary, 0.0}, zlo,
                [](A a) { a(0, 0, 0) = a(0, 0, 1); },
                ops::arg(f, reach, ops::Acc::RW));
  ops::Range zhi{{nz, -depth, -depth}, {nz + depth, ny + depth, nx + depth}};
  fs.loop({"halo_zhi", hw::KernelClass::Boundary, 0.0}, zhi,
                [](A a) { a(0, 0, 0) = a(0, 0, -1); },
                ops::arg(f, reach, ops::Acc::RW));
}

}  // namespace

RunSummary run_cloverleaf3d(const ops::Options& opt, ProblemSize ps) {
  ops::Context ctx(opt);
  ops::Block grid(ctx, "clover3d", 3, ps.grid);
  const long nz = static_cast<long>(ps.grid[0]);
  const long ny = static_cast<long>(ps.grid[1]);
  const long nx = static_cast<long>(ps.grid[2]);

  D density0(grid, "density0", 1, 2), density1(grid, "density1", 1, 2);
  D energy0(grid, "energy0", 1, 2), energy1(grid, "energy1", 1, 2);
  D pressure(grid, "pressure", 1, 2), viscosity(grid, "viscosity", 1, 2);
  D soundspeed(grid, "soundspeed", 1, 2);
  D vel0(grid, "vel0", 3, 2), vel1(grid, "vel1", 3, 2);
  D vol_flux(grid, "vol_flux", 3, 2);
  D mass_flux(grid, "mass_flux", 1, 2), ener_flux(grid, "ener_flux", 1, 2);
  D mom_flux(grid, "mom_flux", 3, 2);

  if (ctx.executing()) {
    for (long k = -2; k < nz + 2; ++k)
      for (long j = -2; j < ny + 2; ++j)
        for (long i = -2; i < nx + 2; ++i) {
          const bool hot = k < nz / 3 && j < ny / 3 && i < nx / 3;
          density0.at(k, j, i) = hot ? 1.0 : 0.2;
          energy0.at(k, j, i) = hot ? 2.5 : 1.0;
        }
  }

  const ops::Stencil s7{1, 1, 1, 7};
  const ops::Stencil face{1, 1, 1, 8};

  // Outlives each step's FusedScope (reduction target: the captured
  // calc_dt accumulates into it at flush).
  double dt_min = 1e30;

  for (int step = 0; step < ps.iters; ++step) {
    ops::FusedScope fs(ctx, grid);
    dt_min = 1e30;
    fs.loop({"ideal_gas", hw::KernelClass::Interior, 9.0},
                  [](A d, A e, A p, A ss) {
                    const double rho = std::max(kRhoFloor, d(0, 0, 0));
                    p(0, 0, 0) = (kGamma - 1.0) * rho * e(0, 0, 0);
                    ss(0, 0, 0) = std::sqrt(kGamma * p(0, 0, 0) / rho);
                  },
                  ops::arg(density0, ops::S_PT, ops::Acc::R),
                  ops::arg(energy0, ops::S_PT, ops::Acc::R),
                  ops::arg(pressure, ops::S_PT, ops::Acc::W),
                  ops::arg(soundspeed, ops::S_PT, ops::Acc::W));
    update_halo3d(fs, grid, pressure, 1);

    fs.loop({"viscosity", hw::KernelClass::Interior, 30.0},
                  [](A visc, A d, A v) {
                    const double div = (v.comp(0, 1, 0, 0) - v.comp(0, 0, 0, 0)) +
                                       (v.comp(1, 0, 1, 0) - v.comp(1, 0, 0, 0)) +
                                       (v.comp(2, 0, 0, 1) - v.comp(2, 0, 0, 0));
                    visc(0, 0, 0) =
                        div < 0.0 ? 2.0 * d(0, 0, 0) * div * div : 0.0;
                  },
                  ops::arg(viscosity, ops::S_PT, ops::Acc::W),
                  ops::arg(density0, ops::S_PT, ops::Acc::R),
                  ops::arg(vel0, face, ops::Acc::R));
    update_halo3d(fs, grid, viscosity, 1);

    fs.loop({"calc_dt", hw::KernelClass::Reduction, 16.0},
                  [](A ss, A v, ops::Reducer<double> r) {
                    const double speed = ss(0, 0, 0) +
                                         std::fabs(v.comp(0, 0, 0, 0)) +
                                         std::fabs(v.comp(1, 0, 0, 0)) +
                                         std::fabs(v.comp(2, 0, 0, 0));
                    r.combine(1.0 / std::max(1e-12, speed));
                  },
                  ops::arg(soundspeed, ops::S_PT, ops::Acc::R),
                  ops::arg(vel0, ops::S_PT, ops::Acc::R),
                  ops::reduce(dt_min, ops::RedOp::Min));

    fs.loop({"pdv", hw::KernelClass::Interior, 32.0},
                  [](A d1k, A e1k, A d0, A e0, A p, A vc, A v) {
                    const double div = (v.comp(0, 1, 0, 0) - v.comp(0, 0, 0, 0)) +
                                       (v.comp(1, 0, 1, 0) - v.comp(1, 0, 0, 0)) +
                                       (v.comp(2, 0, 0, 1) - v.comp(2, 0, 0, 0));
                    const double rho = std::max(kRhoFloor, d0(0, 0, 0));
                    d1k(0, 0, 0) = rho / (1.0 + kDt * div);
                    e1k(0, 0, 0) = e0(0, 0, 0) -
                                   kDt * (p(0, 0, 0) + vc(0, 0, 0)) * div / rho;
                  },
                  ops::arg(density1, ops::S_PT, ops::Acc::W),
                  ops::arg(energy1, ops::S_PT, ops::Acc::W),
                  ops::arg(density0, ops::S_PT, ops::Acc::R),
                  ops::arg(energy0, ops::S_PT, ops::Acc::R),
                  ops::arg(pressure, ops::S_PT, ops::Acc::R),
                  ops::arg(viscosity, ops::S_PT, ops::Acc::R),
                  ops::arg(vel0, face, ops::Acc::R));

    fs.loop({"accelerate", hw::KernelClass::Interior, 30.0},
                  [](A v1, A v0, A d, A p, A vc) {
                    const double rho = std::max(kRhoFloor, d(0, 0, 0));
                    v1.comp(0, 0, 0, 0) =
                        v0.comp(0, 0, 0, 0) -
                        kDt * (p(0, 0, 0) - p(-1, 0, 0) + vc(0, 0, 0) -
                               vc(-1, 0, 0)) /
                            rho;
                    v1.comp(1, 0, 0, 0) =
                        v0.comp(1, 0, 0, 0) -
                        kDt * (p(0, 0, 0) - p(0, -1, 0) + vc(0, 0, 0) -
                               vc(0, -1, 0)) /
                            rho;
                    v1.comp(2, 0, 0, 0) =
                        v0.comp(2, 0, 0, 0) -
                        kDt * (p(0, 0, 0) - p(0, 0, -1) + vc(0, 0, 0) -
                               vc(0, 0, -1)) /
                            rho;
                  },
                  ops::arg(vel1, ops::S_PT, ops::Acc::W),
                  ops::arg(vel0, ops::S_PT, ops::Acc::R),
                  ops::arg(density0, ops::S_PT, ops::Acc::R),
                  ops::arg(pressure, s7, ops::Acc::R),
                  ops::arg(viscosity, s7, ops::Acc::R));
    update_halo3d(fs, grid, vel1, 1);

    fs.loop({"flux_calc", hw::KernelClass::Interior, 9.0},
                  [](A f, A v0, A v1) {
                    for (int c = 0; c < 3; ++c)
                      f.comp(c, 0, 0, 0) =
                          0.25 * kDt *
                          (v0.comp(c, 0, 0, 0) + v1.comp(c, 0, 0, 0));
                  },
                  ops::arg(vol_flux, ops::S_PT, ops::Acc::W),
                  ops::arg(vel0, ops::S_PT, ops::Acc::R),
                  ops::arg(vel1, ops::S_PT, ops::Acc::R));
    update_halo3d(fs, grid, vol_flux, 1);

    // Directional advection sweeps (x, y, z): donor-cell fluxes then
    // a pointwise update; same two-kernel structure as 2D.
    auto advect = [&](int c, int dx, int dy, int dz, const char* fname,
                      const char* uname, const char* mname,
                      const char* vname) {
      fs.loop({fname, hw::KernelClass::Interior, 16.0},
                    [c, dx, dy, dz](A mf, A ef, A vf, A d, A e) {
                      const double f = vf.comp(c, 0, 0, 0);
                      const int ux = f > 0.0 ? -dx : 0;
                      const int uy = f > 0.0 ? -dy : 0;
                      const int uz = f > 0.0 ? -dz : 0;
                      mf(0, 0, 0) = f * d(ux, uy, uz);
                      ef(0, 0, 0) = f * d(ux, uy, uz) * e(ux, uy, uz);
                    },
                    ops::arg(mass_flux, ops::S_PT, ops::Acc::W),
                    ops::arg(ener_flux, ops::S_PT, ops::Acc::W),
                    ops::arg(vol_flux, ops::S_PT, ops::Acc::R),
                    ops::arg(density1, s7, ops::Acc::R),
                    ops::arg(energy1, s7, ops::Acc::R));
      update_halo3d(fs, grid, mass_flux, 1);
      update_halo3d(fs, grid, ener_flux, 1);
      fs.loop({uname, hw::KernelClass::Interior, 18.0},
                    [dx, dy, dz](A d, A e, A mf, A ef) {
                      const double dm = mf(0, 0, 0) - mf(dx, dy, dz);
                      const double de = ef(0, 0, 0) - ef(dx, dy, dz);
                      const double rho_new =
                          std::max(kRhoFloor, d(0, 0, 0) + dm);
                      e(0, 0, 0) = (d(0, 0, 0) * e(0, 0, 0) + de) / rho_new;
                      d(0, 0, 0) = rho_new;
                    },
                    ops::arg(density1, ops::S_PT, ops::Acc::RW),
                    ops::arg(energy1, ops::S_PT, ops::Acc::RW),
                    ops::arg(mass_flux, s7, ops::Acc::R),
                    ops::arg(ener_flux, s7, ops::Acc::R));
      // Momentum advection for all three components in this direction.
      fs.loop({mname, hw::KernelClass::Interior, 14.0},
                    [c, dx, dy, dz](A mf, A vf, A v) {
                      const double f = vf.comp(c, 0, 0, 0);
                      const int ux = f > 0.0 ? -dx : 0;
                      const int uy = f > 0.0 ? -dy : 0;
                      const int uz = f > 0.0 ? -dz : 0;
                      for (int q = 0; q < 3; ++q)
                        mf.comp(q, 0, 0, 0) = f * v.comp(q, ux, uy, uz);
                    },
                    ops::arg(mom_flux, ops::S_PT, ops::Acc::W),
                    ops::arg(vol_flux, ops::S_PT, ops::Acc::R),
                    ops::arg(vel1, s7, ops::Acc::R));
      fs.loop({vname, hw::KernelClass::Interior, 9.0},
                    [dx, dy, dz](A v, A mf) {
                      for (int q = 0; q < 3; ++q)
                        v.comp(q, 0, 0, 0) +=
                            mf.comp(q, 0, 0, 0) - mf.comp(q, dx, dy, dz);
                    },
                    ops::arg(vel1, ops::S_PT, ops::Acc::RW),
                    ops::arg(mom_flux, s7, ops::Acc::R));
    };
    advect(0, 1, 0, 0, "advec_cell_flux_x", "advec_cell_upd_x",
           "advec_mom_flux_x", "advec_mom_upd_x");
    advect(1, 0, 1, 0, "advec_cell_flux_y", "advec_cell_upd_y",
           "advec_mom_flux_y", "advec_mom_upd_y");
    advect(2, 0, 0, 1, "advec_cell_flux_z", "advec_cell_upd_z",
           "advec_mom_flux_z", "advec_mom_upd_z");

    fs.loop({"reset_field", hw::KernelClass::Interior, 0.0},
                  [](A d0, A e0, A v0, A d1k, A e1k, A v1k) {
                    d0(0, 0, 0) = d1k(0, 0, 0);
                    e0(0, 0, 0) = e1k(0, 0, 0);
                    for (int q = 0; q < 3; ++q)
                      v0.comp(q, 0, 0, 0) = v1k.comp(q, 0, 0, 0);
                  },
                  ops::arg(density0, ops::S_PT, ops::Acc::W),
                  ops::arg(energy0, ops::S_PT, ops::Acc::W),
                  ops::arg(vel0, ops::S_PT, ops::Acc::W),
                  ops::arg(density1, ops::S_PT, ops::Acc::R),
                  ops::arg(energy1, ops::S_PT, ops::Acc::R),
                  ops::arg(vel1, ops::S_PT, ops::Acc::R));
    update_halo3d(fs, grid, density0, 2);
    update_halo3d(fs, grid, energy0, 2);
    update_halo3d(fs, grid, vel0, 1);
  }

  double mass = 0.0, ie = 0.0;
  ops::par_loop(ctx, {"field_summary", hw::KernelClass::Reduction, 6.0}, grid,
                ops::Range::all(grid),
                [](A d, A e, ops::Reducer<double> m, ops::Reducer<double> en) {
                  m += d(0, 0, 0);
                  en += d(0, 0, 0) * e(0, 0, 0);
                },
                ops::arg(density0, ops::S_PT, ops::Acc::R),
                ops::arg(energy0, ops::S_PT, ops::Acc::R),
                ops::reduce(mass, ops::RedOp::Sum),
                ops::reduce(ie, ops::RedOp::Sum));

  RunSummary rs;
  rs.profiles = std::move(ctx.profiles);
  if (ctx.executing()) rs.checksum = mass + ie;
  return rs;
}

}  // namespace syclport::apps
