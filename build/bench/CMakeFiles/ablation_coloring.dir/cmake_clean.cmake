file(REMOVE_RECURSE
  "CMakeFiles/ablation_coloring.dir/ablation_coloring.cpp.o"
  "CMakeFiles/ablation_coloring.dir/ablation_coloring.cpp.o.d"
  "ablation_coloring"
  "ablation_coloring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_coloring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
