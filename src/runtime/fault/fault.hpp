#pragma once
/// \file fault.hpp
/// Seeded, deterministic fault injection for every runtime layer.
///
/// The study's credibility rests on long bandwidth-bound runs surviving
/// thousands of launches across the executor, the out-of-order
/// scheduler, the pooled memory subsystem and the simulated-MPI halo
/// exchanges. This module makes their failure story *testable*: a
/// `Plan` (seeded PRNG plus per-site triggers, parsed from
/// `SYCLPORT_FAULT=seed:spec`) decides, reproducibly, which occurrence
/// of which instrumented site misbehaves. The sites cover:
///
///   mem.alloc     allocation failure (simulated upstream bad_alloc)
///   mem.arena     arena-cap pressure (pool bypassed for the request)
///   pool.stall    executor worker stall / late start
///   sched.delay   delayed command completion in the OoO scheduler
///   sched.reorder ready-queue reordering (DAG edges still honoured)
///   sched.throw   kernel-thrown exception inside a command
///   comm.drop     halo message lost on the wire
///   comm.dup      halo message delivered twice
///   comm.corrupt  halo payload bit-flipped in transit
///   comm.delay    halo message delivered late
///   cache.corrupt autotune cache bit-flipped on load
///   svc.fail      study-service request computation failure
///   rank.kill     a mini-MPI rank dies mid-epoch (elastic recovery)
///
/// Spec grammar (docs/resilience.md):
///   SYCLPORT_FAULT = <seed> ':' <entry> (',' <entry>)*
///   entry          = <site> '=' <trigger> [ 'x' <cap> ]
///   trigger        = <probability in [0,1]> | '@'<n> | '%'<n>
/// `<site>` is one of the names above or a `<group>.*` wildcard;
/// `@n` fires exactly the n-th occurrence, `%n` every n-th, a
/// probability fires each occurrence independently; `x<cap>` bounds the
/// total injections of the entry (so recovery proofs converge).
/// A malformed value warns once (rt::env) and disarms the layer.
///
/// Determinism: comm decisions key on (source, destination, tag,
/// sequence-number) and are exactly reproducible for a given seed
/// regardless of thread interleaving; the other sites key on a per-site
/// occurrence counter, so the n-th occurrence always gets the same
/// decision even when thread timing shuffles which call is n-th.
///
/// Zero cost when unset: every instrumented site guards on `armed()`,
/// a single relaxed atomic-bool load (verified against
/// bench/ablation_scheduler parity by bench/ablation_fault).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

namespace syclport::rt::fault {

/// Instrumented sites (stable order: spec names above map 1:1).
enum class Site : std::uint8_t {
  MemAlloc,
  MemArena,
  PoolStall,
  SchedDelay,
  SchedReorder,
  SchedThrow,
  CommDrop,
  CommDup,
  CommCorrupt,
  CommDelay,
  CacheCorrupt,
  ServiceFail,
  RankKill,
};
inline constexpr std::size_t kSiteCount = 13;

[[nodiscard]] const char* to_string(Site s) noexcept;
[[nodiscard]] std::optional<Site> site_from_string(std::string_view name);

namespace detail {
/// Armed flag. Sites read it through armed() below; configure()/clear()
/// write it. Relaxed is enough: arming happens before the faulted work
/// starts (static init or test setup), and a stale read only means one
/// more/fewer un-injected call.
extern std::atomic<bool> g_armed;
}  // namespace detail

/// Fast-path guard: true iff a fault plan is installed. Instrumented
/// sites must check this before anything else so an unset
/// SYCLPORT_FAULT costs one predictable branch.
[[nodiscard]] inline bool armed() noexcept {
  return detail::g_armed.load(std::memory_order_relaxed);
}

/// One injection decision. `value` is a deterministic 64-bit draw the
/// site may use to derive magnitudes (delay lengths, which bit to
/// flip) so those are reproducible too.
struct Roll {
  bool fire = false;
  std::uint64_t value = 0;
};

/// Decision for the next occurrence of `site` (advances the site's
/// occurrence counter). Never fires when disarmed or the site has no
/// trigger; respects the entry's injection cap.
[[nodiscard]] Roll roll(Site site) noexcept;

/// Fully deterministic decision for streamed sites: the occurrence is
/// identified by (stream, occurrence) - mini-MPI uses (src, dst, tag)
/// as the stream and the message sequence number as the occurrence -
/// so the decision is independent of thread interleaving.
[[nodiscard]] Roll roll_stream(Site site, std::uint64_t stream,
                               std::uint64_t occurrence) noexcept;

/// Collective variant of roll_stream: every caller of the same (site,
/// stream, occurrence) gets the *identical* decision, and a fired
/// decision consumes exactly one unit of the entry's injection cap no
/// matter how many callers observe it. This is what N ranks rolling one
/// shared event (rank.kill at a step boundary) need - with roll_stream
/// each rank's call would decrement the cap independently, making the
/// number of injected events depend on the rank count.
[[nodiscard]] Roll roll_shared(Site site, std::uint64_t stream,
                               std::uint64_t occurrence) noexcept;

/// Sleep for a short, bounded, deterministic interval derived from a
/// Roll's value: `value % (max_us - min_us) + min_us` microseconds.
/// Used by the stall/delay sites.
void inject_sleep(std::uint64_t value, std::uint64_t min_us,
                  std::uint64_t max_us) noexcept;

/// Record a successful recovery from an injected (or real) fault at
/// `site` - the pool falling back to a direct allocation, a halo
/// retransmit, a checkpoint rollback, a cache rejected to retuning.
void note_recovered(Site site) noexcept;

/// Cumulative injection/recovery telemetry (relaxed counters).
struct FaultStats {
  std::uint64_t injected[kSiteCount] = {};
  std::uint64_t recovered[kSiteCount] = {};

  [[nodiscard]] std::uint64_t injected_at(Site s) const noexcept {
    return injected[static_cast<std::size_t>(s)];
  }
  [[nodiscard]] std::uint64_t recovered_at(Site s) const noexcept {
    return recovered[static_cast<std::size_t>(s)];
  }
  [[nodiscard]] std::uint64_t total_injected() const noexcept {
    std::uint64_t t = 0;
    for (auto v : injected) t += v;
    return t;
  }
  [[nodiscard]] std::uint64_t total_recovered() const noexcept {
    std::uint64_t t = 0;
    for (auto v : recovered) t += v;
    return t;
  }
};

[[nodiscard]] FaultStats stats();
void reset_stats_for_testing();

/// Install a plan from a "seed:spec" string (the SYCLPORT_FAULT
/// syntax). Returns false (and warns through rt::env, leaving the
/// layer disarmed) on a malformed spec. An empty string disarms.
bool configure(std::string_view spec);

/// Disarm and drop the installed plan (tests).
void clear();

/// The seed of the installed plan (0 when disarmed) - chaos harnesses
/// echo it so a failing randomized run is reproducible.
[[nodiscard]] std::uint64_t seed() noexcept;

/// The exception type injected by sched.throw: a deliberately
/// recoverable kernel failure, distinguishable from genuine bugs.
class fault_injected_error : public std::runtime_error {
 public:
  explicit fault_injected_error(const std::string& what_arg)
      : std::runtime_error(what_arg) {}
};

/// Thrown by a watchdog-armed synchronization point
/// (SYCLPORT_WATCHDOG_MS) instead of deadlocking on a command that
/// never retires.
class watchdog_error : public std::runtime_error {
 public:
  watchdog_error(const std::string& what_arg, std::size_t stuck)
      : std::runtime_error(what_arg), stuck_commands(stuck) {}
  std::size_t stuck_commands = 0;
};

}  // namespace syclport::rt::fault
