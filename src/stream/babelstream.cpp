#include "stream/babelstream.hpp"

namespace syclport::stream {

namespace {
constexpr double kInitA = 0.1;
constexpr double kInitB = 0.2;
constexpr double kInitC = 0.0;
constexpr double kScalar = 0.4;
}  // namespace

double kernel_bytes(Kernel k, std::size_t n) {
  const double nb = static_cast<double>(n) * sizeof(double);
  switch (k) {
    case Kernel::Copy:
    case Kernel::Mul:
    case Kernel::Dot: return 2.0 * nb;
    case Kernel::Add:
    case Kernel::Triad: return 3.0 * nb;
  }
  return 0.0;
}

double expected_checksum(std::size_t n, int reps) {
  double a = kInitA, b = kInitB, c = kInitC, dot = 0.0;
  for (int r = 0; r < reps; ++r) {
    c = a;
    b = kScalar * c;
    c = a + b;
    a = b + kScalar * c;
    dot = a * b * static_cast<double>(n);
  }
  return static_cast<double>(n) * (a + b + c) + dot;
}

apps::RunSummary run(const ops::Options& opt, std::size_t n, int reps) {
  ops::Context ctx(opt);
  ops::Block grid(ctx, "stream", 1, {n, 1, 1});
  ops::Dat<double> a(grid, "a", 1, 0), b(grid, "b", 1, 0), c(grid, "c", 1, 0);

  if (ctx.executing()) {
    a.fill(kInitA);
    b.fill(kInitB);
    c.fill(kInitC);
  }

  const ops::Range all = ops::Range::all(grid);
  double dot = 0.0;
  for (int r = 0; r < reps; ++r) {
    ops::par_loop(ctx, {"stream_copy", hw::KernelClass::Interior, 0.0}, grid,
                  all,
                  [](ops::ACC<double> cc, ops::ACC<double> aa) {
                    cc(0) = aa(0);
                  },
                  ops::arg(c, ops::S_PT, ops::Acc::W),
                  ops::arg(a, ops::S_PT, ops::Acc::R));
    ops::par_loop(ctx, {"stream_mul", hw::KernelClass::Interior, 1.0}, grid,
                  all,
                  [](ops::ACC<double> bb, ops::ACC<double> cc) {
                    bb(0) = kScalar * cc(0);
                  },
                  ops::arg(b, ops::S_PT, ops::Acc::W),
                  ops::arg(c, ops::S_PT, ops::Acc::R));
    ops::par_loop(ctx, {"stream_add", hw::KernelClass::Interior, 1.0}, grid,
                  all,
                  [](ops::ACC<double> cc, ops::ACC<double> aa,
                     ops::ACC<double> bb) { cc(0) = aa(0) + bb(0); },
                  ops::arg(c, ops::S_PT, ops::Acc::W),
                  ops::arg(a, ops::S_PT, ops::Acc::R),
                  ops::arg(b, ops::S_PT, ops::Acc::R));
    ops::par_loop(ctx, {"stream_triad", hw::KernelClass::Interior, 2.0}, grid,
                  all,
                  [](ops::ACC<double> aa, ops::ACC<double> bb,
                     ops::ACC<double> cc) { aa(0) = bb(0) + kScalar * cc(0); },
                  ops::arg(a, ops::S_PT, ops::Acc::W),
                  ops::arg(b, ops::S_PT, ops::Acc::R),
                  ops::arg(c, ops::S_PT, ops::Acc::R));
    dot = 0.0;
    ops::par_loop(ctx, {"stream_dot", hw::KernelClass::Reduction, 2.0}, grid,
                  all,
                  [](ops::ACC<double> aa, ops::ACC<double> bb,
                     ops::Reducer<double> sum) { sum += aa(0) * bb(0); },
                  ops::arg(a, ops::S_PT, ops::Acc::R),
                  ops::arg(b, ops::S_PT, ops::Acc::R),
                  ops::reduce(dot, ops::RedOp::Sum));
  }

  apps::RunSummary rs;
  rs.profiles = std::move(ctx.profiles);
  if (ctx.executing())
    rs.checksum = a.interior_sum() + b.interior_sum() + c.interior_sum() + dot;
  return rs;
}

}  // namespace syclport::stream
