#pragma once
/// \file acoustic.hpp
/// High-order acoustic wave propagation solver (paper §3, item 4):
/// 8th-order FP32 finite differences like RTM, plus absorbing sponge
/// layers on all six faces (the extra boundary-region kernels that make
/// this code's boundary handling heavier than RTM's point source).

#include "apps/common.hpp"
#include "ops/ops.hpp"

namespace syclport::apps {

/// Paper configuration: 1000^3, 30 time iterations, single precision.
[[nodiscard]] inline ProblemSize acoustic_paper() {
  return {{1000, 1000, 1000}, 30};
}

/// Reduced configuration for functional validation runs.
[[nodiscard]] inline ProblemSize acoustic_small() { return {{30, 30, 30}, 6}; }

/// Run the acoustic solver; checksum is the final wavefield energy.
[[nodiscard]] RunSummary run_acoustic(const ops::Options& opt, ProblemSize ps);

}  // namespace syclport::apps
