// Roofline analysis of the seven applications: arithmetic intensity
// (flops per useful byte, from the recorded schedules) against each
// platform's balance point (peak flops / STREAM bandwidth). Confirms
// the paper's premise that the suite is "primarily bandwidth-limited"
// (§3): every application sits far left of every balance point, with
// OpenSBLI Store-None the closest - exactly the code the paper calls
// "the more compute-intensive formulation".

#include <iostream>

#include "common/figures.hpp"
#include "core/report.hpp"

using namespace syclport;

int main() {
  study::StudyRunner runner;
  std::cout << "=== Roofline: arithmetic intensity vs machine balance ===\n\n";

  report::Table balance({"platform", "FP64 balance (flop/B)",
                         "FP32 balance (flop/B)"});
  double min_balance = 1e300;
  for (PlatformId p : kAllPlatforms) {
    const auto& hwp = hw::platform(p);
    const double b64 = hwp.fp64_tflops * 1e12 / (hwp.stream_bw_gbs * 1e9);
    const double b32 = hwp.fp32_tflops * 1e12 / (hwp.stream_bw_gbs * 1e9);
    min_balance = std::min({min_balance, b64, b32});
    balance.add_row({std::string(to_string(p)), report::fmt(b64, 1),
                     report::fmt(b32, 1)});
  }
  balance.render(std::cout);

  std::cout << "\nApplication arithmetic intensities (from the recorded "
               "schedules):\n";
  report::Table t({"app", "AI (flop/B)", "fraction of lowest balance",
                   "regime"});
  report::Table csv({"app", "flops", "useful_bytes", "ai"});
  for (AppId a : kAllApps) {
    const Variant v = a == AppId::MGCFD
                          ? Variant{Model::CUDA, Toolchain::Native,
                                    Strategy::Atomics}
                          : study::native_variant(PlatformId::A100);
    const auto r = runner.run(a, PlatformId::A100, v);
    const double ai = r.useful_bytes > 0 ? r.flops / r.useful_bytes : 0.0;
    t.add_row({std::string(to_string(a)), report::fmt(ai, 2),
               report::fmt_percent(ai / min_balance),
               ai < min_balance ? "bandwidth-bound" : "compute-bound"});
    csv.add_row({std::string(to_string(a)), report::fmt(r.flops, 0),
                 report::fmt(r.useful_bytes, 0), report::fmt(ai, 3)});
  }
  t.render(std::cout);
  csv.save_csv("roofline_report.csv");
  std::cout << "\n[data written to roofline_report.csv]\n";
  return 0;
}
