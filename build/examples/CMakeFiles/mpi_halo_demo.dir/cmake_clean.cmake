file(REMOVE_RECURSE
  "CMakeFiles/mpi_halo_demo.dir/mpi_halo_demo.cpp.o"
  "CMakeFiles/mpi_halo_demo.dir/mpi_halo_demo.cpp.o.d"
  "mpi_halo_demo"
  "mpi_halo_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpi_halo_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
