#pragma once
/// \file halo.hpp
/// Face halo exchange for rank-local structured fields with ghost
/// layers, over the mini-MPI communicator. Pack, sendrecv, unpack -
/// the OPS MPI backend's exchange structure (paper §3). Header-only
/// template so any element type works.

#include <span>
#include <vector>

#include "minimpi/cart.hpp"
#include "minimpi/comm.hpp"

namespace syclport::mpi {

/// A rank-local field of `dims` dimensions with interior extents
/// `local[0..dims-1]` (slowest first, fastest last) and `halo` ghost
/// layers on every side. Storage row-major including ghosts.
template <typename T>
struct LocalField {
  int dims = 2;
  std::array<std::size_t, 3> local{1, 1, 1};
  int halo = 1;
  std::vector<T> data;

  [[nodiscard]] std::size_t padded(int d) const {
    return local[static_cast<std::size_t>(d)] + 2 * static_cast<std::size_t>(halo);
  }
  [[nodiscard]] std::size_t volume() const {
    std::size_t v = 1;
    for (int d = 0; d < dims; ++d) v *= padded(d);
    return v;
  }
  void allocate() { data.assign(volume(), T{}); }

  /// Index with coordinates relative to the interior origin: -halo ..
  /// local[d]+halo-1 are valid.
  [[nodiscard]] T& at(std::ptrdiff_t i, std::ptrdiff_t j = 0,
                      std::ptrdiff_t k = 0) {
    std::array<std::ptrdiff_t, 3> c{i, j, k};
    std::size_t lin = 0;
    for (int d = 0; d < dims; ++d)
      lin = lin * padded(d) +
            static_cast<std::size_t>(c[static_cast<std::size_t>(d)] + halo);
    return data[lin];
  }
};

namespace detail {
/// Iterate a face slab of thickness `halo` at `side` (0: low, 1: high)
/// of dimension `dim`, interior-adjacent (`ghost` false) or the ghost
/// region itself (`ghost` true); call fn(i,j,k) for every point.
template <typename T, typename Fn>
void for_face(const LocalField<T>& f, int dim, int side, bool ghost, Fn&& fn) {
  std::array<std::ptrdiff_t, 3> lo{0, 0, 0}, hi{1, 1, 1};
  for (int d = 0; d < f.dims; ++d) {
    lo[static_cast<std::size_t>(d)] = 0;
    hi[static_cast<std::size_t>(d)] =
        static_cast<std::ptrdiff_t>(f.local[static_cast<std::size_t>(d)]);
  }
  const auto ext = static_cast<std::ptrdiff_t>(f.local[static_cast<std::size_t>(dim)]);
  if (side == 0) {
    lo[static_cast<std::size_t>(dim)] = ghost ? -f.halo : 0;
    hi[static_cast<std::size_t>(dim)] = ghost ? 0 : f.halo;
  } else {
    lo[static_cast<std::size_t>(dim)] = ghost ? ext : ext - f.halo;
    hi[static_cast<std::size_t>(dim)] = ghost ? ext + f.halo : ext;
  }
  for (std::ptrdiff_t i = lo[0]; i < hi[0]; ++i)
    for (std::ptrdiff_t j = lo[1]; j < hi[1]; ++j)
      for (std::ptrdiff_t k = lo[2]; k < hi[2]; ++k) fn(i, j, k);
}
}  // namespace detail

/// A halo exchange split into its comm/compute-overlap phases.
/// Construction eagerly packs every interior-adjacent face and posts
/// the (buffered) sends; finish() blocks on the receives and unpacks
/// the ghost slabs. Between the two the caller may freely *read* every
/// interior cell and *write* cells at distance >= halo from the block
/// faces - the packed strips were copied out at construction and the
/// receives only write ghost cells, which are disjoint from the
/// interior. This is what lets the OPS/OP2 dist layers run interior
/// sweeps overlapped with the exchange (docs/queue.md).
///
/// Tags encode (dim, direction) so concurrent exchanges of different
/// fields must still not interleave per peer; one in-flight exchange
/// per (comm, field) at a time, as before.
template <typename T>
class HaloExchange {
 public:
  HaloExchange(Comm& comm, const CartDecomp& cart, LocalField<T>& f)
      : comm_(&comm), field_(&f) {
    for (int dim = 0; dim < f.dims; ++dim) {
      for (int side = 0; side < 2; ++side) {
        const int nb = cart.neighbour(dim, side == 0 ? -1 : +1);
        if (nb < 0) continue;
        std::vector<T> out;
        detail::for_face(f, dim, side, /*ghost=*/false,
                         [&](auto i, auto j, auto k) {
                           out.push_back(f.at(i, j, k));
                         });
        const std::size_t count = out.size();
        comm.send(nb, 100 + dim * 4 + side, std::span<const T>(out));
        pending_.push_back({dim, side, nb, count});
      }
    }
  }

  HaloExchange(const HaloExchange&) = delete;
  HaloExchange& operator=(const HaloExchange&) = delete;
  /// Draining from the destructor must not throw: under fault injection
  /// finish() can raise comm_error, which callers observe by calling
  /// finish() explicitly. An exchange abandoned to its destructor after
  /// such a failure is dropped (ghost cells keep their prior values).
  ~HaloExchange() {
    try {
      finish();
    } catch (...) {
      pending_.clear();
    }
  }

  /// Receive and unpack every pending face (idempotent).
  void finish() {
    for (const auto& p : pending_) {
      std::vector<T> in(p.count);
      comm_->recv(p.nb, 100 + p.dim * 4 + (1 - p.side), std::span<T>(in));
      std::size_t idx = 0;
      detail::for_face(*field_, p.dim, p.side, /*ghost=*/true,
                       [&](auto i, auto j, auto k) {
                         field_->at(i, j, k) = in[idx++];
                       });
    }
    pending_.clear();
  }

 private:
  struct Pending {
    int dim, side, nb;
    std::size_t count;
  };
  Comm* comm_;
  LocalField<T>* field_;
  std::vector<Pending> pending_;
};

/// Exchange all face halos of `f` with the Cartesian neighbours
/// (blocking form: begin and finish back to back).
template <typename T>
void exchange_halos(Comm& comm, const CartDecomp& cart, LocalField<T>& f) {
  HaloExchange<T>(comm, cart, f).finish();
}

}  // namespace syclport::mpi
