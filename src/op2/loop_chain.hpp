#pragma once
/// \file loop_chain.hpp
/// Lazy dataflow capture for OP2: the unstructured-mesh counterpart of
/// ops::LoopChain. Captured par_loops over the same set whose arguments
/// are all direct (or global reductions) fuse element-wise: one sweep
/// runs every kernel back to back per element, so chain-internal
/// intermediates stay register/L1-resident instead of making a DRAM
/// round trip per loop. Element-wise fusion of direct loops is always
/// legal - every access of element e touches only e's own values, so
/// per-element program order preserves RAW/WAR/WAW exactly, and each
/// global reduction still combines its elements in sweep order
/// (bit-exact under serial execution).
///
/// Segments split where fusion stops being element-local:
///  - any indirect or INC argument (values of mapped neighbours may be
///    written by other elements mid-sweep; these loops run through the
///    full par_loop machinery with their colouring strategy);
///  - a set change between consecutive loops.
///
/// The fuse/no-fuse decision is autotuned per chain composition (kFuse
/// axis, same "(chain:...)" site naming as the structured chain); with
/// tuning off the chain fuses by default. Per-chain eliminated bytes are
/// reported through sycl::launch_log, like the structured path.

#include <cstddef>
#include <functional>
#include <optional>
#include <tuple>
#include <utility>
#include <vector>

#include "op2/par_loop.hpp"
#include "ops/dataflow.hpp"
#include "sycl/launch_log.hpp"

namespace syclport::op2 {

class LoopChain {
 public:
  explicit LoopChain(Context& ctx) : ctx_(&ctx) {}

  /// Queue one loop. Kernel + args are captured by value; execution is
  /// deferred to execute(). The loop's profile is recorded now, in
  /// capture order, so a fused chain is profile-wise the same logical
  /// schedule as the unfused one.
  template <typename K, typename... Args>
  void enqueue(Meta meta, Set& set, K kernel, Args... args) {
    Queued q;
    q.set = &set;
    q.node.name = meta.name;
    q.node.hi = {static_cast<long>(set.size()), 1, 1};
    (classify(q, args), ...);

    if (ctx_->opt.record) {
      // par_loop records and returns without running in ModelOnly.
      const Mode saved = ctx_->opt.mode;
      ctx_->opt.mode = Mode::ModelOnly;
      par_loop(*ctx_, meta, set, kernel, args...);
      ctx_->opt.mode = saved;
    }

    Context* ctx = ctx_;
    Set* set_p = &set;
    q.run_full = [ctx, meta, set_p, kernel, args...] {
      const bool rec = ctx->opt.record;
      ctx->opt.record = false;
      par_loop(*ctx, meta, *set_p, kernel, args...);
      ctx->opt.record = rec;
    };
    q.make_invoke = [kernel, args...] {
      auto binders = std::make_tuple(detail::make_binder(args, true)...);
      return std::function<void(std::size_t)>(
          [binders, kernel](std::size_t e) {
            std::apply([&](const auto&... b) { kernel(b.make(e, false)...); },
                       binders);
          });
    };
    queued_.push_back(std::move(q));
  }

  /// Number of queued loops.
  [[nodiscard]] std::size_t size() const { return queued_.size(); }

  /// Run everything captured, then clear the queue - also on a kernel
  /// throw mid-chain. fuse_opt pins the fuse decision; nullopt lets the
  /// autotuner race fuse on/off for this chain site (fused by default
  /// when tuning is off).
  void execute(std::optional<bool> fuse_opt = std::nullopt) {
    if (queued_.empty()) return;
    struct ClearGuard {
      std::vector<Queued>* q;
      ~ClearGuard() { q->clear(); }
    } guard{&queued_};
    last_ = Telemetry{};

    std::vector<ops::dataflow::Node> nodes;
    nodes.reserve(queued_.size());
    for (const Queued& q : queued_) nodes.push_back(q.node);
    const char* site_name = ops::dataflow::intern_chain_name(nodes);

    // Segment boundaries: element-locality ends at any unfusable loop
    // or set change.
    std::vector<std::size_t> cuts{0};
    for (std::size_t j = 1; j < queued_.size(); ++j)
      if (!queued_[j].fusable || !queued_[j - 1].fusable ||
          queued_[j].set != queued_[j - 1].set)
        cuts.push_back(j);
    cuts.push_back(queued_.size());

    bool fuse = fuse_opt.value_or(true);
    std::optional<rt::autotune::TunedLaunchParams> tuned;
    if (!fuse_opt) {
      hw::seed_autotuner_priors();
      rt::autotune::ScopedTune tune_override(ctx_->opt.tune);
      if (rt::autotune::current_phase() == rt::autotune::Phase::None &&
          rt::autotune::Autotuner::instance().enabled()) {
        rt::autotune::Site site;
        site.name = site_name;
        site.dims = 1;
        std::size_t max_n = 1;
        for (const Queued& q : queued_)
          max_n = std::max(max_n, q.set->size());
        site.global = {max_n, 1, 1};
        site.axes = rt::autotune::kFuse;
        tuned.emplace(site);  // scope spans the whole chain execution
        if (tuned->phase() != rt::autotune::Phase::None &&
            tuned->config().fuse)
          fuse = *tuned->config().fuse;
      }
    }

    const bool live = ctx_->executing();
    for (std::size_t k = 0; k + 1 < cuts.size(); ++k)
      run_segment(nodes, cuts[k], cuts[k + 1], site_name, fuse, live);
    last_.loops = nodes.size();
    last_.segments = cuts.size() - 1;

    if (::sycl::launch_log::instance().enabled()) {
      ::sycl::fusion_record rec;
      rec.chain = site_name;
      rec.loops = last_.loops;
      rec.segments = last_.segments;
      rec.tile = 0;
      rec.fused = last_.fused;
      rec.fusable_bytes = last_.fusable_bytes;
      rec.eliminated_bytes = last_.eliminated_bytes;
      ::sycl::launch_log::instance().append_fusion(std::move(rec));
    }
  }

  // Telemetry of the most recent execute().
  [[nodiscard]] std::size_t last_segments() const { return last_.segments; }
  [[nodiscard]] bool last_fused() const { return last_.fused; }
  /// Name-level internal producer->consumer bound (bytes) of the chain.
  [[nodiscard]] double last_fusable_bytes() const {
    return last_.fusable_bytes;
  }
  /// Modeled DRAM bytes the executed schedule eliminated.
  [[nodiscard]] double last_eliminated_bytes() const {
    return last_.eliminated_bytes;
  }

 private:
  struct Queued {
    Set* set = nullptr;
    bool fusable = true;
    ops::dataflow::Node node;
    std::function<void()> run_full;
    /// Deferred binder construction: dat base pointers are resolved at
    /// execute time, not capture time.
    std::function<std::function<void(std::size_t)>()> make_invoke;
  };

  struct Telemetry {
    std::size_t loops = 0;
    std::size_t segments = 0;
    bool fused = false;
    double fusable_bytes = 0.0;
    double eliminated_bytes = 0.0;
  };

  template <typename T>
  void classify(Queued& q, const DirectArg<T>& a) {
    ops::dataflow::AccessBox box;
    box.dat = a.dat;
    box.hi = q.node.hi;
    box.bytes = a.dat->bytes();
    box.read = a.acc == Acc::R || a.acc == Acc::RW;
    box.write = a.acc == Acc::W || a.acc == Acc::RW;
    q.node.acc.push_back(box);
  }
  template <typename T>
  void classify(Queued& q, const IndirectArg<T>&) {
    q.fusable = false;
  }
  template <typename T>
  void classify(Queued& q, const detail::IncArg<T>&) {
    q.fusable = false;
  }
  template <typename T>
  void classify(Queued& q, const GblArg<T>&) {
    q.node.reduction = true;
  }

  void run_segment(const std::vector<ops::dataflow::Node>& nodes,
                   std::size_t b, std::size_t e, const char* site_name,
                   bool fuse, bool live) {
    const double fusable_bytes =
        ops::dataflow::internal_edge_bytes(nodes, b, e, 1);
    last_.fusable_bytes += fusable_bytes;

    if (!fuse || e - b < 2 || !queued_[b].fusable) {
      if (live)
        for (std::size_t i = b; i < e; ++i) queued_[i].run_full();
      return;
    }

    last_.fused = true;
    // Element-wise fusion keeps intermediates element-private, i.e.
    // register/L1-resident: the whole internal bound is eliminated.
    last_.eliminated_bytes += fusable_bytes;
    if (!live) return;

    std::vector<std::function<void(std::size_t)>> inv;
    inv.reserve(e - b);
    for (std::size_t i = b; i < e; ++i) inv.push_back(queued_[i].make_invoke());
    const std::size_t n = queued_[b].set->size();
    auto invoke_all = [&](std::size_t el) {
      for (const auto& f : inv) f(el);
    };
    switch (ctx_->opt.exec) {
      case Exec::Serial:
        for (std::size_t el = 0; el < n; ++el) invoke_all(el);
        break;
      case Exec::Threads:
        rt::ThreadPool::global().parallel_for(
            n, [&](std::size_t lo, std::size_t hi) {
              for (std::size_t el = lo; el < hi; ++el) invoke_all(el);
            });
        break;
      case Exec::Sycl:
        ctx_->queue.parallel_for(site_name, ::sycl::range<1>(n),
                                 [&](::sycl::item<1> it) {
                                   invoke_all(it.get_linear_id());
                                 });
        break;
    }
  }

  Context* ctx_;
  std::vector<Queued> queued_;
  Telemetry last_;
};

}  // namespace syclport::op2
