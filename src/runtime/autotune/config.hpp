#pragma once
/// \file autotune/config.hpp
/// Identity and configuration types of the online autotuner.
///
/// A Site names one tunable launch site: kernel name, dimensionality,
/// global shape and formulation (flat vs nd_range), plus the set of
/// axes the call site can act on. Its key() is the stable identity the
/// tuner and the persistent cache use - the same fields launch_log
/// records per launch, plus a footprint class bucketing the iteration
/// count so the key survives cosmetic renames of equal-sized launches.
///
/// A Config is one point in the search space. Every axis is optional:
/// a site only receives values for the axes it declared, and the cache
/// round-trips exactly the axes that were tuned.

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "runtime/thread_pool.hpp"

namespace syclport::rt::autotune {

/// How a launch was served by the tuner (recorded in sycl::launch_log).
enum class Phase : std::uint8_t {
  None,        ///< tuner off / site not tuned
  Exploring,   ///< a search candidate served this launch
  Exploiting,  ///< the locked-in winner served this launch
};

[[nodiscard]] const char* to_string(Phase p) noexcept;

/// Tunable axes, bitmask. A site declares the union of knobs its
/// lowering actually consumes.
enum Axis : unsigned {
  kScheduleGrain = 1u << 0,  ///< executor Schedule x grain (thread pool)
  kWorkGroup = 1u << 1,      ///< nd_range local shape (SyclNd lowering)
  kOverlap = 1u << 2,        ///< halo/compute overlap strategy (dist)
  kTile = 1u << 3,           ///< LoopChain slow-dimension tile depth
  kFirstTouch = 1u << 4,     ///< rt::mem parallel first-touch on/off
  kFuse = 1u << 5,           ///< LoopChain fused vs reference schedule
  kRegTile = 1u << 6,        ///< kernel-variant register-tile rows
  kVecWidth = 1u << 7,       ///< kernel-variant vector width hint
  kUnroll = 1u << 8,         ///< kernel-variant unroll factor
  kCacheBlock = 1u << 9,     ///< fast-dimension cache-block size (items)
  kLayout = 1u << 10,        ///< physical dat layout (AoS/SoA/AoSoA)
  kIndirect = 1u << 11,      ///< indirect-increment strategy (op2)
};

/// The kernel-variant axes raced as one joint menu (variant.hpp): a
/// site that can run parametrized variants declares all three.
inline constexpr unsigned kVariantAxes = kRegTile | kVecWidth | kUnroll;

/// One candidate (or winning) configuration. Axes a site did not
/// declare stay nullopt and must not be acted on.
struct Config {
  std::optional<Schedule> schedule;
  std::optional<std::size_t> grain;
  /// nd_range local shape, slowest dimension first (LoopProfile layout).
  std::optional<std::array<std::size_t, 3>> local;
  /// true = submit through the out-of-order queue, false = inline.
  std::optional<bool> overlap_queue;
  /// LoopChain tile depth; 0 = untiled reference schedule.
  std::optional<std::size_t> tile;
  /// rt::mem parallel first-touch for allocations made inside the
  /// tuned scope (true = parallel placement, false = serial).
  std::optional<bool> first_touch;
  /// LoopChain fusion decision: true = overlap-tiled fused segments,
  /// false = the unfused reference schedule (tile is then moot).
  std::optional<bool> fuse;
  /// Kernel-variant shape (variant.hpp menu): register-tile rows,
  /// innermost vector width hint, unroll factor. Always set together by
  /// the kRegTile|kVecWidth|kUnroll joint axis.
  std::optional<int> reg_tile;
  std::optional<int> vec_width;
  std::optional<int> unroll;
  /// Fast-dimension cache-block size in items; 0 = unblocked. Only
  /// independent-point (non-reduction) sites declare this axis - the
  /// blocked traversal reorders iterations.
  std::optional<std::size_t> cache_block;
  /// Physical layout of the indirectly gathered dats (kLayout):
  /// op2::Layout codes 0=AoS 1=SoA 2=AoSoA. The consuming par_loop
  /// transcodes the dats to the decided layout before the sweep.
  std::optional<int> layout;
  /// Race-resolution strategy for indirect-increment loops (kIndirect):
  /// core Strategy codes 1=Atomics 2=GlobalColor 3=Hierarchical
  /// 4=Staged. Candidates are generated so non-AoS layouts only pair
  /// with the staged lowering (the eager binders need AoS).
  std::optional<int> indirect;

  /// Space-separated `axis=value` rendering, the cache wire format.
  [[nodiscard]] std::string to_string() const;
  /// Inverse of to_string(); nullopt on any malformed token.
  [[nodiscard]] static std::optional<Config> parse(std::string_view s);

  [[nodiscard]] bool operator==(const Config&) const = default;
};

/// Stable identity of a tunable launch site.
struct Site {
  const char* name = "(kernel)";
  int dims = 1;
  std::array<std::size_t, 3> global{1, 1, 1};
  bool nd = false;        ///< nd_range formulation (kWorkGroup meaningful)
  unsigned axes = kScheduleGrain;
  std::size_t max_wg = 1024;  ///< device work-group ceiling (shape clamp)

  /// `name|dims|g0xg1xg2|flat/nd|fpN|axM` - N = floor(log2(total
  /// items)), the footprint class; M = the declared axis bitmask, so
  /// two same-named same-shaped sites with different axis sets (a
  /// Threads lowering racing kernel variants vs a Serial one racing
  /// schedule alone) can never collide in the cache.
  [[nodiscard]] std::string key() const;
  /// Total iteration count (product of the used global extents).
  [[nodiscard]] std::size_t total() const noexcept;
};

/// Search-space priors. Defaults reproduce the PR 1/PR 2 findings
/// (steal-half first, power-of-two grains); hwmodel refines them from
/// the platform descriptor closest to the host (hwmodel/tuning_priors).
struct Priors {
  std::array<Schedule, 3> schedule_order{Schedule::Steal, Schedule::Static,
                                         Schedule::Dynamic};
  /// Grain seeds; 0 entries are dropped, the value 1 is always tried.
  std::array<std::size_t, 3> grains{1, 1024, 16384};
  /// Work-group totals the shape candidates are built from.
  std::array<std::size_t, 2> wg_totals{64, 256};
  /// LoopChain tile seeds (0 = untiled is always included).
  std::array<std::size_t, 3> tiles{8, 32, 128};
  /// First-touch candidate order: parallel placement first on NUMA
  /// platforms (hwmodel flips this on single-domain descriptors where
  /// serial touch can win by leaving placement to the OS).
  std::array<bool, 2> first_touch_order{true, false};

  /// Kernel-variant seeds (kRegTile|kVecWidth|kUnroll): the cross
  /// product is intersected with the executable menu (variant.hpp) and
  /// pruned by max_variant_elems. 0 entries are dropped; {1,1,1} is
  /// always raced.
  std::array<int, 3> reg_tiles{1, 2, 4};
  std::array<int, 3> vec_widths{1, 4, 8};
  std::array<int, 2> unrolls{1, 2};
  /// Register-file capacity bound: variants whose live state
  /// (reg_tile x vec_width x unroll elements) exceeds this are pruned
  /// before the race - they would spill, and racing a known-spilling
  /// shape wastes exploration launches (hwmodel sets it from the
  /// platform's register budget).
  int max_variant_elems = 16;
  /// Cache-block seeds in items (kCacheBlock); 0 = unblocked is always
  /// raced. hwmodel sizes the nonzero seed to an L1-resident slice of a
  /// three-stream double sweep.
  std::array<std::size_t, 2> cache_blocks{0, 1024};
  /// Indirect-strategy candidate order (kIndirect), core Strategy codes
  /// (1=Atomics 2=GlobalColor 3=Hierarchical 4=Staged); -1 entries are
  /// dropped. hwmodel leads with staged on CPUs (slow atomics, wide
  /// vectors) and atomics on GPU-like descriptors.
  std::array<int, 4> indirect_order{1, 4, -1, -1};
  /// Layout candidate order (kLayout), op2::Layout codes (0=AoS 1=SoA
  /// 2=AoSoA); -1 entries are dropped. Non-AoS entries are only crossed
  /// with the staged strategy.
  std::array<int, 3> layout_order{0, 1, -1};
};

}  // namespace syclport::rt::autotune
