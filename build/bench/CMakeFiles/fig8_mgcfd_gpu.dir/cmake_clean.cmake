file(REMOVE_RECURSE
  "CMakeFiles/fig8_mgcfd_gpu.dir/fig8_mgcfd_gpu.cpp.o"
  "CMakeFiles/fig8_mgcfd_gpu.dir/fig8_mgcfd_gpu.cpp.o.d"
  "fig8_mgcfd_gpu"
  "fig8_mgcfd_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_mgcfd_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
