// Ablation: distributed-memory decomposition of the unstructured mesh
// (the PT-Scotch owner-compute pipeline of paper §3, with RCB standing
// in for PT-Scotch). Shows why rank count choices matter: pure MPI
// (one rank per core) multiplies halo volume relative to one rank per
// NUMA domain - the unstructured analogue of the RTM halo effect on
// Genoa-X (§4.2).

#include <iostream>

#include "apps/mgcfd/mesh.hpp"
#include "core/report.hpp"
#include "hwmodel/comm_model.hpp"
#include "op2/partition.hpp"

using namespace syclport;

int main() {
  std::cout << "=== Ablation: mesh partitioning & halo volume ===\n\n";
  auto mesh = apps::mgcfd::build_rotor_mesh(48, 40, 32, 1);
  std::cout << "rotor-like mesh: " << mesh.fine_nodes() << " nodes, "
            << mesh.fine_edges() << " edges\n\n";

  report::Table t({"ranks (platform)", "imbalance", "cut edges",
                   "avg halo/owned", "role"});
  struct Row { int ranks; const char* label; const char* role; };
  const Row rows[] = {
      {2, "2 (Xeon, 1/socket)", "MPI+OpenMP"},
      {4, "4 (Genoa-X, 1/NUMA)", "MPI+OpenMP"},
      {64, "64 (Altra, 1/core)", "pure MPI"},
      {72, "72 (Xeon, 1/core)", "pure MPI"},
      {176, "176 (Genoa-X, 1/core)", "pure MPI"},
  };
  for (const Row& r : rows) {
    const auto part = op2::rcb_partition(mesh.levels[0].coords, r.ranks);
    const auto st =
        op2::analyze_partition(*mesh.levels[0].e2n, part, r.ranks);
    t.add_row({r.label, report::fmt(st.max_imbalance, 3),
               report::fmt_percent(st.cut_fraction),
               report::fmt_percent(st.avg_halo_fraction), r.role});
  }
  t.render(std::cout);
  std::cout <<
      "\nMore ranks -> more cut edges and proportionally larger halos per\n"
      "owned node; the hybrid MPI+OpenMP placement buys its advantage\n"
      "here. RCB keeps imbalance ~1.0 across every rank count.\n";
  return 0;
}
