// tiled_heat: the OPS loop-chaining / tiling feature in action - queue
// a chain of stencil sweeps lazily and execute them tile-by-tile so
// intermediates stay cache-resident. Results are bit-identical to the
// eager schedule (the fuzz suite proves it); this example also times
// the real effect on this machine's caches.
//
// Build & run:  ./build/examples/tiled_heat

#include <cmath>
#include <cstdio>

#include "core/timing.hpp"
#include "ops/ops.hpp"

namespace ops = syclport::ops;
using syclport::WallTimer;

int main() {
  const std::size_t n = 1024;
  const int depth = 6;  // six chained radius-1 sweeps

  ops::Options o;
  o.backend = ops::Backend::Serial;
  o.record = false;
  ops::Context ctx(o);
  ops::Block grid(ctx, "plate", 2, {n, n, 1});
  std::vector<std::unique_ptr<ops::Dat<double>>> field;
  for (int d = 0; d <= depth; ++d)
    field.push_back(std::make_unique<ops::Dat<double>>(grid, "f", 1, 1));

  auto seed = [&] {
    for (long i = 0; i < static_cast<long>(n); ++i)
      for (long j = 0; j < static_cast<long>(n); ++j)
        field[0]->at(i, j) = std::sin(0.01 * i) * std::cos(0.02 * j);
  };
  auto smooth = [](ops::ACC<double> out, ops::ACC<double> in) {
    out(0, 0) = 0.2 * (in(0, 0) + in(1, 0) + in(-1, 0) + in(0, 1) + in(0, -1));
  };

  auto run = [&](std::size_t tile) {
    seed();
    WallTimer t;
    ops::LoopChain chain(ctx, grid);
    for (int d = 0; d < depth; ++d)
      chain.enqueue({"smooth"}, smooth,
                    ops::arg(*field[static_cast<std::size_t>(d + 1)],
                             ops::S_PT, ops::Acc::W),
                    ops::arg(*field[static_cast<std::size_t>(d)],
                             ops::S2D_5PT, ops::Acc::R));
    chain.execute(tile);
    return std::make_pair(t.milliseconds(),
                          field[static_cast<std::size_t>(depth)]->interior_sum());
  };

  std::printf("%zu x %zu grid, chain of %d radius-1 sweeps\n\n", n, n, depth);
  const auto [t_ref, sum_ref] = run(0);
  std::printf("untiled (eager):   %7.2f ms   checksum %.10f\n", t_ref, sum_ref);
  for (std::size_t tile : {16u, 32u, 64u, 128u}) {
    const auto [t, sum] = run(tile);
    std::printf("tile = %-4zu        %7.2f ms   checksum %.10f   (%+.1f%%)\n",
                tile, t, sum, (t / t_ref - 1.0) * 100.0);
    if (sum != sum_ref) std::printf("  ERROR: checksum mismatch!\n");
  }
  std::printf(
      "\nEach tile keeps the whole chain's intermediates in cache (ghost\n"
      "zones absorb the stencil skew); identical numerics, less DRAM\n"
      "traffic - OPS's lazy-execution tiling, and the paper-§4.4 point\n"
      "that schedules, not just kernels, are where portability ends.\n");
  return 0;
}
