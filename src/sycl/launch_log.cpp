#include "sycl/launch_log.hpp"

namespace sycl {

launch_log& launch_log::instance() {
  static launch_log log;
  return log;
}

}  // namespace sycl
