# Empty compiler generated dependencies file for fig2_structured_a100.
# This may be replaced when dependencies are built.
