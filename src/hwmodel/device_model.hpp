#pragma once
/// \file device_model.hpp
/// The kernel-time model: turns one LoopProfile into modeled seconds on
/// a (platform, variant) pair, combining
///   t = launch + max(T_mem, T_comp, T_items) * penalties + T_atomic
/// with terms built from the platform descriptor, the execution
/// profile, the work-group model, the cache model and the quirk table.
/// See DESIGN.md §4 for the pipeline and EXPERIMENTS.md for calibration.

#include "core/types.hpp"
#include "hwmodel/exec_profile.hpp"
#include "hwmodel/loop_profile.hpp"
#include "hwmodel/platform.hpp"
#include "hwmodel/workgroup.hpp"

namespace syclport::hw {

/// Per-kernel modeled time with its breakdown (for ablation benches).
struct KernelTime {
  double seconds = 0.0;
  double launch_s = 0.0;
  double mem_s = 0.0;
  double comp_s = 0.0;
  double items_s = 0.0;
  double atomic_s = 0.0;
  double dram_bytes = 0.0;
  double useful_bytes = 0.0;  ///< the OPS/OP2 "transfer" numerator
  WgChoice wg;
};

class DeviceModel {
 public:
  DeviceModel(PlatformId p, Variant v, AppId app)
      : hw_(platform(p)), ep_(exec_profile(p, v)), v_(v), app_(app) {}

  [[nodiscard]] KernelTime kernel_time(const LoopProfile& lp) const;

  [[nodiscard]] const Platform& hw() const { return hw_; }
  [[nodiscard]] const ExecProfile& profile() const { return ep_; }
  [[nodiscard]] const Variant& variant() const { return v_; }
  [[nodiscard]] AppId app() const { return app_; }

 private:
  /// Effective vectorization efficiency for this loop (0 < v <= 1).
  [[nodiscard]] double vector_efficiency(const LoopProfile& lp) const;

  /// Gather-traffic multiplier at this platform's last-level cache
  /// capacity, interpolated from the loop's reuse-distance profile.
  [[nodiscard]] double gather_factor(const LoopProfile& lp) const;

  const Platform& hw_;
  ExecProfile ep_;
  Variant v_;
  AppId app_;
};

}  // namespace syclport::hw
