# Empty dependencies file for stream.
# This may be replaced when dependencies are built.
