#include "common/figures.hpp"

#include <ostream>

#include "common/paper_data.hpp"
#include "core/report.hpp"

namespace syclport::bench {

using study::mgcfd_variants;
using study::structured_variants;

namespace {

report::Bar result_bar(const std::string& label,
                       const study::ExperimentResult& r) {
  if (!r.ok()) return {label, 0.0, std::string(to_string(r.status))};
  return {label, r.runtime_s, report::fmt_percent(r.efficiency) + " eff"};
}

}  // namespace

std::string pct_delta(double value, double reference) {
  if (reference <= 0.0) return "n/a";
  const double d = (value / reference - 1.0) * 100.0;
  return (d >= 0 ? "+" : "") + report::fmt(d, 1) + "%";
}

void structured_figure(std::ostream& os, study::StudyRunner& runner,
                       PlatformId platform, const std::string& fig_title,
                       const std::string& csv_name) {
  os << "=== " << fig_title << " ===\n";
  os << "Platform: " << to_string(platform)
     << "  (STREAM " << hw::platform(platform).stream_bw_gbs
     << " GB/s, paper Table 1)\n\n";

  const auto variants = structured_variants(platform);
  std::vector<report::BarGroup> groups;
  report::Table csv({"app", "variant", "status", "runtime_s", "eff_bw_gbs",
                     "efficiency", "boundary_s", "halo_s"});
  report::Table eff_table(
      {"app", "best variant", "modeled eff", "paper eff", "delta"});

  for (AppId app : kStructuredApps) {
    report::BarGroup g;
    g.title = std::string(to_string(app));
    double best_eff = 0.0;
    std::string best_label = "-";
    for (const Variant& v : variants) {
      const auto r = runner.run(app, platform, v);
      g.bars.push_back(result_bar(to_string(v), r));
      csv.add_row({std::string(to_string(app)), to_string(v),
                   std::string(to_string(r.status)),
                   report::fmt(r.runtime_s, 4), report::fmt(r.eff_bw_gbs, 1),
                   report::fmt(r.efficiency, 4), report::fmt(r.boundary_s, 4),
                   report::fmt(r.halo_s, 4)});
      if (r.ok() && r.efficiency > best_eff) {
        best_eff = r.efficiency;
        best_label = to_string(v);
      }
    }
    groups.push_back(std::move(g));

    const auto paper = paper_best_efficiency(platform, app);
    eff_table.add_row(
        {std::string(to_string(app)), best_label,
         report::fmt_percent(best_eff),
         paper ? report::fmt_percent(*paper) : "-",
         paper ? pct_delta(best_eff, *paper) : "-"});
  }

  report::render_bars(os, groups, "s");
  os << "Best-variant architectural efficiency vs paper:\n";
  eff_table.render(os);
  csv.save_csv(csv_name + ".csv");
  os << "\n[data written to " << csv_name << ".csv]\n\n";
}

void mgcfd_figure(std::ostream& os, study::StudyRunner& runner,
                  const std::vector<PlatformId>& platforms,
                  const std::string& fig_title, const std::string& csv_name) {
  os << "=== " << fig_title << " ===\n\n";
  std::vector<report::BarGroup> groups;
  report::Table csv({"platform", "variant", "status", "runtime_s",
                     "eff_bw_gbs", "efficiency"});
  report::Table eff_table(
      {"platform", "best variant", "modeled eff", "paper eff", "delta"});

  for (PlatformId p : platforms) {
    report::BarGroup g;
    g.title = std::string(to_string(p));
    double best_eff = 0.0;
    std::string best_label = "-";
    for (const Variant& v : mgcfd_variants(p)) {
      const auto r = runner.run(AppId::MGCFD, p, v);
      g.bars.push_back(result_bar(to_string(v), r));
      csv.add_row({std::string(to_string(p)), to_string(v),
                   std::string(to_string(r.status)),
                   report::fmt(r.runtime_s, 4), report::fmt(r.eff_bw_gbs, 1),
                   report::fmt(r.efficiency, 4)});
      if (r.ok() && r.efficiency > best_eff) {
        best_eff = r.efficiency;
        best_label = to_string(v);
      }
    }
    groups.push_back(std::move(g));
    const auto paper = paper_best_efficiency(p, AppId::MGCFD);
    eff_table.add_row({std::string(to_string(p)), best_label,
                       report::fmt_percent(best_eff),
                       paper ? report::fmt_percent(*paper) : "-",
                       paper ? pct_delta(best_eff, *paper) : "-"});
  }

  report::render_bars(os, groups, "s");
  os << "Best-variant effective-bandwidth efficiency vs paper (S4.3):\n";
  eff_table.render(os);
  csv.save_csv(csv_name + ".csv");
  os << "\n[data written to " << csv_name << ".csv]\n\n";
}

void efficiency_matrix(std::ostream& os, study::StudyRunner& runner,
                       bool unstructured, const std::string& fig_title,
                       const std::string& csv_name) {
  os << "=== " << fig_title << " ===\n\n";
  std::vector<AppId> apps;
  if (unstructured) {
    apps = {AppId::MGCFD};
  } else {
    apps.assign(kStructuredApps.begin(), kStructuredApps.end());
  }

  std::vector<std::string> header{"platform", "variant"};
  for (AppId a : apps) header.emplace_back(to_string(a));
  report::Table t(header);
  report::Table csv(header);

  for (PlatformId p : kAllPlatforms) {
    const auto variants =
        unstructured ? mgcfd_variants(p) : structured_variants(p);
    for (const Variant& v : variants) {
      std::vector<std::string> row{std::string(to_string(p)), to_string(v)};
      for (AppId a : apps) {
        const auto r = runner.run(a, p, v);
        row.push_back(r.ok() ? report::fmt_percent(r.efficiency)
                             : std::string(to_string(r.status)));
      }
      t.add_row(row);
      csv.add_row(row);
    }
  }
  t.render(os);
  csv.save_csv(csv_name + ".csv");
  os << "\n[data written to " << csv_name << ".csv]\n\n";
}

}  // namespace syclport::bench
