// Ablation: OpenSBLI Store-All vs Store-None (paper §3/§4.1) - the
// store-vs-recompute trade-off. SA moves ~2x the bytes at low
// arithmetic intensity (92% efficiency on the A100); SN recomputes
// derivatives on the fly (74%, partially compute/L1-bound).

#include <iostream>

#include "common/figures.hpp"
#include "core/report.hpp"

using namespace syclport;

int main() {
  study::StudyRunner runner;
  std::cout << "=== Ablation: OpenSBLI Store-All vs Store-None ===\n\n";
  report::Table t({"platform", "SA time", "SN time", "SA eff", "SN eff",
                   "SN/SA time"});
  for (PlatformId p : kAllPlatforms) {
    const Variant v = study::native_variant(p);
    const auto sa = runner.run(AppId::OpenSBLI_SA, p, v);
    const auto sn = runner.run(AppId::OpenSBLI_SN, p, v);
    if (!sa.ok() || !sn.ok()) continue;
    t.add_row({std::string(to_string(p)), report::fmt(sa.runtime_s, 3),
               report::fmt(sn.runtime_s, 3),
               report::fmt_percent(sa.efficiency),
               report::fmt_percent(sn.efficiency),
               report::fmt(sn.runtime_s / sa.runtime_s, 2)});
  }
  t.render(std::cout);
  std::cout << "\nSN is the faster *runtime* despite lower bandwidth "
               "efficiency: it moves half\nthe data and pays in flops - the "
               "trade the paper quantifies as 92% vs 74%\nefficiency on the "
               "A100 (both are reported per useful byte).\n";
  return 0;
}
