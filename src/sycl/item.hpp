#pragma once
/// \file item.hpp
/// miniSYCL work-item views: sycl::item (flat parallel_for), sycl::group
/// and sycl::nd_item (nd_range parallel_for, with work-group barriers).

#include "runtime/fiber.hpp"
#include "sycl/range.hpp"

namespace sycl {

namespace access {
/// Barrier fence spaces (accepted and ignored: host memory is coherent).
enum class fence_space { local_space, global_space, global_and_local };
}  // namespace access

/// Work-item view for parallel_for(range): global id only, no barrier.
template <int Dims = 1>
class item {
 public:
  item(id<Dims> idx, range<Dims> r) : id_(idx), range_(r) {}

  [[nodiscard]] id<Dims> get_id() const { return id_; }
  [[nodiscard]] std::size_t get_id(int dim) const { return id_[dim]; }
  [[nodiscard]] std::size_t operator[](int dim) const { return id_[dim]; }
  [[nodiscard]] range<Dims> get_range() const { return range_; }
  [[nodiscard]] std::size_t get_range(int dim) const { return range_[dim]; }
  [[nodiscard]] std::size_t get_linear_id() const {
    return detail::linearize(id_, range_);
  }

 private:
  id<Dims> id_;
  range<Dims> range_;
};

/// The work-group a given nd_item belongs to. Carries the calling
/// work-item's local linear id so the group algorithms
/// (sycl/group_algorithms.hpp) can use the standard SYCL signatures.
template <int Dims = 1>
class group {
 public:
  group(id<Dims> gid, range<Dims> group_range, range<Dims> local_range,
        std::size_t caller_lid = 0)
      : id_(gid),
        group_range_(group_range),
        local_range_(local_range),
        caller_lid_(caller_lid) {}

  [[nodiscard]] id<Dims> get_group_id() const { return id_; }
  [[nodiscard]] std::size_t get_group_id(int dim) const { return id_[dim]; }
  [[nodiscard]] range<Dims> get_group_range() const { return group_range_; }
  [[nodiscard]] range<Dims> get_local_range() const { return local_range_; }
  [[nodiscard]] std::size_t get_group_linear_id() const {
    return detail::linearize(id_, group_range_);
  }
  [[nodiscard]] std::size_t get_local_linear_range() const {
    return local_range_.size();
  }
  /// Local linear id of the work-item this view was obtained from.
  [[nodiscard]] std::size_t caller_local_linear_id() const {
    return caller_lid_;
  }

 private:
  id<Dims> id_;
  range<Dims> group_range_;
  range<Dims> local_range_;
  std::size_t caller_lid_;
};

/// Work-item view for parallel_for(nd_range): global/local/group ids and
/// a work-group barrier() implemented with cooperative fibers.
class sub_group;

template <int Dims = 1>
class nd_item {
 public:
  nd_item(id<Dims> global, id<Dims> local, group<Dims> grp,
          range<Dims> global_range, std::size_t sub_group_size = 8)
      : global_(global),
        local_(local),
        group_(grp),
        global_range_(global_range),
        sg_size_(sub_group_size) {}

  [[nodiscard]] id<Dims> get_global_id() const { return global_; }
  [[nodiscard]] std::size_t get_global_id(int dim) const { return global_[dim]; }
  [[nodiscard]] id<Dims> get_local_id() const { return local_; }
  [[nodiscard]] std::size_t get_local_id(int dim) const { return local_[dim]; }
  [[nodiscard]] group<Dims> get_group() const { return group_; }
  [[nodiscard]] std::size_t get_group(int dim) const {
    return group_.get_group_id(dim);
  }
  [[nodiscard]] range<Dims> get_global_range() const { return global_range_; }
  [[nodiscard]] std::size_t get_global_range(int dim) const {
    return global_range_[dim];
  }
  [[nodiscard]] range<Dims> get_local_range() const {
    return group_.get_local_range();
  }
  [[nodiscard]] std::size_t get_local_range(int dim) const {
    return group_.get_local_range()[dim];
  }
  [[nodiscard]] std::size_t get_global_linear_id() const {
    return detail::linearize(global_, global_range_);
  }
  [[nodiscard]] std::size_t get_local_linear_id() const {
    return detail::linearize(local_, group_.get_local_range());
  }

  /// Work-group barrier. All work-items of the group must reach the
  /// same barrier (SYCL requirement); enforced by the fiber scheduler.
  void barrier(access::fence_space =
                   access::fence_space::global_and_local) const {
    syclport::rt::group_barrier();
  }

  /// The sub-group this work-item belongs to (declared in
  /// sycl/sub_group.hpp; contiguous chunks of the local linear space).
  [[nodiscard]] sub_group get_sub_group() const;

  [[nodiscard]] std::size_t sub_group_size_hint() const { return sg_size_; }

 private:
  id<Dims> global_;
  id<Dims> local_;
  group<Dims> group_;
  range<Dims> global_range_;
  std::size_t sg_size_;
};

}  // namespace sycl
