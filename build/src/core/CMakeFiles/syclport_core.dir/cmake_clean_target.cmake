file(REMOVE_RECURSE
  "libsyclport_core.a"
)
