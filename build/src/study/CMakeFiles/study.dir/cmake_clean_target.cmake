file(REMOVE_RECURSE
  "libstudy.a"
)
