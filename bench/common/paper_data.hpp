#pragma once
/// \file paper_data.hpp
/// Reference numbers quoted in the paper's text, used by the benches to
/// print paper-vs-modeled comparisons (EXPERIMENTS.md records them).
/// Figures 2-9 are bar charts without printed values, so the quotable
/// anchors are Table 1 and the efficiencies/ratios in §4.1-§4.4.

#include <optional>

#include "core/types.hpp"

namespace syclport::bench {

/// Table 1: achieved STREAM Triad bandwidth (GB/s).
[[nodiscard]] inline double paper_stream_bw(PlatformId p) {
  switch (p) {
    case PlatformId::MI250X: return 1290.0;
    case PlatformId::A100: return 1310.0;
    case PlatformId::Max1100: return 803.0;
    case PlatformId::Xeon8360Y: return 296.0;
    case PlatformId::GenoaX: return 561.0;
    case PlatformId::Altra: return 167.0;
  }
  return 0.0;
}

/// Best-variant architectural efficiency quoted for structured apps
/// (§4.1-§4.2); nullopt where the paper gives no number.
[[nodiscard]] inline std::optional<double> paper_best_efficiency(
    PlatformId p, AppId a) {
  using P = PlatformId;
  using A = AppId;
  switch (p) {
    case P::A100:
      switch (a) {
        case A::CloverLeaf2D: return 0.92;
        case A::CloverLeaf3D: return 0.82;
        case A::OpenSBLI_SA: return 0.92;
        case A::OpenSBLI_SN: return 0.74;
        case A::RTM: return 0.48;
        case A::Acoustic: return 0.48;
        case A::MGCFD: return 0.86;
      }
      break;
    case P::MI250X:
      switch (a) {
        case A::CloverLeaf2D: return 0.78;
        case A::CloverLeaf3D: return 0.56;
        case A::OpenSBLI_SA: return 0.59;
        case A::OpenSBLI_SN: return 0.39;
        case A::RTM: return 0.19;
        case A::Acoustic: return 0.30;
        case A::MGCFD: return 0.69;
      }
      break;
    case P::Max1100:
      switch (a) {
        case A::CloverLeaf2D: return 0.82;
        case A::CloverLeaf3D: return 0.72;
        case A::RTM: return 0.59;
        case A::Acoustic: return 0.53;
        case A::MGCFD: return 0.63;
        default: return std::nullopt;
      }
      break;
    case P::Xeon8360Y:
      switch (a) {
        case A::CloverLeaf2D: return 0.77;  // "between 42% (RTM) and 77%"
        case A::RTM: return 0.42;
        case A::MGCFD: return 1.08;
        default: return std::nullopt;
      }
      break;
    case P::GenoaX:
      switch (a) {
        case A::CloverLeaf2D: return 1.07;
        case A::RTM: return 0.54;  // "its lowest is 54% on RTM"
        case A::MGCFD: return 1.35;
        default: return std::nullopt;
      }
      break;
    case P::Altra:
      switch (a) {
        case A::CloverLeaf2D: return 0.75;
        case A::CloverLeaf3D: return 0.56;
        case A::OpenSBLI_SA: return 0.55;
        case A::OpenSBLI_SN: return 0.36;
        case A::MGCFD: return 0.86;
        default: return std::nullopt;
      }
      break;
  }
  return std::nullopt;
}

/// §4.4 / §5 aggregates.
struct PaperAggregates {
  double native_structured_avg = 0.59;   // std 0.21
  double dpcpp_nd_avg = 0.54;            // std 0.19
  double osycl_nd_avg = 0.52;            // std 0.21
  double dpcpp_flat_avg = 0.47;
  double osycl_flat_avg = 0.41;
  double pp_dpcpp_nd = 0.49;
  double pp_osycl_nd = 0.46;
  double pp_dpcpp_flat = 0.35;
  double pp_osycl_flat = 0.29;
  double pp_mgcfd_osycl_atomics = 0.42;
  double pp_mgcfd_best = 0.67;
  double best_native_all = 0.627;  // §5
  double best_sycl_all = 0.591;
  double gpu_native = 0.576;
  double gpu_best_sycl = 0.627;
  double cpu_native = 0.678;
  double cpu_sycl = 0.555;
};

/// §4.1 boundary-kernel time fractions for CloverLeaf (best variants).
[[nodiscard]] inline std::optional<double> paper_boundary_fraction(
    PlatformId p, AppId a) {
  if (a == AppId::CloverLeaf2D) {
    if (p == PlatformId::A100) return 0.015;
    if (p == PlatformId::MI250X) return 0.026;
    if (p == PlatformId::Max1100) return 0.009;
  }
  if (a == AppId::CloverLeaf3D) {
    if (p == PlatformId::A100) return 0.078;
    if (p == PlatformId::MI250X) return 0.111;
    if (p == PlatformId::Max1100) return 0.048;
  }
  return std::nullopt;
}

}  // namespace syclport::bench
