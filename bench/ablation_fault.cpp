// Ablation: cost and efficacy of the fault-injection/resilience layer.
//
// Two claims back the chaos harness (docs/resilience.md):
//
//   1. zero-cost disarmed - with SYCLPORT_FAULT unset every
//      instrumented site is a single relaxed atomic load, so the
//      instrumented runtime must run at parity with itself. Measured
//      as disarmed vs armed-but-inert (a plan whose probability
//      triggers are 0, paying the full decision path) on a
//      bandwidth-bound mini-app.
//
//   2. bounded-cost recovery - under live seeded schedules every run
//      ends bit-exact (recovered) or with a typed error, and the
//      median overhead of surviving injection stays small. Measured as
//      a seeded sweep over mem/pool schedules with per-run
//      injected/recovered counters.
//
// Emits ablation_fault.csv next to the binary like the other
// ablations.

#include <algorithm>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "apps/apps.hpp"
#include "core/report.hpp"
#include "core/timing.hpp"
#include "runtime/fault/fault.hpp"
#include "runtime/mem/mem.hpp"

using namespace syclport;
namespace fault = rt::fault;

namespace {

struct RunResult {
  double checksum = 0.0;
  double seconds = 0.0;
  bool typed_error = false;
  std::string error;
};

RunResult run_clover() {
  ops::Options opt;
  opt.backend = ops::Backend::Threads;
  opt.record = false;
  RunResult r;
  WallTimer w;
  try {
    r.checksum = apps::run_cloverleaf2d(opt, {{96, 96, 1}, 4}).checksum;
  } catch (const std::exception& e) {
    r.typed_error = true;
    r.error = e.what();
  }
  r.seconds = w.seconds();
  return r;
}

double median_seconds(int reps) {
  std::vector<double> t;
  for (int i = 0; i < reps; ++i) t.push_back(run_clover().seconds);
  std::sort(t.begin(), t.end());
  return t[t.size() / 2];
}

}  // namespace

int main() {
  report::Table t({"mode", "spec", "seed", "outcome", "injected", "recovered",
                   "seconds"});

  // Part 1: disarmed vs armed-but-inert parity.
  fault::clear();
  const double reference = run_clover().checksum;
  const int reps = 7;
  const double disarmed_s = median_seconds(reps);
  t.add_row({"disarmed", "-", "-", "exact", "0", "0",
             std::to_string(disarmed_s)});

  fault::reset_stats_for_testing();
  if (!fault::configure("1:mem.*=0.0,pool.stall=0.0,sched.*=0.0"))
    std::cerr << "inert plan rejected\n";
  const double inert_s = median_seconds(reps);
  fault::clear();
  t.add_row({"armed-inert", "mem.*=0,pool.stall=0,sched.*=0", "1", "exact",
             "0", "0", std::to_string(inert_s)});
  std::cout << "disarmed " << disarmed_s << " s, armed-inert " << inert_s
            << " s, ratio " << (inert_s / disarmed_s) << "\n";

  // Part 2: seeded chaos sweep - every row must be exact or typed-error.
  const char* specs[] = {
      "mem.alloc=@1",
      "mem.alloc=%2x8",
      "mem.arena=0.3x12",
      "pool.stall=0.2x8",
      "mem.*=0.15x12,pool.stall=0.1x6",
  };
  int silent_corruptions = 0;
  for (const char* spec : specs) {
    for (const std::uint64_t seed : {1u, 2u, 3u}) {
      fault::reset_stats_for_testing();
      if (!fault::configure(std::to_string(seed) + ":" + spec)) {
        std::cerr << "bad spec " << spec << "\n";
        continue;
      }
      rt::mem::trim();  // cold pool so mem.alloc sites see fresh paths
      const RunResult r = run_clover();
      const auto fs = fault::stats();
      fault::clear();
      std::string outcome = r.typed_error        ? "typed-error"
                            : r.checksum == reference ? "exact"
                                                      : "SILENT-CORRUPTION";
      if (outcome == "SILENT-CORRUPTION") ++silent_corruptions;
      t.add_row({"chaos", spec, std::to_string(seed), outcome,
                 std::to_string(fs.total_injected()),
                 std::to_string(fs.total_recovered()),
                 std::to_string(r.seconds)});
    }
  }

  t.render(std::cout);
  if (t.save_csv("ablation_fault.csv"))
    std::cout << "\nwrote ablation_fault.csv\n";
  if (silent_corruptions != 0) {
    std::cerr << silent_corruptions << " silent corruption(s) detected\n";
    return 1;
  }
  return 0;
}
