#include "hwmodel/quirks.hpp"

namespace syclport::hw {

namespace {

std::vector<Quirk> build_quirks() {
  using S = Quirk::Scope;
  std::vector<Quirk> q;
  // "The DPC++ runtime chooses very poor workgroup sizes for a few
  // kernels, making the 2D version with the flat formulation perform
  // very poorly" (§4.1, A100; "similar combinations" on MI250X).
  q.push_back({S::AllGpus, {}, Toolchain::DPCPP, Model::SYCLFlat, false,
               AppId::CloverLeaf2D, KernelClass::Interior, false, 2.8,
               "S4.1 DPC++ flat CloverLeaf2D poor wg sizes"});
  // "the OpenSYCL version chooses suboptimal workgroup sizes in 3D,
  // resulting in an almost 50% slowdown" (§4.1).
  q.push_back({S::AllGpus, {}, Toolchain::OpenSYCL, Model::SYCLFlat, false,
               AppId::CloverLeaf3D, KernelClass::Interior, false, 1.9,
               "S4.1 OpenSYCL flat CloverLeaf3D suboptimal wg"});
  // "only OpenSYCL + flat underperforming due to poor workgroup size
  // choice" on OpenSBLI (§4.1).
  q.push_back({S::AllGpus, {}, Toolchain::OpenSYCL, Model::SYCLFlat, false,
               AppId::OpenSBLI_SN, KernelClass::Interior, false, 1.5,
               "S4.1 OpenSYCL flat OpenSBLI SN poor wg"});
  q.push_back({S::AllGpus, {}, Toolchain::OpenSYCL, Model::SYCLFlat, false,
               AppId::OpenSBLI_SA, KernelClass::Interior, false, 1.25,
               "S4.1 OpenSYCL flat OpenSBLI SA mild wg penalty"});
  // "For CloverLeaf 3D however, this flips around, with OpenSYCL
  // spending up to 27% of time in boundary loops" (§4.2, Xeon).
  q.push_back({S::One, PlatformId::Xeon8360Y, Toolchain::OpenSYCL,
               Model::MPI, true, AppId::CloverLeaf3D, KernelClass::Boundary,
               false, 9.0, "S4.2 OpenSYCL CloverLeaf3D boundary 27%"});
  // DPC++ hierarchical MG-CFD on CPUs: vectorized version consistently
  // slower than the wg-size-1 non-vectorized one (§4.3); modeled as a
  // flat penalty on the vectorized path.
  q.push_back({S::AllCpus, {}, Toolchain::DPCPP, Model::SYCLNDRange, false,
               AppId::MGCFD, KernelClass::EdgeFlux, false, 1.15,
               "S4.3 DPC++ vectorized hierarchical slower"});
  // "On the A100, SYCL implementations for all but one parallelization
  // outperformed native CUDA - with OpenSYCL+atomics 18% faster than
  // CUDA+atomics" (§4.3): LLVM out-optimises nvcc on the flux kernel.
  q.push_back({S::One, PlatformId::A100, Toolchain::OpenSYCL,
               Model::SYCLNDRange, false, AppId::MGCFD,
               KernelClass::EdgeFlux, false, 0.85,
               "S4.3 OpenSYCL 18% faster than CUDA on A100"});
  q.push_back({S::One, PlatformId::A100, Toolchain::DPCPP,
               Model::SYCLNDRange, false, AppId::MGCFD,
               KernelClass::EdgeFlux, false, 0.92,
               "S4.3 SYCL outperforms native CUDA on A100"});
  return q;
}

bool scope_matches(const Quirk& q, PlatformId p) {
  switch (q.scope) {
    case Quirk::Scope::AllGpus: return is_gpu(p);
    case Quirk::Scope::AllCpus: return !is_gpu(p);
    case Quirk::Scope::One: return q.platform == p;
  }
  return false;
}

}  // namespace

const std::vector<Quirk>& paper_quirks() {
  static const std::vector<Quirk> quirks = build_quirks();
  return quirks;
}

double quirk_factor(PlatformId p, const Variant& v, AppId app,
                    KernelClass cls) {
  double f = 1.0;
  for (const Quirk& q : paper_quirks()) {
    if (!scope_matches(q, p)) continue;
    if (q.toolchain != v.toolchain) continue;
    if (!q.match_any_model && q.model != v.model) continue;
    if (q.app != app) continue;
    if (!q.match_any_class && q.cls != cls) continue;
    f *= q.time_factor;
  }
  return f;
}

bool vectorization_fails(PlatformId p, Toolchain tc, AppId app) {
  // "OpenSBLI SN failed to vectorize across all variants" on the Altra
  // (§4.2).
  if (p == PlatformId::Altra && app == AppId::OpenSBLI_SN) return true;
  // "except Acoustic, where auto-vectorization did not work for SYCL -
  // but it did for MPI/OpenMP" (§4.2, Altra).
  if (p == PlatformId::Altra && app == AppId::Acoustic &&
      tc == Toolchain::OpenSYCL)
    return true;
  return false;
}

}  // namespace syclport::hw
