#include "hwmodel/exec_profile.hpp"

namespace syclport::hw {

namespace {

ExecProfile gpu_profile(const Platform& hw, const Variant& v) {
  ExecProfile e;
  e.launch_us = hw.launch_latency_us;
  switch (v.toolchain) {
    case Toolchain::Native:
      break;
    case Toolchain::DPCPP:
      e.launch_us *= 1.15;
      // LLVM occasionally out-optimizes the vendor stack (paper §5:
      // SYCL sometimes beats CUDA "due to the difference in the
      // compiler stack").
      e.bw_factor = hw.id == PlatformId::A100 ? 1.01 : 0.99;
      break;
    case Toolchain::OpenSYCL:
      e.launch_us *= 1.15;
      e.bw_factor = 1.0;
      if (hw.id == PlatformId::MI250X)
        e.unsafe_atomics = false;  // §4.3: unsafe atomics inaccessible
      break;
    case Toolchain::Cray:
      e.launch_us *= 1.4;  // OpenMP offload runtime
      e.bw_factor = 0.97;
      break;
  }
  // Flat sensitivity: the Max 1100 depends most on work-group shape
  // (§4.1: flat and OpenMP offload consistently worse, largest gap).
  if (v.model == Model::SYCLFlat || v.model == Model::OpenMPOffload) {
    switch (hw.id) {
      case PlatformId::Max1100: e.flat_penalty = 1.30; break;
      case PlatformId::MI250X: e.flat_penalty = 1.08; break;
      default: e.flat_penalty = 1.05; break;
    }
  }
  if (v.model == Model::SYCLNDRange || v.model == Model::CUDA ||
      v.model == Model::HIP)
    e.nd_cache_bonus = 0.70;  // hand-tuned shapes, like nd_range
  return e;
}

ExecProfile cpu_profile(const Platform& hw, const Variant& v) {
  ExecProfile e;
  e.unsafe_atomics = false;  // CPUs only have generic atomics (§4.3)
  switch (v.toolchain) {
    case Toolchain::Native:
    case Toolchain::Cray:
      e.launch_us = v.model == Model::MPI ? 0.6 : hw.launch_latency_us;
      e.vec_eff = 0.90;  // icx/aocc/gcc with forced inner-loop simd
      e.bw_factor = v.uses_mpi() && v.model == Model::MPI
                        ? 1.0                // rank-local first touch
                        : hw.numa_penalty;   // threaded loops cross NUMA
      break;
    case Toolchain::DPCPP:
      // Kernel launches travel through the OpenCL driver (§4.2).
      e.launch_us = 28.0;
      e.vec_eff = 1.0;  // best CPU vectorizer in the study (§4.2: +10%)
      e.bw_factor = 0.93 * hw.numa_penalty;
      e.reduction_factor = 6.5;  // §4.2: reductions 6-7x slower
      if (hw.id == PlatformId::GenoaX) {
        // "not optimized for this hardware ... significant overheads
        // across the board" (§4.2): slower launches, poorer bandwidth
        // and a vectorizer that has no Zen-4 cost model.
        e.launch_us = 34.0;
        e.bw_factor = 0.80 * hw.numa_penalty;
        e.vec_eff = 0.75;
      }
      break;
    case Toolchain::OpenSYCL:
      // Maps to OpenMP at compile time: cheap launches (§4.2).
      e.launch_us = 6.0;
      e.vec_eff = 0.80;
      e.bw_factor = 0.97 * hw.numa_penalty;
      e.reduction_factor = 6.5;
      break;
  }
  if (v.model == Model::SYCLFlat) e.flat_penalty = 1.04;
  if (v.model == Model::SYCLNDRange) e.nd_cache_bonus = 0.85;
  return e;
}

}  // namespace

ExecProfile exec_profile(PlatformId p, const Variant& v) {
  const Platform& hw = platform(p);
  return hw.gpu ? gpu_profile(hw, v) : cpu_profile(hw, v);
}

}  // namespace syclport::hw
