#pragma once
/// \file ops/checkpoint.hpp
/// Checkpoint/restart for OPS dats: snapshot the raw storage (halos
/// included) of a set of dats into one CRC-tagged file, and roll the
/// same dats back to it later. With deterministic kernels, restoring a
/// checkpoint and recomputing the remaining timesteps reproduces the
/// uncheckpointed answer bit-exactly - the recovery path the chaos
/// harness (tests/test_fault) proves against injected mid-run failures.
///
/// The queue is drained before the storage is read or written, so a
/// checkpoint taken between par_loops is a consistent cut. Regions are
/// keyed by dat name (unique within one checkpoint); the file format
/// and its all-or-nothing validation live in rt::fault::Snapshot
/// (docs/resilience.md).

#include <string>

#include "ops/context.hpp"
#include "ops/dat.hpp"
#include "runtime/fault/checkpoint.hpp"

namespace syclport::ops {

/// Snapshot `dats` to `path` (atomic write; see Snapshot::save).
template <typename... Ts>
void checkpoint(Context& ctx, const std::string& path, Dat<Ts>&... dats) {
  ctx.queue.wait();
  rt::fault::Snapshot snap;
  (snap.add(dats.name(), dats.storage(), dats.alloc_bytes()), ...);
  snap.save(path);
}

/// Roll `dats` back to the state saved at `path`. Validates the whole
/// file (magic, version, per-region names/sizes/CRCs, file CRC) before
/// touching any dat; throws rt::fault::checkpoint_error leaving every
/// dat untouched when the file is damaged or does not match.
template <typename... Ts>
void restore(Context& ctx, const std::string& path, Dat<Ts>&... dats) {
  ctx.queue.wait();
  rt::fault::Snapshot snap;
  (snap.add(dats.name(), dats.storage(), dats.alloc_bytes()), ...);
  snap.restore(path);
}

}  // namespace syclport::ops
