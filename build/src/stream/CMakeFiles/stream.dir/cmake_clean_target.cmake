file(REMOVE_RECURSE
  "libstream.a"
)
