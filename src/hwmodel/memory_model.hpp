#pragma once
/// \file memory_model.hpp
/// Cache-aware memory-traffic model:
///  - a layer-condition stencil model (Stengel et al. style): when the
///    last-level cache cannot hold the 2r+1 planes (or rows) a stencil
///    sweep needs, previously-fetched planes are evicted and re-read,
///    multiplying DRAM read traffic. This is what separates RTM /
///    Acoustic efficiency on the 16 MB MI250X from the 40 MB A100 and
///    the 208 MB Max 1100 (paper §4.1);
///  - an inter-sweep residency model: when a loop's working set fits
///    (partly) in the last-level cache, repeated sweeps hit in cache and
///    the *effective* bandwidth exceeds STREAM - the mechanism behind
///    Genoa-X's 107% CloverLeaf 2D and 135% MG-CFD efficiencies
///    (paper §4.2, §4.3).

#include <cstddef>
#include <span>

#include "hwmodel/loop_profile.hpp"
#include "hwmodel/platform.hpp"

namespace syclport::hw {

/// Multiplier (>= 1) on compulsory read traffic from the stencil layer
/// condition. `cache_shape_factor` scales the *excess* (mult - 1):
/// tuned nd_range shapes improve reuse (< 1), runtime-chosen flat
/// shapes do not (1).
[[nodiscard]] double stencil_read_multiplier(const Platform& hw,
                                             const LoopProfile& lp,
                                             double cache_shape_factor = 1.0);

/// Probability in [0, 1) that a byte of this loop's traffic is served
/// from the last-level cache thanks to inter-sweep reuse.
[[nodiscard]] double llc_hit_probability(const Platform& hw,
                                         const LoopProfile& lp);

/// Time (s) to move `dram_bytes` with hit fraction `hit` served at LLC
/// bandwidth, the rest at `dram_bw_gbs`.
[[nodiscard]] double memory_time_s(const Platform& hw, double bytes,
                                   double hit, double dram_bw_gbs);

/// Multiplier (>= 1) on a kernel's *store* traffic from the
/// write-allocate policy: a cached store to a never-read line costs a
/// read-for-ownership on top of the writeback (2x), avoided by
/// streaming (non-temporal) stores or read-before-write reuse.
/// `write_allocate` describes the platform's policy for plain stores;
/// `streaming_stores` whether the code path emits NT stores.
[[nodiscard]] double store_traffic_factor(bool write_allocate,
                                          bool streaming_stores);

/// Fraction (0, 1] of STREAM bandwidth a bandwidth-bound sweep reaches
/// given how its pages were placed: parallel first-touch reaches the
/// platform's full figure (factor 1), serial touch concentrates every
/// page on one NUMA domain and is throttled to the platform's modeled
/// `numa_penalty` (1 on single-domain parts, where placement cannot
/// hurt).
[[nodiscard]] double first_touch_bandwidth_factor(const Platform& hw,
                                                  bool parallel_first_touch);

// --- fused-chain traffic (loop chaining / cross-loop fusion) ---------------

/// Bytes of last-level cache a fused chain can devote to its tile slab
/// (the same usable fraction the layer-condition model assumes).
[[nodiscard]] double usable_llc_bytes(const Platform& hw);

/// Fraction in [0, 1] of a chain's internal producer->consumer traffic
/// that tiling at `tile_rows` slow-dimension rows keeps cache-resident:
/// 1 while the slab working set (row_bytes x (tile + ghost rows)) fits
/// the usable LLC, decaying as capacity misses re-introduce DRAM round
/// trips. 0 for the untiled schedule (tile_rows == 0), where every
/// intermediate makes the full trip.
[[nodiscard]] double chain_tile_residency(const Platform& hw, double row_bytes,
                                          std::size_t tile_rows,
                                          long ghost_rows);

/// Deepest tile (slow-dimension rows) whose chain slab stays resident in
/// the usable LLC; 0 when no worthwhile tile exists (slab rows would be
/// fewer than 4 or the extent is too small to split).
[[nodiscard]] std::size_t chain_tile_rows(const Platform& hw, double row_bytes,
                                          long slow_extent, long ghost_rows);

/// Predicted effect of executing `chain` (profiles in program order) as
/// overlap-tiled fused sweeps.
struct FusedTraffic {
  /// Internal producer->consumer round trips inside *legally fusable*
  /// segments: the chain is partitioned with the same dataflow rules
  /// the capture-side LoopChain applies (WAR/WAW cuts, reduction
  /// termination, in-place stencil isolation), then for every dat
  /// written by one loop and read by a later one in the same segment
  /// (before being overwritten), the writeback + re-read that dies in
  /// cache under fusion: 2 x edge bytes, one extra re-read per
  /// additional consumer.
  double fusable_bytes = 0.0;
  /// Fusable-byte-weighted mean of per-segment chain_tile_residency.
  double residency = 0.0;
  std::size_t tile_rows = 0;  ///< deepest per-segment tile chosen
  [[nodiscard]] double saved_bytes() const {
    return fusable_bytes * residency;
  }
};

/// Estimate over recorded profiles (requires LoopProfile::accesses;
/// profiles without access records contribute no edges). tile_rows == 0
/// picks chain_tile_rows() per segment internally.
[[nodiscard]] FusedTraffic fused_traffic_estimate(
    const Platform& hw, std::span<const LoopProfile> chain,
    std::size_t tile_rows = 0);

}  // namespace syclport::hw
