#pragma once
/// \file par_loop.hpp
/// The OPS parallel-loop primitive. A par_loop names a kernel, an
/// iteration range over a block, and a list of dat/reduction arguments
/// with stencils and access modes. From this single high-level
/// description the DSL:
///   1. records a LoopProfile (transfer footprints, radii, flops, halo
///      needs) for the hardware model - in both Execute and ModelOnly
///      modes;
///   2. lowers the kernel to the configured backend (serial, threads,
///      SYCL flat, SYCL nd_range, MPI decompositions) and runs it.
/// This mirrors how the real OPS generates per-parallelization code
/// from one kernel description (paper §3).

#include <algorithm>
#include <array>
#include <tuple>

#include "hwmodel/loop_profile.hpp"
#include "hwmodel/tuning_priors.hpp"
#include "ops/arg.hpp"
#include "ops/block.hpp"
#include "ops/context.hpp"
#include "runtime/autotune/autotune.hpp"
#include "runtime/autotune/variant.hpp"
#include "runtime/thread_pool.hpp"

namespace syclport::ops {

/// Static metadata of a kernel.
struct Meta {
  const char* name = "(kernel)";
  hw::KernelClass cls = hw::KernelClass::Interior;
  double flops_per_point = 0.0;
};

/// Iteration range, interior-relative, slowest dimension first; may
/// extend into the halo (negative lo / hi beyond the block size) for
/// boundary-condition loops.
struct Range {
  std::array<long, 3> lo{0, 0, 0};
  std::array<long, 3> hi{1, 1, 1};

  [[nodiscard]] static Range all(const Block& b) {
    Range r;
    for (int d = 0; d < b.dims(); ++d) {
      r.lo[static_cast<std::size_t>(d)] = 0;
      r.hi[static_cast<std::size_t>(d)] = static_cast<long>(b.size(d));
    }
    return r;
  }

  /// The full interior shrunk by `n` points on every side.
  [[nodiscard]] static Range inner(const Block& b, long n) {
    Range r = all(b);
    for (int d = 0; d < b.dims(); ++d) {
      r.lo[static_cast<std::size_t>(d)] += n;
      r.hi[static_cast<std::size_t>(d)] -= n;
    }
    return r;
  }
};

namespace detail {

template <typename T>
struct DatBinder {
  T* origin;
  std::ptrdiff_t s_slow, s_mid, s_fast;
  int dims;

  [[nodiscard]] ACC<T> make(long i0, long i1, long i2) const {
    T* p = origin;
    if (dims == 1) {
      p += i0 * s_fast;
      return ACC<T>(p, s_fast, 0, 0);
    }
    if (dims == 2) {
      p += i0 * s_mid + i1 * s_fast;
      return ACC<T>(p, s_fast, s_mid, 0);
    }
    p += i0 * s_slow + i1 * s_mid + i2 * s_fast;
    return ACC<T>(p, s_fast, s_mid, s_slow);
  }
};

template <typename T>
struct RedBinder {
  T* target;
  RedOp op;
  [[nodiscard]] Reducer<T> make(long, long, long) const {
    return Reducer<T>(target, op);
  }
};

template <typename T>
DatBinder<T> make_binder(const DatArg<T>& a, bool executing) {
  const int dims = a.dat->block().dims();
  return DatBinder<T>{executing ? a.dat->origin() : nullptr, a.dat->stride_slow(),
                      a.dat->stride_mid(), a.dat->stride_fast(), dims};
}

template <typename T>
RedBinder<T> make_binder(const RedArg<T>& a, bool /*executing*/) {
  return RedBinder<T>{a.target, a.op};
}

/// Does the argument pack contain a reduction? Reduction loops keep the
/// ascending-order-only variant axes but must not race the cache-block
/// axis (its traversal reorder would change accumulation order).
template <typename A>
struct is_red_arg : std::false_type {};
template <typename T>
struct is_red_arg<RedArg<T>> : std::true_type {};

// --- profile accumulation ---------------------------------------------------

template <typename T>
void accumulate(hw::LoopProfile& lp, const std::array<std::size_t, 3>& ext,
                int dims, const DatArg<T>& a) {
  // Map stencil radii (x fastest) onto the slow..fast extent layout.
  std::array<int, 3> rad{0, 0, 0};
  rad[static_cast<std::size_t>(dims - 1)] = a.st.radius_x;
  if (dims >= 2) rad[static_cast<std::size_t>(dims - 2)] = a.st.radius_y;
  if (dims >= 3) rad[0] = a.st.radius_z;

  double pts = 1.0;
  for (int d = 0; d < dims; ++d)
    pts *= static_cast<double>(ext[static_cast<std::size_t>(d)]) +
           2.0 * rad[static_cast<std::size_t>(d)];
  const double footprint = pts * a.dat->ncomp() * sizeof(T);

  const double point_bytes = static_cast<double>(a.dat->ncomp()) * sizeof(T);
  if (a.acc == Acc::R || a.acc == Acc::RW) {
    lp.bytes_read += footprint;
    // Register/L1 traffic: every stencil tap is a separate load.
    const int touches = 1 + 2 * (a.st.radius_x + a.st.radius_y + a.st.radius_z);
    double rpts = 1.0;
    for (int d = 0; d < dims; ++d)
      rpts *= static_cast<double>(ext[static_cast<std::size_t>(d)]);
    lp.cache_access_bytes += rpts * touches * point_bytes;
    lp.radius_fast = std::max(lp.radius_fast,
                              rad[static_cast<std::size_t>(dims - 1)]);
    if (dims >= 2)
      lp.radius_mid = std::max(lp.radius_mid,
                               rad[static_cast<std::size_t>(dims - 2)]);
    if (dims >= 3) lp.radius_slow = std::max(lp.radius_slow, rad[0]);
    if (a.st.max_radius() > 0) {
      lp.bytes_read_stencil += footprint;
      lp.stencil_point_bytes += point_bytes;
      lp.halo_depth = std::max(lp.halo_depth, a.st.max_radius());
      lp.halo_point_bytes += point_bytes;
    }
  }
  if (a.acc == Acc::W || a.acc == Acc::RW) {
    lp.bytes_written += footprint;
    double wpts = 1.0;
    for (int d = 0; d < dims; ++d)
      wpts *= static_cast<double>(ext[static_cast<std::size_t>(d)]);
    lp.cache_access_bytes += wpts * point_bytes;
  }
  lp.working_set += footprint;
  lp.n_arrays += 1;
  lp.elem_bytes = sizeof(T);

  // Dat identity for the dependence-level analyses (fusion headroom,
  // chain partitioning): interior footprint only, no halo inflation.
  hw::DatAccess da;
  da.id = a.dat;
  da.name = a.dat->name();
  double ipts = 1.0;
  for (int d = 0; d < dims; ++d)
    ipts *= static_cast<double>(ext[static_cast<std::size_t>(d)]);
  da.bytes = ipts * point_bytes;
  da.read = a.acc == Acc::R || a.acc == Acc::RW;
  da.write = a.acc == Acc::W || a.acc == Acc::RW;
  da.radius_slow = rad[0];
  da.radius_max = a.st.max_radius();
  lp.accesses.push_back(std::move(da));
}

template <typename T>
void accumulate(hw::LoopProfile& lp, const std::array<std::size_t, 3>&, int,
                const RedArg<T>&) {
  lp.reduction = hw::ReductionKind::BuiltIn;
  if (lp.cls == hw::KernelClass::Interior) lp.cls = hw::KernelClass::Reduction;
}

}  // namespace detail

template <typename K, typename... Args>
void par_loop(Context& ctx, Meta meta, Block& block, Range r, K&& kernel,
              Args... args) {
  const int dims = block.dims();
  std::array<std::size_t, 3> ext{1, 1, 1};
  std::size_t total = 1;
  for (int d = 0; d < dims; ++d) {
    const long e = r.hi[static_cast<std::size_t>(d)] -
                   r.lo[static_cast<std::size_t>(d)];
    if (e <= 0) return;  // empty range: nothing to run or record
    ext[static_cast<std::size_t>(d)] = static_cast<std::size_t>(e);
    total *= static_cast<std::size_t>(e);
  }

  if (ctx.opt.record) {
    hw::LoopProfile lp;
    lp.name = meta.name;
    lp.cls = meta.cls;
    lp.dims = dims;
    lp.extent = ext;
    lp.flops = meta.flops_per_point * static_cast<double>(total);
    lp.n_arrays = 0;  // counted by the accumulate fold below
    (detail::accumulate(lp, ext, dims, args), ...);
    const bool mpi_backend = ctx.opt.backend == Backend::MPI ||
                             ctx.opt.backend == Backend::MPIThreads;
    if (!mpi_backend) {
      lp.halo_depth = 0;
      lp.halo_point_bytes = 0.0;
    }
    ctx.profiles.push_back(std::move(lp));
  }
  if (!ctx.executing()) return;

  // Apply this loop's launch parameters for its duration. Explicit
  // Options::schedule/grain always win; otherwise, when tuning is on
  // (SYCLPORT_TUNE or Options::tune), the autotuner serves the
  // schedule x grain - and for SyclNd also the work-group shape - for
  // this kernel's site, measuring the loop's wall time as feedback.
  // Both the Threads backend (direct pool launches) and the SYCL
  // backends (handler-issued launches) read the params at submit time;
  // the handler's own per-launch tuning scope defers to this one.
  hw::seed_autotuner_priors();
  rt::autotune::ScopedTune tune_override(ctx.opt.tune);
  rt::autotune::Site site;
  site.name = meta.name;
  site.dims = dims;
  site.global = ext;
  site.nd = ctx.opt.backend == Backend::SyclNd;
  // Flat sweeps (pool and SYCL flat lowerings) additionally race the
  // kernel-variant menu, and - for independent-point multi-dimensional
  // loops - the cache-blocked traversal. The Serial backend stays the
  // pure reference loop, and nd_range keeps its shape contract.
  constexpr bool has_red = (detail::is_red_arg<Args>::value || ...);
  const bool flat_sweep = ctx.opt.backend == Backend::Threads ||
                          ctx.opt.backend == Backend::MPI ||
                          ctx.opt.backend == Backend::MPIThreads ||
                          ctx.opt.backend == Backend::SyclFlat;
  site.axes = rt::autotune::kScheduleGrain |
              (site.nd ? rt::autotune::kWorkGroup : 0u) |
              (flat_sweep ? rt::autotune::kVariantAxes : 0u) |
              (flat_sweep && !has_red && dims >= 2 ? rt::autotune::kCacheBlock
                                                   : 0u);
  site.max_wg = ctx.queue.get_device().max_work_group_size();
  rt::autotune::TunedLaunchParams sched_scope(site, ctx.opt.schedule,
                                              ctx.opt.grain);

  auto binders = std::make_tuple(detail::make_binder(args, true)...);
  auto invoke = [&](long i0, long i1, long i2) {
    std::apply(
        [&](const auto&... b) { kernel(b.make(i0, i1, i2)...); }, binders);
  };
  // Iteration coordinates are offset by r.lo; delinearize over ext.
  auto invoke_linear = [&](std::size_t lin) {
    long i2 = 0, i1 = 0, i0 = 0;
    if (dims == 1) {
      i0 = static_cast<long>(lin);
    } else if (dims == 2) {
      i1 = static_cast<long>(lin % ext[1]);
      i0 = static_cast<long>(lin / ext[1]);
    } else {
      i2 = static_cast<long>(lin % ext[2]);
      const std::size_t rest = lin / ext[2];
      i1 = static_cast<long>(rest % ext[1]);
      i0 = static_cast<long>(rest / ext[1]);
    }
    invoke(r.lo[0] + i0, r.lo[1] + i1, r.lo[2] + i2);
  };

  switch (ctx.opt.backend) {
    case Backend::Serial:
      for (std::size_t lin = 0; lin < total; ++lin) invoke_linear(lin);
      break;
    case Backend::Threads:
    case Backend::MPI:
    case Backend::MPIThreads: {
      // MPI backends are semantically identical sweeps on shared memory;
      // their decomposition cost is carried by the recorded halo profile.
      rt::autotune::VariantParams vp;
      std::size_t cb = 0;
      if (sched_scope.phase() != rt::autotune::Phase::None) {
        const auto& cfg = sched_scope.config();
        vp.reg_tile = cfg.reg_tile.value_or(1);
        vp.vec_width = cfg.vec_width.value_or(1);
        vp.unroll = cfg.unroll.value_or(1);
        cb = cfg.cache_block.value_or(0);
      }
      const std::size_t fast = ext[static_cast<std::size_t>(dims - 1)];
      if (dims >= 2 && cb > 0 && cb < fast) {
        rt::autotune::blocked_parallel_for(total / fast, fast, cb, vp,
                                           invoke_linear);
      } else {
        rt::ThreadPool::global().parallel_for(
            total, [&](std::size_t b, std::size_t e) {
              rt::autotune::run_span_variant(vp, b, e, invoke_linear);
            });
      }
      break;
    }
    case Backend::SyclFlat: {
      if (dims == 1) {
        ctx.queue.parallel_for(meta.name, sycl::range<1>(ext[0]),
                               [&](sycl::item<1> it) {
                                 invoke_linear(it.get_linear_id());
                               });
      } else if (dims == 2) {
        ctx.queue.parallel_for(meta.name, sycl::range<2>(ext[0], ext[1]),
                               [&](sycl::item<2> it) {
                                 invoke_linear(it.get_linear_id());
                               });
      } else {
        ctx.queue.parallel_for(meta.name,
                               sycl::range<3>(ext[0], ext[1], ext[2]),
                               [&](sycl::item<3> it) {
                                 invoke_linear(it.get_linear_id());
                               });
      }
      break;
    }
    case Backend::SyclNd: {
      // Pad the global range to a multiple of the tuned local shape and
      // mask the overhang inside the kernel, as generated OPS SYCL does.
      // nd_local is stored slow..fast for 3D; align it with this loop's
      // dimensionality (a 2D loop uses the (mid, fast) entries, a 1D
      // loop the fast entry only). When the autotuner serves this loop
      // its decided shape replaces the hand-tuned Options::nd_local.
      const std::array<std::size_t, 3>& shape =
          sched_scope.phase() != rt::autotune::Phase::None &&
                  sched_scope.config().local
              ? *sched_scope.config().local
              : ctx.opt.nd_local;
      std::array<std::size_t, 3> local{1, 1, 1};
      for (int d = 0; d < dims; ++d)
        local[static_cast<std::size_t>(d)] = std::max<std::size_t>(
            1, shape[static_cast<std::size_t>(3 - dims + d)]);
      auto padded = ext;
      for (int d = 0; d < dims; ++d) {
        const auto l = local[static_cast<std::size_t>(d)];
        auto& p = padded[static_cast<std::size_t>(d)];
        p = (p + l - 1) / l * l;
      }
      auto body = [&](auto it) {
        std::size_t lin = 0;
        bool inside = true;
        if constexpr (std::is_same_v<decltype(it), sycl::nd_item<1>>) {
          const auto g0 = it.get_global_id(0);
          inside = g0 < ext[0];
          lin = g0;
        } else if constexpr (std::is_same_v<decltype(it), sycl::nd_item<2>>) {
          const auto g0 = it.get_global_id(0), g1 = it.get_global_id(1);
          inside = g0 < ext[0] && g1 < ext[1];
          lin = g0 * ext[1] + g1;
        } else {
          const auto g0 = it.get_global_id(0), g1 = it.get_global_id(1),
                     g2 = it.get_global_id(2);
          inside = g0 < ext[0] && g1 < ext[1] && g2 < ext[2];
          lin = (g0 * ext[1] + g1) * ext[2] + g2;
        }
        if (inside) invoke_linear(lin);
      };
      if (dims == 1) {
        ctx.queue.parallel_for(
            meta.name,
            sycl::nd_range<1>(sycl::range<1>(padded[0]),
                              sycl::range<1>(local[0])),
            [&](sycl::nd_item<1> it) { body(it); });
      } else if (dims == 2) {
        ctx.queue.parallel_for(
            meta.name,
            sycl::nd_range<2>(sycl::range<2>(padded[0], padded[1]),
                              sycl::range<2>(local[0], local[1])),
            [&](sycl::nd_item<2> it) { body(it); });
      } else {
        ctx.queue.parallel_for(
            meta.name,
            sycl::nd_range<3>(sycl::range<3>(padded[0], padded[1], padded[2]),
                              sycl::range<3>(local[0], local[1], local[2])),
            [&](sycl::nd_item<3> it) { body(it); });
      }
      break;
    }
  }
}

}  // namespace syclport::ops
