file(REMOVE_RECURSE
  "CMakeFiles/test_sycl_groups.dir/test_sycl_groups.cpp.o"
  "CMakeFiles/test_sycl_groups.dir/test_sycl_groups.cpp.o.d"
  "test_sycl_groups"
  "test_sycl_groups.pdb"
  "test_sycl_groups[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sycl_groups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
