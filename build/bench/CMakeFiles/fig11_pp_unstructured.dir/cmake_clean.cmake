file(REMOVE_RECURSE
  "CMakeFiles/fig11_pp_unstructured.dir/fig11_pp_unstructured.cpp.o"
  "CMakeFiles/fig11_pp_unstructured.dir/fig11_pp_unstructured.cpp.o.d"
  "fig11_pp_unstructured"
  "fig11_pp_unstructured.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_pp_unstructured.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
