// distributed_mgcfd: the full distributed-unstructured pipeline on real
// messages - partition the rotor mesh with RCB (the PT-Scotch role),
// localize per rank, and run an MG-CFD-style flux/update iteration with
// halo import before each edge loop and export-add of the remote
// increments after it. Conservation holds across ranks and the result
// matches the shared-memory solver.
//
// Build & run:  ./build/examples/distributed_mgcfd

#include <cmath>
#include <cstdio>
#include <mutex>

#include "apps/mgcfd/mesh.hpp"
#include "op2/dist.hpp"

namespace op2 = syclport::op2;
namespace dist = syclport::op2::dist;
namespace mpi = syclport::mpi;
using syclport::Strategy;

namespace {
constexpr int kIters = 5;

double initial_value(int g, int c) {
  return 1.0 + 0.05 * std::sin(0.01 * g + c);
}
}  // namespace

int main() {
  auto gmesh = syclport::apps::mgcfd::build_rotor_mesh(24, 20, 14, 1);
  std::printf("rotor mesh: %zu nodes, %zu edges\n\n", gmesh.fine_nodes(),
              gmesh.fine_edges());

  // Shared-memory reference.
  double ref_sum = 0.0;
  {
    op2::Context ctx{op2::Options{}};
    op2::Dat<double> v(*gmesh.levels[0].nodes, 1, "v");
    op2::Dat<double> d(*gmesh.levels[0].nodes, 1, "d");
    for (std::size_t g = 0; g < gmesh.fine_nodes(); ++g)
      v.at(g) = initial_value(static_cast<int>(g), 0);
    for (int it = 0; it < kIters; ++it) {
      op2::par_loop(ctx, {"relax"}, *gmesh.levels[0].edges,
                    [](const double* a, const double* b, op2::Inc<double> da,
                       op2::Inc<double> db) {
                      const double f = 0.05 * (b[0] - a[0]);
                      da.add(0, f);
                      db.add(0, -f);
                    },
                    op2::arg_indirect(v, *gmesh.levels[0].e2n, 0, op2::Acc::R),
                    op2::arg_indirect(v, *gmesh.levels[0].e2n, 1, op2::Acc::R),
                    op2::arg_inc(d, *gmesh.levels[0].e2n, 0),
                    op2::arg_inc(d, *gmesh.levels[0].e2n, 1));
      for (std::size_t g = 0; g < gmesh.fine_nodes(); ++g) {
        v.at(g) += d.at(g);
        d.at(g) = 0.0;
      }
    }
    ref_sum = v.sum();
    std::printf("shared-memory result:  sum(v) = %.12f\n", ref_sum);
  }

  for (int nranks : {2, 4, 6}) {
    double got = 0.0;
    std::mutex mu;
    mpi::run(nranks, [&](mpi::Comm& comm) {
      dist::DistMesh dm(comm, *gmesh.levels[0].e2n, gmesh.levels[0].coords);
      dist::DistNodeDat<double> v(dm, 1, "v"), d(dm, 1, "d");
      v.init_owned(initial_value);

      op2::Options oo;
      oo.exec = op2::Exec::Serial;
      oo.record = false;
      op2::Context ctx(oo);
      for (int it = 0; it < kIters; ++it) {
        v.import_halo();
        op2::par_loop(ctx, {"relax"}, dm.edges(),
                      [](const double* a, const double* b,
                         op2::Inc<double> da, op2::Inc<double> db) {
                        const double f = 0.05 * (b[0] - a[0]);
                        da.add(0, f);
                        db.add(0, -f);
                      },
                      op2::arg_indirect(v.dat(), dm.e2n(), 0, op2::Acc::R),
                      op2::arg_indirect(v.dat(), dm.e2n(), 1, op2::Acc::R),
                      op2::arg_inc(d.dat(), dm.e2n(), 0),
                      op2::arg_inc(d.dat(), dm.e2n(), 1));
        d.export_add();
        for (std::size_t i = 0; i < dm.n_owned_nodes(); ++i) {
          v.dat().at(i) += d.dat().at(i);
          d.dat().at(i) = 0.0;
        }
      }
      const double sum = v.global_sum();
      if (comm.rank() == 0) {
        std::size_t halo = dm.n_halo_nodes();
        std::printf("%d ranks:               sum(v) = %.12f   (rank-0 halo "
                    "%zu nodes, delta %.2e)\n",
                    comm.size(), sum, halo, std::fabs(sum - ref_sum));
      }
      std::lock_guard lock(mu);
      got = sum;
    });
    (void)got;
  }
  std::printf("\nowner-compute with halo import/export-add reproduces the\n"
              "shared-memory physics on real messages.\n");
  return 0;
}
