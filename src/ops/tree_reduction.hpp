#pragma once
/// \file tree_reduction.hpp
/// User-defined binary-tree reduction in SYCL local memory. The paper
/// (§4.2) notes OPS had to fall back to this formulation on CPU SYCL
/// targets because SYCL 2020 built-in reductions were unsupported
/// (OpenSYCL) or failed to compile (DPC++); it costs 6-7x more than
/// OpenMP reductions there. This is that exact pattern: stage into
/// local memory, log2(wg) barrier rounds, one atomic combine per group.

#include <cstddef>

#include "sycl/sycl.hpp"

namespace syclport::ops {

namespace detail {
template <typename T, typename Op>
void atomic_combine(T* target, T v, Op op) {
  sycl::atomic_ref<T> a(*target);
  T cur = a.load();
  while (!a.compare_exchange_strong(cur, op(cur, v))) {
  }
}
}  // namespace detail

/// Reduce data[0..n) with `op` (associative, commutative), combining
/// into *result (which must be pre-initialized, typically with the
/// identity). `wg` is the work-group size and must be a power of two.
template <typename T, typename Op>
void tree_reduce(sycl::queue& q, const T* data, std::size_t n, T identity,
                 Op op, T* result, std::size_t wg = 64) {
  if (n == 0) return;
  const std::size_t padded = (n + wg - 1) / wg * wg;
  sycl::local_accessor<T, 1> scratch{sycl::range<1>(wg)};
  q.parallel_for(
      "tree_reduce", sycl::nd_range<1>(sycl::range<1>(padded), sycl::range<1>(wg)),
      [=](sycl::nd_item<1> it) {
        const std::size_t g = it.get_global_id(0);
        const std::size_t l = it.get_local_id(0);
        scratch[l] = g < n ? data[g] : identity;
        it.barrier();
        for (std::size_t stride = wg / 2; stride > 0; stride /= 2) {
          if (l < stride) scratch[l] = op(scratch[l], scratch[l + stride]);
          it.barrier();
        }
        if (l == 0) detail::atomic_combine(result, scratch[0], op);
      });
}

}  // namespace syclport::ops
