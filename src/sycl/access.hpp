#pragma once
/// \file access.hpp
/// Access modes and accessor tags. Split out of buffer.hpp so the
/// dependency scheduler (detail/scheduler.hpp) can name access_mode
/// without pulling in buffers.

namespace sycl {

enum class access_mode { read, write, read_write };

/// Accessor-construction tags, as in SYCL 2020.
struct read_only_tag {};
struct write_only_tag {};
struct read_write_tag {};
inline constexpr read_only_tag read_only{};
inline constexpr write_only_tag write_only{};
inline constexpr read_write_tag read_write{};

}  // namespace sycl
