// Figure 6 reproduction: runtime of the six structured-mesh
// applications on the GenoaX platform across programming-model
// variants (see DESIGN.md experiment index).

#include <iostream>

#include "common/figures.hpp"

using namespace syclport;

int main() {
  study::StudyRunner runner;
  bench::structured_figure(
      std::cout, runner, PlatformId::GenoaX,
      "Figure 6: structured-mesh runtimes, " +
          std::string(to_string(PlatformId::GenoaX)),
      "fig6_structured_genoax");
  return 0;
}
