file(REMOVE_RECURSE
  "CMakeFiles/fig9_mgcfd_cpu.dir/fig9_mgcfd_cpu.cpp.o"
  "CMakeFiles/fig9_mgcfd_cpu.dir/fig9_mgcfd_cpu.cpp.o.d"
  "fig9_mgcfd_cpu"
  "fig9_mgcfd_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_mgcfd_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
