// Chaos harness for the fault-injection and resilience subsystem
// (docs/resilience.md): plan grammar and determinism, per-layer
// injection sites (mem, thread pool, OoO scheduler, mini-MPI, tuning
// cache), recovery paths, checkpoint/restart, and seeded fault
// schedules over the mini-apps. The invariant every schedule asserts:
// a run under injection either completes with a bit-exact answer or
// raises a typed error - never a hang, crash, or silent corruption.

#include <gtest/gtest.h>

#include <array>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "apps/apps.hpp"
#include "minimpi/comm.hpp"
#include "minimpi/elastic.hpp"
#include "ops/dist.hpp"
#include "ops/dist_checkpoint.hpp"
#include "ops/ops.hpp"
#include "runtime/autotune/cache.hpp"
#include "runtime/env.hpp"
#include "runtime/fault/checkpoint.hpp"
#include "runtime/fault/fault.hpp"
#include "runtime/mem/mem.hpp"
#include "sycl/sycl.hpp"

namespace fault = syclport::rt::fault;
namespace mem = syclport::rt::mem;
namespace at = syclport::rt::autotune;
namespace mpi = syclport::mpi;
namespace ops = syclport::ops;
namespace apps = syclport::apps;
namespace rt = syclport::rt;

namespace {

/// Install a fault plan for one test scope; disarm and reset stats on
/// the way out so tests never leak chaos into each other.
class ScopedPlan {
 public:
  explicit ScopedPlan(const std::string& spec) {
    fault::clear();
    fault::reset_stats_for_testing();
    EXPECT_TRUE(fault::configure(spec)) << "spec: " << spec;
  }
  ~ScopedPlan() { fault::clear(); }
};

/// Scoped environment override (comm timeout/retry knobs).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() { ::unsetenv(name_); }

 private:
  const char* name_;
};

}  // namespace

// ---------------------------------------------------------------------------
// Plan grammar and determinism
// ---------------------------------------------------------------------------

TEST(FaultPlan, ParsesValidSpecsAndArms) {
  ScopedPlan plan("7:mem.alloc=@1");
  EXPECT_TRUE(fault::armed());
  EXPECT_EQ(fault::seed(), 7u);
  EXPECT_TRUE(fault::configure("9:comm.*=0.5x3,sched.delay=%2,pool.stall=@4"));
  EXPECT_EQ(fault::seed(), 9u);
}

TEST(FaultPlan, RejectsMalformedSpecsAndStaysDisarmed) {
  fault::clear();
  EXPECT_FALSE(fault::configure("no-colon"));
  EXPECT_FALSE(fault::configure("5:"));
  EXPECT_FALSE(fault::configure("5:bogus.site=@1"));
  EXPECT_FALSE(fault::configure("5:mem.alloc=1.5"));   // prob > 1
  EXPECT_FALSE(fault::configure("5:mem.alloc=@0"));    // nth must be >= 1
  EXPECT_FALSE(fault::configure("5:mem.alloc=@2x0"));  // cap must be >= 1
  EXPECT_FALSE(fault::configure("seed:mem.alloc=@1")); // non-numeric seed
  EXPECT_FALSE(fault::armed());
  EXPECT_FALSE(fault::roll(fault::Site::MemAlloc).fire);
}

TEST(FaultPlan, EmptySpecDisarms) {
  EXPECT_TRUE(fault::configure("3:mem.alloc=@1"));
  EXPECT_TRUE(fault::armed());
  EXPECT_TRUE(fault::configure(""));
  EXPECT_FALSE(fault::armed());
}

TEST(FaultPlan, NthTriggerFiresExactlyOnce) {
  ScopedPlan plan("1:pool.stall=@3");
  int fires = 0, fired_at = 0;
  for (int occ = 1; occ <= 10; ++occ)
    if (fault::roll(fault::Site::PoolStall).fire) {
      ++fires;
      fired_at = occ;
    }
  EXPECT_EQ(fires, 1);
  EXPECT_EQ(fired_at, 3);
  EXPECT_EQ(fault::stats().injected_at(fault::Site::PoolStall), 1u);
}

TEST(FaultPlan, EveryNthRespectsInjectionCap) {
  ScopedPlan plan("1:pool.stall=%2x2");
  std::vector<int> fired;
  for (int occ = 1; occ <= 10; ++occ)
    if (fault::roll(fault::Site::PoolStall).fire) fired.push_back(occ);
  EXPECT_EQ(fired, (std::vector<int>{2, 4}));  // the cap stops 6, 8, 10
}

TEST(FaultPlan, WildcardArmsEveryGroupSite) {
  ScopedPlan plan("3:comm.*=@1");
  EXPECT_TRUE(fault::roll_stream(fault::Site::CommDrop, 0, 1).fire);
  EXPECT_TRUE(fault::roll_stream(fault::Site::CommDup, 5, 1).fire);
  EXPECT_TRUE(fault::roll_stream(fault::Site::CommCorrupt, 9, 1).fire);
  EXPECT_TRUE(fault::roll_stream(fault::Site::CommDelay, 2, 1).fire);
  // Sites outside the group stay cold.
  EXPECT_FALSE(fault::roll(fault::Site::MemAlloc).fire);
}

TEST(FaultPlan, ProbabilityDrawsAreSeedDeterministic) {
  const auto pattern = [](const std::string& spec) {
    ScopedPlan plan(spec);
    std::vector<bool> fires;
    fires.reserve(200);
    for (std::uint64_t i = 0; i < 200; ++i)
      fires.push_back(
          fault::roll_stream(fault::Site::CommDrop, /*stream=*/42, i).fire);
    return fires;
  };
  const auto a = pattern("11:comm.drop=0.3");
  const auto b = pattern("11:comm.drop=0.3");
  EXPECT_EQ(a, b);  // same seed: identical decisions
  const auto c = pattern("12:comm.drop=0.3");
  EXPECT_NE(a, c);  // different seed: different schedule
}

TEST(FaultPlan, SiteNamesRoundTrip) {
  for (std::size_t s = 0; s < fault::kSiteCount; ++s) {
    const auto site = static_cast<fault::Site>(s);
    const auto back = fault::site_from_string(fault::to_string(site));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, site);
  }
  EXPECT_FALSE(fault::site_from_string("not.a.site").has_value());
}

// ---------------------------------------------------------------------------
// Memory subsystem: injected allocation failure and arena pressure
// ---------------------------------------------------------------------------

TEST(FaultMem, InjectedAllocFailureDegradesToDirectAllocation) {
  mem::set_config_for_testing(mem::config());  // flush pool
  mem::reset_stats_for_testing();
  ScopedPlan plan("5:mem.alloc=@1");
  void* p = mem::alloc(4096, mem::Init::Zero);
  ASSERT_NE(p, nullptr);
  auto* bytes = static_cast<unsigned char*>(p);
  for (int i = 0; i < 4096; ++i) ASSERT_EQ(bytes[i], 0u);
  bytes[0] = 0xAB;  // the block is real, writable memory
  mem::dealloc(p);
  const auto ms = mem::stats();
  EXPECT_EQ(ms.pool_fallbacks, 1u);
  const auto fs = fault::stats();
  EXPECT_EQ(fs.injected_at(fault::Site::MemAlloc), 1u);
  EXPECT_EQ(fs.recovered_at(fault::Site::MemAlloc), 1u);
}

TEST(FaultMem, ArenaPressureForcesFreshPathAndRecovers) {
  mem::set_config_for_testing(mem::config());
  // Park a block in the pool so a clean alloc would be a pool hit.
  void* warm = mem::alloc(8192, mem::Init::None);
  mem::dealloc(warm);
  mem::reset_stats_for_testing();
  ScopedPlan plan("5:mem.arena=@1");
  void* p = mem::alloc(8192, mem::Init::None);
  ASSERT_NE(p, nullptr);
  mem::dealloc(p);
  const auto ms = mem::stats();
  EXPECT_EQ(ms.pool_hits, 0u);  // the pool was bypassed under pressure
  EXPECT_EQ(ms.fresh_allocs, 1u);
  const auto fs = fault::stats();
  EXPECT_EQ(fs.injected_at(fault::Site::MemArena), 1u);
  EXPECT_EQ(fs.recovered_at(fault::Site::MemArena), 1u);
  mem::set_config_for_testing(mem::config());
}

// ---------------------------------------------------------------------------
// Scheduler: injected kernel failure, delay and reordering
// ---------------------------------------------------------------------------

TEST(FaultSched, InjectedThrowSurfacesAsTypedAsyncErrorAndQueueSurvives) {
  ScopedPlan plan("2:sched.throw=@1");
  sycl::queue q;
  int x = 0;
  q.submit([&](sycl::handler& h) {
    h.require(&x, sycl::access_mode::write);
    h.single_task([&x] { x = 1; });
  });
  EXPECT_THROW(q.wait_and_throw(), fault::fault_injected_error);
  // The faulted command did not run its actions; the scheduler and the
  // queue remain fully usable for the retry.
  fault::clear();
  q.submit([&](sycl::handler& h) {
    h.require(&x, sycl::access_mode::write);
    h.single_task([&x] { x = 2; });
  });
  EXPECT_NO_THROW(q.wait_and_throw());
  EXPECT_EQ(x, 2);
}

TEST(FaultSched, DelayAndReorderPreserveDependencyOrder) {
  // The RAW chain computes 1 -> 3 -> 7 -> 15 -> 31; any DAG violation
  // under injected delays/reordering yields a different value.
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u, 6u}) {
    ScopedPlan plan(std::to_string(seed) +
                    ":sched.delay=0.5x4,sched.reorder=0.5x4");
    sycl::queue q;
    std::vector<int> v(64, 0);
    int* p = v.data();
    q.submit([&](sycl::handler& h) {
      h.require(p, sycl::access_mode::write);
      h.parallel_for(sycl::range<1>(v.size()),
                     [p](sycl::id<1> i) { p[i[0]] = 1; });
    });
    for (int step = 0; step < 4; ++step) {
      q.submit([&](sycl::handler& h) {
        h.require(p, sycl::access_mode::read_write);
        h.parallel_for(sycl::range<1>(v.size()),
                       [p](sycl::id<1> i) { p[i[0]] = 2 * p[i[0]] + 1; });
      });
    }
    q.wait_and_throw();
    for (int x : v) ASSERT_EQ(x, 31) << "seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// mini-MPI transport: drop/dup/corrupt/delay recovery, typed timeouts
// ---------------------------------------------------------------------------

namespace {

/// Deterministic ring-exchange mini-workload: every rank repeatedly
/// sends its value to the next rank and folds in the previous rank's.
/// Returns the final per-rank values; any lost, duplicated, corrupted
/// or reordered delivery that the transport fails to repair changes
/// them.
std::vector<double> ring_run(int nranks, int steps) {
  std::vector<double> out(static_cast<std::size_t>(nranks), 0.0);
  mpi::run(nranks, [&](mpi::Comm& c) {
    double v = static_cast<double>(c.rank() + 1);
    const int to = (c.rank() + 1) % c.size();
    const int from = (c.rank() + c.size() - 1) % c.size();
    for (int s = 0; s < steps; ++s) {
      c.send(to, 7, v);
      double in = 0.0;
      c.recv(from, 7, in);
      v = 0.5 * v + in + static_cast<double>(s);
    }
    out[static_cast<std::size_t>(c.rank())] = v;
  });
  return out;
}

}  // namespace

class CommChaos
    : public ::testing::TestWithParam<std::pair<const char*, std::uint64_t>> {
};

TEST_P(CommChaos, RingExchangeStaysBitExactUnderInjection) {
  const auto [spec, seed] = GetParam();
  const ScopedEnv timeout("SYCLPORT_COMM_TIMEOUT_MS", "25");
  fault::clear();
  const auto reference = ring_run(3, 6);
  ScopedPlan plan(std::to_string(seed) + ":" + spec);
  const auto chaotic = ring_run(3, 6);
  fault::clear();
  ASSERT_EQ(chaotic.size(), reference.size());
  for (std::size_t r = 0; r < reference.size(); ++r)
    EXPECT_EQ(chaotic[r], reference[r]) << "rank " << r << " spec " << spec;
}

INSTANTIATE_TEST_SUITE_P(
    Schedules, CommChaos,
    ::testing::Values(
        std::make_pair("comm.drop=@2", std::uint64_t{11}),
        std::make_pair("comm.drop=0.2x4", std::uint64_t{12}),
        std::make_pair("comm.dup=%2", std::uint64_t{13}),
        std::make_pair("comm.corrupt=@1", std::uint64_t{14}),
        std::make_pair("comm.corrupt=0.3x6", std::uint64_t{15}),
        std::make_pair("comm.delay=0.4x8", std::uint64_t{16}),
        std::make_pair("comm.*=0.15x6", std::uint64_t{17}),
        std::make_pair("comm.*=0.15x6", std::uint64_t{18}),
        std::make_pair("comm.drop=%3x3,comm.delay=0.3x4", std::uint64_t{19})));

TEST(FaultComm, DeterministicDropIsCountedAndRecovered) {
  const ScopedEnv timeout("SYCLPORT_COMM_TIMEOUT_MS", "25");
  ScopedPlan plan("21:comm.drop=@2");
  (void)ring_run(2, 4);  // seq 2 of each channel is dropped and recovered
  const auto fs = fault::stats();
  EXPECT_GT(fs.injected_at(fault::Site::CommDrop), 0u);
  EXPECT_GE(fs.recovered_at(fault::Site::CommDrop), 1u);
}

TEST(FaultComm, CorruptPayloadIsDetectedAndHealedFromRetransmitStore) {
  const ScopedEnv timeout("SYCLPORT_COMM_TIMEOUT_MS", "25");
  ScopedPlan plan("22:comm.corrupt=@1");
  const auto values = ring_run(2, 4);
  const auto fs = fault::stats();
  EXPECT_GT(fs.injected_at(fault::Site::CommCorrupt), 0u);
  EXPECT_GE(fs.recovered_at(fault::Site::CommCorrupt), 1u);
  for (double v : values) EXPECT_TRUE(std::isfinite(v));
}

TEST(FaultComm, RecvTimeoutRaisesTypedErrorInsteadOfHanging) {
  const ScopedEnv timeout("SYCLPORT_COMM_TIMEOUT_MS", "20");
  const ScopedEnv retries("SYCLPORT_COMM_RETRIES", "1");
  // Armed (the timeout path is part of the armed transport), but with a
  // trigger that never fires - the hang comes from a message that is
  // simply never sent.
  ScopedPlan plan("1:pool.stall=@1000000000");
  bool timed_out = false;
  try {
    mpi::run(2, [&](mpi::Comm& c) {
      if (c.rank() == 0) {
        double v = 0.0;
        c.recv(1, 99, v);  // rank 1 never sends tag 99
      }
    });
  } catch (const mpi::comm_error& e) {
    timed_out = e.kind() == mpi::comm_error::Kind::Timeout;
    EXPECT_NE(std::string(e.what()).find("tag=99"), std::string::npos);
  }
  EXPECT_TRUE(timed_out);
}

TEST(FaultComm, PeerDeathConvertsBlockedRecvIntoPrimaryError) {
  // Disarmed path: peer-failure detection is always on. Rank 1 dies;
  // rank 0's blocked recv becomes a PeerFailed cascade, and run()
  // surfaces rank 1's genuine error as the primary.
  fault::clear();
  EXPECT_THROW(mpi::run(2,
                        [&](mpi::Comm& c) {
                          if (c.rank() == 1)
                            throw std::runtime_error("rank 1 exploded");
                          double v = 0.0;
                          c.recv(1, 3, v);
                        }),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// Tuning cache: corrupted load falls back to retuning
// ---------------------------------------------------------------------------

TEST(FaultCache, InjectedBitFlipRejectsFileAndCountsRecovery) {
  const std::string path = "test_fault_cache.json";
  at::CacheData data;
  data.fingerprint = "cores=4;l1d=32768;l2=1048576;llc=8388608;triad_log2=4";
  at::Config cfg;
  cfg.grain = 512;
  data.entries = {{"kern|1|4096x1x1|flat|fp9", cfg}};
  ASSERT_TRUE(at::write_cache(path, data));
  ASSERT_TRUE(at::read_cache(path).has_value());  // clean load works

  ScopedPlan plan("6:cache.corrupt=@1");
  EXPECT_FALSE(at::read_cache(path).has_value());  // flipped bit: rejected
  const auto fs = fault::stats();
  EXPECT_EQ(fs.injected_at(fault::Site::CacheCorrupt), 1u);
  EXPECT_GE(fs.recovered_at(fault::Site::CacheCorrupt), 1u);
  // Next occurrence does not fire: the same file loads again.
  EXPECT_TRUE(at::read_cache(path).has_value());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Checkpoint/restart
// ---------------------------------------------------------------------------

TEST(Checkpoint, SnapshotRoundTripsBitExactly) {
  const std::string path = "test_fault_ckpt_rt.bin";
  std::vector<double> a(257), b(63);
  for (std::size_t i = 0; i < a.size(); ++i)
    a[i] = 1.0 / (static_cast<double>(i) + 0.25);
  for (std::size_t i = 0; i < b.size(); ++i)
    b[i] = -static_cast<double>(i) * 3.5e-300;  // denormal-adjacent
  const std::vector<double> a_ref = a, b_ref = b;

  fault::Snapshot snap;
  snap.add("a", a.data(), a.size() * sizeof(double));
  snap.add("b", b.data(), b.size() * sizeof(double));
  EXPECT_EQ(snap.regions(), 2u);
  snap.save(path);

  for (auto& v : a) v = 0.0;
  for (auto& v : b) v = 42.0;
  snap.restore(path);
  EXPECT_EQ(std::memcmp(a.data(), a_ref.data(), a.size() * sizeof(double)), 0);
  EXPECT_EQ(std::memcmp(b.data(), b_ref.data(), b.size() * sizeof(double)), 0);
  std::remove(path.c_str());
}

TEST(Checkpoint, CorruptFileIsDetectedAndLeavesStateUntouched) {
  const std::string path = "test_fault_ckpt_corrupt.bin";
  std::vector<std::uint32_t> region(64);
  for (std::size_t i = 0; i < region.size(); ++i)
    region[i] = static_cast<std::uint32_t>(i * 2654435761u);
  fault::Snapshot snap;
  snap.add("r", region.data(), region.size() * sizeof(std::uint32_t));
  snap.save(path);

  // Flip one payload byte on disk.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open());
    f.seekp(40);
    char c = 0;
    f.seekg(40);
    f.read(&c, 1);
    c = static_cast<char>(c ^ 0x10);
    f.seekp(40);
    f.write(&c, 1);
  }
  std::vector<std::uint32_t> live = region;
  for (auto& v : live) v ^= 0xFFFFFFFFu;  // current (diverged) state
  fault::Snapshot snap2;
  snap2.add("r", live.data(), live.size() * sizeof(std::uint32_t));
  const std::vector<std::uint32_t> live_before = live;
  EXPECT_THROW(snap2.restore(path), fault::checkpoint_error);
  // All-or-nothing: the failed restore modified nothing.
  EXPECT_EQ(std::memcmp(live.data(), live_before.data(),
                        live.size() * sizeof(std::uint32_t)),
            0);
  std::remove(path.c_str());
}

TEST(Checkpoint, TruncatedAndMismatchedFilesAreRejected) {
  const std::string path = "test_fault_ckpt_trunc.bin";
  std::vector<float> data(128, 1.5f);
  fault::Snapshot snap;
  snap.add("field", data.data(), data.size() * sizeof(float));
  snap.save(path);

  // Truncate to 60% of its size.
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    bytes = std::move(ss).str();
  }
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size() * 6 / 10));
  }
  EXPECT_THROW(snap.restore(path), fault::checkpoint_error);

  // Restore into a mismatched region set (different name) is rejected.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  std::vector<float> other(128);
  fault::Snapshot wrong;
  wrong.add("renamed", other.data(), other.size() * sizeof(float));
  EXPECT_THROW(wrong.restore(path), fault::checkpoint_error);
  // Missing file.
  EXPECT_THROW(snap.restore("test_fault_ckpt_missing.bin"),
               fault::checkpoint_error);
  std::remove(path.c_str());
}

TEST(Checkpoint, DuplicateRegionNamesAreRejected) {
  int x = 0, y = 0;
  fault::Snapshot snap;
  snap.add("v", &x, sizeof x);
  EXPECT_THROW(snap.add("v", &y, sizeof y), fault::checkpoint_error);
}

// ---------------------------------------------------------------------------
// OPS checkpoint: rollback-and-recompute across an injected failure
// ---------------------------------------------------------------------------

namespace {

/// A tiny 2D heat-smoothing simulation over two OPS dats whose steps go
/// through the out-of-order scheduler (deferred submits with declared
/// footprints), so sched.* injection applies to it. Deterministic:
/// pure stencil, no reductions.
class HeatSim {
 public:
  HeatSim() : ctx_(make_opts()), blk_(ctx_, "heat", 2, {20, 24, 1}),
              a_(blk_, "ta", 1, 1), b_(blk_, "tb", 1, 1) {
    for (long j = 0; j < nj(); ++j)
      for (long i = 0; i < ni(); ++i)
        a_.at(j, i) = static_cast<double>((j * 31 + i * 7) % 17) * 0.125;
  }

  [[nodiscard]] long nj() const { return 20; }
  [[nodiscard]] long ni() const { return 24; }

  /// One smoothing step: dst = 0.25 * 4-neighbour average of src, then
  /// the roles swap. Throws whatever the scheduler surfaced.
  void step() {
    ops::Dat<double>& src = flip_ ? b_ : a_;
    ops::Dat<double>& dst = flip_ ? a_ : b_;
    double* sp = src.origin();
    double* dp = dst.origin();
    const std::ptrdiff_t sm = src.stride_mid();
    const auto w = static_cast<std::size_t>(ni());
    ctx_.queue.submit([&](sycl::handler& h) {
      h.require(src.storage(), sycl::access_mode::read);
      h.require(dst.storage(), sycl::access_mode::write);
      h.parallel_for(
          sycl::range<1>(static_cast<std::size_t>(nj()) * w),
          [sp, dp, sm, w](sycl::id<1> id) {
            const auto j = static_cast<std::ptrdiff_t>(id[0] / w);
            const auto i = static_cast<std::ptrdiff_t>(id[0] % w);
            const auto c = j * sm + i;
            dp[c] = 0.25 * (sp[c - sm] + sp[c + sm] + sp[c - 1] + sp[c + 1]);
          });
    });
    ctx_.queue.wait_and_throw();
    flip_ = !flip_;
  }

  void checkpoint(const std::string& path) {
    ops::checkpoint(ctx_, path, a_, b_);
  }
  void restore(const std::string& path) { ops::restore(ctx_, path, a_, b_); }

  /// Raw bit pattern of both fields (halos included).
  [[nodiscard]] std::string bits() {
    std::string out;
    out.append(reinterpret_cast<const char*>(a_.storage()), a_.alloc_bytes());
    out.append(reinterpret_cast<const char*>(b_.storage()), b_.alloc_bytes());
    return out;
  }

 private:
  static ops::Options make_opts() {
    ops::Options o;
    o.record = false;
    return o;
  }
  ops::Context ctx_;
  ops::Block blk_;
  ops::Dat<double> a_, b_;
  bool flip_ = false;
};

}  // namespace

TEST(Checkpoint, OpsRollbackAndRecomputeIsBitExactAcrossInjectedFailure) {
  const std::string path = "test_fault_ckpt_heat.bin";
  fault::clear();

  // Uninterrupted reference: 8 steps.
  HeatSim clean;
  for (int s = 0; s < 8; ++s) clean.step();
  const std::string reference = clean.bits();

  // Faulted run: checkpoint at step 4, then an injected kernel failure
  // aborts the epilogue; roll back and recompute to the same answer.
  HeatSim sim;
  for (int s = 0; s < 4; ++s) sim.step();
  sim.checkpoint(path);

  int completed = 0;
  EXPECT_TRUE(fault::configure("8:sched.throw=@2"));
  try {
    for (int s = 0; s < 4; ++s) {
      sim.step();
      ++completed;
    }
  } catch (const fault::fault_injected_error&) {
    completed = -1;  // the failure fired mid-epilogue
  }
  fault::clear();
  ASSERT_EQ(completed, -1) << "injection did not fire";

  // Recovery: restore the step-4 state and recompute all 4 steps.
  HeatSim recovered;
  recovered.restore(path);
  for (int s = 0; s < 4; ++s) {
    // Parity: the restored state corresponds to 4 completed steps.
    recovered.step();
  }
  // recovered ran 0 pre-steps, so its flip parity differs; recompute
  // bits must still match because restore rewrote both fields and the
  // stencil is symmetric in which buffer holds the live field after an
  // even number of steps.
  EXPECT_EQ(recovered.bits(), reference);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Seeded chaos schedules over the mini-apps
// ---------------------------------------------------------------------------

namespace {

struct AppCase {
  const char* app;
  const char* spec;
  std::uint64_t seed;
};

[[nodiscard]] double run_app_checksum(const std::string& app) {
  ops::Options opt;
  opt.backend = ops::Backend::Threads;
  opt.record = false;
  if (app == "cloverleaf2d")
    return apps::run_cloverleaf2d(opt, {{20, 20, 1}, 3}).checksum;
  if (app == "acoustic")
    return apps::run_acoustic(opt, {{18, 18, 18}, 3}).checksum;
  return apps::run_rtm(opt, {{24, 24, 24}, 3}).checksum;
}

/// Clean-run references, computed once per app.
[[nodiscard]] double clean_reference(const std::string& app) {
  static std::vector<std::pair<std::string, double>> cache;
  for (const auto& [k, v] : cache)
    if (k == app) return v;
  fault::clear();
  const double v = run_app_checksum(app);
  // Guard the premise: the workload itself is run-to-run deterministic.
  EXPECT_EQ(run_app_checksum(app), v) << app << " is nondeterministic";
  cache.emplace_back(app, v);
  return v;
}

}  // namespace

class AppChaos : public ::testing::TestWithParam<AppCase> {};

TEST_P(AppChaos, CompletesBitExactUnderInjection) {
  const AppCase& c = GetParam();
  const double reference = clean_reference(c.app);
  // Cold pool: mem.alloc only rolls on the fresh-allocation path, so a
  // pool warmed by the reference run would mask the injections.
  mem::trim();
  ScopedPlan plan(std::to_string(c.seed) + ":" + c.spec);
  const double chaotic = run_app_checksum(c.app);
  const auto fs = fault::stats();
  fault::clear();
  EXPECT_EQ(chaotic, reference)
      << c.app << " under " << c.spec << " seed " << c.seed;
  // Every recoverable injection was in fact recovered.
  EXPECT_EQ(fs.total_recovered(),
            fs.injected_at(fault::Site::MemAlloc) +
                fs.injected_at(fault::Site::MemArena));
}

namespace {

[[nodiscard]] std::vector<AppCase> app_chaos_cases() {
  const char* specs[] = {
      "mem.alloc=@1",
      "mem.arena=%2x8",
      "pool.stall=0.2x6",
      "mem.alloc=%3x4,mem.arena=0.2x6,pool.stall=0.1x4",
  };
  std::vector<AppCase> cases;
  for (const char* app : {"cloverleaf2d", "acoustic", "rtm"})
    for (const char* spec : specs)
      for (const std::uint64_t seed : {101u, 202u})
        cases.push_back({app, spec, seed});
  return cases;  // 3 apps x 4 specs x 2 seeds = 24 schedules
}

}  // namespace

INSTANTIATE_TEST_SUITE_P(Schedules, AppChaos,
                         ::testing::ValuesIn(app_chaos_cases()),
                         [](const auto& ti) {
                           return std::string(ti.param.app) + "_" +
                                  std::to_string(ti.index);
                         });

TEST(AppChaos, SameSeedYieldsIdenticalInjectionCounts) {
  const auto counts = [] {
    ScopedPlan plan("77:mem.arena=%3x6,pool.stall=0.2x4");
    (void)run_app_checksum("cloverleaf2d");
    const auto fs = fault::stats();
    return std::make_pair(fs.injected_at(fault::Site::MemArena),
                          fs.total_injected());
  };
  const auto a = counts();
  const auto b = counts();
  EXPECT_EQ(a, b);
}

// Randomized-seed schedule: the CI chaos job exports SYCLPORT_CHAOS_SEED
// so one fresh schedule runs per pipeline; the seed is part of the test
// output, making a red run reproducible locally.
TEST(AppChaos, RandomizedSeedScheduleFromEnvironment) {
  std::uint64_t seed = 424242;
  if (const char* s = std::getenv("SYCLPORT_CHAOS_SEED"))
    seed = static_cast<std::uint64_t>(std::strtoull(s, nullptr, 10));
  std::printf("[chaos] SYCLPORT_CHAOS_SEED=%llu\n",
              static_cast<unsigned long long>(seed));
  const double reference = clean_reference("cloverleaf2d");
  ScopedPlan plan(std::to_string(seed) +
                  ":mem.*=0.1x8,pool.stall=0.1x4");
  EXPECT_EQ(run_app_checksum("cloverleaf2d"), reference)
      << "reproduce with SYCLPORT_CHAOS_SEED=" << seed;
}

// ---------------------------------------------------------------------------
// Elastic recovery: seeded rank kills, policies, bit-exact resume
// (docs/resilience.md "Elastic recovery")
// ---------------------------------------------------------------------------

namespace {

/// Three Jacobi-style distributed mini-apps for the elastic chaos
/// matrix. All use an explicit double buffer with an elementwise copy
/// back (never a pointer swap, never in-place updates), so the result
/// is bit-exact for *any* decomposition - which is exactly what a
/// shrink recovery changes mid-run.
enum class Mini { Diffusion2D, Acoustic3D, Rtm3D };

[[nodiscard]] const char* mini_name(Mini m) {
  switch (m) {
    case Mini::Diffusion2D: return "diffusion2d";
    case Mini::Acoustic3D: return "acoustic3d";
    default: return "rtm3d";
  }
}

/// Run one mini-app under run_elastic and return the canonical
/// (global-order) field after the final step. Empty only if no epoch
/// ever completed, which the callers treat as failure.
[[nodiscard]] std::vector<double> run_elastic_mini(
    Mini kind, int nranks, int steps, const mpi::ElasticOptions& opts) {
  namespace dist = ops::dist;
  std::vector<double> out;
  mpi::run_elastic(nranks, steps, opts, [&](mpi::Comm& comm, mpi::Epoch& ep) {
    const int dims = kind == Mini::Diffusion2D ? 2 : 3;
    const std::size_t n = kind == Mini::Diffusion2D ? 24 : 12;
    const std::array<std::size_t, 3> g =
        dims == 2 ? std::array<std::size_t, 3>{n, n, 1}
                  : std::array<std::size_t, 3>{n, n, n};
    dist::DistContext ctx(comm, dims);
    dist::DistDat<double> u(ctx, g, 1), v(ctx, g, 1);
    u.init([](std::size_t i, std::size_t j, std::size_t k) {
      return 1.0 + 0.01 * static_cast<double>(i) +
             0.02 * static_cast<double>(j) + 0.03 * static_cast<double>(k);
    });
    std::vector<dist::CkptField<double>> fields{{"u", &u}};
    if (ep.resuming()) dist::restore_canonical(ep.checkpoint_path(), fields);
    for (int s = ep.start_step(); s < steps; ++s) {
      u.exchange_halos();
      u.for_owned([&](std::size_t gi, std::size_t gj, std::size_t gk,
                      std::ptrdiff_t li, std::ptrdiff_t lj,
                      std::ptrdiff_t lk) {
        const bool interior =
            gi > 0 && gi < g[0] - 1 && gj > 0 && gj < g[1] - 1 &&
            (dims == 2 || (gk > 0 && gk < g[2] - 1));
        double x = u.field().at(li, lj, lk);
        if (interior) {
          double acc = x + u.field().at(li - 1, lj, lk) +
                       u.field().at(li + 1, lj, lk) +
                       u.field().at(li, lj - 1, lk) +
                       u.field().at(li, lj + 1, lk);
          if (dims == 3)
            acc += u.field().at(li, lj, lk - 1) + u.field().at(li, lj, lk + 1);
          x = acc / (dims == 2 ? 5.0 : 7.0);
        }
        if (kind == Mini::Rtm3D && gi == g[0] / 2 && gj == g[1] / 2 &&
            gk == g[2] / 2)
          x += 0.125 * static_cast<double>(s + 1);  // injected source term
        v.field().at(li, lj, lk) = x;
      });
      u.for_owned([&](std::size_t, std::size_t, std::size_t, std::ptrdiff_t li,
                      std::ptrdiff_t lj, std::ptrdiff_t lk) {
        u.field().at(li, lj, lk) = v.field().at(li, lj, lk);
      });
      ep.step_done(s, [&] {
        dist::checkpoint_canonical(ep.checkpoint_path(), fields);
      });
    }
    auto canon = dist::gather_canonical(u);
    if (comm.rank() == 0) out = std::move(canon);
  });
  return out;
}

/// Unfailed reference runs, cached per mini-app (they are independent
/// of policy and fault spec). Computed disarmed, before any ScopedPlan.
[[nodiscard]] std::vector<double> elastic_reference(Mini app, int nranks,
                                                    int steps) {
  static std::vector<std::pair<std::string, std::vector<double>>> cache;
  const std::string key = std::string(mini_name(app)) + "/" +
                          std::to_string(nranks) + "/" + std::to_string(steps);
  for (const auto& [k, v] : cache)
    if (k == key) return v;
  fault::clear();
  mpi::ElasticOptions ref;
  ref.policy = mpi::Recovery::Abort;
  ref.ckpt_every = 2;
  ref.ckpt_path = "elastic_ref_" + std::string(mini_name(app)) + ".bin";
  std::vector<double> want = run_elastic_mini(app, nranks, steps, ref);
  std::remove(ref.ckpt_path.c_str());
  EXPECT_FALSE(want.empty());
  cache.emplace_back(key, std::move(want));
  return cache.back().second;
}

struct ElasticCase {
  Mini app;
  mpi::Recovery policy;
  const char* spec;
  std::uint64_t seed;
  std::uint64_t kills;
};

}  // namespace

TEST(FaultElastic, SharedRollGivesEveryRankTheSameDecision) {
  ScopedPlan plan("11:rank.kill=@2x1");
  EXPECT_FALSE(fault::roll_shared(fault::Site::RankKill, 0, 1).fire);
  const auto b = fault::roll_shared(fault::Site::RankKill, 0, 2);
  EXPECT_TRUE(b.fire);
  // Every rank re-rolling the same (stream, occurrence) sees the same
  // decision and the same value, and the cap is charged exactly once.
  for (int r = 0; r < 4; ++r) {
    const auto c = fault::roll_shared(fault::Site::RankKill, 0, 2);
    EXPECT_TRUE(c.fire);
    EXPECT_EQ(c.value, b.value);
  }
  EXPECT_EQ(fault::stats().injected_at(fault::Site::RankKill), 1u);
  // The x1 cap is exhausted: later occurrences never fire.
  EXPECT_FALSE(fault::roll_shared(fault::Site::RankKill, 1, 2).fire);
}

TEST(FaultElastic, AbortPolicyRethrowsTheSinglePrimaryKill) {
  ScopedPlan plan("21:rank.kill=@2x1");
  mpi::ElasticOptions opts;  // policy defaults to Abort
  opts.ckpt_every = 2;
  opts.ckpt_path = "elastic_abort_ckpt.bin";
  try {
    (void)run_elastic_mini(Mini::Diffusion2D, 4, 6, opts);
    FAIL() << "expected the seeded kill to abort the run";
  } catch (const mpi::rank_killed_error& e) {
    // The victim's error is the one primary; the survivors' PeerFailed
    // cascades were filtered by mpi::run (no rank_errors aggregate).
    EXPECT_EQ(e.step, 1);  // @2 fires the second step roll (0-based step 1)
    EXPECT_GE(e.rank, 0);
    EXPECT_LT(e.rank, 4);
  }
  std::remove("elastic_abort_ckpt.bin");
  EXPECT_EQ(fault::stats().injected_at(fault::Site::RankKill), 1u);
}

class ElasticChaos : public ::testing::TestWithParam<ElasticCase> {};

TEST_P(ElasticChaos, RecoversBitExactAfterSeededKills) {
  const ElasticCase& c = GetParam();
  const std::vector<double> want = elastic_reference(c.app, 4, 8);

  mpi::ElasticOptions opts;
  opts.policy = c.policy;
  opts.ckpt_every = 2;
  opts.ckpt_path = "elastic_" + std::string(mini_name(c.app)) + "_" +
                   mpi::to_string(c.policy) + "_" + std::to_string(c.seed) +
                   ".bin";
  const std::size_t recs_before =
      sycl::launch_log::instance().recovery_snapshot().size();
  ScopedPlan plan(std::to_string(c.seed) + ":" + c.spec);
  const std::vector<double> got = run_elastic_mini(c.app, 4, 8, opts);
  const auto kills = fault::stats().injected_at(fault::Site::RankKill);
  fault::clear();
  std::remove(opts.ckpt_path.c_str());

  EXPECT_EQ(kills, c.kills) << c.spec << " seed " << c.seed;
  ASSERT_EQ(got.size(), want.size());
  EXPECT_EQ(std::memcmp(got.data(), want.data(),
                        want.size() * sizeof(double)),
            0)
      << mini_name(c.app) << " under " << c.spec << " (" 
      << mpi::to_string(c.policy) << ") is not bit-exact";

  // One recovery record per kill: right policy, rollback bounded by the
  // checkpoint cadence.
  const auto recs = sycl::launch_log::instance().recovery_snapshot();
  ASSERT_EQ(recs.size(), recs_before + kills);
  for (std::size_t i = recs_before; i < recs.size(); ++i) {
    EXPECT_EQ(recs[i].policy, mpi::to_string(c.policy));
    EXPECT_GE(recs[i].rollback_steps, 0);
    EXPECT_LE(recs[i].rollback_steps, opts.ckpt_every);
    EXPECT_GE(recs[i].failed_rank, 0);
    EXPECT_GE(recs[i].detect_ms, 0.0);
  }
}

namespace {

[[nodiscard]] std::vector<ElasticCase> elastic_cases() {
  // @3x1: one kill; @5x2: the same step kills twice across two epochs;
  // %3x3: periodic kills until the cap - under shrink that takes a
  // 4-rank world all the way down to one survivor.
  struct Spec {
    const char* spec;
    std::uint64_t kills;
  };
  const Spec specs[] = {
      {"rank.kill=@3x1", 1}, {"rank.kill=@5x2", 2}, {"rank.kill=%3x3", 3}};
  std::vector<ElasticCase> cases;
  for (const Mini app : {Mini::Diffusion2D, Mini::Acoustic3D, Mini::Rtm3D})
    for (const mpi::Recovery policy :
         {mpi::Recovery::Shrink, mpi::Recovery::Respawn})
      for (const Spec& s : specs)
        cases.push_back({app, policy, s.spec,
                         1000u + cases.size() * 17u, s.kills});
  return cases;  // 3 apps x 2 policies x 3 kill schedules = 18
}

}  // namespace

INSTANTIATE_TEST_SUITE_P(Schedules, ElasticChaos,
                         ::testing::ValuesIn(elastic_cases()),
                         [](const auto& ti) {
                           return std::string(mini_name(ti.param.app)) + "_" +
                                  mpi::to_string(ti.param.policy) + "_" +
                                  std::to_string(ti.index);
                         });

TEST(FaultElastic, AgreementTokensAreSeedDeterministic) {
  const auto tokens_of = [] {
    mpi::ElasticOptions opts;
    opts.policy = mpi::Recovery::Shrink;
    opts.ckpt_every = 2;
    opts.ckpt_path = "elastic_agree_ckpt.bin";
    const std::size_t before =
        sycl::launch_log::instance().recovery_snapshot().size();
    ScopedPlan plan("33:rank.kill=@4x2");
    (void)run_elastic_mini(Mini::Diffusion2D, 4, 8, opts);
    std::remove(opts.ckpt_path.c_str());
    const auto recs = sycl::launch_log::instance().recovery_snapshot();
    std::vector<std::uint64_t> tokens;
    for (std::size_t i = before; i < recs.size(); ++i)
      tokens.push_back(recs[i].agreement);
    return tokens;
  };
  const auto a = tokens_of();
  const auto b = tokens_of();
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(FaultElastic, HeartbeatMonitorEvictsSilentRank) {
  ScopedEnv hb("SYCLPORT_HEARTBEAT_MS", "25");
  bool evicted_seen = false;
  const auto scan = [&](const std::exception& e) {
    if (std::string(e.what()).find("evicted") != std::string::npos)
      evicted_seen = true;
  };
  try {
    mpi::run(2, [](mpi::Comm& comm) {
      if (comm.rank() == 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(400));
      comm.barrier();
    });
    FAIL() << "expected the monitor to evict the sleeping rank";
  } catch (const mpi::rank_errors& e) {
    // Both ranks surface PeerFailed (the sleeper discovers its own
    // eviction; the waiter is woken out of the barrier).
    scan(e);
    for (const auto& entry : e.entries()) {
      try {
        std::rethrow_exception(entry.error);
      } catch (const std::exception& inner) {
        scan(inner);
      }
    }
  } catch (const mpi::comm_error& e) {
    scan(e);
  }
  EXPECT_TRUE(evicted_seen);
}

TEST(FaultElastic, RecvFailsFastAfterPeerDeath) {
  // Armed-but-inert plan: the transport runs its full seq/CRC path with
  // the long per-attempt timeout below. The failed-peer check must win
  // before the backoff machinery, or this test takes minutes.
  ScopedPlan plan("5:mem.alloc=@1000000");
  ScopedEnv t("SYCLPORT_COMM_TIMEOUT_MS", "60000");
  const auto t0 = std::chrono::steady_clock::now();
  try {
    mpi::run(2, [](mpi::Comm& comm) {
      if (comm.rank() == 1) throw std::runtime_error("boom");
      double x = 0.0;
      comm.recv(1, 0, std::span<double>(&x, 1));
    });
    FAIL() << "expected the peer death to surface";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom");  // the one primary, original type
  }
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(elapsed).count(),
            10);
}

TEST(FaultElastic, EnvKnobsRejectInvalidValuesWarnOnce) {
  rt::env::reset_warnings_for_testing();
  {
    ScopedEnv r("SYCLPORT_RECOVERY", "sideways");
    ScopedEnv c("SYCLPORT_CKPT_EVERY", "0");
    const auto o = mpi::ElasticOptions::from_env();
    EXPECT_EQ(o.policy, mpi::Recovery::Abort);  // default wins
    EXPECT_EQ(o.ckpt_every, 0);                 // zero rejected -> off
  }
  {
    ScopedEnv r("SYCLPORT_RECOVERY", "shrink");
    ScopedEnv c("SYCLPORT_CKPT_EVERY", "3");
    const auto o = mpi::ElasticOptions::from_env();
    EXPECT_EQ(o.policy, mpi::Recovery::Shrink);
    EXPECT_EQ(o.ckpt_every, 3);
  }
  {
    ScopedEnv r("SYCLPORT_RECOVERY", "respawn");
    const auto o = mpi::ElasticOptions::from_env();
    EXPECT_EQ(o.policy, mpi::Recovery::Respawn);
  }
  {
    ScopedEnv h("SYCLPORT_HEARTBEAT_MS", "-5");
    EXPECT_FALSE(
        rt::env::get_long("SYCLPORT_HEARTBEAT_MS", 1, 60'000).has_value());
  }
}

// Randomized-seed kill schedule: the CI chaos-elastic job exports
// SYCLPORT_CHAOS_SEED so one fresh kill matrix runs per pipeline; the
// seed is printed, making a red run reproducible locally.
TEST(FaultElastic, RandomizedSeedKillScheduleFromEnvironment) {
  std::uint64_t seed = 616161;
  if (const char* s = std::getenv("SYCLPORT_CHAOS_SEED"))
    seed = static_cast<std::uint64_t>(std::strtoull(s, nullptr, 10));
  std::printf("[chaos] SYCLPORT_CHAOS_SEED=%llu\n",
              static_cast<unsigned long long>(seed));
  const std::vector<double> want = elastic_reference(Mini::Acoustic3D, 4, 8);
  for (const mpi::Recovery policy :
       {mpi::Recovery::Shrink, mpi::Recovery::Respawn}) {
    mpi::ElasticOptions opts;
    opts.policy = policy;
    opts.ckpt_every = 2;
    opts.ckpt_path = "elastic_rand_ckpt.bin";
    ScopedPlan plan(std::to_string(seed) + ":rank.kill=0.3x3");
    const std::vector<double> got =
        run_elastic_mini(Mini::Acoustic3D, 4, 8, opts);
    fault::clear();
    std::remove(opts.ckpt_path.c_str());
    ASSERT_EQ(got.size(), want.size());
    EXPECT_EQ(std::memcmp(got.data(), want.data(),
                          want.size() * sizeof(double)),
              0)
        << "reproduce with SYCLPORT_CHAOS_SEED=" << seed << " ("
        << mpi::to_string(policy) << ")";
  }
}
