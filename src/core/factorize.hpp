#pragma once
/// \file factorize.hpp
/// Near-balanced factorization of a rank count over 1-3 dimensions,
/// shared by the MPI decomposition (minimpi) and the halo cost model
/// (hwmodel).

#include <array>

namespace syclport {

/// Factorize `n` into `dims` near-equal factors (product == n). Greedy:
/// smallest prime factor goes to the currently-smallest dimension.
[[nodiscard]] std::array<int, 3> balanced_factors(int n, int dims);

}  // namespace syclport
