// Figure 2 reproduction: runtime of the six structured-mesh
// applications on the A100 platform across programming-model
// variants (see DESIGN.md experiment index).

#include <iostream>

#include "common/figures.hpp"

using namespace syclport;

int main() {
  study::StudyRunner runner;
  bench::structured_figure(
      std::cout, runner, PlatformId::A100,
      "Figure 2: structured-mesh runtimes, " +
          std::string(to_string(PlatformId::A100)),
      "fig2_structured_a100");
  return 0;
}
