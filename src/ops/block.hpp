#pragma once
/// \file block.hpp
/// OPS structured block: a logical Cartesian grid that dats live on.

#include <array>
#include <cstddef>
#include <stdexcept>
#include <string>

#include "ops/context.hpp"

namespace syclport::ops {

class Block {
 public:
  /// `size` lists interior extents, slowest dimension first (so for a
  /// 2D ny x nx grid pass {ny, nx}; x is always unit-stride).
  Block(Context& ctx, std::string name, int dims,
        std::array<std::size_t, 3> size)
      : ctx_(&ctx), name_(std::move(name)), dims_(dims), size_(size) {
    if (dims < 1 || dims > 3) throw std::invalid_argument("Block: dims 1-3");
    for (int d = dims; d < 3; ++d) size_[static_cast<std::size_t>(d)] = 1;
  }

  [[nodiscard]] Context& ctx() const { return *ctx_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] int dims() const { return dims_; }
  [[nodiscard]] const std::array<std::size_t, 3>& size() const { return size_; }
  [[nodiscard]] std::size_t size(int d) const {
    return size_[static_cast<std::size_t>(d)];
  }
  [[nodiscard]] std::size_t points() const {
    return size_[0] * size_[1] * size_[2];
  }

 private:
  Context* ctx_;
  std::string name_;
  int dims_;
  std::array<std::size_t, 3> size_;
};

}  // namespace syclport::ops
