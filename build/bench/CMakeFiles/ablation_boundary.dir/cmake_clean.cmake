file(REMOVE_RECURSE
  "CMakeFiles/ablation_boundary.dir/ablation_boundary.cpp.o"
  "CMakeFiles/ablation_boundary.dir/ablation_boundary.cpp.o.d"
  "ablation_boundary"
  "ablation_boundary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_boundary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
