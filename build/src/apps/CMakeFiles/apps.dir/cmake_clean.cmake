file(REMOVE_RECURSE
  "CMakeFiles/apps.dir/acoustic/acoustic.cpp.o"
  "CMakeFiles/apps.dir/acoustic/acoustic.cpp.o.d"
  "CMakeFiles/apps.dir/cloverleaf/cloverleaf2d.cpp.o"
  "CMakeFiles/apps.dir/cloverleaf/cloverleaf2d.cpp.o.d"
  "CMakeFiles/apps.dir/cloverleaf/cloverleaf3d.cpp.o"
  "CMakeFiles/apps.dir/cloverleaf/cloverleaf3d.cpp.o.d"
  "CMakeFiles/apps.dir/mgcfd/mesh.cpp.o"
  "CMakeFiles/apps.dir/mgcfd/mesh.cpp.o.d"
  "CMakeFiles/apps.dir/mgcfd/mesh_io.cpp.o"
  "CMakeFiles/apps.dir/mgcfd/mesh_io.cpp.o.d"
  "CMakeFiles/apps.dir/mgcfd/mgcfd.cpp.o"
  "CMakeFiles/apps.dir/mgcfd/mgcfd.cpp.o.d"
  "CMakeFiles/apps.dir/opensbli/opensbli.cpp.o"
  "CMakeFiles/apps.dir/opensbli/opensbli.cpp.o.d"
  "CMakeFiles/apps.dir/rtm/rtm.cpp.o"
  "CMakeFiles/apps.dir/rtm/rtm.cpp.o.d"
  "libapps.a"
  "libapps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
