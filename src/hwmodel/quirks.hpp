#pragma once
/// \file quirks.hpp
/// Pathologies the paper attributes to specific toolchain heuristics on
/// specific applications - chiefly the flat formulation's runtime
/// work-group selection going wrong for particular kernel shapes.
/// Like the SupportMatrix, these are empirical toolchain facts recorded
/// as data with paper provenance, applied multiplicatively on top of the
/// analytic model.

#include <string_view>
#include <vector>

#include "core/types.hpp"
#include "hwmodel/loop_profile.hpp"

namespace syclport::hw {

struct Quirk {
  /// Platform filter; nullopt-like: match all GPUs / all CPUs / one.
  enum class Scope : std::uint8_t { AllGpus, AllCpus, One } scope = Scope::One;
  PlatformId platform = PlatformId::A100;  ///< used when scope == One
  Toolchain toolchain;
  /// Match only this model (SYCLFlat/SYCLNDRange/...); Model::MPI used
  /// with match_any_model = true as a wildcard.
  Model model = Model::SYCLFlat;
  bool match_any_model = false;
  AppId app;
  KernelClass cls = KernelClass::Interior;
  bool match_any_class = false;
  double time_factor = 1.0;  ///< multiplier on the modeled kernel time
  std::string_view paper_ref;
};

/// The paper-derived quirk list.
[[nodiscard]] const std::vector<Quirk>& paper_quirks();

/// Combined multiplier for one kernel execution.
[[nodiscard]] double quirk_factor(PlatformId p, const Variant& v, AppId app,
                                  KernelClass cls);

/// True when this (platform, app) combination fails to auto-vectorize
/// regardless of toolchain/kernel (paper: OpenSBLI SN on Ampere Altra),
/// or for the given toolchain (paper: Acoustic with OpenSYCL on Altra).
[[nodiscard]] bool vectorization_fails(PlatformId p, Toolchain tc, AppId app);

}  // namespace syclport::hw
