file(REMOVE_RECURSE
  "CMakeFiles/fig6_structured_genoax.dir/fig6_structured_genoax.cpp.o"
  "CMakeFiles/fig6_structured_genoax.dir/fig6_structured_genoax.cpp.o.d"
  "fig6_structured_genoax"
  "fig6_structured_genoax.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_structured_genoax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
