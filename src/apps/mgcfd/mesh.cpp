#include "apps/mgcfd/mesh.hpp"

#include <cmath>
#include <string>

namespace syclport::apps::mgcfd {

namespace {

constexpr double kInnerRadius = 0.4;
constexpr double kOuterRadius = 1.0;
constexpr double kSectorAngle = 0.9;  // radians
constexpr double kSpanLength = 0.8;

std::size_t node_id(std::size_t i, std::size_t j, std::size_t k,
                    std::size_t nj, std::size_t nk) {
  return (i * nj + j) * nk + k;
}

Level build_level(std::size_t ni, std::size_t nj, std::size_t nk,
                  const std::string& tag) {
  Level lvl;
  lvl.dims = {ni, nj, nk};
  const std::size_t nnodes = ni * nj * nk;

  // Count edges: 3 axis neighbours + 2 in-plane diagonals.
  std::size_t nedges = 0;
  nedges += (ni - 1) * nj * nk;                    // radial
  nedges += ni * (nj - 1) * nk;                    // tangential
  nedges += ni * nj * (nk - 1);                    // axial
  nedges += (ni - 1) * (nj - 1) * nk * 2;          // diagonals

  lvl.nodes = std::make_unique<op2::Set>("nodes_" + tag, nnodes);
  lvl.edges = std::make_unique<op2::Set>("edges_" + tag, nedges);
  lvl.e2n = std::make_unique<op2::Map>(*lvl.edges, *lvl.nodes, 2, "e2n_" + tag);

  lvl.coords.resize(nnodes);
  for (std::size_t i = 0; i < ni; ++i)
    for (std::size_t j = 0; j < nj; ++j)
      for (std::size_t k = 0; k < nk; ++k) {
        const double r = kInnerRadius + (kOuterRadius - kInnerRadius) *
                                            static_cast<double>(i) /
                                            static_cast<double>(ni > 1 ? ni - 1 : 1);
        const double th = kSectorAngle * static_cast<double>(j) /
                          static_cast<double>(nj > 1 ? nj - 1 : 1);
        const double z = kSpanLength * static_cast<double>(k) /
                         static_cast<double>(nk > 1 ? nk - 1 : 1);
        lvl.coords[node_id(i, j, k, nj, nk)] = {r * std::cos(th),
                                                r * std::sin(th), z};
      }

  // Edges in node-major order: consecutive edges share nodes, the
  // "good ordering" that gives the atomics strategy its locality.
  std::size_t e = 0;
  auto add_edge = [&](std::size_t a, std::size_t b) {
    lvl.e2n->at(e, 0) = static_cast<int>(a);
    lvl.e2n->at(e, 1) = static_cast<int>(b);
    ++e;
  };
  for (std::size_t i = 0; i < ni; ++i)
    for (std::size_t j = 0; j < nj; ++j)
      for (std::size_t k = 0; k < nk; ++k) {
        const std::size_t n = node_id(i, j, k, nj, nk);
        if (k + 1 < nk) add_edge(n, node_id(i, j, k + 1, nj, nk));
        if (j + 1 < nj) add_edge(n, node_id(i, j + 1, k, nj, nk));
        if (i + 1 < ni) add_edge(n, node_id(i + 1, j, k, nj, nk));
        if (i + 1 < ni && j + 1 < nj)
          add_edge(n, node_id(i + 1, j + 1, k, nj, nk));
        if (i + 1 < ni && j > 0) add_edge(n, node_id(i + 1, j - 1, k, nj, nk));
      }
  lvl.e2n->check();
  return lvl;
}

}  // namespace

MultigridMesh build_rotor_mesh(std::size_t ni, std::size_t nj, std::size_t nk,
                               int nlevels) {
  MultigridMesh mesh;
  std::array<std::size_t, 3> d{ni, nj, nk};
  for (int l = 0; l < nlevels; ++l) {
    mesh.levels.push_back(build_level(d[0], d[1], d[2], std::to_string(l)));
    if (l + 1 < nlevels) {
      for (auto& v : d) v = std::max<std::size_t>(2, (v + 1) / 2);
    }
  }
  // Fine-to-coarse maps: fine node (i,j,k) -> coarse (i/2, j/2, k/2).
  for (int l = 1; l < nlevels; ++l) {
    Level& fine = mesh.levels[static_cast<std::size_t>(l - 1)];
    Level& coarse = mesh.levels[static_cast<std::size_t>(l)];
    coarse.from_fine = std::make_unique<op2::Map>(
        *fine.nodes, *coarse.nodes, 1, "f2c_" + std::to_string(l));
    const auto [fi, fj, fk] = fine.dims;
    const auto [ci, cj, ck] = coarse.dims;
    for (std::size_t i = 0; i < fi; ++i)
      for (std::size_t j = 0; j < fj; ++j)
        for (std::size_t k = 0; k < fk; ++k) {
          const std::size_t a = std::min(ci - 1, i / 2);
          const std::size_t b = std::min(cj - 1, j / 2);
          const std::size_t c = std::min(ck - 1, k / 2);
          coarse.from_fine->at(node_id(i, j, k, fj, fk), 0) =
              static_cast<int>(node_id(a, b, c, cj, ck));
        }
    coarse.from_fine->check();
  }
  return mesh;
}

void renumber_mesh(MultigridMesh& m, op2::Ordering o) {
  if (o == op2::Ordering::Identity) return;
  auto is_identity = [](const std::vector<int>& p) {
    for (std::size_t i = 0; i < p.size(); ++i)
      if (p[i] != static_cast<int>(i)) return false;
    return true;
  };
  for (std::size_t l = 0; l < m.levels.size(); ++l) {
    Level& lvl = m.levels[l];

    // Node permutation (perm[new] = old); MinTarget reorders edges only.
    std::vector<int> nperm;
    switch (o) {
      case op2::Ordering::RCM: nperm = op2::order_rcm(*lvl.e2n); break;
      case op2::Ordering::Morton:
        nperm = op2::order_morton(lvl.coords);
        break;
      case op2::Ordering::Hilbert:
        nperm = op2::order_hilbert(lvl.coords);
        break;
      case op2::Ordering::Identity:
      case op2::Ordering::MinTarget: break;
    }
    if (!nperm.empty() && !is_identity(nperm)) {
      std::vector<std::array<double, 3>> nc(lvl.coords.size());
      for (std::size_t i = 0; i < nc.size(); ++i)
        nc[i] = lvl.coords[static_cast<std::size_t>(nperm[i])];
      lvl.coords = std::move(nc);
      op2::relabel_map_targets(*lvl.e2n, nperm);
      // This level's nodes are the *targets* of its own from_fine map
      // and the *rows* of the next-coarser level's.
      if (lvl.from_fine) op2::relabel_map_targets(*lvl.from_fine, nperm);
      if (l + 1 < m.levels.size() && m.levels[l + 1].from_fine)
        op2::permute_map(*m.levels[l + 1].from_fine, nperm);
      lvl.nodes->note_permutation(nperm);
    }

    // Edges by ascending minimum endpoint under the (possibly new)
    // node labels: adjacent edges in execution order touch adjacent
    // nodes, which is what measure_gather rewards.
    std::vector<int> eperm = op2::order_by_min_target(*lvl.e2n);
    if (!is_identity(eperm)) {
      op2::permute_map(*lvl.e2n, eperm);
      lvl.edges->note_permutation(eperm);
    }
    lvl.e2n->check();
    if (lvl.from_fine) lvl.from_fine->check();
  }
}

}  // namespace syclport::apps::mgcfd
