#pragma once
/// \file atomic.hpp
/// miniSYCL atomic_ref, a thin veneer over std::atomic_ref with the
/// SYCL 2020 memory_order/memory_scope parameters. C++20 gives
/// fetch_add on floating-point atomic_ref, which is exactly the
/// hardware-FP-atomics capability the paper's atomics strategy relies
/// on; the *throughput* difference between "safe" and "unsafe" AMD
/// atomics is a hwmodel concern, not a functional one.

#include <atomic>

namespace sycl {

enum class memory_order {
  relaxed,
  acquire,
  release,
  acq_rel,
  seq_cst,
};

enum class memory_scope {
  work_item,
  sub_group,
  work_group,
  device,
  system,
};

namespace detail {
constexpr std::memory_order to_std(memory_order mo) {
  switch (mo) {
    case memory_order::relaxed: return std::memory_order_relaxed;
    case memory_order::acquire: return std::memory_order_acquire;
    case memory_order::release: return std::memory_order_release;
    case memory_order::acq_rel: return std::memory_order_acq_rel;
    case memory_order::seq_cst: return std::memory_order_seq_cst;
  }
  return std::memory_order_seq_cst;
}
}  // namespace detail

template <typename T, memory_order DefaultOrder = memory_order::relaxed,
          memory_scope DefaultScope = memory_scope::device>
class atomic_ref {
 public:
  explicit atomic_ref(T& ref) : ref_(ref) {}

  T fetch_add(T v, memory_order mo = DefaultOrder) const {
    return std::atomic_ref<T>(ref_).fetch_add(v, detail::to_std(mo));
  }
  T fetch_sub(T v, memory_order mo = DefaultOrder) const {
    return std::atomic_ref<T>(ref_).fetch_sub(v, detail::to_std(mo));
  }
  T load(memory_order mo = DefaultOrder) const {
    return std::atomic_ref<T>(ref_).load(detail::to_std(mo));
  }
  void store(T v, memory_order mo = DefaultOrder) const {
    std::atomic_ref<T>(ref_).store(v, detail::to_std(mo));
  }
  T exchange(T v, memory_order mo = DefaultOrder) const {
    return std::atomic_ref<T>(ref_).exchange(v, detail::to_std(mo));
  }
  bool compare_exchange_strong(T& expected, T desired,
                               memory_order mo = DefaultOrder) const {
    return std::atomic_ref<T>(ref_).compare_exchange_strong(
        expected, desired, detail::to_std(mo));
  }

  /// Atomic minimum/maximum via CAS loops (SYCL fetch_min/fetch_max).
  T fetch_min(T v, memory_order mo = DefaultOrder) const {
    std::atomic_ref<T> a(ref_);
    T cur = a.load(detail::to_std(mo));
    while (v < cur &&
           !a.compare_exchange_weak(cur, v, detail::to_std(mo))) {
    }
    return cur;
  }
  T fetch_max(T v, memory_order mo = DefaultOrder) const {
    std::atomic_ref<T> a(ref_);
    T cur = a.load(detail::to_std(mo));
    while (cur < v &&
           !a.compare_exchange_weak(cur, v, detail::to_std(mo))) {
    }
    return cur;
  }

 private:
  T& ref_;
};

}  // namespace sycl
