#pragma once
/// \file env.hpp
/// Hardened parsing of the SYCLPORT_* environment knobs. Every knob in
/// the runtime goes through these helpers so malformed input behaves
/// the same everywhere: the value is rejected deterministically (the
/// built-in default wins) and a single warning per variable is printed
/// to stderr - never silent, never partial (no atoi-style "12abc"
/// prefixes).

#include <optional>
#include <span>
#include <string_view>

namespace syclport::rt::env {

/// Raw lookup (nullopt when the variable is unset).
[[nodiscard]] std::optional<std::string_view> get(const char* name);

/// Parse an integer knob. The whole value must be a base-10 integer in
/// [min, max]; anything else (empty, trailing junk, out of range)
/// warns once and returns nullopt.
[[nodiscard]] std::optional<long> get_long(const char* name, long min,
                                           long max);

/// Parse an enumerated knob: the value must equal one of `allowed`
/// (case-sensitive, matching the documented spellings). Returns the
/// index into `allowed`, or nullopt (warn once) on anything else.
[[nodiscard]] std::optional<std::size_t> get_choice(
    const char* name, std::span<const std::string_view> allowed);

/// Report a malformed value for a knob whose parsing lives elsewhere.
/// Prints `syclport: warning: ignoring invalid NAME='value' (expected
/// <expected>)` to stderr, once per variable per process.
void warn_invalid(const char* name, std::string_view value,
                  std::string_view expected);

/// Testing hook: forget which variables have already warned so a test
/// can observe the warning deterministically.
void reset_warnings_for_testing();

}  // namespace syclport::rt::env
