#pragma once
/// \file fiber.hpp
/// User-level cooperative fibers built on POSIX ucontext. The miniSYCL
/// executor uses one fiber per work-item when a kernel contains
/// group barriers: at a barrier every fiber yields back to the group
/// scheduler, which resumes the next work-item, giving correct SYCL
/// barrier semantics on a CPU without compiler support (the same
/// technique OpenCL CPU runtimes use).
///
/// Fiber stacks come from a per-thread pool: the default-size stack is
/// recycled across groups instead of heap-allocated per fiber, so a
/// kernel that launches thousands of barrier groups allocates a handful
/// of stacks per worker thread in total.

#include <ucontext.h>

#include <cstddef>
#include <functional>
#include <memory>
#include <type_traits>
#include <vector>

namespace syclport::rt {

/// Default fiber stack size; stacks of exactly this size are pooled.
inline constexpr std::size_t kFiberStackBytes = 128 * 1024;

/// A single cooperatively-scheduled fiber.
class Fiber {
 public:
  using RawFn = void (*)(void*);

  /// `fn` runs on the fiber's own stack when resume() is first called.
  /// `stack_bytes` must be generous enough for the kernel's frames.
  explicit Fiber(std::function<void()> fn,
                 std::size_t stack_bytes = kFiberStackBytes);

  /// Zero-allocation form: `fn(ctx)` runs on the fiber. The callable
  /// behind `ctx` must outlive the fiber; no std::function is built.
  Fiber(RawFn fn, void* ctx, std::size_t stack_bytes = kFiberStackBytes);

  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Run the fiber until it yields or finishes. Returns true while the
  /// fiber still has work left (i.e. it yielded), false once finished.
  /// Rethrows any exception the fiber body threw.
  bool resume();

  /// Called from inside the fiber body: suspend and return control to
  /// the resume() caller.
  static void yield();

  [[nodiscard]] bool done() const noexcept { return done_; }

 private:
  void init(std::size_t stack_bytes);
  static void trampoline();

  RawFn raw_fn_ = nullptr;
  void* raw_ctx_ = nullptr;
  std::function<void()> owned_fn_;  ///< set only by the owning ctor
  char* stack_ = nullptr;           ///< from the per-thread stack pool
  std::size_t stack_bytes_ = 0;
  ucontext_t ctx_{};
  ucontext_t caller_{};
  bool started_ = false;
  bool done_ = false;
  std::exception_ptr error_;
};

/// Cumulative counters of the calling thread's fiber stack pool
/// (test/bench hook for verifying stack reuse).
struct FiberStackStats {
  std::size_t allocated = 0;  ///< stacks obtained with operator new[]
  std::size_t reused = 0;     ///< stacks served from the pool
};
[[nodiscard]] FiberStackStats fiber_stack_stats() noexcept;

namespace detail {

/// Type-erased work-item entry: `invoke(task, i)` runs item i.
using GroupInvoke = void (*)(void* task, std::size_t index);

/// Runs work-item 0 of a barrier group on a (pooled) fiber. If the item
/// finished without yielding the group has no barriers; otherwise the
/// probe sits suspended at its first barrier.
class BarrierProbe {
 public:
  BarrierProbe(GroupInvoke invoke, void* task);

  BarrierProbe(const BarrierProbe&) = delete;
  BarrierProbe& operator=(const BarrierProbe&) = delete;

  [[nodiscard]] bool suspended() const noexcept { return suspended_; }
  [[nodiscard]] Fiber& fiber() noexcept { return fiber_; }

  struct Item0 {
    GroupInvoke invoke;
    void* task;
  };

 private:
  Item0 item0_;
  Fiber fiber_;
  bool suspended_ = false;
};

/// RAII scope for the fast (loop) portion of a barrier group; a barrier
/// reached inside it violates SYCL barrier uniformity.
class FastGroupGuard {
 public:
  FastGroupGuard() noexcept;
  ~FastGroupGuard();
  FastGroupGuard(const FastGroupGuard&) = delete;
  FastGroupGuard& operator=(const FastGroupGuard&) = delete;
};

/// Fiber-mode tail of run_barrier_group: items 1..n-1 get fibers and the
/// group round-robins until every item completes. Always returns true.
bool run_barrier_group_fibers(std::size_t n, GroupInvoke invoke, void* task,
                              BarrierProbe& probe);

}  // namespace detail

/// Runs `n` logical work-items that may synchronise with group_barrier().
///
/// Work-item 0 executes first as a *probe fiber*. If it completes
/// without hitting a barrier then - by SYCL's barrier-uniformity rule -
/// no other work-item will either, and items 1..n-1 run as a plain
/// inlined loop (fast path: one pooled fiber per group total and no
/// type-erased calls). If the probe suspends at a barrier, the executor
/// creates fibers for the remaining items and round-robins through the
/// group; nothing is ever re-executed. A barrier reached by a non-probe
/// item on the fast path violates uniformity and raises std::logic_error.
///
/// Returns true when the group actually used barriers (fiber mode).
template <typename F>
bool run_barrier_group(std::size_t n, F&& task) {
  if (n == 0) return false;
  using Task = std::remove_reference_t<F>;
  const detail::GroupInvoke invoke = [](void* t, std::size_t i) {
    (*static_cast<Task*>(t))(i);
  };
  void* ctx = const_cast<void*>(static_cast<const void*>(std::addressof(task)));
  detail::BarrierProbe probe(invoke, ctx);
  if (!probe.suspended()) {
    detail::FastGroupGuard guard;
    for (std::size_t i = 1; i < n; ++i) task(i);
    return false;
  }
  return detail::run_barrier_group_fibers(n, invoke, ctx, probe);
}

/// SYCL-style group barrier; callable only from inside run_barrier_group
/// tasks (or any live Fiber, where it yields).
void group_barrier();

/// True while the calling thread is inside a run_barrier_group task.
[[nodiscard]] bool inside_barrier_group() noexcept;

}  // namespace syclport::rt
