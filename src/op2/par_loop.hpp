#pragma once
/// \file par_loop.hpp
/// The OP2 parallel-loop primitive for unstructured meshes. A par_loop
/// names a kernel over a set with direct, indirect, increment and
/// global arguments. Indirect increments race between elements sharing
/// a mapped target; the context's Strategy resolves them (paper §3):
///   - Atomics: one sweep, atomic adds;
///   - GlobalColor: one sweep per colour, plain adds;
///   - Hierarchical: one sweep per block colour; within a block,
///     intra-colour phases (separated by work-group barriers when
///     executing through SYCL).
/// Every invocation records a LoopProfile including measured gather
/// locality, the input to the hardware model's MG-CFD reproduction.

#include <algorithm>
#include <span>
#include <stdexcept>
#include <tuple>
#include <vector>

#include "hwmodel/loop_profile.hpp"
#include "hwmodel/tuning_priors.hpp"
#include "op2/arg.hpp"
#include "op2/context.hpp"
#include "op2/renumber.hpp"
#include "op2/stage.hpp"
#include "runtime/autotune/autotune.hpp"
#include "runtime/autotune/variant.hpp"
#include "runtime/thread_pool.hpp"
#include "sycl/launch_log.hpp"

namespace syclport::op2 {

struct Meta {
  const char* name = "(kernel)";
  double flops_per_elem = 0.0;
};

namespace detail {

// --- kernel-side binders -----------------------------------------------------

template <typename T>
struct DirectBinder {
  T* base;
  int dim;
  [[nodiscard]] T* make(std::size_t e, bool /*atomic*/) const {
    return base + e * static_cast<std::size_t>(dim);
  }
};

template <typename T>
struct IndirectBinder {
  T* base;
  int dim;
  const Map* map;
  int idx;
  [[nodiscard]] T* make(std::size_t e, bool /*atomic*/) const {
    return base +
           static_cast<std::size_t>(map->at(e, idx)) *
               static_cast<std::size_t>(dim);
  }
};

template <typename T>
struct IncBinder {
  T* base;
  int dim;
  const Map* map;
  int idx;
  [[nodiscard]] Inc<T> make(std::size_t e, bool atomic) const {
    return Inc<T>(base + static_cast<std::size_t>(map->at(e, idx)) *
                             static_cast<std::size_t>(dim),
                  atomic);
  }
};

template <typename T>
struct GblBinder {
  T* target;
  RedOp op;
  [[nodiscard]] Reducer<T> make(std::size_t, bool) const {
    return Reducer<T>(target, op);
  }
};

template <typename T>
DirectBinder<T> make_binder(const DirectArg<T>& a, bool executing) {
  return {executing ? a.dat->elem(0) : nullptr, a.dat->dim()};
}
template <typename T>
IndirectBinder<T> make_binder(const IndirectArg<T>& a, bool executing) {
  if (a.acc == Acc::INC)
    throw std::invalid_argument("use arg_inc() for INC access");
  return {executing ? a.dat->elem(0) : nullptr, a.dat->dim(), a.map, a.idx};
}
template <typename T>
GblBinder<T> make_binder(const GblArg<T>& a, bool) {
  return {a.target, a.op};
}

/// INC arguments get their own type so the kernel parameter is Inc<T>.
template <typename T>
struct IncArg {
  Dat<T>* dat;
  Map* map;
  int idx;
};
template <typename T>
IncBinder<T> make_binder(const IncArg<T>& a, bool executing) {
  return {executing ? a.dat->elem(0) : nullptr, a.dat->dim(), a.map, a.idx};
}

// --- profile accumulation -----------------------------------------------------

struct ArgInfo {
  const void* dat_id = nullptr;
  const Map* map = nullptr;  ///< null for direct args
  Acc acc = Acc::R;
  double unique_bytes = 0.0;
  int dim = 1;
  std::size_t elem_bytes = 8;
  bool is_gbl = false;
  Layout layout = Layout::AoS;  ///< the dat's physical layout
};

template <typename T>
ArgInfo arg_info(const DirectArg<T>& a) {
  return {a.dat, nullptr, a.acc, a.dat->bytes(), a.dat->dim(), sizeof(T),
          false, a.dat->layout()};
}
template <typename T>
ArgInfo arg_info(const IndirectArg<T>& a) {
  return {a.dat, a.map, a.acc,
          static_cast<double>(a.map->to().size()) * a.dat->dim() * sizeof(T),
          a.dat->dim(), sizeof(T), false, a.dat->layout()};
}
template <typename T>
ArgInfo arg_info(const IncArg<T>& a) {
  return {a.dat, a.map, Acc::INC,
          static_cast<double>(a.map->to().size()) * a.dat->dim() * sizeof(T),
          a.dat->dim(), sizeof(T), false, a.dat->layout()};
}
template <typename T>
ArgInfo arg_info(const GblArg<T>& a) {
  ArgInfo i;
  i.dat_id = a.target;
  i.is_gbl = true;
  return i;
}

// --- tuner-driven relayout of the gathered dats ------------------------------

template <typename T>
void relayout_indirect(const DirectArg<T>&, Layout) {}
template <typename T>
void relayout_indirect(const IndirectArg<T>& a, Layout l) {
  a.dat->set_layout(l);
}
template <typename T>
void relayout_indirect(const IncArg<T>& a, Layout l) {
  a.dat->set_layout(l);
}
template <typename T>
void relayout_indirect(const GblArg<T>&, Layout) {}

template <typename T>
[[nodiscard]] bool arg_non_aos(const DirectArg<T>& a) {
  return a.dat->layout() != Layout::AoS;
}
template <typename T>
[[nodiscard]] bool arg_non_aos(const IndirectArg<T>& a) {
  return a.dat->layout() != Layout::AoS;
}
template <typename T>
[[nodiscard]] bool arg_non_aos(const IncArg<T>& a) {
  return a.dat->layout() != Layout::AoS;
}
template <typename T>
[[nodiscard]] bool arg_non_aos(const GblArg<T>&) { return false; }

template <typename T>
void note_gather_layout(const DirectArg<T>&, Layout&) {}
template <typename T>
void note_gather_layout(const IndirectArg<T>& a, Layout& l) {
  l = a.dat->layout();
}
template <typename T>
void note_gather_layout(const IncArg<T>& a, Layout& l) {
  l = a.dat->layout();
}
template <typename T>
void note_gather_layout(const GblArg<T>&, Layout&) {}

}  // namespace detail

template <typename T>
[[nodiscard]] detail::IncArg<T> arg_inc(Dat<T>& d, Map& m, int idx) {
  return {&d, &m, idx};
}

template <typename K, typename... Args>
void par_loop(Context& ctx, Meta meta, Set& set, K&& kernel, Args... args) {
  const std::size_t n = set.size();
  if (n == 0) return;

  // Collect type-erased argument facts for profiling + scheduling.
  std::vector<detail::ArgInfo> infos{detail::arg_info(args)...};
  const detail::ArgInfo* conflict = nullptr;
  for (const auto& i : infos)
    if (i.acc == Acc::INC) {
      if (conflict != nullptr && conflict->map != i.map)
        throw std::invalid_argument(
            "par_loop: INC args must share one conflict map");
      conflict = &i;
    }

  // Non-AoS operands cannot run through the eager binders (they hand
  // the kernel raw AoS pointers), so their loops route to the staged
  // lowering, which transcodes per tile. Conflict loops additionally
  // stage when the context (or SYCLPORT_INDIRECT) asks for it.
  bool non_aos = false;
  for (const auto& i : infos) non_aos |= i.layout != Layout::AoS;
  const Strategy ctx_strat =
      conflict != nullptr && non_aos ? Strategy::Staged : ctx.opt.strategy;
  const bool ctx_staged =
      non_aos || (conflict != nullptr && ctx_strat == Strategy::Staged);

  const Plan* plan =
      conflict != nullptr ? &ctx.plan_for(*conflict->map, ctx_strat)
                          : nullptr;

  if (ctx.opt.record) {
    hw::LoopProfile lp;
    lp.name = meta.name;
    lp.dims = 1;
    lp.extent = {n, 1, 1};
    lp.flops = meta.flops_per_elem * static_cast<double>(n);
    lp.n_arrays = 0;
    bool any_indirect = false;
    double max_line_factor = 1.0;
    std::vector<const void*> seen_dats;
    std::vector<const Map*> seen_maps;
    for (const auto& i : infos) {
      if (i.is_gbl) {
        lp.reduction = hw::ReductionKind::BuiltIn;
        continue;
      }
      if (std::find(seen_dats.begin(), seen_dats.end(), i.dat_id) !=
          seen_dats.end())
        continue;  // same dat through several map columns: count once
      seen_dats.push_back(i.dat_id);
      lp.n_arrays += 1;
      lp.elem_bytes = i.elem_bytes;
      lp.working_set += i.unique_bytes;
      const bool indirect = i.map != nullptr;
      any_indirect |= indirect;
      const bool reads = i.acc == Acc::R || i.acc == Acc::RW || i.acc == Acc::INC;
      const bool writes =
          i.acc == Acc::W || i.acc == Acc::RW || i.acc == Acc::INC;
      if (reads) {
        lp.bytes_read += i.unique_bytes;
        if (indirect) lp.bytes_read_indirect += i.unique_bytes;
      }
      if (writes) {
        lp.bytes_written += i.unique_bytes;
        if (indirect) lp.bytes_written_indirect += i.unique_bytes;
      }
      if (indirect) {
        if (std::find(seen_maps.begin(), seen_maps.end(), i.map) ==
            seen_maps.end()) {
          seen_maps.push_back(i.map);
          lp.map_bytes += i.map->bytes();
          lp.working_set += i.map->bytes();
        }
        const GatherStats& gs =
            ctx.gather_for(*i.map, i.dim, i.elem_bytes, ctx_strat, i.layout);
        max_line_factor = std::max(max_line_factor, gs.line_factor);
        for (std::size_t c = 0; c < gs.factor_at.size(); ++c)
          lp.gather_factor_at[c] =
              std::max(lp.gather_factor_at[c], gs.factor_at[c]);
      }
    }
    lp.gather_line_factor = max_line_factor;
    if (ctx_staged) {
      // Scratch traffic of the staging: every staged operand (gather
      // buffer, INC arena, non-AoS direct buffer) is written once and
      // read back once per element.
      lp.staged = true;
      for (const auto& i : infos) {
        if (i.is_gbl) continue;
        if (i.map != nullptr || i.layout != Layout::AoS)
          lp.staged_bytes += 2.0 * static_cast<double>(n) *
                             static_cast<double>(i.dim) *
                             static_cast<double>(i.elem_bytes);
      }
    }
    if (conflict != nullptr) {
      lp.cls = hw::KernelClass::EdgeFlux;
      // Staged: one gather/compute pass plus one ordered scatter pass,
      // and no atomic increments - the races resolve in scratch.
      lp.launches = ctx_strat == Strategy::Staged ? 2 : plan->launches();
      if (ctx_strat == Strategy::Atomics) {
        std::size_t incs = 0;
        for (const auto& i : infos)
          if (i.acc == Acc::INC)
            incs += n * static_cast<std::size_t>(i.dim);
        lp.atomic_updates = incs;
      }
    } else if (any_indirect) {
      lp.cls = hw::KernelClass::MGTransfer;
    } else {
      lp.cls = lp.reduction != hw::ReductionKind::None
                   ? hw::KernelClass::Reduction
                   : hw::KernelClass::VertexUpdate;
    }
    ctx.profiles.push_back(std::move(lp));
  }
  if (!ctx.executing()) return;

  // Tuning scope for the whole loop (all colour sweeps share it): the
  // autotuner serves schedule x grain for this kernel's site unless
  // tuning is off. The handler-level scope inside Exec::Sycl sweeps
  // defers to this one.
  hw::seed_autotuner_priors();
  rt::autotune::ScopedTune tune_override(ctx.opt.tune);
  rt::autotune::Site site;
  site.name = meta.name;
  site.global = {n, 1, 1};
  // Direct sweeps (no colouring plan in the way) also race the
  // kernel-variant menu on the parallel lowerings: gather/scatter
  // kernels are exactly where register tiling hides indirection
  // latency. The staged lowering's tile sweeps honour the ascending
  // order contract too. Coloured strategies keep the reference loop -
  // their sweep order is the correctness contract.
  const bool direct_sweep = conflict == nullptr ||
                            ctx_strat == Strategy::Atomics ||
                            ctx_strat == Strategy::None ||
                            ctx_strat == Strategy::Staged;
  // Indirect-increment loops additionally race the race-resolution
  // strategy jointly with the gathered dats' physical layout - unless
  // the user pinned either knob through the environment.
  const bool pinned = strategy_from_env().has_value() ||
                      rt::env::get("SYCLPORT_LAYOUT").has_value();
  site.axes = rt::autotune::kScheduleGrain |
              (direct_sweep && ctx.opt.exec != Exec::Serial
                   ? rt::autotune::kVariantAxes
                   : 0u) |
              (conflict != nullptr && !pinned
                   ? rt::autotune::kIndirect | rt::autotune::kLayout
                   : 0u);
  rt::autotune::TunedLaunchParams sched_scope(site);

  // Apply the tuner's joint strategy x layout decision for this launch,
  // then re-derive the lowering: any non-AoS operand (tuner-chosen or
  // app-chosen) forces the staged path.
  Strategy strat = ctx_strat;
  rt::autotune::VariantParams vp;
  if (sched_scope.phase() != rt::autotune::Phase::None) {
    const auto& cfg = sched_scope.config();
    vp.reg_tile = cfg.reg_tile.value_or(1);
    vp.vec_width = cfg.vec_width.value_or(1);
    vp.unroll = cfg.unroll.value_or(1);
    if (conflict != nullptr) {
      if (cfg.indirect && *cfg.indirect >= 1 && *cfg.indirect <= 4)
        strat = static_cast<Strategy>(*cfg.indirect);
      if (cfg.layout && *cfg.layout >= 0 && *cfg.layout <= 2)
        (detail::relayout_indirect(args, static_cast<Layout>(*cfg.layout)),
         ...);
    }
  }
  const bool non_aos_now = (detail::arg_non_aos(args) || ...);
  if (conflict != nullptr && non_aos_now) strat = Strategy::Staged;
  const bool staged =
      non_aos_now || (conflict != nullptr && strat == Strategy::Staged);
  if (conflict != nullptr && !staged && strat != ctx_strat)
    plan = &ctx.plan_for(*conflict->map, strat);

  // Per-loop locality decision record: strategy/layout/ordering plus
  // the measured cold gather line factor next to the model's
  // LLC-capacity prediction (study report / ablation_layout table).
  auto log_decision = [&] {
    if (conflict == nullptr || !sycl::launch_log::instance().enabled())
      return;
    Layout lay = Layout::AoS;
    (detail::note_gather_layout(args, lay), ...);
    const GatherStats& gs = ctx.gather_for(
        *conflict->map, conflict->dim, conflict->elem_bytes, strat, lay);
    sycl::locality_record rec;
    rec.loop = meta.name;
    rec.strategy = std::string(to_string(strat));
    rec.layout = std::string(to_string(lay));
    const bool ren = conflict->map->to().renumbered();
    if (const auto o = ordering_from_env(); o.has_value() && ren)
      rec.ordering = std::string(to_string(*o));
    else
      rec.ordering = ren ? "custom" : "identity";
    rec.measured_gather = gs.line_factor;
    rec.predicted_gather = hw::interp_gather_curve(
        gs.factor_at, hw::nearest_host_platform().llc.bytes * 0.5);
    sycl::launch_log::instance().append_locality(std::move(rec));
  };

  if (staged) {
    auto targs = std::forward_as_tuple(args...);
    detail::staged_loop(
        ctx, meta.name, n,
        conflict != nullptr ? conflict->map->to().size() : std::size_t{0}, vp,
        kernel, targs);
    log_decision();
    return;
  }
  log_decision();

  auto binders = std::make_tuple(detail::make_binder(args, true)...);
  const bool atomic = conflict != nullptr && strat == Strategy::Atomics;
  auto invoke = [&](std::size_t e) {
    std::apply([&](const auto&... b) { kernel(b.make(e, atomic)...); },
               binders);
  };

  // Parallel sweep over an index list (or the identity when null).
  auto sweep = [&](const std::vector<int>* elems, std::size_t count) {
    auto elem_at = [&](std::size_t i) {
      return elems != nullptr ? static_cast<std::size_t>((*elems)[i]) : i;
    };
    switch (ctx.opt.exec) {
      case Exec::Serial:
        for (std::size_t i = 0; i < count; ++i) invoke(elem_at(i));
        break;
      case Exec::Threads: {
        rt::ThreadPool::global().parallel_for(
            count, [&](std::size_t b, std::size_t e) {
              rt::autotune::run_span_variant(
                  vp, b, e, [&](std::size_t i) { invoke(elem_at(i)); });
            });
        break;
      }
      case Exec::Sycl:
        // The handler's exec_flat applies the variant decided for this
        // loop's scope (it reads the innermost tuning config).
        ctx.queue.parallel_for(meta.name, sycl::range<1>(count),
                               [&](sycl::item<1> it) {
                                 invoke(elem_at(it.get_linear_id()));
                               });
        break;
    }
  };

  if (conflict == nullptr || strat == Strategy::Atomics ||
      strat == Strategy::None) {
    sweep(nullptr, n);
    return;
  }

  if (strat == Strategy::GlobalColor) {
    for (const auto& elems : plan->elements_by_colour)
      sweep(&elems, elems.size());
    return;
  }

  // Hierarchical: blocks of one colour run in parallel; inside a block,
  // intra-colour phases execute in order.
  const auto run_block_serial = [&](int blk) {
    const std::size_t b = static_cast<std::size_t>(blk) * plan->block_size;
    const std::size_t e_end = std::min(n, b + plan->block_size);
    for (int c = 0; c < plan->max_intra_colours; ++c)
      for (std::size_t e = b; e < e_end; ++e)
        if (plan->intra_colour[e] == c) invoke(e);
  };
  for (const auto& blocks : plan->blocks_by_colour) {
    switch (ctx.opt.exec) {
      case Exec::Serial:
        for (int blk : blocks) run_block_serial(blk);
        break;
      case Exec::Threads:
        rt::ThreadPool::global().parallel_for(
            blocks.size(), [&](std::size_t lo, std::size_t hi) {
              for (std::size_t i = lo; i < hi; ++i)
                run_block_serial(blocks[i]);
            });
        break;
      case Exec::Sycl: {
        // One work-group per block; barriers separate intra-colours -
        // the GPU hierarchical execution of Figure 1 (right).
        const std::size_t wg = std::max<std::size_t>(1, ctx.opt.wg);
        const Plan* pl = plan;
        const std::vector<int>* blks = &blocks;
        const std::size_t total = n;
        ctx.queue.parallel_for(
            meta.name,
            sycl::nd_range<1>(sycl::range<1>(blocks.size() * wg),
                              sycl::range<1>(wg)),
            [&, pl, blks, total](sycl::nd_item<1> it) {
              const int blk = (*blks)[it.get_group(0)];
              const std::size_t b =
                  static_cast<std::size_t>(blk) * pl->block_size;
              const std::size_t e_end = std::min(total, b + pl->block_size);
              for (int c = 0; c < pl->max_intra_colours; ++c) {
                for (std::size_t e = b + it.get_local_id(0); e < e_end;
                     e += wg)
                  if (pl->intra_colour[e] == c) invoke(e);
                it.barrier();
              }
            });
        break;
      }
    }
  }
}

/// par_loop over an explicit subset of `set`'s elements. The dist
/// overlap path uses this to split owned edges into an interior sweep
/// (run concurrently with the halo import) and a boundary sweep.
/// Races between INC arguments are resolved by atomics only - a
/// colouring plan would have to be rebuilt per subset, and the
/// owner-compute pipeline this serves uses Atomics/None - so coloured
/// strategies are rejected for parallel INC subsets. No LoopProfile is
/// recorded: the subset is an execution detail of the enclosing loop.
template <typename K, typename... Args>
void par_loop_subset(Context& ctx, Meta meta, Set& set,
                     std::span<const int> elems, K&& kernel, Args... args) {
  if (elems.empty() || !ctx.executing()) return;
  if (elems.size() > set.size())
    throw std::invalid_argument("par_loop_subset: subset larger than set");

  std::vector<detail::ArgInfo> infos{detail::arg_info(args)...};
  for (const auto& i : infos)
    if (!i.is_gbl && i.layout != Layout::AoS)
      throw std::invalid_argument(
          "par_loop_subset: non-AoS dats need the staged full-set loop");
  const bool has_inc =
      std::any_of(infos.begin(), infos.end(),
                  [](const auto& i) { return i.acc == Acc::INC; });
  // Staged has no subset lowering (its scratch arenas assume the full
  // identity sweep); subsets fall back to the atomic increments the
  // owner-compute pipeline was written for.
  const bool atomic = has_inc && (ctx.opt.strategy == Strategy::Atomics ||
                                  ctx.opt.strategy == Strategy::Staged);
  if (has_inc && !atomic && ctx.opt.strategy != Strategy::None &&
      ctx.opt.exec != Exec::Serial)
    throw std::invalid_argument(
        "par_loop_subset: INC needs Strategy::Atomics (or serial execution)");

  auto binders = std::make_tuple(detail::make_binder(args, true)...);
  auto invoke = [&](std::size_t e) {
    std::apply([&](const auto&... b) { kernel(b.make(e, atomic)...); },
               binders);
  };

  switch (ctx.opt.exec) {
    case Exec::Serial:
      for (int e : elems) invoke(static_cast<std::size_t>(e));
      break;
    case Exec::Threads:
      rt::ThreadPool::global().parallel_for(
          elems.size(), [&](std::size_t b, std::size_t e) {
            for (std::size_t i = b; i < e; ++i)
              invoke(static_cast<std::size_t>(elems[i]));
          });
      break;
    case Exec::Sycl:
      ctx.queue.parallel_for(meta.name, sycl::range<1>(elems.size()),
                             [&](sycl::item<1> it) {
                               invoke(static_cast<std::size_t>(
                                   elems[it.get_linear_id()]));
                             });
      break;
  }
}

}  // namespace syclport::op2
