// Figure 3 reproduction: runtime of the six structured-mesh
// applications on the MI250X platform across programming-model
// variants (see DESIGN.md experiment index).

#include <iostream>

#include "common/figures.hpp"

using namespace syclport;

int main() {
  study::StudyRunner runner;
  bench::structured_figure(
      std::cout, runner, PlatformId::MI250X,
      "Figure 3: structured-mesh runtimes, " +
          std::string(to_string(PlatformId::MI250X)),
      "fig3_structured_mi250x");
  return 0;
}
