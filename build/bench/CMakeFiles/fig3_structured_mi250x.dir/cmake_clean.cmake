file(REMOVE_RECURSE
  "CMakeFiles/fig3_structured_mi250x.dir/fig3_structured_mi250x.cpp.o"
  "CMakeFiles/fig3_structured_mi250x.dir/fig3_structured_mi250x.cpp.o.d"
  "fig3_structured_mi250x"
  "fig3_structured_mi250x.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_structured_mi250x.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
