# CMake generated Testfile for 
# Source directory: /root/repo/src/sycl
# Build directory: /root/repo/build/src/sycl
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
