#pragma once
/// \file detail/scheduler.hpp
/// The out-of-order command scheduler behind sycl::queue.
///
/// Every asynchronous command group becomes a Command: a list of
/// recorded kernel closures plus the footprint the command group
/// declared (buffer/USM base pointers x access_mode, via accessors or
/// handler::require). submit() derives RAW/WAR/WAW edges against the
/// in-flight commands - two commands conflict iff they touch the same
/// base pointer and at least one of them writes - and hands ready
/// commands to a small set of scheduler worker threads. Dependents are
/// released as their predecessors retire, so independent command groups
/// execute concurrently while dependent ones chain, exactly the
/// behaviour the paper attributes DPC++'s per-kernel dependency
/// tracking overhead to (docs/queue.md).
///
/// Granularity is the buffer *base pointer*: overlapping sub-ranges of
/// one allocation conflict even if disjoint, never the reverse.
///
/// Host-side synchronization points (event::wait, queue::wait, buffer
/// destruction, host_accessor construction, sycl::free) block on the
/// relevant subset of in-flight commands. When such a sync point is
/// reached from *inside* a scheduler worker (a kernel that itself
/// submits work), it is a no-op beyond the command's own ordering -
/// the scheduler already ordered the enclosing command, and blocking
/// on sibling commands from a worker could deadlock.
///
/// Blocked sync points do not merely sleep: while their predicate is
/// unsatisfied and ready commands exist, they claim and run commands
/// inline (work-first helping, as in blocking-join work stealing).
/// This removes the submit -> worker-wakeup -> waiter-wakeup context
/// switches whenever the waiting thread would otherwise idle - on a
/// saturated machine an event::wait right after submit degenerates to
/// running the command on the calling thread, which is exactly the
/// synchronous cost.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sycl/access.hpp"

namespace sycl::detail {

/// One declared footprint entry of a command group.
struct AccessRecord {
  const void* ptr = nullptr;
  access_mode mode = access_mode::read_write;
};

/// Two accesses conflict iff they alias and at least one writes.
[[nodiscard]] constexpr bool access_conflict(const AccessRecord& a,
                                             const AccessRecord& b) noexcept {
  return a.ptr == b.ptr && !(a.mode == access_mode::read &&
                             b.mode == access_mode::read);
}

/// Scheduling timestamps and DAG counters of one command, surfaced via
/// sycl::launch_log command records. Seconds are relative to the
/// scheduler epoch (first use), so submit->start gaps across commands
/// are directly comparable.
struct CommandProfile {
  double submit_seconds = 0.0;
  double start_seconds = 0.0;
  double end_seconds = 0.0;
  std::size_t dep_edges = 0;    ///< predecessors at submit time
  bool pool_parallel = false;   ///< kernels fanned out over the thread pool
};

/// A recorded command group in flight through the scheduler.
class Command {
 public:
  const char* name = "(command)";
  std::vector<std::function<void()>> actions;
  std::vector<AccessRecord> accesses;
  std::vector<std::shared_ptr<Command>> explicit_deps;  ///< from depends_on
  std::uint64_t queue_id = 0;
  CommandProfile profile;

  [[nodiscard]] bool done() const noexcept {
    return done_.load(std::memory_order_acquire);
  }

 private:
  friend class Scheduler;
  friend std::shared_ptr<Command> acquire_command();
  /// Return the node to its pooled state: clear the per-submission
  /// payload but keep every vector's capacity, so a recycled command
  /// records its actions and footprint without allocating.
  void reset_for_reuse() noexcept {
    name = "(command)";
    actions.clear();
    accesses.clear();
    explicit_deps.clear();
    dependents.clear();
    queue_id = 0;
    profile = CommandProfile{};
    unmet = 0;
    error = nullptr;
    done_.store(false, std::memory_order_relaxed);
  }

  unsigned unmet = 0;  ///< unretired predecessors (guarded by Scheduler::mu_)
  std::vector<std::shared_ptr<Command>> dependents;
  std::exception_ptr error;
  std::atomic<bool> done_{false};
};

/// Monotonic queue identities (each sycl::queue gets one; copies share it).
[[nodiscard]] std::uint64_t next_queue_id() noexcept;

/// A Command node from the process-wide free list (or freshly allocated
/// when the list is empty). When the last reference drops, the node -
/// including the capacity of its actions/footprint vectors - goes back
/// to the list instead of the heap, making the steady-state submit path
/// allocation-free in command bookkeeping.
[[nodiscard]] std::shared_ptr<Command> acquire_command();

class Scheduler {
 public:
  /// The process-wide scheduler. Workers start lazily on first submit.
  static Scheduler& instance();

  /// Fast idle probe: false iff no command is in flight. Lets the
  /// synchronous submit path skip the lock entirely.
  [[nodiscard]] bool active() const noexcept {
    return inflight_count_.load(std::memory_order_acquire) != 0;
  }

  /// Enqueue a command: derive dependency edges against every in-flight
  /// command, then run it as soon as all predecessors retire.
  void submit(std::shared_ptr<Command> cmd);

  /// Block until every in-flight command of the given queue retires.
  void wait_queue(std::uint64_t queue_id);
  /// Block until the scheduler is idle.
  void wait_all();
  /// Block until no in-flight command declares `ptr` in its footprint
  /// (buffer destruction, host_accessor, sycl::free).
  void wait_address(const void* ptr);
  /// Block until no in-flight command conflicts with `accesses`; an
  /// empty footprint is treated as conflicting with everything (the
  /// conservative pre-step of a synchronous undeclared-footprint
  /// submit).
  void wait_conflicts(const std::vector<AccessRecord>& accesses);
  /// Block until this command retires.
  void wait_command(const std::shared_ptr<Command>& cmd);

  /// Take (and clear) the stored kernel exception of one command /
  /// all commands of a queue. First caller wins; later calls see none.
  [[nodiscard]] std::exception_ptr consume_error(const Command* cmd);
  [[nodiscard]] std::vector<std::exception_ptr> consume_queue_errors(
      std::uint64_t queue_id);

  /// Seconds since the scheduler epoch (CommandProfile time base).
  [[nodiscard]] double now() const noexcept;

  /// Scheduler worker count (SYCLPORT_QUEUE_WORKERS).
  [[nodiscard]] unsigned workers() const noexcept { return nworkers_; }

  /// True iff the calling thread is currently executing a command.
  [[nodiscard]] static bool on_worker() noexcept;

  /// True when handing a command to a scheduler worker can overlap with
  /// host-side work in wall-clock terms, i.e. the machine has more than
  /// one hardware thread. On a single-core host the handoff pays two
  /// context switches with nothing to hide, so callers structuring
  /// compute/communication overlap should prefer an inline ordering
  /// there (the dist par_loop_overlap layers do). The environment
  /// variable SYCLPORT_OVERLAP=queue|inline overrides the detection,
  /// which tests use to pin one strategy.
  [[nodiscard]] static bool concurrency_available() noexcept;

  ~Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

 private:
  Scheduler();
  void start_workers_locked();
  void worker_loop();
  void run_command(Command& cmd, bool solo);
  void retire_locked(const std::shared_ptr<Command>& cmd);
  bool help_one_locked(std::unique_lock<std::mutex>& lock);
  template <typename Pred>
  void wait_helping(std::unique_lock<std::mutex>& lock, Pred&& pred);

  struct StoredError {
    const Command* cmd;
    std::uint64_t queue_id;
    std::exception_ptr error;
  };

  mutable std::mutex mu_;
  std::condition_variable cv_work_;  ///< wakes workers on ready commands
  std::condition_variable cv_done_;  ///< wakes host sync points on retire
  /// Launch watchdog (SYCLPORT_WATCHDOG_MS, 0 = off): a host sync
  /// point that observes no progress - no retirement and nothing to
  /// help with - for this long throws rt::fault::watchdog_error
  /// instead of deadlocking on a command that will never retire.
  long watchdog_ms_ = 0;
  /// In-flight commands plus retired stragglers awaiting the next epoch
  /// sweep: retire_locked() only marks commands done (O(1)); the O(n)
  /// compaction runs every kRetireEpoch retirements (or when the
  /// scheduler drains). Every scan of this list must skip done() nodes.
  std::vector<std::shared_ptr<Command>> inflight_;
  std::size_t retired_since_sweep_ = 0;
  std::deque<std::shared_ptr<Command>> ready_;
  std::vector<StoredError> errors_;
  std::vector<std::thread> workers_;
  unsigned running_ = 0;
  unsigned nworkers_ = 0;
  bool started_ = false;
  bool stop_ = false;
  std::atomic<std::size_t> inflight_count_{0};
  std::chrono::steady_clock::time_point epoch_;
};

/// Host-side happens-before for direct access to `ptr` (buffer dtor,
/// host_accessor, sycl::free). No-op when the scheduler is idle or the
/// caller is itself a scheduler worker.
inline void sync_host_access(const void* ptr) {
  auto& s = Scheduler::instance();
  if (s.active() && !Scheduler::on_worker()) s.wait_address(ptr);
}

}  // namespace sycl::detail
