#pragma once
/// \file mesh_io.hpp
/// Plain-text mesh serialization for the MG-CFD hierarchy, so meshes
/// can be generated once, inspected, versioned and reloaded - the
/// stand-in for reading the NASA Rotor37 case from disk, with the same
/// downstream code path (DESIGN.md §2).
///
/// Format (line oriented, '#' comments allowed at line starts):
///   syclport-mesh 1
///   levels <L>
///   level <l> dims <ni> <nj> <nk> nodes <N> edges <E> arity <A>
///   <N lines: x y z>
///   <E lines: A node ids>
///   [for l > 0] fromfine <Nfine>
///   <Nfine lines: coarse node id>

#include <string>

#include "apps/mgcfd/mesh.hpp"

namespace syclport::apps::mgcfd {

/// Write the full hierarchy; throws std::runtime_error on I/O failure.
void save_mesh(const std::string& path, const MultigridMesh& mesh);

/// Read a hierarchy written by save_mesh; validates all maps.
[[nodiscard]] MultigridMesh load_mesh(const std::string& path);

}  // namespace syclport::apps::mgcfd
