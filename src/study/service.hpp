#pragma once
/// \file service.hpp
/// Portability-study-as-a-service: a long-running in-process daemon
/// that serves study queries (app x variant x platform x scale) to many
/// concurrent client sessions (ROADMAP item 1; docs/service.md).
///
/// Sessions submit StudyRequests over a lock-free MPSC queue (Vyukov
/// intrusive list: wait-free producers, single consumer). An admission
/// controller drains the queue in bounded rounds, coalesces duplicate
/// in-flight requests (one compute, N waiters, all sharing the same
/// result bytes), batches compatible ones so a loop schedule is built
/// once per (app, backend family, strategy, scale) class, and shards
/// the per-cell aggregation of a round across the work-stealing
/// executor. Results are served from a content-addressed cache keyed by
/// the request CRC (request_key) and guarded on disk by the device
/// fingerprint, persisted through the same atomic-rename + CRC32
/// machinery as checkpoints and the tuning cache - a warm-cache query
/// is a hash lookup at submit time, never a kernel sweep.
///
/// Failure story: request computation under an armed SYCLPORT_FAULT
/// plan (the `svc.fail` site, or any fault escaping the model run)
/// completes every waiter of the key with a *typed* service_error; the
/// admission loop itself never dies, so the queue cannot wedge and the
/// service keeps accepting requests. Errors are never cached.
///
/// Degraded mode (docs/service.md): a group whose compute faulted is
/// retried with bounded backoff (SYCLPORT_SERVICE_RETRIES); when the
/// retries are also lost and the cache holds a previous good result for
/// the key, that result is served flagged stale=true instead of a hard
/// service_error - the session keeps a usable answer while the fault
/// clears.
///
/// Telemetry: per-request outcomes flow into sycl::launch_log
/// (service_telemetry: throughput, dedup, cache hits, p50/p95/p99
/// latency) and into ServiceStats for the owning process.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/types.hpp"
#include "study/study.hpp"

namespace syclport::study {

/// One study query: which experiment cell, at which problem scale.
struct StudyRequest {
  AppId app = AppId::CloverLeaf2D;
  PlatformId platform = PlatformId::A100;
  Variant variant{};
  /// Problem-scale selector: Paper models the paper's problem sizes
  /// (seconds of cold work per schedule class), Bench the reduced
  /// test/bench sizes (milliseconds).
  enum class Scale : std::uint8_t { Paper, Bench };
  Scale scale = Scale::Bench;

  /// Bypass the caches and force a fresh compute for this key. Not part
  /// of the request identity (request_text/request_key ignore it): a
  /// refresh produces the same logical result, just recomputed - which
  /// also makes it the path that can observe a compute-group fault on a
  /// warm key and exercise degraded mode.
  bool refresh = false;

  friend bool operator==(const StudyRequest&, const StudyRequest&) = default;
};

/// Canonical wire text of a request - the bytes under the key CRC.
[[nodiscard]] std::string request_text(const StudyRequest& q);

/// Content-address of a request: the canonical text plus its CRC32
/// ("...#xxxxxxxx"), stable across processes and sessions. The
/// persistent layer additionally gates files on the device fingerprint,
/// mirroring the tuning cache (docs/service.md).
[[nodiscard]] std::string request_key(const StudyRequest& q);

/// Typed per-session failure modes (never a wedged queue: every failed
/// request completes with one of these).
enum class RequestError : std::uint8_t {
  None,
  Faulted,   ///< fault layer injected a failure into the computation
  Internal,  ///< unexpected exception escaped the model run
  Shutdown,  ///< service stopped before the request was served
};
[[nodiscard]] const char* to_string(RequestError e) noexcept;

class service_error : public std::runtime_error {
 public:
  service_error(RequestError kind_arg, const std::string& what_arg)
      : std::runtime_error(what_arg), kind(kind_arg) {}
  RequestError kind = RequestError::Internal;
};

/// The reply every waiter of a key receives: the serialized
/// ExperimentResult (fixed little-endian layout with a CRC32 trailer)
/// plus its decoded form. Coalesced waiters share one blob, so
/// "identical bytes" holds structurally.
struct ResultBlob {
  std::vector<unsigned char> bytes;
  ExperimentResult result;
};

/// Serialize / deserialize the wire layout ("SR1" magic, status byte,
/// seven doubles, CRC32 trailer). decode_result returns nullopt on a
/// torn or tampered image.
[[nodiscard]] std::vector<unsigned char> encode_result(
    const ExperimentResult& r);
[[nodiscard]] std::optional<ExperimentResult> decode_result(
    const unsigned char* p, std::size_t n);

/// A pending reply: created by Service::submit, completed by the
/// admission loop (or inline on a warm-cache hit). Thread-safe.
class Ticket {
 public:
  /// Block until completion; returns the shared blob or throws the
  /// typed service_error the request ended with.
  const ResultBlob& wait();
  [[nodiscard]] bool ready() const noexcept {
    return done_.load(std::memory_order_acquire);
  }
  /// Served-by flags and latency; valid once ready().
  [[nodiscard]] bool cache_hit() const noexcept { return cache_hit_; }
  [[nodiscard]] bool coalesced() const noexcept { return coalesced_; }
  /// Degraded mode: the blob is the last good cached result, served
  /// because the fresh compute kept faulting (docs/service.md).
  [[nodiscard]] bool stale() const noexcept { return stale_; }
  [[nodiscard]] double latency_ms() const noexcept { return latency_ms_; }

 private:
  friend class Service;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::atomic<bool> done_{false};
  std::shared_ptr<const ResultBlob> blob_;
  RequestError error_ = RequestError::None;
  std::string error_what_;
  bool cache_hit_ = false;
  bool coalesced_ = false;
  bool stale_ = false;
  double latency_ms_ = 0.0;
  std::chrono::steady_clock::time_point t_submit_;
};

/// Cumulative service telemetry (stats() snapshot).
struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t computed = 0;    ///< fresh kernel-sweep computations
  std::uint64_t coalesced = 0;   ///< waiters that rode another compute
  std::uint64_t cache_hits = 0;  ///< served by the content-addressed cache
  std::uint64_t persistent_hits = 0;  ///< ...from the on-disk cache image
  std::uint64_t errors = 0;           ///< typed-error completions
  std::uint64_t retries = 0;          ///< faulted-compute retry attempts
  std::uint64_t stale_served = 0;     ///< degraded-mode stale completions
  std::uint64_t batches = 0;          ///< admission rounds executed
  std::uint64_t max_batch = 0;        ///< largest round drained
  std::uint64_t schedule_builds = 0;  ///< cold loop-schedule constructions
  double mean_ms = 0.0;  ///< response latency over completed requests
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;

  /// Fraction of completed requests served without a fresh compute.
  [[nodiscard]] double dedup_ratio() const {
    return completed == 0 ? 0.0
                          : 1.0 - static_cast<double>(computed) /
                                      static_cast<double>(completed);
  }
  [[nodiscard]] double cache_hit_rate() const {
    return completed == 0 ? 0.0
                          : static_cast<double>(cache_hits) /
                                static_cast<double>(completed);
  }
};

/// Service knobs, defaulted from SYCLPORT_SERVICE_* (docs/service.md).
struct ServiceConfig {
  /// Persistent result-cache path ("" = in-memory only).
  std::string cache_path;
  /// Max requests admitted per dispatch round (bounds per-round latency).
  std::size_t max_batch = 256;
  /// Microseconds the admission loop spins on an empty queue before
  /// parking on the wake condvar.
  std::size_t spin_us = 50;
  /// Degraded mode: how many times a Faulted compute is retried before
  /// falling back to the stale cache / typed error. 0 (the default)
  /// keeps the original fail-fast semantics.
  std::size_t compute_retries = 0;
  /// Base backoff between retry attempts (grows linearly per attempt).
  std::size_t retry_backoff_us = 200;

  [[nodiscard]] static ServiceConfig from_env();
};

class Service {
 public:
  explicit Service(ServiceConfig cfg = ServiceConfig::from_env());
  ~Service();
  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Submit a request. Warm-cache queries complete inline (a hash
  /// lookup); everything else enqueues on the lock-free MPSC queue for
  /// the admission controller. Never blocks on computation.
  std::shared_ptr<Ticket> submit(const StudyRequest& q);

  [[nodiscard]] ServiceStats stats() const;

  /// Persist the result cache now (merge-on-load + atomic rename).
  /// False when no cache path is configured or on I/O failure. Also
  /// runs automatically at shutdown.
  bool save_cache();

  /// Stop accepting work: pending and future requests complete with a
  /// typed Shutdown error; the admission thread is joined. Idempotent;
  /// the destructor calls it.
  void shutdown();

  /// Testing hooks: while paused, the admission loop drains nothing,
  /// so a burst of duplicate submissions lands in one round and the
  /// coalescing path is deterministic.
  void pause_admission() { paused_.store(true, std::memory_order_release); }
  void resume_admission();

 private:
  /// Intrusive MPSC queue node (Vyukov). Producers own allocation, the
  /// admission loop owns deallocation after the pop.
  struct Node {
    std::atomic<Node*> next{nullptr};
    std::shared_ptr<Ticket> ticket;
    StudyRequest req;
  };

  /// One unique in-flight key of a round and its waiters.
  struct Group {
    StudyRequest req;
    std::string key;
    std::vector<std::shared_ptr<Ticket>> waiters;
    std::span<const hw::LoopProfile> profiles;  ///< filled serially
    Status support = Status::Ok;
    bool inject_fault = false;  ///< svc.fail rolled for this group
    bool refresh = false;       ///< some waiter asked for a fresh compute
    std::shared_ptr<const ResultBlob> blob;
    RequestError err = RequestError::None;
    std::string err_what;
  };

  struct CachedResult {
    std::shared_ptr<const ResultBlob> blob;
    bool persistent = false;  ///< loaded from the on-disk image
  };

  void push(Node* n) noexcept;
  Node* pop() noexcept;
  void wake();
  void admission_loop();
  void execute_round(std::vector<Node*>& nodes);
  void complete(const std::shared_ptr<Ticket>& t,
                std::shared_ptr<const ResultBlob> blob, RequestError err,
                const std::string& err_what, bool cache_hit, bool coalesced,
                bool computed, bool stale = false);
  static void compute_group(Group& g);
  void retry_faulted(Group& g);
  StudyRunner& runner_for(StudyRequest::Scale scale);
  void load_cache();

  ServiceConfig cfg_;
  std::string fingerprint_;

  // Lock-free MPSC submission queue.
  Node stub_;
  std::atomic<Node*> tail_{&stub_};
  Node* head_ = &stub_;  ///< admission-thread-owned

  // Admission-loop parking.
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  std::atomic<bool> sleeping_{false};
  std::atomic<bool> paused_{false};
  std::atomic<bool> stop_{false};
  std::atomic<bool> accepting_{true};

  // Content-addressed result cache (memory image; disk via save_cache).
  mutable std::mutex cache_mu_;
  std::unordered_map<std::string, CachedResult> cache_;

  // Schedule providers (one per scale; schedule builds are serialized).
  std::mutex runner_mu_;
  StudyRunner paper_runner_;
  StudyRunner bench_runner_;
  bool bench_sized_ = false;

  // Telemetry.
  mutable std::mutex stats_mu_;
  ServiceStats stats_;
  std::vector<double> latencies_ms_;

  std::thread admission_;
};

}  // namespace syclport::study
