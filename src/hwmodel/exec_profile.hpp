#pragma once
/// \file exec_profile.hpp
/// Per-(platform, variant) execution characteristics: how a programming
/// model + toolchain behaves on a platform, independent of any specific
/// kernel. These encode the mechanisms the paper identifies:
///  - DPC++ on CPUs launches kernels through OpenCL drivers (large
///    per-launch overhead, §4.2), while OpenSYCL maps to OpenMP at
///    compile time (small overhead);
///  - SYCL reductions on CPUs are 6-7x more expensive than OpenMP's
///    (user binary-tree reductions had to be used, §4.2);
///  - OpenSYCL on the MI250X cannot reach the "unsafe" fast FP atomics
///    (§4.3);
///  - compilers differ in vectorization capability on CPUs (§4.2, §4.4).

#include "core/types.hpp"
#include "hwmodel/platform.hpp"

namespace syclport::hw {

struct ExecProfile {
  double launch_us = 1.0;       ///< host-side cost per kernel launch
  double bw_factor = 1.0;       ///< achievable fraction of STREAM bw
  double vec_eff = 1.0;         ///< vectorization efficiency in (0, 1]
  double reduction_factor = 1.0;///< reduction cost multiplier vs native
  bool unsafe_atomics = true;   ///< can the fast FP-atomic path be used?
  /// Multiplier applied to flat-formulation kernels on top of the
  /// work-group model (platform sensitivity to runtime-chosen shapes).
  double flat_penalty = 1.0;
  /// Factor on the (stencil-multiplier - 1) for tuned nd_range shapes:
  /// tuned work-group shapes improve cache behaviour (paper §4.1 on the
  /// Max 1100: L1/L2 hit rates improve significantly).
  double nd_cache_bonus = 1.0;
};

/// Lookup the execution profile of `v` on `p`. Callers should consult
/// SupportMatrix for availability; this function returns a best-effort
/// profile even for combinations the paper marks as failing.
[[nodiscard]] ExecProfile exec_profile(PlatformId p, const Variant& v);

}  // namespace syclport::hw
