#pragma once
/// \file exception.hpp
/// miniSYCL error types: sycl::exception / errc, plus the SYCL 2020
/// asynchronous-error surface (exception_list, async_handler) used by
/// the out-of-order queue to report kernel exceptions captured on
/// scheduler workers.

#include <cstddef>
#include <exception>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

namespace sycl {

enum class errc {
  success = 0,
  runtime,
  kernel,
  invalid,
  nd_range_error,
  feature_not_supported,
};

class exception : public std::runtime_error {
 public:
  exception(errc code, const std::string& what_arg)
      : std::runtime_error(what_arg), code_(code) {}

  [[nodiscard]] errc code() const noexcept { return code_; }

 private:
  errc code_;
};

/// Batch of asynchronous (kernel) exceptions, as in SYCL 2020. Handed
/// to the queue's async_handler by wait_and_throw / throw_asynchronous.
class exception_list {
 public:
  using value_type = std::exception_ptr;
  using iterator = std::vector<std::exception_ptr>::const_iterator;
  using const_iterator = iterator;

  [[nodiscard]] std::size_t size() const noexcept { return list_.size(); }
  [[nodiscard]] const_iterator begin() const noexcept { return list_.begin(); }
  [[nodiscard]] const_iterator end() const noexcept { return list_.end(); }

  void push_back(std::exception_ptr e) { list_.push_back(std::move(e)); }

 private:
  std::vector<std::exception_ptr> list_;
};

/// Receives captured kernel exceptions at queue synchronization points.
using async_handler = std::function<void(exception_list)>;

}  // namespace sycl
