#pragma once
/// \file reduction.hpp
/// miniSYCL reductions: sycl::plus/minimum/maximum function objects,
/// known identities, the reducer visible to kernels, and the
/// reduction() factory accepted by parallel_for. The paper contrasts
/// these built-in reductions with user-written binary-tree reductions
/// in local memory (OPS had to fall back to the latter on CPU SYCL);
/// both paths exist in this codebase - the tree reduction lives in the
/// OPS SYCL backend.

#include <algorithm>
#include <limits>

namespace sycl {

template <typename T = void>
struct plus {
  constexpr T operator()(const T& a, const T& b) const { return a + b; }
};

template <typename T = void>
struct minimum {
  constexpr T operator()(const T& a, const T& b) const {
    return b < a ? b : a;
  }
};

template <typename T = void>
struct maximum {
  constexpr T operator()(const T& a, const T& b) const {
    return a < b ? b : a;
  }
};

/// known_identity, for the operators the study's applications use.
template <typename Op, typename T>
struct known_identity;

template <typename T>
struct known_identity<plus<T>, T> {
  static constexpr T value = T{};
};
template <typename T>
struct known_identity<minimum<T>, T> {
  static constexpr T value = std::numeric_limits<T>::max();
};
template <typename T>
struct known_identity<maximum<T>, T> {
  static constexpr T value = std::numeric_limits<T>::lowest();
};

template <typename Op, typename T>
inline constexpr T known_identity_v = known_identity<Op, T>::value;

/// The per-work-item combiner handed to reduction kernels.
template <typename T, typename Op>
class reducer {
 public:
  explicit reducer(T identity, Op op = {}) : val_(identity), op_(op) {}

  void combine(const T& v) { val_ = op_(val_, v); }
  reducer& operator+=(const T& v) {
    combine(v);
    return *this;
  }

  [[nodiscard]] const T& value() const { return val_; }

 private:
  T val_;
  Op op_;
};

/// Descriptor created by sycl::reduction() and consumed by the handler.
template <typename T, typename Op>
struct reduction_descriptor {
  T* target;
  Op op;
  T identity;
};

/// SYCL 2020 reduction over a USM scalar. The final value combines the
/// reduction result with the variable's prior content (default SYCL
/// behaviour without initialize_to_identity).
template <typename T, typename Op>
[[nodiscard]] reduction_descriptor<T, Op> reduction(T* var, Op op) {
  return {var, op, known_identity_v<Op, T>};
}

template <typename T, typename Op>
[[nodiscard]] reduction_descriptor<T, Op> reduction(T* var, T identity, Op op) {
  return {var, op, identity};
}

}  // namespace sycl
