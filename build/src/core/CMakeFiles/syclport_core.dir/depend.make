# Empty dependencies file for syclport_core.
# This may be replaced when dependencies are built.
