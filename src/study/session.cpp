#include "study/session.hpp"

#include <cstring>
#include <stdexcept>
#include <utility>

#include "runtime/mem/mem.hpp"

namespace syclport::study {

Session::Session(Service& svc, std::string name)
    : svc_(svc), name_(std::move(name)) {}

Session::~Session() {
  for (void* block : arena_) rt::mem::dealloc(block);
}

std::span<const unsigned char> Session::arena_copy(
    std::span<const unsigned char> bytes) {
  if (bytes.empty()) return {};
  void* block = rt::mem::alloc(bytes.size(), rt::mem::Init::None);
  std::memcpy(block, bytes.data(), bytes.size());
  arena_.push_back(block);
  stats_.arena_bytes += bytes.size();
  stats_.arena_blocks += 1;
  return {static_cast<const unsigned char*>(block), bytes.size()};
}

std::size_t Session::submit(const StudyRequest& q) {
  stats_.requests += 1;
  pending_.push_back(svc_.submit(q));
  return pending_.size() - 1;
}

Session::Reply Session::finish(std::size_t handle) {
  if (handle >= pending_.size() || !pending_[handle])
    throw std::logic_error("Session::finish: bad or already-finished handle");
  const std::shared_ptr<Ticket> t = std::move(pending_[handle]);
  try {
    const ResultBlob& blob = t->wait();
    Reply r;
    r.result = blob.result;
    r.bytes = arena_copy({blob.bytes.data(), blob.bytes.size()});
    r.cache_hit = t->cache_hit();
    r.coalesced = t->coalesced();
    r.stale = t->stale();
    r.latency_ms = t->latency_ms();
    stats_.cache_hits += r.cache_hit ? 1 : 0;
    stats_.coalesced += r.coalesced ? 1 : 0;
    stats_.stale += r.stale ? 1 : 0;
    return r;
  } catch (const service_error&) {
    stats_.errors += 1;
    throw;
  }
}

Session::Reply Session::query(const StudyRequest& q) {
  return finish(submit(q));
}

}  // namespace syclport::study
