# Empty compiler generated dependencies file for fig11_pp_unstructured.
# This may be replaced when dependencies are built.
