#pragma once
/// \file dat.hpp
/// OPS dat: a (possibly multi-component) field over a block, stored
/// with halo/ghost layers on every side. Layout is row-major over
/// (slow, mid, fast) with components innermost (AoS). In ModelOnly
/// contexts no storage is allocated - the dat only contributes its
/// footprint metadata to the schedule.
///
/// Storage is an rt::mem::Array: pooled allocation, parallel
/// streaming-zero initialization (first-touched by the workers that
/// will stream the field), huge pages above the threshold.

#include <cassert>
#include <cstddef>
#include <string>

#include "ops/block.hpp"
#include "runtime/mem/array.hpp"

namespace syclport::ops {

template <typename T>
class Dat {
 public:
  Dat(Block& block, std::string name, int ncomp = 1, int halo = 2)
      : block_(&block),
        name_(std::move(name)),
        ncomp_(ncomp),
        halo_(halo) {
    for (int d = 0; d < 3; ++d)
      padded_[static_cast<std::size_t>(d)] =
          d < block.dims()
              ? block.size(d) + 2 * static_cast<std::size_t>(halo_)
              : 1;
    if (block.ctx().executing())
      data_ = rt::mem::Array<T>(padded_[0] * padded_[1] * padded_[2] *
                                static_cast<std::size_t>(ncomp_));
  }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Block& block() const { return *block_; }
  [[nodiscard]] int ncomp() const { return ncomp_; }
  [[nodiscard]] int halo() const { return halo_; }
  [[nodiscard]] bool allocated() const { return !data_.empty(); }

  /// Element strides (in T units): fastest spatial step, mid, slow.
  [[nodiscard]] std::ptrdiff_t stride_fast() const { return ncomp_; }
  [[nodiscard]] std::ptrdiff_t stride_mid() const {
    return static_cast<std::ptrdiff_t>(padded_[static_cast<std::size_t>(
               block_->dims() - 1)]) *
           ncomp_;
  }
  [[nodiscard]] std::ptrdiff_t stride_slow() const {
    // 3D: slow stride spans a full (mid x fast) plane; for lower dims
    // the mid stride already is the slowest spatial stride.
    return block_->dims() < 3
               ? stride_mid()
               : stride_mid() * static_cast<std::ptrdiff_t>(padded_[1]);
  }

  /// Pointer to the interior origin (all halo offsets applied).
  [[nodiscard]] T* origin() {
    assert(allocated());
    std::ptrdiff_t off = 0;
    const int dims = block_->dims();
    if (dims == 1) {
      off = halo_ * stride_fast();
    } else if (dims == 2) {
      off = halo_ * stride_mid() + halo_ * stride_fast();
    } else {
      off = halo_ * stride_slow() + halo_ * stride_mid() +
            halo_ * stride_fast();
    }
    return data_.data() + off;
  }

  /// Interior-relative element access (slow, mid, fast ordering per the
  /// block; pass only as many indices as the block has dims). Host-side
  /// convenience for initialization and checks.
  [[nodiscard]] T& at(std::ptrdiff_t a, std::ptrdiff_t b = 0,
                      std::ptrdiff_t c = 0, int comp = 0) {
    const int dims = block_->dims();
    T* o = origin();
    if (dims == 1) return o[a * stride_fast() + comp];
    if (dims == 2) return o[a * stride_mid() + b * stride_fast() + comp];
    return o[a * stride_slow() + b * stride_mid() + c * stride_fast() + comp];
  }

  /// Bytes of one interior footprint sweep (no halo): the OPS transfer
  /// unit for this dat.
  [[nodiscard]] double interior_bytes() const {
    return static_cast<double>(block_->points()) * ncomp_ * sizeof(T);
  }

  /// Total allocated bytes including halos (0 when not allocated).
  [[nodiscard]] std::size_t alloc_bytes() const {
    return data_.size() * sizeof(T);
  }

  /// Raw storage base (halos included) - the region ops::checkpoint()
  /// snapshots and restore() rewrites. Null when not allocated.
  [[nodiscard]] T* storage() noexcept { return data_.data(); }
  [[nodiscard]] const T* storage() const noexcept { return data_.data(); }

  /// Fill the entire allocation (halos included) via the parallel
  /// streaming-store path.
  void fill(T v) { data_.fill(v); }

  /// Sum over the interior (validation checksums).
  [[nodiscard]] double interior_sum() {
    double s = 0.0;
    const int dims = block_->dims();
    const auto n0 = static_cast<std::ptrdiff_t>(block_->size(0));
    const auto n1 = dims >= 2 ? static_cast<std::ptrdiff_t>(block_->size(1)) : 1;
    const auto n2 = dims >= 3 ? static_cast<std::ptrdiff_t>(block_->size(2)) : 1;
    for (std::ptrdiff_t a = 0; a < n0; ++a)
      for (std::ptrdiff_t b = 0; b < n1; ++b)
        for (std::ptrdiff_t c = 0; c < n2; ++c)
          for (int comp = 0; comp < ncomp_; ++comp)
            s += static_cast<double>(dims == 1   ? at(a, 0, 0, comp)
                                     : dims == 2 ? at(a, b, 0, comp)
                                                 : at(a, b, c, comp));
    return s;
  }

 private:
  Block* block_;
  std::string name_;
  int ncomp_;
  int halo_;
  std::array<std::size_t, 3> padded_{1, 1, 1};
  rt::mem::Array<T> data_;
};

}  // namespace syclport::ops
