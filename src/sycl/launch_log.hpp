#pragma once
/// \file launch_log.hpp
/// Instrumentation of kernel launches. Every queue submission appends a
/// launch_record when logging is enabled; the OPS/OP2 DSLs and the
/// hardware model read these records to learn the actually-used
/// work-group shape (flat launches record local=nullopt - the shape is
/// then *chosen by the modeled compiler runtime*, which is exactly the
/// flat-vs-nd_range effect the paper studies).
///
/// The out-of-order scheduler additionally appends one command_record
/// per asynchronous command group, carrying submit/start/end
/// timestamps and the number of dependency edges derived at submit -
/// the per-kernel scheduling overhead the paper discusses, made
/// measurable (bench/ablation_async.cpp).
///
/// Thread safety: kernels of independent command groups execute
/// concurrently on scheduler workers, so every record path takes the
/// log mutex; the enabled() fast path is a lock-free atomic load so
/// disabled logging costs the hot path nothing.

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "runtime/autotune/config.hpp"
#include "runtime/fault/fault.hpp"
#include "runtime/mem/mem.hpp"
#include "runtime/thread_pool.hpp"
#include "sycl/detail/scheduler.hpp"

namespace sycl {

struct launch_record {
  std::string kernel_name;
  int dims = 1;
  std::array<std::size_t, 3> global{1, 1, 1};
  std::optional<std::array<std::size_t, 3>> local;  ///< nullopt for flat
  bool used_barrier = false;
  bool reduction = false;
  double host_seconds = 0.0;  ///< host wall time of the functional run
  /// Executor counters of the launch (schedule used, chunk count, steal
  /// activity); lets bench reports separate scheduling overhead from
  /// kernel time. Zero chunks for single_task.
  syclport::rt::LaunchStats executor{};
  /// How the autotuner served this launch: None when tuning is off or
  /// the site is not tunable, Exploring while a search candidate ran,
  /// Exploiting once the winner is locked in. tune_config is the
  /// serving Config's wire rendering ("" for None) - together these
  /// make warm-run verification ("zero explored launches") a log query.
  syclport::rt::autotune::Phase tune_phase =
      syclport::rt::autotune::Phase::None;
  std::string tune_config;
  /// Kernel-variant id that executed this launch ("rt2v4u1", with a
  /// "cb<n>" suffix when the cache-blocked traversal ran; "" when the
  /// serving config carries no variant axes - the reference loop).
  std::string tune_variant;
  /// Transfer-seed provenance: the key of the already-tuned site (plus
  /// "@fingerprint" for a cross-machine donor) that seeded this site's
  /// search pool; "" for a full (unseeded) search.
  std::string tune_seed;
  /// True when the launch took the streaming path: every written
  /// accessor was discard_write, so the executor pinned the
  /// placement-preserving static schedule (unless the tuner overrode
  /// it).
  bool streaming = false;
};

/// One asynchronous command group as the scheduler saw it.
struct command_record {
  std::string name;
  std::uint64_t queue_id = 0;
  detail::CommandProfile profile;  ///< timestamps + dep_edges + pool use
};

/// One fused-chain execution as ops::LoopChain saw it: how the captured
/// dataflow was partitioned and how much DRAM round-trip traffic the
/// fused schedule eliminated (bench/ablation_fusion and the study
/// report read these; docs/fusion.md).
struct fusion_record {
  std::string chain;             ///< per-composition chain site name
  std::size_t loops = 0;         ///< captured loops
  std::size_t segments = 0;      ///< segments after dataflow partitioning
  std::size_t tile = 0;          ///< slow-dim tile depth used (0 = unfused)
  bool fused = false;            ///< tiled fused path taken
  double fusable_bytes = 0.0;    ///< internal producer->consumer bound
  double eliminated_bytes = 0.0; ///< modeled DRAM bytes eliminated
  double rw_copy_bytes = 0.0;    ///< RW double-buffer save/restore traffic
};

/// One OP2 indirect-loop locality decision: which race-resolution
/// strategy, physical layout and mesh ordering the loop executed with,
/// and the gather line factor the locality analyser measured for that
/// combination next to what the hardware model's reuse-distance curve
/// predicts at LLC capacity. The study report and bench/ablation_layout
/// print these as the per-loop decision table (docs/unstructured.md).
struct locality_record {
  std::string loop;
  std::string strategy;       ///< "atomics" / "global" / ... / "staged"
  std::string layout;         ///< "aos" / "soa" / "aosoa"
  std::string ordering;       ///< "identity" / "rcm" / "hilbert" / ...
  double measured_gather = 1.0;   ///< cold gather line factor (measured)
  double predicted_gather = 1.0;  ///< model interp at host LLC capacity
};

/// Aggregate over the recorded fusion_records.
struct FusionStats {
  std::size_t chains = 0;
  std::size_t fused_chains = 0;
  double fusable_bytes = 0.0;
  double eliminated_bytes = 0.0;
  double rw_copy_bytes = 0.0;
};

/// Distribution summary of a set of timing samples: count, total, mean
/// and the p50/p95/p99 tail percentiles (stats::percentile). The study
/// report and the service telemetry print these columns so tail
/// behaviour is visible next to the means the paper quotes.
struct TimingSummary {
  std::size_t count = 0;
  double total_s = 0.0;
  double mean_s = 0.0;
  double p50_s = 0.0;
  double p95_s = 0.0;
  double p99_s = 0.0;
};

/// Summarize arbitrary samples (seconds) into a TimingSummary.
[[nodiscard]] TimingSummary summarize_timings(
    const std::vector<double>& seconds);

/// One study-service request outcome, reported by study::Service when
/// the request completes (docs/service.md). Recorded unconditionally -
/// the service counters are part of the process telemetry like
/// memory_stats(), not of the per-launch trace.
struct service_event {
  double latency_s = 0.0;  ///< submit-to-completion wall time
  bool computed = false;   ///< a fresh kernel sweep served it
  bool coalesced = false;  ///< rode an identical in-flight request
  bool cache_hit = false;  ///< served by the content-addressed cache
  bool error = false;      ///< completed with a typed error
  bool stale = false;      ///< degraded mode: last good result, flagged
};

/// One elastic-recovery event, reported by mpi::run_elastic when a
/// failed epoch is rolled back to its last auto-checkpoint and resumed
/// (docs/resilience.md "Elastic recovery"). Recorded unconditionally,
/// like service events: recovery is process telemetry, not part of the
/// per-launch trace.
struct recovery_record {
  std::uint64_t epoch = 0;      ///< index of the epoch that failed
  std::string policy;           ///< "shrink" / "respawn"
  int ranks_before = 0;         ///< world size of the failed epoch
  int ranks_after = 0;          ///< world size resuming the next epoch
  int failed_rank = -1;         ///< victim rank id in the failed epoch
  double detect_ms = 0.0;       ///< rank death -> driver classification
  int rollback_steps = 0;       ///< completed steps discarded by rollback
  std::uint64_t agreement = 0;  ///< deterministic epoch-agreement token
};

/// Cumulative study-service telemetry for this process.
struct ServiceTelemetry {
  std::uint64_t completed = 0;
  std::uint64_t computed = 0;
  std::uint64_t coalesced = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t errors = 0;
  std::uint64_t stale = 0;  ///< degraded-mode stale-cache completions
  TimingSummary latency;  ///< over the retained latency samples

  [[nodiscard]] double cache_hit_rate() const {
    return completed == 0 ? 0.0
                          : static_cast<double>(cache_hits) /
                                static_cast<double>(completed);
  }
};

/// Process-wide, thread-safe launch log.
class launch_log {
 public:
  static launch_log& instance();

  void set_enabled(bool on) {
    std::lock_guard lock(mu_);
    enabled_.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  void append(launch_record rec) {
    std::lock_guard lock(mu_);
    if (enabled_.load(std::memory_order_relaxed))
      records_.push_back(std::move(rec));
  }

  void append_command(command_record rec) {
    std::lock_guard lock(mu_);
    if (enabled_.load(std::memory_order_relaxed))
      commands_.push_back(std::move(rec));
  }

  void append_fusion(fusion_record rec) {
    std::lock_guard lock(mu_);
    if (enabled_.load(std::memory_order_relaxed))
      fusions_.push_back(std::move(rec));
  }

  void append_locality(locality_record rec) {
    std::lock_guard lock(mu_);
    if (enabled_.load(std::memory_order_relaxed))
      localities_.push_back(std::move(rec));
  }

  [[nodiscard]] std::vector<launch_record> snapshot() const {
    std::lock_guard lock(mu_);
    return records_;
  }

  [[nodiscard]] std::vector<command_record> commands_snapshot() const {
    std::lock_guard lock(mu_);
    return commands_;
  }

  [[nodiscard]] std::vector<fusion_record> fusions_snapshot() const {
    std::lock_guard lock(mu_);
    return fusions_;
  }

  [[nodiscard]] std::vector<locality_record> localities_snapshot() const {
    std::lock_guard lock(mu_);
    return localities_;
  }

  [[nodiscard]] FusionStats fusion_stats() const {
    std::lock_guard lock(mu_);
    FusionStats fs;
    for (const fusion_record& r : fusions_) {
      fs.chains += 1;
      fs.fused_chains += r.fused ? 1 : 0;
      fs.fusable_bytes += r.fusable_bytes;
      fs.eliminated_bytes += r.eliminated_bytes;
      fs.rw_copy_bytes += r.rw_copy_bytes;
    }
    return fs;
  }

  /// p50/p95/p99 summary over host_seconds of every recorded launch.
  [[nodiscard]] TimingSummary timing_summary() const;

  /// Same, split per kernel site (name-sorted) - the study report's
  /// per-kernel tail-latency table.
  [[nodiscard]] std::vector<std::pair<std::string, TimingSummary>>
  kernel_timing_summaries() const;

  /// Record one study-service request outcome (always on; cheap).
  /// Latency samples are retained up to a fixed cap so a multi-hour
  /// soak cannot grow the log unboundedly - p99 over the first 64K
  /// samples is plenty stable.
  void append_service(const service_event& e);

  [[nodiscard]] ServiceTelemetry service_telemetry() const;

  /// Record one elastic-recovery event (always on; bounded).
  void append_recovery(recovery_record rec);

  [[nodiscard]] std::vector<recovery_record> recovery_snapshot() const {
    std::lock_guard lock(mu_);
    return recoveries_;
  }

  void clear() {
    std::lock_guard lock(mu_);
    records_.clear();
    commands_.clear();
    fusions_.clear();
    localities_.clear();
    service_ = ServiceTelemetry{};
    service_latencies_.clear();
    recoveries_.clear();
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mu_);
    return records_.size();
  }

  [[nodiscard]] std::size_t commands_size() const {
    std::lock_guard lock(mu_);
    return commands_.size();
  }

  /// Allocation/page-placement telemetry alongside the launch records:
  /// pool hit rate, bytes first-touched, huge-page coverage, streaming
  /// fill/copy traffic (cumulative process-wide counters from the
  /// rt::mem subsystem).
  [[nodiscard]] static syclport::rt::mem::MemStats memory_stats() {
    return syclport::rt::mem::stats();
  }

  /// Fault-injection/recovery telemetry alongside the launch records:
  /// per-site injected and recovered counts (all zero unless
  /// SYCLPORT_FAULT armed a plan; docs/resilience.md). Chaos runs and
  /// the study report read this to prove every injected fault was
  /// survived.
  [[nodiscard]] static syclport::rt::fault::FaultStats fault_stats() {
    return syclport::rt::fault::stats();
  }

 private:
  launch_log() = default;
  mutable std::mutex mu_;
  std::atomic<bool> enabled_{false};
  std::vector<launch_record> records_;
  std::vector<command_record> commands_;
  std::vector<fusion_record> fusions_;
  std::vector<locality_record> localities_;
  ServiceTelemetry service_;  ///< latency field filled on snapshot
  std::vector<double> service_latencies_;
  std::vector<recovery_record> recoveries_;
};

}  // namespace sycl
