#pragma once
/// \file device.hpp
/// miniSYCL device descriptions. All devices execute on the host thread
/// pool; the profile fields describe the *modeled* device so that
/// work-group size limits and runtime heuristics behave like the real
/// target (the hwmodel layer attaches full performance descriptors).

#include <cstddef>
#include <string>
#include <utility>

namespace sycl {

/// Static description of a device as seen through the SYCL API.
struct device_profile {
  std::string name = "syclport host";
  bool is_gpu = false;
  std::size_t max_work_group_size = 1024;
  std::size_t sub_group_size = 8;      ///< SIMD/warp width in work-items
  std::size_t compute_units = 1;
};

class device {
 public:
  device() = default;
  explicit device(device_profile p) : profile_(std::move(p)) {}

  [[nodiscard]] const device_profile& profile() const { return profile_; }
  [[nodiscard]] const std::string& name() const { return profile_.name; }
  [[nodiscard]] bool is_gpu() const { return profile_.is_gpu; }
  [[nodiscard]] bool is_cpu() const { return !profile_.is_gpu; }
  [[nodiscard]] std::size_t max_work_group_size() const {
    return profile_.max_work_group_size;
  }

  /// The default host device.
  static device host() { return device(device_profile{}); }

  /// A generic GPU-shaped device (warp width 32), useful in tests.
  static device generic_gpu() {
    return device(device_profile{"syclport generic gpu", true, 1024, 32, 64});
  }

 private:
  device_profile profile_{};
};

}  // namespace sycl
