// Locality & layout engine tests: RCM/SFC renumbering (bandwidth and
// gather reduction, permutation algebra, end-to-end mesh consistency),
// physical-layout transcoding, the staged gather/scatter lowering's
// bit-exactness contract, and layout/ordering-canonical checkpoints.

#include <gtest/gtest.h>

#include <cstdio>
#include <numeric>
#include <random>
#include <stdexcept>
#include <vector>

#include "apps/mgcfd/mgcfd.hpp"
#include "op2/checkpoint.hpp"
#include "op2/op2.hpp"

namespace op2 = syclport::op2;
namespace apps = syclport::apps;
using syclport::Strategy;

namespace {

/// A 2D grid mesh (nv = ny*nx vertices, edges connect 4-neighbours).
struct GridMesh {
  op2::Set vertices;
  op2::Set edges;
  op2::Map e2v;

  static std::size_t edge_count(std::size_t ny, std::size_t nx) {
    return ny * (nx - 1) + (ny - 1) * nx;
  }

  GridMesh(std::size_t ny, std::size_t nx)
      : vertices("v", ny * nx),
        edges("e", edge_count(ny, nx)),
        e2v(edges, vertices, 2, "e2v") {
    std::size_t e = 0;
    for (std::size_t j = 0; j < ny; ++j)
      for (std::size_t i = 0; i + 1 < nx; ++i, ++e) {
        e2v.at(e, 0) = static_cast<int>(j * nx + i);
        e2v.at(e, 1) = static_cast<int>(j * nx + i + 1);
      }
    for (std::size_t j = 0; j + 1 < ny; ++j)
      for (std::size_t i = 0; i < nx; ++i, ++e) {
        e2v.at(e, 0) = static_cast<int>(j * nx + i);
        e2v.at(e, 1) = static_cast<int>((j + 1) * nx + i);
      }
  }
};

op2::Options opts(Strategy s, op2::Exec x = op2::Exec::Threads) {
  op2::Options o;
  o.strategy = s;
  o.exec = x;
  o.block_size = 16;
  o.tune = false;  // deterministic schedules: no tuner exploration
  return o;
}

std::vector<int> random_permutation(std::size_t n, std::mt19937& rng) {
  std::vector<int> p(n);
  std::iota(p.begin(), p.end(), 0);
  std::shuffle(p.begin(), p.end(), rng);
  return p;
}

}  // namespace

// --- renumbering -------------------------------------------------------------

TEST(LocalityRenumber, RcmReducesBandwidthOnScrambledRotor) {
  auto mesh = apps::mgcfd::build_rotor_mesh(12, 10, 8, 1);
  auto& lvl = mesh.levels.front();
  // Scramble the node labels to destroy the generator's lexicographic
  // ordering, then let RCM recover a banded numbering.
  std::mt19937 rng(11);
  op2::relabel_map_targets(*lvl.e2n,
                           random_permutation(lvl.nodes->size(), rng));
  const std::size_t before = op2::map_bandwidth(*lvl.e2n);
  const auto perm = op2::order_rcm(*lvl.e2n);
  op2::relabel_map_targets(*lvl.e2n, perm);
  const std::size_t after = op2::map_bandwidth(*lvl.e2n);
  EXPECT_LT(after, before / 2) << "RCM must at least halve the bandwidth "
                               << "of a randomly labeled rotor mesh";
  lvl.e2n->check();
}

TEST(LocalityRenumber, SfcOrderingsReduceGatherOnScrambledMesh) {
  // Morton and Hilbert node orders must shrink the measured gather
  // line factor of a scrambled mesh's natural-order sweep.
  for (op2::Ordering o : {op2::Ordering::Morton, op2::Ordering::Hilbert}) {
    auto mesh = apps::mgcfd::build_rotor_mesh(12, 10, 8, 1);
    auto& lvl = mesh.levels.front();
    std::mt19937 rng(13);
    const auto scramble = random_permutation(lvl.nodes->size(), rng);
    op2::relabel_map_targets(*lvl.e2n, scramble);
    const auto inv = op2::inverse_permutation(scramble);
    std::vector<std::array<double, 3>> sc(lvl.coords.size());
    for (std::size_t i = 0; i < sc.size(); ++i)
      sc[static_cast<std::size_t>(inv[i])] = lvl.coords[i];
    lvl.coords = sc;

    std::vector<int> ident(lvl.edges->size());
    std::iota(ident.begin(), ident.end(), 0);
    const auto before = op2::measure_gather(*lvl.e2n, 5, 8, ident);
    const auto nperm = o == op2::Ordering::Morton
                           ? op2::order_morton(lvl.coords)
                           : op2::order_hilbert(lvl.coords);
    op2::relabel_map_targets(*lvl.e2n, nperm);
    const auto eperm = op2::order_by_min_target(*lvl.e2n);
    op2::permute_map(*lvl.e2n, eperm);
    const auto after = op2::measure_gather(*lvl.e2n, 5, 8, ident);
    EXPECT_LT(after.line_factor, before.line_factor)
        << "ordering " << syclport::op2::to_string(o);
  }
}

TEST(LocalityRenumber, InversePermutationFuzz) {
  std::mt19937 rng(17);
  for (int trial = 0; trial < 16; ++trial) {
    const std::size_t n = 1 + rng() % 200;
    const auto perm = random_permutation(n, rng);
    const auto inv = op2::inverse_permutation(perm);
    ASSERT_EQ(inv.size(), n);
    for (std::size_t i = 0; i < n; ++i) {
      // apply-then-invert and invert-then-apply are both the identity
      EXPECT_EQ(inv[static_cast<std::size_t>(perm[i])], static_cast<int>(i));
      EXPECT_EQ(perm[static_cast<std::size_t>(inv[i])], static_cast<int>(i));
    }
  }
  EXPECT_THROW(op2::inverse_permutation({0, 0, 1}), std::invalid_argument);
}

TEST(LocalityRenumber, MinTargetTieBreaksOnElementId) {
  // Every edge shares minimum target 0: the order must be exactly the
  // element ids, ascending, regardless of the sort implementation.
  op2::Set verts("v", 8), edges("e", 6);
  op2::Map e2v(edges, verts, 2, "e2v");
  for (std::size_t e = 0; e < 6; ++e) {
    e2v.at(e, 0) = 0;
    e2v.at(e, 1) = static_cast<int>(e + 1);
  }
  const auto perm = op2::order_by_min_target(e2v);
  for (std::size_t e = 0; e < 6; ++e)
    EXPECT_EQ(perm[e], static_cast<int>(e));
}

TEST(LocalityRenumber, RenumberedMeshReproducesSolverAnswer) {
  // End-to-end consistency: a wrongly permuted map/coord/dat anywhere
  // in renumber_mesh would change the physics, not just the order.
  auto run = [](op2::Ordering o) {
    auto mesh = apps::mgcfd::build_rotor_mesh(10, 8, 6, 2);
    apps::mgcfd::renumber_mesh(mesh, o);
    return apps::run_mgcfd(opts(Strategy::Atomics, op2::Exec::Serial), mesh,
                           2)
        .checksum;
  };
  const double ref = run(op2::Ordering::Identity);
  for (op2::Ordering o : {op2::Ordering::MinTarget, op2::Ordering::RCM,
                          op2::Ordering::Morton, op2::Ordering::Hilbert})
    EXPECT_NEAR(run(o), ref, 1e-8 * std::abs(ref))
        << "ordering " << syclport::op2::to_string(o);
}

TEST(LocalityRenumber, RenumberMeshRecordsPermutations) {
  auto mesh = apps::mgcfd::build_rotor_mesh(10, 8, 6, 2);
  apps::mgcfd::renumber_mesh(mesh, op2::Ordering::RCM);
  // RCM reverses the lexicographic order at minimum, so both sets must
  // carry a recorded (invertible) permutation.
  auto& lvl = mesh.levels.front();
  EXPECT_TRUE(lvl.nodes->renumbered());
  std::vector<bool> seen(lvl.nodes->size(), false);
  for (std::size_t i = 0; i < lvl.nodes->size(); ++i) {
    const std::size_t o = lvl.nodes->to_original(i);
    ASSERT_LT(o, seen.size());
    EXPECT_FALSE(seen[o]);
    seen[o] = true;
  }
}

// --- layout transcode --------------------------------------------------------

TEST(LocalityLayout, TranscodeRoundTripPreservesValuesExactly) {
  op2::Set s("n", 37);  // deliberately not a multiple of the AoSoA width
  op2::Dat<double> d(s, 5, "d");
  std::mt19937 rng(23);
  std::uniform_real_distribution<double> dist(-1e3, 1e3);
  std::vector<double> expect(37 * 5);
  for (std::size_t e = 0; e < 37; ++e)
    for (int c = 0; c < 5; ++c) {
      const double v = dist(rng);
      d.at(e, c) = v;
      expect[e * 5 + static_cast<std::size_t>(c)] = v;
    }
  using L = op2::Layout;
  for (L l : {L::SoA, L::AoSoA, L::AoS, L::AoSoA, L::SoA, L::AoS}) {
    d.set_layout(l);
    EXPECT_EQ(d.layout(), l);
    for (std::size_t e = 0; e < 37; ++e)
      for (int c = 0; c < 5; ++c)
        ASSERT_EQ(d.at(e, c), expect[e * 5 + static_cast<std::size_t>(c)])
            << "layout " << syclport::op2::to_string(l) << " (" << e << ","
            << c << ")";
  }
}

TEST(LocalityLayout, ElemRequiresAoS) {
  op2::Set s("n", 8);
  op2::Dat<double> d(s, 2, "d");
  EXPECT_NO_THROW((void)d.elem(0));
  d.set_layout(op2::Layout::SoA);
  EXPECT_THROW((void)d.elem(0), std::logic_error);
}

// --- staged lowering ---------------------------------------------------------

namespace {

/// Reference result of the test kernel applied serially in element
/// order: the accumulation order the staged ordered scatter guarantees.
std::vector<double> staged_reference(const GridMesh& mesh,
                                     const std::vector<double>& w,
                                     const std::vector<double>& x) {
  std::vector<double> out(mesh.vertices.size(), 0.0);
  for (std::size_t e = 0; e < mesh.edges.size(); ++e) {
    const auto a = static_cast<std::size_t>(mesh.e2v.at(e, 0));
    const auto b = static_cast<std::size_t>(mesh.e2v.at(e, 1));
    out[a] += w[e] * x[b];
    out[b] -= w[e] * x[a];
  }
  return out;
}

/// Run the kernel under (strategy, exec, layout) and return the vertex
/// sums. The kernel mixes all four argument kinds the stager handles:
/// direct-R, two indirect-R gathers, two INC scatters.
std::vector<double> run_staged_case(GridMesh& mesh, Strategy s, op2::Exec x,
                                    op2::Layout lay,
                                    const std::vector<double>& w,
                                    const std::vector<double>& xv) {
  op2::Context ctx(opts(s, x));
  op2::Dat<double> ew(mesh.edges, 1, "w");
  op2::Dat<double> vx(mesh.vertices, 1, "x");
  op2::Dat<double> vsum(mesh.vertices, 1, "sum");
  for (std::size_t e = 0; e < w.size(); ++e) ew.at(e) = w[e];
  for (std::size_t v = 0; v < xv.size(); ++v) vx.at(v) = xv[v];
  vsum.fill(0.0);
  vx.set_layout(lay);
  vsum.set_layout(lay);
  op2::par_loop(ctx, {"staged_case", 4.0}, mesh.edges,
                [](const double* wv, const double* xa, const double* xb,
                   op2::Inc<double> va, op2::Inc<double> vb) {
                  va.add(0, wv[0] * xb[0]);
                  vb.add(0, -wv[0] * xa[0]);
                },
                op2::arg_direct(ew, op2::Acc::R),
                op2::arg_indirect(vx, mesh.e2v, 0, op2::Acc::R),
                op2::arg_indirect(vx, mesh.e2v, 1, op2::Acc::R),
                op2::arg_inc(vsum, mesh.e2v, 0),
                op2::arg_inc(vsum, mesh.e2v, 1));
  std::vector<double> out(mesh.vertices.size());
  for (std::size_t v = 0; v < out.size(); ++v) out[v] = vsum.at(v);
  return out;
}

}  // namespace

TEST(LocalityStaged, BitExactAcrossExecAndLayoutMatrix) {
  GridMesh mesh(20, 20);
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<double> w(mesh.edges.size()), x(mesh.vertices.size());
  for (auto& v : w) v = dist(rng);
  for (auto& v : x) v = dist(rng);
  const auto ref = staged_reference(mesh, w, x);

  using op2::Exec;
  using op2::Layout;
  for (Exec e : {Exec::Serial, Exec::Threads, Exec::Sycl}) {
    // Staged reproduces the serial element-order accumulation bit for
    // bit at any thread count and under any operand layout: Phase B
    // applies every target's increments in element order.
    for (Layout lay : {Layout::AoS, Layout::SoA, Layout::AoSoA}) {
      const auto got = run_staged_case(mesh, Strategy::Staged, e, lay, w, x);
      for (std::size_t v = 0; v < ref.size(); ++v)
        ASSERT_EQ(got[v], ref[v])
            << "staged exec " << static_cast<int>(e) << " layout "
            << syclport::op2::to_string(lay) << " vertex " << v;
    }
    // Non-AoS operands force the staged path even when the context asks
    // for an eager strategy - same bits again.
    const auto coerced =
        run_staged_case(mesh, Strategy::Atomics, e, Layout::SoA, w, x);
    for (std::size_t v = 0; v < ref.size(); ++v)
      ASSERT_EQ(coerced[v], ref[v]) << "coerced vertex " << v;
  }

  // Colouring schedules are deterministic (same schedule at any thread
  // count: bit-equal to their own serial run) and FP-close to the
  // element-order reference; atomics is FP-close only.
  for (Strategy s : {Strategy::GlobalColor, Strategy::Hierarchical}) {
    const auto serial =
        run_staged_case(mesh, s, Exec::Serial, Layout::AoS, w, x);
    for (Exec e : {Exec::Threads, Exec::Sycl}) {
      const auto got = run_staged_case(mesh, s, e, Layout::AoS, w, x);
      for (std::size_t v = 0; v < ref.size(); ++v)
        ASSERT_EQ(got[v], serial[v]) << "strategy "
                                     << syclport::to_string(s) << " " << v;
    }
    for (std::size_t v = 0; v < ref.size(); ++v)
      ASSERT_NEAR(serial[v], ref[v], 1e-12);
  }
  for (Exec e : {Exec::Threads, Exec::Sycl}) {
    const auto got =
        run_staged_case(mesh, Strategy::Atomics, e, Layout::AoS, w, x);
    for (std::size_t v = 0; v < ref.size(); ++v)
      ASSERT_NEAR(got[v], ref[v], 1e-12);
  }
}

TEST(LocalityStaged, DirectLoopAutoStagesNonAoS) {
  op2::Set verts("n", 203);
  op2::Context ctx(opts(Strategy::Atomics, op2::Exec::Threads));
  op2::Dat<double> x(verts, 3, "x"), y(verts, 3, "y");
  for (std::size_t e = 0; e < verts.size(); ++e)
    for (int c = 0; c < 3; ++c)
      x.at(e, c) = 0.25 * static_cast<double>(e) + c;
  x.set_layout(op2::Layout::SoA);
  y.set_layout(op2::Layout::AoSoA);
  op2::par_loop(ctx, {"axpy"}, verts,
                [](double* yy, const double* xx) {
                  for (int c = 0; c < 3; ++c) yy[c] = 2.0 * xx[c] + 1.0;
                },
                op2::arg_direct(y, op2::Acc::W),
                op2::arg_direct(x, op2::Acc::R));
  for (std::size_t e = 0; e < verts.size(); ++e)
    for (int c = 0; c < 3; ++c)
      ASSERT_EQ(y.at(e, c), 2.0 * (0.25 * static_cast<double>(e) + c) + 1.0);
}

TEST(LocalityStaged, IndirectWriteRejected) {
  GridMesh mesh(6, 6);
  op2::Context ctx(opts(Strategy::Staged, op2::Exec::Serial));
  op2::Dat<double> vx(mesh.vertices, 1, "x");
  op2::Dat<double> vsum(mesh.vertices, 1, "s");
  EXPECT_THROW(
      op2::par_loop(ctx, {"bad"}, mesh.edges,
                    [](const double* a, op2::Inc<double> s) { s.add(0, a[0]); },
                    op2::arg_indirect(vx, mesh.e2v, 0, op2::Acc::RW),
                    op2::arg_inc(vsum, mesh.e2v, 1)),
      std::invalid_argument);
}

TEST(LocalityStaged, SubsetLoopRejectsNonAoS) {
  op2::Set verts("n", 16);
  op2::Context ctx(opts(Strategy::Atomics, op2::Exec::Serial));
  op2::Dat<double> x(verts, 1, "x");
  x.set_layout(op2::Layout::SoA);
  const std::vector<int> subset{0, 1, 2};
  EXPECT_THROW(op2::par_loop_subset(ctx, {"sub"}, verts, subset,
                                    [](double* v) { v[0] = 1.0; },
                                    op2::arg_direct(x, op2::Acc::W)),
               std::invalid_argument);
}

TEST(LocalityStaged, StagedProfileRecordsTwoLaunchesNoAtomics) {
  GridMesh mesh(10, 10);
  op2::Context ctx(opts(Strategy::Staged, op2::Exec::Serial));
  op2::Dat<double> ew(mesh.edges, 1, "w");
  op2::Dat<double> vres(mesh.vertices, 1, "r");
  op2::par_loop(ctx, {"flux"}, mesh.edges,
                [](const double* wv, op2::Inc<double> a, op2::Inc<double> b) {
                  a.add(0, wv[0]);
                  b.add(0, wv[0]);
                },
                op2::arg_direct(ew, op2::Acc::R),
                op2::arg_inc(vres, mesh.e2v, 0),
                op2::arg_inc(vres, mesh.e2v, 1));
  ASSERT_EQ(ctx.profiles.size(), 1u);
  EXPECT_TRUE(ctx.profiles[0].staged);
  EXPECT_EQ(ctx.profiles[0].launches, 2u);
  EXPECT_EQ(ctx.profiles[0].atomic_updates, 0u);
  EXPECT_GT(ctx.profiles[0].staged_bytes, 0.0);
}

// --- canonical checkpoints ---------------------------------------------------

TEST(LocalityCheckpoint, RoundTripAcrossOrderingAndLayout) {
  // A checkpoint taken on an RCM-renumbered AoS mesh restores
  // bit-identically into a Hilbert-renumbered mesh whose dat sits in a
  // different physical layout: serialized state is canonical
  // (creation-order AoS), so (ordering, layout) never leak into it.
  const std::string path = "test_locality_ckpt.bin";
  std::mt19937 rng(31);
  std::uniform_real_distribution<double> dist(-50.0, 50.0);
  std::vector<double> canon(10 * 8 * 6 * 3);
  for (auto& v : canon) v = dist(rng);

  op2::Context ctx(opts(Strategy::Atomics, op2::Exec::Serial));
  {
    auto mesh = apps::mgcfd::build_rotor_mesh(10, 8, 6, 1);
    apps::mgcfd::renumber_mesh(mesh, op2::Ordering::RCM);
    auto& nodes = *mesh.levels.front().nodes;
    op2::Dat<double> d(nodes, 3, "state");
    for (std::size_t e = 0; e < nodes.size(); ++e)
      for (int c = 0; c < 3; ++c)
        d.at(e, c) =
            canon[nodes.to_original(e) * 3 + static_cast<std::size_t>(c)];
    op2::checkpoint(ctx, path, d);
  }
  {
    auto mesh = apps::mgcfd::build_rotor_mesh(10, 8, 6, 1);
    apps::mgcfd::renumber_mesh(mesh, op2::Ordering::Hilbert);
    auto& nodes = *mesh.levels.front().nodes;
    op2::Dat<double> d(nodes, 3, "state");
    d.set_layout(op2::Layout::SoA);
    op2::restore(ctx, path, d);
    for (std::size_t e = 0; e < nodes.size(); ++e)
      for (int c = 0; c < 3; ++c)
        ASSERT_EQ(d.at(e, c),
                  canon[nodes.to_original(e) * 3 + static_cast<std::size_t>(c)])
            << "node " << e << " component " << c;
  }
  std::remove(path.c_str());
}

TEST(LocalityCheckpoint, FuzzRenumberCheckpointRestoreUnderOtherLayout) {
  // Randomized: permutations, layouts on both sides, several dims.
  std::mt19937 rng(37);
  std::uniform_real_distribution<double> dist(-9.0, 9.0);
  using L = op2::Layout;
  const L layouts[] = {L::AoS, L::SoA, L::AoSoA};
  op2::Context ctx(opts(Strategy::Atomics, op2::Exec::Serial));
  const std::string path = "test_locality_ckpt_fuzz.bin";
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t n = 20 + rng() % 60;
    const int dim = 1 + static_cast<int>(rng() % 4);
    std::vector<double> canon(n * static_cast<std::size_t>(dim));
    for (auto& v : canon) v = dist(rng);

    op2::Set sa("a", n);
    sa.note_permutation(random_permutation(n, rng));
    op2::Dat<double> da(sa, dim, "fuzz");
    da.set_layout(layouts[rng() % 3]);
    for (std::size_t e = 0; e < n; ++e)
      for (int c = 0; c < dim; ++c)
        da.at(e, c) = canon[sa.to_original(e) * static_cast<std::size_t>(dim) +
                            static_cast<std::size_t>(c)];
    op2::checkpoint(ctx, path, da);

    op2::Set sb("b", n);
    sb.note_permutation(random_permutation(n, rng));
    op2::Dat<double> db(sb, dim, "fuzz");
    db.set_layout(layouts[rng() % 3]);
    op2::restore(ctx, path, db);
    for (std::size_t e = 0; e < n; ++e)
      for (int c = 0; c < dim; ++c)
        ASSERT_EQ(db.at(e, c),
                  canon[sb.to_original(e) * static_cast<std::size_t>(dim) +
                        static_cast<std::size_t>(c)])
            << "trial " << trial;
  }
  std::remove(path.c_str());
}
