#include "runtime/autotune/cache.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace syclport::rt::autotune {

namespace {

/// Extract the value of `"field": "..."` from one line; nullopt when
/// the field is absent. Values never contain quotes (keys and configs
/// are built from identifier-ish characters only).
[[nodiscard]] std::optional<std::string> quoted_field(const std::string& line,
                                                      std::string_view field) {
  std::string probe = "\"";
  probe += field;
  probe += "\": \"";
  const auto at = line.find(probe);
  if (at == std::string::npos) return std::nullopt;
  const auto begin = at + probe.size();
  const auto end = line.find('"', begin);
  if (end == std::string::npos) return std::nullopt;
  return line.substr(begin, end - begin);
}

}  // namespace

bool write_cache(const std::string& path, const CacheData& data) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return false;
    out << "{ \"syclport_tune_cache\": 1,\n";
    out << "  \"fingerprint\": \"" << data.fingerprint << "\",\n";
    out << "  \"kernels\": [\n";
    for (std::size_t i = 0; i < data.entries.size(); ++i) {
      const auto& [key, cfg] = data.entries[i];
      out << "    { \"key\": \"" << key << "\", \"config\": \""
          << cfg.to_string() << "\" }"
          << (i + 1 < data.entries.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    if (!out.flush()) return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

std::optional<CacheData> read_cache(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  CacheData data;
  bool saw_header = false;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("\"syclport_tune_cache\"") != std::string::npos)
      saw_header = true;
    if (auto fp = quoted_field(line, "fingerprint")) {
      data.fingerprint = std::move(*fp);
      continue;
    }
    const auto key = quoted_field(line, "key");
    if (!key) continue;
    const auto cfg_text = quoted_field(line, "config");
    if (!cfg_text) continue;
    if (auto cfg = Config::parse(*cfg_text))
      data.entries.emplace_back(std::move(*key), std::move(*cfg));
  }
  if (!saw_header) return std::nullopt;
  return data;
}

}  // namespace syclport::rt::autotune
