#pragma once
/// \file autotune/fingerprint.hpp
/// Device fingerprint for the persistent tuning cache. A winning
/// configuration is only as portable as the machine it was measured on
/// (the paper's central point), so cached tunings are keyed by a
/// fingerprint of the executing device: logical core count, data-cache
/// sizes, and a measured BabelStream-style Triad bandwidth.
///
/// The Triad measurement sweeps a[i] = b[i] + s*c[i] over arrays far
/// larger than the LLC through the process thread pool - the same
/// kernel whose measured bandwidth anchors Table 1 (src/stream) -
/// and is quantized to whole log2(GB/s) steps so run-to-run noise
/// cannot invalidate the cache, while a move to a machine with
/// materially different bandwidth does.

#include <string>

namespace syclport::rt::autotune {

/// The cached process fingerprint, e.g.
/// `cores=8;l1d=32768;l2=1048576;llc=16777216;triad_log2=4`.
/// First call measures Triad (a few milliseconds); later calls return
/// the cached string.
[[nodiscard]] const std::string& device_fingerprint();

/// The raw Triad measurement behind the fingerprint, in GB/s.
[[nodiscard]] double fingerprint_triad_gbs();

}  // namespace syclport::rt::autotune
