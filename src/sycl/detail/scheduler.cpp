#include "sycl/detail/scheduler.hpp"

#include <algorithm>
#include <string_view>

#include "runtime/env.hpp"
#include "runtime/fault/fault.hpp"
#include "runtime/thread_pool.hpp"
#include "sycl/launch_log.hpp"

namespace sycl::detail {

namespace fault = syclport::rt::fault;

namespace {

/// The command the calling thread is currently executing, if any. Used
/// to exclude a command from its own synchronization points and to
/// detect worker-context host syncs (which must not block on sibling
/// commands - see the file comment in scheduler.hpp).
thread_local const Command* t_current_command = nullptr;

/// Retired commands are compacted out of inflight_ every this many
/// retirements (or when the scheduler drains) instead of one O(n)
/// erase per retire - the bulk of the per-launch DAG bookkeeping cost
/// measured by bench/ablation_async.
constexpr std::size_t kRetireEpoch = 32;

/// Free-list ceiling; beyond it released commands go back to the heap
/// (a burst of thousands of in-flight commands should not pin its
/// high-water memory forever).
constexpr std::size_t kPoolMax = 256;

[[nodiscard]] unsigned worker_count_from_env() {
  if (const auto v =
          syclport::rt::env::get_long("SYCLPORT_QUEUE_WORKERS", 1, 1024))
    return static_cast<unsigned>(*v);
  // Enough workers that independent commands overlap, few enough that
  // they do not crowd out the kernel thread pool; min 2 keeps the
  // concurrency visible on single-core CI machines.
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  return std::clamp(hw, 2u, 8u);
}

/// Command free list. Deleters of live commands hold the pool through a
/// shared_ptr, so a command released during static destruction still
/// has a pool to return to regardless of destruction order.
struct CommandPool {
  std::mutex mu;
  std::vector<std::unique_ptr<Command>> free;
};

[[nodiscard]] const std::shared_ptr<CommandPool>& command_pool() {
  static const std::shared_ptr<CommandPool> pool =
      std::make_shared<CommandPool>();
  return pool;
}

}  // namespace

std::shared_ptr<Command> acquire_command() {
  const auto& pool = command_pool();
  std::unique_ptr<Command> node;
  {
    std::lock_guard lock(pool->mu);
    if (!pool->free.empty()) {
      node = std::move(pool->free.back());
      pool->free.pop_back();
    }
  }
  if (!node) node = std::make_unique<Command>();
  return {node.release(), [pool](Command* c) {
            c->reset_for_reuse();
            std::lock_guard lock(pool->mu);
            if (pool->free.size() < kPoolMax)
              pool->free.emplace_back(c);
            else
              delete c;
          }};
}

std::uint64_t next_queue_id() noexcept {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

Scheduler& Scheduler::instance() {
  static Scheduler s;
  return s;
}

Scheduler::Scheduler()
    : nworkers_(worker_count_from_env()),
      epoch_(std::chrono::steady_clock::now()) {
  if (const auto v = syclport::rt::env::get_long("SYCLPORT_WATCHDOG_MS", 1,
                                                 86'400'000))
    watchdog_ms_ = *v;
}

Scheduler::~Scheduler() {
  wait_all();
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& w : workers_) w.join();
}

double Scheduler::now() const noexcept {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

bool Scheduler::on_worker() noexcept { return t_current_command != nullptr; }

bool Scheduler::concurrency_available() noexcept {
  // Read the override on every call (not cached): tests flip it between
  // cases to exercise both overlap strategies in one process.
  if (const auto v = syclport::rt::env::get("SYCLPORT_OVERLAP")) {
    if (*v == "queue") return true;
    if (*v == "inline") return false;
    syclport::rt::env::warn_invalid("SYCLPORT_OVERLAP", *v, "queue|inline");
  }
  return std::thread::hardware_concurrency() > 1;
}

void Scheduler::start_workers_locked() {
  // Touch the singletons commands use while running *before* the first
  // worker exists: function-local statics are destroyed in reverse
  // construction order, so this guarantees the kernel pool and the
  // launch log outlive every command the destructor may still drain.
  syclport::rt::ThreadPool::global();
  launch_log::instance();
  workers_.reserve(nworkers_);
  for (unsigned i = 0; i < nworkers_; ++i)
    workers_.emplace_back([this] { worker_loop(); });
  started_ = true;
}

void Scheduler::submit(std::shared_ptr<Command> cmd) {
  cmd->profile.submit_seconds = now();
  std::lock_guard lock(mu_);
  if (stop_) {  // static-destruction stragglers run inline
    for (auto& a : cmd->actions) a();
    cmd->done_.store(true, std::memory_order_release);
    return;
  }
  if (!started_) start_workers_locked();
  for (const auto& f : inflight_) {
    if (f->done()) continue;  // retired, awaiting the next epoch sweep
    bool dep = false;
    for (const auto& a : cmd->accesses) {
      for (const auto& b : f->accesses)
        if (access_conflict(a, b)) {
          dep = true;
          break;
        }
      if (dep) break;
    }
    if (!dep)
      for (const auto& e : cmd->explicit_deps)
        if (e.get() == f.get()) {
          dep = true;
          break;
        }
    if (dep) {
      f->dependents.push_back(cmd);
      ++cmd->unmet;
    }
  }
  cmd->explicit_deps.clear();  // retired deps contribute no edges
  cmd->profile.dep_edges = cmd->unmet;
  inflight_.push_back(cmd);
  inflight_count_.fetch_add(1, std::memory_order_release);
  if (cmd->unmet == 0) {
    // Injected completion reordering (sched.reorder): a rolled command
    // jumps the ready queue. DAG edges are still honored - only the
    // order among *independent* commands changes - so a correct program
    // must produce the same answer.
    if (fault::armed() && fault::roll(fault::Site::SchedReorder).fire)
      ready_.push_front(std::move(cmd));
    else
      ready_.push_back(std::move(cmd));
    cv_work_.notify_one();
  }
}

void Scheduler::worker_loop() {
  std::unique_lock lock(mu_);
  for (;;) {
    cv_work_.wait(lock, [&] { return stop_ || !ready_.empty(); });
    if (stop_) return;
    auto cmd = std::move(ready_.front());
    ready_.pop_front();
    // A command alone on the scheduler may fan its kernels out over the
    // whole pool; with siblings running (or queued), each command runs
    // its kernels serially so commands overlap *each other* instead of
    // fighting over the pool's blocking submit path.
    const bool solo = ready_.empty() && running_ == 0;
    ++running_;
    lock.unlock();
    run_command(*cmd, solo);
    lock.lock();
    --running_;
    retire_locked(cmd);
  }
}

void Scheduler::run_command(Command& cmd, bool solo) {
  const Command* prev = t_current_command;
  t_current_command = &cmd;
  cmd.profile.start_seconds = now();
  cmd.profile.pool_parallel = solo;
  try {
    if (fault::armed()) {
      // sched.delay stretches the command's execution window, exposing
      // completion-order assumptions; sched.throw models a kernel that
      // fails mid-flight and must surface through wait_and_throw() as
      // an exception_list entry, leaving the queue usable.
      if (const auto r = fault::roll(fault::Site::SchedDelay); r.fire)
        fault::inject_sleep(r.value, 100, 1500);
      if (fault::roll(fault::Site::SchedThrow).fire)
        throw fault::fault_injected_error(
            std::string("injected kernel failure in command '") + cmd.name +
            "'");
    }
    if (solo) {
      for (auto& a : cmd.actions) a();
    } else {
      syclport::rt::ScopedSerialExecution serial;
      for (auto& a : cmd.actions) a();
    }
  } catch (...) {
    cmd.error = std::current_exception();
  }
  cmd.profile.end_seconds = now();
  t_current_command = prev;
  auto& lg = launch_log::instance();
  if (lg.enabled())
    lg.append_command(command_record{cmd.name, cmd.queue_id, cmd.profile});
}

void Scheduler::retire_locked(const std::shared_ptr<Command>& cmd) {
  cmd->done_.store(true, std::memory_order_release);
  if (cmd->error)
    errors_.push_back({cmd.get(), cmd->queue_id, cmd->error});
  for (auto& dep : cmd->dependents)
    if (--dep->unmet == 0) {
      ready_.push_back(dep);
      cv_work_.notify_one();
    }
  cmd->dependents.clear();
  // Epoch retirement: leave the node in inflight_ (scans skip done()
  // commands) and compact in bulk - one O(n) sweep amortized over
  // kRetireEpoch retirements instead of an O(n) erase on every one.
  const std::size_t live =
      inflight_count_.fetch_sub(1, std::memory_order_release) - 1;
  if (live == 0) {
    inflight_.clear();  // drained: every node is done, release them all
    retired_since_sweep_ = 0;
  } else if (++retired_since_sweep_ >= kRetireEpoch) {
    std::erase_if(inflight_, [](const auto& f) { return f->done(); });
    retired_since_sweep_ = 0;
  }
  cv_done_.notify_all();
}

bool Scheduler::help_one_locked(std::unique_lock<std::mutex>& lock) {
  if (ready_.empty()) return false;
  auto cmd = std::move(ready_.front());
  ready_.pop_front();
  const bool solo = ready_.empty() && running_ == 0;
  ++running_;
  lock.unlock();
  run_command(*cmd, solo);
  lock.lock();
  --running_;
  retire_locked(cmd);
  return true;
}

template <typename Pred>
void Scheduler::wait_helping(std::unique_lock<std::mutex>& lock, Pred&& pred) {
  // Watchdog deadline, armed only when SYCLPORT_WATCHDOG_MS is set. It
  // resets whenever this thread makes progress (helps a command) or a
  // retirement wakes it; it fires only after a full quiet window with
  // the predicate still unsatisfied and nothing to help with - i.e. a
  // genuine hang, not a long kernel this thread can observe finishing.
  using clock = std::chrono::steady_clock;
  const auto window = std::chrono::milliseconds(watchdog_ms_);
  auto deadline = watchdog_ms_ > 0 ? clock::now() + window
                                   : clock::time_point::max();
  for (;;) {
    if (pred()) return;
    // Run ready work on this thread instead of sleeping: the awaited
    // command (or one of its predecessors) may be among it, and every
    // command helped is one fewer worker handoff.
    if (help_one_locked(lock)) {
      if (watchdog_ms_ > 0) deadline = clock::now() + window;
      continue;
    }
    if (watchdog_ms_ <= 0) {
      cv_done_.wait(lock, [&] { return pred() || !ready_.empty(); });
      continue;
    }
    if (cv_done_.wait_until(lock, deadline,
                            [&] { return pred() || !ready_.empty(); })) {
      deadline = clock::now() + window;  // a retirement woke us: progress
      continue;
    }
    std::size_t stuck = 0;
    for (const auto& f : inflight_)
      if (!f->done()) ++stuck;
    throw fault::watchdog_error(
        "sycl launch watchdog: no scheduler progress for " +
            std::to_string(watchdog_ms_) + " ms with " +
            std::to_string(stuck) + " command(s) in flight",
        stuck);
  }
}

void Scheduler::wait_queue(std::uint64_t queue_id) {
  std::unique_lock lock(mu_);
  wait_helping(lock, [&] {
    return std::none_of(inflight_.begin(), inflight_.end(),
                        [&](const auto& f) {
                          return !f->done() && f->queue_id == queue_id &&
                                 f.get() != t_current_command;
                        });
  });
}

void Scheduler::wait_all() {
  std::unique_lock lock(mu_);
  wait_helping(lock, [&] {
    return std::none_of(inflight_.begin(), inflight_.end(),
                        [&](const auto& f) {
                          return !f->done() && f.get() != t_current_command;
                        });
  });
}

void Scheduler::wait_address(const void* ptr) {
  std::unique_lock lock(mu_);
  wait_helping(lock, [&] {
    return std::none_of(inflight_.begin(), inflight_.end(), [&](const auto& f) {
      if (f->done() || f.get() == t_current_command) return false;
      for (const auto& a : f->accesses)
        if (a.ptr == ptr) return true;
      return false;
    });
  });
}

void Scheduler::wait_conflicts(const std::vector<AccessRecord>& accesses) {
  // From a worker this is a no-op: the enclosing command was already
  // ordered at submit, and blocking on a sibling command here could
  // deadlock (the sibling may be doing the same).
  if (on_worker()) return;
  std::unique_lock lock(mu_);
  wait_helping(lock, [&] {
    return std::none_of(inflight_.begin(), inflight_.end(), [&](const auto& f) {
      if (f->done()) return false;
      if (accesses.empty()) return true;  // undeclared: conflicts with all
      for (const auto& a : accesses)
        for (const auto& b : f->accesses)
          if (access_conflict(a, b)) return true;
      return false;
    });
  });
}

void Scheduler::wait_command(const std::shared_ptr<Command>& cmd) {
  if (!cmd || cmd->done() || cmd.get() == t_current_command) return;
  std::unique_lock lock(mu_);
  wait_helping(lock, [&] { return cmd->done(); });
}

std::exception_ptr Scheduler::consume_error(const Command* cmd) {
  std::lock_guard lock(mu_);
  for (auto it = errors_.begin(); it != errors_.end(); ++it)
    if (it->cmd == cmd) {
      std::exception_ptr e = it->error;
      errors_.erase(it);
      return e;
    }
  return nullptr;
}

std::vector<std::exception_ptr> Scheduler::consume_queue_errors(
    std::uint64_t queue_id) {
  std::lock_guard lock(mu_);
  std::vector<std::exception_ptr> out;
  std::erase_if(errors_, [&](const StoredError& se) {
    if (se.queue_id != queue_id) return false;
    out.push_back(se.error);
    return true;
  });
  return out;
}

}  // namespace sycl::detail
