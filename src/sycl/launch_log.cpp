#include "sycl/launch_log.hpp"

#include <algorithm>
#include <map>

#include "core/statistics.hpp"

namespace sycl {

namespace {

/// Retained service latency samples: enough for a stable p99 over a
/// full soak without letting a long-lived daemon grow the log forever.
constexpr std::size_t kServiceLatencyCap = 1u << 16;

}  // namespace

launch_log& launch_log::instance() {
  static launch_log log;
  return log;
}

TimingSummary summarize_timings(const std::vector<double>& seconds) {
  TimingSummary ts;
  ts.count = seconds.size();
  for (double s : seconds) ts.total_s += s;
  if (ts.count == 0) return ts;
  ts.mean_s = ts.total_s / static_cast<double>(ts.count);
  ts.p50_s = syclport::stats::percentile(seconds, 50.0);
  ts.p95_s = syclport::stats::percentile(seconds, 95.0);
  ts.p99_s = syclport::stats::percentile(seconds, 99.0);
  return ts;
}

TimingSummary launch_log::timing_summary() const {
  std::vector<double> samples;
  {
    std::lock_guard lock(mu_);
    samples.reserve(records_.size());
    for (const launch_record& r : records_) samples.push_back(r.host_seconds);
  }
  return summarize_timings(samples);
}

std::vector<std::pair<std::string, TimingSummary>>
launch_log::kernel_timing_summaries() const {
  std::map<std::string, std::vector<double>> per_kernel;
  {
    std::lock_guard lock(mu_);
    for (const launch_record& r : records_)
      per_kernel[r.kernel_name].push_back(r.host_seconds);
  }
  std::vector<std::pair<std::string, TimingSummary>> out;
  out.reserve(per_kernel.size());
  for (const auto& [name, samples] : per_kernel)
    out.emplace_back(name, summarize_timings(samples));
  return out;
}

void launch_log::append_service(const service_event& e) {
  std::lock_guard lock(mu_);
  service_.completed += 1;
  service_.computed += e.computed ? 1 : 0;
  service_.coalesced += e.coalesced ? 1 : 0;
  service_.cache_hits += e.cache_hit ? 1 : 0;
  service_.errors += e.error ? 1 : 0;
  service_.stale += e.stale ? 1 : 0;
  if (service_latencies_.size() < kServiceLatencyCap)
    service_latencies_.push_back(e.latency_s);
}

void launch_log::append_recovery(recovery_record rec) {
  // Same always-on contract as service events; a run recovering more
  // than this many times is stuck, not elastic.
  constexpr std::size_t kRecoveryCap = 4096;
  std::lock_guard lock(mu_);
  if (recoveries_.size() < kRecoveryCap) recoveries_.push_back(std::move(rec));
}

ServiceTelemetry launch_log::service_telemetry() const {
  ServiceTelemetry t;
  std::vector<double> samples;
  {
    std::lock_guard lock(mu_);
    t = service_;
    samples = service_latencies_;
  }
  t.latency = summarize_timings(samples);
  return t;
}

}  // namespace sycl
