// Unit tests for the runtime substrate: thread pool scheduling and
// fiber-based work-group barriers.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "runtime/fiber.hpp"
#include "runtime/thread_pool.hpp"

namespace rt = syclport::rt;

TEST(ThreadPool, RunsEveryChunkExactlyOnce) {
  rt::ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.run_chunks(100, [&](std::size_t c) { hits[c].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForCoversRangeWithoutOverlap) {
  rt::ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1234);
  pool.parallel_for(1234, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SizeOnePoolIsSerial) {
  rt::ThreadPool pool(1);
  int counter = 0;  // unsynchronized on purpose: must be safe when serial
  pool.run_chunks(50, [&](std::size_t) { ++counter; });
  EXPECT_EQ(counter, 50);
}

TEST(ThreadPool, EmptyJobIsNoop) {
  rt::ThreadPool pool(2);
  pool.run_chunks(0, [&](std::size_t) { FAIL() << "must not run"; });
  pool.parallel_for(0, [&](std::size_t, std::size_t) { FAIL(); });
}

TEST(ThreadPool, PropagatesFirstException) {
  rt::ThreadPool pool(2);
  EXPECT_THROW(pool.run_chunks(8,
                               [&](std::size_t c) {
                                 if (c == 3) throw std::runtime_error("boom");
                               }),
               std::runtime_error);
}

TEST(ThreadPool, ReusableAcrossJobs) {
  rt::ThreadPool pool(4);
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> n{0};
    pool.run_chunks(16, [&](std::size_t) { n.fetch_add(1); });
    ASSERT_EQ(n.load(), 16);
  }
}

TEST(ThreadPool, GlobalPoolHasAtLeastTwoWorkers) {
  EXPECT_GE(rt::ThreadPool::global().size(), 2u);
}

TEST(Fiber, RunsToCompletion) {
  int x = 0;
  rt::Fiber f([&] { x = 42; });
  EXPECT_FALSE(f.resume());
  EXPECT_TRUE(f.done());
  EXPECT_EQ(x, 42);
}

TEST(Fiber, YieldSuspendsAndResumes) {
  std::vector<int> trace;
  rt::Fiber f([&] {
    trace.push_back(1);
    rt::Fiber::yield();
    trace.push_back(2);
  });
  EXPECT_TRUE(f.resume());
  EXPECT_EQ(trace, (std::vector<int>{1}));
  EXPECT_FALSE(f.resume());
  EXPECT_EQ(trace, (std::vector<int>{1, 2}));
}

TEST(Fiber, PropagatesException) {
  rt::Fiber f([] { throw std::logic_error("inside fiber"); });
  EXPECT_THROW(f.resume(), std::logic_error);
  EXPECT_TRUE(f.done());
}

TEST(BarrierGroup, FastPathWhenNoBarrier) {
  std::vector<int> out(16, 0);
  const bool used = rt::run_barrier_group(16, [&](std::size_t i) {
    out[i] = static_cast<int>(i);
  });
  EXPECT_FALSE(used);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], i);
}

TEST(BarrierGroup, BarrierSynchronizesPhases) {
  // Phase 1: each item writes its slot. Barrier. Phase 2: each item reads
  // its neighbour's slot - only correct if the barrier is honoured.
  const std::size_t n = 32;
  std::vector<int> a(n, -1), b(n, -1);
  const bool used = rt::run_barrier_group(n, [&](std::size_t i) {
    a[i] = static_cast<int>(i) * 10;
    rt::group_barrier();
    b[i] = a[(i + 1) % n];
  });
  EXPECT_TRUE(used);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_EQ(b[i], static_cast<int>((i + 1) % n) * 10);
}

TEST(BarrierGroup, MultipleBarriers) {
  const std::size_t n = 8;
  std::vector<int> v(n, 0);
  rt::run_barrier_group(n, [&](std::size_t i) {
    for (int round = 0; round < 5; ++round) {
      v[i] += 1;
      rt::group_barrier();
      // All items must observe everyone having completed the round.
      int sum = std::accumulate(v.begin(), v.end(), 0);
      EXPECT_EQ(sum, static_cast<int>(n) * (round + 1));
      rt::group_barrier();
    }
  });
}

TEST(BarrierGroup, TreeReductionPattern) {
  // The user-defined binary-tree reduction the paper mentions (S4.2).
  const std::size_t n = 64;
  std::vector<double> scratch(n);
  rt::run_barrier_group(n, [&](std::size_t i) {
    scratch[i] = static_cast<double>(i + 1);
    rt::group_barrier();
    for (std::size_t stride = n / 2; stride > 0; stride /= 2) {
      if (i < stride) scratch[i] += scratch[i + stride];
      rt::group_barrier();
    }
  });
  EXPECT_DOUBLE_EQ(scratch[0], 64.0 * 65.0 / 2.0);
}

TEST(BarrierGroup, BarrierOutsideGroupThrows) {
  EXPECT_THROW(rt::group_barrier(), std::logic_error);
}

TEST(BarrierGroup, ExceptionInTaskPropagates) {
  EXPECT_THROW(rt::run_barrier_group(4,
                                     [&](std::size_t i) {
                                       if (i == 2)
                                         throw std::runtime_error("task");
                                     }),
               std::runtime_error);
}

TEST(BarrierGroup, SingleItemGroupWithBarrier) {
  int phases = 0;
  const bool used = rt::run_barrier_group(1, [&](std::size_t) {
    ++phases;
    rt::group_barrier();
    ++phases;
  });
  EXPECT_TRUE(used);
  EXPECT_EQ(phases, 2);  // probe-fiber design: nothing is re-executed
}

TEST(BarrierGroup, NoReexecutionOfPreBarrierWrites) {
  // Read-modify-writes before the first barrier must happen exactly once
  // (this is what the probe-fiber design guarantees over naive restart).
  const std::size_t n = 4;
  std::vector<int> v(n, 0);
  rt::run_barrier_group(n, [&](std::size_t i) {
    v[i] += 1;
    rt::group_barrier();
  });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(v[i], 1);
}

TEST(BarrierGroup, NonUniformBarrierIsAnError) {
  EXPECT_THROW(rt::run_barrier_group(4,
                                     [&](std::size_t i) {
                                       if (i == 2) rt::group_barrier();
                                     }),
               std::logic_error);
}
