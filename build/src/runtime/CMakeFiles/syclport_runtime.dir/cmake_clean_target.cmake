file(REMOVE_RECURSE
  "libsyclport_runtime.a"
)
