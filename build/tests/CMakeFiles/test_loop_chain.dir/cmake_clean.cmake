file(REMOVE_RECURSE
  "CMakeFiles/test_loop_chain.dir/test_loop_chain.cpp.o"
  "CMakeFiles/test_loop_chain.dir/test_loop_chain.cpp.o.d"
  "test_loop_chain"
  "test_loop_chain.pdb"
  "test_loop_chain[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_loop_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
