#include "minimpi/cart.hpp"

#include <stdexcept>

namespace syclport::mpi {

CartDecomp::CartDecomp(int rank, int nranks, int dims)
    : rank_(rank), dims_(dims), grid_(balanced_factors(nranks, dims)) {
  if (rank < 0 || rank >= nranks)
    throw std::out_of_range("CartDecomp: rank outside world");
  int rest = rank;
  for (int d = dims - 1; d >= 0; --d) {
    coords_[static_cast<std::size_t>(d)] =
        rest % grid_[static_cast<std::size_t>(d)];
    rest /= grid_[static_cast<std::size_t>(d)];
  }
}

int CartDecomp::neighbour(int dim, int dir) const {
  auto c = coords_;
  c[static_cast<std::size_t>(dim)] += dir;
  if (c[static_cast<std::size_t>(dim)] < 0 ||
      c[static_cast<std::size_t>(dim)] >= grid_[static_cast<std::size_t>(dim)])
    return -1;
  int r = 0;
  for (int d = 0; d < dims_; ++d)
    r = r * grid_[static_cast<std::size_t>(d)] + c[static_cast<std::size_t>(d)];
  return r;
}

std::pair<std::size_t, std::size_t> CartDecomp::owned(
    int dim, std::size_t global) const {
  const auto g = static_cast<std::size_t>(grid_[static_cast<std::size_t>(dim)]);
  const auto c = static_cast<std::size_t>(coords_[static_cast<std::size_t>(dim)]);
  const std::size_t base = global / g;
  const std::size_t rem = global % g;
  const std::size_t begin = c * base + std::min(c, rem);
  const std::size_t count = base + (c < rem ? 1 : 0);
  return {begin, begin + count};
}

}  // namespace syclport::mpi
