#pragma once
/// \file partition.hpp
/// Mesh partitioning for distributed OP2: the role PT-Scotch plays in
/// the paper's §3 ("the problem is decomposed using a graph partitioner
/// such as PT-Scotch, and uses a standard owner-compute approach").
/// PT-Scotch is substituted by recursive coordinate bisection (RCB) -
/// geometric, deterministic, and with the same consumers: an
/// owner-compute assignment plus the halo/cut analysis that determines
/// communication volume.

#include <array>
#include <cstddef>
#include <span>
#include <vector>

#include "op2/set.hpp"

namespace syclport::op2 {

/// Partition `coords` into `nparts` parts by recursive coordinate
/// bisection: split along the widest axis at the weighted median,
/// recursing with part counts proportional to each side. Returns the
/// part id (0..nparts-1) per element. Deterministic.
[[nodiscard]] std::vector<int> rcb_partition(
    std::span<const std::array<double, 3>> coords, int nparts);

/// Owner-compute communication analysis of an element->node map under a
/// node partition (edges execute on the part owning their first node).
struct PartitionStats {
  int nparts = 0;
  std::vector<std::size_t> owned_nodes;   ///< per part
  std::vector<std::size_t> owned_elems;   ///< per part (owner-compute)
  std::vector<std::size_t> halo_nodes;    ///< per part: remote nodes read
  std::size_t cut_elems = 0;              ///< elements spanning parts
  double cut_fraction = 0.0;
  double max_imbalance = 0.0;             ///< max owned_nodes / mean
  double avg_halo_fraction = 0.0;         ///< halo / owned, averaged
};

[[nodiscard]] PartitionStats analyze_partition(const Map& e2n,
                                               std::span<const int> node_part,
                                               int nparts);

}  // namespace syclport::op2
