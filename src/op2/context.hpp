#pragma once
/// \file context.hpp
/// OP2 execution context: race-resolution strategy, execution backend,
/// plan cache, and the recorded loop profiles.

#include <map>
#include <memory>
#include <optional>
#include <tuple>
#include <vector>

#include "core/types.hpp"
#include "hwmodel/loop_profile.hpp"
#include "op2/layout.hpp"
#include "op2/locality.hpp"
#include "op2/plan.hpp"
#include "runtime/env.hpp"
#include "sycl/sycl.hpp"

namespace syclport::op2 {

enum class Exec : std::uint8_t {
  Serial,   ///< reference execution, one element at a time
  Threads,  ///< thread-pool sweeps (OpenMP-like / MPI-rank-local)
  Sycl,     ///< sweeps routed through the miniSYCL queue
};

enum class Mode : std::uint8_t { Execute, ModelOnly };

struct Options {
  Exec exec = Exec::Threads;
  Mode mode = Mode::Execute;
  bool record = true;
  Strategy strategy = Strategy::Atomics;  ///< for indirect-increment loops
  std::size_t block_size = 256;           ///< hierarchical block size
  std::size_t wg = 256;                   ///< work-group size for Sycl exec
  /// Wave width for locality measurement (sub_group of the modeled GPU).
  std::size_t wave = 64;
  /// Staged lowering: elements per gather/compute tile. Sized so one
  /// tile's operand scratch (a few dats x dim x 8 bytes x tile) stays
  /// L1/L2-resident while a super-tile of nthreads tiles is in flight.
  std::size_t stage_tile = 96;
  /// Physical layout the app should give its mesh dats (apps apply it
  /// to the dats they create, e.g. run_mgcfd); nullopt keeps the
  /// process default (SYCLPORT_LAYOUT or AoS). Non-AoS dats route
  /// their loops through the staged lowering.
  std::optional<Layout> layout;
  /// Online autotuner override for this context's loops: true/false
  /// forces tuning on/off regardless of SYCLPORT_TUNE; nullopt defers
  /// to the env mode. See docs/tuning.md.
  std::optional<bool> tune;
};

/// SYCLPORT_INDIRECT overrides the app's default race-resolution
/// strategy for indirect-increment loops (docs/unstructured.md);
/// nullopt when unset or invalid.
[[nodiscard]] inline std::optional<Strategy> strategy_from_env() {
  static constexpr std::array<std::string_view, 4> kNames = {
      "atomics", "global", "hierarchical", "staged"};
  static constexpr std::array<Strategy, 4> kValues = {
      Strategy::Atomics, Strategy::GlobalColor, Strategy::Hierarchical,
      Strategy::Staged};
  if (const auto idx = rt::env::get_choice("SYCLPORT_INDIRECT", kNames))
    return kValues[*idx];
  return std::nullopt;
}

class Context {
 public:
  explicit Context(Options o) : opt(o) {
    if (const auto s = strategy_from_env()) opt.strategy = *s;
  }
  Context() : Context(Options{}) {}

  Options opt;
  sycl::queue queue;
  std::vector<hw::LoopProfile> profiles;
  void clear_profiles() { profiles.clear(); }

  [[nodiscard]] bool executing() const { return opt.mode == Mode::Execute; }

  /// Plan for resolving conflicts through `map` under `strategy`
  /// (default: the context's); built once and cached. Staged shares the
  /// Atomics plan - both execute elements in identity order, staging
  /// resolves the races in scratch rather than by colouring.
  [[nodiscard]] const Plan& plan_for(const Map& map) {
    return plan_for(map, opt.strategy);
  }
  [[nodiscard]] const Plan& plan_for(const Map& map, Strategy strategy) {
    if (strategy == Strategy::Staged) strategy = Strategy::Atomics;
    const auto key = std::make_tuple(static_cast<const void*>(&map),
                                     strategy, opt.block_size);
    auto it = plans_.find(key);
    if (it == plans_.end())
      it = plans_
               .emplace(key, std::make_unique<Plan>(build_plan(
                                 map, strategy, opt.block_size)))
               .first;
    return *it->second;
  }

  /// Cached gather-locality statistics for accessing (dim x elem_bytes)
  /// data in `layout` through `map` in the plan's execution order.
  [[nodiscard]] const GatherStats& gather_for(const Map& map, int dim,
                                              std::size_t elem_bytes,
                                              Layout layout = Layout::AoS) {
    return gather_for(map, dim, elem_bytes, opt.strategy, layout);
  }
  [[nodiscard]] const GatherStats& gather_for(const Map& map, int dim,
                                              std::size_t elem_bytes,
                                              Strategy strategy,
                                              Layout layout) {
    if (strategy == Strategy::Staged) strategy = Strategy::Atomics;
    const auto key = std::make_tuple(static_cast<const void*>(&map),
                                     strategy, opt.block_size, dim,
                                     elem_bytes, layout);
    auto it = gathers_.find(key);
    if (it == gathers_.end()) {
      const auto order = execution_order(plan_for(map, strategy));
      it = gathers_
               .emplace(key, measure_gather(map, dim, elem_bytes, order,
                                            opt.wave, 64.0, layout))
               .first;
    }
    return it->second;
  }

 private:
  std::map<std::tuple<const void*, Strategy, std::size_t>,
           std::unique_ptr<Plan>>
      plans_;
  std::map<std::tuple<const void*, Strategy, std::size_t, int, std::size_t,
                      Layout>,
           GatherStats>
      gathers_;
};

}  // namespace syclport::op2
