# Empty dependencies file for test_sycl_groups.
# This may be replaced when dependencies are built.
