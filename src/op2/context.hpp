#pragma once
/// \file context.hpp
/// OP2 execution context: race-resolution strategy, execution backend,
/// plan cache, and the recorded loop profiles.

#include <map>
#include <memory>
#include <optional>
#include <tuple>
#include <vector>

#include "core/types.hpp"
#include "hwmodel/loop_profile.hpp"
#include "op2/locality.hpp"
#include "op2/plan.hpp"
#include "sycl/sycl.hpp"

namespace syclport::op2 {

enum class Exec : std::uint8_t {
  Serial,   ///< reference execution, one element at a time
  Threads,  ///< thread-pool sweeps (OpenMP-like / MPI-rank-local)
  Sycl,     ///< sweeps routed through the miniSYCL queue
};

enum class Mode : std::uint8_t { Execute, ModelOnly };

struct Options {
  Exec exec = Exec::Threads;
  Mode mode = Mode::Execute;
  bool record = true;
  Strategy strategy = Strategy::Atomics;  ///< for indirect-increment loops
  std::size_t block_size = 256;           ///< hierarchical block size
  std::size_t wg = 256;                   ///< work-group size for Sycl exec
  /// Wave width for locality measurement (sub_group of the modeled GPU).
  std::size_t wave = 64;
  /// Online autotuner override for this context's loops: true/false
  /// forces tuning on/off regardless of SYCLPORT_TUNE; nullopt defers
  /// to the env mode. See docs/tuning.md.
  std::optional<bool> tune;
};

class Context {
 public:
  explicit Context(Options o) : opt(o) {}
  Context() = default;

  Options opt;
  sycl::queue queue;
  std::vector<hw::LoopProfile> profiles;
  void clear_profiles() { profiles.clear(); }

  [[nodiscard]] bool executing() const { return opt.mode == Mode::Execute; }

  /// Plan for resolving conflicts through `map` under the context's
  /// strategy; built once and cached.
  [[nodiscard]] const Plan& plan_for(const Map& map) {
    const auto key = std::make_tuple(static_cast<const void*>(&map),
                                     opt.strategy, opt.block_size);
    auto it = plans_.find(key);
    if (it == plans_.end())
      it = plans_
               .emplace(key, std::make_unique<Plan>(build_plan(
                                 map, opt.strategy, opt.block_size)))
               .first;
    return *it->second;
  }

  /// Cached gather-locality statistics for accessing (dim x elem_bytes)
  /// data through `map` in the plan's execution order.
  [[nodiscard]] const GatherStats& gather_for(const Map& map, int dim,
                                              std::size_t elem_bytes) {
    const auto key = std::make_tuple(static_cast<const void*>(&map),
                                     opt.strategy, opt.block_size,
                                     dim, elem_bytes);
    auto it = gathers_.find(key);
    if (it == gathers_.end()) {
      const auto order = execution_order(plan_for(map));
      it = gathers_
               .emplace(key, measure_gather(map, dim, elem_bytes, order,
                                            opt.wave))
               .first;
    }
    return it->second;
  }

 private:
  std::map<std::tuple<const void*, Strategy, std::size_t>,
           std::unique_ptr<Plan>>
      plans_;
  std::map<std::tuple<const void*, Strategy, std::size_t, int, std::size_t>,
           GatherStats>
      gathers_;
};

}  // namespace syclport::op2
