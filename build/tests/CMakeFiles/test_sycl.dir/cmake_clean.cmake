file(REMOVE_RECURSE
  "CMakeFiles/test_sycl.dir/test_sycl.cpp.o"
  "CMakeFiles/test_sycl.dir/test_sycl.cpp.o.d"
  "test_sycl"
  "test_sycl.pdb"
  "test_sycl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sycl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
