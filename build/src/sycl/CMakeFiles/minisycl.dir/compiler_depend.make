# Empty compiler generated dependencies file for minisycl.
# This may be replaced when dependencies are built.
