// §4.4 / §5 aggregate reproduction: the Pennycook performance-
// portability metric per SYCL variant family on the structured apps,
// and the paper's conclusion-level averages (best-native vs best-SYCL,
// GPU vs CPU splits).

#include <algorithm>
#include <iostream>
#include <vector>

#include "common/figures.hpp"
#include "common/paper_data.hpp"
#include "core/pp_metric.hpp"
#include "core/report.hpp"
#include "core/statistics.hpp"

using namespace syclport;

namespace {

/// Efficiency of variant family (model, toolchain) for app on platform;
/// 0 when unsupported there or failed.
double eff_of(study::StudyRunner& runner, AppId a, PlatformId p, Model m,
              Toolchain tc) {
  for (const Variant& v : study::structured_variants(p)) {
    if (v.model != m || v.toolchain != tc) continue;
    const auto r = runner.run(a, p, v);
    return r.ok() ? r.efficiency : 0.0;
  }
  return 0.0;  // variant unavailable on this platform
}

/// Application-averaged PP over all six platforms for one variant
/// family, in the paper's "ignoring failing/unavailable" sense.
double pp_family(study::StudyRunner& runner, Model m, Toolchain tc) {
  std::vector<double> per_app;
  for (AppId a : kStructuredApps) {
    std::vector<double> effs;
    for (PlatformId p : kAllPlatforms)
      effs.push_back(eff_of(runner, a, p, m, tc));
    per_app.push_back(pp_supported_only(effs));
  }
  return stats::mean(per_app);
}

double best_eff(study::StudyRunner& runner, AppId a, PlatformId p,
                bool sycl_only, bool native_only) {
  double best = 0.0;
  for (const Variant& v : study::structured_variants(p)) {
    if (sycl_only && !v.is_sycl()) continue;
    if (native_only && v.is_sycl()) continue;
    const auto r = runner.run(a, p, v);
    if (r.ok()) best = std::max(best, r.efficiency);
  }
  if (a == AppId::MGCFD) return best;
  return best;
}

double mean_best(study::StudyRunner& runner,
                 const std::vector<PlatformId>& platforms, bool sycl_only,
                 bool native_only) {
  std::vector<double> effs;
  for (PlatformId p : platforms) {
    for (AppId a : kStructuredApps)
      effs.push_back(best_eff(runner, a, p, sycl_only, native_only));
    // MG-CFD included in the paper's all-application averages.
    double best = 0.0;
    for (const Variant& v : study::mgcfd_variants(p)) {
      if (sycl_only && !v.is_sycl()) continue;
      if (native_only && v.is_sycl()) continue;
      const auto r = runner.run(AppId::MGCFD, p, v);
      if (r.ok()) best = std::max(best, r.efficiency);
    }
    effs.push_back(best);
  }
  return stats::mean(effs);
}

}  // namespace

int main() {
  study::StudyRunner runner;
  const bench::PaperAggregates paper;

  std::cout << "=== S4.4: performance-portability metric (structured) ===\n";
  report::Table pp({"variant family", "modeled PP", "paper PP"});
  pp.add_row({"DPC++ nd_range",
              report::fmt(pp_family(runner, Model::SYCLNDRange,
                                    Toolchain::DPCPP), 2),
              report::fmt(paper.pp_dpcpp_nd, 2)});
  pp.add_row({"OpenSYCL nd_range",
              report::fmt(pp_family(runner, Model::SYCLNDRange,
                                    Toolchain::OpenSYCL), 2),
              report::fmt(paper.pp_osycl_nd, 2)});
  pp.add_row({"DPC++ flat",
              report::fmt(pp_family(runner, Model::SYCLFlat,
                                    Toolchain::DPCPP), 2),
              report::fmt(paper.pp_dpcpp_flat, 2)});
  pp.add_row({"OpenSYCL flat",
              report::fmt(pp_family(runner, Model::SYCLFlat,
                                    Toolchain::OpenSYCL), 2),
              report::fmt(paper.pp_osycl_flat, 2)});
  pp.render(std::cout);

  std::cout << "\n=== S5: conclusion-level averages (all apps) ===\n";
  const std::vector<PlatformId> all(kAllPlatforms.begin(), kAllPlatforms.end());
  const std::vector<PlatformId> gpus(kGpuPlatforms.begin(), kGpuPlatforms.end());
  const std::vector<PlatformId> cpus(kCpuPlatforms.begin(), kCpuPlatforms.end());
  report::Table t({"average of best variants", "modeled", "paper"});
  t.add_row({"native, all platforms",
             report::fmt_percent(mean_best(runner, all, false, true)),
             report::fmt_percent(paper.best_native_all)});
  t.add_row({"SYCL, all platforms",
             report::fmt_percent(mean_best(runner, all, true, false)),
             report::fmt_percent(paper.best_sycl_all)});
  t.add_row({"native, GPUs",
             report::fmt_percent(mean_best(runner, gpus, false, true)),
             report::fmt_percent(paper.gpu_native)});
  t.add_row({"SYCL, GPUs",
             report::fmt_percent(mean_best(runner, gpus, true, false)),
             report::fmt_percent(paper.gpu_best_sycl)});
  t.add_row({"native, CPUs",
             report::fmt_percent(mean_best(runner, cpus, false, true)),
             report::fmt_percent(paper.cpu_native)});
  t.add_row({"SYCL, CPUs",
             report::fmt_percent(mean_best(runner, cpus, true, false)),
             report::fmt_percent(paper.cpu_sycl)});
  t.render(std::cout);
  return 0;
}
