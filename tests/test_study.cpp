// Integration tests for the study harness: the modeled experiment
// matrix must reproduce the paper's *qualitative* claims (who wins, by
// roughly what factor, where the CPU/GPU split falls). These are the
// regression guards for the calibration recorded in EXPERIMENTS.md.

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>

#include "study/study.hpp"
#include "study/trace.hpp"

using namespace syclport;

namespace {

/// Shared runner with reduced structured sizes: the qualitative
/// relations are size-stable and the full-paper sizes run in the bench
/// binaries.
study::StudyRunner& runner() {
  static study::StudyRunner r = [] {
    study::StudyRunner s;
    s.set_structured_size(AppId::CloverLeaf2D, {{1920, 1920, 1}, 10});
    s.set_structured_size(AppId::CloverLeaf3D, {{128, 128, 128}, 10});
    s.set_structured_size(AppId::OpenSBLI_SA, {{160, 160, 160}, 5});
    s.set_structured_size(AppId::OpenSBLI_SN, {{160, 160, 160}, 5});
    s.set_structured_size(AppId::RTM, {{320, 320, 320}, 5});
    s.set_structured_size(AppId::Acoustic, {{500, 500, 500}, 5});
    s.set_mgcfd_bench({48, 40, 32, 3, 10});
    return s;
  }();
  return r;
}

double runtime(AppId a, PlatformId p, Variant v) {
  const auto r = runner().run(a, p, v);
  EXPECT_TRUE(r.ok()) << to_string(v);
  return r.runtime_s;
}

double efficiency(AppId a, PlatformId p, Variant v) {
  return runner().run(a, p, v).efficiency;
}

const Variant kCuda{Model::CUDA, Toolchain::Native};
const Variant kHip{Model::HIP, Toolchain::Native};
const Variant kDpcppNd{Model::SYCLNDRange, Toolchain::DPCPP};
const Variant kDpcppFlat{Model::SYCLFlat, Toolchain::DPCPP};
const Variant kOsyclNd{Model::SYCLNDRange, Toolchain::OpenSYCL};
const Variant kOsyclFlat{Model::SYCLFlat, Toolchain::OpenSYCL};
const Variant kMpi{Model::MPI, Toolchain::Native};
const Variant kMpiOmp{Model::MPI_OpenMP, Toolchain::Native};

}  // namespace

TEST(Study, SupportMatrixHolesSurface) {
  const auto r = runner().run(AppId::CloverLeaf2D, PlatformId::GenoaX,
                              kOsyclNd);
  EXPECT_EQ(r.status, Status::Incorrect);
  EXPECT_EQ(r.runtime_s, 0.0);
}

TEST(Study, SyclNdWithin10PercentOfCudaOnA100) {
  // Paper §4.1: nd_range versions with both compilers within 10% of
  // native CUDA on the structured apps.
  for (AppId a : kStructuredApps) {
    const double cuda = runtime(a, PlatformId::A100, kCuda);
    EXPECT_LT(runtime(a, PlatformId::A100, kDpcppNd), 1.10 * cuda)
        << to_string(a);
    EXPECT_LT(runtime(a, PlatformId::A100, kOsyclNd), 1.10 * cuda)
        << to_string(a);
  }
}

TEST(Study, DpcppFlatCloverLeaf2DOutlierOnGpus) {
  // "making the 2D version with the flat formulation perform very
  // poorly" (§4.1) - at least 2x the nd_range time.
  for (PlatformId p : kGpuPlatforms) {
    EXPECT_GT(runtime(AppId::CloverLeaf2D, p, kDpcppFlat),
              2.0 * runtime(AppId::CloverLeaf2D, p, kDpcppNd))
        << to_string(p);
  }
}

TEST(Study, OpenSyclFlatCloverLeaf3DSlowdown) {
  // "an almost 50% slowdown" (§4.1).
  const double nd = runtime(AppId::CloverLeaf3D, PlatformId::A100, kOsyclNd);
  const double flat =
      runtime(AppId::CloverLeaf3D, PlatformId::A100, kOsyclFlat);
  EXPECT_GT(flat, 1.35 * nd);
  EXPECT_LT(flat, 2.4 * nd);
}

TEST(Study, Max1100FlatGapLargerThanOtherGpus) {
  // §4.1: the Max 1100 is most sensitive to work-group shape; its
  // flat-vs-nd gap (excluding the quirk outliers) exceeds the A100's.
  auto gap = [&](PlatformId p) {
    return runtime(AppId::OpenSBLI_SA, p, kDpcppFlat) /
           runtime(AppId::OpenSBLI_SA, p, kDpcppNd);
  };
  EXPECT_GT(gap(PlatformId::Max1100), gap(PlatformId::A100));
}

TEST(Study, SyclBeatsOpenMPOffloadOnMax1100) {
  // §4.1: DPC++ nd_range ~30% faster than OpenMP offload on the Max.
  const Variant omp{Model::OpenMPOffload, Toolchain::Native};
  double sycl_total = 0.0, omp_total = 0.0;
  for (AppId a : kStructuredApps) {
    sycl_total += runtime(a, PlatformId::Max1100, kDpcppNd);
    omp_total += runtime(a, PlatformId::Max1100, omp);
  }
  EXPECT_LT(sycl_total, 0.85 * omp_total);
}

TEST(Study, RtmWorstOnMI250XAmongGpus) {
  // §4.1: RTM achieves 19% on the MI250X vs 48% (A100) and 59% (Max):
  // the 16 MB L2 cannot hold the radius-4 layer window.
  const double mi = efficiency(AppId::RTM, PlatformId::MI250X, kHip);
  EXPECT_LT(mi, efficiency(AppId::RTM, PlatformId::A100, kCuda));
  EXPECT_LT(mi, efficiency(AppId::RTM, PlatformId::Max1100, kDpcppNd));
}

TEST(Study, GenoaXCloverLeaf2DBestEfficiencyOfCpus) {
  // §4.2: 107% efficiency at the paper's 7680^2 thanks to the 2.2 GB
  // L3 (asserted at full size by the fig6 bench); at this reduced size
  // fixed overheads weigh more, so assert the cross-platform relation.
  const double genoa = efficiency(AppId::CloverLeaf2D, PlatformId::GenoaX, kMpi);
  EXPECT_GT(genoa, 0.8);
  // The Altra's 32 MB LLC cannot cache this working set; Genoa-X can.
  EXPECT_GT(genoa, efficiency(AppId::CloverLeaf2D, PlatformId::Altra, kMpi));
}

TEST(Study, DpcppBoundaryShareExceedsOpenSyclOnCpu) {
  // §4.2: DPC++ launches through OpenCL drivers; OpenSYCL maps to
  // OpenMP at compile time.
  const auto dpcpp =
      runner().run(AppId::CloverLeaf2D, PlatformId::Xeon8360Y, kDpcppNd);
  const auto osycl =
      runner().run(AppId::CloverLeaf2D, PlatformId::Xeon8360Y, kOsyclNd);
  EXPECT_GT(dpcpp.boundary_s / dpcpp.runtime_s,
            1.5 * osycl.boundary_s / osycl.runtime_s);
}

TEST(Study, RtmOnGenoaXFavoursHybridOverPureMpi) {
  // §4.2: MPI+OpenMP outperformed other variants on RTM by 1.46-1.95x;
  // at 176 ranks the radius-4 halos dominate pure MPI.
  const double mpi = runtime(AppId::RTM, PlatformId::GenoaX, kMpi);
  const double hybrid = runtime(AppId::RTM, PlatformId::GenoaX, kMpiOmp);
  EXPECT_GT(mpi, 1.2 * hybrid);
  const auto r = runner().run(AppId::RTM, PlatformId::GenoaX, kMpi);
  EXPECT_GT(r.halo_s, 0.0);
}

TEST(Study, AltraAcousticSyclVectorizationFailure) {
  // §4.2: auto-vectorization did not work for SYCL on Acoustic (Altra),
  // but did for MPI/OpenMP.
  const double mpi = runtime(AppId::Acoustic, PlatformId::Altra, kMpi);
  const double sycl = runtime(AppId::Acoustic, PlatformId::Altra, kOsyclNd);
  EXPECT_GT(sycl, 1.4 * mpi);
}

TEST(Study, MgcfdCpuMpiBeatsEverything) {
  // §4.3: best CPU implementations are the auto-vectorizing MPI ones.
  for (PlatformId p : kCpuPlatforms) {
    const Variant mpi{Model::MPI, Toolchain::Native, Strategy::None};
    const double t_mpi = runtime(AppId::MGCFD, p, mpi);
    for (const Variant& v : study::mgcfd_variants(p)) {
      const auto r = runner().run(AppId::MGCFD, p, v);
      if (!r.ok() || v.model == Model::MPI) continue;
      EXPECT_LT(t_mpi, r.runtime_s * 1.02)
          << to_string(p) << " " << to_string(v);
    }
  }
}

TEST(Study, MgcfdOpenSyclSafeAtomicsPenaltyOnMI250X) {
  // §4.3: OpenSYCL cannot reach the unsafe atomics on the MI250X.
  const Variant hip{Model::HIP, Toolchain::Native, Strategy::Atomics};
  const Variant osycl{Model::SYCLNDRange, Toolchain::OpenSYCL,
                      Strategy::Atomics};
  EXPECT_GT(runtime(AppId::MGCFD, PlatformId::MI250X, osycl),
            1.3 * runtime(AppId::MGCFD, PlatformId::MI250X, hip));
}

TEST(Study, MgcfdAtomicsLimitedOnMax1100) {
  // §4.3: atomics throughput is the limiter on the Max 1100.
  const Variant at{Model::SYCLNDRange, Toolchain::DPCPP, Strategy::Atomics};
  const Variant hier{Model::SYCLNDRange, Toolchain::DPCPP,
                     Strategy::Hierarchical};
  EXPECT_GT(runtime(AppId::MGCFD, PlatformId::Max1100, at),
            1.5 * runtime(AppId::MGCFD, PlatformId::Max1100, hier));
}

TEST(Study, MgcfdGlobalColouringWorstStrategyOnGpus) {
  // §4.3: global colouring has by construction very poor data reuse.
  for (PlatformId p : kGpuPlatforms) {
    const Toolchain tc = Toolchain::DPCPP;
    const Variant glob{Model::SYCLNDRange, tc, Strategy::GlobalColor};
    const Variant hier{Model::SYCLNDRange, tc, Strategy::Hierarchical};
    EXPECT_GT(runtime(AppId::MGCFD, p, glob), runtime(AppId::MGCFD, p, hier))
        << to_string(p);
  }
}

TEST(Study, GpuSyclCompetitiveCpuSyclBehind) {
  // §5: on GPUs best SYCL ~ native; on CPUs SYCL trails native.
  double gpu_sycl = 0.0, gpu_native = 0.0;
  for (PlatformId p : {PlatformId::A100, PlatformId::MI250X}) {
    for (AppId a : kStructuredApps) {
      gpu_native += runtime(a, p, study::native_variant(p));
      gpu_sycl += std::min(runtime(a, p, kDpcppNd), runtime(a, p, kOsyclNd));
    }
  }
  EXPECT_LT(gpu_sycl, 1.10 * gpu_native);

  double cpu_sycl = 0.0, cpu_native = 0.0;
  for (AppId a : kStructuredApps) {
    cpu_native += std::min(runtime(a, PlatformId::Xeon8360Y, kMpi),
                           runtime(a, PlatformId::Xeon8360Y, kMpiOmp));
    cpu_sycl += std::min(runtime(a, PlatformId::Xeon8360Y, kDpcppNd),
                         runtime(a, PlatformId::Xeon8360Y, kOsyclNd));
  }
  EXPECT_GT(cpu_sycl, cpu_native);
}

TEST(Study, EfficiencyDefinitionConsistent) {
  const auto r = runner().run(AppId::CloverLeaf2D, PlatformId::A100, kCuda);
  EXPECT_NEAR(r.efficiency,
              r.useful_bytes / r.runtime_s / 1e9 /
                  hw::platform(PlatformId::A100).stream_bw_gbs,
              1e-12);
  EXPECT_GT(r.efficiency, 0.5);
  EXPECT_LT(r.efficiency, 1.2);
}

TEST(Study, BoundaryShare3DExceeds2DOnGpus) {
  // §4.1: CloverLeaf 3D spends more of its time in boundary updates.
  for (PlatformId p : kGpuPlatforms) {
    const Variant v = study::native_variant(p);
    const auto r2 = runner().run(AppId::CloverLeaf2D, p, v);
    const auto r3 = runner().run(AppId::CloverLeaf3D, p, v);
    if (!r2.ok() || !r3.ok()) continue;
    EXPECT_GT(r3.boundary_s / r3.runtime_s, r2.boundary_s / r2.runtime_s)
        << to_string(p);
  }
}

TEST(Trace, WritesValidJsonWithModeledBreakdown) {
  auto& r = runner();
  const Variant v{Model::CUDA, Toolchain::Native};
  const auto& sched = r.schedule_for(AppId::RTM, v);
  ASSERT_FALSE(sched.empty());
  const std::string path = "/tmp/syclport_trace_test.json";
  ASSERT_TRUE(study::write_modeled_trace_json(path, sched, PlatformId::A100,
                                              v, AppId::RTM));
  // Light-weight validity probe: braces balance, key fields present.
  std::ifstream f(path);
  std::stringstream ss;
  ss << f.rdbuf();
  const std::string s = ss.str();
  EXPECT_EQ(std::count(s.begin(), s.end(), '{'),
            std::count(s.begin(), s.end(), '}'));
  EXPECT_NE(s.find("\"loops\""), std::string::npos);
  EXPECT_NE(s.find("\"modeled\""), std::string::npos);
  EXPECT_NE(s.find("rtm_lap"), std::string::npos);
}

TEST(Trace, ScheduleExposureIsStable) {
  auto& r = runner();
  const Variant v{Model::CUDA, Toolchain::Native};
  const auto& a = r.schedule_for(AppId::RTM, v);
  const auto& b = r.schedule_for(AppId::RTM, v);
  EXPECT_EQ(&a, &b);  // cached, not rebuilt
}
