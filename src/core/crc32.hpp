#pragma once
/// \file crc32.hpp
/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320): the integrity
/// tag used by every resilience path that persists or transports bytes
/// - checkpoint files, the autotune cache, and mini-MPI payloads under
/// fault injection. Header-only, table-driven, no dependencies; speed
/// is irrelevant at the sizes involved (metadata and halo strips), the
/// shared implementation is what matters: every layer tags and checks
/// bytes the same way.

#include <array>
#include <cstddef>
#include <cstdint>

namespace syclport {

namespace detail {
[[nodiscard]] constexpr std::array<std::uint32_t, 256> crc32_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    t[i] = c;
  }
  return t;
}
inline constexpr std::array<std::uint32_t, 256> kCrc32Table = crc32_table();
}  // namespace detail

/// Incrementally extend a CRC-32 (`crc` starts at 0 for a fresh
/// stream; feed successive chunks through the returned value).
[[nodiscard]] inline std::uint32_t crc32_update(std::uint32_t crc,
                                                const void* data,
                                                std::size_t bytes) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = crc ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < bytes; ++i)
    c = detail::kCrc32Table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

/// One-shot CRC-32 of a byte range.
[[nodiscard]] inline std::uint32_t crc32(const void* data,
                                         std::size_t bytes) noexcept {
  return crc32_update(0, data, bytes);
}

}  // namespace syclport
