#include "runtime/mem/mem.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cstring>
#include <mutex>
#include <new>
#include <optional>
#include <unordered_map>
#include <vector>

#include "runtime/env.hpp"
#include "runtime/fault/fault.hpp"
#include "runtime/mem/stream.hpp"
#include "runtime/thread_pool.hpp"

#if defined(__linux__)
#include <sys/mman.h>
#endif

namespace syclport::rt::mem {
namespace {

constexpr std::size_t kMinAlign = 64;          // cache line
constexpr std::size_t kHugePage = 2u << 20;    // 2 MiB
constexpr std::size_t kPageBytes = 4096;
constexpr std::size_t kMinClassBytes = 4096;   // smallest size class
constexpr std::size_t kMaxClassBytes = std::size_t{1} << 30;  // largest pooled
constexpr std::size_t kClassShift = 12;        // log2(kMinClassBytes)
constexpr std::size_t kNumClasses = 30 - kClassShift + 1;  // 4 KiB .. 1 GiB
/// Classes at or below this go through the per-thread cache; larger
/// blocks always hit the global arena (they are rare and big enough
/// that a mutex is noise).
constexpr std::size_t kThreadCacheMaxBytes = 1u << 20;
constexpr std::size_t kThreadCacheSlots = 8;   // blocks kept per class

struct Stats {
  std::atomic<std::uint64_t> alloc_calls{0};
  std::atomic<std::uint64_t> pool_hits{0};
  std::atomic<std::uint64_t> fresh_allocs{0};
  std::atomic<std::uint64_t> pool_fallbacks{0};
  std::atomic<std::uint64_t> bytes_allocated{0};
  std::atomic<std::uint64_t> bytes_pooled{0};
  std::atomic<std::uint64_t> bytes_outstanding{0};
  std::atomic<std::uint64_t> bytes_first_touched{0};
  std::atomic<std::uint64_t> bytes_zeroed{0};
  std::atomic<std::uint64_t> hugepage_bytes{0};
  std::atomic<std::uint64_t> stream_fill_bytes{0};
  std::atomic<std::uint64_t> stream_copy_bytes{0};
};

Stats& g_stats() {
  static Stats s;
  return s;
}

/// Everything known about a block handed out by alloc(): the rounded
/// size and the alignment used, so dealloc pairs the sized/aligned
/// delete exactly. Kept (keyed by pointer) for the block's whole OS
/// lifetime, including while parked in the pool.
struct Meta {
  std::size_t bytes = 0;
  std::size_t align = kMinAlign;
  bool huge = false;
  /// False for graceful-degradation blocks: sized to the raw request
  /// rather than a size class, so they must never enter the pool.
  bool pool_eligible = true;
};

/// Global arena: per-class freelists plus the pointer->Meta registry.
/// Leaked on purpose - thread-cache flush destructors and late frees
/// in static teardown must always find it alive.
struct Arena {
  std::mutex mu;
  std::array<std::vector<void*>, kNumClasses> free_lists;
  std::unordered_map<void*, Meta> registry;
};

Arena& g_arena() {
  static Arena* a = new Arena;  // intentionally leaked
  return *a;
}

std::mutex& g_config_mu() {
  static std::mutex mu;
  return mu;
}

bool parse_switch(const char* name, bool fallback) {
  static constexpr std::string_view kOnOff[] = {"off", "on"};
  if (auto idx = env::get_choice(name, kOnOff)) return *idx == 1;
  return fallback;
}

Config parse_config() {
  Config c;
  c.pool = parse_switch("SYCLPORT_POOL", c.pool);
  c.hugepages = parse_switch("SYCLPORT_HUGEPAGES", c.hugepages);
  c.first_touch = parse_switch("SYCLPORT_FIRST_TOUCH", c.first_touch);
  c.stream_stores = parse_switch("SYCLPORT_STREAM_STORES", c.stream_stores);
  if (auto mb = env::get_long("SYCLPORT_POOL_MAX_MB", 0, 1 << 20))
    c.pool_max_bytes = static_cast<std::size_t>(*mb) << 20;
  return c;
}

Config& g_config() {
  static Config c = parse_config();
  return c;
}

thread_local std::optional<bool> t_first_touch_override;

/// Class index for a poolable rounded size, or nullopt when the block
/// bypasses the pool entirely.
std::optional<std::size_t> class_index(std::size_t rounded) noexcept {
  if (rounded > kMaxClassBytes) return std::nullopt;
  const auto idx = static_cast<std::size_t>(std::bit_width(rounded) - 1) -
                   kClassShift;
  return idx < kNumClasses ? std::optional<std::size_t>(idx) : std::nullopt;
}

/// Per-thread free cache over the small classes. The destructor (thread
/// exit) flushes every cached block back to the global arena.
struct ThreadCache {
  struct Slot {
    std::array<void*, kThreadCacheSlots> blocks{};
    std::size_t count = 0;
  };
  std::array<Slot, kNumClasses> slots;

  ~ThreadCache() {
    Arena& arena = g_arena();
    std::lock_guard lock(arena.mu);
    for (std::size_t c = 0; c < kNumClasses; ++c)
      for (std::size_t i = 0; i < slots[c].count; ++i)
        arena.free_lists[c].push_back(slots[c].blocks[i]);
  }
};

ThreadCache& t_cache() {
  thread_local ThreadCache cache;
  return cache;
}

bool class_thread_cached(std::size_t cls) noexcept {
  return (kMinClassBytes << cls) <= kThreadCacheMaxBytes;
}

void os_release(void* p, const Meta& m) noexcept {
  ::operator delete(p, m.bytes, std::align_val_t{m.align});
}

/// Touch one byte per page so the OS commits it on the calling thread's
/// NUMA node. Content is unspecified afterwards (Init::Touch contract).
void touch_pages(std::byte* base, std::size_t bytes) noexcept {
  for (std::size_t off = 0; off < bytes; off += kPageBytes)
    *reinterpret_cast<volatile std::byte*>(base + off) = std::byte{0};
}

/// Parallel page touch under the executor's static-schedule topology so
/// pages land on the node of the worker that will stream them. Chunking
/// is over pages, mirroring how parallel_for chunks the element range.
void first_touch(void* p, std::size_t bytes) {
  auto* base = static_cast<std::byte*>(p);
  const std::size_t pages = (bytes + kPageBytes - 1) / kPageBytes;
  if (bytes < mem::detail::kParallelBytesThreshold ||
      serial_execution_forced()) {
    touch_pages(base, bytes);
    return;
  }
  ScopedLaunchParams params(Schedule::Static, std::nullopt);
  ThreadPool::global().parallel_for(pages, [&](std::size_t b, std::size_t e) {
    touch_pages(base + b * kPageBytes,
                std::min(bytes, e * kPageBytes) - b * kPageBytes);
  });
}

/// Parallel streaming zero; doubles as the first touch (a zero store
/// places the page just as well as a dummy touch). Word-sized NT stores
/// need 8-byte alignment, which the 64-byte allocation base guarantees;
/// a ragged tail falls back to memset inside fill_serial's gate.
void zero_parallel(void* p, std::size_t bytes) {
  auto* base = static_cast<std::byte*>(p);
  const std::size_t words = bytes / 8;
  if (words > 0) parallel_fill(reinterpret_cast<std::uint64_t*>(base), words,
                               std::uint64_t{0});
  if (const std::size_t tail = bytes % 8; tail != 0)
    std::memset(base + words * 8, 0, tail);
}

}  // namespace

const Config& config() { return g_config(); }

void set_config_for_testing(const Config& c) {
  trim();
  std::lock_guard lock(g_config_mu());
  g_config() = c;
}

std::size_t size_class_bytes(std::size_t bytes) noexcept {
  if (bytes <= kMinClassBytes) return kMinClassBytes;
  if (bytes > kMaxClassBytes) {
    // Beyond the largest class: not pooled; round to page (or huge-page)
    // multiples so the OS mapping is exact.
    const std::size_t unit = g_config().hugepages ? kHugePage : kPageBytes;
    return (bytes + unit - 1) / unit * unit;
  }
  return std::bit_ceil(bytes);
}

std::optional<bool> first_touch_override() noexcept {
  return t_first_touch_override;
}

void set_first_touch_override(std::optional<bool> v) noexcept {
  t_first_touch_override = v;
}

bool first_touch_active() noexcept {
  return t_first_touch_override.value_or(g_config().first_touch);
}

bool stream_stores_active() noexcept { return g_config().stream_stores; }

void* alloc(std::size_t bytes, Init init) {
  Stats& st = g_stats();
  const Config& cfg = g_config();
  const std::size_t rounded = size_class_bytes(bytes);
  const bool huge = cfg.hugepages && rounded >= kHugePage;
  const std::size_t align = huge ? kHugePage : kMinAlign;
  const auto cls = class_index(rounded);

  st.alloc_calls.fetch_add(1, std::memory_order_relaxed);

  // Injected arena-cap pressure: the pool is treated as exhausted for
  // this request, forcing the fresh-allocation path.
  const bool arena_pressure =
      fault::armed() && fault::roll(fault::Site::MemArena).fire;

  void* p = nullptr;
  if (cfg.pool && cls && !arena_pressure) {
    if (class_thread_cached(*cls)) {
      auto& slot = t_cache().slots[*cls];
      if (slot.count > 0) p = slot.blocks[--slot.count];
    }
    if (!p) {
      Arena& arena = g_arena();
      std::lock_guard lock(arena.mu);
      auto& list = arena.free_lists[*cls];
      if (!list.empty()) {
        p = list.back();
        list.pop_back();
      }
    }
  }

  // Effective geometry of the block handed out: the size-class rounding
  // normally, the raw request on the degradation path below.
  std::size_t actual = rounded;
  const bool fresh = p == nullptr;
  if (fresh) {
    std::size_t actual_align = align;
    bool actual_huge = huge;
    bool pool_eligible = true;
    const bool inject_fail =
        fault::armed() && fault::roll(fault::Site::MemAlloc).fire;
    if (!inject_fail) {
      try {
        p = ::operator new(rounded, std::align_val_t{align});
      } catch (const std::bad_alloc&) {
        p = nullptr;  // degrade below rather than propagate
      }
    }
    if (p) {
#if defined(__linux__) && defined(MADV_HUGEPAGE)
      if (huge) ::madvise(p, rounded, MADV_HUGEPAGE);
#endif
      if (arena_pressure) fault::note_recovered(fault::Site::MemArena);
    } else {
      // Graceful degradation: the size-class allocation failed (real
      // upstream bad_alloc or an injected one), so serve the request
      // with a plain cache-line-aligned allocation of the raw size -
      // often much smaller than the power-of-two class - that bypasses
      // the pool for its whole lifetime. Only a genuine out-of-memory
      // on *this* exact-size attempt still throws.
      actual = (std::max<std::size_t>(bytes, 1) + kMinAlign - 1) /
               kMinAlign * kMinAlign;
      actual_align = kMinAlign;
      actual_huge = false;
      pool_eligible = false;
      p = ::operator new(actual, std::align_val_t{kMinAlign});
      st.pool_fallbacks.fetch_add(1, std::memory_order_relaxed);
      if (fault::armed()) {
        fault::note_recovered(fault::Site::MemAlloc);
        // An arena-pressure injection on this same request was also
        // survived - keep injected/recovered telemetry balanced.
        if (arena_pressure) fault::note_recovered(fault::Site::MemArena);
      }
    }
    Arena& arena = g_arena();
    std::lock_guard lock(arena.mu);
    arena.registry.emplace(p, Meta{actual, actual_align, actual_huge,
                                   pool_eligible});
    st.fresh_allocs.fetch_add(1, std::memory_order_relaxed);
    if (actual_huge)
      st.hugepage_bytes.fetch_add(actual, std::memory_order_relaxed);
  } else {
    st.pool_hits.fetch_add(1, std::memory_order_relaxed);
    st.bytes_pooled.fetch_sub(rounded, std::memory_order_relaxed);
  }
  st.bytes_allocated.fetch_add(actual, std::memory_order_relaxed);
  st.bytes_outstanding.fetch_add(actual, std::memory_order_relaxed);

  switch (init) {
    case Init::None:
      break;
    case Init::Touch:
      // Pool-reused pages are already committed and placed; re-touching
      // would only scribble on them.
      if (fresh) {
        if (first_touch_active()) {
          first_touch(p, actual);
        } else {
          touch_pages(static_cast<std::byte*>(p), actual);
        }
        st.bytes_first_touched.fetch_add(actual, std::memory_order_relaxed);
      }
      break;
    case Init::Zero:
      // Always zero: a reused block carries the previous owner's data.
      zero_fill(p, actual);
      break;
  }
  return p;
}

void dealloc(void* p) noexcept {
  if (!p) return;
  Stats& st = g_stats();
  const Config& cfg = g_config();
  Arena& arena = g_arena();

  Meta m;
  {
    std::lock_guard lock(arena.mu);
    auto it = arena.registry.find(p);
    if (it == arena.registry.end()) return;  // not ours / double free
    m = it->second;
  }
  st.bytes_outstanding.fetch_sub(m.bytes, std::memory_order_relaxed);

  const auto cls = class_index(m.bytes);
  const bool pool_it =
      m.pool_eligible && cfg.pool && cls &&
      st.bytes_pooled.load(std::memory_order_relaxed) + m.bytes <=
          cfg.pool_max_bytes;
  if (pool_it) {
    st.bytes_pooled.fetch_add(m.bytes, std::memory_order_relaxed);
    if (class_thread_cached(*cls)) {
      auto& slot = t_cache().slots[*cls];
      if (slot.count < kThreadCacheSlots) {
        slot.blocks[slot.count++] = p;
        return;
      }
    }
    std::lock_guard lock(arena.mu);
    arena.free_lists[*cls].push_back(p);
    return;
  }

  {
    std::lock_guard lock(arena.mu);
    arena.registry.erase(p);
  }
  os_release(p, m);
}

void trim() {
  Arena& arena = g_arena();
  Stats& st = g_stats();
  // Flush this thread's cache into the global lists first so it is
  // trimmed too (other threads' caches drain at their thread exit).
  ThreadCache& cache = t_cache();
  std::vector<std::pair<void*, Meta>> victims;
  {
    std::lock_guard lock(arena.mu);
    for (std::size_t c = 0; c < kNumClasses; ++c) {
      auto& slot = cache.slots[c];
      for (std::size_t i = 0; i < slot.count; ++i)
        arena.free_lists[c].push_back(slot.blocks[i]);
      slot.count = 0;
      for (void* p : arena.free_lists[c]) {
        auto it = arena.registry.find(p);
        if (it != arena.registry.end()) {
          victims.emplace_back(p, it->second);
          arena.registry.erase(it);
        }
      }
      arena.free_lists[c].clear();
    }
  }
  for (auto& [p, m] : victims) {
    st.bytes_pooled.fetch_sub(m.bytes, std::memory_order_relaxed);
    os_release(p, m);
  }
}

void zero_fill(void* p, std::size_t bytes) {
  Stats& st = g_stats();
  st.bytes_zeroed.fetch_add(bytes, std::memory_order_relaxed);
  st.bytes_first_touched.fetch_add(bytes, std::memory_order_relaxed);
  if (first_touch_active()) {
    zero_parallel(p, bytes);
  } else {
    std::memset(p, 0, bytes);
  }
}

MemStats stats() {
  const Stats& st = g_stats();
  MemStats out;
  out.alloc_calls = st.alloc_calls.load(std::memory_order_relaxed);
  out.pool_hits = st.pool_hits.load(std::memory_order_relaxed);
  out.fresh_allocs = st.fresh_allocs.load(std::memory_order_relaxed);
  out.pool_fallbacks = st.pool_fallbacks.load(std::memory_order_relaxed);
  out.bytes_allocated = st.bytes_allocated.load(std::memory_order_relaxed);
  out.bytes_pooled = st.bytes_pooled.load(std::memory_order_relaxed);
  out.bytes_outstanding = st.bytes_outstanding.load(std::memory_order_relaxed);
  out.bytes_first_touched =
      st.bytes_first_touched.load(std::memory_order_relaxed);
  out.bytes_zeroed = st.bytes_zeroed.load(std::memory_order_relaxed);
  out.hugepage_bytes = st.hugepage_bytes.load(std::memory_order_relaxed);
  out.stream_fill_bytes = st.stream_fill_bytes.load(std::memory_order_relaxed);
  out.stream_copy_bytes = st.stream_copy_bytes.load(std::memory_order_relaxed);
  return out;
}

void reset_stats_for_testing() {
  Stats& st = g_stats();
  st.alloc_calls.store(0, std::memory_order_relaxed);
  st.pool_hits.store(0, std::memory_order_relaxed);
  st.fresh_allocs.store(0, std::memory_order_relaxed);
  st.pool_fallbacks.store(0, std::memory_order_relaxed);
  st.bytes_allocated.store(0, std::memory_order_relaxed);
  st.bytes_first_touched.store(0, std::memory_order_relaxed);
  st.bytes_zeroed.store(0, std::memory_order_relaxed);
  st.hugepage_bytes.store(0, std::memory_order_relaxed);
  st.stream_fill_bytes.store(0, std::memory_order_relaxed);
  st.stream_copy_bytes.store(0, std::memory_order_relaxed);
  // bytes_pooled / bytes_outstanding track live state, not history -
  // resetting them would corrupt later accounting.
}

namespace detail {

void note_stream_fill(std::size_t bytes) noexcept {
  g_stats().stream_fill_bytes.fetch_add(bytes, std::memory_order_relaxed);
}

void note_stream_copy(std::size_t bytes) noexcept {
  g_stats().stream_copy_bytes.fetch_add(bytes, std::memory_order_relaxed);
}

}  // namespace detail

}  // namespace syclport::rt::mem
