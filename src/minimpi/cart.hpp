#pragma once
/// \file cart.hpp
/// Cartesian decomposition over a mini-MPI world: rank coordinates,
/// neighbour lookup, and per-rank sub-ranges of a global grid - the
/// owner-compute layout OPS uses for structured meshes (paper §3).

#include <array>
#include <cstddef>

#include "core/factorize.hpp"

namespace syclport::mpi {

class CartDecomp {
 public:
  /// Decompose `nranks` over `dims` dimensions; `rank` selects this
  /// rank's coordinates (row-major over the rank grid).
  CartDecomp(int rank, int nranks, int dims);

  [[nodiscard]] int dims() const { return dims_; }
  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] const std::array<int, 3>& grid() const { return grid_; }
  [[nodiscard]] const std::array<int, 3>& coords() const { return coords_; }

  /// Rank of the neighbour one step along `dim` in direction `dir`
  /// (-1/+1); returns -1 at the domain edge (no periodic wrap).
  [[nodiscard]] int neighbour(int dim, int dir) const;

  /// Sub-range [begin, end) of `global` points owned by this rank along
  /// `dim` (block distribution, remainder spread over leading ranks).
  [[nodiscard]] std::pair<std::size_t, std::size_t> owned(
      int dim, std::size_t global) const;

 private:
  int rank_;
  int dims_;
  std::array<int, 3> grid_{1, 1, 1};
  std::array<int, 3> coords_{0, 0, 0};
};

}  // namespace syclport::mpi
