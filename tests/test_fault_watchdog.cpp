// Launch watchdog (SYCLPORT_WATCHDOG_MS): a synchronization point that
// makes no progress for the configured window throws
// fault::watchdog_error instead of deadlocking. Lives in its own test
// binary because the scheduler reads the variable once, when its
// process-wide singleton is constructed - it must be in the
// environment before the first queue operation.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <thread>

#include "runtime/fault/fault.hpp"
#include "sycl/sycl.hpp"

namespace fault = syclport::rt::fault;

namespace {
// Arm the watchdog during static initialization, ahead of the lazy
// scheduler singleton.
const bool g_armed = [] {
  ::setenv("SYCLPORT_WATCHDOG_MS", "150", 1);
  return true;
}();
}  // namespace

TEST(Watchdog, StuckCommandRaisesTypedErrorInsteadOfDeadlock) {
  ASSERT_TRUE(g_armed);
  std::atomic<bool> release{false};
  std::atomic<int> watchdog_hits{0};
  sycl::queue q;
  int x = 0;

  // cmd1 blocks until released; cmd2 depends on it. Two threads wait on
  // the queue: whichever helps first executes cmd1 and blocks inside
  // it; the other sees no progress for 150 ms and must get the
  // watchdog error rather than sleep forever.
  q.submit([&](sycl::handler& h) {
    h.require(&x, sycl::access_mode::write);
    h.single_task([&release, &x] {
      while (!release.load(std::memory_order_acquire))
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      x = 1;
    });
  });
  q.submit([&](sycl::handler& h) {
    h.require(&x, sycl::access_mode::read_write);
    h.single_task([&x] { x += 10; });
  });

  std::thread waiter([&] {
    try {
      q.wait_and_throw();
    } catch (const fault::watchdog_error& e) {
      watchdog_hits.fetch_add(1);
      EXPECT_GE(e.stuck_commands, 1u);
      release.store(true, std::memory_order_release);  // unblock cmd1
    }
  });
  try {
    q.wait_and_throw();
  } catch (const fault::watchdog_error& e) {
    watchdog_hits.fetch_add(1);
    EXPECT_GE(e.stuck_commands, 1u);
    release.store(true, std::memory_order_release);
  }
  waiter.join();
  // At least one waiter was stuck watching (a pool worker or the other
  // waiter was executing the blocked command) and got the typed error.
  EXPECT_GE(watchdog_hits.load(), 1);

  // The scheduler survived the timeout: drain and keep using the queue.
  q.wait_and_throw();
  EXPECT_EQ(x, 11);
  q.submit([&](sycl::handler& h) {
    h.require(&x, sycl::access_mode::read_write);
    h.single_task([&x] { x += 100; });
  });
  q.wait_and_throw();
  EXPECT_EQ(x, 111);
}
