#pragma once
/// \file set.hpp
/// OP2 sets and maps. A Set is a collection of mesh elements (vertices,
/// edges, cells); a Map is a fixed-arity connectivity table between two
/// sets (e.g. edges -> 2 cells). Maps drive indirect addressing, race
/// detection and the colouring plans (paper §3, Figure 1).

#include <cassert>
#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

namespace syclport::op2 {

class Set {
 public:
  Set(std::string name, std::size_t size) : name_(std::move(name)), size_(size) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t size() const { return size_; }

  /// Record that the set's elements were renumbered: new element i is
  /// old element perm[i]. Compositions accumulate, so to_original()
  /// always maps the *current* numbering back to the numbering the set
  /// was created with - the canonical order op2::checkpoint serializes.
  void note_permutation(const std::vector<int>& perm) {
    if (perm.size() != size_)
      throw std::invalid_argument("Set " + name_ + ": permutation size");
    if (to_original_.empty()) {
      to_original_ = perm;
      return;
    }
    std::vector<int> composed(size_);
    for (std::size_t i = 0; i < size_; ++i)
      composed[i] = to_original_[static_cast<std::size_t>(perm[i])];
    to_original_ = std::move(composed);
  }

  /// Current element i was element to_original(i) in the creation-time
  /// numbering (identity when the set was never renumbered).
  [[nodiscard]] std::size_t to_original(std::size_t i) const {
    return to_original_.empty() ? i
                                : static_cast<std::size_t>(to_original_[i]);
  }
  [[nodiscard]] bool renumbered() const { return !to_original_.empty(); }

 private:
  std::string name_;
  std::size_t size_;
  std::vector<int> to_original_;  ///< empty = identity
};

class Map {
 public:
  /// Uninitialized map (fill via at()); entries must be < to.size().
  Map(Set& from, Set& to, int arity, std::string name)
      : from_(&from),
        to_(&to),
        arity_(arity),
        name_(std::move(name)),
        data_(from.size() * static_cast<std::size_t>(arity), 0) {}

  [[nodiscard]] Set& from() const { return *from_; }
  [[nodiscard]] Set& to() const { return *to_; }
  [[nodiscard]] int arity() const { return arity_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  [[nodiscard]] int& at(std::size_t elem, int i) {
    return data_[elem * static_cast<std::size_t>(arity_) +
                 static_cast<std::size_t>(i)];
  }
  [[nodiscard]] int at(std::size_t elem, int i) const {
    return data_[elem * static_cast<std::size_t>(arity_) +
                 static_cast<std::size_t>(i)];
  }

  [[nodiscard]] const int* row(std::size_t elem) const {
    return data_.data() + elem * static_cast<std::size_t>(arity_);
  }

  /// Bytes streamed when the whole map is read once.
  [[nodiscard]] double bytes() const {
    return static_cast<double>(data_.size()) * sizeof(int);
  }

  /// Validate that every entry indexes into the target set.
  void check() const {
    for (int v : data_)
      if (v < 0 || static_cast<std::size_t>(v) >= to_->size())
        throw std::out_of_range("Map " + name_ + ": entry out of range");
  }

 private:
  Set* from_;
  Set* to_;
  int arity_;
  std::string name_;
  std::vector<int> data_;
};

}  // namespace syclport::op2
