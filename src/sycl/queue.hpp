#pragma once
/// \file queue.hpp
/// miniSYCL queue. By default the queue is out-of-order, as in SYCL
/// 2020: submit() records the command group, derives dependency edges
/// from its accessor footprint (and explicit depends_on events), and
/// hands it to the process-wide scheduler so independent command
/// groups execute concurrently. Synchronization points - event::wait,
/// queue::wait, buffer destruction, host accessors - are real.
///
/// Degenerate cases that keep the seed's synchronous semantics:
/// - a queue constructed with property::queue::in_order;
/// - a command group that declares *no* footprint (no accessors, no
///   require(), no depends_on): the runtime cannot know what it
///   touches, so it conservatively waits for the scheduler to drain
///   and runs inline. The queue shortcuts (q.parallel_for,
///   q.single_task) take this path with zero per-launch allocation -
///   the DSL hot path is unchanged from the seed.
///
/// Kernel exceptions on the asynchronous path are captured per
/// command: event::wait() rethrows them; queue::wait_and_throw()
/// drains them, either into the async_handler passed at queue
/// construction (SYCL 2020) or by rethrowing the first.

#include <cstring>
#include <memory>
#include <utility>

#include "runtime/mem/stream.hpp"
#include "sycl/detail/scheduler.hpp"
#include "sycl/device.hpp"
#include "sycl/event.hpp"
#include "sycl/exception.hpp"
#include "sycl/handler.hpp"
#include "sycl/property.hpp"

namespace sycl {

class queue {
 public:
  queue() : queue(device::host(), property_list{}) {}
  explicit queue(device dev) : queue(std::move(dev), property_list{}) {}
  explicit queue(const property_list& props)
      : queue(device::host(), props) {}
  queue(device dev, const property_list& props)
      : dev_(std::move(dev)),
        in_order_(props.has_in_order()),
        qid_(detail::next_queue_id()) {}
  explicit queue(async_handler h, const property_list& props = {})
      : queue(device::host(), std::move(h), props) {}
  queue(device dev, async_handler h, const property_list& props = {})
      : dev_(std::move(dev)),
        handler_(std::move(h)),
        in_order_(props.has_in_order()),
        qid_(detail::next_queue_id()) {}

  [[nodiscard]] const device& get_device() const { return dev_; }
  [[nodiscard]] bool is_in_order() const { return in_order_; }

  /// Submit a command group. Executes synchronously on in_order queues
  /// and for footprint-less command groups; otherwise records a
  /// scheduler command and returns an event tracking it.
  template <typename CGF>
  event submit(CGF&& cgf) {
    if (in_order_) {
      syclport::WallTimer t;
      handler h(dev_, /*deferred=*/false);
      std::forward<CGF>(cgf)(h);
      return event(t.seconds());
    }
    handler h(dev_, /*deferred=*/true);
    std::forward<CGF>(cgf)(h);
    return finalize(h);
  }

  /// Shortcut forms, as in SYCL 2020. Executed immediately (there is no
  /// accessor footprint a shortcut could declare), preceded by a
  /// conservative wait on in-flight commands; zero-allocation.
  template <typename... Args>
  event parallel_for(Args&&... args) {
    syclport::WallTimer t;
    handler h(dev_, /*deferred=*/false);
    h.parallel_for(std::forward<Args>(args)...);
    return event(t.seconds());
  }

  template <typename K>
  event single_task(const K& k) {
    syclport::WallTimer t;
    handler h(dev_, /*deferred=*/false);
    h.single_task(k);
    return event(t.seconds());
  }

  /// USM-style utility operations. Synchronous, but wait only on
  /// in-flight commands that conflict with the declared src/dst
  /// footprint. Both are pure-write streams over dst, so they go
  /// through the rt::mem streaming-store paths: non-temporal stores
  /// (no read-for-ownership traffic) fanned out over the thread pool
  /// under a placement-preserving static schedule.
  event memcpy(void* dst, const void* src, std::size_t bytes) {
    sync_footprint({{dst, access_mode::discard_write},
                    {src, access_mode::read}});
    syclport::WallTimer t;
    syclport::rt::mem::parallel_copy(dst, src, bytes);
    return event(t.seconds());
  }

  template <typename T>
  event fill(T* ptr, const T& value, std::size_t count) {
    sync_footprint({{ptr, access_mode::discard_write}});
    syclport::WallTimer t;
    syclport::rt::mem::parallel_fill(ptr, count, value);
    return event(t.seconds());
  }

  /// Block until every command submitted to this queue has completed.
  queue& wait() {
    auto& s = detail::Scheduler::instance();
    if (s.active()) s.wait_queue(qid_);
    return *this;
  }

  /// wait(), then surface captured kernel exceptions: all of them to
  /// the async_handler if one was given at construction, otherwise the
  /// first is rethrown (the rest are dropped, as in SYCL).
  void wait_and_throw() {
    wait();
    throw_asynchronous();
  }

  /// Surface captured kernel exceptions without waiting first.
  void throw_asynchronous() {
    auto errs = detail::Scheduler::instance().consume_queue_errors(qid_);
    if (errs.empty()) return;
    if (handler_) {
      exception_list list;
      for (auto& e : errs) list.push_back(std::move(e));
      handler_(std::move(list));
      return;
    }
    std::rethrow_exception(errs.front());
  }

 private:
  event finalize(handler& h) {
    auto cmd = std::move(h.cmd_);
    if (cmd->accesses.empty() && !h.explicit_deps_) {
      // Undeclared footprint: the scheduler cannot place this command
      // in the DAG, so drain in-flight work and run inline. The pooled
      // node goes straight back to the free list.
      h.sync_immediate();
      syclport::WallTimer t;
      for (auto& a : cmd->actions) a();
      return event(t.seconds());
    }
    cmd->name = h.name_ ? h.name_ : "(command)";
    cmd->queue_id = qid_;
    detail::Scheduler::instance().submit(cmd);
    return event(std::move(cmd));
  }

  void sync_footprint(const std::vector<detail::AccessRecord>& accs) {
    auto& s = detail::Scheduler::instance();
    if (s.active()) s.wait_conflicts(accs);
  }

  device dev_;
  async_handler handler_;
  bool in_order_ = false;
  std::uint64_t qid_ = 0;
};

}  // namespace sycl
