// mpi_halo_demo: the mini-MPI substrate in action - a genuinely
// message-passing 2D stencil solve: each rank owns a block of the grid
// with ghost layers, exchanges face halos every sweep, and the
// distributed result matches the serial one bit-for-bit.
//
// This is the owner-compute structure OPS's MPI backend uses (paper
// §3); the cost side of it (rank counts, halo volumes per platform)
// lives in hwmodel/comm_model.
//
// Build & run:  ./build/examples/mpi_halo_demo

#include <cmath>
#include <cstdio>
#include <mutex>
#include <vector>

#include "minimpi/cart.hpp"
#include "minimpi/comm.hpp"
#include "minimpi/halo.hpp"

namespace mpi = syclport::mpi;

namespace {

constexpr std::size_t N = 64;
constexpr int kIters = 40;

double initial(std::size_t i, std::size_t j) {
  return std::sin(0.2 * static_cast<double>(i)) +
         std::cos(0.3 * static_cast<double>(j));
}

/// Serial reference Jacobi.
double serial_solve() {
  std::vector<double> a(N * N);
  for (std::size_t i = 0; i < N; ++i)
    for (std::size_t j = 0; j < N; ++j) a[i * N + j] = initial(i, j);
  std::vector<double> b(a);  // boundary rows stay at their initial values
  for (int it = 0; it < kIters; ++it) {
    for (std::size_t i = 1; i + 1 < N; ++i)
      for (std::size_t j = 1; j + 1 < N; ++j)
        b[i * N + j] = 0.25 * (a[(i - 1) * N + j] + a[(i + 1) * N + j] +
                               a[i * N + j - 1] + a[i * N + j + 1]);
    std::swap(a, b);
  }
  double sum = 0.0;
  for (double v : a) sum += v;
  return sum;
}

}  // namespace

int main() {
  const double serial = serial_solve();
  std::printf("serial checksum:      %.12f\n", serial);

  for (int nranks : {2, 4, 6}) {
    double dist = 0.0;
    std::mutex mu;
    mpi::run(nranks, [&](mpi::Comm& comm) {
      mpi::CartDecomp cart(comm.rank(), nranks, 2);
      auto [ib, ie] = cart.owned(0, N);
      auto [jb, je] = cart.owned(1, N);
      mpi::LocalField<double> f, g;
      f.dims = g.dims = 2;
      f.local = g.local = {ie - ib, je - jb, 1};
      f.halo = g.halo = 1;
      f.allocate();
      g.allocate();
      for (std::size_t i = ib; i < ie; ++i)
        for (std::size_t j = jb; j < je; ++j)
          f.at(static_cast<std::ptrdiff_t>(i - ib),
               static_cast<std::ptrdiff_t>(j - jb)) = initial(i, j);

      for (int it = 0; it < kIters; ++it) {
        mpi::exchange_halos(comm, cart, f);
        for (std::size_t i = ib; i < ie; ++i)
          for (std::size_t j = jb; j < je; ++j) {
            const auto li = static_cast<std::ptrdiff_t>(i - ib);
            const auto lj = static_cast<std::ptrdiff_t>(j - jb);
            if (i == 0 || i == N - 1 || j == 0 || j == N - 1) {
              g.at(li, lj) = f.at(li, lj);  // fixed boundary
            } else {
              g.at(li, lj) = 0.25 * (f.at(li - 1, lj) + f.at(li + 1, lj) +
                                     f.at(li, lj - 1) + f.at(li, lj + 1));
            }
          }
        std::swap(f.data, g.data);
      }
      double local = 0.0;
      for (std::size_t i = ib; i < ie; ++i)
        for (std::size_t j = jb; j < je; ++j)
          local += f.at(static_cast<std::ptrdiff_t>(i - ib),
                        static_cast<std::ptrdiff_t>(j - jb));
      const double total = comm.allreduce(local, mpi::Op::Sum);
      std::lock_guard lock(mu);
      dist = total;
    });
    std::printf("%d-rank checksum:      %.12f   (delta %.2e)\n", nranks, dist,
                std::fabs(dist - serial));
  }
  std::printf("\ndistributed == serial: the halo exchange is coherent.\n");
  return 0;
}
