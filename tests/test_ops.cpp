// Unit and property tests for the OPS structured-mesh DSL: dat layout,
// par_loop execution across every backend, boundary ranges, reductions,
// tree reduction, and LoopProfile recording.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "ops/ops.hpp"

namespace ops = syclport::ops;
namespace hw = syclport::hw;

namespace {

ops::Options exec_opts(ops::Backend b) {
  ops::Options o;
  o.backend = b;
  return o;
}

/// All execution backends, for parameterized sweeps.
const std::vector<ops::Backend> kBackends = {
    ops::Backend::Serial,   ops::Backend::Threads, ops::Backend::SyclFlat,
    ops::Backend::SyclNd,   ops::Backend::MPI,     ops::Backend::MPIThreads};

std::string backend_name(ops::Backend b) {
  switch (b) {
    case ops::Backend::Serial: return "Serial";
    case ops::Backend::Threads: return "Threads";
    case ops::Backend::SyclFlat: return "SyclFlat";
    case ops::Backend::SyclNd: return "SyclNd";
    case ops::Backend::MPI: return "MPI";
    case ops::Backend::MPIThreads: return "MPIThreads";
  }
  return "?";
}

}  // namespace

TEST(Dat, LayoutAndStrides) {
  ops::Context ctx(exec_opts(ops::Backend::Serial));
  ops::Block b(ctx, "grid", 2, {4, 6, 1});  // ny=4 (slow), nx=6 (fast)
  ops::Dat<double> d(b, "f", 1, 2);
  EXPECT_EQ(d.stride_fast(), 1);
  EXPECT_EQ(d.stride_mid(), 6 + 4);  // nx + 2*halo
  d.at(0, 0) = 1.0;
  d.at(3, 5) = 2.0;
  d.at(-2, -2) = 3.0;  // halo corner
  EXPECT_DOUBLE_EQ(d.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(d.at(3, 5), 2.0);
  EXPECT_DOUBLE_EQ(d.interior_sum(), 3.0);  // halo values excluded
}

TEST(Dat, MultiComponent) {
  ops::Context ctx(exec_opts(ops::Backend::Serial));
  ops::Block b(ctx, "grid", 2, {3, 3, 1});
  ops::Dat<double> d(b, "vec", 4, 1);
  d.at(1, 1, 0, 2) = 7.0;
  EXPECT_DOUBLE_EQ(d.at(1, 1, 0, 2), 7.0);
  EXPECT_DOUBLE_EQ(d.at(1, 1, 0, 3), 0.0);
  EXPECT_DOUBLE_EQ(d.interior_bytes(), 9.0 * 4 * 8);
}

TEST(Dat, ModelOnlyAllocatesNothing) {
  ops::Options o = exec_opts(ops::Backend::Serial);
  o.mode = ops::Mode::ModelOnly;
  ops::Context ctx(o);
  ops::Block b(ctx, "grid", 3, {7680, 7680, 7680});  // would be ~3.5 TB
  ops::Dat<double> d(b, "huge", 1, 2);
  EXPECT_FALSE(d.allocated());
  EXPECT_EQ(d.alloc_bytes(), 0u);
}

class BackendSweep : public ::testing::TestWithParam<ops::Backend> {};

TEST_P(BackendSweep, PointwiseSaxpy2D) {
  ops::Context ctx(exec_opts(GetParam()));
  ops::Block b(ctx, "grid", 2, {17, 23, 1});  // awkward extents on purpose
  ops::Dat<double> x(b, "x", 1, 1), y(b, "y", 1, 1);
  for (long j = 0; j < 17; ++j)
    for (long i = 0; i < 23; ++i) {
      x.at(j, i) = static_cast<double>(j * 23 + i);
      y.at(j, i) = 1.0;
    }
  ops::par_loop(ctx, {"saxpy", hw::KernelClass::Interior, 2.0}, b,
                ops::Range::all(b),
                [](ops::ACC<double> yy, ops::ACC<double> xx) {
                  yy(0, 0) = 2.0 * xx(0, 0) + yy(0, 0);
                },
                ops::arg(y, ops::S_PT, ops::Acc::RW),
                ops::arg(x, ops::S_PT, ops::Acc::R));
  for (long j = 0; j < 17; ++j)
    for (long i = 0; i < 23; ++i)
      ASSERT_DOUBLE_EQ(y.at(j, i), 2.0 * (j * 23 + i) + 1.0)
          << backend_name(GetParam());
}

TEST_P(BackendSweep, FivePointStencilMatchesSerial) {
  auto run = [&](ops::Backend be) {
    ops::Context ctx(exec_opts(be));
    ops::Block b(ctx, "grid", 2, {12, 15, 1});
    ops::Dat<double> in(b, "in", 1, 1), out(b, "out", 1, 1);
    for (long j = -1; j <= 12; ++j)
      for (long i = -1; i <= 15; ++i)
        in.at(j, i) = std::sin(0.3 * j) + std::cos(0.2 * i);
    ops::par_loop(ctx, {"lap5", hw::KernelClass::Interior, 5.0}, b,
                  ops::Range::all(b),
                  [](ops::ACC<double> o, ops::ACC<double> a) {
                    o(0, 0) = a(0, 0) * -4.0 + a(1, 0) + a(-1, 0) + a(0, 1) +
                              a(0, -1);
                  },
                  ops::arg(out, ops::S_PT, ops::Acc::W),
                  ops::arg(in, ops::S2D_5PT, ops::Acc::R));
    return out.interior_sum();
  };
  EXPECT_NEAR(run(GetParam()), run(ops::Backend::Serial), 1e-9);
}

TEST_P(BackendSweep, ThreeDimensionalStencil) {
  ops::Context ctx(exec_opts(GetParam()));
  ops::Block b(ctx, "grid", 3, {9, 10, 11});
  ops::Dat<float> in(b, "in", 1, 1), out(b, "out", 1, 1);
  for (long k = -1; k <= 9; ++k)
    for (long j = -1; j <= 10; ++j)
      for (long i = -1; i <= 11; ++i)
        in.at(k, j, i) = static_cast<float>(k + 2 * j + 3 * i);
  ops::par_loop(ctx, {"avg7", hw::KernelClass::Interior, 7.0}, b,
                ops::Range::all(b),
                [](ops::ACC<float> o, ops::ACC<float> a) {
                  o(0, 0, 0) = (a(0, 0, 0) + a(1, 0, 0) + a(-1, 0, 0) +
                                a(0, 1, 0) + a(0, -1, 0) + a(0, 0, 1) +
                                a(0, 0, -1)) /
                               7.0f;
                },
                ops::arg(out, ops::S_PT, ops::Acc::W),
                ops::arg(in, ops::S3D_7PT, ops::Acc::R));
  // Interior average of a linear field equals the field itself.
  for (long k = 0; k < 9; ++k)
    for (long j = 0; j < 10; ++j)
      for (long i = 0; i < 11; ++i)
        ASSERT_NEAR(out.at(k, j, i), static_cast<float>(k + 2 * j + 3 * i),
                    1e-3f);
}

TEST_P(BackendSweep, GlobalSumReduction) {
  ops::Context ctx(exec_opts(GetParam()));
  ops::Block b(ctx, "grid", 2, {32, 32, 1});
  ops::Dat<double> f(b, "f", 1, 1);
  for (long j = 0; j < 32; ++j)
    for (long i = 0; i < 32; ++i) f.at(j, i) = 1.0;
  double sum = 0.0;
  ops::par_loop(ctx, {"sum", hw::KernelClass::Reduction, 1.0}, b,
                ops::Range::all(b),
                [](ops::ACC<double> a, ops::Reducer<double> r) {
                  r += a(0, 0);
                },
                ops::arg(f, ops::S_PT, ops::Acc::R),
                ops::reduce(sum, ops::RedOp::Sum));
  EXPECT_DOUBLE_EQ(sum, 1024.0);
}

TEST_P(BackendSweep, MinMaxReduction) {
  ops::Context ctx(exec_opts(GetParam()));
  ops::Block b(ctx, "grid", 1, {1000, 1, 1});
  ops::Dat<double> f(b, "f", 1, 0);
  for (long i = 0; i < 1000; ++i)
    f.at(i) = std::fabs(500.0 - i) + 0.5;  // minimum 0.5 at i=500
  double mn = 1e300, mx = -1e300;
  ops::par_loop(ctx, {"minmax", hw::KernelClass::Reduction, 0.0}, b,
                ops::Range::all(b),
                [](ops::ACC<double> a, ops::Reducer<double> rmin,
                   ops::Reducer<double> rmax) {
                  rmin.combine(a(0));
                  rmax.combine(a(0));
                },
                ops::arg(f, ops::S_PT, ops::Acc::R),
                ops::reduce(mn, ops::RedOp::Min),
                ops::reduce(mx, ops::RedOp::Max));
  EXPECT_DOUBLE_EQ(mn, 0.5);
  EXPECT_DOUBLE_EQ(mx, 500.5);
}

TEST_P(BackendSweep, BoundaryRangeWritesHalo) {
  // A boundary loop that mirrors the first interior column into the
  // halo - the CloverLeaf update_halo pattern.
  ops::Context ctx(exec_opts(GetParam()));
  ops::Block b(ctx, "grid", 2, {8, 8, 1});
  ops::Dat<double> f(b, "f", 1, 2);
  for (long j = 0; j < 8; ++j)
    for (long i = 0; i < 8; ++i) f.at(j, i) = 10.0 + j;
  ops::Range left;
  left.lo = {0, -2, 0};
  left.hi = {8, 0, 1};
  ops::par_loop(ctx, {"halo_left", hw::KernelClass::Boundary, 0.0}, b, left,
                [](ops::ACC<double> a) { a(0, 0) = a(2, 0); },
                ops::arg(f, ops::Stencil{2, 0, 0, 3}, ops::Acc::RW));
  for (long j = 0; j < 8; ++j) {
    EXPECT_DOUBLE_EQ(f.at(j, -1), 10.0 + j);
    // -2 column copied from column 0 via a(2,0) relative to i=-2.
    EXPECT_DOUBLE_EQ(f.at(j, -2), 10.0 + j);
  }
}

INSTANTIATE_TEST_SUITE_P(AllBackends, BackendSweep,
                         ::testing::ValuesIn(kBackends),
                         [](const auto& info) {
                           return backend_name(info.param);
                         });

TEST(ParLoop, EmptyRangeIsNoop) {
  ops::Context ctx(exec_opts(ops::Backend::Serial));
  ops::Block b(ctx, "grid", 2, {8, 8, 1});
  ops::Dat<double> f(b, "f", 1, 1);
  ops::Range r = ops::Range::all(b);
  r.hi[0] = r.lo[0];  // empty
  ops::par_loop(ctx, {"noop"}, b, r,
                [](ops::ACC<double> a) { a(0, 0) = 99.0; },
                ops::arg(f, ops::S_PT, ops::Acc::W));
  EXPECT_DOUBLE_EQ(f.interior_sum(), 0.0);
  EXPECT_TRUE(ctx.profiles.empty());
}

TEST(Profiles, FootprintsMatchOpsTransferFormula) {
  ops::Context ctx(exec_opts(ops::Backend::Serial));
  ops::Block b(ctx, "grid", 2, {100, 200, 1});
  ops::Dat<double> in(b, "in", 1, 1), out(b, "out", 1, 1);
  ops::par_loop(ctx, {"lap", hw::KernelClass::Interior, 5.0}, b,
                ops::Range::all(b),
                [](ops::ACC<double> o, ops::ACC<double> a) {
                  o(0, 0) = a(1, 0) + a(-1, 0) + a(0, 1) + a(0, -1);
                },
                ops::arg(out, ops::S_PT, ops::Acc::W),
                ops::arg(in, ops::S2D_5PT, ops::Acc::R));
  ASSERT_EQ(ctx.profiles.size(), 1u);
  const auto& lp = ctx.profiles[0];
  // Read footprint: (100+2)*(200+2) points; write: 100*200.
  EXPECT_DOUBLE_EQ(lp.bytes_read, 102.0 * 202 * 8);
  EXPECT_DOUBLE_EQ(lp.bytes_written, 100.0 * 200 * 8);
  EXPECT_EQ(lp.radius_fast, 1);
  EXPECT_EQ(lp.radius_mid, 1);
  EXPECT_EQ(lp.radius_slow, 0);
  EXPECT_EQ(lp.n_arrays, 2);
  EXPECT_DOUBLE_EQ(lp.flops, 5.0 * 100 * 200);
  EXPECT_EQ(lp.extent[0], 100u);
  EXPECT_EQ(lp.extent[1], 200u);
  EXPECT_EQ(lp.halo_depth, 0);  // not an MPI backend
}

TEST(Profiles, ReadWriteCountsTwice) {
  ops::Context ctx(exec_opts(ops::Backend::Serial));
  ops::Block b(ctx, "grid", 1, {64, 1, 1});
  ops::Dat<double> f(b, "f", 1, 0);
  ops::par_loop(ctx, {"scale"}, b, ops::Range::all(b),
                [](ops::ACC<double> a) { a(0) *= 2.0; },
                ops::arg(f, ops::S_PT, ops::Acc::RW));
  const auto& lp = ctx.profiles[0];
  EXPECT_DOUBLE_EQ(lp.bytes_read, 64.0 * 8);
  EXPECT_DOUBLE_EQ(lp.bytes_written, 64.0 * 8);
  EXPECT_DOUBLE_EQ(lp.total_bytes(), 2.0 * 64 * 8);
}

TEST(Profiles, MpiBackendRecordsHaloNeeds) {
  ops::Options o = exec_opts(ops::Backend::MPI);
  ops::Context ctx(o);
  ops::Block b(ctx, "grid", 3, {16, 16, 16});
  ops::Dat<float> in(b, "in", 1, 4), out(b, "out", 1, 4);
  ops::par_loop(ctx, {"star4"}, b, ops::Range::all(b),
                [](ops::ACC<float> ot, ops::ACC<float> a) {
                  ot(0, 0, 0) = a(4, 0, 0) + a(-4, 0, 0);
                },
                ops::arg(out, ops::S_PT, ops::Acc::W),
                ops::arg(in, ops::star(4, 3), ops::Acc::R));
  const auto& lp = ctx.profiles[0];
  EXPECT_EQ(lp.halo_depth, 4);
  EXPECT_DOUBLE_EQ(lp.halo_point_bytes, 4.0);  // one FP32 dat exchanged
}

TEST(Profiles, ModelOnlyRecordsWithoutExecuting) {
  ops::Options o = exec_opts(ops::Backend::SyclNd);
  o.mode = ops::Mode::ModelOnly;
  ops::Context ctx(o);
  ops::Block b(ctx, "grid", 2, {7680, 7680, 1});
  ops::Dat<double> f(b, "f", 1, 2);
  int calls = 0;
  ops::par_loop(ctx, {"never_runs"}, b, ops::Range::all(b),
                [&calls](ops::ACC<double>) { ++calls; },
                ops::arg(f, ops::S_PT, ops::Acc::W));
  EXPECT_EQ(calls, 0);
  ASSERT_EQ(ctx.profiles.size(), 1u);
  EXPECT_DOUBLE_EQ(ctx.profiles[0].bytes_written, 7680.0 * 7680 * 8);
}

TEST(Profiles, ReductionLoopClassified) {
  ops::Context ctx(exec_opts(ops::Backend::Serial));
  ops::Block b(ctx, "grid", 1, {8, 1, 1});
  ops::Dat<double> f(b, "f", 1, 0);
  double s = 0.0;
  ops::par_loop(ctx, {"r"}, b, ops::Range::all(b),
                [](ops::ACC<double> a, ops::Reducer<double> r) { r += a(0); },
                ops::arg(f, ops::S_PT, ops::Acc::R),
                ops::reduce(s, ops::RedOp::Sum));
  EXPECT_EQ(ctx.profiles[0].reduction, hw::ReductionKind::BuiltIn);
  EXPECT_EQ(ctx.profiles[0].cls, hw::KernelClass::Reduction);
}

TEST(TreeReduction, SumMatchesSerial) {
  sycl::queue q;
  std::vector<double> data(1000);
  double expect = 0.0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = 0.5 * static_cast<double>(i);
    expect += data[i];
  }
  double result = 0.0;
  ops::tree_reduce(q, data.data(), data.size(), 0.0, sycl::plus<double>{},
                   &result, 64);
  EXPECT_NEAR(result, expect, 1e-9);
}

TEST(TreeReduction, MinWithPadding) {
  sycl::queue q;
  std::vector<double> data(777, 5.0);
  data[400] = -3.0;
  double result = 1e300;
  ops::tree_reduce(q, data.data(), data.size(), 1e300,
                   sycl::minimum<double>{}, &result, 32);
  EXPECT_DOUBLE_EQ(result, -3.0);
}

TEST(TreeReduction, VariousWorkGroupSizes) {
  sycl::queue q;
  std::vector<double> data(512, 1.0);
  for (std::size_t wg : {1u, 2u, 8u, 64u, 256u}) {
    double result = 0.0;
    ops::tree_reduce(q, data.data(), data.size(), 0.0, sycl::plus<double>{},
                     &result, wg);
    EXPECT_DOUBLE_EQ(result, 512.0) << "wg=" << wg;
  }
}

TEST(SyclBackends, LaunchLogSeesFlatVsNd) {
  auto& log = sycl::launch_log::instance();
  log.clear();
  log.set_enabled(true);
  {
    ops::Context ctx(exec_opts(ops::Backend::SyclFlat));
    ops::Block b(ctx, "grid", 2, {16, 16, 1});
    ops::Dat<double> f(b, "f", 1, 1);
    ops::par_loop(ctx, {"k"}, b, ops::Range::all(b),
                  [](ops::ACC<double> a) { a(0, 0) = 1.0; },
                  ops::arg(f, ops::S_PT, ops::Acc::W));
  }
  {
    ops::Options o = exec_opts(ops::Backend::SyclNd);
    o.nd_local = {1, 4, 8};
    ops::Context ctx(o);
    ops::Block b(ctx, "grid", 2, {16, 16, 1});
    ops::Dat<double> f(b, "f", 1, 1);
    ops::par_loop(ctx, {"k"}, b, ops::Range::all(b),
                  [](ops::ACC<double> a) { a(0, 0) = 1.0; },
                  ops::arg(f, ops::S_PT, ops::Acc::W));
  }
  log.set_enabled(false);
  auto recs = log.snapshot();
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_FALSE(recs[0].local.has_value());
  ASSERT_TRUE(recs[1].local.has_value());
  EXPECT_EQ((*recs[1].local)[0], 4u);
  EXPECT_EQ((*recs[1].local)[1], 8u);
  log.clear();
}

TEST(SyclNd, MaskedPaddingDoesNotWriteOutOfRange) {
  ops::Options o = exec_opts(ops::Backend::SyclNd);
  o.nd_local = {1, 4, 64};  // pads 10x13 heavily
  ops::Context ctx(o);
  ops::Block b(ctx, "grid", 2, {10, 13, 1});
  ops::Dat<double> f(b, "f", 1, 2);
  ops::par_loop(ctx, {"fill"}, b, ops::Range::all(b),
                [](ops::ACC<double> a) { a(0, 0) = 1.0; },
                ops::arg(f, ops::S_PT, ops::Acc::W));
  EXPECT_DOUBLE_EQ(f.interior_sum(), 130.0);
  // Halo must remain untouched.
  EXPECT_DOUBLE_EQ(f.at(-1, -1), 0.0);
  EXPECT_DOUBLE_EQ(f.at(10, 13), 0.0);
}
