#include "runtime/fault/fault.hpp"

#include <array>
#include <charconv>
#include <chrono>
#include <map>
#include <mutex>
#include <thread>

#include "runtime/env.hpp"

namespace syclport::rt::fault {

namespace {

constexpr std::array<std::string_view, kSiteCount> kSiteNames = {
    "mem.alloc",    "mem.arena",   "pool.stall",  "sched.delay",
    "sched.reorder", "sched.throw", "comm.drop",   "comm.dup",
    "comm.corrupt", "comm.delay",  "cache.corrupt", "svc.fail",
    "rank.kill"};

/// How one site's entry decides whether an occurrence fires.
struct Trigger {
  enum class Kind : std::uint8_t { Off, Prob, Nth, EveryNth };
  Kind kind = Kind::Off;
  double prob = 0.0;      ///< Kind::Prob
  std::uint64_t n = 0;    ///< Kind::Nth / Kind::EveryNth
  std::uint64_t cap = 0;  ///< max injections of this entry; 0 = unbounded
};

/// The installed plan plus its mutable counters. Everything behind one
/// mutex: rolls happen only in chaos runs, where a lock beats the
/// subtlety of lock-free counters; the disarmed fast path never gets
/// here.
struct PlanState {
  std::uint64_t seed = 0;
  std::array<Trigger, kSiteCount> triggers{};
  std::array<std::uint64_t, kSiteCount> occurrence{};
  std::array<std::uint64_t, kSiteCount> injected{};
  std::array<std::uint64_t, kSiteCount> recovered{};
  /// roll_shared memo: the decision every caller of one (site, stream,
  /// occurrence) shares, keyed by the draw value (unique per tuple
  /// under one seed). Bounded by the number of distinct shared events
  /// a run rolls (step boundaries, not messages).
  std::map<std::uint64_t, Roll> shared;
};

std::mutex& g_mu() {
  static std::mutex mu;
  return mu;
}

PlanState& g_plan() {
  static PlanState p;
  return p;
}

[[nodiscard]] std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Deterministic draw for (seed, site, stream, occurrence).
[[nodiscard]] std::uint64_t draw(std::uint64_t seed, Site site,
                                 std::uint64_t stream,
                                 std::uint64_t occurrence) noexcept {
  std::uint64_t h = splitmix64(seed ^ 0xA5A5A5A5A5A5A5A5ull);
  h = splitmix64(h ^ (static_cast<std::uint64_t>(site) + 1));
  h = splitmix64(h ^ stream);
  h = splitmix64(h ^ occurrence);
  return h;
}

[[nodiscard]] bool parse_u64(std::string_view s, std::uint64_t& out) {
  if (s.empty()) return false;
  const auto* end = s.data() + s.size();
  const auto [p, ec] = std::from_chars(s.data(), end, out);
  return ec == std::errc() && p == end;
}

[[nodiscard]] bool parse_prob(std::string_view s, double& out) {
  if (s.empty()) return false;
  // from_chars(double) is not universally available; hand-roll the tiny
  // decimal subset the grammar allows: [0-9]*('.'[0-9]*)?
  double value = 0.0;
  std::size_t i = 0;
  bool digits = false;
  for (; i < s.size() && s[i] >= '0' && s[i] <= '9'; ++i) {
    value = value * 10.0 + (s[i] - '0');
    digits = true;
  }
  if (i < s.size() && s[i] == '.') {
    ++i;
    double scale = 0.1;
    for (; i < s.size() && s[i] >= '0' && s[i] <= '9'; ++i, scale *= 0.1) {
      value += (s[i] - '0') * scale;
      digits = true;
    }
  }
  if (!digits || i != s.size() || value < 0.0 || value > 1.0) return false;
  out = value;
  return true;
}

/// Parse one `site=trigger[xCap]` entry into `plan`. Returns false on
/// any syntax error.
[[nodiscard]] bool parse_entry(std::string_view entry, PlanState& plan) {
  const auto eq = entry.find('=');
  if (eq == std::string_view::npos) return false;
  const std::string_view name = entry.substr(0, eq);
  std::string_view rhs = entry.substr(eq + 1);

  Trigger t;
  // Optional trailing injection cap: ...xN (x cannot appear in the
  // trigger itself: probabilities are digits and dots, @n / %n digits).
  if (const auto xat = rhs.rfind('x'); xat != std::string_view::npos) {
    if (!parse_u64(rhs.substr(xat + 1), t.cap) || t.cap == 0) return false;
    rhs = rhs.substr(0, xat);
  }
  if (!rhs.empty() && rhs.front() == '@') {
    if (!parse_u64(rhs.substr(1), t.n) || t.n == 0) return false;
    t.kind = Trigger::Kind::Nth;
  } else if (!rhs.empty() && rhs.front() == '%') {
    if (!parse_u64(rhs.substr(1), t.n) || t.n == 0) return false;
    t.kind = Trigger::Kind::EveryNth;
  } else {
    if (!parse_prob(rhs, t.prob)) return false;
    t.kind = t.prob > 0.0 ? Trigger::Kind::Prob : Trigger::Kind::Off;
  }

  // `<group>.*` fans the trigger out over every site of the group.
  if (name.size() > 2 && name.ends_with(".*")) {
    const std::string_view group = name.substr(0, name.size() - 1);  // "g."
    bool any = false;
    for (std::size_t s = 0; s < kSiteCount; ++s)
      if (kSiteNames[s].starts_with(group)) {
        plan.triggers[s] = t;
        any = true;
      }
    return any;
  }
  const auto site = site_from_string(name);
  if (!site) return false;
  plan.triggers[static_cast<std::size_t>(*site)] = t;
  return true;
}

[[nodiscard]] bool parse_spec(std::string_view spec, PlanState& plan) {
  const auto colon = spec.find(':');
  if (colon == std::string_view::npos) return false;
  if (!parse_u64(spec.substr(0, colon), plan.seed)) return false;
  std::string_view rest = spec.substr(colon + 1);
  if (rest.empty()) return false;
  while (!rest.empty()) {
    const auto comma = rest.find(',');
    const std::string_view entry =
        comma == std::string_view::npos ? rest : rest.substr(0, comma);
    if (!parse_entry(entry, plan)) return false;
    rest = comma == std::string_view::npos ? std::string_view{}
                                           : rest.substr(comma + 1);
  }
  return true;
}

[[nodiscard]] Roll decide_locked(PlanState& plan, Site site,
                                 std::uint64_t stream,
                                 std::uint64_t occurrence) noexcept {
  const auto s = static_cast<std::size_t>(site);
  const Trigger& t = plan.triggers[s];
  Roll r;
  r.value = draw(plan.seed, site, stream, occurrence);
  switch (t.kind) {
    case Trigger::Kind::Off:
      return r;
    case Trigger::Kind::Prob:
      r.fire = static_cast<double>(r.value >> 11) * 0x1.0p-53 < t.prob;
      break;
    case Trigger::Kind::Nth:
      r.fire = occurrence == t.n;
      break;
    case Trigger::Kind::EveryNth:
      r.fire = occurrence % t.n == 0;
      break;
  }
  if (r.fire) {
    if (t.cap != 0 && plan.injected[s] >= t.cap) {
      r.fire = false;
    } else {
      ++plan.injected[s];
    }
  }
  return r;
}

/// Parse SYCLPORT_FAULT once at process start, before any site can be
/// reached from main(). A disarmed parse failure is deliberate: chaos
/// must be opt-in and all-or-nothing, never a half-applied spec.
[[maybe_unused]] const bool g_env_init = [] {
  if (const auto v = env::get("SYCLPORT_FAULT")) {
    if (!configure(*v))
      env::warn_invalid("SYCLPORT_FAULT", *v,
                        "seed:site=prob|@n|%n[xcap][,...]");
  }
  return true;
}();

}  // namespace

namespace detail {
std::atomic<bool> g_armed{false};
}  // namespace detail

const char* to_string(Site s) noexcept {
  return kSiteNames[static_cast<std::size_t>(s)].data();
}

std::optional<Site> site_from_string(std::string_view name) {
  for (std::size_t i = 0; i < kSiteCount; ++i)
    if (kSiteNames[i] == name) return static_cast<Site>(i);
  return std::nullopt;
}

Roll roll(Site site) noexcept {
  if (!armed()) return {};
  std::lock_guard lock(g_mu());
  PlanState& plan = g_plan();
  const auto s = static_cast<std::size_t>(site);
  return decide_locked(plan, site, /*stream=*/0, ++plan.occurrence[s]);
}

Roll roll_stream(Site site, std::uint64_t stream,
                 std::uint64_t occurrence) noexcept {
  if (!armed()) return {};
  std::lock_guard lock(g_mu());
  return decide_locked(g_plan(), site, stream, occurrence);
}

Roll roll_shared(Site site, std::uint64_t stream,
                 std::uint64_t occurrence) noexcept {
  if (!armed()) return {};
  std::lock_guard lock(g_mu());
  PlanState& plan = g_plan();
  const std::uint64_t key = draw(plan.seed, site, stream, occurrence);
  if (const auto it = plan.shared.find(key); it != plan.shared.end())
    return it->second;
  const Roll r = decide_locked(plan, site, stream, occurrence);
  plan.shared.emplace(key, r);
  return r;
}

void inject_sleep(std::uint64_t value, std::uint64_t min_us,
                  std::uint64_t max_us) noexcept {
  const std::uint64_t span = max_us > min_us ? max_us - min_us : 1;
  std::this_thread::sleep_for(
      std::chrono::microseconds(min_us + value % span));
}

void note_recovered(Site site) noexcept {
  std::lock_guard lock(g_mu());
  ++g_plan().recovered[static_cast<std::size_t>(site)];
}

FaultStats stats() {
  std::lock_guard lock(g_mu());
  const PlanState& plan = g_plan();
  FaultStats out;
  for (std::size_t i = 0; i < kSiteCount; ++i) {
    out.injected[i] = plan.injected[i];
    out.recovered[i] = plan.recovered[i];
  }
  return out;
}

void reset_stats_for_testing() {
  std::lock_guard lock(g_mu());
  PlanState& plan = g_plan();
  plan.occurrence.fill(0);
  plan.injected.fill(0);
  plan.recovered.fill(0);
  plan.shared.clear();
}

bool configure(std::string_view spec) {
  if (spec.empty()) {
    clear();
    return true;
  }
  PlanState next;
  if (!parse_spec(spec, next)) return false;
  {
    std::lock_guard lock(g_mu());
    g_plan() = next;
  }
  detail::g_armed.store(true, std::memory_order_relaxed);
  return true;
}

void clear() {
  detail::g_armed.store(false, std::memory_order_relaxed);
  std::lock_guard lock(g_mu());
  g_plan() = PlanState{};
}

std::uint64_t seed() noexcept {
  if (!armed()) return 0;
  std::lock_guard lock(g_mu());
  return g_plan().seed;
}

}  // namespace syclport::rt::fault
