file(REMOVE_RECURSE
  "CMakeFiles/hwmodel.dir/comm_model.cpp.o"
  "CMakeFiles/hwmodel.dir/comm_model.cpp.o.d"
  "CMakeFiles/hwmodel.dir/device_model.cpp.o"
  "CMakeFiles/hwmodel.dir/device_model.cpp.o.d"
  "CMakeFiles/hwmodel.dir/energy.cpp.o"
  "CMakeFiles/hwmodel.dir/energy.cpp.o.d"
  "CMakeFiles/hwmodel.dir/exec_profile.cpp.o"
  "CMakeFiles/hwmodel.dir/exec_profile.cpp.o.d"
  "CMakeFiles/hwmodel.dir/memory_model.cpp.o"
  "CMakeFiles/hwmodel.dir/memory_model.cpp.o.d"
  "CMakeFiles/hwmodel.dir/platform.cpp.o"
  "CMakeFiles/hwmodel.dir/platform.cpp.o.d"
  "CMakeFiles/hwmodel.dir/quirks.cpp.o"
  "CMakeFiles/hwmodel.dir/quirks.cpp.o.d"
  "CMakeFiles/hwmodel.dir/workgroup.cpp.o"
  "CMakeFiles/hwmodel.dir/workgroup.cpp.o.d"
  "libhwmodel.a"
  "libhwmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hwmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
