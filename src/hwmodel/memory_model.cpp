#include "hwmodel/memory_model.hpp"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

// Header-only, DSL-agnostic dependence partitioner shared with the
// capture-side LoopChain: the prediction below applies the same
// legality rules the executed chain does, so predicted and measured
// eliminated bytes stay comparable.
#include "ops/dataflow.hpp"

namespace syclport::hw {

namespace {
/// Fraction of a resident working set that a following sweep actually
/// re-uses before eviction by other traffic (calibration constant; see
/// EXPERIMENTS.md).
constexpr double kReuseCoeff = 0.45;

/// Fraction of the last-level cache a stencil sweep can devote to its
/// layer window (write streams, other arrays and conflict misses take
/// the rest).
constexpr double kUsableCacheFraction = 0.5;
}  // namespace

double stencil_read_multiplier(const Platform& hw, const LoopProfile& lp,
                               double cache_shape_factor) {
  if (lp.dims < 2 || (lp.radius_mid == 0 && lp.radius_slow == 0)) return 1.0;

  // Payload per grid point of the stencil-read arrays (the layer
  // window unit); fall back to n_arrays x elem for older callers.
  const double point_bytes =
      lp.stencil_point_bytes > 0.0
          ? lp.stencil_point_bytes
          : static_cast<double>(std::max(1, lp.n_arrays) * lp.elem_bytes);
  const double fast_ext = static_cast<double>(lp.extent[static_cast<std::size_t>(lp.dims - 1)]);
  const double mid_ext =
      lp.dims >= 2 ? static_cast<double>(lp.extent[static_cast<std::size_t>(lp.dims - 2)]) : 1.0;

  const double cache = hw.llc.bytes * kUsableCacheFraction;
  double extra = 0.0;

  if (lp.dims == 3 && lp.radius_slow > 0) {
    // Full reuse in the slow direction needs 2r+1 planes resident.
    const double plane = fast_ext * mid_ext * point_bytes;
    const double need_planes = (2.0 * lp.radius_slow + 1.0) * plane;
    if (cache < need_planes) {
      const double deficit = 1.0 - cache / need_planes;
      extra += 2.0 * lp.radius_slow * deficit;
    }
  }
  {
    // Reuse in the mid direction needs 2r+1 rows resident.
    const int rm = lp.radius_mid;
    if (rm > 0) {
      const double row = fast_ext * point_bytes;
      const double need_rows = (2.0 * rm + 1.0) * row *
                               (lp.dims == 3 ? mid_ext : 1.0);
      // For 3D the row window exists per plane being swept; scale by the
      // number of concurrently live planes (approximated by 2r_slow+1).
      if (cache < need_rows) {
        const double deficit = 1.0 - cache / need_rows;
        extra += 2.0 * rm * deficit;
      }
    }
  }

  const double cap =
      (2.0 * lp.radius_slow + 1.0) * (2.0 * std::max(lp.radius_mid, 0) + 1.0);
  return std::min(cap, 1.0 + extra * cache_shape_factor);
}

double llc_hit_probability(const Platform& hw, const LoopProfile& lp) {
  if (lp.working_set <= 0.0) return 0.0;
  // LRU on a cyclic sweep thrashes once the working set exceeds the
  // capacity: full reuse below it, falling linearly to zero at 2x
  // (pseudo-LRU keeps a protected fraction alive slightly past C).
  const double c = hw.llc.bytes;
  double resident = 1.0;
  if (lp.working_set > c)
    resident = std::max(0.0, 1.0 - (lp.working_set - c) / c);
  return kReuseCoeff * resident;
}

double memory_time_s(const Platform& hw, double bytes, double hit,
                     double dram_bw_gbs) {
  const double dram = std::max(1.0, dram_bw_gbs) * 1e9;
  const double llc = std::max(dram, hw.llc.bw_gbs * 1e9);
  return bytes * ((1.0 - hit) / dram + hit / llc);
}

double store_traffic_factor(bool write_allocate, bool streaming_stores) {
  // Write-allocate turns every store stream into fetch + writeback;
  // non-temporal stores (or a no-write-allocate policy) write once.
  return (write_allocate && !streaming_stores) ? 2.0 : 1.0;
}

double first_touch_bandwidth_factor(const Platform& hw,
                                    bool parallel_first_touch) {
  if (parallel_first_touch || hw.numa_domains <= 1) return 1.0;
  // Serial touch commits every page on the toucher's domain: remote
  // cores then stream across the interconnect, the same imperfect-
  // placement throttle the descriptor models as numa_penalty.
  return std::clamp(hw.numa_penalty, 0.05, 1.0);
}

// --- fused-chain traffic ----------------------------------------------------

double usable_llc_bytes(const Platform& hw) {
  return hw.llc.bytes * kUsableCacheFraction;
}

double chain_tile_residency(const Platform& hw, double row_bytes,
                            std::size_t tile_rows, long ghost_rows) {
  if (tile_rows == 0) return 0.0;
  const double slab =
      std::max(row_bytes, 1.0) *
      (static_cast<double>(tile_rows) + static_cast<double>(std::max(ghost_rows, 0L)));
  return std::min(1.0, usable_llc_bytes(hw) / slab);
}

std::size_t chain_tile_rows(const Platform& hw, double row_bytes,
                            long slow_extent, long ghost_rows) {
  if (slow_extent < 8 || row_bytes <= 0.0) return 0;
  const double fit = usable_llc_bytes(hw) / row_bytes -
                     static_cast<double>(std::max(ghost_rows, 0L));
  // At least two tiles, at least four rows per tile: shallower tiles
  // drown in ghost-zone recompute, a single tile is the untiled sweep.
  const long rows = std::min(static_cast<long>(fit), slow_extent / 2);
  return rows < 4 ? 0 : static_cast<std::size_t>(rows);
}

FusedTraffic fused_traffic_estimate(const Platform& hw,
                                    std::span<const LoopProfile> chain,
                                    std::size_t tile_rows) {
  FusedTraffic ft;
  const std::size_t n = chain.size();
  if (n == 0) return ft;

  // Lift the recorded profiles into dataflow nodes. Profiles carry
  // extents but not range offsets, so every box is anchored at the
  // origin - sub-range boundary loops that are really disjoint then
  // appear to intersect, which only adds conservative WAR cuts (the
  // executed chain may fuse more than predicted, never less legally).
  int dims = 1;
  for (const LoopProfile& lp : chain) dims = std::max(dims, lp.dims);
  std::vector<ops::dataflow::Node> nodes(n);
  for (std::size_t i = 0; i < n; ++i) {
    const LoopProfile& lp = chain[i];
    ops::dataflow::Node& nd = nodes[i];
    nd.name = lp.name.c_str();
    for (int d = 0; d < lp.dims; ++d)
      nd.hi[static_cast<std::size_t>(d)] =
          static_cast<long>(std::max<std::size_t>(1, lp.extent[static_cast<std::size_t>(d)]));
    nd.reduction = lp.reduction != ReductionKind::None ||
                   lp.cls == KernelClass::Reduction;
    for (const DatAccess& a : lp.accesses) {
      ops::dataflow::AccessBox box;
      box.dat = a.id;
      box.lo = nd.lo;
      box.hi = nd.hi;
      box.bytes = a.bytes;
      box.read = a.read;
      box.write = a.write;
      if (a.read) {
        box.lo[0] -= a.radius_slow;
        box.hi[0] += a.radius_slow;
        nd.radius_slow = std::max(nd.radius_slow, a.radius_slow);
      }
      if (a.read && a.write)
        nd.rw_max_radius = std::max(nd.rw_max_radius, a.radius_max);
      nd.acc.push_back(box);
    }
  }

  // Partition with the chain's own legality rules, then model each
  // segment independently: its internal edge bytes, its slab working
  // set, and the residency of the deepest cache-fitting tile.
  const std::vector<std::size_t> cuts = ops::dataflow::partition(nodes, dims);
  double saved = 0.0;
  for (std::size_t k = 0; k + 1 < cuts.size(); ++k) {
    const std::size_t b = cuts[k], e = cuts[k + 1];
    const double fusable = ops::dataflow::internal_edge_bytes(nodes, b, e, dims);
    ft.fusable_bytes += fusable;
    if (e - b < 2 || fusable <= 0.0) continue;

    long ghost = 0;
    for (std::size_t i = b + 1; i < e; ++i) ghost += 2L * nodes[i].radius_slow;
    double row_bytes = 0.0;
    {
      std::vector<std::pair<const void*, double>> per_dat;
      for (std::size_t i = b; i < e; ++i) {
        const double slow =
            static_cast<double>(std::max(1L, nodes[i].hi[0] - nodes[i].lo[0]));
        for (const ops::dataflow::AccessBox& a : nodes[i].acc) {
          const double rb = a.bytes / slow;
          bool found = false;
          for (auto& [id, v] : per_dat)
            if (id == a.dat) {
              v = std::max(v, rb);
              found = true;
            }
          if (!found) per_dat.emplace_back(a.dat, rb);
        }
      }
      for (const auto& [id, v] : per_dat) row_bytes += v;
    }

    // Widest slow extent in the segment: tiny point loops (sources,
    // probes) must not pin the tile walk of the sweeps they fused with.
    long slow_extent = 0;
    for (std::size_t i = b; i < e; ++i)
      slow_extent = std::max(slow_extent, nodes[i].hi[0] - nodes[i].lo[0]);
    const std::size_t tile =
        tile_rows != 0 ? tile_rows
                       : chain_tile_rows(hw, row_bytes, slow_extent, ghost);
    ft.tile_rows = std::max(ft.tile_rows, tile);
    saved += fusable * chain_tile_residency(hw, row_bytes, tile, ghost);
  }
  ft.residency = ft.fusable_bytes > 0.0 ? saved / ft.fusable_bytes : 0.0;
  return ft;
}

}  // namespace syclport::hw
