#pragma once
/// \file stage.hpp
/// The staged par_loop lowering (Strategy::Staged and every loop whose
/// dats left AoS). Instead of racing indirect increments (atomics) or
/// serializing colours, a loop runs in super-tiles:
///   Phase A - tiles of `stage_tile` elements run in parallel: indirect
///     read operands are gathered into contiguous per-element scratch,
///     non-AoS direct operands are transcoded into tile buffers, the
///     kernel sweeps the tile through the PR-7 variant menu, and INC
///     contributions land in a per-tile scratch arena (race-free: the
///     arena is element-indexed, no two elements share a slot).
///   Phase B - the arena is scattered into the target dats with
///     *ordered accumulation*: updates to one target apply in element
///     order. The scan is parallelized by partitioning targets - every
///     worker walks the whole arena in order but applies only the
///     updates landing in its target range - so the result is
///     bit-identical to the serial eager schedule at any thread count.
/// A super-tile's arena (nthreads x a few tiles) stays cache-resident;
/// the hwmodel charges this scratch traffic to the L1 term on CPUs and
/// penalizes the partitioned re-scan on GPUs (device_model.cpp).
///
/// Restrictions: indirect non-INC args must be Acc::R (a staged scatter
/// of racy indirect writes would need its own ordering pass; no app
/// needs one), and all INC args must share one conflict map (the
/// par_loop contract).

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <tuple>
#include <utility>
#include <vector>

#include "op2/arg.hpp"
#include "op2/context.hpp"
#include "runtime/autotune/variant.hpp"
#include "runtime/thread_pool.hpp"

namespace syclport::op2::detail {

template <typename T>
struct IncArg;  // defined in par_loop.hpp

// --- per-INC-arg scratch arena (lives across phase A/B of a super-tile)

template <typename T>
struct IncArena {
  std::vector<T> buf;  ///< slots x dim increments, element-indexed
};
struct NoArena {};

template <typename T>
IncArena<T> make_arena(const IncArg<T>& a, std::size_t slots) {
  return {std::vector<T>(slots * static_cast<std::size_t>(a.dat->dim()))};
}
template <typename T>
NoArena make_arena(const DirectArg<T>&, std::size_t) { return {}; }
template <typename T>
NoArena make_arena(const IndirectArg<T>&, std::size_t) { return {}; }
template <typename T>
NoArena make_arena(const GblArg<T>&, std::size_t) { return {}; }

// --- tile views: what the kernel sees during a phase-A tile sweep -----------

/// Direct argument: AoS dats are accessed in place (same addresses the
/// eager lowering hands out); other layouts stage through a tile buffer
/// gathered on entry (R/RW) and flushed on exit (W/RW).
template <typename T>
struct DirectTileView {
  Dat<T>* dat;
  std::size_t base, count;
  Acc acc;
  bool in_place;
  std::vector<T> buf;

  DirectTileView(const DirectArg<T>& a, std::size_t b, std::size_t e)
      : dat(a.dat), base(b), count(e - b), acc(a.acc),
        in_place(a.dat->layout() == Layout::AoS) {
    if (in_place) return;
    const auto dim = static_cast<std::size_t>(dat->dim());
    buf.resize(count * dim);
    if (acc != Acc::W) {
      for (std::size_t i = 0; i < count; ++i)
        for (std::size_t c = 0; c < dim; ++c)
          buf[i * dim + c] = dat->at(base + i, static_cast<int>(c));
    }
  }

  [[nodiscard]] T* make(std::size_t e, bool) {
    const auto dim = static_cast<std::size_t>(dat->dim());
    return in_place ? dat->storage() + e * dim : buf.data() + (e - base) * dim;
  }

  void flush() {
    if (in_place || acc == Acc::R) return;
    const auto dim = static_cast<std::size_t>(dat->dim());
    for (std::size_t i = 0; i < count; ++i)
      for (std::size_t c = 0; c < dim; ++c)
        dat->at(base + i, static_cast<int>(c)) = buf[i * dim + c];
  }
};

/// Indirect read argument: gathered into contiguous per-element scratch
/// regardless of the dat's layout - this is the "plan-local gather"
/// that turns the scattered reads into a vectorizable stream.
template <typename T>
struct IndirectTileView {
  std::size_t base;
  int dim;
  std::vector<T> buf;

  IndirectTileView(const IndirectArg<T>& a, std::size_t b, std::size_t e)
      : base(b), dim(a.dat->dim()) {
    if (a.acc != Acc::R)
      throw std::invalid_argument(
          "staged par_loop: indirect non-INC args must be Acc::R");
    const auto d = static_cast<std::size_t>(dim);
    buf.resize((e - b) * d);
    for (std::size_t i = 0; i < e - b; ++i) {
      const auto t = static_cast<std::size_t>(a.map->at(b + i, a.idx));
      for (std::size_t c = 0; c < d; ++c)
        buf[i * d + c] = a.dat->at(t, static_cast<int>(c));
    }
  }

  [[nodiscard]] const T* make(std::size_t e, bool) const {
    return buf.data() + (e - base) * static_cast<std::size_t>(dim);
  }
  void flush() {}
};

/// INC argument: contributions go to the element's arena slot (plain
/// adds - no two elements share a slot, so phase A never races).
template <typename T>
struct IncTileView {
  T* slot0;  ///< arena slot of element `base`
  int dim;
  std::size_t base, count;

  IncTileView(const IncArg<T>& a, IncArena<T>& arena, std::size_t arena_slot,
              std::size_t b, std::size_t e)
      : slot0(arena.buf.data() +
              arena_slot * static_cast<std::size_t>(a.dat->dim())),
        dim(a.dat->dim()), base(b), count(e - b) {
    std::fill(slot0, slot0 + count * static_cast<std::size_t>(dim), T{});
  }

  [[nodiscard]] Inc<T> make(std::size_t e, bool) const {
    return Inc<T>(slot0 + (e - base) * static_cast<std::size_t>(dim), false);
  }
  void flush() {}
};

template <typename T>
struct GblTileView {
  T* target;
  RedOp op;
  GblTileView(const GblArg<T>& a) : target(a.target), op(a.op) {}
  [[nodiscard]] Reducer<T> make(std::size_t, bool) const {
    return Reducer<T>(target, op);
  }
  void flush() {}
};

template <typename T>
DirectTileView<T> make_tile_view(const DirectArg<T>& a, NoArena&, std::size_t,
                                 std::size_t b, std::size_t e) {
  return DirectTileView<T>(a, b, e);
}
template <typename T>
IndirectTileView<T> make_tile_view(const IndirectArg<T>& a, NoArena&,
                                   std::size_t, std::size_t b, std::size_t e) {
  return IndirectTileView<T>(a, b, e);
}
template <typename T>
IncTileView<T> make_tile_view(const IncArg<T>& a, IncArena<T>& arena,
                              std::size_t arena_slot, std::size_t b,
                              std::size_t e) {
  return IncTileView<T>(a, arena, arena_slot, b, e);
}
template <typename T>
GblTileView<T> make_tile_view(const GblArg<T>& a, NoArena&, std::size_t,
                              std::size_t, std::size_t) {
  return GblTileView<T>(a);
}

// --- phase B: ordered scatter of one element's increments -------------------

/// Apply element e's increments of one INC arg if its target lands in
/// [t_lo, t_hi). Reading the target id here (not in phase A) keeps the
/// arena layout trivially element-indexed.
template <typename T>
inline void scatter_inc_elem(const IncArg<T>& a, const IncArena<T>& arena,
                             std::size_t arena_slot, std::size_t e,
                             std::size_t t_lo, std::size_t t_hi) {
  const auto t = static_cast<std::size_t>(a.map->at(e, a.idx));
  if (t < t_lo || t >= t_hi) return;
  const auto dim = static_cast<std::size_t>(a.dat->dim());
  const T* src = arena.buf.data() + arena_slot * dim;
  for (std::size_t c = 0; c < dim; ++c)
    a.dat->at(t, static_cast<int>(c)) += src[c];
}
template <typename A>
inline void scatter_inc_elem(const A&, const NoArena&, std::size_t,
                             std::size_t, std::size_t, std::size_t) {}

/// Number of target partitions phase B scans with. One partition per
/// worker; the arena re-read is shared-cache-resident, so extra
/// partitions cost little and buy full scatter parallelism.
[[nodiscard]] inline std::size_t stage_partitions(const Context& ctx,
                                                  std::size_t ntargets) {
  if (ctx.opt.exec == Exec::Serial) return 1;
  const std::size_t p = rt::ThreadPool::global().size();
  return std::max<std::size_t>(1, std::min(p, ntargets));
}

/// Run the staged lowering over n elements. `conflict_targets` is the
/// size of the INC conflict map's target set (0 when the loop has no
/// INC args - phase B is skipped entirely then). `vp` is the kernel
/// variant the tuner decided for this launch.
template <typename K, typename... Args>
void staged_loop(Context& ctx, const char* name, std::size_t n,
                 std::size_t conflict_targets,
                 const rt::autotune::VariantParams& vp, K&& kernel,
                 std::tuple<Args...>& args) {
  const std::size_t tile = std::max<std::size_t>(1, ctx.opt.stage_tile);
  const std::size_t pool = std::max<std::size_t>(
      1, ctx.opt.exec == Exec::Serial ? 1 : rt::ThreadPool::global().size());
  // Tiles per super-tile: enough slack for the pool to balance, small
  // enough that every live arena stays in the shared cache.
  const std::size_t ktiles = std::max<std::size_t>(1, pool * 4);
  const std::size_t super = ktiles * tile;

  auto arenas = std::apply(
      [&](const auto&... a) { return std::make_tuple(make_arena(a, super)...); },
      args);

  constexpr auto idx = std::index_sequence_for<Args...>{};

  // Phase A body for one tile of the current super-tile.
  auto run_tile = [&]<std::size_t... I>(std::index_sequence<I...>,
                                        std::size_t sbase, std::size_t t) {
    const std::size_t b = sbase + t * tile;
    const std::size_t e_end = std::min(n, b + tile);
    if (b >= e_end) return;
    auto views = std::make_tuple(make_tile_view(
        std::get<I>(args), std::get<I>(arenas), t * tile, b, e_end)...);
    rt::autotune::run_span_variant(vp, b, e_end, [&](std::size_t e) {
      std::apply([&](auto&... v) { kernel(v.make(e, false)...); }, views);
    });
    std::apply([&](auto&... v) { (v.flush(), ...); }, views);
  };

  // Phase B body: one target partition scans the super-tile in order.
  auto scan_partition = [&]<std::size_t... I>(std::index_sequence<I...>,
                                              std::size_t sbase,
                                              std::size_t tiles_here,
                                              std::size_t t_lo,
                                              std::size_t t_hi) {
    for (std::size_t t = 0; t < tiles_here; ++t) {
      const std::size_t b = sbase + t * tile;
      const std::size_t e_end = std::min(n, b + tile);
      for (std::size_t e = b; e < e_end; ++e)
        (scatter_inc_elem(std::get<I>(args), std::get<I>(arenas),
                          t * tile + (e - b), e, t_lo, t_hi),
         ...);
    }
  };

  const std::size_t parts = stage_partitions(ctx, conflict_targets);
  const std::size_t t_chunk =
      parts == 0 ? 0 : (conflict_targets + parts - 1) / std::max<std::size_t>(1, parts);

  for (std::size_t sbase = 0; sbase < n; sbase += super) {
    const std::size_t tiles_here =
        std::min(ktiles, (n - sbase + tile - 1) / tile);

    switch (ctx.opt.exec) {
      case Exec::Serial:
        for (std::size_t t = 0; t < tiles_here; ++t) run_tile(idx, sbase, t);
        break;
      case Exec::Threads:
        rt::ThreadPool::global().parallel_for(
            tiles_here, [&](std::size_t lo, std::size_t hi) {
              for (std::size_t t = lo; t < hi; ++t) run_tile(idx, sbase, t);
            });
        break;
      case Exec::Sycl:
        ctx.queue.parallel_for(name, sycl::range<1>(tiles_here),
                               [&](sycl::item<1> it) {
                                 run_tile(idx, sbase, it.get_linear_id());
                               });
        ctx.queue.wait();
        break;
    }

    if (conflict_targets == 0) continue;
    switch (ctx.opt.exec) {
      case Exec::Serial:
        scan_partition(idx, sbase, tiles_here, 0, conflict_targets);
        break;
      case Exec::Threads:
        rt::ThreadPool::global().parallel_for(
            parts, [&](std::size_t lo, std::size_t hi) {
              for (std::size_t p = lo; p < hi; ++p)
                scan_partition(idx, sbase, tiles_here, p * t_chunk,
                               std::min(conflict_targets, (p + 1) * t_chunk));
            });
        break;
      case Exec::Sycl:
        ctx.queue.parallel_for(name, sycl::range<1>(parts),
                               [&](sycl::item<1> it) {
                                 const std::size_t p = it.get_linear_id();
                                 scan_partition(
                                     idx, sbase, tiles_here, p * t_chunk,
                                     std::min(conflict_targets,
                                              (p + 1) * t_chunk));
                               });
        ctx.queue.wait();
        break;
    }
  }
}

}  // namespace syclport::op2::detail
