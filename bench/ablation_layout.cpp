// Ablation: the unstructured locality & layout engine
// (docs/unstructured.md). Races the renumbering x layout x
// race-resolution axes of the MG-CFD edge-flux pipeline through the
// hardware model and gates, by exit code:
//   1. on >= 2 CPU-class platforms the tuned configuration
//      (RCM-renumbered mesh, staged gather/scatter, best layout)
//      beats the seed configuration (identity ordering, AoS, atomics)
//      for the platform's SYCL variant;
//   2. RCM renumbering reduces the *measured* gather line factor of
//      the flux loop's natural-order sweep;
//   3. the paper's who-wins shapes survive the new axes: MPI still
//      beats SYCL on CPUs (fig9) and global colouring stays the worst
//      strategy on the A100 (fig8) - the figure strategy menu never
//      contains Staged.
// Emits ablation_layout.csv (one row per modeled cell) for CI upload.

#include <algorithm>
#include <fstream>
#include <iostream>
#include <limits>
#include <vector>

#include "apps/mgcfd/mgcfd.hpp"
#include "core/report.hpp"
#include "op2/op2.hpp"
#include "study/study.hpp"

using namespace syclport;

namespace {

struct Cell {
  op2::Ordering ordering = op2::Ordering::Identity;
  Strategy strategy = Strategy::Atomics;
  op2::Layout layout = op2::Layout::AoS;
  double runtime_s = 0.0;
  double gather_line_factor = 1.0;
};

/// Model-only MG-CFD schedule under an explicit (ordering, strategy,
/// layout), scaled to the paper's Rotor37 like the study harness does.
std::vector<hw::LoopProfile> profiles_for(const apps::MgcfdConfig& cfg,
                                          op2::Ordering ord, Strategy strat,
                                          op2::Layout lay) {
  auto mesh = apps::mgcfd::build_rotor_mesh(cfg.ni, cfg.nj, cfg.nk,
                                            cfg.levels);
  apps::mgcfd::renumber_mesh(mesh, ord);
  op2::Options o;
  o.mode = op2::Mode::ModelOnly;
  o.exec = op2::Exec::Serial;
  o.strategy = strat;
  o.block_size = 256;
  o.layout = lay;
  auto rs = apps::run_mgcfd(o, mesh, cfg.iters);
  study::scale_mgcfd_profiles(rs.profiles, cfg);
  return rs.profiles;
}

double flux_line_factor(const std::vector<hw::LoopProfile>& profiles) {
  for (const auto& lp : profiles)
    if (lp.name == std::string("compute_flux")) return lp.gather_line_factor;
  return 1.0;
}

Variant sycl_variant(PlatformId p) {
  return {Model::SYCLNDRange,
          p == PlatformId::Altra ? Toolchain::OpenSYCL : Toolchain::DPCPP,
          Strategy::Atomics};
}

}  // namespace

int main() {
  std::cout << "=== Ablation: renumbering x layout x staged lowering ===\n\n";
  // Smaller than mgcfd_bench: the cross of axes below runs the
  // model-only pipeline 10x per platform. Scaling normalises to the
  // paper mesh either way.
  const apps::MgcfdConfig cfg{40, 36, 24, 3, 5};

  std::ofstream csv("ablation_layout.csv");
  csv << "platform,ordering,strategy,layout,runtime_s,flux_line_factor,"
         "speedup_vs_seed\n";

  // --- gate 2: measured gather reduction post-RCM ------------------------
  const auto seed_sched = profiles_for(cfg, op2::Ordering::Identity,
                                       Strategy::Atomics, op2::Layout::AoS);
  const auto rcm_sched = profiles_for(cfg, op2::Ordering::RCM,
                                      Strategy::Atomics, op2::Layout::AoS);
  const double lf_seed = flux_line_factor(seed_sched);
  const double lf_rcm = flux_line_factor(rcm_sched);
  std::cout << "compute_flux cold gather line factor: identity "
            << report::fmt(lf_seed, 3) << " -> rcm " << report::fmt(lf_rcm, 3)
            << "\n\n";
  const bool gather_reduced = lf_rcm < lf_seed;

  // --- gate 1: tuned beats seed on CPU-class platforms -------------------
  const std::vector<Cell> menu = {
      {op2::Ordering::Identity, Strategy::Atomics, op2::Layout::AoS},
      {op2::Ordering::Identity, Strategy::Hierarchical, op2::Layout::AoS},
      {op2::Ordering::Identity, Strategy::Staged, op2::Layout::AoS},
      {op2::Ordering::RCM, Strategy::Atomics, op2::Layout::AoS},
      {op2::Ordering::RCM, Strategy::Hierarchical, op2::Layout::AoS},
      {op2::Ordering::RCM, Strategy::Staged, op2::Layout::AoS},
      {op2::Ordering::RCM, Strategy::Staged, op2::Layout::SoA},
      {op2::Ordering::RCM, Strategy::Staged, op2::Layout::AoSoA},
      {op2::Ordering::Hilbert, Strategy::Staged, op2::Layout::AoS},
      {op2::Ordering::Hilbert, Strategy::Staged, op2::Layout::SoA},
  };

  int cpu_wins = 0;
  report::Table t({"platform", "seed (id/aos/atomics)", "best tuned",
                   "tuned config", "speedup"});
  for (const PlatformId p : kCpuPlatforms) {
    const Variant v = sycl_variant(p);
    double seed_s = 0.0;
    Cell best;
    best.runtime_s = std::numeric_limits<double>::infinity();
    for (Cell c : menu) {
      Variant vc = v;
      vc.strategy = c.strategy;
      const auto sched = profiles_for(cfg, c.ordering, c.strategy, c.layout);
      const auto r = study::aggregate_cell(sched, AppId::MGCFD, p, vc);
      c.runtime_s = r.runtime_s;
      c.gather_line_factor = flux_line_factor(sched);
      const bool is_seed = c.ordering == op2::Ordering::Identity &&
                           c.strategy == Strategy::Atomics &&
                           c.layout == op2::Layout::AoS;
      if (is_seed) seed_s = c.runtime_s;
      // The seed cell is the baseline, not a tuning candidate.
      if (!is_seed && c.runtime_s < best.runtime_s) best = c;
      csv << to_string(p) << ',' << op2::to_string(c.ordering) << ','
          << to_string(c.strategy) << ',' << op2::to_string(c.layout) << ','
          << c.runtime_s << ',' << c.gather_line_factor << ','
          << (is_seed ? 1.0 : seed_s / c.runtime_s) << '\n';
    }
    const bool win = best.runtime_s < seed_s;
    cpu_wins += win ? 1 : 0;
    t.add_row({std::string(to_string(p)), report::fmt(seed_s, 4),
               report::fmt(best.runtime_s, 4),
               std::string(op2::to_string(best.ordering)) + "/" +
                   std::string(to_string(best.strategy)) + "/" +
                   std::string(op2::to_string(best.layout)),
               report::fmt(seed_s / best.runtime_s, 2) + "x"});
  }
  t.render(std::cout);

  // --- gate 3: figure who-wins shapes survive ----------------------------
  study::StudyRunner runner;
  runner.set_mgcfd_bench(cfg);
  bool shape_ok = true;
  {
    // fig8: global colouring worst on the A100 (poor reuse, paper 4.3).
    const Variant glob{Model::SYCLNDRange, Toolchain::DPCPP,
                       Strategy::GlobalColor};
    const Variant hier{Model::SYCLNDRange, Toolchain::DPCPP,
                       Strategy::Hierarchical};
    const double tg = runner.run(AppId::MGCFD, PlatformId::A100, glob)
                          .runtime_s;
    const double th = runner.run(AppId::MGCFD, PlatformId::A100, hier)
                          .runtime_s;
    shape_ok &= tg > th;
    csv << "A100,identity,global,aos," << tg << ",," << '\n';
    csv << "A100,identity,hierarchical,aos," << th << ",," << '\n';
  }
  for (const PlatformId p : kCpuPlatforms) {
    // fig9: the auto-vectorizing native MPI build still beats every
    // supported SYCL variant.
    const Variant mpi{Model::MPI, Toolchain::Native, Strategy::None};
    const double t_mpi = runner.run(AppId::MGCFD, p, mpi).runtime_s;
    for (const Variant& v : study::mgcfd_variants(p)) {
      const auto r = runner.run(AppId::MGCFD, p, v);
      if (!r.ok() || v.model == Model::MPI) continue;
      shape_ok &= t_mpi < r.runtime_s * 1.02;
    }
  }

  csv << "summary,cpu_wins,,," << cpu_wins << ",,\n";
  csv << "summary,gather_reduced,,," << (gather_reduced ? 1 : 0) << ",,\n";
  csv << "summary,figure_shape_ok,,," << (shape_ok ? 1 : 0) << ",,\n";

  std::cout << "\ncpu platforms where tuned beats seed: " << cpu_wins
            << "/3 (need >= 2)\n"
            << "measured flux gather reduced post-RCM: "
            << (gather_reduced ? "yes" : "NO") << "\n"
            << "fig8/fig9 who-wins shape retained:     "
            << (shape_ok ? "yes" : "NO") << "\n";

  const bool pass = cpu_wins >= 2 && gather_reduced && shape_ok;
  std::cout << (pass ? "\nPASS\n" : "\nFAIL\n");
  return pass ? 0 : 1;
}
