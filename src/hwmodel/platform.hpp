#pragma once
/// \file platform.hpp
/// Calibrated descriptors of the six hardware platforms in the study
/// (paper §2 and Table 1). These numbers anchor the analytic
/// performance model: achieved STREAM-Triad bandwidth is taken directly
/// from Table 1 (it is the denominator of every "architectural
/// efficiency" the paper reports); cache sizes, clock rates and peak
/// FLOP rates come from the paper's §2 and §4.1 text and vendor specs.

#include <array>
#include <string_view>

#include "core/types.hpp"

namespace syclport::hw {

/// One cache level of the modeled memory hierarchy.
struct CacheLevel {
  double bytes = 0.0;    ///< total capacity usable by one kernel sweep
  double bw_gbs = 0.0;   ///< sustained bandwidth when resident
};

/// Static performance descriptor of a platform.
struct Platform {
  PlatformId id{};
  std::string_view name;
  bool gpu = false;

  double stream_bw_gbs = 0.0;   ///< BabelStream Triad, Table 1 (measured)
  double peak_bw_gbs = 0.0;     ///< theoretical DRAM bandwidth
  double fp32_tflops = 0.0;     ///< peak FP32 vector throughput
  double fp64_tflops = 0.0;     ///< peak FP64 vector throughput

  /// Effective L1/LSU bandwidth for stencil access patterns (bytes
  /// metric: l1.bw_gbs). Far below the nominal L1 figure: unaligned
  /// vector taps, bank conflicts and issue limits are folded in; it is
  /// the calibrated ceiling that high-order stencils hit (RTM/Acoustic,
  /// paper §4.1). l1.bytes is the aggregate capacity (informational).
  CacheLevel l1;
  CacheLevel llc;               ///< last-level cache relevant to reuse
                                ///< (L2 on GPUs, L3 on CPUs)

  /// Fraction of STREAM bandwidth a real multi-array kernel sustains
  /// (mixed read/write streams, TLB, imperfect prefetch).
  double app_bw_frac = 1.0;

  double launch_latency_us = 0.0;  ///< native-model kernel launch latency
  double atomic_gups = 0.0;        ///< FP64 atomic updates/s (safe flavour)
  double atomic_gups_unsafe = 0.0; ///< "unsafe" FP atomics where distinct

  int sub_group = 1;            ///< warp / wavefront / SIMD width (items)
  double line_bytes = 64.0;     ///< memory transaction granularity
  int cores = 1;                ///< CUs / SMs / CPU cores
  int numa_domains = 1;

  /// Ceiling on work-item issue for tiny (latency-bound) kernels,
  /// in 1e9 items/s; boundary loops hit this rather than bandwidth.
  double issue_gitems = 1.0;

  /// Fraction of STREAM bandwidth a single parallel loop can reach with
  /// imperfect first-touch placement across NUMA domains (pure-MPI runs
  /// do not pay this; threaded ones do).
  double numa_penalty = 1.0;
};

/// Descriptor lookup for the six studied platforms.
[[nodiscard]] const Platform& platform(PlatformId id);

/// All six platforms, study order (GPUs then CPUs).
[[nodiscard]] std::array<const Platform*, 6> all_platforms();

}  // namespace syclport::hw
