#pragma once
/// \file figures.hpp
/// Shared rendering for the per-figure bench binaries: runtime bar
/// charts (the stand-in for the paper's figures), efficiency tables
/// with paper-vs-modeled columns, and CSV emission next to the binary.

#include <iosfwd>
#include <string>
#include <vector>

#include "study/study.hpp"

namespace syclport::bench {

/// Render one structured-mesh runtime figure (paper Figs 2-7) for
/// `platform`: bars per application x variant, an efficiency table with
/// the paper's quoted best-variant numbers, and `<csv_name>.csv`.
void structured_figure(std::ostream& os, study::StudyRunner& runner,
                       PlatformId platform, const std::string& fig_title,
                       const std::string& csv_name);

/// Render the MG-CFD runtime figure (paper Fig 8 or 9) over `platforms`.
void mgcfd_figure(std::ostream& os, study::StudyRunner& runner,
                  const std::vector<PlatformId>& platforms,
                  const std::string& fig_title, const std::string& csv_name);

/// Render an architectural-efficiency matrix (paper Figs 10/11):
/// rows = (platform, variant), columns = apps.
void efficiency_matrix(std::ostream& os, study::StudyRunner& runner,
                       bool unstructured, const std::string& fig_title,
                       const std::string& csv_name);

/// Ratio of two runtimes as a signed percentage string ("+5.3%").
[[nodiscard]] std::string pct_delta(double value, double reference);

}  // namespace syclport::bench
