#include "runtime/autotune/autotune.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "core/factorize.hpp"
#include "runtime/autotune/cache.hpp"
#include "runtime/autotune/fingerprint.hpp"
#include "runtime/autotune/variant.hpp"
#include "runtime/env.hpp"
#include "runtime/mem/mem.hpp"

namespace syclport::rt::autotune {

namespace {

/// Successive halving: each round the surviving candidates get twice
/// the measurements, capped here (min-of-8 is a stable statistic for
/// microsecond launches without stretching exploration).
constexpr int kMaxRunsPerCandidate = 8;

/// Innermost tuning scope on this thread (launch_log reads it; nested
/// TunedLaunchParams become passthrough while one is active).
struct ActiveScope {
  Phase phase = Phase::None;
  const Config* cfg = nullptr;
  const char* seed = nullptr;  ///< transfer provenance, tuner-owned
};
thread_local ActiveScope t_scope;

/// ScopedTune override (ops/op2 Options::tune passthrough).
thread_local std::optional<bool> t_tune_override;

[[nodiscard]] Autotuner::Mode mode_from_env() {
  static constexpr std::string_view allowed[] = {"off", "on", "force"};
  if (const auto i = env::get_choice("SYCLPORT_TUNE", allowed))
    return static_cast<Autotuner::Mode>(*i);
  return Autotuner::Mode::Off;
}

[[nodiscard]] std::string cache_path_from_env() {
  if (const auto p = env::get("SYCLPORT_TUNE_CACHE")) return std::string(*p);
  return ".syclport_tune.json";
}

[[nodiscard]] bool transfer_from_env() {
  static constexpr std::string_view allowed[] = {"off", "on"};
  if (const auto i = env::get_choice("SYCLPORT_TUNE_TRANSFER", allowed))
    return *i == 1;
  return true;
}

void append_token(std::string& out, const char* key, const std::string& val) {
  if (!out.empty()) out += ' ';
  out += key;
  out += '=';
  out += val;
}

// --- candidate generation ---------------------------------------------------

/// nd_range local-shape candidates: for each prior work-group total, a
/// fastest-dimension-only shape (coalescing-friendly) and a
/// near-balanced factorization (core/factorize; cache-block-friendly),
/// deduplicated and clamped to the device ceiling. Shapes are stored
/// slowest-first in the trailing `dims` entries, the ops nd_local
/// layout.
[[nodiscard]] std::vector<std::array<std::size_t, 3>> shape_candidates(
    const Site& site, const Priors& priors) {
  std::vector<std::array<std::size_t, 3>> out;
  auto push = [&](std::array<std::size_t, 3> s) {
    if (std::find(out.begin(), out.end(), s) == out.end()) out.push_back(s);
  };
  for (std::size_t total : priors.wg_totals) {
    total = std::clamp<std::size_t>(total, 1, site.max_wg);
    std::array<std::size_t, 3> flat{1, 1, 1};
    flat[2] = total;
    push(flat);
    if (site.dims > 1) {
      const auto f = syclport::balanced_factors(static_cast<int>(total),
                                                site.dims);
      std::array<std::size_t, 3> bal{1, 1, 1};
      // balanced_factors fills [0, dims); map ascending onto the
      // trailing entries so the largest factor lands fastest.
      std::array<int, 3> sorted = f;
      for (int i = 1; i < site.dims; ++i)  // tiny fixed-size sort
        for (int j = i; j > 0 && sorted[static_cast<std::size_t>(j - 1)] >
                                     sorted[static_cast<std::size_t>(j)];
             --j)
          std::swap(sorted[static_cast<std::size_t>(j - 1)],
                    sorted[static_cast<std::size_t>(j)]);
      for (int d = 0; d < site.dims; ++d)
        bal[static_cast<std::size_t>(3 - site.dims + d)] =
            static_cast<std::size_t>(sorted[static_cast<std::size_t>(d)]);
      push(bal);
    }
  }
  return out;
}

[[nodiscard]] std::vector<Config> make_candidates(const Site& site,
                                                  const Priors& priors) {
  std::vector<Config> set{Config{}};
  auto cross = [&](auto&& expand) {
    std::vector<Config> next;
    for (const Config& c : set) expand(c, next);
    if (!next.empty()) set = std::move(next);
  };

  if (site.axes & kScheduleGrain) {
    // Grain only matters for range-splitting launches; nd_range sites
    // schedule whole groups, so vary schedule alone there. Variant
    // sites also race schedule alone: the register-tile/unroll shapes
    // restructure each chunk internally, and crossing grains into the
    // joint variant menu would square the candidate count for a knob
    // the variants largely subsume.
    std::vector<std::size_t> grains{1};
    if (!(site.axes & (kWorkGroup | kVariantAxes))) {
      for (const std::size_t g : priors.grains)
        if (g > 1 && g * 2 <= site.total() &&
            std::find(grains.begin(), grains.end(), g) == grains.end())
          grains.push_back(g);
    }
    cross([&](const Config& c, std::vector<Config>& next) {
      for (const Schedule s : priors.schedule_order)
        for (const std::size_t g : grains) {
          Config d = c;
          d.schedule = s;
          d.grain = g;
          next.push_back(d);
        }
    });
  }
  if (site.axes & kWorkGroup) {
    const auto shapes = shape_candidates(site, priors);
    cross([&](const Config& c, std::vector<Config>& next) {
      for (const auto& s : shapes) {
        Config d = c;
        d.local = s;
        next.push_back(d);
      }
    });
  }
  if (site.axes & kOverlap) {
    cross([&](const Config& c, std::vector<Config>& next) {
      for (const bool q : {true, false}) {
        Config d = c;
        d.overlap_queue = q;
        next.push_back(d);
      }
    });
  }
  if (site.axes & kTile) {
    std::vector<std::size_t> tiles{0};
    for (const std::size_t t : priors.tiles)
      if (t > 0 && t < site.global[0] &&
          std::find(tiles.begin(), tiles.end(), t) == tiles.end())
        tiles.push_back(t);
    // When every prior exceeds the extent (LLC-derived depths on a
    // small site), still race one half-extent tile so the tiled path
    // stays reachable.
    if (tiles.size() == 1 && site.global[0] >= 8)
      tiles.push_back(site.global[0] / 2);
    // The fuse and tile axes are joint, not a cross product: the
    // unfused reference schedule has no tile to vary, so it appears as
    // the single fuse=off candidate and the tile depths race under
    // fuse=on.
    const bool fuse_axis = (site.axes & kFuse) != 0;
    cross([&](const Config& c, std::vector<Config>& next) {
      if (fuse_axis) {
        Config off = c;
        off.fuse = false;
        off.tile = 0;
        next.push_back(off);
      }
      for (const std::size_t t : tiles) {
        if (fuse_axis && t == 0) continue;
        Config d = c;
        if (fuse_axis) d.fuse = true;
        d.tile = t;
        next.push_back(d);
      }
    });
  } else if (site.axes & kFuse) {
    cross([&](const Config& c, std::vector<Config>& next) {
      for (const bool f : {true, false}) {
        Config d = c;
        d.fuse = f;
        next.push_back(d);
      }
    });
  }
  if (site.axes & kFirstTouch) {
    cross([&](const Config& c, std::vector<Config>& next) {
      for (const bool ft : priors.first_touch_order) {
        Config d = c;
        d.first_touch = ft;
        next.push_back(d);
      }
    });
  }
  if (site.axes & kVariantAxes) {
    // One joint menu, not a cross product: the priors' cross product is
    // intersected with the compiled menu (only instantiations that
    // exist can be handed out) and pruned by the register-capacity
    // bound (a shape whose live state spills is never worth racing).
    std::vector<VariantParams> menu{VariantParams{}};
    for (const int rt : priors.reg_tiles)
      for (const int vw : priors.vec_widths)
        for (const int u : priors.unrolls) {
          if (rt <= 0 || vw <= 0 || u <= 0) continue;
          const VariantParams vp{rt, vw, u};
          if (variant_menu_index(vp) < 0) continue;
          if (vp.span() > priors.max_variant_elems) continue;
          if (static_cast<std::size_t>(vp.span()) * 2 > site.total()) continue;
          if (std::find(menu.begin(), menu.end(), vp) == menu.end())
            menu.push_back(vp);
        }
    cross([&](const Config& c, std::vector<Config>& next) {
      for (const auto& vp : menu) {
        Config d = c;
        d.reg_tile = vp.reg_tile;
        d.vec_width = vp.vec_width;
        d.unroll = vp.unroll;
        next.push_back(d);
      }
    });
  }
  if (site.axes & kCacheBlock) {
    // Fast (innermost) extent bounds the block: a block that covers the
    // whole fast dimension is the unblocked traversal.
    const std::size_t fast =
        site.global[static_cast<std::size_t>(std::max(1, site.dims) - 1)];
    std::vector<std::size_t> blocks{0};
    for (const std::size_t cb : priors.cache_blocks)
      if (cb > 0 && cb * 2 <= fast &&
          std::find(blocks.begin(), blocks.end(), cb) == blocks.end())
        blocks.push_back(cb);
    if (blocks.size() > 1) {
      cross([&](const Config& c, std::vector<Config>& next) {
        for (const std::size_t cb : blocks) {
          Config d = c;
          d.cache_block = cb;
          next.push_back(d);
        }
      });
    }
  }
  if (site.axes & (kIndirect | kLayout)) {
    // Strategy and layout are one joint axis: a non-AoS layout only
    // executes through the staged lowering (the eager binders hand out
    // raw AoS pointers), so crossing them independently would generate
    // candidates the runtime must coerce anyway. Dropped (-1) prior
    // entries shrink the menu; dedup keeps donor-seeded orders clean.
    struct IL { int indirect, layout; };
    std::vector<IL> menu;
    auto push = [&](int ind, int lay) {
      for (const IL& m : menu)
        if (m.indirect == ind && m.layout == lay) return;
      menu.push_back({ind, lay});
    };
    const bool ind_axis = (site.axes & kIndirect) != 0;
    const bool lay_axis = (site.axes & kLayout) != 0;
    for (const int ind : priors.indirect_order) {
      if (ind_axis && (ind < 1 || ind > 4)) continue;
      const int i = ind_axis ? ind : -1;
      if (!lay_axis) {
        push(i, -1);
        continue;
      }
      for (const int lay : priors.layout_order) {
        if (lay < 0 || lay > 2) continue;
        if (lay != 0 && ind_axis && i != 4) continue;  // non-AoS => staged
        push(i, lay);
      }
    }
    if (!ind_axis && menu.empty())
      for (const int lay : priors.layout_order)
        if (lay >= 0 && lay <= 2) push(-1, lay);
    cross([&](const Config& c, std::vector<Config>& next) {
      for (const IL& m : menu) {
        Config d = c;
        if (m.indirect >= 0) d.indirect = m.indirect;
        if (m.layout >= 0) d.layout = m.layout;
        next.push_back(d);
      }
    });
  }
  return set;
}

/// Joint-axis Hamming distance between two configurations: how many of
/// the tuner's joint axes (schedule+grain, local shape, overlap,
/// tile+fuse, first-touch, variant shape, cache block) differ. The
/// transfer seeder ranks neighbors of a donor winner by this.
[[nodiscard]] int axis_diff(const Config& a, const Config& b) {
  int d = 0;
  d += static_cast<int>(a.schedule != b.schedule || a.grain != b.grain);
  d += static_cast<int>(a.local != b.local);
  d += static_cast<int>(a.overlap_queue != b.overlap_queue);
  d += static_cast<int>(a.tile != b.tile || a.fuse != b.fuse);
  d += static_cast<int>(a.first_touch != b.first_touch);
  d += static_cast<int>(a.reg_tile != b.reg_tile ||
                        a.vec_width != b.vec_width || a.unroll != b.unroll);
  d += static_cast<int>(a.cache_block != b.cache_block);
  d += static_cast<int>(a.layout != b.layout || a.indirect != b.indirect);
  return d;
}

/// Fields of a Site::key() the donor search scores on (parsed back from
/// the stored string so cache entries from other runs/machines can be
/// ranked without their Site).
struct KeyInfo {
  std::string name;
  int fp_class = -1;
  unsigned axes = 0;
};

[[nodiscard]] std::optional<KeyInfo> parse_key(std::string_view key) {
  KeyInfo info;
  const auto bar = key.find('|');
  if (bar == std::string_view::npos) return std::nullopt;
  info.name = std::string(key.substr(0, bar));
  auto field_after = [&](std::string_view tag) -> std::optional<long> {
    const auto at = key.rfind(tag);
    if (at == std::string_view::npos) return std::nullopt;
    long v = 0;
    bool any = false;
    for (std::size_t i = at + tag.size(); i < key.size(); ++i) {
      const char c = key[i];
      if (c < '0' || c > '9') break;
      v = v * 10 + (c - '0');
      any = true;
    }
    if (!any) return std::nullopt;
    return v;
  };
  const auto fp = field_after("|fp");
  const auto ax = field_after("|ax");
  if (!fp || !ax) return std::nullopt;
  info.fp_class = static_cast<int>(*fp);
  info.axes = static_cast<unsigned>(*ax);
  return info;
}

}  // namespace

// --- Config / Site ----------------------------------------------------------

const char* to_string(Phase p) noexcept {
  switch (p) {
    case Phase::None: return "none";
    case Phase::Exploring: return "exploring";
    case Phase::Exploiting: return "exploiting";
  }
  return "?";
}

std::string Config::to_string() const {
  std::string out;
  if (schedule) append_token(out, "schedule", rt::to_string(*schedule));
  if (grain) append_token(out, "grain", std::to_string(*grain));
  if (local) {
    append_token(out, "local",
                 std::to_string((*local)[0]) + "x" +
                     std::to_string((*local)[1]) + "x" +
                     std::to_string((*local)[2]));
  }
  if (overlap_queue)
    append_token(out, "overlap", *overlap_queue ? "queue" : "inline");
  if (tile) append_token(out, "tile", std::to_string(*tile));
  if (first_touch)
    append_token(out, "first_touch", *first_touch ? "on" : "off");
  if (fuse) append_token(out, "fuse", *fuse ? "on" : "off");
  if (reg_tile) append_token(out, "reg_tile", std::to_string(*reg_tile));
  if (vec_width) append_token(out, "vec", std::to_string(*vec_width));
  if (unroll) append_token(out, "unroll", std::to_string(*unroll));
  if (cache_block)
    append_token(out, "cache_block", std::to_string(*cache_block));
  if (layout) {
    static constexpr std::array<const char*, 3> kLayouts = {"aos", "soa",
                                                            "aosoa"};
    const int l = *layout;
    append_token(out, "layout", l >= 0 && l < 3 ? kLayouts[static_cast<std::size_t>(l)] : "?");
  }
  if (indirect) {
    static constexpr std::array<const char*, 5> kStrategies = {
        "?", "atomics", "global", "hierarchical", "staged"};
    const int i = *indirect;
    append_token(out, "indirect",
                 i >= 1 && i < 5 ? kStrategies[static_cast<std::size_t>(i)] : "?");
  }
  return out;
}

std::optional<Config> Config::parse(std::string_view s) {
  Config cfg;
  auto parse_size = [](std::string_view v) -> std::optional<std::size_t> {
    if (v.empty()) return std::nullopt;
    std::size_t out = 0;
    for (const char ch : v) {
      if (ch < '0' || ch > '9') return std::nullopt;
      out = out * 10 + static_cast<std::size_t>(ch - '0');
    }
    return out;
  };
  while (!s.empty()) {
    const auto sp = s.find(' ');
    const std::string_view tok = s.substr(0, sp);
    s = sp == std::string_view::npos ? std::string_view{} : s.substr(sp + 1);
    if (tok.empty()) continue;
    const auto eq = tok.find('=');
    if (eq == std::string_view::npos) return std::nullopt;
    const std::string_view key = tok.substr(0, eq);
    const std::string_view val = tok.substr(eq + 1);
    if (key == "schedule") {
      const auto sched = parse_schedule(val);
      if (!sched) return std::nullopt;
      cfg.schedule = *sched;
    } else if (key == "grain") {
      const auto g = parse_size(val);
      if (!g) return std::nullopt;
      cfg.grain = *g;
    } else if (key == "local") {
      std::array<std::size_t, 3> shape{1, 1, 1};
      std::string_view rest = val;
      for (int d = 0; d < 3; ++d) {
        const auto x = rest.find('x');
        const bool last = d == 2;
        if (last != (x == std::string_view::npos)) return std::nullopt;
        const auto piece = parse_size(last ? rest : rest.substr(0, x));
        if (!piece || *piece == 0) return std::nullopt;
        shape[static_cast<std::size_t>(d)] = *piece;
        if (!last) rest = rest.substr(x + 1);
      }
      cfg.local = shape;
    } else if (key == "overlap") {
      if (val == "queue") cfg.overlap_queue = true;
      else if (val == "inline") cfg.overlap_queue = false;
      else return std::nullopt;
    } else if (key == "tile") {
      const auto t = parse_size(val);
      if (!t) return std::nullopt;
      cfg.tile = *t;
    } else if (key == "first_touch") {
      if (val == "on") cfg.first_touch = true;
      else if (val == "off") cfg.first_touch = false;
      else return std::nullopt;
    } else if (key == "fuse") {
      if (val == "on") cfg.fuse = true;
      else if (val == "off") cfg.fuse = false;
      else return std::nullopt;
    } else if (key == "reg_tile") {
      const auto v = parse_size(val);
      if (!v || *v == 0) return std::nullopt;
      cfg.reg_tile = static_cast<int>(*v);
    } else if (key == "vec") {
      const auto v = parse_size(val);
      if (!v || *v == 0) return std::nullopt;
      cfg.vec_width = static_cast<int>(*v);
    } else if (key == "unroll") {
      const auto v = parse_size(val);
      if (!v || *v == 0) return std::nullopt;
      cfg.unroll = static_cast<int>(*v);
    } else if (key == "cache_block") {
      const auto v = parse_size(val);
      if (!v) return std::nullopt;
      cfg.cache_block = *v;
    } else if (key == "layout") {
      if (val == "aos") cfg.layout = 0;
      else if (val == "soa") cfg.layout = 1;
      else if (val == "aosoa") cfg.layout = 2;
      else return std::nullopt;
    } else if (key == "indirect") {
      if (val == "atomics") cfg.indirect = 1;
      else if (val == "global") cfg.indirect = 2;
      else if (val == "hierarchical") cfg.indirect = 3;
      else if (val == "staged") cfg.indirect = 4;
      else return std::nullopt;
    } else {
      return std::nullopt;  // unknown axis: treat the entry as corrupt
    }
  }
  return cfg;
}

std::size_t Site::total() const noexcept {
  std::size_t t = 1;
  for (int d = 0; d < dims; ++d) t *= global[static_cast<std::size_t>(d)];
  return std::max<std::size_t>(1, t);
}

std::string Site::key() const {
  // Sanitize the kernel name: the cache format is line/space delimited.
  std::string n(name != nullptr ? name : "(kernel)");
  for (char& c : n)
    if (c == ' ' || c == '"' || c == '|') c = '_';
  int fp_class = 0;
  for (std::size_t t = total(); t > 1; t >>= 1) ++fp_class;
  std::string out = n;
  out += '|';
  out += std::to_string(dims);
  out += '|';
  out += std::to_string(global[0]);
  out += 'x';
  out += std::to_string(global[1]);
  out += 'x';
  out += std::to_string(global[2]);
  out += nd ? "|nd" : "|flat";
  out += "|fp";
  out += std::to_string(fp_class);
  // Axis mask: two same-named same-shaped sites with different declared
  // axis sets (a Threads lowering racing kernel variants vs a Serial
  // one racing schedule alone) must never collide in the cache - a
  // winner with axes the other lowering cannot act on would silently
  // pin the wrong knobs.
  out += "|ax";
  out += std::to_string(axes);
  return out;
}

// --- Autotuner --------------------------------------------------------------

Autotuner& Autotuner::instance() {
  static Autotuner tuner(mode_from_env(), std::string{}, cache_path_from_env());
  static const bool env_init = (tuner.set_transfer(transfer_from_env()), true);
  (void)env_init;
  return tuner;
}

Autotuner::Autotuner(Mode mode, std::string fingerprint, std::string cache_path)
    : mode_(mode),
      fingerprint_(std::move(fingerprint)),
      cache_path_(std::move(cache_path)) {}

bool Autotuner::enabled() const noexcept {
  if (t_tune_override) return *t_tune_override;
  return mode_ != Mode::Off;
}

const std::string& Autotuner::fingerprint() {
  std::lock_guard lock(mu_);
  if (fingerprint_.empty()) fingerprint_ = device_fingerprint();
  return fingerprint_;
}

void Autotuner::ensure_loaded_locked() {
  if (loaded_) return;
  loaded_ = true;
  if (fingerprint_.empty()) fingerprint_ = device_fingerprint();
  if (cache_path_.empty()) return;
  const auto data = read_cache(cache_path_);
  if (!data) return;
  // Keep every entry, including ones measured on other machines: a
  // foreign winner is never served directly (the fp gate in decide()),
  // but it is exactly what the transfer seeder wants - a nearby
  // platform's converged configuration to warm-start this one's race.
  cached_ = data->entries;
  for (auto& e : cached_)
    if (e.fp.empty()) e.fp = data->fingerprint;
}

Autotuner::Decision Autotuner::decide(const Site& site) {
  if (!enabled()) return {};
  std::lock_guard lock(mu_);
  ensure_loaded_locked();

  const std::string key = site.key();
  auto [it, inserted] = index_.try_emplace(key, static_cast<std::uint32_t>(
                                                    states_.size()));
  if (inserted) {
    auto st = std::make_unique<KeyState>();
    st->key = key;
    if (mode_ != Mode::Force) {
      // Direct hit only for a winner measured on *this* machine; a
      // foreign entry feeds the transfer seeder below instead.
      const auto hit = std::find_if(
          cached_.begin(), cached_.end(), [&](const CacheData::Entry& e) {
            return e.key == key && e.fp == fingerprint_;
          });
      if (hit != cached_.end()) {
        st->decided = true;
        st->from_cache = true;
        st->best = hit->config;
      }
    }
    if (!st->decided) {
      auto cands = make_candidates(site, priors_);
      if (cands.size() <= 1) {
        // Degenerate space: nothing to race, lock in immediately.
        st->decided = true;
        st->best = cands.empty() ? Config{} : cands.front();
      } else {
        if (mode_ != Mode::Force && transfer_) {
          if (const auto donor = find_donor_locked(site, key)) {
            // Warm start: race the donor's winner against its nearest
            // neighbors in joint-axis space instead of the full cross
            // product. The donor config is raced verbatim - a foreign
            // value that does not suit this site degrades gracefully
            // (unknown variant shapes fall back to the reference loop,
            // oversized grains/tiles collapse to one chunk) and simply
            // loses the race.
            std::stable_sort(cands.begin(), cands.end(),
                             [&](const Config& a, const Config& b) {
                               return axis_diff(a, donor->config) <
                                      axis_diff(b, donor->config);
                             });
            std::vector<Config> pool{donor->config};
            for (const Config& c : cands) {
              if (pool.size() >= 6) break;
              if (c == donor->config) continue;
              pool.push_back(c);
            }
            if (pool.size() >= 2) {
              cands = std::move(pool);
              st->seeded_from = donor->provenance;
            }
          }
        }
        st->all.reserve(cands.size());
        for (auto& c : cands) st->all.push_back({std::move(c), 1e30, 0, 0});
        st->alive.resize(st->all.size());
        for (std::uint32_t i = 0; i < st->alive.size(); ++i) st->alive[i] = i;
      }
    }
    states_.push_back(std::move(st));
  }
  const auto key_id = it->second;
  KeyState& st = *states_[key_id];
  const char* seed = st.seeded_from.empty() ? nullptr : st.seeded_from.c_str();
  if (st.decided) return {Phase::Exploiting, st.best, key_id, 0, seed};

  // Least-assigned surviving candidate next: round-robin coverage, and
  // unreported launches (exceptions, in-flight concurrency) never
  // starve the round.
  std::uint32_t pick = st.alive.front();
  for (const std::uint32_t i : st.alive)
    if (st.all[i].assigned < st.all[pick].assigned) pick = i;
  ++st.all[pick].assigned;
  ++explored_;
  return {Phase::Exploring, st.all[pick].cfg, key_id, pick, seed};
}

std::optional<Autotuner::Donor> Autotuner::find_donor_locked(
    const Site& site, const std::string& key) const {
  const auto want = parse_key(key);
  if (!want) return std::nullopt;
  std::optional<Donor> best;
  double best_score = 1e30;
  auto consider = [&](const std::string& donor_key, const Config& cfg,
                      const std::string& fp) {
    if (donor_key == key && fp == fingerprint_) return;  // ourselves
    const auto info = parse_key(donor_key);
    if (!info) return;  // pre-v3 key without an axis mask: not rankable
    // A donor must have raced exactly the axes this site declares -
    // transferring a winner across axis sets would pin knobs the
    // receiving lowering never consumes (or miss ones it needs).
    if (info->axes != want->axes) return;
    // Platform distance dominates (the paper's point: winners differ
    // per platform far more than per kernel); footprint class breaks
    // platform ties, same-name kernels break footprint ties.
    double score = 10.0 * fingerprint_distance(fp, fingerprint_);
    score += std::abs(info->fp_class - want->fp_class);
    if (info->name != want->name) score += 0.5;
    if (score < best_score) {
      best_score = score;
      Donor d;
      d.config = cfg;
      d.provenance = donor_key;
      if (fp != fingerprint_) d.provenance += "@" + fp;
      best = std::move(d);
    }
  };
  for (const auto& st : states_)
    if (st->decided) consider(st->key, st->best, fingerprint_);
  for (const auto& e : cached_) consider(e.key, e.config, e.fp);
  return best;
}

void Autotuner::report(const Decision& d, double seconds) {
  if (d.phase != Phase::Exploring) return;
  std::lock_guard lock(mu_);
  if (d.key_id >= states_.size()) return;
  KeyState& st = *states_[d.key_id];
  if (st.decided || d.candidate >= st.all.size()) return;
  Candidate& c = st.all[d.candidate];
  c.best_s = std::min(c.best_s, seconds);
  const bool alive = std::find(st.alive.begin(), st.alive.end(),
                               d.candidate) != st.alive.end();
  if (!alive) return;  // measurement of an already-dropped candidate
  ++c.runs;
  advance_round_locked(st);
}

void Autotuner::advance_round_locked(KeyState& st) {
  const bool round_done =
      std::all_of(st.alive.begin(), st.alive.end(), [&](std::uint32_t i) {
        return st.all[i].runs >= st.runs_per_cand;
      });
  if (!round_done) return;
  std::sort(st.alive.begin(), st.alive.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              return st.all[a].best_s < st.all[b].best_s;
            });
  if (st.alive.size() > 1) st.alive.resize((st.alive.size() + 1) / 2);
  if (st.alive.size() == 1) {
    st.decided = true;
    st.best = st.all[st.alive.front()].cfg;
    st.best_s = st.all[st.alive.front()].best_s;
    save_locked();
    return;
  }
  st.runs_per_cand = std::min(st.runs_per_cand * 2, kMaxRunsPerCandidate);
  for (const std::uint32_t i : st.alive) {
    st.all[i].runs = 0;
    st.all[i].assigned = 0;
  }
}

std::optional<Config> Autotuner::best(const Site& site) const {
  std::lock_guard lock(mu_);
  const auto it = index_.find(site.key());
  if (it == index_.end() || !states_[it->second]->decided) return std::nullopt;
  return states_[it->second]->best;
}

bool Autotuner::converged(const Site& site) const {
  std::lock_guard lock(mu_);
  const auto it = index_.find(site.key());
  return it != index_.end() && states_[it->second]->decided;
}

std::uint64_t Autotuner::explored_launches() const {
  std::lock_guard lock(mu_);
  return explored_;
}

void Autotuner::set_priors(const Priors& p) {
  std::lock_guard lock(mu_);
  priors_ = p;
}

std::string Autotuner::seeded_from(const Site& site) const {
  std::lock_guard lock(mu_);
  const auto it = index_.find(site.key());
  if (it == index_.end()) return {};
  return states_[it->second]->seeded_from;
}

bool Autotuner::save() const {
  std::lock_guard lock(mu_);
  return save_locked();
}

bool Autotuner::save_locked() const {
  if (cache_path_.empty()) return false;
  CacheData data;
  data.fingerprint = fingerprint_;
  // Keep entries for kernels this run never saw - foreign-machine
  // entries included, so a shared cache keeps accumulating transfer
  // donors across the cluster.
  data.entries = cached_;
  for (const auto& st : states_) {
    if (!st->decided) continue;
    auto it = std::find_if(data.entries.begin(), data.entries.end(),
                           [&](const CacheData::Entry& e) {
                             return e.key == st->key && e.fp == fingerprint_;
                           });
    if (it != data.entries.end())
      it->config = st->best;
    else
      data.entries.push_back({st->key, st->best, fingerprint_});
  }
  // Merge-on-load: another process (or another service session) may
  // have rewritten the file since our load; re-read and keep its
  // entries for (key, fp) identities we are not rewriting ourselves,
  // then publish the union through the atomic-rename path.
  return write_cache_merged(cache_path_, data);
}

void Autotuner::reset(Mode mode, std::string fingerprint,
                      std::string cache_path) {
  std::lock_guard lock(mu_);
  mode_ = mode;
  fingerprint_ = std::move(fingerprint);
  cache_path_ = std::move(cache_path);
  loaded_ = false;
  states_.clear();
  index_.clear();
  cached_.clear();
  explored_ = 0;
}

// --- scopes -----------------------------------------------------------------

ScopedTune::ScopedTune(std::optional<bool> enable) noexcept
    : saved_(t_tune_override) {
  if (enable) t_tune_override = enable;
}

ScopedTune::~ScopedTune() { t_tune_override = saved_; }

Phase current_phase() noexcept { return t_scope.phase; }
const Config* current_config() noexcept { return t_scope.cfg; }
const char* current_seed() noexcept { return t_scope.seed; }

double fingerprint_distance(std::string_view a, std::string_view b) noexcept {
  // Fingerprints are `k=v;k=v;...` (fingerprint.hpp). Distance is the
  // sum over shared fields of the doublings separating the two values -
  // cache sizes and core counts compare in log space, triad_log2 is
  // already a log. A field present on one side only (or an unparseable
  // value) costs a flat penalty, so malformed strings rank far away
  // instead of aliasing an exact match.
  constexpr double kMissing = 8.0;
  auto fields = [](std::string_view s) {
    std::vector<std::pair<std::string_view, double>> out;
    while (!s.empty()) {
      const auto semi = s.find(';');
      const std::string_view tok = s.substr(0, semi);
      s = semi == std::string_view::npos ? std::string_view{}
                                        : s.substr(semi + 1);
      const auto eq = tok.find('=');
      if (eq == std::string_view::npos) continue;
      double v = 0;
      bool ok = !tok.substr(eq + 1).empty();
      for (const char c : tok.substr(eq + 1)) {
        if (c < '0' || c > '9') { ok = false; break; }
        v = v * 10 + (c - '0');
      }
      if (ok) out.emplace_back(tok.substr(0, eq), v);
    }
    return out;
  };
  const auto fa = fields(a);
  const auto fb = fields(b);
  if (fa.empty() || fb.empty()) return fa.size() == fb.size() ? 0.0 : 1e9;
  double d = 0;
  std::size_t matched = 0;
  for (const auto& [k, va] : fa) {
    const auto it = std::find_if(fb.begin(), fb.end(),
                                 [&](const auto& p) { return p.first == k; });
    if (it == fb.end()) {
      d += kMissing;
      continue;
    }
    ++matched;
    const double vb = it->second;
    if (k == "triad_log2") {
      d += std::abs(va - vb);
    } else {
      d += std::abs(std::log2(std::max(1.0, va)) -
                    std::log2(std::max(1.0, vb)));
    }
  }
  if (fb.size() > matched)
    d += kMissing * static_cast<double>(fb.size() - matched);
  return d;
}

TunedLaunchParams::TunedLaunchParams(const Site& site,
                                     std::optional<Schedule> schedule,
                                     std::optional<std::size_t> grain)
    : saved_(launch_params()) {
  LaunchParams p = saved_;
  if (schedule) p.schedule = *schedule;
  if (grain) p.grain = *grain;
  auto& tuner = Autotuner::instance();
  if (t_scope.phase == Phase::None && tuner.enabled()) {
    Site s = site;
    // Explicit caller overrides pin the schedule/grain axis.
    if (schedule || grain) s.axes &= ~kScheduleGrain;
    if (s.axes != 0) {
      decision_ = tuner.decide(s);
      if (decision_.phase != Phase::None) {
        if (decision_.config.schedule) p.schedule = *decision_.config.schedule;
        if (decision_.config.grain) p.grain = *decision_.config.grain;
        if (decision_.config.first_touch) {
          // The decided first-touch mode governs allocations made
          // inside the scope (LoopChain temporaries, lazy buffer
          // materialization) via the mem subsystem's thread-local
          // override.
          saved_ft_ = mem::first_touch_override();
          mem::set_first_touch_override(*decision_.config.first_touch);
          ft_set_ = true;
        }
        owns_scope_ = true;
        t_scope = {decision_.phase, &decision_.config, decision_.seeded_from};
        uncaught_ = std::uncaught_exceptions();
        t0_ = std::chrono::steady_clock::now();
      }
    }
  }
  set_launch_params(p);
}

TunedLaunchParams::~TunedLaunchParams() {
  if (ft_set_) mem::set_first_touch_override(saved_ft_);
  if (owns_scope_) {
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0_)
            .count();
    t_scope = {};
    // A scope unwinding through an exception measured a failed launch;
    // feeding it to the race would reward early-throwing configs.
    if (std::uncaught_exceptions() == uncaught_)
      Autotuner::instance().report(decision_, seconds);
  }
  set_launch_params(saved_);
}

}  // namespace syclport::rt::autotune
