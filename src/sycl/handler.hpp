#pragma once
/// \file handler.hpp
/// miniSYCL command-group handler: the executor behind parallel_for.
///
/// - parallel_for(range)    : "flat" launch; work-items execute with no
///   group structure. The work-group shape the real runtime would pick
///   is *not* chosen here - it is modeled later by the compiler
///   heuristics in hwmodel, which is precisely the flat-formulation
///   effect (paper §3).
/// - parallel_for(nd_range) : explicit work-group shape; groups are
///   scheduled over the thread pool and work-items may use barriers and
///   local memory (fiber-backed, see runtime/fiber.hpp).
/// - reductions             : SYCL 2020 reduction objects, implemented
///   with per-chunk/per-group partials combined under a lock.
///
/// The handler runs in one of two modes (docs/queue.md):
/// - immediate: kernels execute inline at the point of the
///   parallel_for call, preceded by a conservative wait on conflicting
///   in-flight commands. Zero-allocation - this is the seed behaviour
///   and the hot path of the queue shortcuts and in_order queues.
/// - deferred: kernels are *recorded* (captured by value) together
///   with the accessor footprint; queue::submit turns the recording
///   into a scheduler Command so independent command groups execute
///   concurrently. nd_range validation still happens at record time,
///   so ill-formed launches throw synchronously in both modes.

#include <atomic>
#include <concepts>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/timing.hpp"
#include "runtime/autotune/autotune.hpp"
#include "runtime/autotune/variant.hpp"
#include "runtime/fiber.hpp"
#include "runtime/mem/stream.hpp"
#include "runtime/thread_pool.hpp"
#include "sycl/access.hpp"
#include "sycl/detail/local_arena.hpp"
#include "sycl/detail/scheduler.hpp"
#include "sycl/device.hpp"
#include "sycl/event.hpp"
#include "sycl/exception.hpp"
#include "sycl/item.hpp"
#include "sycl/launch_log.hpp"
#include "sycl/range.hpp"
#include "sycl/reduction.hpp"

namespace sycl {

class queue;

namespace detail {

template <int Dims>
[[nodiscard]] inline std::array<std::size_t, 3> to3(const range<Dims>& r) {
  std::array<std::size_t, 3> out{1, 1, 1};
  for (int d = 0; d < Dims; ++d) out[static_cast<std::size_t>(d)] = r[d];
  return out;
}

template <typename K, int Dims>
inline void invoke_flat(const K& k, const id<Dims>& i, const range<Dims>& r) {
  if constexpr (std::invocable<const K&, item<Dims>>) {
    k(item<Dims>(i, r));
  } else {
    static_assert(std::invocable<const K&, id<Dims>>,
                  "kernel must accept sycl::item or sycl::id");
    k(i);
  }
}

inline void log_launch(const char* name, int dims,
                       std::array<std::size_t, 3> global,
                       std::optional<std::array<std::size_t, 3>> local,
                       bool barrier, bool reduction, double secs,
                       syclport::rt::LaunchStats stats,
                       bool streaming = false) {
  auto& lg = launch_log::instance();
  if (!lg.enabled()) return;
  launch_record rec;
  rec.kernel_name = name;
  rec.dims = dims;
  rec.global = global;
  rec.local = local;
  rec.used_barrier = barrier;
  rec.reduction = reduction;
  rec.host_seconds = secs;
  rec.executor = stats;
  rec.streaming = streaming;
  // Which autotuner configuration served this launch (the innermost
  // tuning scope on this thread), and whether it was a search candidate
  // or the locked-in winner.
  rec.tune_phase = syclport::rt::autotune::current_phase();
  if (const auto* cfg = syclport::rt::autotune::current_config()) {
    rec.tune_config = cfg->to_string();
    if (cfg->reg_tile || cfg->cache_block) {
      const syclport::rt::autotune::VariantParams vp{
          cfg->reg_tile.value_or(1), cfg->vec_width.value_or(1),
          cfg->unroll.value_or(1)};
      rec.tune_variant =
          syclport::rt::autotune::variant_id(vp, cfg->cache_block.value_or(0));
    }
  }
  if (const char* seed = syclport::rt::autotune::current_seed())
    rec.tune_seed = seed;
  lg.append(std::move(rec));
}

/// Handler-level tuning site for one exec_* body: schedule x grain,
/// plus the kernel-variant menu on the flat (non-barrier) lowerings and
/// the cache-block axis where the traversal may be reordered (`extra`).
/// The shape of an nd_range launch is the caller's contract, so nd
/// sites never add variant axes here. No-ops when an outer DSL scope
/// (ops/op2 par_loop, LoopChain) already owns tuning for this launch.
[[nodiscard]] inline syclport::rt::autotune::Site exec_site(
    const char* name, int dims, std::array<std::size_t, 3> global, bool nd,
    unsigned extra = 0) {
  syclport::rt::autotune::Site s;
  s.name = name;
  s.dims = dims;
  s.global = global;
  s.nd = nd;
  s.axes = syclport::rt::autotune::kScheduleGrain | extra;
  return s;
}

/// Variant/cache-block decision of the innermost tuning scope on this
/// thread - the handler's own scope when it owns tuning, or the DSL
/// scope (ops/op2 par_loop) whose decision covers this launch when it
/// does. Defaults to the reference shape outside any scope.
struct ActiveVariant {
  syclport::rt::autotune::VariantParams vp;
  std::size_t cache_block = 0;
};
[[nodiscard]] inline ActiveVariant active_variant() {
  ActiveVariant out;
  if (const auto* cfg = syclport::rt::autotune::current_config()) {
    out.vp.reg_tile = cfg->reg_tile.value_or(1);
    out.vp.vec_width = cfg->vec_width.value_or(1);
    out.vp.unroll = cfg->unroll.value_or(1);
    out.cache_block = cfg->cache_block.value_or(0);
  }
  return out;
}

// --- kernel execution bodies, shared by both handler modes -----------------

template <int Dims, typename K>
void exec_flat(const device&, const char* name, const range<Dims>& r,
               const K& k, bool streaming = false) {
  // Streaming launch: every written accessor is discard_write, i.e. a
  // pure write stream (BabelStream-style fills/copies). Pin the static
  // schedule so the worker-to-range map matches the first-touch page
  // placement the mem subsystem established at allocation. The pin is
  // taken *before* the tuning scope, so an active autotuner (which may
  // be racing the first-touch axis itself) still overrides it.
  std::optional<syclport::rt::ScopedLaunchParams> pin;
  if (streaming)
    pin.emplace(syclport::rt::Schedule::Static, std::nullopt);
  // Flat launches are independent-point by construction here (a
  // reduction takes exec_flat_reduce), so this lowering also races the
  // kernel-variant menu, and on multi-dimensional ranges the
  // cache-blocked traversal.
  syclport::rt::autotune::TunedLaunchParams tuned(exec_site(
      name, Dims, to3(r), false,
      syclport::rt::autotune::kVariantAxes |
          (Dims >= 2 ? syclport::rt::autotune::kCacheBlock : 0u)));
  syclport::WallTimer t;
  const std::size_t total = r.size();
  const auto av = active_variant();
  const std::size_t fast = r[Dims - 1];
  auto body = [&](std::size_t lin) { invoke_flat(k, delinearize(lin, r), r); };
  if (Dims >= 2 && av.cache_block > 0 && av.cache_block < fast && fast > 0) {
    syclport::rt::autotune::blocked_parallel_for(total / fast, fast,
                                                 av.cache_block, av.vp, body);
  } else {
    // Templated fast path: the lambda is dispatched inline by the pool,
    // no std::function is constructed per launch or per chunk.
    syclport::rt::ThreadPool::global().parallel_for(
        total, [&](std::size_t b, std::size_t e) {
          syclport::rt::autotune::run_span_variant(av.vp, b, e, body);
        });
  }
  log_launch(name, Dims, to3(r), std::nullopt, false, false, t.seconds(),
             syclport::rt::ThreadPool::last_stats(), streaming);
}

template <int Dims, typename T, typename Op, typename K>
void exec_flat_reduce(const device&, const char* name, const range<Dims>& r,
                      const reduction_descriptor<T, Op>& red, const K& k) {
  // Reductions race the variant menu too - every variant visits its
  // span in strictly ascending order (variant.hpp contract), so the
  // per-chunk accumulation order is identical to the reference loop.
  // The cache-block axis, which does reorder, is NOT declared here.
  syclport::rt::autotune::TunedLaunchParams tuned(
      exec_site(name, Dims, to3(r), false,
                syclport::rt::autotune::kVariantAxes));
  syclport::WallTimer t;
  std::mutex mu;
  T acc = red.identity;
  const auto av = active_variant();
  syclport::rt::ThreadPool::global().parallel_for(
      r.size(), [&](std::size_t b, std::size_t e) {
        reducer<T, Op> part(red.identity, red.op);
        syclport::rt::autotune::run_span_variant(
            av.vp, b, e, [&](std::size_t lin) {
              const id<Dims> i = delinearize(lin, r);
              if constexpr (std::invocable<const K&, item<Dims>,
                                           reducer<T, Op>&>) {
                k(item<Dims>(i, r), part);
              } else {
                k(i, part);
              }
            });
        std::lock_guard lock(mu);
        acc = red.op(acc, part.value());
      });
  *red.target = red.op(*red.target, acc);
  log_launch(name, Dims, to3(r), std::nullopt, false, true, t.seconds(),
             syclport::rt::ThreadPool::last_stats());
}

template <int Dims, typename K>
void exec_nd(const device& dev, const char* name, const nd_range<Dims>& ndr,
             const K& k) {
  syclport::rt::autotune::TunedLaunchParams tuned(
      exec_site(name, Dims, to3(ndr.get_global_range()), true));
  syclport::WallTimer t;
  const range<Dims> groups = ndr.get_group_range();
  const range<Dims> local = ndr.get_local_range();
  const range<Dims> global = ndr.get_global_range();
  std::atomic<bool> used_barrier{false};
  syclport::rt::ThreadPool::global().run_chunks(
      groups.size(), [&](std::size_t g) {
        local_reset();
        const id<Dims> gid = delinearize(g, groups);
        const bool b = syclport::rt::run_barrier_group(
            local.size(), [&](std::size_t li) {
              const id<Dims> lid = delinearize(li, local);
              id<Dims> glob;
              for (int d = 0; d < Dims; ++d)
                glob[d] = gid[d] * local[d] + lid[d];
              k(nd_item<Dims>(glob, lid, group<Dims>(gid, groups, local, li),
                              global, dev.profile().sub_group_size));
            });
        if (b) used_barrier.store(true, std::memory_order_relaxed);
      });
  log_launch(name, Dims, to3(global), to3(local), used_barrier.load(), false,
             t.seconds(), syclport::rt::ThreadPool::last_stats());
}

template <int Dims, typename T, typename Op, typename K>
void exec_nd_reduce(const device& dev, const char* name,
                    const nd_range<Dims>& ndr,
                    const reduction_descriptor<T, Op>& red, const K& k) {
  syclport::rt::autotune::TunedLaunchParams tuned(
      exec_site(name, Dims, to3(ndr.get_global_range()), true));
  syclport::WallTimer t;
  const range<Dims> groups = ndr.get_group_range();
  const range<Dims> local = ndr.get_local_range();
  const range<Dims> global = ndr.get_global_range();
  std::mutex mu;
  T acc = red.identity;
  std::atomic<bool> used_barrier{false};
  syclport::rt::ThreadPool::global().run_chunks(
      groups.size(), [&](std::size_t g) {
        local_reset();
        const id<Dims> gid = delinearize(g, groups);
        reducer<T, Op> part(red.identity, red.op);
        const bool b = syclport::rt::run_barrier_group(
            local.size(), [&](std::size_t li) {
              const id<Dims> lid = delinearize(li, local);
              id<Dims> glob;
              for (int d = 0; d < Dims; ++d)
                glob[d] = gid[d] * local[d] + lid[d];
              k(nd_item<Dims>(glob, lid, group<Dims>(gid, groups, local, li),
                              global, dev.profile().sub_group_size),
                part);
            });
        if (b) used_barrier.store(true, std::memory_order_relaxed);
        std::lock_guard lock(mu);
        acc = red.op(acc, part.value());
      });
  *red.target = red.op(*red.target, acc);
  log_launch(name, Dims, to3(global), to3(local), used_barrier.load(), true,
             t.seconds(), syclport::rt::ThreadPool::last_stats());
}

template <typename K>
void exec_single(const device&, const K& k) {
  syclport::WallTimer t;
  k();
  log_launch("(single_task)", 1, {1, 1, 1},
             std::array<std::size_t, 3>{1, 1, 1}, false, false, t.seconds(),
             syclport::rt::LaunchStats{});
}

}  // namespace detail

class handler {
 public:
  explicit handler(const device& dev, bool deferred = false)
      : dev_(dev), deferred_(deferred) {
    // Deferred command groups record straight into a pooled Command
    // node: in steady state the actions/footprint vectors below are
    // recycled capacity, so a submit allocates nothing for bookkeeping.
    if (deferred_) cmd_ = detail::acquire_command();
  }

  // --- flat parallel_for -------------------------------------------------
  template <int Dims, typename K>
  void parallel_for(range<Dims> r, const K& k) {
    parallel_for("(unnamed)", r, k);
  }

  template <int Dims, typename K>
  void parallel_for(const char* name, range<Dims> r, const K& k) {
    // The streaming decision is made here, once the command group's
    // accessors have all registered (they are constructed before the
    // parallel_for call inside the CGF).
    const bool streaming = discard_only_writes();
    if (!deferred_) {
      sync_immediate();
      detail::exec_flat(dev_, name, r, k, streaming);
      return;
    }
    record(name, [dev = dev_, name, r, k, streaming] {
      detail::exec_flat(dev, name, r, k, streaming);
    });
  }

  // --- flat parallel_for with one reduction --------------------------------
  template <int Dims, typename T, typename Op, typename K>
  void parallel_for(range<Dims> r, reduction_descriptor<T, Op> red,
                    const K& k) {
    parallel_for("(unnamed)", r, red, k);
  }

  template <int Dims, typename T, typename Op, typename K>
  void parallel_for(const char* name, range<Dims> r,
                    reduction_descriptor<T, Op> red, const K& k) {
    if (!deferred_) {
      sync_immediate();
      detail::exec_flat_reduce(dev_, name, r, red, k);
      return;
    }
    register_access(red.target, access_mode::read_write);
    record(name, [dev = dev_, name, r, red, k] {
      detail::exec_flat_reduce(dev, name, r, red, k);
    });
  }

  // --- nd_range parallel_for ----------------------------------------------
  template <int Dims, typename K>
  void parallel_for(nd_range<Dims> ndr, const K& k) {
    parallel_for("(unnamed)", ndr, k);
  }

  template <int Dims, typename K>
  void parallel_for(const char* name, nd_range<Dims> ndr, const K& k) {
    check_nd_range(ndr);
    if (!deferred_) {
      sync_immediate();
      detail::exec_nd(dev_, name, ndr, k);
      return;
    }
    record(name, [dev = dev_, name, ndr, k] {
      detail::exec_nd(dev, name, ndr, k);
    });
  }

  // --- nd_range parallel_for with one reduction ----------------------------
  template <int Dims, typename T, typename Op, typename K>
  void parallel_for(nd_range<Dims> ndr, reduction_descriptor<T, Op> red,
                    const K& k) {
    parallel_for("(unnamed)", ndr, red, k);
  }

  template <int Dims, typename T, typename Op, typename K>
  void parallel_for(const char* name, nd_range<Dims> ndr,
                    reduction_descriptor<T, Op> red, const K& k) {
    check_nd_range(ndr);
    if (!deferred_) {
      sync_immediate();
      detail::exec_nd_reduce(dev_, name, ndr, red, k);
      return;
    }
    register_access(red.target, access_mode::read_write);
    record(name, [dev = dev_, name, ndr, red, k] {
      detail::exec_nd_reduce(dev, name, ndr, red, k);
    });
  }

  // --- single task ----------------------------------------------------------
  template <typename K>
  void single_task(const K& k) {
    if (!deferred_) {
      sync_immediate();
      detail::exec_single(dev_, k);
      return;
    }
    record("(single_task)", [dev = dev_, k] { detail::exec_single(dev, k); });
  }

  // --- explicit memory operations (SYCL 2020 handler::fill/copy) ----------
  /// Fill the accessor's range through the streaming-store path:
  /// non-temporal stores fanned out over the pool under a static
  /// schedule. The accessor's constructor already registered the
  /// footprint (use write_only + no_init to also skip the buffer's
  /// lazy zero fill).
  template <typename Acc, typename T>
    requires requires(const Acc& a) {
      a.get_pointer();
      a.get_range();
    }
  void fill(Acc acc, const T& value) {
    using Elem = std::remove_reference_t<decltype(*acc.get_pointer())>;
    Elem* ptr = acc.get_pointer();
    const std::size_t n = acc.get_range().size();
    const Elem v = static_cast<Elem>(value);
    if (!deferred_) {
      sync_immediate();
      syclport::rt::mem::parallel_fill(ptr, n, v);
      return;
    }
    record("(fill)", [ptr, n, v] { syclport::rt::mem::parallel_fill(ptr, n, v); });
  }

  /// Accessor-to-accessor copy (dst must be at least src-sized), again
  /// through the streaming-store path.
  template <typename SrcAcc, typename DstAcc>
    requires requires(const SrcAcc& s, const DstAcc& d) {
      s.get_pointer();
      d.get_pointer();
    }
  void copy(SrcAcc src, DstAcc dst) {
    using Elem = std::remove_reference_t<decltype(*src.get_pointer())>;
    const Elem* sp = src.get_pointer();
    Elem* dp = dst.get_pointer();
    const std::size_t bytes = src.get_range().size() * sizeof(Elem);
    if (!deferred_) {
      sync_immediate();
      syclport::rt::mem::parallel_copy(dp, sp, bytes);
      return;
    }
    record("(copy)", [dp, sp, bytes] {
      syclport::rt::mem::parallel_copy(dp, sp, bytes);
    });
  }

  /// Host-to-accessor copy.
  template <typename T, typename DstAcc>
    requires requires(const DstAcc& d) { d.get_pointer(); }
  void copy(const T* src, DstAcc dst) {
    register_access(src, access_mode::read);
    T* dp = dst.get_pointer();
    const std::size_t bytes = dst.get_range().size() * sizeof(T);
    if (!deferred_) {
      sync_immediate();
      syclport::rt::mem::parallel_copy(dp, src, bytes);
      return;
    }
    record("(copy)", [dp, src, bytes] {
      syclport::rt::mem::parallel_copy(dp, src, bytes);
    });
  }

  /// Accessor-to-host copy.
  template <typename SrcAcc, typename T>
    requires requires(const SrcAcc& s) { s.get_pointer(); }
  void copy(SrcAcc src, T* dst) {
    register_access(dst, access_mode::write);
    const T* sp = src.get_pointer();
    const std::size_t bytes = src.get_range().size() * sizeof(T);
    if (!deferred_) {
      sync_immediate();
      syclport::rt::mem::parallel_copy(dst, sp, bytes);
      return;
    }
    record("(copy)", [dst, sp, bytes] {
      syclport::rt::mem::parallel_copy(dst, sp, bytes);
    });
  }

  /// Accessor registration: records (base pointer, access_mode) in the
  /// command group's footprint, from which queue::submit derives
  /// RAW/WAR/WAW edges. Buffer accessors call this from their
  /// constructors; SYCL code may also call it explicitly.
  template <typename Acc>
  void require(const Acc& acc) {
    register_access(acc.get_pointer(), acc.mode());
  }

  /// Footprint declaration for raw (USM / wrapped host) memory, which
  /// has no accessor to speak for it. The DSL overlap paths use this to
  /// declare per-dat footprints so commands from different minimpi
  /// ranks stay independent.
  void require(const void* ptr, access_mode mode) {
    register_access(ptr, mode);
  }

  /// Explicit command ordering, as in SYCL 2020. On the immediate path
  /// the event is simply waited for here.
  void depends_on(const event& e) {
    if (!deferred_) {
      if (e.command()) detail::Scheduler::instance().wait_command(e.command());
      return;
    }
    if (e.command()) cmd_->explicit_deps.push_back(e.command());
    explicit_deps_ = true;
  }

 private:
  friend class queue;

  template <int Dims>
  void check_nd_range(const nd_range<Dims>& ndr) const {
    if (ndr.get_local_range().size() > dev_.max_work_group_size())
      throw exception(errc::nd_range_error,
                      "work-group size exceeds device limit");
  }

  void register_access(const void* ptr, access_mode mode) {
    if (ptr == nullptr) return;
    auto& accs = deferred_ ? cmd_->accesses : accesses_;
    for (auto& a : accs) {
      if (a.ptr != ptr) continue;
      // Mixed modes on one pointer collapse to read_write - the
      // conservative superset (it also voids any discard promise).
      if (a.mode != mode) a.mode = access_mode::read_write;
      return;
    }
    accs.push_back({ptr, mode});
  }

  /// True when the footprint writes at least one accessor and every
  /// written accessor is discard_write: a pure write stream with no
  /// dependence on prior contents, eligible for the streaming launch
  /// path in exec_flat.
  [[nodiscard]] bool discard_only_writes() const {
    const auto& accs = deferred_ ? cmd_->accesses : accesses_;
    bool any = false;
    for (const auto& a : accs) {
      if (a.mode == access_mode::discard_write)
        any = true;
      else if (a.mode != access_mode::read)
        return false;
    }
    return any;
  }

  /// Conservative pre-step of immediate execution: block until no
  /// in-flight command conflicts with this command group's footprint
  /// (with no footprint declared, until the scheduler is idle).
  void sync_immediate() const {
    auto& s = detail::Scheduler::instance();
    if (s.active()) s.wait_conflicts(accesses_);
  }

  template <typename Fn>
  void record(const char* name, Fn&& fn) {
    if (!name_) name_ = name;
    cmd_->actions.push_back(std::forward<Fn>(fn));
  }

  device dev_;
  bool deferred_ = false;
  bool explicit_deps_ = false;  ///< depends_on was called (even if retired)
  const char* name_ = nullptr;  ///< first recorded kernel name
  /// Deferred mode only: the pooled command this group records into
  /// (actions, footprint, explicit deps). Null on the immediate path,
  /// which stays allocation-free.
  std::shared_ptr<detail::Command> cmd_;
  /// Immediate mode only: footprint for the conservative pre-wait.
  std::vector<detail::AccessRecord> accesses_;
};

}  // namespace sycl
