// Ablation: parametrized kernel variants + transfer-learning autotune
// (docs/tuning.md).
//
// Lawson et al. recover the CPU gap SYCL leaves vs native OpenMP with
// highly parametrized kernels - register tiling, explicit vector
// widths, unrolling - instantiated per platform. This bench quantifies
// that layer and the transfer-learning search that picks from it:
//
//   1. variant menu  - the 2D stencil sweep pinned to every compiled
//                      (reg_tile x vec_width x unroll) instantiation in
//                      turn (tuning off): delivered speedup over the
//                      unparametrized reference loop, next to the
//                      hwmodel's per-platform predicted speedup;
//   2. per platform  - the model's best variant for each calibrated
//                      platform (the per-platform best-variant table);
//   3. cold vs warm  - the tuner races the joint schedule x variant
//                      menu from an empty cache ("machine A"), then a
//                      second fingerprint ("machine B") tunes the same
//                      kernel warm-started from A's cache entry: warm
//                      must converge in < 50% of cold's explored
//                      launches, and every run - cold, warm, any served
//                      variant - must be bit-exact vs the reference;
//   4. hand-set      - tuned steady state vs the best fixed variant a
//                      careful user could pin, interleaved protocol
//                      (informational: under noise the race may settle
//                      on a near-tie rather than the global best).
//
// Emits ablation_kernel_params.csv next to the binary; CI asserts the
// warm/cold ratio and the bit-exactness flag from it.

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "core/report.hpp"
#include "core/timing.hpp"
#include "hwmodel/platform.hpp"
#include "hwmodel/variant_model.hpp"
#include "ops/ops.hpp"
#include "runtime/autotune/autotune.hpp"
#include "runtime/autotune/cache.hpp"
#include "runtime/autotune/variant.hpp"
#include "runtime/thread_pool.hpp"

using namespace syclport;
namespace ops = syclport::ops;
namespace at = syclport::rt::autotune;

namespace {

constexpr std::size_t kN = 768;  // 768^2 doubles x 2 dats = 9 MiB
constexpr int kMaxIters = 900;   // cap for draining the joint race
constexpr const char* kCache = "ablation_kernel_params.cache.json";

/// One bandwidth-bound 5-point sweep b = lap(a) over an n x n block,
/// the same kernel shape ablation_autotune uses.
struct Sweep {
  ops::Context ctx;
  ops::Block grid;
  ops::Dat<double> a, b;

  explicit Sweep(const ops::Options& o)
      : ctx(o),
        grid(ctx, "g", 2, {kN, kN, 1}),
        a(grid, "a", 1, 1),
        b(grid, "b", 1, 1) {
    for (long i = -1; i <= static_cast<long>(kN); ++i)
      for (long j = -1; j <= static_cast<long>(kN); ++j)
        a.at(i, j) = 0.01 * static_cast<double>(i - j);
    ctx.opt.record = false;
  }

  void iterate() {
    ops::par_loop(ctx, {"kp_sweep"}, grid, ops::Range::all(grid),
                  [](ops::ACC<double> out, ops::ACC<double> in) {
                    out(0, 0) = in(0, 0) +
                                0.2 * (in(1, 0) + in(-1, 0) + in(0, 1) +
                                       in(0, -1) - 4.0 * in(0, 0));
                  },
                  ops::arg(b, ops::S_PT, ops::Acc::W),
                  ops::arg(a, ops::S2D_5PT, ops::Acc::R));
  }

  [[nodiscard]] double checksum() { return b.interior_sum(); }

  /// The tuning site ops::par_loop derives for this sweep (flat 2D
  /// non-reduction: schedule x variant menu x cache block).
  [[nodiscard]] static at::Site site() {
    at::Site s;
    s.name = "kp_sweep";
    s.dims = 2;
    s.global = {kN, kN, 1};
    s.axes = at::kScheduleGrain | at::kVariantAxes | at::kCacheBlock;
    return s;
  }
};

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

/// ms/iteration of the raw stencil body run through the thread pool
/// with `vp` pinned - the variant layer measured without the tuner.
double pinned_variant_ms(const at::VariantParams& vp) {
  const std::size_t stride = kN + 2;  // dat pitch incl. depth-1 halo
  std::vector<double> a((kN + 2) * stride, 0.0), b(a.size(), 0.0);
  for (std::size_t i = 0; i < kN + 2; ++i)
    for (std::size_t j = 0; j < kN + 2; ++j)
      a[i * stride + j] = 0.01 * static_cast<double>(i) -
                          0.02 * static_cast<double>(j);
  const double* pa = a.data();
  double* pb = b.data();
  auto body = [=](std::size_t lin) {
    const std::size_t i = lin / kN + 1, j = lin % kN + 1;
    const std::size_t c = i * stride + j;
    pb[c] = pa[c] + 0.2 * (pa[c + stride] + pa[c - stride] + pa[c + 1] +
                           pa[c - 1] - 4.0 * pa[c]);
  };
  auto iterate = [&] {
    rt::ThreadPool::global().parallel_for(
        kN * kN, [&](std::size_t s, std::size_t e) {
          at::run_span_variant(vp, s, e, body);
        });
  };
  for (int i = 0; i < 3; ++i) iterate();
  std::vector<double> t;
  for (int i = 0; i < 11; ++i) {
    WallTimer w;
    iterate();
    t.push_back(w.seconds());
  }
  return median(t) * 1e3;
}

/// Steady-state ms/iteration of the ops-layer Sweep with `cfg` pinned
/// by way of a pre-decided cache entry - the path a careful user takes
/// to hand-set a variant, and the apples-to-apples baseline for the
/// tuned steady state (same ACC/dispatch overhead on both sides).
double pinned_ops_ms(const at::Config& cfg) {
  at::CacheData data;
  data.fingerprint = "bench-pin";
  data.entries = {{Sweep::site().key(), cfg, ""}};
  at::write_cache(kCache, data);
  at::Autotuner::instance().reset(at::Autotuner::Mode::On, "bench-pin",
                                  kCache);
  ops::Options o;
  o.backend = ops::Backend::Threads;
  o.tune = true;
  Sweep s(o);
  for (int i = 0; i < 3; ++i) s.iterate();
  std::vector<double> t;
  for (int i = 0; i < 11; ++i) {
    WallTimer w;
    s.iterate();
    t.push_back(w.seconds());
  }
  return median(t) * 1e3;
}

/// Drive the process tuner to convergence on a fresh Sweep; returns
/// explored launches and leaves the checksum in *sum.
std::uint64_t tuned_converge(double* sum, double* steady_ms) {
  ops::Options o;
  o.backend = ops::Backend::Threads;
  o.tune = true;
  Sweep s(o);
  auto& tuner = at::Autotuner::instance();
  int it = 0;
  for (; it < kMaxIters && !tuner.converged(Sweep::site()); ++it) s.iterate();
  std::vector<double> t;
  for (int i = 0; i < 15; ++i) {
    WallTimer w;
    s.iterate();
    t.push_back(w.seconds());
  }
  if (steady_ms) *steady_ms = median(t) * 1e3;
  *sum = s.checksum();
  return tuner.explored_launches();
}

}  // namespace

int main() {
  std::cout << "=== Ablation: parametrized kernel variants + transfer "
               "autotune ===\n\n";
  report::Table t({"experiment", "config", "metric", "value"});

  // 1. The compiled menu, pinned one variant at a time: delivered
  // speedup on this host next to the model's prediction for the
  // paper's CPU platforms. Predictions use the issue-bound
  // (cache-resident, ~2 B DRAM/item) regime - in the pure streaming
  // regime the model correctly predicts ~1.0x for every variant
  // (bandwidth cannot be created), which the streaming column of the
  // per-platform table shows.
  constexpr double kCacheResBytes = 2.0;
  std::cout << "-- variant menu, pinned (tuning off) --\n";
  const double ref_ms = pinned_variant_ms(at::VariantParams{});
  double best_raw_ms = ref_ms;
  at::VariantParams best_raw{};
  const std::vector<std::pair<PlatformId, const char*>> cpus = {
      {PlatformId::Xeon8360Y, "xeon"},
      {PlatformId::GenoaX, "genoax"},
      {PlatformId::Altra, "altra"}};
  for (const auto& vp : at::kVariantMenu) {
    const double ms = pinned_variant_ms(vp);
    const double delivered = ref_ms / ms;
    std::cout << "  " << at::variant_id(vp) << ": " << report::fmt(ms, 3)
              << " ms/iter, delivered x" << report::fmt(delivered, 3)
              << " (predicted";
    t.add_row({"variant_menu", at::variant_id(vp), "ms_per_iter",
               report::fmt(ms, 4)});
    t.add_row({"variant_menu", at::variant_id(vp), "delivered_speedup",
               report::fmt(delivered, 4)});
    for (const auto& [pid, slug] : cpus) {
      const double pred = hw::predicted_variant_speedup(hw::platform(pid), vp,
                                                        kCacheResBytes);
      std::cout << " " << slug << " x" << report::fmt(pred, 2);
      t.add_row({"variant_menu", at::variant_id(vp),
                 std::string("predicted_speedup_") + slug,
                 report::fmt(pred, 4)});
    }
    std::cout << ")\n";
    if (ms < best_raw_ms) {
      best_raw_ms = ms;
      best_raw = vp;
    }
  }
  std::cout << "  fastest pinned variant (raw loop): "
            << at::variant_id(best_raw) << " ("
            << report::fmt(best_raw_ms, 3) << " ms/iter)\n";

  // 2. Per-platform best-variant table from the model: the issue-bound
  // winner per platform, plus what the same variant is worth in the
  // streaming regime (~1.0 everywhere - bandwidth-bound kernels get
  // their win from the schedule/blocking axes, not from ILP shapes).
  std::cout << "\n-- per-platform best variant (hwmodel) --\n";
  for (PlatformId p : kAllPlatforms) {
    const hw::Platform& plat = hw::platform(p);
    at::VariantParams best{};
    double best_pred = 1.0;
    for (const auto& vp : at::kVariantMenu) {
      const double pred =
          hw::predicted_variant_speedup(plat, vp, kCacheResBytes);
      if (pred > best_pred) {
        best_pred = pred;
        best = vp;
      }
    }
    const double streaming = hw::predicted_variant_speedup(plat, best);
    std::cout << "  " << to_string(p) << ": " << at::variant_id(best)
              << " (predicted x" << report::fmt(best_pred, 3)
              << " cache-resident, x" << report::fmt(streaming, 3)
              << " streaming)\n";
    t.add_row({"platform_best", std::string(to_string(p)), "variant",
               at::variant_id(best)});
    t.add_row({"platform_best", std::string(to_string(p)),
               "predicted_speedup_cacheres", report::fmt(best_pred, 4)});
    t.add_row({"platform_best", std::string(to_string(p)),
               "predicted_speedup_streaming", report::fmt(streaming, 4)});
  }

  // 3. Cold vs warm: machine A races the joint menu from an empty
  // cache; machine B (different fingerprint, same cache file) seeds its
  // pool from A's entry. Convergence must cost < 50% of cold's explored
  // launches and stay bit-exact throughout.
  std::cout << "\n-- cold vs transfer-warm tuned runs --\n";
  std::remove(kCache);
  auto& tuner = at::Autotuner::instance();

  ops::Options untuned;
  untuned.backend = ops::Backend::Serial;
  untuned.tune = false;
  Sweep reference(untuned);
  reference.iterate();
  const double ref_sum = reference.checksum();

  tuner.reset(at::Autotuner::Mode::On, "bench-machine-a", kCache);
  double cold_sum = 0.0, tuned_ms = 0.0;
  const std::uint64_t cold_explored = tuned_converge(&cold_sum, &tuned_ms);
  const bool cold_converged = tuner.converged(Sweep::site());
  const auto cold_best = tuner.best(Sweep::site());

  tuner.reset(at::Autotuner::Mode::On, "bench-machine-b", kCache);
  double warm_sum = 0.0;
  const std::uint64_t warm_explored = tuned_converge(&warm_sum, nullptr);
  const bool warm_converged = tuner.converged(Sweep::site());
  const std::string seed = tuner.seeded_from(Sweep::site());
  tuner.reset(at::Autotuner::Mode::Off, "", "");
  std::remove(kCache);

  const bool bit_exact = cold_sum == ref_sum && warm_sum == ref_sum;
  const double ratio = cold_explored > 0 ? static_cast<double>(warm_explored) /
                                               static_cast<double>(cold_explored)
                                         : 1.0;
  std::cout << "  cold: " << cold_explored << " explored launches"
            << (cold_converged ? "" : " (NOT converged)") << ", winner "
            << (cold_best ? cold_best->to_string() : "(none)") << "\n"
            << "  warm: " << warm_explored << " explored launches"
            << (warm_converged ? "" : " (NOT converged)") << ", seeded from "
            << (seed.empty() ? "(full search)" : seed) << "\n"
            << "  warm/cold ratio " << report::fmt(ratio, 3)
            << " (target < 0.5), bit-exact "
            << (bit_exact ? "yes" : "NO") << "\n";
  t.add_row({"transfer", "cold", "explored_launches",
             std::to_string(cold_explored)});
  t.add_row({"transfer", "warm", "explored_launches",
             std::to_string(warm_explored)});
  t.add_row({"transfer", "warm", "warm_vs_cold_ratio",
             report::fmt(ratio, 4)});
  t.add_row({"transfer", "warm", "seeded_from",
             seed.empty() ? "(none)" : seed});
  t.add_row({"transfer", "all", "bit_exact", bit_exact ? "1" : "0"});
  t.add_row({"transfer", "all", "converged",
             cold_converged && warm_converged ? "1" : "0"});

  // 4. Tuned steady state vs the best hand-set config through the SAME
  // ops-layer path: each menu variant pinned via a pre-decided cache
  // entry (static schedule, no blocking), best taken over the menu -
  // both sides pay identical ACC/dispatch overhead.
  std::cout << "\n-- tuned vs hand-set variants (ops layer) --\n";
  double best_hand_ms = 1e30;
  at::VariantParams best_hand{};
  for (const auto& vp : at::kVariantMenu) {
    at::Config cfg;
    cfg.schedule = rt::Schedule::Static;
    cfg.reg_tile = vp.reg_tile;
    cfg.vec_width = vp.vec_width;
    cfg.unroll = vp.unroll;
    const double ms = pinned_ops_ms(cfg);
    t.add_row({"hand_set", at::variant_id(vp), "ms_per_iter",
               report::fmt(ms, 4)});
    if (ms < best_hand_ms) {
      best_hand_ms = ms;
      best_hand = vp;
    }
  }
  // Final head-to-head under one protocol: the cold run's winner vs the
  // picked hand-set best, interleaved best-of-rounds through the same
  // pinned path. The sweep above picked `best_hand` as a min over 15
  // noisy medians (selection bias flatters it); rounds alternating the
  // two finalists cancel both that and OS drift.
  at::Config hand_cfg;
  hand_cfg.schedule = rt::Schedule::Static;
  hand_cfg.reg_tile = best_hand.reg_tile;
  hand_cfg.vec_width = best_hand.vec_width;
  hand_cfg.unroll = best_hand.unroll;
  double winner_ms = 1e30;
  best_hand_ms = 1e30;
  for (int round = 0; round < 3; ++round) {
    if (cold_best)
      winner_ms = std::min(winner_ms, pinned_ops_ms(*cold_best));
    best_hand_ms = std::min(best_hand_ms, pinned_ops_ms(hand_cfg));
  }
  if (!cold_best) winner_ms = tuned_ms;
  at::Autotuner::instance().reset(at::Autotuner::Mode::Off, "", "");
  std::remove(kCache);
  const double hand_ratio = winner_ms / best_hand_ms;
  std::cout << "  tuned winner " << report::fmt(winner_ms, 3)
            << " ms/iter (live-race steady state " << report::fmt(tuned_ms, 3)
            << ") vs best hand-set " << at::variant_id(best_hand) << " "
            << report::fmt(best_hand_ms, 3) << " ms/iter (ratio "
            << report::fmt(hand_ratio, 3)
            << "; the race optimizes wall time under measurement noise, so "
               "a near-tie variant can win)\n";
  t.add_row({"hand_set", "tuned_winner", "ms_per_iter",
             report::fmt(winner_ms, 4)});
  t.add_row({"hand_set", "tuned_live", "ms_per_iter",
             report::fmt(tuned_ms, 4)});
  t.add_row({"hand_set", "tuned_winner", "vs_best_hand_ratio",
             report::fmt(hand_ratio, 4)});

  std::cout << "\n";
  t.render(std::cout);
  if (t.save_csv("ablation_kernel_params.csv"))
    std::cout << "\nwrote ablation_kernel_params.csv\n";
  std::cout << "(warm-start-from-neighbor must explore < 50% of the cold "
               "search, and every variant the race serves must be "
               "bit-exact vs the reference loop.)\n";
  return bit_exact && warm_converged ? 0 : 1;
}
