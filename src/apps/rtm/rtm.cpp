#include "apps/rtm/rtm.hpp"

#include <cmath>

#include "ops/fusion.hpp"

namespace syclport::apps {

namespace {
/// 8th-order central second-derivative coefficients (times 1/dx^2,
/// folded into the velocity dat).
constexpr float kC0 = -205.0f / 72.0f;
constexpr float kC1 = 8.0f / 5.0f;
constexpr float kC2 = -1.0f / 5.0f;
constexpr float kC3 = 8.0f / 315.0f;
constexpr float kC4 = -1.0f / 560.0f;

/// Laplacian costs ~3*9 adds + 3*4 muls per dim; the leapfrog update
/// adds the remaining handful.
constexpr double kLapFlops = 41.0;
constexpr double kUpdateFlops = 4.0;
}  // namespace

RunSummary run_rtm(const ops::Options& opt, ProblemSize ps) {
  ops::Context ctx(opt);
  ops::Block grid(ctx, "rtm", 3, ps.grid);
  ops::Dat<float> p0(grid, "p_prev", 1, 4);
  ops::Dat<float> p1(grid, "p_cur", 1, 4);
  ops::Dat<float> vel(grid, "vel_dt2", 1, 0);
  // Chain-internal scratch (see acoustic.cpp): the stored laplacian is
  // consumed pointwise by rtm_update, so fusion keeps it cache-resident.
  ops::Dat<float> lap(grid, "lap", 1, 0);

  const long nz = static_cast<long>(ps.grid[0]);
  const long ny = static_cast<long>(ps.grid[1]);
  const long nx = static_cast<long>(ps.grid[2]);

  if (ctx.executing()) {
    // Layered velocity model, scaled for CFL stability (v*dt/dx ~ 0.2).
    for (long k = 0; k < nz; ++k)
      for (long j = 0; j < ny; ++j)
        for (long i = 0; i < nx; ++i)
          vel.at(k, j, i) = 0.04f * (1.0f + 0.5f * static_cast<float>(k) /
                                                static_cast<float>(nz));
  }

  const ops::Range interior = ops::Range::all(grid);
  ops::Range source;
  source.lo = {nz / 2, ny / 2, nx / 2};
  source.hi = {nz / 2 + 1, ny / 2 + 1, nx / 2 + 1};

  for (int t = 0; t < ps.iters; ++t) {
    ops::FusedScope fs(ctx, grid);
    // Ricker-wavelet source injection at the grid centre.
    const float wavelet = [&] {
      const float ft = 0.35f * (static_cast<float>(t) - 4.0f);
      return (1.0f - 2.0f * ft * ft) * std::exp(-ft * ft);
    }();
    fs.loop({"rtm_source", hw::KernelClass::Boundary, 4.0}, source,
            [wavelet](ops::ACC<float> p) { p(0, 0, 0) += wavelet; },
            ops::arg(p1, ops::S_PT, ops::Acc::RW));

    fs.loop(
        {"rtm_lap", hw::KernelClass::Interior, kLapFlops}, interior,
        [](ops::ACC<float> l, ops::ACC<float> pc) {
          l(0, 0, 0) =
              3.0f * kC0 * pc(0, 0, 0) +
              kC1 * (pc(1, 0, 0) + pc(-1, 0, 0) + pc(0, 1, 0) + pc(0, -1, 0) +
                     pc(0, 0, 1) + pc(0, 0, -1)) +
              kC2 * (pc(2, 0, 0) + pc(-2, 0, 0) + pc(0, 2, 0) + pc(0, -2, 0) +
                     pc(0, 0, 2) + pc(0, 0, -2)) +
              kC3 * (pc(3, 0, 0) + pc(-3, 0, 0) + pc(0, 3, 0) + pc(0, -3, 0) +
                     pc(0, 0, 3) + pc(0, 0, -3)) +
              kC4 * (pc(4, 0, 0) + pc(-4, 0, 0) + pc(0, 4, 0) + pc(0, -4, 0) +
                     pc(0, 0, 4) + pc(0, 0, -4));
        },
        ops::arg(lap, ops::S_PT, ops::Acc::W),
        ops::arg(p1, ops::star(4, 3), ops::Acc::R));

    // Leapfrog update: p0 <- 2 p1 - p0 + vel * lap8(p1); then rotate.
    fs.loop(
        {"rtm_update", hw::KernelClass::Interior, kUpdateFlops}, interior,
        [](ops::ACC<float> pp, ops::ACC<float> pc, ops::ACC<float> v,
           ops::ACC<float> l) {
          pp(0, 0, 0) =
              2.0f * pc(0, 0, 0) - pp(0, 0, 0) + v(0, 0, 0) * l(0, 0, 0);
        },
        ops::arg(p0, ops::S_PT, ops::Acc::RW),
        ops::arg(p1, ops::S_PT, ops::Acc::R),
        ops::arg(vel, ops::S_PT, ops::Acc::R),
        ops::arg(lap, ops::S_PT, ops::Acc::R));
    fs.flush();  // args hold Dat pointers - drain before the swap
    std::swap(p0, p1);
  }

  RunSummary rs;
  rs.profiles = std::move(ctx.profiles);
  if (ctx.executing()) {
    double energy = 0.0;
    for (long k = 0; k < nz; ++k)
      for (long j = 0; j < ny; ++j)
        for (long i = 0; i < nx; ++i) {
          const double v = static_cast<double>(p1.at(k, j, i));
          energy += v * v;
        }
    rs.checksum = energy;
  }
  return rs;
}

}  // namespace syclport::apps
