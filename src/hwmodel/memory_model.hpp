#pragma once
/// \file memory_model.hpp
/// Cache-aware memory-traffic model:
///  - a layer-condition stencil model (Stengel et al. style): when the
///    last-level cache cannot hold the 2r+1 planes (or rows) a stencil
///    sweep needs, previously-fetched planes are evicted and re-read,
///    multiplying DRAM read traffic. This is what separates RTM /
///    Acoustic efficiency on the 16 MB MI250X from the 40 MB A100 and
///    the 208 MB Max 1100 (paper §4.1);
///  - an inter-sweep residency model: when a loop's working set fits
///    (partly) in the last-level cache, repeated sweeps hit in cache and
///    the *effective* bandwidth exceeds STREAM - the mechanism behind
///    Genoa-X's 107% CloverLeaf 2D and 135% MG-CFD efficiencies
///    (paper §4.2, §4.3).

#include "hwmodel/loop_profile.hpp"
#include "hwmodel/platform.hpp"

namespace syclport::hw {

/// Multiplier (>= 1) on compulsory read traffic from the stencil layer
/// condition. `cache_shape_factor` scales the *excess* (mult - 1):
/// tuned nd_range shapes improve reuse (< 1), runtime-chosen flat
/// shapes do not (1).
[[nodiscard]] double stencil_read_multiplier(const Platform& hw,
                                             const LoopProfile& lp,
                                             double cache_shape_factor = 1.0);

/// Probability in [0, 1) that a byte of this loop's traffic is served
/// from the last-level cache thanks to inter-sweep reuse.
[[nodiscard]] double llc_hit_probability(const Platform& hw,
                                         const LoopProfile& lp);

/// Time (s) to move `dram_bytes` with hit fraction `hit` served at LLC
/// bandwidth, the rest at `dram_bw_gbs`.
[[nodiscard]] double memory_time_s(const Platform& hw, double bytes,
                                   double hit, double dram_bw_gbs);

/// Multiplier (>= 1) on a kernel's *store* traffic from the
/// write-allocate policy: a cached store to a never-read line costs a
/// read-for-ownership on top of the writeback (2x), avoided by
/// streaming (non-temporal) stores or read-before-write reuse.
/// `write_allocate` describes the platform's policy for plain stores;
/// `streaming_stores` whether the code path emits NT stores.
[[nodiscard]] double store_traffic_factor(bool write_allocate,
                                          bool streaming_stores);

/// Fraction (0, 1] of STREAM bandwidth a bandwidth-bound sweep reaches
/// given how its pages were placed: parallel first-touch reaches the
/// platform's full figure (factor 1), serial touch concentrates every
/// page on one NUMA domain and is throttled to the platform's modeled
/// `numa_penalty` (1 on single-domain parts, where placement cannot
/// hurt).
[[nodiscard]] double first_touch_bandwidth_factor(const Platform& hw,
                                                  bool parallel_first_touch);

}  // namespace syclport::hw
