
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/microbench_kernels.cpp" "bench/CMakeFiles/microbench_kernels.dir/microbench_kernels.cpp.o" "gcc" "bench/CMakeFiles/microbench_kernels.dir/microbench_kernels.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/apps.dir/DependInfo.cmake"
  "/root/repo/build/src/op2/CMakeFiles/op2.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/stream.dir/DependInfo.cmake"
  "/root/repo/build/src/minimpi/CMakeFiles/minimpi.dir/DependInfo.cmake"
  "/root/repo/build/src/sycl/CMakeFiles/minisycl.dir/DependInfo.cmake"
  "/root/repo/build/src/hwmodel/CMakeFiles/hwmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/syclport_core.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/syclport_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
