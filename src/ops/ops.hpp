#pragma once
/// \file ops.hpp
/// Umbrella header for the OPS structured-mesh DSL reproduction.

#include "ops/arg.hpp"            // IWYU pragma: export
#include "ops/block.hpp"          // IWYU pragma: export
#include "ops/checkpoint.hpp"     // IWYU pragma: export
#include "ops/context.hpp"        // IWYU pragma: export
#include "ops/dat.hpp"            // IWYU pragma: export
#include "ops/dataflow.hpp"       // IWYU pragma: export
#include "ops/fusion.hpp"         // IWYU pragma: export
#include "ops/loop_chain.hpp"     // IWYU pragma: export
#include "ops/par_loop.hpp"       // IWYU pragma: export
#include "ops/stencil.hpp"        // IWYU pragma: export
#include "ops/tree_reduction.hpp" // IWYU pragma: export
