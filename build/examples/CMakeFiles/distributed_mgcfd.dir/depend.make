# Empty dependencies file for distributed_mgcfd.
# This may be replaced when dependencies are built.
