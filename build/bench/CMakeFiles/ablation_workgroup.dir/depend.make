# Empty dependencies file for ablation_workgroup.
# This may be replaced when dependencies are built.
