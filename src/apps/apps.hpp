#pragma once
/// \file apps.hpp
/// Umbrella header for the seven benchmark applications and their
/// paper/bench/small problem sizes.

#include "apps/acoustic/acoustic.hpp"        // IWYU pragma: export
#include "apps/cloverleaf/cloverleaf2d.hpp"  // IWYU pragma: export
#include "apps/cloverleaf/cloverleaf3d.hpp"  // IWYU pragma: export
#include "apps/common.hpp"                   // IWYU pragma: export
#include "apps/mgcfd/mgcfd.hpp"              // IWYU pragma: export
#include "apps/opensbli/opensbli.hpp"        // IWYU pragma: export
#include "apps/rtm/rtm.hpp"                  // IWYU pragma: export
