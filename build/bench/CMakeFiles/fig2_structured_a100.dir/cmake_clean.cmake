file(REMOVE_RECURSE
  "CMakeFiles/fig2_structured_a100.dir/fig2_structured_a100.cpp.o"
  "CMakeFiles/fig2_structured_a100.dir/fig2_structured_a100.cpp.o.d"
  "fig2_structured_a100"
  "fig2_structured_a100.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_structured_a100.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
