#pragma once
/// \file sub_group.hpp
/// miniSYCL sub-groups: contiguous chunks of the work-group's local
/// linear space, with the SYCL 2020 shuffle operations. Data exchange
/// is implemented with a per-thread slot buffer synchronised by the
/// work-group barrier, which is stronger than sub-group-only
/// synchronisation; consequently sub-group collectives must be reached
/// by ALL work-items of the group (group-convergent code), a constraint
/// every kernel in this study satisfies.

#include <cstddef>
#include <vector>

#include "runtime/fiber.hpp"
#include "sycl/item.hpp"

namespace sycl {

namespace detail {
/// Per-OS-thread exchange slots (work-groups never span threads).
template <typename T>
std::vector<T>& shuffle_slots(std::size_t n) {
  thread_local std::vector<T> slots;
  if (slots.size() < n) slots.resize(n);
  return slots;
}
}  // namespace detail

class sub_group {
 public:
  sub_group(std::size_t group_lid, std::size_t group_size, std::size_t sg_size)
      : lid_(group_lid % sg_size),
        sg_id_(group_lid / sg_size),
        group_lid_(group_lid),
        group_size_(group_size),
        // The trailing sub-group may be partial.
        size_(std::min(sg_size, group_size - sg_id_ * sg_size)) {}

  [[nodiscard]] std::size_t get_local_linear_id() const { return lid_; }
  [[nodiscard]] std::size_t get_group_linear_id() const { return sg_id_; }
  [[nodiscard]] std::size_t get_local_linear_range() const { return size_; }

  /// Value of `x` held by the sub-group work-item at `remote`; own
  /// value when `remote` is out of range (matching CUDA shfl clamping).
  template <typename T>
  [[nodiscard]] T shuffle(T x, std::size_t remote) const {
    auto& slots = detail::shuffle_slots<T>(group_size_);
    slots[group_lid_] = x;
    syclport::rt::group_barrier();
    T out = x;
    // Slot of `remote` = first slot of this sub-group + remote.
    if (remote < size_) out = slots[group_lid_ - lid_ + remote];
    syclport::rt::group_barrier();
    return out;
  }

  template <typename T>
  [[nodiscard]] T shuffle_down(T x, std::size_t delta) const {
    return shuffle(x, lid_ + delta < size_ ? lid_ + delta : lid_);
  }

  template <typename T>
  [[nodiscard]] T shuffle_up(T x, std::size_t delta) const {
    return shuffle(x, lid_ >= delta ? lid_ - delta : lid_);
  }

  template <typename T>
  [[nodiscard]] T shuffle_xor(T x, std::size_t mask) const {
    const std::size_t remote = lid_ ^ mask;
    return shuffle(x, remote < size_ ? remote : lid_);
  }

 private:
  std::size_t lid_;
  std::size_t sg_id_;
  std::size_t group_lid_;
  std::size_t group_size_;
  std::size_t size_;
};

template <int Dims>
sub_group nd_item<Dims>::get_sub_group() const {
  return sub_group(get_local_linear_id(), get_local_range().size(),
                   sg_size_);
}

}  // namespace sycl
