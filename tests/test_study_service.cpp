// Study-service tests: the multi-tenant daemon contract. Duplicate
// in-flight requests are computed exactly once and every waiter sees
// identical result bytes; thousands of sessions complete with a bounded
// tail and a warm cache-hit rate; injected faults end as typed
// per-session errors with the service still accepting; the persistent
// result cache round-trips through the atomic-rename + CRC path; and
// the tuning cache survives many concurrent writers (the contention
// fix this PR ships).

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "runtime/autotune/cache.hpp"
#include "runtime/fault/fault.hpp"
#include "study/service.hpp"
#include "study/session.hpp"

using namespace syclport;
using namespace syclport::study;

namespace {

namespace fault = rt::fault;

StudyRequest bench_request(AppId a, PlatformId p, const Variant& v) {
  return {a, p, v, StudyRequest::Scale::Bench};
}

const Variant kCuda{Model::CUDA, Toolchain::Native};
const Variant kDpcppNd{Model::SYCLNDRange, Toolchain::DPCPP};
const Variant kOsyclFlat{Model::SYCLFlat, Toolchain::OpenSYCL};

/// A small pool of distinct supported cells for soak mixes.
std::vector<StudyRequest> request_pool() {
  return {
      bench_request(AppId::CloverLeaf2D, PlatformId::A100, kCuda),
      bench_request(AppId::CloverLeaf2D, PlatformId::A100, kDpcppNd),
      bench_request(AppId::CloverLeaf2D, PlatformId::Altra, kOsyclFlat),
      bench_request(AppId::Acoustic, PlatformId::A100, kDpcppNd),
      bench_request(AppId::Acoustic, PlatformId::GenoaX, kDpcppNd),
      bench_request(AppId::RTM, PlatformId::MI250X, kDpcppNd),
  };
}

struct TempFile {
  explicit TempFile(std::string p) : path(std::move(p)) {
    std::remove(path.c_str());
  }
  ~TempFile() { std::remove(path.c_str()); }
  std::string path;
};

}  // namespace

TEST(StudyService, RequestKeyIsContentAddressed) {
  const auto a = bench_request(AppId::RTM, PlatformId::A100, kCuda);
  auto b = a;
  EXPECT_EQ(request_key(a), request_key(b));
  b.platform = PlatformId::MI250X;
  EXPECT_NE(request_key(a), request_key(b));
  b = a;
  b.scale = StudyRequest::Scale::Paper;
  EXPECT_NE(request_key(a), request_key(b));
  // The key carries its own CRC: "text#xxxxxxxx".
  const auto key = request_key(a);
  EXPECT_NE(key.find('#'), std::string::npos);
}

TEST(StudyService, ResultBlobRoundTripsAndRejectsTampering) {
  ExperimentResult r;
  r.status = Status::Ok;
  r.runtime_s = 1.25;
  r.eff_bw_gbs = 987.0;
  r.efficiency = 0.82;
  auto bytes = encode_result(r);
  const auto back = decode_result(bytes.data(), bytes.size());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->status, Status::Ok);
  EXPECT_DOUBLE_EQ(back->runtime_s, 1.25);
  EXPECT_DOUBLE_EQ(back->efficiency, 0.82);

  bytes[10] ^= 0x40;  // flip one payload bit: the CRC trailer must catch it
  EXPECT_FALSE(decode_result(bytes.data(), bytes.size()).has_value());
  bytes[10] ^= 0x40;
  EXPECT_FALSE(decode_result(bytes.data(), bytes.size() - 1).has_value());
}

TEST(StudyService, DuplicatesComputedOnceWithIdenticalBytes) {
  Service svc({/*cache_path=*/"", /*max_batch=*/256, /*spin_us=*/10});
  // Hold admission so every duplicate lands in one drain round - the
  // deterministic coalescing path, not a cache-hit race.
  svc.pause_admission();
  const auto q = bench_request(AppId::Acoustic, PlatformId::A100, kDpcppNd);
  constexpr int kWaiters = 32;
  std::vector<std::shared_ptr<Ticket>> tickets;
  for (int i = 0; i < kWaiters; ++i) tickets.push_back(svc.submit(q));
  svc.resume_admission();

  std::set<const ResultBlob*> blobs;
  int coalesced = 0;
  for (auto& t : tickets) {
    const ResultBlob& blob = t->wait();
    EXPECT_EQ(blob.result.status, Status::Ok);
    blobs.insert(&blob);
    coalesced += t->coalesced() ? 1 : 0;
  }
  // One compute, one shared blob: "identical bytes" holds structurally.
  EXPECT_EQ(blobs.size(), 1u);
  EXPECT_EQ(coalesced, kWaiters - 1);

  const auto s = svc.stats();
  EXPECT_EQ(s.completed, static_cast<std::uint64_t>(kWaiters));
  EXPECT_EQ(s.computed, 1u);
  EXPECT_EQ(s.coalesced, static_cast<std::uint64_t>(kWaiters - 1));
  EXPECT_EQ(s.errors, 0u);

  // The same request again is now a warm hit served at submit time.
  auto warm = svc.submit(q);
  const ResultBlob& blob = warm->wait();
  EXPECT_TRUE(warm->cache_hit());
  EXPECT_EQ(blob.bytes, (*blobs.begin())->bytes);
}

TEST(StudyService, SoakThousandsOfSessionsBoundedTail) {
  Service svc({/*cache_path=*/"", /*max_batch=*/256, /*spin_us=*/10});
  const auto pool = request_pool();
  // Pre-warm every distinct cell so the soak measures the steady state
  // the service is built for: cache hits + occasional coalescing.
  {
    Session warm(svc, "warm");
    for (const auto& q : pool) (void)warm.query(q);
  }

  constexpr std::size_t kThreads = 16;
  constexpr std::size_t kSessionsPerThread = 64;  // 1024 sessions total
  constexpr std::size_t kRequestsPerSession = 4;
  std::atomic<std::uint64_t> replies{0};
  std::atomic<std::uint64_t> errors{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      for (std::size_t sidx = 0; sidx < kSessionsPerThread; ++sidx) {
        Session session(svc, "soak");
        std::vector<std::size_t> handles;
        for (std::size_t i = 0; i < kRequestsPerSession; ++i)
          handles.push_back(
              session.submit(pool[(t * 31 + sidx * 7 + i) % pool.size()]));
        for (std::size_t h : handles) {
          try {
            const auto reply = session.finish(h);
            EXPECT_TRUE(reply.result.ok());
            EXPECT_FALSE(reply.bytes.empty());
            replies.fetch_add(1, std::memory_order_relaxed);
          } catch (const service_error&) {
            errors.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  for (auto& th : threads) th.join();

  constexpr std::uint64_t kTotal =
      kThreads * kSessionsPerThread * kRequestsPerSession;
  EXPECT_EQ(replies.load(), kTotal);
  EXPECT_EQ(errors.load(), 0u);

  const auto s = svc.stats();
  EXPECT_EQ(s.completed, kTotal + pool.size());  // soak + the warm pass
  // Warm steady state: nearly everything is a cache hit, nothing is
  // recomputed.
  EXPECT_GT(s.cache_hit_rate(), 0.9);
  EXPECT_LE(s.computed, pool.size());
  EXPECT_GT(s.dedup_ratio(), 0.9);
  // Bounded tail: the percentile estimator must see every completion,
  // and the p99 of a warm soak stays within an (intentionally generous,
  // TSan-tolerant) envelope.
  EXPECT_GT(s.p50_ms, 0.0);
  EXPECT_GE(s.p99_ms, s.p50_ms);
  EXPECT_LT(s.p99_ms, 5000.0);
}

TEST(StudyService, FaultsBecomeTypedErrorsAndServiceKeepsServing) {
  // Fire the first three occurrences of svc.fail deterministically.
  ASSERT_TRUE(fault::configure("17:svc.fail=1.0x3"));
  Service svc({/*cache_path=*/"", /*max_batch=*/256, /*spin_us=*/10});
  Session session(svc, "faulty");

  const auto pool = request_pool();
  int faulted = 0, ok = 0;
  for (const auto& q : pool) {
    try {
      const auto reply = session.query(q);
      EXPECT_TRUE(reply.result.ok());
      ok += 1;
    } catch (const service_error& e) {
      EXPECT_EQ(e.kind, RequestError::Faulted);
      faulted += 1;
    }
  }
  EXPECT_EQ(faulted, 3);
  EXPECT_EQ(ok, static_cast<int>(pool.size()) - 3);
  fault::clear();

  // Errors were never cached: the faulted cells compute fine now, and
  // the service is still accepting (no wedged queue).
  for (const auto& q : pool) {
    const auto reply = session.query(q);
    EXPECT_TRUE(reply.result.ok());
  }
  const auto s = svc.stats();
  EXPECT_EQ(s.errors, 3u);
  EXPECT_EQ(session.stats().errors, 3u);
  svc.shutdown();

  // Post-shutdown submissions fail typed, not silently.
  EXPECT_THROW((void)svc.submit(pool[0])->wait(), service_error);
}

TEST(StudyService, PersistentCacheRoundTrip) {
  TempFile file("service_cache_test.json");
  const auto q0 = bench_request(AppId::CloverLeaf2D, PlatformId::A100, kCuda);
  const auto q1 = bench_request(AppId::RTM, PlatformId::MI250X, kDpcppNd);

  std::vector<unsigned char> bytes0;
  {
    Service svc({file.path, 256, 10});
    Session session(svc, "writer");
    const auto r = session.query(q0);
    bytes0.assign(r.bytes.begin(), r.bytes.end());
    (void)session.query(q1);
    svc.shutdown();  // persists the cache image
  }
  {
    Service svc({file.path, 256, 10});
    Session session(svc, "reader");
    const auto r = session.query(q0);
    EXPECT_TRUE(r.cache_hit);
    EXPECT_EQ(std::vector<unsigned char>(r.bytes.begin(), r.bytes.end()),
              bytes0);
    const auto s = svc.stats();
    EXPECT_EQ(s.computed, 0u);
    EXPECT_EQ(s.persistent_hits, 1u);
  }
  // A truncated image is rejected wholesale: cold start, no crash.
  {
    FILE* f = std::fopen(file.path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, 0, SEEK_END), 0);
    const long size = std::ftell(f);
    ASSERT_EQ(ftruncate(fileno(f), size / 2), 0);
    std::fclose(f);
    Service svc({file.path, 256, 10});
    Session session(svc, "coldstart");
    const auto r = session.query(q0);
    EXPECT_FALSE(r.cache_hit);
    EXPECT_TRUE(r.result.ok());
  }
}

TEST(StudyService, TuneCacheSurvivesManyConcurrentWriters) {
  namespace at = rt::autotune;
  TempFile file("tune_cache_stress.json");

  constexpr std::size_t kWriters = 16;
  constexpr std::size_t kRoundsPerWriter = 20;
  std::vector<std::thread> writers;
  for (std::size_t w = 0; w < kWriters; ++w)
    writers.emplace_back([&, w] {
      for (std::size_t round = 0; round < kRoundsPerWriter; ++round) {
        at::CacheData data;
        data.fingerprint = "stress-machine";
        at::CacheData::Entry e;
        e.key = "kernel_" + std::to_string(w);
        e.config.grain = round + 1;
        data.entries.push_back(e);
        // Unique temp + rename + merge-on-load: every published image
        // must be complete and internally consistent, whatever the
        // interleaving.
        EXPECT_TRUE(at::write_cache_merged(file.path, data));
      }
    });
  for (auto& th : writers) th.join();

  const auto final_image = at::read_cache(file.path);
  ASSERT_TRUE(final_image.has_value()) << "torn or corrupt cache image";
  EXPECT_EQ(final_image->fingerprint, "stress-machine");
  std::set<std::string> keys;
  for (const auto& e : final_image->entries) {
    EXPECT_EQ(e.key.rfind("kernel_", 0), 0u);
    keys.insert(e.key);
  }
  EXPECT_EQ(keys.size(), final_image->entries.size()) << "duplicate keys";
  // The last writer to publish merged the file it saw, so its own key
  // is certainly present; merge-on-load keeps the union growing toward
  // all writers (every writer's final round re-merges what survived).
  EXPECT_GE(keys.size(), 1u);

  // One more merged write from this thread must preserve whatever
  // survived the stress *and* its own entry.
  at::CacheData data;
  data.fingerprint = "stress-machine";
  data.entries.push_back({"kernel_final", at::Config{}, ""});
  EXPECT_TRUE(at::write_cache_merged(file.path, data));
  const auto merged = at::read_cache(file.path);
  ASSERT_TRUE(merged.has_value());
  EXPECT_EQ(merged->entries.size(), keys.size() + 1);
}

TEST(StudyService, SessionArenaOwnsReplyBytes) {
  Service svc({/*cache_path=*/"", /*max_batch=*/256, /*spin_us=*/10});
  const auto q = bench_request(AppId::Acoustic, PlatformId::A100, kDpcppNd);
  Session session(svc, "arena");
  const auto a = session.query(q);
  const auto b = session.query(q);
  // Two replies, two arena copies: same bytes, distinct storage.
  ASSERT_EQ(a.bytes.size(), b.bytes.size());
  EXPECT_NE(a.bytes.data(), b.bytes.data());
  EXPECT_TRUE(std::equal(a.bytes.begin(), a.bytes.end(), b.bytes.begin()));
  EXPECT_EQ(session.stats().arena_blocks, 2u);
  EXPECT_EQ(session.stats().arena_bytes, a.bytes.size() + b.bytes.size());
  EXPECT_TRUE(b.cache_hit);
}

TEST(StudyService, DegradedModeRetriesThenServesStaleFlaggedResult) {
  // One retry, then the stale fallback (docs/service.md degraded mode).
  Service svc({/*cache_path=*/"", /*max_batch=*/256, /*spin_us=*/10,
               /*compute_retries=*/1, /*retry_backoff_us=*/1});
  Session session(svc, "degraded");
  const auto q = bench_request(AppId::CloverLeaf2D, PlatformId::A100, kCuda);

  // Warm fill: a clean compute lands the key in the result cache.
  const auto warm = session.query(q);
  EXPECT_TRUE(warm.result.ok());
  EXPECT_FALSE(warm.stale);

  // Fault every compute (the cap outlasts the retry budget) and force a
  // recompute of the warm key: the service must serve the last good
  // result flagged stale, not a service_error.
  ASSERT_TRUE(fault::configure("23:svc.fail=1.0x8"));
  auto refresh = q;
  refresh.refresh = true;
  const auto reply = session.query(refresh);
  fault::clear();
  EXPECT_TRUE(reply.result.ok());
  EXPECT_TRUE(reply.stale);
  ASSERT_EQ(reply.bytes.size(), warm.bytes.size());
  EXPECT_EQ(std::memcmp(reply.bytes.data(), warm.bytes.data(),
                        warm.bytes.size()),
            0);  // byte-identical to the pre-fault result
  const auto s = svc.stats();
  EXPECT_GE(s.retries, 1u);
  EXPECT_EQ(s.stale_served, 1u);
  EXPECT_EQ(session.stats().stale, 1u);

  // The fault cleared: a refresh recomputes, the stale flag drops, and
  // the cache entry is overwritten with the fresh bytes.
  auto again = q;
  again.refresh = true;
  const auto fresh = session.query(again);
  EXPECT_TRUE(fresh.result.ok());
  EXPECT_FALSE(fresh.stale);

  // A cold faulted key (nothing cached) still surfaces the typed error.
  ASSERT_TRUE(fault::configure("23:svc.fail=1.0x8"));
  const auto cold = bench_request(AppId::RTM, PlatformId::MI250X, kDpcppNd);
  EXPECT_THROW((void)session.query(cold), service_error);
  fault::clear();
  svc.shutdown();
}
