#pragma once
/// \file dist.hpp
/// Distributed OP2 over mini-MPI: the full owner-compute pipeline of
/// the paper's §3 for unstructured meshes - partition the nodes (RCB,
/// the PT-Scotch substitute), localize the mesh per rank (owned nodes,
/// imported halo nodes, owned edges), import halo values before reads,
/// and export-add halo increments back to their owners after indirect
/// INC loops. Compute itself reuses the shared-memory op2::par_loop on
/// the rank-local sets, so kernels are written once.

#include <array>
#include <span>
#include <unordered_map>
#include <vector>

#include "minimpi/comm.hpp"
#include "op2/op2.hpp"
#include "sycl/queue.hpp"

namespace syclport::op2::dist {

/// Per-rank localization of a global edges->nodes mesh. Collective:
/// every rank constructs it from the same global mesh (deterministic
/// RCB makes the partition identical everywhere); the import/export
/// index lists are then negotiated over the communicator.
class DistMesh {
 public:
  DistMesh(mpi::Comm& comm, const Map& global_e2n,
           std::span<const std::array<double, 3>> coords);

  [[nodiscard]] mpi::Comm& comm() const { return *comm_; }
  [[nodiscard]] int rank() const { return comm_->rank(); }
  [[nodiscard]] int nparts() const { return comm_->size(); }

  /// Rank-local sets/map: nodes = owned then halo; edges = owned only.
  [[nodiscard]] Set& nodes() { return *local_nodes_; }
  [[nodiscard]] Set& edges() { return *local_edges_; }
  [[nodiscard]] Map& e2n() { return *local_e2n_; }

  [[nodiscard]] std::size_t n_owned_nodes() const { return n_owned_; }
  [[nodiscard]] std::size_t n_halo_nodes() const {
    return local_nodes_->size() - n_owned_;
  }

  /// Global ids: owned node i -> owned_node_gid()[i]; local halo slot
  /// h -> halo_node_gid()[h]; owned edge e -> owned_edge_gid()[e].
  [[nodiscard]] const std::vector<int>& owned_node_gid() const {
    return owned_nodes_;
  }
  [[nodiscard]] const std::vector<int>& halo_node_gid() const {
    return halo_nodes_;
  }
  [[nodiscard]] const std::vector<int>& owned_edge_gid() const {
    return owned_edges_;
  }

  /// Communication lists (per peer rank): owned local node indices this
  /// rank sends on import (= the peer's halo), and halo-region local
  /// indices it receives into.
  [[nodiscard]] const std::vector<std::vector<int>>& send_idx() const {
    return send_idx_;
  }
  [[nodiscard]] const std::vector<std::vector<int>>& recv_idx() const {
    return recv_idx_;
  }

  /// Owned edges split by halo dependence: interior edges touch owned
  /// nodes only, boundary edges read at least one imported halo node.
  /// Together they partition [0, edges().size()).
  [[nodiscard]] const std::vector<int>& interior_edges() const {
    return interior_edges_;
  }
  [[nodiscard]] const std::vector<int>& boundary_edges() const {
    return boundary_edges_;
  }

  /// Rank-local out-of-order queue; par_loop_overlap submits the
  /// interior sweep through it, overlapped with the halo import.
  [[nodiscard]] sycl::queue& queue() { return queue_; }

 private:
  mpi::Comm* comm_;
  std::size_t n_owned_ = 0;
  std::vector<int> owned_nodes_;
  std::vector<int> halo_nodes_;
  std::vector<int> owned_edges_;
  std::vector<int> interior_edges_;
  std::vector<int> boundary_edges_;
  std::unique_ptr<Set> local_nodes_;
  std::unique_ptr<Set> local_edges_;
  std::unique_ptr<Map> local_e2n_;
  std::vector<std::vector<int>> send_idx_;
  std::vector<std::vector<int>> recv_idx_;
  sycl::queue queue_;
};

/// A node dat distributed with the mesh: values for owned + halo nodes.
/// Wraps an op2::Dat on the local node set so existing par_loops work.
template <typename T>
class DistNodeDat {
 public:
  DistNodeDat(DistMesh& mesh, int dim, std::string name)
      : mesh_(&mesh), dat_(mesh.nodes(), dim, std::move(name)) {}

  [[nodiscard]] Dat<T>& dat() { return dat_; }
  [[nodiscard]] int dim() const { return dat_.dim(); }

  /// Initialize owned entries from global node ids.
  template <typename Fn>
  void init_owned(Fn&& value_of /* (global_id, comp) -> T */) {
    for (std::size_t i = 0; i < mesh_->n_owned_nodes(); ++i)
      for (int c = 0; c < dat_.dim(); ++c)
        dat_.at(i, c) = value_of(mesh_->owned_node_gid()[i], c);
  }

  /// Fetch current owner values into the halo region (collective).
  void import_halo() {
    import_halo_begin();
    import_halo_finish();
  }

  /// Overlap form of import_halo: begin posts the (buffered) sends of
  /// this rank's owned boundary values; finish blocks on the receives
  /// and writes the halo slots. Between the two, owned-node values may
  /// be read freely and halo slots must not be touched - which is what
  /// lets interior-edge sweeps run concurrently with the import.
  void import_halo_begin() { exchange_begin(/*reverse=*/false); }
  void import_halo_finish() { exchange_finish(/*reverse=*/false); }

  /// Send halo-region contributions back to their owners, add them
  /// there, and zero the halo region (collective). The INC-completion
  /// step of owner-compute execution.
  void export_add() {
    exchange_begin(/*reverse=*/true);
    exchange_finish(/*reverse=*/true);
  }

  /// Sum over owned entries, reduced across ranks (collective).
  [[nodiscard]] double global_sum() {
    double local = 0.0;
    for (std::size_t i = 0; i < mesh_->n_owned_nodes(); ++i)
      for (int c = 0; c < dat_.dim(); ++c)
        local += static_cast<double>(dat_.at(i, c));
    return mesh_->comm().allreduce(local, mpi::Op::Sum);
  }

 private:
  void exchange_begin(bool reverse) {
    auto& comm = mesh_->comm();
    const int me = mesh_->rank();
    const int dim = dat_.dim();
    const auto& sends = reverse ? mesh_->recv_idx() : mesh_->send_idx();
    for (int peer = 0; peer < mesh_->nparts(); ++peer) {
      if (peer == me) continue;
      const auto& out_idx = sends[static_cast<std::size_t>(peer)];
      if (!out_idx.empty()) {
        std::vector<T> payload;
        payload.reserve(out_idx.size() * static_cast<std::size_t>(dim));
        for (int li : out_idx)
          for (int c = 0; c < dim; ++c)
            payload.push_back(dat_.at(static_cast<std::size_t>(li), c));
        comm.send(peer, /*tag=*/reverse ? 71 : 70,
                  std::span<const T>(payload));
      }
    }
  }

  void exchange_finish(bool reverse) {
    auto& comm = mesh_->comm();
    const int me = mesh_->rank();
    const int dim = dat_.dim();
    const auto& recvs = reverse ? mesh_->send_idx() : mesh_->recv_idx();
    for (int peer = 0; peer < mesh_->nparts(); ++peer) {
      if (peer == me) continue;
      const auto& in_idx = recvs[static_cast<std::size_t>(peer)];
      if (in_idx.empty()) continue;
      std::vector<T> payload(in_idx.size() * static_cast<std::size_t>(dim));
      comm.recv(peer, /*tag=*/reverse ? 71 : 70, std::span<T>(payload));
      std::size_t k = 0;
      for (int li : in_idx)
        for (int c = 0; c < dim; ++c, ++k) {
          if (reverse) {
            dat_.at(static_cast<std::size_t>(li), c) += payload[k];
          } else {
            dat_.at(static_cast<std::size_t>(li), c) = payload[k];
          }
        }
    }
    if (reverse) {
      // Halo contributions are consumed; reset for the next loop.
      for (std::size_t i = mesh_->n_owned_nodes(); i < mesh_->nodes().size();
           ++i)
        for (int c = 0; c < dim; ++c) dat_.at(i, c) = T{};
    }
  }

  DistMesh* mesh_;
  Dat<T> dat_;
};

/// An edge dat distributed with the mesh (owned edges only).
template <typename T>
class DistEdgeDat {
 public:
  DistEdgeDat(DistMesh& mesh, int dim, std::string name)
      : mesh_(&mesh), dat_(mesh.edges(), dim, std::move(name)) {}

  [[nodiscard]] Dat<T>& dat() { return dat_; }

  /// Initialize from global edge ids.
  template <typename Fn>
  void init(Fn&& value_of /* (global_edge_id, comp) -> T */) {
    for (std::size_t e = 0; e < mesh_->edges().size(); ++e)
      for (int c = 0; c < dat_.dim(); ++c)
        dat_.at(e, c) = value_of(mesh_->owned_edge_gid()[e], c);
  }

 private:
  DistMesh* mesh_;
  Dat<T> dat_;
};

namespace detail {

[[nodiscard]] inline sycl::access_mode to_mode(Acc a) {
  switch (a) {
    case Acc::R: return sycl::access_mode::read;
    // OP2 W args are not read before written: discard_write (conflicts
    // exactly like write, additionally marks a pure write stream).
    case Acc::W: return sycl::access_mode::discard_write;
    default: return sycl::access_mode::read_write;  // RW, INC
  }
}

/// Declare one par_loop argument's storage in a command group's
/// footprint, so interior commands of different ranks (distinct
/// rank-local dats) stay independent in the scheduler's DAG. The base
/// address is an identity token only, so storage() is used - valid for
/// every physical layout (elem() asserts AoS).
template <typename T>
inline void declare_arg(sycl::handler& h, const DirectArg<T>& a) {
  h.require(static_cast<const void*>(a.dat->storage()), to_mode(a.acc));
}
template <typename T>
inline void declare_arg(sycl::handler& h, const IndirectArg<T>& a) {
  h.require(static_cast<const void*>(a.dat->storage()), to_mode(a.acc));
}
template <typename T>
inline void declare_arg(sycl::handler& h, const op2::detail::IncArg<T>& a) {
  h.require(static_cast<const void*>(a.dat->storage()),
            sycl::access_mode::read_write);
}
template <typename T>
inline void declare_arg(sycl::handler& h, const GblArg<T>& a) {
  h.require(static_cast<const void*>(a.target), sycl::access_mode::read_write);
}

}  // namespace detail

/// Owner-compute par_loop over the mesh's owned edges with
/// halo/compute overlap:
///   1. post `imported`'s halo sends,
///   2. submit the interior-edge sweep (edges touching no halo node)
///      as an asynchronous command on the mesh's out-of-order queue,
///   3. drain the halo receives on the rank thread while it runs,
///   4. join the interior command, then sweep the boundary edges.
/// Equivalent to `imported.import_halo(); par_loop(ctx, meta,
/// mesh.edges(), kernel, args...)` up to the order in which element
/// contributions combine (INC targets, global reductions). `imported`
/// must be the dat (or one of the dats) the kernel reads through the
/// halo; additional dats that need importing must be imported before
/// the call. No LoopProfile is recorded for the split sweeps.
template <typename T, typename K, typename... Args>
void par_loop_overlap(op2::Context& ctx, Meta meta, DistMesh& mesh,
                      DistNodeDat<T>& imported, K kernel, Args... args) {
  imported.import_halo_begin();
  if (sycl::detail::Scheduler::concurrency_available()) {
    op2::Context* ctxp = &ctx;
    DistMesh* meshp = &mesh;
    sycl::event ev = mesh.queue().submit([&](sycl::handler& h) {
      (detail::declare_arg(h, args), ...);
      h.single_task([ctxp, meta, meshp, kernel, args...]() {
        op2::par_loop_subset(*ctxp, meta, meshp->edges(),
                             std::span<const int>(meshp->interior_edges()),
                             kernel, args...);
      });
    });
    imported.import_halo_finish();
    ev.wait();
  } else {
    // Single hardware thread: keep the overlap ordering (sends posted
    // before the interior sweep) but skip the worker handoff.
    op2::par_loop_subset(ctx, meta, mesh.edges(),
                         std::span<const int>(mesh.interior_edges()), kernel,
                         args...);
    imported.import_halo_finish();
  }
  op2::par_loop_subset(ctx, meta, mesh.edges(),
                       std::span<const int>(mesh.boundary_edges()), kernel,
                       args...);
}

}  // namespace syclport::op2::dist
