#include "minimpi/comm.hpp"

#include <algorithm>
#include <thread>

namespace syclport::mpi {

void Comm::send_bytes(int dest, int tag, std::span<const std::byte> data) {
  if (dest < 0 || dest >= size())
    throw std::out_of_range("mini-MPI send: bad destination rank");
  auto& w = *world_;
  {
    std::lock_guard lock(w.mu);
    w.mailboxes[static_cast<std::size_t>(dest)].push_back(
        detail::Message{rank_, tag, {data.begin(), data.end()}});
  }
  w.cv.notify_all();
}

void Comm::recv_bytes(int src, int tag, std::span<std::byte> out) {
  if (src < 0 || src >= size())
    throw std::out_of_range("mini-MPI recv: bad source rank");
  auto& w = *world_;
  std::unique_lock lock(w.mu);
  auto& box = w.mailboxes[static_cast<std::size_t>(rank_)];
  for (;;) {
    auto it = std::find_if(box.begin(), box.end(), [&](const auto& m) {
      return m.src == src && m.tag == tag;
    });
    if (it != box.end()) {
      if (it->payload.size() != out.size())
        throw std::length_error("mini-MPI recv: size mismatch");
      std::copy(it->payload.begin(), it->payload.end(), out.begin());
      box.erase(it);
      return;
    }
    w.cv.wait(lock);
  }
}

void Comm::barrier() {
  auto& w = *world_;
  std::unique_lock lock(w.mu);
  const std::uint64_t gen = w.barrier_generation;
  if (++w.barrier_count == w.size) {
    w.barrier_count = 0;
    ++w.barrier_generation;
    w.cv.notify_all();
  } else {
    w.cv.wait(lock, [&] { return w.barrier_generation != gen; });
  }
}

void Comm::allgather_impl(const void* local, std::size_t bytes, void* out) {
  auto& w = *world_;
  {
    std::lock_guard lock(w.mu);
    if (w.gather_slots.size() != static_cast<std::size_t>(w.size))
      w.gather_slots.resize(static_cast<std::size_t>(w.size));
    const auto* p = static_cast<const std::byte*>(local);
    w.gather_slots[static_cast<std::size_t>(rank_)].assign(p, p + bytes);
  }
  barrier();  // every slot written
  {
    std::lock_guard lock(w.mu);
    auto* o = static_cast<std::byte*>(out);
    for (int r = 0; r < w.size; ++r) {
      const auto& slot = w.gather_slots[static_cast<std::size_t>(r)];
      if (slot.size() != bytes)
        throw std::length_error("mini-MPI allgather: size mismatch");
      std::copy(slot.begin(), slot.end(), o + static_cast<std::size_t>(r) * bytes);
    }
  }
  barrier();  // every slot read; safe to reuse
}

void run(int nranks, const std::function<void(Comm&)>& rank_fn) {
  if (nranks < 1) throw std::invalid_argument("mini-MPI run: nranks < 1");
  auto world = std::make_shared<detail::World>(nranks);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks));
  std::mutex err_mu;
  std::exception_ptr first_error;
  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&, r] {
      Comm comm(world, r);
      try {
        rank_fn(comm);
      } catch (...) {
        std::lock_guard lock(err_mu);
        if (!first_error) first_error = std::current_exception();
        // Wake any rank blocked on a message that will never arrive.
        world->cv.notify_all();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace syclport::mpi
