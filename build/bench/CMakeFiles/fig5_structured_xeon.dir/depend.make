# Empty dependencies file for fig5_structured_xeon.
# This may be replaced when dependencies are built.
