#pragma once
/// \file loop_chain.hpp
/// Lazy execution with overlapped temporal tiling - the OPS
/// "loop-chaining / tiling" optimization (Reguly et al., the lever
/// behind the fusion headroom that bench/ablation_fusion quantifies).
///
/// Loops are enqueued instead of executed; execute(tile) then runs the
/// whole chain tile-by-tile along the slowest dimension. Tile k of
/// loop i is expanded by the summed slow-dimension radii of the loops
/// after i (ghost-zone / overlapped tiling), so every value a later
/// loop reads inside the tile was produced in the same tile - at the
/// cost of redundant compute on the overlaps. Intermediate arrays then
/// stay cache-resident across the chain instead of making DRAM round
/// trips.
///
/// Restrictions (checked): full-interior ranges, and written dats must
/// be written out-of-place (Acc::W) - overlap recomputation would
/// corrupt in-place (RW) updates.

#include <functional>
#include <optional>
#include <stdexcept>
#include <vector>

#include "ops/par_loop.hpp"

namespace syclport::ops {

class LoopChain {
 public:
  LoopChain(Context& ctx, Block& block) : ctx_(&ctx), block_(&block) {}

  /// Queue one loop. Kernel + args are captured by value; execution is
  /// deferred to execute(). Ranges are implicitly Range::all(block).
  template <typename K, typename... Args>
  void enqueue(Meta meta, K kernel, Args... args) {
    (check_arg(args), ...);
    Queued q;
    q.radius_slow = slow_radius(args...);
    (collect_deps(q, args), ...);
    // Anti-dependence check: overlapped tiles of an *earlier* loop
    // re-read rows a *later* loop may already have overwritten in the
    // previous tile. Such chains cannot be overlap-tiled.
    for (const Queued& prev : queued_)
      for (const void* w : q.writes)
        for (const void* r : prev.reads)
          if (w == r)
            throw std::invalid_argument(
                "LoopChain: write-after-read across the chain (loop "
                "writes a dat an earlier loop reads); split the chain");
    Context* ctx = ctx_;
    Block* block = block_;
    q.run = [ctx, block, meta, kernel, args...](long lo, long hi) {
      Range r = Range::all(*block);
      r.lo[0] = std::max(r.lo[0], lo);
      r.hi[0] = std::min(r.hi[0], hi);
      // Execute directly without re-recording: profile-wise a tiled
      // chain is one logical schedule, not tiles x loops entries.
      const bool rec = ctx->opt.record;
      ctx->opt.record = false;
      par_loop(*ctx, meta, *block, r, kernel, args...);
      ctx->opt.record = rec;
    };
    queued_.push_back(std::move(q));
  }

  /// Number of queued loops.
  [[nodiscard]] std::size_t size() const { return queued_.size(); }

  /// Run the chain tile-by-tile along the slowest dimension with
  /// `tile` points per tile; then clear the queue. tile == 0 executes
  /// untiled (each loop as one full sweep), the reference schedule.
  /// With no explicit tile (nullopt) and tuning enabled, the autotuner
  /// picks the depth for this chain's site (kTile axis) and learns from
  /// the chain's wall time; otherwise nullopt behaves like 0.
  void execute(std::optional<std::size_t> tile_opt = std::nullopt) {
    const long extent = static_cast<long>(block_->size(0));
    std::optional<rt::autotune::TunedLaunchParams> tuned;
    std::size_t tile = tile_opt.value_or(0);
    if (!tile_opt) {
      hw::seed_autotuner_priors();
      rt::autotune::ScopedTune tune_override(ctx_->opt.tune);
      if (rt::autotune::current_phase() == rt::autotune::Phase::None &&
          rt::autotune::Autotuner::instance().enabled()) {
        rt::autotune::Site site;
        site.name = "(loop_chain)";
        site.dims = block_->dims();
        for (int d = 0; d < site.dims; ++d)
          site.global[static_cast<std::size_t>(d)] = block_->size(d);
        // Tile depth plus the mem subsystem's first-touch mode: the
        // chain scope is the one tuned region that allocates inside
        // itself (tile temporaries, lazily materialized buffers), so
        // racing parallel vs serial placement here is meaningful.
        site.axes = rt::autotune::kTile | rt::autotune::kFirstTouch;
        tuned.emplace(site);  // scope spans the whole chain execution
        if (tuned->phase() != rt::autotune::Phase::None &&
            tuned->config().tile)
          tile = *tuned->config().tile;
      }
    }
    if (tile == 0 || static_cast<long>(tile) >= extent) {
      for (auto& q : queued_) q.run(0, extent);
      queued_.clear();
      return;
    }
    // Suffix radii: expansion needed by everything after loop i.
    const std::size_t n = queued_.size();
    std::vector<long> expand(n, 0);
    for (std::size_t i = n; i-- > 1;)
      expand[i - 1] = expand[i] + queued_[i].radius_slow;

    for (long t0 = 0; t0 < extent; t0 += static_cast<long>(tile)) {
      const long t1 = std::min(extent, t0 + static_cast<long>(tile));
      for (std::size_t i = 0; i < n; ++i)
        queued_[i].run(t0 - expand[i], t1 + expand[i]);
    }
    queued_.clear();
  }

 private:
  struct Queued {
    int radius_slow = 0;
    std::vector<const void*> reads;
    std::vector<const void*> writes;
    std::function<void(long, long)> run;
  };

  template <typename T>
  static void collect_deps(Queued& q, const DatArg<T>& a) {
    if (a.acc == Acc::R) q.reads.push_back(a.dat);
    if (a.acc == Acc::W) q.writes.push_back(a.dat);
  }
  template <typename T>
  static void collect_deps(Queued&, const RedArg<T>&) {}

  template <typename T>
  void check_arg(const DatArg<T>& a) const {
    if (a.dat->block().dims() < 2)
      throw std::invalid_argument("LoopChain: needs >= 2D blocks");
    if (a.acc == Acc::RW)
      throw std::invalid_argument(
          "LoopChain: in-place (RW) dats cannot be tiled with overlap");
  }
  template <typename T>
  void check_arg(const RedArg<T>&) const {
    throw std::invalid_argument(
        "LoopChain: reductions break tile independence; run them "
        "outside the chain");
  }

  /// Slow-dimension read radius of this loop (max over read args).
  template <typename... Args>
  static int slow_radius(const Args&... args) {
    int r = 0;
    auto one = [&r](const auto& a) {
      if constexpr (requires { a.st; }) {
        if (a.acc == Acc::R) {
          // Slowest dim: radius_z in 3D, radius_y in 2D.
          r = std::max(r, a.dat->block().dims() == 3 ? a.st.radius_z
                                                     : a.st.radius_y);
        }
      }
    };
    (one(args), ...);
    return r;
  }

  Context* ctx_;
  Block* block_;
  std::vector<Queued> queued_;
};

}  // namespace syclport::ops
