#include "minimpi/comm.hpp"

#include <algorithm>
#include <thread>
#include <tuple>

#include "core/crc32.hpp"
#include "runtime/env.hpp"
#include "runtime/fault/fault.hpp"

namespace syclport::mpi {

namespace {

namespace fault = rt::fault;

/// Pack a point-to-point channel identity into the 64-bit stream id the
/// fault layer keys its deterministic draws on. Ranks are in-process
/// thread indices (far below 2^16); tags are small positive ints.
[[nodiscard]] std::uint64_t channel_key(int src, int dst, int tag) noexcept {
  return (static_cast<std::uint64_t>(static_cast<std::uint16_t>(src)) << 48) |
         (static_cast<std::uint64_t>(static_cast<std::uint16_t>(dst)) << 32) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(tag));
}

/// Per-attempt receive timeout and retry budget of the armed transport.
/// Read per receive (armed path only), so tests can vary them.
[[nodiscard]] std::chrono::milliseconds recv_timeout() {
  const auto v = rt::env::get_long("SYCLPORT_COMM_TIMEOUT_MS", 1, 600'000);
  return std::chrono::milliseconds(v.value_or(200));
}

[[nodiscard]] int recv_retries() {
  const auto v = rt::env::get_long("SYCLPORT_COMM_RETRIES", 0, 1000);
  return static_cast<int>(v.value_or(4));
}

/// Heartbeat cadence (SYCLPORT_HEARTBEAT_MS). 0 = monitoring off.
/// Zero/negative cadences are rejected through the warn-once path, not
/// silently accepted as "off with no diagnostics".
[[nodiscard]] std::chrono::milliseconds heartbeat_interval() {
  const auto v = rt::env::get_long("SYCLPORT_HEARTBEAT_MS", 1, 60'000);
  return std::chrono::milliseconds(v.value_or(0));
}

[[nodiscard]] std::uint64_t steady_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Move every delayed message whose release time has passed into its
/// destination mailbox. Caller holds w.mu; returns true if any message
/// became deliverable.
bool flush_delayed_locked(detail::World& w,
                          std::chrono::steady_clock::time_point now) {
  bool moved = false;
  std::erase_if(w.delayed, [&](detail::DelayedMessage& d) {
    if (d.release > now) return false;
    w.mailboxes[static_cast<std::size_t>(d.dst)].push_back(std::move(d.msg));
    moved = true;
    return true;
  });
  return moved;
}

/// Earliest pending release among delayed messages addressed to `dst`
/// (or time_point::max() when none) - the receive wait must wake then.
[[nodiscard]] std::chrono::steady_clock::time_point next_release_locked(
    const detail::World& w, int dst) {
  auto t = std::chrono::steady_clock::time_point::max();
  for (const auto& d : w.delayed)
    if (d.dst == dst && d.release < t) t = d.release;
  return t;
}

[[nodiscard]] std::string describe(const std::exception_ptr& e) {
  try {
    std::rethrow_exception(e);
  } catch (const std::exception& ex) {
    return ex.what();
  } catch (...) {
    return "(non-standard exception)";
  }
}

}  // namespace

void Comm::heartbeat() {
  auto& w = *world_;
  if (!w.heartbeats_on) return;
  const auto r = static_cast<std::size_t>(rank_);
  w.beats[r].store(steady_ms(), std::memory_order_relaxed);
  if (w.evicted[r].load(std::memory_order_acquire))
    throw comm_error(comm_error::Kind::PeerFailed,
                     "mini-MPI heartbeat: rank " + std::to_string(rank_) +
                         " was evicted by the heartbeat monitor");
}

void Comm::send_bytes(int dest, int tag, std::span<const std::byte> data) {
  if (dest < 0 || dest >= size())
    throw std::out_of_range("mini-MPI send: bad destination rank");
  heartbeat();
  auto& w = *world_;
  {
    std::lock_guard lock(w.mu);
    detail::Message m{rank_, tag, {data.begin(), data.end()}};
    if (!fault::armed()) {
      w.mailboxes[static_cast<std::size_t>(dest)].push_back(std::move(m));
    } else {
      // Armed transport: stamp a per-channel sequence number and a
      // payload CRC, park a pristine copy in the retransmit store, then
      // roll the wire faults. Decisions key on (channel, seq), so a
      // given seed injects the same faults into the same messages
      // regardless of rank interleaving.
      const std::uint64_t key = channel_key(rank_, dest, tag);
      m.seq = w.send_seq[key]++;
      m.crc = crc32(m.payload.data(), m.payload.size());
      m.guarded = true;
      w.limbo[key].push_back(m);
      const auto drop = fault::roll_stream(fault::Site::CommDrop, key, m.seq);
      if (!drop.fire) {
        const auto corrupt =
            fault::roll_stream(fault::Site::CommCorrupt, key, m.seq);
        const auto dup = fault::roll_stream(fault::Site::CommDup, key, m.seq);
        const auto delay =
            fault::roll_stream(fault::Site::CommDelay, key, m.seq);
        auto deliver = [&](detail::Message&& msg) {
          if (delay.fire) {
            const auto hold = std::chrono::microseconds(
                1000 + delay.value % 20'000);
            w.delayed.push_back(
                {std::chrono::steady_clock::now() + hold, dest,
                 std::move(msg)});
          } else {
            w.mailboxes[static_cast<std::size_t>(dest)].push_back(
                std::move(msg));
          }
        };
        detail::Message wire = m;
        if (corrupt.fire && !wire.payload.empty()) {
          const std::size_t at = corrupt.value % wire.payload.size();
          wire.payload[at] ^= static_cast<std::byte>(
              1u << ((corrupt.value >> 8) % 8));
        }
        deliver(std::move(wire));
        if (dup.fire) deliver(detail::Message{m});  // pristine duplicate
      }
      // A dropped message stays in limbo only; the receiver recovers it
      // from there after its first timeout.
    }
  }
  w.cv.notify_all();
}

void Comm::recv_bytes(int src, int tag, std::span<std::byte> out) {
  if (src < 0 || src >= size())
    throw std::out_of_range("mini-MPI recv: bad source rank");
  heartbeat();
  auto& w = *world_;
  std::unique_lock lock(w.mu);
  auto& box = w.mailboxes[static_cast<std::size_t>(rank_)];

  const auto copy_out = [&](const detail::Message& m) {
    if (m.payload.size() != out.size())
      throw std::length_error("mini-MPI recv: size mismatch");
    std::copy(m.payload.begin(), m.payload.end(), out.begin());
  };

  if (!fault::armed()) {
    for (;;) {
      auto it = std::find_if(box.begin(), box.end(), [&](const auto& m) {
        return m.src == src && m.tag == tag;
      });
      if (it != box.end()) {
        copy_out(*it);
        box.erase(it);
        return;
      }
      if (w.failed > 0)
        throw comm_error(comm_error::Kind::PeerFailed,
                         "mini-MPI recv: a peer rank failed while rank " +
                             std::to_string(rank_) + " awaited (src=" +
                             std::to_string(src) + ", tag=" +
                             std::to_string(tag) + ")");
      w.cv.wait(lock);
    }
  }

  // Armed transport: deliver channel messages strictly in sequence
  // order, discarding duplicates, recovering corrupted or dropped
  // payloads from the retransmit store, and bounding the total wait.
  const std::uint64_t key = channel_key(src, rank_, tag);

  const auto finish_delivery = [&](std::uint64_t seq) {
    w.recv_seq[key] = seq + 1;
    auto lit = w.limbo.find(key);
    if (lit != w.limbo.end()) {
      auto& q = lit->second;
      while (!q.empty() && q.front().seq <= seq) q.pop_front();
    }
  };

  /// One full mailbox scan; true when the expected message was copied
  /// out (duplicate discard and corrupt-heal included).
  const auto try_deliver = [&]() -> bool {
    const std::uint64_t expected = w.recv_seq[key];
    bool rescan = true;
    while (rescan) {
      rescan = false;
      for (auto it = box.begin(); it != box.end(); ++it) {
        if (it->src != src || it->tag != tag) continue;
        if (!it->guarded) {  // sent before the plan armed: legacy path
          copy_out(*it);
          box.erase(it);
          return true;
        }
        if (it->seq < expected) {  // duplicate of a delivered message
          box.erase(it);
          fault::note_recovered(fault::Site::CommDup);
          rescan = true;
          break;
        }
        if (it->seq != expected) continue;  // future: wait for order
        if (crc32(it->payload.data(), it->payload.size()) != it->crc) {
          // Corrupted in transit: discard and deliver the pristine
          // retransmit copy instead.
          const std::uint64_t seq = it->seq;
          box.erase(it);
          const auto lit = w.limbo.find(key);
          if (lit != w.limbo.end()) {
            const auto& q = lit->second;
            const auto pit =
                std::find_if(q.begin(), q.end(),
                             [&](const auto& p) { return p.seq == seq; });
            if (pit != q.end()) {
              copy_out(*pit);
              finish_delivery(seq);
              fault::note_recovered(fault::Site::CommCorrupt);
              return true;
            }
          }
          rescan = true;  // no pristine copy: treat as dropped
          break;
        }
        copy_out(*it);
        const std::uint64_t seq = it->seq;
        box.erase(it);
        finish_delivery(seq);
        return true;
      }
    }
    return false;
  };

  const auto peer_failed = [&] {
    return comm_error(comm_error::Kind::PeerFailed,
                      "mini-MPI recv: a peer rank failed while rank " +
                          std::to_string(rank_) + " awaited (src=" +
                          std::to_string(src) + ", tag=" +
                          std::to_string(tag) + ")");
  };

  // Fail fast on an already-recorded peer death: one delivery scan,
  // then the failed-peer check, *before* any backoff state (timeout
  // env reads, attempt deadlines) is set up. A recv issued after a
  // PeerFailed barrier wake-up must not wait out the full
  // SYCLPORT_COMM_TIMEOUT_MS budget on a channel no live sender feeds.
  flush_delayed_locked(w, std::chrono::steady_clock::now());
  if (try_deliver()) return;
  if (w.failed > 0) throw peer_failed();

  const auto base_timeout = recv_timeout();
  const int retries = recv_retries();
  auto attempt = base_timeout;
  int attempts_left = retries;
  auto attempt_deadline = std::chrono::steady_clock::now() + attempt;

  for (;;) {
    flush_delayed_locked(w, std::chrono::steady_clock::now());
    if (try_deliver()) return;
    if (w.failed > 0) throw peer_failed();
    auto wake = attempt_deadline;
    if (const auto rel = next_release_locked(w, rank_); rel < wake)
      wake = rel;
    w.cv.wait_until(lock, wake);
    if (std::chrono::steady_clock::now() < attempt_deadline) continue;
    // Attempt expired with nothing deliverable: recover the expected
    // message from the retransmit store (a comm.drop victim), else
    // retry with exponential backoff until the budget is spent.
    const std::uint64_t expect_now = w.recv_seq[key];
    if (const auto lit = w.limbo.find(key); lit != w.limbo.end()) {
      const auto& q = lit->second;
      const auto pit = std::find_if(q.begin(), q.end(), [&](const auto& p) {
        return p.seq == expect_now;
      });
      if (pit != q.end()) {
        copy_out(*pit);
        finish_delivery(expect_now);
        fault::note_recovered(fault::Site::CommDrop);
        return;
      }
    }
    if (--attempts_left < 0)
      throw comm_error(
          comm_error::Kind::Timeout,
          "mini-MPI recv: timed out after " + std::to_string(retries + 1) +
              " attempts (base " + std::to_string(base_timeout.count()) +
              " ms) awaiting src=" + std::to_string(src) + ", tag=" +
              std::to_string(tag) + ", seq=" + std::to_string(expect_now) +
              " at rank " + std::to_string(rank_));
    attempt *= 2;
    attempt_deadline = std::chrono::steady_clock::now() + attempt;
  }
}

void Comm::barrier() {
  heartbeat();
  auto& w = *world_;
  std::unique_lock lock(w.mu);
  const std::uint64_t gen = w.barrier_generation;
  if (++w.barrier_count == w.size) {
    w.barrier_count = 0;
    ++w.barrier_generation;
    w.cv.notify_all();
  } else {
    w.cv.wait(lock, [&] {
      return w.barrier_generation != gen || w.failed > 0;
    });
    if (w.barrier_generation == gen)
      throw comm_error(comm_error::Kind::PeerFailed,
                       "mini-MPI barrier: a peer rank failed before "
                       "reaching the barrier (rank " +
                           std::to_string(rank_) + " waiting)");
  }
}

void Comm::allgather_impl(const void* local, std::size_t bytes, void* out) {
  auto& w = *world_;
  {
    std::lock_guard lock(w.mu);
    if (w.gather_slots.size() != static_cast<std::size_t>(w.size))
      w.gather_slots.resize(static_cast<std::size_t>(w.size));
    const auto* p = static_cast<const std::byte*>(local);
    w.gather_slots[static_cast<std::size_t>(rank_)].assign(p, p + bytes);
  }
  barrier();  // every slot written
  {
    std::lock_guard lock(w.mu);
    auto* o = static_cast<std::byte*>(out);
    for (int r = 0; r < w.size; ++r) {
      const auto& slot = w.gather_slots[static_cast<std::size_t>(r)];
      if (slot.size() != bytes)
        throw std::length_error("mini-MPI allgather: size mismatch");
      std::copy(slot.begin(), slot.end(), o + static_cast<std::size_t>(r) * bytes);
    }
  }
  barrier();  // every slot read; safe to reuse
}

void run(int nranks, const std::function<void(Comm&)>& rank_fn) {
  if (nranks < 1) throw std::invalid_argument("mini-MPI run: nranks < 1");
  auto world = std::make_shared<detail::World>(nranks);

  // Proactive failure detection (docs/resilience.md "Elastic
  // recovery"): with SYCLPORT_HEARTBEAT_MS set, every comm operation
  // beats and a monitor thread evicts ranks that have been silent for
  // several intervals - a dead or wedged peer is discovered without
  // any rank first blocking on a recv from it.
  const auto hb = heartbeat_interval();
  world->heartbeats_on = hb.count() > 0;
  if (world->heartbeats_on) {
    const std::uint64_t now = steady_ms();
    for (auto& b : world->beats) b.store(now, std::memory_order_relaxed);
  }

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks));
  std::mutex err_mu;
  std::vector<rank_errors::Entry> failures;
  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&, r] {
      Comm comm(world, r);
      try {
        rank_fn(comm);
      } catch (...) {
        {
          std::lock_guard lock(err_mu);
          failures.push_back({r, std::current_exception()});
        }
        {
          // Mark the rank dead so peers blocked on a message or barrier
          // this rank will never complete raise comm_error(PeerFailed)
          // instead of hanging.
          std::lock_guard lock(world->mu);
          ++world->failed;
        }
        world->cv.notify_all();
      }
      world->done[static_cast<std::size_t>(r)].store(
          1, std::memory_order_release);
    });
  }

  std::thread monitor;
  std::atomic<bool> monitor_stop{false};
  if (world->heartbeats_on) {
    monitor = std::thread([&, hb] {
      // A rank is evicted after ~4 missed intervals: late enough that a
      // scheduling hiccup never trips it, early enough that detection
      // beats the comm-timeout path by an order of magnitude.
      const auto silence =
          static_cast<std::uint64_t>(hb.count()) * 4 + 1;
      while (!monitor_stop.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(hb / 2 + std::chrono::milliseconds(1));
        const std::uint64_t now = steady_ms();
        for (int r = 0; r < nranks; ++r) {
          const auto i = static_cast<std::size_t>(r);
          if (world->done[i].load(std::memory_order_acquire)) continue;
          if (world->evicted[i].load(std::memory_order_acquire)) continue;
          const std::uint64_t last =
              world->beats[i].load(std::memory_order_relaxed);
          if (now <= last || now - last < silence) continue;
          world->evicted[i].store(1, std::memory_order_release);
          {
            std::lock_guard lock(world->mu);
            ++world->failed;
            world->detect_ms = static_cast<double>(now - last);
          }
          world->cv.notify_all();
        }
      }
    });
  }

  for (auto& t : threads) t.join();
  if (monitor.joinable()) {
    monitor_stop.store(true, std::memory_order_release);
    monitor.join();
  }
  if (failures.empty()) return;
  std::sort(failures.begin(), failures.end(),
            [](const auto& a, const auto& b) { return a.rank < b.rank; });
  // Peer-failure cascades are secondary: a rank that raised
  // comm_error{PeerFailed} only did so because some other rank already
  // failed. Surface the primary causes; fall back to the cascades only
  // when nothing else exists (should not happen, but never swallow).
  std::vector<rank_errors::Entry> primary;
  for (const auto& f : failures) {
    bool cascade = false;
    try {
      std::rethrow_exception(f.error);
    } catch (const comm_error& ce) {
      cascade = ce.kind() == comm_error::Kind::PeerFailed;
    } catch (...) {
    }
    if (!cascade) primary.push_back(f);
  }
  if (primary.empty()) primary = failures;
  if (primary.size() == 1) std::rethrow_exception(primary.front().error);
  std::string msg = "mini-MPI run: " + std::to_string(primary.size()) +
                    " ranks failed:";
  for (const auto& f : primary)
    msg += " [rank " + std::to_string(f.rank) + ": " + describe(f.error) + "]";
  throw rank_errors(msg, std::move(primary));
}

}  // namespace syclport::mpi
