// Unit tests for src/core: types, statistics, PP metric, support matrix,
// report rendering.

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "core/pp_metric.hpp"
#include "core/report.hpp"
#include "core/statistics.hpp"
#include "core/support.hpp"
#include "core/types.hpp"

namespace sp = syclport;

TEST(Types, AppNamesRoundTrip) {
  for (sp::AppId a : sp::kAllApps) {
    auto parsed = sp::parse_app(sp::to_string(a));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, a);
  }
}

TEST(Types, PlatformNamesRoundTrip) {
  for (sp::PlatformId p : sp::kAllPlatforms) {
    auto parsed = sp::parse_platform(sp::to_string(p));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, p);
  }
}

TEST(Types, GpuCpuPartition) {
  int gpus = 0, cpus = 0;
  for (sp::PlatformId p : sp::kAllPlatforms) (sp::is_gpu(p) ? gpus : cpus)++;
  EXPECT_EQ(gpus, 3);
  EXPECT_EQ(cpus, 3);
}

TEST(Types, VariantLabelsMatchPaperStyle) {
  sp::Variant dpcpp_nd{sp::Model::SYCLNDRange, sp::Toolchain::DPCPP};
  EXPECT_EQ(sp::to_string(dpcpp_nd), "DPC++ nd_range");
  sp::Variant osycl_flat{sp::Model::SYCLFlat, sp::Toolchain::OpenSYCL};
  EXPECT_EQ(sp::to_string(osycl_flat), "OpenSYCL flat");
  sp::Variant mpi_omp{sp::Model::MPI_OpenMP, sp::Toolchain::Native};
  EXPECT_EQ(sp::to_string(mpi_omp), "MPI+OpenMP");
  sp::Variant cray{sp::Model::OpenMPOffload, sp::Toolchain::Cray};
  EXPECT_EQ(sp::to_string(cray), "Cray OpenMP offload");
  sp::Variant atomics{sp::Model::SYCLNDRange, sp::Toolchain::OpenSYCL,
                      sp::Strategy::Atomics};
  EXPECT_EQ(sp::to_string(atomics), "OpenSYCL nd_range [atomics]");
}

TEST(Statistics, MeanAndStddev) {
  std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(sp::stats::mean(xs), 5.0);
  EXPECT_NEAR(sp::stats::stddev(xs), 2.138, 1e-3);
}

TEST(Statistics, EmptyInputsAreZero) {
  std::vector<double> none;
  EXPECT_EQ(sp::stats::mean(none), 0.0);
  EXPECT_EQ(sp::stats::stddev(none), 0.0);
  EXPECT_EQ(sp::stats::harmonic_mean(none), 0.0);
  EXPECT_EQ(sp::stats::geometric_mean(none), 0.0);
  EXPECT_EQ(sp::stats::median(none), 0.0);
}

TEST(Statistics, HarmonicMeanOfEqualValues) {
  std::vector<double> xs{3.0, 3.0, 3.0};
  EXPECT_DOUBLE_EQ(sp::stats::harmonic_mean(xs), 3.0);
}

TEST(Statistics, HarmonicLeGeometricLeArithmetic) {
  std::vector<double> xs{0.3, 0.9, 0.5, 0.7};
  const double h = sp::stats::harmonic_mean(xs);
  const double g = sp::stats::geometric_mean(xs);
  const double a = sp::stats::mean(xs);
  EXPECT_LT(h, g);
  EXPECT_LT(g, a);
}

TEST(Statistics, WeightedMean) {
  std::vector<double> xs{1.0, 10.0};
  std::vector<double> ws{9.0, 1.0};
  EXPECT_NEAR(sp::stats::weighted_mean(xs, ws), 1.9, 1e-12);
}

TEST(Statistics, MedianOddEven) {
  std::vector<double> odd{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(sp::stats::median(odd), 3.0);
  std::vector<double> even{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(sp::stats::median(even), 2.5);
}

TEST(Statistics, PercentileInterpolatesType7) {
  // 1..10 unsorted: rank r = p/100 * (n-1), linear interpolation.
  std::vector<double> xs{7.0, 1.0, 9.0, 3.0, 5.0, 2.0, 8.0, 10.0, 6.0, 4.0};
  EXPECT_DOUBLE_EQ(sp::stats::percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(sp::stats::percentile(xs, 100.0), 10.0);
  EXPECT_DOUBLE_EQ(sp::stats::percentile(xs, 50.0), 5.5);
  EXPECT_NEAR(sp::stats::percentile(xs, 95.0), 9.55, 1e-12);
  EXPECT_NEAR(sp::stats::percentile(xs, 99.0), 9.91, 1e-12);
  // p50 agrees with the median for odd and even counts alike.
  std::vector<double> odd{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(sp::stats::percentile(odd, 50.0), sp::stats::median(odd));
}

TEST(Statistics, PercentileEdgeCases) {
  std::vector<double> none;
  EXPECT_EQ(sp::stats::percentile(none, 99.0), 0.0);
  std::vector<double> one{4.2};
  EXPECT_DOUBLE_EQ(sp::stats::percentile(one, 0.0), 4.2);
  EXPECT_DOUBLE_EQ(sp::stats::percentile(one, 99.0), 4.2);
  // Out-of-range p clamps instead of reading out of bounds.
  std::vector<double> xs{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(sp::stats::percentile(xs, -5.0), 1.0);
  EXPECT_DOUBLE_EQ(sp::stats::percentile(xs, 150.0), 3.0);
}

TEST(PPMetric, HarmonicMeanWhenAllSupported) {
  std::vector<double> eff{0.5, 0.5, 0.5};
  EXPECT_DOUBLE_EQ(sp::pp_metric(eff), 0.5);
}

TEST(PPMetric, ZeroWhenAnyPlatformFails) {
  std::vector<double> eff{0.9, 0.0, 0.8};
  EXPECT_EQ(sp::pp_metric(eff), 0.0);
}

TEST(PPMetric, SupportedOnlyIgnoresFailures) {
  std::vector<double> eff{0.9, 0.0, 0.9};
  EXPECT_DOUBLE_EQ(sp::pp_supported_only(eff), 0.9);
}

TEST(PPMetric, DominatedByWorstPlatform) {
  std::vector<double> eff{1.0, 1.0, 0.1};
  EXPECT_LT(sp::pp_metric(eff), 0.3);
}

TEST(SupportMatrix, DpcppUnavailableOnAltra) {
  const auto& m = sp::SupportMatrix::paper();
  sp::Variant v{sp::Model::SYCLNDRange, sp::Toolchain::DPCPP};
  for (sp::AppId a : sp::kAllApps)
    EXPECT_EQ(m.status(sp::PlatformId::Altra, a, v), sp::Status::Unsupported);
}

TEST(SupportMatrix, OpenSyclWorksOnAltraStructured) {
  const auto& m = sp::SupportMatrix::paper();
  sp::Variant v{sp::Model::SYCLNDRange, sp::Toolchain::OpenSYCL};
  EXPECT_TRUE(m.ok(sp::PlatformId::Altra, sp::AppId::CloverLeaf2D, v));
}

TEST(SupportMatrix, GenoaXCloverLeaf2DOnlyDpcppNdRangeSycl) {
  // Paper S4.4: "CloverLeaf 2D only working with DPC++ nd_range on Genoa-X".
  const auto& m = sp::SupportMatrix::paper();
  const sp::PlatformId p = sp::PlatformId::GenoaX;
  const sp::AppId a = sp::AppId::CloverLeaf2D;
  EXPECT_TRUE(m.ok(p, a, {sp::Model::SYCLNDRange, sp::Toolchain::DPCPP}));
  EXPECT_FALSE(m.ok(p, a, {sp::Model::SYCLFlat, sp::Toolchain::DPCPP}));
  EXPECT_FALSE(m.ok(p, a, {sp::Model::SYCLFlat, sp::Toolchain::OpenSYCL}));
  EXPECT_FALSE(m.ok(p, a, {sp::Model::SYCLNDRange, sp::Toolchain::OpenSYCL}));
}

TEST(SupportMatrix, OpenSyclAtomicsWorksEverywhereForMgcfd) {
  // Needed for the paper's PP(OpenSYCL+atomics) = 0.42 claim.
  const auto& m = sp::SupportMatrix::paper();
  for (sp::PlatformId p : sp::kAllPlatforms) {
    if (p == sp::PlatformId::Altra) continue;  // DPC++ absent, OpenSYCL fine
    EXPECT_TRUE(m.ok(p, sp::AppId::MGCFD,
                     {sp::Model::SYCLNDRange, sp::Toolchain::OpenSYCL,
                      sp::Strategy::Atomics}))
        << sp::to_string(p);
  }
  EXPECT_TRUE(m.ok(sp::PlatformId::Altra, sp::AppId::MGCFD,
                   {sp::Model::SYCLNDRange, sp::Toolchain::OpenSYCL,
                    sp::Strategy::Atomics}));
}

TEST(SupportMatrix, CrayOffloadFailsOnCloverLeaf3D) {
  const auto& m = sp::SupportMatrix::paper();
  sp::Variant v{sp::Model::OpenMPOffload, sp::Toolchain::Cray};
  EXPECT_EQ(m.status(sp::PlatformId::MI250X, sp::AppId::CloverLeaf3D, v),
            sp::Status::RuntimeCrash);
  EXPECT_TRUE(m.ok(sp::PlatformId::MI250X, sp::AppId::CloverLeaf2D, v));
}

TEST(Report, TableRendersAligned) {
  sp::report::Table t({"app", "runtime"});
  t.add_row({"CloverLeaf2D", "1.23"});
  t.add_row({"RTM", "45.6"});
  std::ostringstream os;
  t.render(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("CloverLeaf2D"), std::string::npos);
  EXPECT_NE(s.find("45.6"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(Report, TableRejectsArityMismatch) {
  sp::report::Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Report, CsvEscapesCommasAndQuotes) {
  sp::report::Table t({"name", "value"});
  t.add_row({"a,b", "say \"hi\""});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_NE(os.str().find("\"a,b\""), std::string::npos);
  EXPECT_NE(os.str().find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Report, BarsRenderValuesAndNotes) {
  std::vector<sp::report::BarGroup> groups{
      {"CloverLeaf2D",
       {{"CUDA", 2.0, ""}, {"DPC++ flat", 8.0, ""}, {"OpenSYCL", 0.0, "incorrect"}}}};
  std::ostringstream os;
  sp::report::render_bars(os, groups, "s");
  const std::string s = os.str();
  EXPECT_NE(s.find("CUDA"), std::string::npos);
  EXPECT_NE(s.find("(incorrect)"), std::string::npos);
  EXPECT_NE(s.find('#'), std::string::npos);
}

TEST(Report, FormatHelpers) {
  EXPECT_EQ(sp::report::fmt(1.234, 2), "1.23");
  EXPECT_EQ(sp::report::fmt_percent(0.915, 1), "91.5%");
}
