#include "hwmodel/device_model.hpp"

#include <algorithm>
#include <cmath>

#include "hwmodel/memory_model.hpp"
#include "hwmodel/quirks.hpp"

namespace syclport::hw {

double DeviceModel::vector_efficiency(const LoopProfile& lp) const {
  if (hw_.gpu) return 1.0;  // SIMT: lanes are work-items
  const double scalar = 1.0 / static_cast<double>(hw_.sub_group);
  if (vectorization_fails(hw_.id, v_.toolchain, app_)) return scalar;
  // Indirect kernels with race conditions only vectorize for
  // conflict-free execution (pure MPI's owner-compute) or with DPC++'s
  // vectorizer (paper §4.3).
  // The staged lowering feeds the kernel dense gathered streams and
  // resolves races in scratch, so the sweep vectorizes like a direct
  // loop on any toolchain.
  if (lp.cls == KernelClass::EdgeFlux && !lp.staged) {
    const bool vectorizes =
        v_.model == Model::MPI || v_.toolchain == Toolchain::DPCPP;
    if (!vectorizes) return scalar;
  }
  return ep_.vec_eff;
}

double DeviceModel::gather_factor(const LoopProfile& lp) const {
  // Interpolate the reuse-distance profile at the usable last-level
  // cache capacity.
  return std::max(1.0, interp_gather_curve(lp.gather_factor_at,
                                           hw_.llc.bytes * 0.5));
}

KernelTime DeviceModel::kernel_time(const LoopProfile& lp) const {
  KernelTime kt;
  kt.wg = choose_workgroup(hw_, v_, lp);

  // --- memory term ---------------------------------------------------------
  const bool tuned_shape = v_.model == Model::SYCLNDRange ||
                           v_.model == Model::CUDA || v_.model == Model::HIP;
  const double cache_shape = tuned_shape ? ep_.nd_cache_bonus : 1.0;
  const double mult = stencil_read_multiplier(hw_, lp, cache_shape);

  // The layer-condition multiplier re-reads only the stencil-accessed
  // arrays; point reads stream once.
  const double read_point =
      lp.bytes_read - lp.bytes_read_indirect - lp.bytes_read_stencil;
  const double write_direct = lp.bytes_written - lp.bytes_written_indirect;
  const double gather = gather_factor(lp);
  double dram = read_point + lp.bytes_read_stencil * mult +
                lp.bytes_read_indirect * gather + write_direct +
                lp.bytes_written_indirect * gather + lp.map_bytes;
  // Staged scratch on GPUs: the ordered scatter-back partitions targets
  // across work-items and every partition re-scans the arena, so the
  // scratch traffic leaves the SM caches and hits DRAM several times
  // over - this is what keeps atomics the winning strategy on devices
  // with fast hardware atomics (the paper's GPU ranking).
  constexpr double kStagedGpuRescan = 8.0;
  if (lp.staged && hw_.gpu) dram += lp.staged_bytes * kStagedGpuRescan;
  dram /= std::max(0.05, kt.wg.coalescing);
  kt.dram_bytes = dram;

  const double hit = llc_hit_probability(hw_, lp);
  // Pure streaming kernels (<= 3 arrays, no stencil, no indirection)
  // reach STREAM bandwidth by definition - BabelStream itself is one;
  // real multi-array kernels sustain only app_bw_frac of it.
  const bool streaming = lp.radius_fast == 0 && lp.radius_mid == 0 &&
                         lp.radius_slow == 0 && lp.n_arrays <= 3 &&
                         lp.bytes_read_indirect == 0.0 && lp.map_bytes == 0.0;
  // Kernels with very many live stencil taps (e.g. Store-None's fused
  // derivative recomputation, ~65 taps/point) spill registers and lose
  // GPU occupancy, capping achievable bandwidth (paper §4.1: SN 74% vs
  // SA 92% on the A100).
  const double taps_per_point =
      lp.cache_access_bytes /
      (static_cast<double>(std::max<std::size_t>(1, lp.items())) *
       static_cast<double>(lp.elem_bytes));
  const double occupancy =
      hw_.gpu && taps_per_point > 55.0 ? 0.62 : 1.0;
  const double dram_bw = hw_.stream_bw_gbs * ep_.bw_factor * occupancy *
                         (streaming ? 1.0 : hw_.app_bw_frac);
  kt.mem_s = memory_time_s(hw_, dram, hit, dram_bw);

  // --- compute terms ----------------------------------------------------------
  const double vec = vector_efficiency(lp);
  const double peak_tflops =
      lp.elem_bytes == 8 ? hw_.fp64_tflops : hw_.fp32_tflops;
  kt.comp_s = lp.flops / (peak_tflops * 1e12 * vec);
  // L1/LSU ceiling: every stencil tap is a load issue; narrow FP32
  // taps still occupy a full 8-byte lane, and on CPUs scalar code
  // loses the vector-width advantage of wide loads.
  const double tap_scale = lp.elem_bytes == 4 ? 2.0 : 1.0;
  const double l1_bw =
      hw_.l1.bw_gbs * 1e9 * (hw_.gpu ? 1.0 : vec / 0.9);
  // Staged scratch on CPUs stays cache-resident (super-tiles are sized
  // for it), so it rides the L1/LSU ceiling rather than DRAM.
  const double staged_cache =
      lp.staged && !hw_.gpu ? lp.staged_bytes : 0.0;
  const double l1_s =
      (lp.cache_access_bytes + staged_cache) * tap_scale / l1_bw;
  kt.comp_s = std::max(kt.comp_s, l1_s);

  // --- issue term (latency-bound small loops, padding waste) ---------------
  const double padded_items =
      static_cast<double>(lp.items()) / std::max(1e-6, kt.wg.utilization);
  kt.items_s = padded_items / (hw_.issue_gitems * 1e9);

  // --- atomics ---------------------------------------------------------------
  const double atomic_rate =
      (ep_.unsafe_atomics ? hw_.atomic_gups_unsafe : hw_.atomic_gups) * 1e9;
  // Pure MPI increments are plain stores (owner-compute, no races);
  // the schedule is shared with the atomics strategy, so drop the cost.
  kt.atomic_s = v_.model == Model::MPI
                    ? 0.0
                    : static_cast<double>(lp.atomic_updates) / atomic_rate;

  // --- assembly ---------------------------------------------------------------
  kt.launch_s = ep_.launch_us * 1e-6 * static_cast<double>(lp.launches);
  double base = std::max({kt.mem_s, kt.comp_s, kt.items_s});
  base *= ep_.flat_penalty;
  base *= quirk_factor(hw_.id, v_, app_, lp.cls);
  if (lp.reduction != ReductionKind::None && v_.is_sycl() && !hw_.gpu)
    base *= ep_.reduction_factor;  // §4.2: SYCL CPU reductions 6-7x
  kt.seconds = kt.launch_s + base + kt.atomic_s;
  kt.useful_bytes = lp.total_bytes();
  return kt;
}

}  // namespace syclport::hw
