#pragma once
/// \file elastic.hpp
/// Elastic self-healing driver for mini-MPI runs
/// (docs/resilience.md "Elastic recovery").
///
/// run_elastic() executes a step loop as a sequence of *epochs*: each
/// epoch is one mpi::run() over the current world. When a rank dies
/// mid-epoch (the seeded `rank.kill` fault site, or a heartbeat
/// eviction) the survivors unwind cooperatively, the driver applies the
/// configured recovery policy - `shrink` re-partitions over the
/// survivors, `respawn` restarts a replacement rank - and the next
/// epoch resumes from the last auto-checkpoint. Checkpoints are
/// *canonical* (decomposition-independent, see ops/dist_checkpoint.hpp)
/// so a shrunk world can restore state written by a larger one, and the
/// recovered run is bit-exact versus an unfailed run.
///
/// Epoch agreement: before resuming, every survivor derives the same
/// 64-bit token from (fault seed, epoch index, failed rank, survivor
/// count) and the ranks allgather + compare them - a deterministic
/// seeded agreement round that doubles as a liveness barrier over the
/// new world. The token is recorded in the recovery telemetry
/// (sycl::launch_log::recovery_snapshot()).

#include <chrono>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>

#include "minimpi/comm.hpp"

namespace syclport::mpi {

/// What run_elastic does when a rank dies (SYCLPORT_RECOVERY).
enum class Recovery : std::uint8_t {
  Abort,    ///< rethrow: the failure is the caller's problem (default)
  Shrink,   ///< continue on the survivors (world size - 1)
  Respawn,  ///< restart a replacement rank (world size unchanged)
};

[[nodiscard]] const char* to_string(Recovery policy) noexcept;

/// Primary error thrown by the victim of a `rank.kill` injection. The
/// survivors' PeerFailed cascades are filtered by mpi::run(), so this
/// is what run_elastic catches to classify a recoverable rank death.
class rank_killed_error : public std::runtime_error {
 public:
  rank_killed_error(const std::string& what_arg, int rank_arg, int step_arg)
      : std::runtime_error(what_arg),
        rank(rank_arg),
        step(step_arg),
        at(std::chrono::steady_clock::now()) {}

  int rank;  ///< victim rank id
  int step;  ///< last step the victim completed before dying
  std::chrono::steady_clock::time_point at;  ///< time of death
};

struct ElasticOptions {
  Recovery policy = Recovery::Abort;
  int ckpt_every = 0;   ///< auto-checkpoint every n completed steps; 0 = off
  int max_epochs = 16;  ///< recovery-attempt bound; exceeding it rethrows
  std::string ckpt_path = "elastic_ckpt.bin";

  /// SYCLPORT_RECOVERY (abort|shrink|respawn) and SYCLPORT_CKPT_EVERY
  /// (>= 1), both warn-once on invalid values (rt::env hardening).
  [[nodiscard]] static ElasticOptions from_env();
};

namespace detail {
struct EpochShared;
}  // namespace detail

/// Per-epoch context handed to the step loop alongside the Comm. The
/// loop must run steps [start_step(), steps) and call step_done() after
/// each one; everything else (kill rolls, checkpoint cadence, restore
/// decisions, agreement) is driven through this object.
class Epoch {
 public:
  [[nodiscard]] int index() const noexcept;

  /// First step this epoch should execute (0 on a fresh start,
  /// last checkpointed step + 1 after a rollback).
  [[nodiscard]] int start_step() const noexcept;

  /// True when state must be restored from checkpoint_path() before
  /// stepping (start_step() > 0 via a recorded checkpoint).
  [[nodiscard]] bool resuming() const noexcept;

  [[nodiscard]] const std::string& checkpoint_path() const noexcept;

  /// Call after completing step `s` (0-based). Rolls the seeded
  /// `rank.kill` site for this step - every rank sees the same shared
  /// decision, the chosen victim throws rank_killed_error, and the
  /// survivors unwind with PeerFailed at their next blocked
  /// communication once the victim dies - then invokes `save` at
  /// the checkpoint cadence. `save` must be a collective canonical
  /// checkpoint of the full recoverable state to checkpoint_path().
  /// The kill roll deliberately precedes the save: a rank killed at a
  /// cadence step rolls back to the *previous* checkpoint.
  void step_done(int s, const std::function<void()>& save);

 private:
  friend void run_elastic(int, int, const ElasticOptions&,
                          const std::function<void(Comm&, Epoch&)>&);
  Epoch(detail::EpochShared* sh, Comm* comm) : sh_(sh), comm_(comm) {}

  void agree();

  detail::EpochShared* sh_;
  Comm* comm_;
};

/// Run `epoch_fn` over `nranks` ranks with elastic recovery. The
/// function receives the epoch context and must drive its step loop as
/// documented on Epoch. Returns when an epoch completes without a rank
/// death; rethrows the primary error under Recovery::Abort, when the
/// world cannot shrink further, or when max_epochs is exhausted.
void run_elastic(int nranks, int steps, const ElasticOptions& opts,
                 const std::function<void(Comm&, Epoch&)>& epoch_fn);

}  // namespace syclport::mpi
