# Empty dependencies file for fig8_mgcfd_gpu.
# This may be replaced when dependencies are built.
