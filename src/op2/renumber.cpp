#include "op2/renumber.hpp"

#include <cmath>
#include <deque>
#include <limits>
#include <stdexcept>

#include "runtime/env.hpp"

namespace syclport::op2 {

namespace {

/// Quantize coordinates to a kBits-per-axis grid over the bounding box.
constexpr unsigned kBits = 10;

[[nodiscard]] std::array<std::uint32_t, 3> quantize(
    const std::array<double, 3>& x, const std::array<double, 3>& lo,
    const std::array<double, 3>& span) {
  std::array<std::uint32_t, 3> g{};
  constexpr double kMax = static_cast<double>((1u << kBits) - 1);
  for (int d = 0; d < 3; ++d) {
    const double t = span[static_cast<std::size_t>(d)] > 0.0
                         ? (x[static_cast<std::size_t>(d)] -
                            lo[static_cast<std::size_t>(d)]) /
                               span[static_cast<std::size_t>(d)]
                         : 0.0;
    g[static_cast<std::size_t>(d)] =
        static_cast<std::uint32_t>(std::clamp(t, 0.0, 1.0) * kMax);
  }
  return g;
}

/// Spread the low kBits of v so consecutive bits land 3 apart.
[[nodiscard]] std::uint64_t spread3(std::uint32_t v) {
  std::uint64_t x = v & ((1u << kBits) - 1);
  x = (x | (x << 16)) & 0x030000FF0000FFull;
  x = (x | (x << 8)) & 0x0300F00F00F00Full;
  x = (x | (x << 4)) & 0x030C30C30C30C3ull;
  x = (x | (x << 2)) & 0x09249249249249ull;
  return x;
}

[[nodiscard]] std::uint64_t morton_key(const std::array<std::uint32_t, 3>& g) {
  return spread3(g[0]) | (spread3(g[1]) << 1) | (spread3(g[2]) << 2);
}

/// Skilling's transform: convert axis coordinates to the "transposed"
/// Hilbert index in place, then interleave. Public-domain algorithm
/// (J. Skilling, "Programming the Hilbert curve", AIP 2004).
[[nodiscard]] std::uint64_t hilbert_key(std::array<std::uint32_t, 3> x) {
  constexpr unsigned n = 3;
  std::uint32_t m = 1u << (kBits - 1);
  // Inverse undo.
  for (std::uint32_t q = m; q > 1; q >>= 1) {
    const std::uint32_t p = q - 1;
    for (unsigned i = 0; i < n; ++i) {
      if (x[i] & q) {
        x[0] ^= p;  // invert
      } else {  // exchange
        const std::uint32_t t = (x[0] ^ x[i]) & p;
        x[0] ^= t;
        x[i] ^= t;
      }
    }
  }
  // Gray encode.
  for (unsigned i = 1; i < n; ++i) x[i] ^= x[i - 1];
  std::uint32_t t = 0;
  for (std::uint32_t q = m; q > 1; q >>= 1)
    if (x[n - 1] & q) t ^= q - 1;
  for (unsigned i = 0; i < n; ++i) x[i] ^= t;
  // Interleave: bit b of axis i lands at position b*3 + (2 - i).
  std::uint64_t key = 0;
  for (unsigned b = 0; b < kBits; ++b)
    for (unsigned i = 0; i < n; ++i)
      key |= static_cast<std::uint64_t>((x[i] >> b) & 1u)
             << (b * n + (n - 1 - i));
  return key;
}

[[nodiscard]] std::vector<int> order_by_key(
    const std::vector<std::array<double, 3>>& coords,
    std::uint64_t (*curve)(std::array<std::uint32_t, 3>)) {
  const std::size_t n = coords.size();
  std::array<double, 3> lo{std::numeric_limits<double>::infinity(),
                           std::numeric_limits<double>::infinity(),
                           std::numeric_limits<double>::infinity()};
  std::array<double, 3> hi{-std::numeric_limits<double>::infinity(),
                           -std::numeric_limits<double>::infinity(),
                           -std::numeric_limits<double>::infinity()};
  for (const auto& x : coords)
    for (std::size_t d = 0; d < 3; ++d) {
      lo[d] = std::min(lo[d], x[d]);
      hi[d] = std::max(hi[d], x[d]);
    }
  std::array<double, 3> span{};
  for (std::size_t d = 0; d < 3; ++d) span[d] = hi[d] - lo[d];

  std::vector<std::uint64_t> key(n);
  for (std::size_t i = 0; i < n; ++i)
    key[i] = curve(quantize(coords[i], lo, span));
  std::vector<int> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  std::sort(perm.begin(), perm.end(), [&](int a, int b) {
    const auto ka = key[static_cast<std::size_t>(a)];
    const auto kb = key[static_cast<std::size_t>(b)];
    return ka != kb ? ka < kb : a < b;
  });
  return perm;
}

[[nodiscard]] std::uint64_t morton_curve(std::array<std::uint32_t, 3> g) {
  return morton_key(g);
}

}  // namespace

std::string_view to_string(Ordering o) noexcept {
  switch (o) {
    case Ordering::Identity: return "identity";
    case Ordering::MinTarget: return "mintarget";
    case Ordering::RCM: return "rcm";
    case Ordering::Morton: return "morton";
    case Ordering::Hilbert: return "hilbert";
  }
  return "?";
}

std::optional<Ordering> parse_ordering(std::string_view s) noexcept {
  if (s == "identity") return Ordering::Identity;
  if (s == "mintarget") return Ordering::MinTarget;
  if (s == "rcm") return Ordering::RCM;
  if (s == "morton") return Ordering::Morton;
  if (s == "hilbert") return Ordering::Hilbert;
  return std::nullopt;
}

std::optional<Ordering> ordering_from_env() {
  static constexpr std::array<std::string_view, 5> kNames = {
      "identity", "mintarget", "rcm", "morton", "hilbert"};
  if (const auto idx = rt::env::get_choice("SYCLPORT_RENUMBER", kNames))
    return static_cast<Ordering>(*idx);
  return std::nullopt;
}

std::vector<int> inverse_permutation(const std::vector<int>& perm) {
  std::vector<int> inv(perm.size(), -1);
  for (std::size_t i = 0; i < perm.size(); ++i) {
    const auto p = static_cast<std::size_t>(perm[i]);
    if (p >= perm.size() || inv[p] != -1)
      throw std::invalid_argument("inverse_permutation: not a permutation");
    inv[p] = static_cast<int>(i);
  }
  return inv;
}

std::vector<int> order_by_min_target(const Map& map) {
  const std::size_t n = map.from().size();
  std::vector<int> key(n);
  for (std::size_t e = 0; e < n; ++e) {
    int mn = map.at(e, 0);
    for (int i = 1; i < map.arity(); ++i) mn = std::min(mn, map.at(e, i));
    key[e] = mn;
  }
  std::vector<int> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  // Explicit (key, id) comparator instead of a stable sort on key alone:
  // the tie order is part of the ordering's identity, not an
  // implementation accident, so it survives sort-algorithm changes.
  std::sort(perm.begin(), perm.end(), [&](int a, int b) {
    const int ka = key[static_cast<std::size_t>(a)];
    const int kb = key[static_cast<std::size_t>(b)];
    return ka != kb ? ka < kb : a < b;
  });
  return perm;
}

std::vector<int> order_rcm(const Map& map) {
  const std::size_t n = map.to().size();
  // Adjacency of the target graph: all target pairs sharing a map row.
  std::vector<std::vector<int>> adj(n);
  for (std::size_t e = 0; e < map.from().size(); ++e)
    for (int i = 0; i < map.arity(); ++i)
      for (int j = 0; j < map.arity(); ++j) {
        if (i == j) continue;
        adj[static_cast<std::size_t>(map.at(e, i))].push_back(map.at(e, j));
      }
  for (auto& nb : adj) {
    std::sort(nb.begin(), nb.end());
    nb.erase(std::unique(nb.begin(), nb.end()), nb.end());
  }
  auto degree = [&](int v) {
    return adj[static_cast<std::size_t>(v)].size();
  };

  std::vector<int> order;
  order.reserve(n);
  std::vector<char> visited(n, 0);
  std::deque<int> queue;
  while (order.size() < n) {
    // Next component: its minimum-degree unvisited node (ties on id).
    int seed = -1;
    for (std::size_t v = 0; v < n; ++v) {
      if (visited[v]) continue;
      if (seed < 0 || degree(static_cast<int>(v)) < degree(seed))
        seed = static_cast<int>(v);
    }
    visited[static_cast<std::size_t>(seed)] = 1;
    queue.push_back(seed);
    std::vector<int> frontier;
    while (!queue.empty()) {
      const int v = queue.front();
      queue.pop_front();
      order.push_back(v);
      frontier.clear();
      for (int w : adj[static_cast<std::size_t>(v)])
        if (!visited[static_cast<std::size_t>(w)]) {
          visited[static_cast<std::size_t>(w)] = 1;
          frontier.push_back(w);
        }
      std::sort(frontier.begin(), frontier.end(), [&](int a, int b) {
        const auto da = degree(a);
        const auto db = degree(b);
        return da != db ? da < db : a < b;
      });
      for (int w : frontier) queue.push_back(w);
    }
  }
  std::reverse(order.begin(), order.end());
  return order;
}

std::vector<int> order_morton(
    const std::vector<std::array<double, 3>>& coords) {
  return order_by_key(coords, morton_curve);
}

std::vector<int> order_hilbert(
    const std::vector<std::array<double, 3>>& coords) {
  return order_by_key(coords, hilbert_key);
}

void relabel_map_targets(Map& map, const std::vector<int>& target_perm) {
  const std::vector<int> inv = inverse_permutation(target_perm);
  const std::size_t n = map.from().size();
  for (std::size_t e = 0; e < n; ++e)
    for (int i = 0; i < map.arity(); ++i)
      map.at(e, i) = inv[static_cast<std::size_t>(map.at(e, i))];
}

std::size_t map_bandwidth(const Map& map) {
  std::size_t bw = 0;
  for (std::size_t e = 0; e < map.from().size(); ++e) {
    int mn = map.at(e, 0);
    int mx = mn;
    for (int i = 1; i < map.arity(); ++i) {
      mn = std::min(mn, map.at(e, i));
      mx = std::max(mx, map.at(e, i));
    }
    bw = std::max(bw, static_cast<std::size_t>(mx - mn));
  }
  return bw;
}

}  // namespace syclport::op2
