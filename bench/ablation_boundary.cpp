// Ablation: boundary-kernel cost vs launch latency (paper §4.1-4.2).
// Reports the modeled fraction of runtime spent in boundary-condition
// loops for CloverLeaf 2D/3D against the paper's quoted fractions on
// GPUs, and the CPU DPC++-via-OpenCL vs OpenSYCL-via-OpenMP contrast.

#include <iostream>

#include "common/figures.hpp"
#include "common/paper_data.hpp"
#include "core/report.hpp"

using namespace syclport;

int main() {
  study::StudyRunner runner;
  std::cout << "=== Ablation: boundary-loop time fraction ===\n\n";

  report::Table t({"platform", "app", "variant", "boundary share",
                   "paper share"});
  for (PlatformId p : {PlatformId::A100, PlatformId::MI250X,
                       PlatformId::Max1100}) {
    for (AppId a : {AppId::CloverLeaf2D, AppId::CloverLeaf3D}) {
      const Variant v = study::native_variant(p);
      const auto r = runner.run(a, p, v);
      if (!r.ok()) continue;
      const auto paper = bench::paper_boundary_fraction(p, a);
      t.add_row({std::string(to_string(p)), std::string(to_string(a)),
                 to_string(v), report::fmt_percent(r.boundary_s / r.runtime_s),
                 paper ? report::fmt_percent(*paper) : "-"});
    }
  }
  // CPU contrast (paper §4.2, CloverLeaf 2D on the Xeon): DPC++ 5.4%
  // (nd) / 8.7% (flat); OpenSYCL 2.5% / 1.24%; MPI+OpenMP 0.34%.
  struct Row { Variant v; const char* paper; };
  const Row rows[] = {
      {{Model::MPI_OpenMP, Toolchain::Native}, "0.3%"},
      {{Model::SYCLNDRange, Toolchain::DPCPP}, "5.4%"},
      {{Model::SYCLFlat, Toolchain::DPCPP}, "8.7%"},
      {{Model::SYCLNDRange, Toolchain::OpenSYCL}, "2.5%"},
      {{Model::SYCLFlat, Toolchain::OpenSYCL}, "1.2%"},
  };
  for (const auto& row : rows) {
    const auto r = runner.run(AppId::CloverLeaf2D, PlatformId::Xeon8360Y, row.v);
    if (!r.ok()) continue;
    t.add_row({"Xeon 8360Y", "CloverLeaf2D", to_string(row.v),
               report::fmt_percent(r.boundary_s / r.runtime_s), row.paper});
  }
  t.render(std::cout);
  std::cout << "\nMechanism: boundary loops move almost no data, so their "
               "cost is launch latency\n(large under DPC++'s OpenCL driver "
               "on CPUs, small for OpenSYCL's compile-time OpenMP).\n";
  return 0;
}
