#pragma once
/// \file usm.hpp
/// miniSYCL unified shared memory. Device == host here, so every USM
/// flavour is host memory; a registry tracks outstanding allocations so
/// tests can assert leak-freedom (the moral equivalent of running under
/// a USM-aware sanitizer).

#include <cstddef>
#include <mutex>
#include <new>
#include <unordered_map>

#include "sycl/queue.hpp"

namespace sycl {

namespace detail {
class usm_registry {
 public:
  static usm_registry& instance() {
    static usm_registry r;
    return r;
  }
  void add(void* p, std::size_t bytes) {
    std::lock_guard lock(mu_);
    allocs_[p] = bytes;
  }
  bool remove(void* p) {
    std::lock_guard lock(mu_);
    return allocs_.erase(p) > 0;
  }
  [[nodiscard]] std::size_t outstanding() const {
    std::lock_guard lock(mu_);
    return allocs_.size();
  }
  [[nodiscard]] std::size_t outstanding_bytes() const {
    std::lock_guard lock(mu_);
    std::size_t total = 0;
    for (const auto& [p, b] : allocs_) total += b;
    return total;
  }

 private:
  mutable std::mutex mu_;
  std::unordered_map<void*, std::size_t> allocs_;
};
}  // namespace detail

template <typename T>
[[nodiscard]] T* malloc_device(std::size_t count, const queue&) {
  T* p = static_cast<T*>(::operator new(count * sizeof(T), std::align_val_t{64}));
  detail::usm_registry::instance().add(p, count * sizeof(T));
  return p;
}

template <typename T>
[[nodiscard]] T* malloc_shared(std::size_t count, const queue& q) {
  return malloc_device<T>(count, q);
}

template <typename T>
[[nodiscard]] T* malloc_host(std::size_t count, const queue& q) {
  return malloc_device<T>(count, q);
}

inline void free(void* ptr, const queue&) {
  if (ptr == nullptr) return;
  // Freeing USM is a synchronization point for commands that declared
  // this allocation in their footprint (via handler::require).
  detail::sync_host_access(ptr);
  detail::usm_registry::instance().remove(ptr);
  ::operator delete(ptr, std::align_val_t{64});
}

/// Number of live USM allocations (test hook).
[[nodiscard]] inline std::size_t usm_outstanding() {
  return detail::usm_registry::instance().outstanding();
}

}  // namespace sycl
