#pragma once
/// \file thread_pool.hpp
/// A minimal persistent thread pool used as the execution substrate for
/// the miniSYCL SIMT executor and the OpenMP-like native backends.
///
/// The pool hands out chunk indices from an atomic counter (dynamic
/// self-scheduling); the calling thread participates in the work so a
/// pool of size 1 degenerates to serial execution without deadlock.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace syclport::rt {

class ThreadPool {
 public:
  /// Create a pool with `threads` workers (>= 1). The pool owns
  /// `threads - 1` background threads; the submitting thread acts as
  /// worker 0.
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of workers (including the submitting thread).
  [[nodiscard]] unsigned size() const noexcept { return threads_; }

  /// Execute `fn(chunk)` for every chunk in [0, nchunks), distributing
  /// chunks dynamically over the workers. Blocks until all complete.
  /// Exceptions thrown by `fn` are captured and the first one rethrown.
  void run_chunks(std::size_t nchunks, const std::function<void(std::size_t)>& fn);

  /// Convenience: split [0, n) into roughly `size()*4` ranges and call
  /// `fn(begin, end)` for each.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& fn);

  /// The process-wide pool. Size from SYCLPORT_THREADS env var, default
  /// std::thread::hardware_concurrency() (min 2 so concurrency bugs in
  /// kernels surface even on single-core CI machines).
  static ThreadPool& global();

 private:
  void worker_loop(unsigned worker_id);
  void work(unsigned worker_id);

  unsigned threads_;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  std::uint64_t generation_ = 0;
  std::size_t pending_workers_ = 0;
  bool stop_ = false;

  // Current job (valid while pending_workers_ > 0).
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::size_t job_chunks_ = 0;
  std::atomic<std::size_t> next_chunk_{0};
  std::exception_ptr first_error_;
};

}  // namespace syclport::rt
