#pragma once
/// \file range.hpp
/// miniSYCL index-space types: sycl::range, sycl::id and sycl::nd_range.
/// This is a from-scratch implementation of the SYCL 2020 subset used by
/// the study (see DESIGN.md §2); it executes on the host via the
/// syclport runtime but preserves SYCL semantics, including the
/// flat-range vs nd_range distinction at the heart of the paper.

#include <array>
#include <cstddef>
#include <stdexcept>

namespace sycl {

template <int Dims = 1>
class range {
  static_assert(Dims >= 1 && Dims <= 3, "SYCL ranges are 1-3 dimensional");

 public:
  range() = default;
  explicit range(std::size_t d0)
    requires(Dims == 1)
      : v_{d0} {}
  range(std::size_t d0, std::size_t d1)
    requires(Dims == 2)
      : v_{d0, d1} {}
  range(std::size_t d0, std::size_t d1, std::size_t d2)
    requires(Dims == 3)
      : v_{d0, d1, d2} {}

  [[nodiscard]] std::size_t get(int dim) const { return v_[static_cast<std::size_t>(dim)]; }
  [[nodiscard]] std::size_t& operator[](int dim) { return v_[static_cast<std::size_t>(dim)]; }
  [[nodiscard]] std::size_t operator[](int dim) const { return v_[static_cast<std::size_t>(dim)]; }

  /// Total number of work-items in the range.
  [[nodiscard]] std::size_t size() const {
    std::size_t s = 1;
    for (int d = 0; d < Dims; ++d) s *= v_[static_cast<std::size_t>(d)];
    return s;
  }

  friend bool operator==(const range&, const range&) = default;

 private:
  std::array<std::size_t, static_cast<std::size_t>(Dims)> v_{};
};

template <int Dims = 1>
class id {
  static_assert(Dims >= 1 && Dims <= 3);

 public:
  id() = default;
  explicit id(std::size_t d0)
    requires(Dims == 1)
      : v_{d0} {}
  id(std::size_t d0, std::size_t d1)
    requires(Dims == 2)
      : v_{d0, d1} {}
  id(std::size_t d0, std::size_t d1, std::size_t d2)
    requires(Dims == 3)
      : v_{d0, d1, d2} {}

  [[nodiscard]] std::size_t get(int dim) const { return v_[static_cast<std::size_t>(dim)]; }
  [[nodiscard]] std::size_t& operator[](int dim) { return v_[static_cast<std::size_t>(dim)]; }
  [[nodiscard]] std::size_t operator[](int dim) const { return v_[static_cast<std::size_t>(dim)]; }

  friend bool operator==(const id&, const id&) = default;

 private:
  std::array<std::size_t, static_cast<std::size_t>(Dims)> v_{};
};

/// Global + local (work-group) shape for an nd_range launch. The local
/// range must divide the global range exactly, as in SYCL.
template <int Dims = 1>
class nd_range {
 public:
  nd_range(range<Dims> global, range<Dims> local)
      : global_(global), local_(local) {
    for (int d = 0; d < Dims; ++d) {
      if (local[d] == 0 || global[d] % local[d] != 0)
        throw std::invalid_argument(
            "nd_range: local range must evenly divide global range");
    }
  }

  [[nodiscard]] range<Dims> get_global_range() const { return global_; }
  [[nodiscard]] range<Dims> get_local_range() const { return local_; }
  [[nodiscard]] range<Dims> get_group_range() const {
    range<Dims> g = global_;
    for (int d = 0; d < Dims; ++d) g[d] = global_[d] / local_[d];
    return g;
  }

 private:
  range<Dims> global_;
  range<Dims> local_;
};

namespace detail {
/// Row-major linearization (matches SYCL's linear id convention where
/// the last dimension moves fastest).
template <int Dims>
[[nodiscard]] inline std::size_t linearize(const id<Dims>& i,
                                           const range<Dims>& r) {
  std::size_t lin = 0;
  for (int d = 0; d < Dims; ++d) lin = lin * r[d] + i[d];
  return lin;
}

template <int Dims>
[[nodiscard]] inline id<Dims> delinearize(std::size_t lin,
                                          const range<Dims>& r) {
  id<Dims> out;
  for (int d = Dims - 1; d >= 0; --d) {
    out[d] = lin % r[d];
    lin /= r[d];
  }
  return out;
}
}  // namespace detail

}  // namespace sycl
