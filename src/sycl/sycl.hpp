#pragma once
/// \file sycl.hpp
/// Umbrella header for miniSYCL - the from-scratch implementation of
/// the SYCL 2020 subset used by this study (DESIGN.md §2). Application
/// and DSL code includes only this header.

#include "sycl/access.hpp"            // IWYU pragma: export
#include "sycl/atomic.hpp"            // IWYU pragma: export
#include "sycl/buffer.hpp"            // IWYU pragma: export
#include "sycl/device.hpp"            // IWYU pragma: export
#include "sycl/event.hpp"             // IWYU pragma: export
#include "sycl/exception.hpp"         // IWYU pragma: export
#include "sycl/group_algorithms.hpp"  // IWYU pragma: export
#include "sycl/handler.hpp"           // IWYU pragma: export
#include "sycl/item.hpp"              // IWYU pragma: export
#include "sycl/launch_log.hpp"        // IWYU pragma: export
#include "sycl/local_accessor.hpp"    // IWYU pragma: export
#include "sycl/property.hpp"          // IWYU pragma: export
#include "sycl/queue.hpp"             // IWYU pragma: export
#include "sycl/range.hpp"             // IWYU pragma: export
#include "sycl/reduction.hpp"         // IWYU pragma: export
#include "sycl/sub_group.hpp"         // IWYU pragma: export
#include "sycl/usm.hpp"               // IWYU pragma: export
#include "sycl/vec.hpp"               // IWYU pragma: export
