# Empty compiler generated dependencies file for ablation_storenone.
# This may be replaced when dependencies are built.
