#include "sycl/detail/local_arena.hpp"

#include <cstring>
#include <unordered_map>
#include <vector>

namespace sycl::detail {

namespace {
thread_local std::unordered_map<const void*, std::vector<char>> t_arena;
}

void* local_alloc(const void* key, std::size_t bytes) {
  auto [it, inserted] = t_arena.try_emplace(key);
  if (inserted || it->second.size() < bytes) it->second.assign(bytes, 0);
  return it->second.data();
}

void local_reset() { t_arena.clear(); }

}  // namespace sycl::detail
