#pragma once
/// \file report.hpp
/// Plain-text reporting: aligned tables, horizontal ASCII bar charts
/// (the stand-in for the paper's figures), and CSV emission so the data
/// behind every figure can be re-plotted.

#include <iosfwd>
#include <string>
#include <vector>

namespace syclport::report {

/// A rectangular table of strings with a header row, rendered with
/// aligned columns.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append one row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Number of data rows.
  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

  /// Render with column alignment and a rule under the header.
  void render(std::ostream& os) const;

  /// Emit as CSV (RFC-4180 quoting for commas/quotes/newlines).
  void write_csv(std::ostream& os) const;

  /// Convenience: write CSV to `path`; returns false on I/O failure.
  bool save_csv(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// One bar of a bar chart. `value <= 0` with a non-empty `note` renders
/// the note instead of a bar (used for failed/unsupported variants,
/// mirroring the gaps in the paper's figures).
struct Bar {
  std::string label;
  double value = 0.0;
  std::string note;
};

/// A group of bars under a common title (one application cluster in the
/// paper's runtime figures).
struct BarGroup {
  std::string title;
  std::vector<Bar> bars;
};

/// Render grouped horizontal bars scaled to `width` characters, with the
/// numeric value (formatted with `unit`) after each bar.
void render_bars(std::ostream& os, const std::vector<BarGroup>& groups,
                 const std::string& unit, int width = 48);

/// Format helpers.
[[nodiscard]] std::string fmt(double v, int precision = 2);
[[nodiscard]] std::string fmt_percent(double fraction, int precision = 1);

}  // namespace syclport::report
