file(REMOVE_RECURSE
  "libminisycl.a"
)
