#include "op2/plan.hpp"

#include <algorithm>
#include <stdexcept>

namespace syclport::op2 {

namespace {

/// OP2-style iterative greedy colouring of `ids` (element or block ids):
/// repeated passes, each pass claims targets first-come-first-served and
/// assigns the pass colour to every claimable element. `targets_of(id)`
/// yields the conflict targets. Returns the number of colours used and
/// fills `colour`.
template <typename TargetsOf>
int greedy_colour(std::size_t n, std::size_t ntargets, TargetsOf&& targets_of,
                  std::vector<int>& colour) {
  colour.assign(n, -1);
  std::vector<unsigned char> claimed(ntargets);
  std::size_t remaining = n;
  int c = 0;
  while (remaining > 0) {
    std::fill(claimed.begin(), claimed.end(), 0);
    for (std::size_t e = 0; e < n; ++e) {
      if (colour[e] >= 0) continue;
      bool free = true;
      targets_of(e, [&](int t) {
        if (claimed[static_cast<std::size_t>(t)]) free = false;
      });
      if (!free) continue;
      targets_of(e, [&](int t) { claimed[static_cast<std::size_t>(t)] = 1; });
      colour[e] = c;
      --remaining;
    }
    ++c;
    if (c > 4096)
      throw std::runtime_error("greedy_colour: colour explosion (bad map?)");
  }
  return c;
}

}  // namespace

Plan build_plan(const Map& map, Strategy strategy, std::size_t block_size) {
  Plan p;
  p.strategy = strategy;
  p.nelems = map.from().size();
  p.block_size = block_size;
  const std::size_t ntargets = map.to().size();
  const int arity = map.arity();

  auto elem_targets = [&](std::size_t e, auto&& fn) {
    for (int i = 0; i < arity; ++i) fn(map.at(e, i));
  };

  switch (strategy) {
    case Strategy::Atomics:
    case Strategy::None:
    case Strategy::Staged:  // identity order; races resolved by staging
      break;

    case Strategy::GlobalColor: {
      p.ncolours = greedy_colour(p.nelems, ntargets, elem_targets, p.colour);
      p.elements_by_colour.assign(static_cast<std::size_t>(p.ncolours), {});
      for (std::size_t e = 0; e < p.nelems; ++e)
        p.elements_by_colour[static_cast<std::size_t>(p.colour[e])].push_back(
            static_cast<int>(e));
      break;
    }

    case Strategy::Hierarchical: {
      p.nblocks = (p.nelems + block_size - 1) / block_size;
      auto block_targets = [&](std::size_t blk, auto&& fn) {
        const std::size_t b = blk * block_size;
        const std::size_t e_end = std::min(p.nelems, b + block_size);
        for (std::size_t e = b; e < e_end; ++e)
          for (int i = 0; i < arity; ++i) fn(map.at(e, i));
      };
      p.nblock_colours =
          greedy_colour(p.nblocks, ntargets, block_targets, p.block_colour);
      p.blocks_by_colour.assign(static_cast<std::size_t>(p.nblock_colours), {});
      for (std::size_t blk = 0; blk < p.nblocks; ++blk)
        p.blocks_by_colour[static_cast<std::size_t>(p.block_colour[blk])]
            .push_back(static_cast<int>(blk));

      // Intra-block colouring: elements within one block conflict on
      // shared targets; colour each block independently. Per target we
      // track the highest colour used and the block that used it, so no
      // per-block reset pass is needed.
      p.intra_colour.assign(p.nelems, -1);
      std::vector<int> seen_colour(ntargets, -1);
      std::vector<int> seen_block(ntargets, -1);
      for (std::size_t blk = 0; blk < p.nblocks; ++blk) {
        const std::size_t b = blk * block_size;
        const std::size_t e_end = std::min(p.nelems, b + block_size);
        for (std::size_t e = b; e < e_end; ++e) {
          int c = 0;
          for (int i = 0; i < arity; ++i) {
            const auto t = static_cast<std::size_t>(map.at(e, i));
            if (seen_block[t] == static_cast<int>(blk))
              c = std::max(c, seen_colour[t] + 1);
          }
          p.intra_colour[e] = c;
          p.max_intra_colours = std::max(p.max_intra_colours, c + 1);
          for (int i = 0; i < arity; ++i) {
            const auto t = static_cast<std::size_t>(map.at(e, i));
            if (seen_block[t] != static_cast<int>(blk)) {
              seen_block[t] = static_cast<int>(blk);
              seen_colour[t] = c;
            } else {
              seen_colour[t] = std::max(seen_colour[t], c);
            }
          }
        }
      }
      break;
    }
  }
  return p;
}

bool validate_plan(const Plan& plan, const Map& map) {
  const std::size_t ntargets = map.to().size();
  const int arity = map.arity();

  if (plan.strategy == Strategy::GlobalColor) {
    std::vector<int> owner(ntargets, -1);
    for (int c = 0; c < plan.ncolours; ++c) {
      std::fill(owner.begin(), owner.end(), -1);
      for (int e : plan.elements_by_colour[static_cast<std::size_t>(c)]) {
        for (int i = 0; i < arity; ++i) {
          const auto t = static_cast<std::size_t>(
              map.at(static_cast<std::size_t>(e), i));
          if (owner[t] >= 0) return false;  // two same-colour elems share t
          owner[t] = e;
        }
      }
    }
    return true;
  }

  if (plan.strategy == Strategy::Hierarchical) {
    // Same-colour blocks must not share targets.
    std::vector<int> block_of(ntargets, -1);
    for (int c = 0; c < plan.nblock_colours; ++c) {
      std::fill(block_of.begin(), block_of.end(), -1);
      for (int blk : plan.blocks_by_colour[static_cast<std::size_t>(c)]) {
        const std::size_t b = static_cast<std::size_t>(blk) * plan.block_size;
        const std::size_t e_end = std::min(plan.nelems, b + plan.block_size);
        for (std::size_t e = b; e < e_end; ++e)
          for (int i = 0; i < arity; ++i) {
            const auto t = static_cast<std::size_t>(map.at(e, i));
            if (block_of[t] >= 0 && block_of[t] != blk) return false;
            block_of[t] = blk;
          }
      }
    }
    // Within each block, no two elements of the same intra-colour may
    // share a target: record (block, colour) pairs per target.
    {
      std::vector<int> tag_block(ntargets, -1);
      std::vector<std::vector<char>> tag_colours(ntargets);
      for (std::size_t blk = 0; blk < plan.nblocks; ++blk) {
        const std::size_t b = blk * plan.block_size;
        const std::size_t e_end = std::min(plan.nelems, b + plan.block_size);
        for (std::size_t e = b; e < e_end; ++e) {
          const auto c = static_cast<std::size_t>(plan.intra_colour[e]);
          for (int i = 0; i < arity; ++i) {
            const auto t = static_cast<std::size_t>(map.at(e, i));
            if (tag_block[t] != static_cast<int>(blk)) {
              tag_block[t] = static_cast<int>(blk);
              tag_colours[t].assign(
                  static_cast<std::size_t>(plan.max_intra_colours), 0);
            }
            if (tag_colours[t][c]) return false;
            tag_colours[t][c] = 1;
          }
        }
      }
    }
    return true;
  }
  return true;  // atomics: nothing to validate
}

}  // namespace syclport::op2
