// Ablation: cross-loop fusion - headroom vs delivered. OPS's
// lazy-execution tiling (Reguly et al.) fuses consecutive sweeps so
// intermediate arrays stay in cache; the paper's conclusion that "a
// single algorithmic variant ... will not be performance portable"
// (§4.4) includes exactly this kind of schedule transformation.
//
// Two tables:
//  - headroom (model-only, paper-scale schedules): the historical
//    whole-loop pairwise estimate next to the name-level dependence
//    bound, which partitions the schedule with the capture-side
//    legality rules (WAR/WAW cuts, reduction termination) and only
//    counts producer->consumer bytes whose access boxes actually
//    intersect;
//  - delivered (executed at bench scale): each app runs once with
//    SYCLPORT_FUSION=off (the bit-exact reference) and once with =on;
//    the fused run's eliminated bytes come from the launch log's
//    fusion records and are compared against both the pairwise bound
//    and hwmodel's prediction for the same schedule.
//
// Exit status is nonzero if a fused run is not bit-exact with fusion
// off, or if CloverLeaf2D / Acoustic fall short of eliminating half of
// the pairwise bound, or if measured and predicted savings disagree by
// more than 2x (docs/fusion.md).

#include <cmath>
#include <cstdlib>
#include <iostream>

#include "common/figures.hpp"
#include "core/report.hpp"
#include "hwmodel/memory_model.hpp"
#include "hwmodel/tuning_priors.hpp"
#include "sycl/launch_log.hpp"

using namespace syclport;

namespace {

/// Historical upper bound on fusable traffic ("pairwise"): for each
/// consecutive pair of interior loops, the overlap between the earlier
/// loop's writes and the later loop's reads at whole-loop granularity
/// (byte volumes only - no dat identities, no legality). Kept so the
/// dependence bound and the delivered savings have a fixed yardstick.
double pairwise_bound(const std::vector<hw::LoopProfile>& profiles) {
  double saved = 0.0;
  for (std::size_t i = 1; i < profiles.size(); ++i) {
    const auto& prev = profiles[i - 1];
    const auto& cur = profiles[i];
    if (prev.cls != hw::KernelClass::Interior ||
        cur.cls != hw::KernelClass::Interior)
      continue;
    saved += 2.0 * std::min(prev.bytes_written, cur.bytes_read);
  }
  return saved;
}

struct Case {
  AppId app;
  apps::RunSummary (*run)(const ops::Options&, apps::ProblemSize);
  apps::ProblemSize model_ps;  ///< paper-scale schedule (model-only)
  apps::ProblemSize exec_ps;   ///< bench-scale executed run
  bool acceptance;             ///< gate the >=50% elimination check
};

const Case kCases[] = {
    {AppId::CloverLeaf2D, apps::run_cloverleaf2d,
     {{1536, 1536, 1}, 5}, {{768, 768, 1}, 3}, true},
    {AppId::CloverLeaf3D, apps::run_cloverleaf3d,
     {{96, 96, 96}, 5}, {{48, 48, 48}, 2}, false},
    {AppId::OpenSBLI_SA, apps::run_opensbli_sa,
     {{96, 96, 96}, 5}, {{48, 48, 48}, 2}, false},
    {AppId::OpenSBLI_SN, apps::run_opensbli_sn,
     {{96, 96, 96}, 5}, {{48, 48, 48}, 2}, false},
    {AppId::RTM, apps::run_rtm, {{128, 128, 128}, 5}, {{96, 96, 96}, 3},
     false},
    {AppId::Acoustic, apps::run_acoustic, {{128, 128, 128}, 5},
     {{96, 96, 96}, 3}, true},
};

}  // namespace

int main() {
  const hw::Platform& host = hw::nearest_host_platform();
  std::cout << "=== Ablation: cross-loop fusion headroom ===\n\n";

  report::Table head({"app", "schedule", "pairwise bound", "dependence bound",
                      "predicted saved", "tile"});
  for (const Case& c : kCases) {
    ops::Options o;
    o.mode = ops::Mode::ModelOnly;
    const auto rs = c.run(o, c.model_ps);
    double total = 0.0;
    for (const auto& lp : rs.profiles) total += lp.total_bytes();
    const double pairwise = pairwise_bound(rs.profiles);
    const hw::FusedTraffic ft = hw::fused_traffic_estimate(host, rs.profiles);
    head.add_row({std::string(to_string(c.app)),
                  report::fmt(total / 1e9, 2) + " GB",
                  report::fmt(pairwise / 1e9, 2) + " GB",
                  report::fmt(ft.fusable_bytes / 1e9, 2) + " GB",
                  report::fmt(ft.saved_bytes() / 1e9, 2) + " GB",
                  std::to_string(ft.tile_rows)});
  }
  head.render(std::cout);
  head.save_csv("ablation_fusion_headroom.csv");

  std::cout << "\n=== Delivered: SYCLPORT_FUSION=on vs off ===\n\n";
  report::Table del({"app", "bit-exact", "pairwise bound", "eliminated",
                     "of bound", "predicted", "meas/pred"});
  auto& log = ::sycl::launch_log::instance();
  bool ok = true;
  for (const Case& c : kCases) {
    ops::Options o;
    // Serial backend: the Threads reductions combine chunks in
    // work-stealing order, so their sums are not run-to-run
    // reproducible - bit-exactness of the *schedule* needs a
    // deterministic reducer underneath.
    o.backend = ops::Backend::Serial;
    setenv("SYCLPORT_FUSION", "off", 1);
    const auto rs_off = c.run(o, c.exec_ps);

    log.clear();
    log.set_enabled(true);
    setenv("SYCLPORT_FUSION", "on", 1);
    const auto rs_on = c.run(o, c.exec_ps);
    const ::sycl::FusionStats fstats = log.fusion_stats();
    log.set_enabled(false);

    const bool bit_exact = rs_off.checksum == rs_on.checksum;
    const double pairwise = pairwise_bound(rs_on.profiles);
    const double predicted =
        hw::fused_traffic_estimate(host, rs_on.profiles).saved_bytes();
    const double measured = fstats.eliminated_bytes;
    const double of_bound = pairwise > 0.0 ? measured / pairwise : 0.0;
    const double ratio = predicted > 0.0 ? measured / predicted : 0.0;

    if (!bit_exact) ok = false;
    if (c.acceptance &&
        (of_bound < 0.5 || ratio < 0.5 || ratio > 2.0))
      ok = false;

    del.add_row({std::string(to_string(c.app)), bit_exact ? "yes" : "NO",
                 report::fmt(pairwise / 1e6, 1) + " MB",
                 report::fmt(measured / 1e6, 1) + " MB",
                 report::fmt_percent(of_bound),
                 report::fmt(predicted / 1e6, 1) + " MB",
                 report::fmt(ratio, 2)});
  }
  unsetenv("SYCLPORT_FUSION");
  del.render(std::cout);
  del.save_csv("ablation_fusion_delivered.csv");

  std::cout <<
      "\nThe dependence bound is what a legal fused schedule may touch:\n"
      "the pairwise estimate double-counts pairs a WAR edge or a\n"
      "reduction forbids, and misses nothing the partitioner allows.\n"
      "Store-All's derivative arrays (written then immediately read)\n"
      "give it the largest headroom - Store-None is, in effect, the\n"
      "manually fused variant, which is why both formulations exist.\n";
  std::cout << (ok ? "\nRESULT: PASS\n" : "\nRESULT: FAIL\n");
  return ok ? 0 : 1;
}
