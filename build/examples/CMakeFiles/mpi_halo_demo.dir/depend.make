# Empty dependencies file for mpi_halo_demo.
# This may be replaced when dependencies are built.
