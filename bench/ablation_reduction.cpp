// Ablation: reduction handling on CPU SYCL (paper §4.2: "reductions
// take 6-7x more time with SYCL compared to OpenMP" - the user-defined
// binary-tree fallback). Models CloverLeaf 2D's calc_dt reduction loop
// on the Xeon under each variant family.

#include <iostream>

#include "common/figures.hpp"
#include "core/report.hpp"
#include "hwmodel/device_model.hpp"

using namespace syclport;

int main() {
  study::StudyRunner runner;
  std::cout << "=== Ablation: CPU SYCL reduction cost ===\n\n";

  // Pull the calc_dt profiles from the CloverLeaf 2D schedule.
  const Variant omp{Model::MPI_OpenMP, Toolchain::Native};
  const auto base = runner.run(AppId::CloverLeaf2D, PlatformId::Xeon8360Y, omp);
  (void)base;  // warms the schedule cache

  report::Table t({"variant", "reduction-loop time (modeled)",
                   "vs MPI+OpenMP"});
  double ref = 0.0;
  struct Row { Variant v; };
  for (const Variant v :
       {omp, Variant{Model::SYCLNDRange, Toolchain::DPCPP},
        Variant{Model::SYCLNDRange, Toolchain::OpenSYCL}}) {
    // Model one representative reduction sweep directly.
    hw::LoopProfile lp;
    lp.name = "calc_dt";
    lp.cls = hw::KernelClass::Reduction;
    lp.reduction = hw::ReductionKind::Tree;
    lp.dims = 2;
    lp.extent = {7680, 7680, 1};
    lp.bytes_read = 3.0 * 7680 * 7680 * 8;
    lp.cache_access_bytes = lp.bytes_read;
    lp.n_arrays = 3;
    lp.working_set = lp.bytes_read;
    const hw::DeviceModel dm(PlatformId::Xeon8360Y, v, AppId::CloverLeaf2D);
    const double secs = dm.kernel_time(lp).seconds;
    if (ref == 0.0) ref = secs;
    t.add_row({to_string(v), report::fmt(secs * 1e3, 2) + " ms",
               report::fmt(secs / ref, 1) + "x"});
  }
  t.render(std::cout);
  std::cout << "\nPaper S4.2: 6-7x - SYCL 2020 built-in reductions were "
               "unsupported (OpenSYCL) or\nfailed to compile (DPC++), forcing "
               "user binary-tree reductions in local memory\n(implemented in "
               "ops/tree_reduction.hpp and exercised by the test suite).\n";
  return 0;
}
