#pragma once
/// \file op2/checkpoint.hpp
/// Checkpoint/restart for OP2 dats: the unstructured-mesh counterpart
/// of ops/checkpoint.hpp. Snapshot a set of dats into one CRC-tagged
/// file and roll back to it later; rollback-and-recompute reproduces
/// the uncheckpointed answer bit-exactly for deterministic kernels.
///
/// Serialized state is *canonical*: original element order (undoing any
/// renumbering the set accumulated) in AoS component order, whatever
/// the dats' current physical layout. A checkpoint taken under one
/// (ordering, layout) therefore restores bit-identically into a mesh
/// running under any other - renumbering and the autotuner's relayout
/// decisions never leak into saved state (docs/unstructured.md).
/// Regions are keyed by dat name; format and validation live in
/// rt::fault::Snapshot.

#include <string>
#include <tuple>
#include <vector>

#include "op2/context.hpp"
#include "op2/dat.hpp"
#include "runtime/fault/checkpoint.hpp"

namespace syclport::op2 {

/// Snapshot `dats` to `path` (atomic write; see Snapshot::save).
template <typename... Ts>
void checkpoint(Context& ctx, const std::string& path, Dat<Ts>&... dats) {
  ctx.queue.wait();
  rt::fault::Snapshot snap;
  auto canon = std::make_tuple(dats.canonical_values()...);
  std::apply(
      [&](auto&... vs) {
        (snap.add(dats.name(), vs.data(), vs.size() * sizeof(Ts)), ...);
      },
      canon);
  snap.save(path);
}

/// Roll `dats` back to the state saved at `path`. All-or-nothing:
/// throws rt::fault::checkpoint_error leaving every dat untouched when
/// the file is damaged or does not match the registered dats.
template <typename... Ts>
void restore(Context& ctx, const std::string& path, Dat<Ts>&... dats) {
  ctx.queue.wait();
  rt::fault::Snapshot snap;
  // Stage the file into canonical-order buffers first (sized, and left
  // untouched on a failed restore), then scatter into the dats' current
  // layout/ordering.
  auto canon = std::make_tuple(dats.canonical_values()...);
  std::apply(
      [&](auto&... vs) {
        (snap.add(dats.name(), vs.data(), vs.size() * sizeof(Ts)), ...);
      },
      canon);
  snap.restore(path);
  std::apply([&](auto&... vs) { (dats.assign_canonical(vs), ...); }, canon);
}

}  // namespace syclport::op2
