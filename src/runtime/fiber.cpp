#include "runtime/fiber.hpp"

#include <cstdint>
#include <stdexcept>

namespace syclport::rt {

namespace {
thread_local Fiber* t_current_fiber = nullptr;

/// Per-thread flag set while executing the fast (loop) portion of a
/// barrier group; a barrier there violates SYCL barrier uniformity.
thread_local bool t_fast_group_active = false;
}  // namespace

Fiber::Fiber(std::function<void()> fn, std::size_t stack_bytes)
    : fn_(std::move(fn)), stack_(new char[stack_bytes]) {
  if (getcontext(&ctx_) != 0)
    throw std::runtime_error("Fiber: getcontext failed");
  ctx_.uc_stack.ss_sp = stack_.get();
  ctx_.uc_stack.ss_size = stack_bytes;
  ctx_.uc_link = &caller_;
  makecontext(&ctx_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 0);
}

Fiber::~Fiber() = default;

void Fiber::trampoline() {
  Fiber* self = t_current_fiber;
  try {
    self->fn_();
  } catch (...) {
    self->error_ = std::current_exception();
  }
  self->done_ = true;
  // uc_link returns control to the caller context automatically.
}

bool Fiber::resume() {
  if (done_) return false;
  Fiber* prev = t_current_fiber;
  t_current_fiber = this;
  started_ = true;
  if (swapcontext(&caller_, &ctx_) != 0)
    throw std::runtime_error("Fiber: swapcontext failed");
  t_current_fiber = prev;
  if (error_) std::rethrow_exception(error_);
  return !done_;
}

void Fiber::yield() {
  Fiber* self = t_current_fiber;
  if (self == nullptr)
    throw std::logic_error("Fiber::yield called outside a fiber");
  if (swapcontext(&self->ctx_, &self->caller_) != 0)
    throw std::runtime_error("Fiber: swapcontext failed");
}

bool inside_barrier_group() noexcept {
  return t_fast_group_active || t_current_fiber != nullptr;
}

void group_barrier() {
  if (t_current_fiber != nullptr) {
    Fiber::yield();
    return;
  }
  if (t_fast_group_active)
    throw std::logic_error(
        "group_barrier: non-uniform barrier (work-item 0 did not reach it)");
  throw std::logic_error("group_barrier called outside a work-group");
}

bool run_barrier_group(std::size_t n,
                       const std::function<void(std::size_t)>& task) {
  if (n == 0) return false;

  // Probe: work-item 0 runs as a fiber. If it never yields, the kernel
  // has no barriers (uniformity) and the rest run as a plain loop.
  auto probe = std::make_unique<Fiber>([&task] { task(0); });
  if (!probe->resume()) {
    t_fast_group_active = true;
    try {
      for (std::size_t i = 1; i < n; ++i) task(i);
    } catch (...) {
      t_fast_group_active = false;
      throw;
    }
    t_fast_group_active = false;
    return false;
  }

  // Fiber mode: probe is suspended at its first barrier; give every
  // other work-item a fiber and round-robin until all complete.
  std::vector<std::unique_ptr<Fiber>> fibers;
  fibers.reserve(n);
  fibers.push_back(std::move(probe));
  for (std::size_t i = 1; i < n; ++i)
    fibers.push_back(std::make_unique<Fiber>([&task, i] { task(i); }));

  // The probe already sits at its first barrier; bring every other
  // work-item to the same point before starting full rounds, so that no
  // fiber ever runs past barrier k before all have reached barrier k.
  for (std::size_t i = 1; i < n; ++i) fibers[i]->resume();

  bool any_live = true;
  while (any_live) {
    any_live = false;
    for (auto& f : fibers)
      if (!f->done() && f->resume()) any_live = true;
  }
  return true;
}

}  // namespace syclport::rt
