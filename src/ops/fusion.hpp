#pragma once
/// \file fusion.hpp
/// Default-on capture front end for the structured apps: a FusedScope
/// region records every loop issued through it into a LoopChain and
/// flushes the captured dataflow as fused sweeps (docs/fusion.md).
///
/// The SYCLPORT_FUSION knob selects the policy:
///   auto (default)  capture; the autotuner races fuse on/off per chain
///                   site (kFuse axis), hwmodel decides when tuning is
///                   off;
///   on              capture and pin fuse=on (tile depth still tuned);
///   off             bypass capture entirely - loops run eagerly in
///                   program order, the bit-exact reference schedule.
///
/// A flush() is required before any host-side read of a written dat,
/// pointer swap between captured dats, or checksum - the apps flush
/// once per time step (the natural chain boundary: the step's trailing
/// swap/reduction consumes everything).

#include <cstdint>
#include <exception>
#include <optional>
#include <string_view>

#include "ops/loop_chain.hpp"
#include "runtime/env.hpp"

namespace syclport::ops {

enum class FusionMode : std::uint8_t { Auto, On, Off };

/// Parse SYCLPORT_FUSION=on|off|auto (default auto; malformed values
/// warn once and fall back to auto, like every SYCLPORT_* knob).
[[nodiscard]] inline FusionMode fusion_mode() {
  static constexpr std::string_view kAllowed[] = {"auto", "on", "off"};
  switch (rt::env::get_choice("SYCLPORT_FUSION", kAllowed).value_or(0)) {
    case 1: return FusionMode::On;
    case 2: return FusionMode::Off;
    default: return FusionMode::Auto;
  }
}

class FusedScope {
 public:
  FusedScope(Context& ctx, Block& block)
      : ctx_(&ctx), block_(&block), chain_(ctx, block) {
    const FusionMode m = fusion_mode();
    capture_ = m != FusionMode::Off;
    force_fuse_ = m == FusionMode::On ? std::optional<bool>(true)
                                      : std::nullopt;
  }
  FusedScope(const FusedScope&) = delete;
  FusedScope& operator=(const FusedScope&) = delete;
  ~FusedScope() {
    // Flush a forgotten tail capture, but never during the unwind of
    // another exception (the chain clears itself either way).
    if (std::uncaught_exceptions() == 0) flush();
  }

  /// Issue one loop (full interior).
  template <typename K, typename... Args>
  void loop(Meta meta, K kernel, Args... args) {
    loop(meta, Range::all(*block_), kernel, args...);
  }

  /// Issue one loop over an explicit range.
  template <typename K, typename... Args>
  void loop(Meta meta, Range r, K kernel, Args... args) {
    if (capture_)
      chain_.enqueue(meta, r, kernel, args...);
    else
      par_loop(*ctx_, meta, *block_, r, kernel, args...);
  }

  /// Execute everything captured so far as fused segments.
  void flush() {
    if (!capture_ || chain_.size() == 0) return;
    chain_.execute(std::nullopt, force_fuse_);
    fusable_bytes_ += chain_.last_fusable_bytes();
    eliminated_bytes_ += chain_.last_eliminated_bytes();
  }

  [[nodiscard]] bool capturing() const { return capture_; }
  /// Accumulated over all flushes of this scope.
  [[nodiscard]] double fusable_bytes() const { return fusable_bytes_; }
  [[nodiscard]] double eliminated_bytes() const { return eliminated_bytes_; }

 private:
  Context* ctx_;
  Block* block_;
  LoopChain chain_;
  bool capture_ = false;
  std::optional<bool> force_fuse_;
  double fusable_bytes_ = 0.0;
  double eliminated_bytes_ = 0.0;
};

}  // namespace syclport::ops
