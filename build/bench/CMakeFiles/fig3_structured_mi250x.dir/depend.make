# Empty dependencies file for fig3_structured_mi250x.
# This may be replaced when dependencies are built.
