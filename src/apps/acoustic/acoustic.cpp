#include "apps/acoustic/acoustic.hpp"

#include <algorithm>
#include <cmath>

#include "ops/fusion.hpp"

namespace syclport::apps {

namespace {
constexpr float kC0 = -205.0f / 72.0f;
constexpr float kC1 = 8.0f / 5.0f;
constexpr float kC2 = -1.0f / 5.0f;
constexpr float kC3 = 8.0f / 315.0f;
constexpr float kC4 = -1.0f / 560.0f;
constexpr double kLapFlops = 43.0;
constexpr double kUpdateFlops = 4.0;

/// Sponge thickness in points; clamped for small validation grids.
long sponge_width(long extent) { return std::max<long>(2, std::min<long>(20, extent / 6)); }
}  // namespace

RunSummary run_acoustic(const ops::Options& opt, ProblemSize ps) {
  ops::Context ctx(opt);
  ops::Block grid(ctx, "acoustic", 3, ps.grid);
  ops::Dat<float> p0(grid, "p_prev", 1, 4);
  ops::Dat<float> p1(grid, "p_cur", 1, 4);
  // Chain-internal scratch: ac_lap stores the laplacian here and
  // ac_update consumes it pointwise, so under fusion it never makes a
  // DRAM round trip. Storing float and reloading is exact, so the split
  // scheme is bit-identical to the fused-expression ac_fd it replaces.
  ops::Dat<float> lap(grid, "lap", 1, 0);

  const long nz = static_cast<long>(ps.grid[0]);
  const long ny = static_cast<long>(ps.grid[1]);
  const long nx = static_cast<long>(ps.grid[2]);
  const float c2 = 0.05f;  // uniform medium, CFL-stable
  const float damp = 0.95f;

  const ops::Range interior = ops::Range::all(grid);
  ops::Range source;
  source.lo = {nz / 2, ny / 2, nx / 2};
  source.hi = {nz / 2 + 1, ny / 2 + 1, nx / 2 + 1};

  // Six sponge slabs (faces), each sponge_width thick.
  const long w0 = sponge_width(nz), w1 = sponge_width(ny), w2 = sponge_width(nx);
  std::array<ops::Range, 6> sponges;
  for (int d = 0; d < 3; ++d) {
    const long w = d == 0 ? w0 : d == 1 ? w1 : w2;
    ops::Range lo = interior, hi = interior;
    lo.hi[static_cast<std::size_t>(d)] = lo.lo[static_cast<std::size_t>(d)] + w;
    hi.lo[static_cast<std::size_t>(d)] = hi.hi[static_cast<std::size_t>(d)] - w;
    sponges[static_cast<std::size_t>(2 * d)] = lo;
    sponges[static_cast<std::size_t>(2 * d + 1)] = hi;
  }

  for (int t = 0; t < ps.iters; ++t) {
    ops::FusedScope fs(ctx, grid);
    const float wavelet = [&] {
      const float ft = 0.3f * (static_cast<float>(t) - 5.0f);
      return (1.0f - 2.0f * ft * ft) * std::exp(-ft * ft);
    }();
    fs.loop({"ac_source", hw::KernelClass::Boundary, 4.0}, source,
            [wavelet](ops::ACC<float> p) { p(0, 0, 0) += wavelet; },
            ops::arg(p1, ops::S_PT, ops::Acc::RW));

    fs.loop(
        {"ac_lap", hw::KernelClass::Interior, kLapFlops}, interior,
        [](ops::ACC<float> l, ops::ACC<float> pc) {
          l(0, 0, 0) =
              3.0f * kC0 * pc(0, 0, 0) +
              kC1 * (pc(1, 0, 0) + pc(-1, 0, 0) + pc(0, 1, 0) + pc(0, -1, 0) +
                     pc(0, 0, 1) + pc(0, 0, -1)) +
              kC2 * (pc(2, 0, 0) + pc(-2, 0, 0) + pc(0, 2, 0) + pc(0, -2, 0) +
                     pc(0, 0, 2) + pc(0, 0, -2)) +
              kC3 * (pc(3, 0, 0) + pc(-3, 0, 0) + pc(0, 3, 0) + pc(0, -3, 0) +
                     pc(0, 0, 3) + pc(0, 0, -3)) +
              kC4 * (pc(4, 0, 0) + pc(-4, 0, 0) + pc(0, 4, 0) + pc(0, -4, 0) +
                     pc(0, 0, 4) + pc(0, 0, -4));
        },
        ops::arg(lap, ops::S_PT, ops::Acc::W),
        ops::arg(p1, ops::star(4, 3), ops::Acc::R));

    fs.loop(
        {"ac_update", hw::KernelClass::Interior, kUpdateFlops}, interior,
        [c2](ops::ACC<float> pp, ops::ACC<float> pc, ops::ACC<float> l) {
          pp(0, 0, 0) = 2.0f * pc(0, 0, 0) - pp(0, 0, 0) + c2 * l(0, 0, 0);
        },
        ops::arg(p0, ops::S_PT, ops::Acc::RW),
        ops::arg(p1, ops::S_PT, ops::Acc::R),
        ops::arg(lap, ops::S_PT, ops::Acc::R));

    // Absorbing layers: damp both time levels in the sponge slabs.
    for (const auto& slab : sponges) {
      fs.loop({"ac_sponge", hw::KernelClass::Boundary, 2.0}, slab,
              [damp](ops::ACC<float> pa, ops::ACC<float> pb) {
                pa(0, 0, 0) *= damp;
                pb(0, 0, 0) *= damp;
              },
              ops::arg(p0, ops::S_PT, ops::Acc::RW),
              ops::arg(p1, ops::S_PT, ops::Acc::RW));
    }
    fs.flush();  // args hold Dat pointers - drain before the swap
    std::swap(p0, p1);
  }

  RunSummary rs;
  rs.profiles = std::move(ctx.profiles);
  if (ctx.executing()) {
    double energy = 0.0;
    for (long k = 0; k < nz; ++k)
      for (long j = 0; j < ny; ++j)
        for (long i = 0; i < nx; ++i) {
          const double v = static_cast<double>(p1.at(k, j, i));
          energy += v * v;
        }
    rs.checksum = energy;
  }
  return rs;
}

}  // namespace syclport::apps
