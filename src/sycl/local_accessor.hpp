#pragma once
/// \file local_accessor.hpp
/// miniSYCL local (work-group shared) memory. Backed by a thread-local
/// arena (see detail/local_arena.hpp): all work-items of a group run on
/// one OS thread, so allocations keyed by the accessor's shared control
/// block are shared within a group and reset between groups, matching
/// SYCL local-memory lifetime.

#include <memory>

#include "sycl/detail/local_arena.hpp"
#include "sycl/range.hpp"

namespace sycl {

template <typename T, int Dims = 1>
class local_accessor {
 public:
  class handler_placeholder;  // local_accessor(range, handler) in real SYCL

  explicit local_accessor(range<Dims> r)
      : key_(std::make_shared<char>()), range_(r) {}

  template <typename Handler>
  local_accessor(range<Dims> r, Handler&) : local_accessor(r) {}

  [[nodiscard]] T& operator[](const id<Dims>& i) const {
    return data()[detail::linearize(i, range_)];
  }
  [[nodiscard]] T& operator[](std::size_t i) const
    requires(Dims == 1)
  {
    return data()[i];
  }

  [[nodiscard]] range<Dims> get_range() const { return range_; }
  [[nodiscard]] std::size_t size() const { return range_.size(); }
  [[nodiscard]] T* get_pointer() const { return data(); }

 private:
  [[nodiscard]] T* data() const {
    return static_cast<T*>(
        detail::local_alloc(key_.get(), range_.size() * sizeof(T)));
  }

  std::shared_ptr<char> key_;  ///< identity shared by all copies
  range<Dims> range_;
};

}  // namespace sycl
