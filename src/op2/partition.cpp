#include "op2/partition.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <unordered_set>

namespace syclport::op2 {

namespace {

void rcb_recurse(std::span<const std::array<double, 3>> coords,
                 std::vector<int>& ids, std::size_t begin, std::size_t end,
                 int part_base, int nparts, std::vector<int>& out) {
  if (nparts <= 1) {
    for (std::size_t i = begin; i < end; ++i)
      out[static_cast<std::size_t>(ids[i])] = part_base;
    return;
  }
  // Widest axis of this subset's bounding box.
  std::array<double, 3> lo{1e300, 1e300, 1e300}, hi{-1e300, -1e300, -1e300};
  for (std::size_t i = begin; i < end; ++i) {
    const auto& c = coords[static_cast<std::size_t>(ids[i])];
    for (int d = 0; d < 3; ++d) {
      lo[static_cast<std::size_t>(d)] = std::min(lo[static_cast<std::size_t>(d)], c[static_cast<std::size_t>(d)]);
      hi[static_cast<std::size_t>(d)] = std::max(hi[static_cast<std::size_t>(d)], c[static_cast<std::size_t>(d)]);
    }
  }
  int axis = 0;
  for (int d = 1; d < 3; ++d)
    if (hi[static_cast<std::size_t>(d)] - lo[static_cast<std::size_t>(d)] >
        hi[static_cast<std::size_t>(axis)] - lo[static_cast<std::size_t>(axis)])
      axis = d;

  // Split the part count proportionally and the points at the matching
  // quantile along the chosen axis.
  const int left_parts = nparts / 2;
  const int right_parts = nparts - left_parts;
  const std::size_t n = end - begin;
  const std::size_t left_n =
      n * static_cast<std::size_t>(left_parts) / static_cast<std::size_t>(nparts);
  auto cmp = [&](int a, int b) {
    return coords[static_cast<std::size_t>(a)][static_cast<std::size_t>(axis)] <
           coords[static_cast<std::size_t>(b)][static_cast<std::size_t>(axis)];
  };
  std::nth_element(ids.begin() + static_cast<std::ptrdiff_t>(begin),
                   ids.begin() + static_cast<std::ptrdiff_t>(begin + left_n),
                   ids.begin() + static_cast<std::ptrdiff_t>(end), cmp);
  rcb_recurse(coords, ids, begin, begin + left_n, part_base, left_parts, out);
  rcb_recurse(coords, ids, begin + left_n, end, part_base + left_parts,
              right_parts, out);
}

}  // namespace

std::vector<int> rcb_partition(std::span<const std::array<double, 3>> coords,
                               int nparts) {
  if (nparts < 1) throw std::invalid_argument("rcb_partition: nparts < 1");
  std::vector<int> ids(coords.size());
  std::iota(ids.begin(), ids.end(), 0);
  std::vector<int> out(coords.size(), 0);
  rcb_recurse(coords, ids, 0, coords.size(), 0, nparts, out);
  return out;
}

PartitionStats analyze_partition(const Map& e2n,
                                 std::span<const int> node_part, int nparts) {
  if (node_part.size() != e2n.to().size())
    throw std::invalid_argument("analyze_partition: partition size mismatch");
  PartitionStats st;
  st.nparts = nparts;
  st.owned_nodes.assign(static_cast<std::size_t>(nparts), 0);
  st.owned_elems.assign(static_cast<std::size_t>(nparts), 0);
  st.halo_nodes.assign(static_cast<std::size_t>(nparts), 0);

  for (int p : node_part) {
    if (p < 0 || p >= nparts)
      throw std::out_of_range("analyze_partition: bad part id");
    ++st.owned_nodes[static_cast<std::size_t>(p)];
  }

  // Owner-compute: an element runs on the owner of its first node; any
  // other node owned elsewhere is a halo read (counted once per part).
  std::vector<std::unordered_set<int>> halos(static_cast<std::size_t>(nparts));
  const std::size_t ne = e2n.from().size();
  for (std::size_t e = 0; e < ne; ++e) {
    const int owner = node_part[static_cast<std::size_t>(e2n.at(e, 0))];
    ++st.owned_elems[static_cast<std::size_t>(owner)];
    bool cut = false;
    for (int i = 1; i < e2n.arity(); ++i) {
      const int nd = e2n.at(e, i);
      if (node_part[static_cast<std::size_t>(nd)] != owner) {
        cut = true;
        halos[static_cast<std::size_t>(owner)].insert(nd);
      }
    }
    if (cut) ++st.cut_elems;
  }
  st.cut_fraction = ne > 0 ? static_cast<double>(st.cut_elems) /
                                 static_cast<double>(ne)
                           : 0.0;

  double halo_frac_sum = 0.0;
  std::size_t max_owned = 0;
  for (int p = 0; p < nparts; ++p) {
    st.halo_nodes[static_cast<std::size_t>(p)] =
        halos[static_cast<std::size_t>(p)].size();
    max_owned = std::max(max_owned, st.owned_nodes[static_cast<std::size_t>(p)]);
    if (st.owned_nodes[static_cast<std::size_t>(p)] > 0)
      halo_frac_sum +=
          static_cast<double>(st.halo_nodes[static_cast<std::size_t>(p)]) /
          static_cast<double>(st.owned_nodes[static_cast<std::size_t>(p)]);
  }
  const double mean_owned =
      static_cast<double>(node_part.size()) / static_cast<double>(nparts);
  st.max_imbalance = mean_owned > 0 ? static_cast<double>(max_owned) / mean_owned : 0.0;
  st.avg_halo_fraction = halo_frac_sum / static_cast<double>(nparts);
  return st;
}

}  // namespace syclport::op2
