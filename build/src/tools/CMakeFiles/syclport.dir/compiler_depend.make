# Empty compiler generated dependencies file for syclport.
# This may be replaced when dependencies are built.
