#pragma once
/// \file buffer.hpp
/// miniSYCL buffers and accessors. Because the executor is the host,
/// buffers reference (or own) host memory directly and accessors are
/// thin pointer+range views; SYCL copy-back semantics degenerate to
/// no-ops while the API shape is preserved.

#include <cstddef>
#include <memory>
#include <vector>

#include "sycl/range.hpp"

namespace sycl {

class handler;

enum class access_mode { read, write, read_write };

/// Accessor-construction tags, as in SYCL 2020.
struct read_only_tag {};
struct write_only_tag {};
struct read_write_tag {};
inline constexpr read_only_tag read_only{};
inline constexpr write_only_tag write_only{};
inline constexpr read_write_tag read_write{};

template <typename T, int Dims = 1>
class buffer {
 public:
  /// Buffer over existing host memory (no copy; writes are visible
  /// immediately, equivalent to a same-context host buffer).
  buffer(T* host_data, range<Dims> r) : data_(host_data), range_(r) {}

  /// Buffer owning zero-initialized storage.
  explicit buffer(range<Dims> r)
      : owned_(std::make_shared<std::vector<T>>(r.size())),
        data_(owned_->data()),
        range_(r) {}

  [[nodiscard]] range<Dims> get_range() const { return range_; }
  [[nodiscard]] std::size_t size() const { return range_.size(); }
  [[nodiscard]] std::size_t byte_size() const { return size() * sizeof(T); }

  [[nodiscard]] T* data() const { return data_; }

 private:
  std::shared_ptr<std::vector<T>> owned_;  ///< null when wrapping host memory
  T* data_ = nullptr;
  range<Dims> range_;
};

template <typename T, int Dims = 1>
class accessor {
 public:
  accessor(buffer<T, Dims>& buf, handler&, read_only_tag)
      : accessor(buf, access_mode::read) {}
  accessor(buffer<T, Dims>& buf, handler&, write_only_tag)
      : accessor(buf, access_mode::write) {}
  accessor(buffer<T, Dims>& buf, handler&, read_write_tag = {})
      : accessor(buf, access_mode::read_write) {}

  [[nodiscard]] T& operator[](const id<Dims>& i) const {
    return data_[detail::linearize(i, range_)];
  }
  [[nodiscard]] T& operator[](std::size_t i) const
    requires(Dims == 1)
  {
    return data_[i];
  }

  [[nodiscard]] range<Dims> get_range() const { return range_; }
  [[nodiscard]] access_mode mode() const { return mode_; }
  [[nodiscard]] T* get_pointer() const { return data_; }

 private:
  accessor(buffer<T, Dims>& buf, access_mode m)
      : data_(buf.data()), range_(buf.get_range()), mode_(m) {}

  T* data_;
  range<Dims> range_;
  access_mode mode_;
};

/// Host-side accessor (outside command groups).
template <typename T, int Dims = 1>
class host_accessor {
 public:
  explicit host_accessor(buffer<T, Dims>& buf)
      : data_(buf.data()), range_(buf.get_range()) {}

  [[nodiscard]] T& operator[](const id<Dims>& i) const {
    return data_[detail::linearize(i, range_)];
  }
  [[nodiscard]] T& operator[](std::size_t i) const
    requires(Dims == 1)
  {
    return data_[i];
  }

 private:
  T* data_;
  range<Dims> range_;
};

}  // namespace sycl
