// Tests for the online autotuner (runtime/autotune): config/site/cache
// round-trips, successive-halving convergence, fingerprint guarding,
// tuned-vs-untuned determinism, hardened env parsing, and exploration
// thread safety under the out-of-order queue (the Autotune suite runs
// under the TSan preset).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "ops/ops.hpp"
#include "runtime/autotune/autotune.hpp"
#include "runtime/autotune/cache.hpp"
#include "runtime/autotune/variant.hpp"
#include "runtime/env.hpp"
#include "sycl/sycl.hpp"

namespace at = syclport::rt::autotune;
namespace env = syclport::rt::env;
namespace ops = syclport::ops;
namespace rt = syclport::rt;

namespace {

at::Site sched_site(const char* name = "k") {
  at::Site s;
  s.name = name;
  s.dims = 1;
  s.global = {1u << 16, 1, 1};
  s.axes = at::kScheduleGrain;
  return s;
}

/// A site that also races the kernel-variant menu, like the flat-sweep
/// lowerings declare it.
at::Site variant_site(const char* name = "vk") {
  at::Site s = sched_site(name);
  s.axes = at::kScheduleGrain | at::kVariantAxes;
  return s;
}

/// Deterministic synthetic cost: static beats dynamic beats steal,
/// grain 1024 beats 1 beats 16384. The unique minimum is
/// {static, 1024}.
double synthetic_cost(const at::Config& c) {
  double t = 1e-3;
  if (c.schedule == rt::Schedule::Dynamic) t *= 2.0;
  if (c.schedule == rt::Schedule::Steal) t *= 3.0;
  if (c.grain == 1u) t *= 1.5;
  if (c.grain == 16384u) t *= 2.5;
  return t;
}

/// Drive a tuner to convergence on `site` against the synthetic cost.
void drive(at::Autotuner& tuner, const at::Site& site) {
  for (int i = 0; i < 10000 && !tuner.converged(site); ++i) {
    const auto d = tuner.decide(site);
    tuner.report(d, synthetic_cost(d.config));
  }
}

/// Restore the process-wide tuner to "off" when a test ends, so the
/// suites sharing the binary stay independent.
struct GlobalTunerGuard {
  ~GlobalTunerGuard() {
    at::Autotuner::instance().reset(at::Autotuner::Mode::Off, "", "");
  }
};

}  // namespace

TEST(Autotune, ConfigToStringParseRoundTrip) {
  at::Config c;
  c.schedule = rt::Schedule::Steal;
  c.grain = 4096;
  c.local = {{1, 4, 64}};
  c.overlap_queue = true;
  c.tile = 32;
  const auto back = at::Config::parse(c.to_string());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, c);

  at::Config sparse;  // only the axes a site declared are set
  sparse.tile = 0;
  const auto sback = at::Config::parse(sparse.to_string());
  ASSERT_TRUE(sback.has_value());
  EXPECT_EQ(*sback, sparse);

  // The kernel-variant and cache-block axes (cache v3) round-trip too.
  at::Config v;
  v.schedule = rt::Schedule::Static;
  v.reg_tile = 2;
  v.vec_width = 4;
  v.unroll = 2;
  v.cache_block = 512;
  const auto vback = at::Config::parse(v.to_string());
  ASSERT_TRUE(vback.has_value());
  EXPECT_EQ(*vback, v);

  // The unstructured-locality axes (cache v4) round-trip too.
  at::Config u;
  u.layout = 1;    // SoA
  u.indirect = 4;  // Staged
  EXPECT_EQ(u.to_string(), "layout=soa indirect=staged");
  const auto uback = at::Config::parse(u.to_string());
  ASSERT_TRUE(uback.has_value());
  EXPECT_EQ(*uback, u);

  EXPECT_FALSE(at::Config::parse("schedule=warp").has_value());
  EXPECT_FALSE(at::Config::parse("grain=12abc").has_value());
  EXPECT_FALSE(at::Config::parse("local=8x8").has_value());
  EXPECT_FALSE(at::Config::parse("bogus=1").has_value());
  EXPECT_FALSE(at::Config::parse("reg_tile=0").has_value());
  EXPECT_FALSE(at::Config::parse("vec=x").has_value());
  EXPECT_FALSE(at::Config::parse("unroll=").has_value());
  EXPECT_FALSE(at::Config::parse("cache_block=12ab").has_value());
  EXPECT_FALSE(at::Config::parse("layout=csr").has_value());
  EXPECT_FALSE(at::Config::parse("indirect=mutex").has_value());
}

TEST(Autotune, SiteKeyIsStableAndSanitized) {
  at::Site s = sched_site("jacobi step");
  const std::string key = s.key();
  EXPECT_EQ(key, s.key()) << "key must be deterministic";
  EXPECT_EQ(key.find(' '), std::string::npos)
      << "spaces must be sanitized (cache format is line-oriented)";
  EXPECT_NE(key.find("jacobi_step"), std::string::npos);
  EXPECT_NE(key.find("|flat|"), std::string::npos);

  // The footprint class buckets the iteration count: same shape class,
  // same key; a different formulation or extent class changes it.
  at::Site nd = s;
  nd.nd = true;
  EXPECT_NE(s.key(), nd.key());
  at::Site big = s;
  big.global = {1u << 20, 1, 1};
  EXPECT_NE(s.key(), big.key());

  // The declared axis set is part of the key: two same-named
  // same-shaped sites whose lowerings race different knobs (a flat
  // sweep with kernel variants vs a plain schedule-only site) must
  // never collide in the cache.
  at::Site variants = s;
  variants.axes = at::kScheduleGrain | at::kVariantAxes;
  EXPECT_NE(s.key(), variants.key());
  EXPECT_NE(variants.key().find("|ax"), std::string::npos);
}

TEST(Autotune, CacheRoundTripAndMalformedEntries) {
  const std::string path = "test_autotune_cache_rt.json";
  at::CacheData data;
  data.fingerprint = "cores=8;l1d=32768;l2=1048576;llc=16777216;triad_log2=4";
  at::Config a;
  a.schedule = rt::Schedule::Static;
  a.grain = 1024;
  at::Config b;
  b.local = {{1, 8, 32}};
  b.overlap_queue = false;
  data.entries = {{"k1|1|65536x1x1|flat|fp16|ax1", a, ""},
                  {"k2|2|512x512x1|nd|fp18|ax3", b, "cores=64;llc=1"}};
  ASSERT_TRUE(at::write_cache(path, data));

  const auto back = at::read_cache(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->fingerprint, data.fingerprint);
  ASSERT_EQ(back->entries.size(), 2u);
  EXPECT_EQ(back->entries[0].key, data.entries[0].key);
  EXPECT_EQ(back->entries[0].config, a);
  EXPECT_EQ(back->entries[1].config, b);
  // The per-entry fingerprint (v3: transfer-donor provenance) survives.
  EXPECT_EQ(back->entries[1].fp, "cores=64;llc=1");

  // Unparseable configs are dropped individually, not fatally.
  {
    std::FILE* f = std::fopen(path.c_str(), "a");
    ASSERT_NE(f, nullptr);
    std::fputs("    { \"key\": \"k3|1|8x1x1|flat|fp3\", \"config\": "
               "\"schedule=warp\" },\n",
               f);
    std::fclose(f);
  }
  const auto again = at::read_cache(path);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->entries.size(), 2u);

  EXPECT_FALSE(at::read_cache("does_not_exist.json").has_value());
  std::remove(path.c_str());
}

TEST(Autotune, SuccessiveHalvingConvergesToFastestCandidate) {
  at::Autotuner tuner(at::Autotuner::Mode::On, "fp-test", "");
  const at::Site site = sched_site();
  EXPECT_FALSE(tuner.converged(site));
  drive(tuner, site);
  ASSERT_TRUE(tuner.converged(site));
  const auto best = tuner.best(site);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->schedule, rt::Schedule::Static);
  EXPECT_EQ(best->grain, 1024u);
  EXPECT_GT(tuner.explored_launches(), 0u);
}

TEST(Autotune, CachedWinnerSkipsSearch) {
  const std::string path = "test_autotune_cache_warm.json";
  std::remove(path.c_str());
  const at::Site site = sched_site();
  {
    at::Autotuner cold(at::Autotuner::Mode::On, "fp-warm", path);
    drive(cold, site);
    ASSERT_TRUE(cold.converged(site));
  }
  at::Autotuner warm(at::Autotuner::Mode::On, "fp-warm", path);
  const auto d = warm.decide(site);
  EXPECT_EQ(d.phase, at::Phase::Exploiting)
      << "a cache hit must serve the winner from the first launch";
  EXPECT_EQ(d.config.schedule, rt::Schedule::Static);
  EXPECT_EQ(d.config.grain, 1024u);
  EXPECT_EQ(warm.explored_launches(), 0u);
  std::remove(path.c_str());
}

TEST(Autotune, FingerprintMismatchRetunes) {
  const std::string path = "test_autotune_cache_fp.json";
  std::remove(path.c_str());
  const at::Site site = sched_site();
  {
    at::Autotuner cold(at::Autotuner::Mode::On, "fp-machine-a", path);
    drive(cold, site);
  }
  at::Autotuner other(at::Autotuner::Mode::On, "fp-machine-b", path);
  const auto d = other.decide(site);
  EXPECT_EQ(d.phase, at::Phase::Exploring)
      << "another machine's winners must not be trusted";
  std::remove(path.c_str());
}

TEST(Autotune, ForceModeReExploresDespiteValidCache) {
  const std::string path = "test_autotune_cache_force.json";
  std::remove(path.c_str());
  const at::Site site = sched_site();
  {
    at::Autotuner cold(at::Autotuner::Mode::On, "fp-force", path);
    drive(cold, site);
  }
  at::Autotuner force(at::Autotuner::Mode::Force, "fp-force", path);
  const auto d = force.decide(site);
  EXPECT_EQ(d.phase, at::Phase::Exploring);
  drive(force, site);
  EXPECT_TRUE(force.converged(site));
  std::remove(path.c_str());
}

TEST(Autotune, TunedRunIsNumericallyIdenticalToUntuned) {
  GlobalTunerGuard guard;
  at::Autotuner::instance().reset(at::Autotuner::Mode::On, "fp-det", "");

  const std::size_t n = 48;
  auto sweep_sum = [&](std::optional<bool> tune, int iters) {
    ops::Options o;
    o.backend = ops::Backend::Threads;
    o.tune = tune;
    o.record = false;
    ops::Context ctx(o);
    ops::Block grid(ctx, "g", 2, {n, n, 1});
    ops::Dat<double> a(grid, "a", 1, 1), b(grid, "b", 1, 1);
    for (long i = -1; i <= static_cast<long>(n); ++i)
      for (long j = -1; j <= static_cast<long>(n); ++j)
        a.at(i, j) = 0.25 * static_cast<double>(i) -
                     0.125 * static_cast<double>(j);
    double sum = 0.0;
    for (int it = 0; it < iters; ++it) {
      ops::par_loop(ctx, {"det_sweep"}, grid, ops::Range::all(grid),
                    [](ops::ACC<double> out, ops::ACC<double> in) {
                      out(0, 0) = in(0, 0) + 0.2 * (in(1, 0) + in(-1, 0) +
                                                    in(0, 1) + in(0, -1));
                    },
                    ops::arg(b, ops::S_PT, ops::Acc::W),
                    ops::arg(a, ops::S2D_5PT, ops::Acc::R));
      const double s = b.interior_sum();
      if (it == 0) sum = s;
      // Every iteration - whichever candidate served it - must produce
      // bit-identical results: the tuner only moves work distribution.
      EXPECT_EQ(s, sum) << "iteration " << it;
    }
    return sum;
  };

  const double untuned = sweep_sum(false, 1);
  const double tuned = sweep_sum(true, 80);  // spans explore + exploit
  EXPECT_EQ(tuned, untuned);
}

TEST(Autotune, ExplorationIsThreadSafeUnderOutOfOrderQueue) {
  GlobalTunerGuard guard;
  at::Autotuner::instance().reset(at::Autotuner::Mode::On, "fp-mt", "");

  // Concurrent deferred command groups with disjoint footprints all
  // tune the same handler-level site; decide()/report() race across
  // scheduler workers and submitting threads (TSan-checked).
  constexpr int kThreads = 4;
  constexpr int kSubmitsPerThread = 24;
  constexpr std::size_t kElems = 2048;
  std::vector<std::vector<double>> bufs(
      kThreads, std::vector<double>(kElems, 0.0));
  {
    sycl::queue q;  // out-of-order
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        double* p = bufs[static_cast<std::size_t>(t)].data();
        for (int s = 0; s < kSubmitsPerThread; ++s) {
          q.submit([&](sycl::handler& h) {
            h.require(p, sycl::access_mode::read_write);
            h.parallel_for(sycl::range<1>(kElems), [p](sycl::id<1> i) {
              p[i[0]] += 1.0;
            });
          });
        }
      });
    }
    for (auto& th : threads) th.join();
    q.wait();
  }
  for (const auto& buf : bufs)
    for (const double v : buf)
      EXPECT_EQ(v, static_cast<double>(kSubmitsPerThread));
}

TEST(EnvParse, RejectsMalformedIntegersDeterministically) {
  env::reset_warnings_for_testing();
  ::setenv("SYCLPORT_TEST_KNOB", "12abc", 1);
  testing::internal::CaptureStderr();
  EXPECT_FALSE(env::get_long("SYCLPORT_TEST_KNOB", 1, 4096).has_value());
  // Warn-once: the second failed parse must stay silent.
  EXPECT_FALSE(env::get_long("SYCLPORT_TEST_KNOB", 1, 4096).has_value());
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("SYCLPORT_TEST_KNOB"), std::string::npos);
  EXPECT_EQ(err.find("SYCLPORT_TEST_KNOB", err.find("SYCLPORT_TEST_KNOB") + 1),
            std::string::npos)
      << "must warn exactly once per variable";

  ::setenv("SYCLPORT_TEST_KNOB", "9999999", 1);  // out of range
  env::reset_warnings_for_testing();
  testing::internal::CaptureStderr();
  EXPECT_FALSE(env::get_long("SYCLPORT_TEST_KNOB", 1, 4096).has_value());
  EXPECT_NE(testing::internal::GetCapturedStderr().find("SYCLPORT_TEST_KNOB"),
            std::string::npos);

  ::setenv("SYCLPORT_TEST_KNOB", "64", 1);
  EXPECT_EQ(env::get_long("SYCLPORT_TEST_KNOB", 1, 4096), 64);
  ::unsetenv("SYCLPORT_TEST_KNOB");
  EXPECT_FALSE(env::get_long("SYCLPORT_TEST_KNOB", 1, 4096).has_value());
}

TEST(EnvParse, ChoiceKnobsMatchDocumentedSpellingsOnly) {
  env::reset_warnings_for_testing();
  constexpr std::string_view kChoices[] = {"off", "on", "force"};
  ::setenv("SYCLPORT_TEST_MODE", "on", 1);
  EXPECT_EQ(env::get_choice("SYCLPORT_TEST_MODE", kChoices), 1u);
  ::setenv("SYCLPORT_TEST_MODE", "ON", 1);  // case-sensitive by contract
  testing::internal::CaptureStderr();
  EXPECT_FALSE(env::get_choice("SYCLPORT_TEST_MODE", kChoices).has_value());
  EXPECT_NE(testing::internal::GetCapturedStderr().find("SYCLPORT_TEST_MODE"),
            std::string::npos);
  ::unsetenv("SYCLPORT_TEST_MODE");
  EXPECT_FALSE(env::get_choice("SYCLPORT_TEST_MODE", kChoices).has_value());
}

TEST(Autotune, CacheRejectsForeignVersionTamperAndTruncation) {
  const std::string path = "test_autotune_cache_guard.json";
  at::CacheData data;
  data.fingerprint = "cores=8;l1d=32768;l2=1048576;llc=16777216;triad_log2=4";
  at::Config cfg;
  cfg.grain = 1024;
  data.entries = {{"k1|1|65536x1x1|flat|fp16", cfg}};
  ASSERT_TRUE(at::write_cache(path, data));
  ASSERT_TRUE(at::read_cache(path).has_value());

  const auto slurp = [&] {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return std::move(ss).str();
  };
  const auto spit = [&](const std::string& text) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(text.data(), static_cast<std::streamsize>(text.size()));
  };
  const std::string pristine = slurp();

  // A v2 file (pre-variant axes, no per-entry fp) is a foreign format:
  // the caller silently retunes instead of trusting it. Same for v1.
  std::string v2 = pristine;
  const auto vpos = v2.find("\"syclport_tune_cache\": 4");
  ASSERT_NE(vpos, std::string::npos);
  v2.replace(vpos, 24, "\"syclport_tune_cache\": 2");
  spit(v2);
  EXPECT_FALSE(at::read_cache(path).has_value());
  std::string v1 = pristine;
  v1.replace(v1.find("\"syclport_tune_cache\": 4"), 24,
             "\"syclport_tune_cache\": 1");
  spit(v1);
  EXPECT_FALSE(at::read_cache(path).has_value());

  // Tampering with a winner invalidates the content checksum.
  std::string tampered = pristine;
  const auto gpos = tampered.find("grain=1024");
  ASSERT_NE(gpos, std::string::npos);
  tampered.replace(gpos, 10, "grain=9999");
  spit(tampered);
  EXPECT_FALSE(at::read_cache(path).has_value());

  // Truncation (torn write, full disk) is rejected wholesale.
  spit(pristine.substr(0, pristine.size() / 2));
  EXPECT_FALSE(at::read_cache(path).has_value());

  // The pristine bytes still load: rejection was not sticky.
  spit(pristine);
  EXPECT_TRUE(at::read_cache(path).has_value());
  std::remove(path.c_str());
}

TEST(Autotune, TransferSeedsFromNearestPlatformDonor) {
  const std::string path = "test_autotune_cache_transfer.json";
  std::remove(path.c_str());
  const std::string fp_me =
      "cores=8;l1d=32768;l2=1048576;llc=16777216;triad_log2=4";
  const std::string fp_near =
      "cores=16;l1d=32768;l2=1048576;llc=16777216;triad_log2=4";
  const std::string fp_far =
      "cores=256;l1d=131072;l2=4194304;llc=1073741824;triad_log2=10";

  // One shared cache holding the same kernel tuned on two machines:
  // one a core-count doubling away, one a different platform class.
  at::Site donor_site = variant_site("donor");
  at::Config near_cfg;
  near_cfg.schedule = rt::Schedule::Static;
  near_cfg.grain = 1;
  near_cfg.reg_tile = 2;
  near_cfg.vec_width = 4;
  near_cfg.unroll = 1;
  at::Config far_cfg = near_cfg;
  far_cfg.schedule = rt::Schedule::Dynamic;
  far_cfg.reg_tile = 4;
  at::CacheData data;
  data.fingerprint = fp_far;
  data.entries = {{donor_site.key(), far_cfg, fp_far},
                  {donor_site.key(), near_cfg, fp_near}};
  ASSERT_TRUE(at::write_cache(path, data));

  at::Autotuner tuner(at::Autotuner::Mode::On, fp_me, path);
  const at::Site recv = variant_site("recv");
  const auto d = tuner.decide(recv);
  EXPECT_EQ(d.phase, at::Phase::Exploring)
      << "a foreign donor seeds the race, it is never served directly";
  ASSERT_NE(d.seeded_from, nullptr);
  const std::string prov = d.seeded_from;
  EXPECT_NE(prov.find("donor"), std::string::npos) << prov;
  EXPECT_NE(prov.find("@" + fp_near), std::string::npos)
      << "nearest platform by fingerprint distance must win: " << prov;
  EXPECT_EQ(prov.find("@" + fp_far), std::string::npos) << prov;
  EXPECT_EQ(tuner.seeded_from(recv), prov);
  std::remove(path.c_str());
}

TEST(Autotune, TransferWarmStartExploresFewerLaunchesThanCold) {
  const std::string path = "test_autotune_cache_warmstart.json";
  std::remove(path.c_str());
  const at::Site site = variant_site("warmstart");
  std::uint64_t cold_explored = 0;
  {
    at::Autotuner cold(at::Autotuner::Mode::On, "fp-machine-a", path);
    drive(cold, site);
    ASSERT_TRUE(cold.converged(site));
    EXPECT_TRUE(cold.seeded_from(site).empty())
        << "nothing tuned yet: the first site runs the full search";
    cold_explored = cold.explored_launches();
  }
  // A different machine, same cache file: the cold winner is not
  // trusted (fingerprint gate) but seeds the warm race.
  at::Autotuner warm(at::Autotuner::Mode::On, "fp-machine-b", path);
  drive(warm, site);
  ASSERT_TRUE(warm.converged(site));
  EXPECT_FALSE(warm.seeded_from(site).empty());
  EXPECT_LT(warm.explored_launches() * 2, cold_explored)
      << "warm-start-from-neighbor must converge in <50% of cold ("
      << warm.explored_launches() << " vs " << cold_explored << ")";
  std::remove(path.c_str());
}

TEST(Autotune, TransferAlsoSeedsAcrossSitesInProcess) {
  // No cache file at all: a second kernel with the same axis set seeds
  // from the first kernel's in-memory winner.
  at::Autotuner tuner(at::Autotuner::Mode::On, "fp-local", "");
  const at::Site first = variant_site("first_kernel");
  drive(tuner, first);
  ASSERT_TRUE(tuner.converged(first));
  const std::uint64_t after_first = tuner.explored_launches();
  const at::Site second = variant_site("second_kernel");
  drive(tuner, second);
  ASSERT_TRUE(tuner.converged(second));
  EXPECT_FALSE(tuner.seeded_from(second).empty());
  EXPECT_EQ(tuner.seeded_from(second).find('@'), std::string::npos)
      << "an in-process donor is local: no @fingerprint suffix";
  EXPECT_LT((tuner.explored_launches() - after_first) * 2, after_first);
}

TEST(Autotune, TransferOffRunsTheFullSearch) {
  const std::string path = "test_autotune_cache_notransfer.json";
  std::remove(path.c_str());
  const at::Site site = variant_site("notransfer");
  std::uint64_t cold_explored = 0;
  {
    at::Autotuner cold(at::Autotuner::Mode::On, "fp-machine-a", path);
    drive(cold, site);
    cold_explored = cold.explored_launches();
  }
  at::Autotuner warm(at::Autotuner::Mode::On, "fp-machine-b", path);
  warm.set_transfer(false);  // SYCLPORT_TUNE_TRANSFER=off
  drive(warm, site);
  ASSERT_TRUE(warm.converged(site));
  EXPECT_TRUE(warm.seeded_from(site).empty());
  EXPECT_EQ(warm.explored_launches(), cold_explored)
      << "with transfer off, a foreign cache must not shrink the race";
  std::remove(path.c_str());
}

TEST(Autotune, V2CacheFileRetunesSilently) {
  // A v2-era file (previous release: no per-entry fp, no variant axes)
  // must be rejected wholesale and the tuner must simply re-explore -
  // no crash, no stale winner.
  const std::string path = "test_autotune_cache_v2.json";
  std::remove(path.c_str());
  const at::Site site = sched_site("v2kernel");
  {
    at::Autotuner cold(at::Autotuner::Mode::On, "fp-v2", path);
    drive(cold, site);
  }
  std::string text;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    text = std::move(ss).str();
  }
  const auto vpos = text.find("\"syclport_tune_cache\": 4");
  ASSERT_NE(vpos, std::string::npos);
  text.replace(vpos, 24, "\"syclport_tune_cache\": 2");
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(text.data(), static_cast<std::streamsize>(text.size()));
  }
  at::Autotuner retune(at::Autotuner::Mode::On, "fp-v2", path);
  const auto d = retune.decide(site);
  EXPECT_EQ(d.phase, at::Phase::Exploring);
  EXPECT_EQ(d.seeded_from, nullptr)
      << "a rejected file contributes no donors either";
  drive(retune, site);
  EXPECT_TRUE(retune.converged(site));
  std::remove(path.c_str());
}

TEST(Autotune, VariantCandidatesStayOnTheCompiledMenu) {
  // Whatever the race hands out must be an executable menu entry within
  // the register-capacity bound - never an arbitrary cross product.
  at::Autotuner tuner(at::Autotuner::Mode::On, "fp-menu", "");
  const at::Site site = variant_site("menu");
  for (int i = 0; i < 2000 && !tuner.converged(site); ++i) {
    const auto d = tuner.decide(site);
    ASSERT_TRUE(d.config.reg_tile && d.config.vec_width && d.config.unroll);
    const at::VariantParams vp{*d.config.reg_tile, *d.config.vec_width,
                               *d.config.unroll};
    EXPECT_GE(at::variant_menu_index(vp), 0) << at::variant_id(vp);
    EXPECT_LE(vp.span(), 16) << "default CPU register bound";
    tuner.report(d, synthetic_cost(d.config));
  }
  EXPECT_TRUE(tuner.converged(site));
}
