// syclport CLI: drive the study from the command line.
//
//   syclport list
//       Platforms, applications and variant families.
//   syclport run --app <app> [--platform <p>] [--variant <v>]
//       Model one cell (or a row over all platforms / variants) at the
//       paper's problem size; prints runtime, effective bandwidth and
//       architectural efficiency.
//   syclport validate --app <app> [--backend <b>]
//       Functional execution at validation size; prints the checksum
//       per backend (all backends when none given).
//   syclport stream
//       Table 1 (BabelStream Triad per platform).
//
// Variant names: cuda, hip, openmp-offload, cray-offload, mpi,
// mpi+openmp, openmp, dpcpp-flat, dpcpp-nd, opensycl-flat, opensycl-nd;
// MG-CFD adds --strategy atomics|global|hierarchical.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "apps/acoustic/acoustic.hpp"
#include "core/pp_metric.hpp"
#include "minimpi/elastic.hpp"
#include "ops/dist.hpp"
#include "ops/dist_checkpoint.hpp"
#include "runtime/autotune/autotune.hpp"
#include "runtime/fault/fault.hpp"
#include "core/report.hpp"
#include "stream/babelstream.hpp"
#include "sycl/launch_log.hpp"
#include "study/service.hpp"
#include "study/session.hpp"
#include "study/study.hpp"
#include "study/trace.hpp"

using namespace syclport;

namespace {

int usage() {
  std::cout <<
      "usage: syclport <list|run|validate|stream|report|serve|client> "
      "[options]\n"
      "  run      --app <app> [--platform <platform>] [--variant <v>]\n"
      "           [--strategy atomics|global|hierarchical] [--trace <f.json>]\n"
      "  validate --app <app> [--backend serial|threads|sycl-flat|sycl-nd|mpi]\n"
      "  report   [--out <file.md>]   full study as a markdown report\n"
      "  serve    [--clients <n>] [--requests <m>] [--cache <f.json>]\n"
      "           study-service soak: n sessions x m requests, telemetry\n"
      "  client   --app <app> [--platform <p>] [--variant <v>]\n"
      "           [--cache <f.json>]   one query through the service\n"
      "run 'syclport list' for the valid names.\n";
  return 2;
}

std::optional<Variant> parse_variant(const std::string& name) {
  static const std::map<std::string, Variant> table = {
      {"cuda", {Model::CUDA, Toolchain::Native}},
      {"hip", {Model::HIP, Toolchain::Native}},
      {"openmp-offload", {Model::OpenMPOffload, Toolchain::Native}},
      {"cray-offload", {Model::OpenMPOffload, Toolchain::Cray}},
      {"mpi", {Model::MPI, Toolchain::Native}},
      {"mpi+openmp", {Model::MPI_OpenMP, Toolchain::Native}},
      {"openmp", {Model::OpenMP, Toolchain::Native}},
      {"dpcpp-flat", {Model::SYCLFlat, Toolchain::DPCPP}},
      {"dpcpp-nd", {Model::SYCLNDRange, Toolchain::DPCPP}},
      {"opensycl-flat", {Model::SYCLFlat, Toolchain::OpenSYCL}},
      {"opensycl-nd", {Model::SYCLNDRange, Toolchain::OpenSYCL}},
  };
  auto it = table.find(name);
  if (it == table.end()) return std::nullopt;
  return it->second;
}

std::optional<Strategy> parse_strategy(const std::string& name) {
  if (name == "atomics") return Strategy::Atomics;
  if (name == "global") return Strategy::GlobalColor;
  if (name == "hierarchical") return Strategy::Hierarchical;
  return std::nullopt;
}

/// CLI-friendly app names (lowercase slugs next to paper names).
std::optional<AppId> parse_app_slug(const std::string& name) {
  static const std::map<std::string, AppId> table = {
      {"cloverleaf2d", AppId::CloverLeaf2D},
      {"cloverleaf3d", AppId::CloverLeaf3D},
      {"opensbli-sa", AppId::OpenSBLI_SA},
      {"opensbli-sn", AppId::OpenSBLI_SN},
      {"rtm", AppId::RTM},
      {"acoustic", AppId::Acoustic},
      {"mgcfd", AppId::MGCFD},
  };
  if (auto it = table.find(name); it != table.end()) return it->second;
  return parse_app(name);  // paper-style names also accepted
}

std::optional<PlatformId> parse_platform_slug(const std::string& name) {
  static const std::map<std::string, PlatformId> table = {
      {"a100", PlatformId::A100},       {"mi250x", PlatformId::MI250X},
      {"max1100", PlatformId::Max1100}, {"xeon", PlatformId::Xeon8360Y},
      {"genoax", PlatformId::GenoaX},   {"altra", PlatformId::Altra},
  };
  if (auto it = table.find(name); it != table.end()) return it->second;
  return parse_platform(name);
}

int cmd_list() {
  std::cout << "platforms:\n";
  for (PlatformId p : kAllPlatforms)
    std::cout << "  " << to_string(p) << "  (slug: "
              << (p == PlatformId::A100      ? "a100"
                  : p == PlatformId::MI250X  ? "mi250x"
                  : p == PlatformId::Max1100 ? "max1100"
                  : p == PlatformId::Xeon8360Y ? "xeon"
                  : p == PlatformId::GenoaX  ? "genoax"
                                             : "altra")
              << ", STREAM " << hw::platform(p).stream_bw_gbs << " GB/s)\n";
  std::cout << "\napplications:\n";
  for (AppId a : kAllApps) std::cout << "  " << to_string(a) << "\n";
  std::cout << "\nvariants: cuda hip openmp-offload cray-offload mpi "
               "mpi+openmp openmp\n          dpcpp-flat dpcpp-nd "
               "opensycl-flat opensycl-nd\n"
               "strategies (MG-CFD): atomics global hierarchical\n";
  return 0;
}

void print_cell(report::Table& t, study::StudyRunner& runner, AppId app,
                PlatformId p, const Variant& v) {
  const auto r = runner.run(app, p, v);
  if (!r.ok()) {
    t.add_row({std::string(to_string(p)), to_string(v),
               std::string(to_string(r.status)), "-", "-", "-"});
    return;
  }
  t.add_row({std::string(to_string(p)), to_string(v), "ok",
             report::fmt(r.runtime_s, 3) + " s",
             report::fmt(r.eff_bw_gbs, 0) + " GB/s",
             report::fmt_percent(r.efficiency)});
}

int cmd_run(AppId app, std::optional<PlatformId> platform,
            std::optional<Variant> variant, std::optional<Strategy> strategy,
            const std::string& trace_path) {
  study::StudyRunner runner;
  report::Table t({"platform", "variant", "status", "runtime", "eff bw",
                   "efficiency"});
  std::vector<PlatformId> platforms =
      platform ? std::vector<PlatformId>{*platform}
               : std::vector<PlatformId>(kAllPlatforms.begin(),
                                         kAllPlatforms.end());
  for (PlatformId p : platforms) {
    if (variant) {
      Variant v = *variant;
      if (app == AppId::MGCFD)
        v.strategy = strategy.value_or(Strategy::Atomics);
      print_cell(t, runner, app, p, v);
    } else {
      const auto vars = app == AppId::MGCFD ? study::mgcfd_variants(p)
                                            : study::structured_variants(p);
      for (const Variant& v : vars) print_cell(t, runner, app, p, v);
    }
  }
  std::cout << to_string(app) << " at the paper's problem size:\n";
  t.render(std::cout);
  if (!trace_path.empty()) {
    const PlatformId p = platform.value_or(PlatformId::A100);
    Variant v = variant.value_or(study::native_variant(p));
    if (app == AppId::MGCFD && v.strategy == Strategy::None)
      v.strategy = strategy.value_or(Strategy::Atomics);
    if (study::write_modeled_trace_json(
            trace_path, runner.schedule_for(app, v), p, v, app)) {
      std::cout << "trace written to " << trace_path << "\n";
    } else {
      std::cerr << "cannot write " << trace_path << "\n";
      return 1;
    }
  }
  return 0;
}

int cmd_validate(AppId app, const std::string& backend_name) {
  struct Be { const char* name; ops::Backend b; };
  const std::vector<Be> all = {{"serial", ops::Backend::Serial},
                               {"threads", ops::Backend::Threads},
                               {"sycl-flat", ops::Backend::SyclFlat},
                               {"sycl-nd", ops::Backend::SyclNd},
                               {"mpi", ops::Backend::MPI}};
  report::Table t({"backend", "checksum"});
  for (const Be& be : all) {
    if (!backend_name.empty() && backend_name != be.name) continue;
    ops::Options o;
    o.backend = be.b;
    apps::RunSummary rs;
    switch (app) {
      case AppId::CloverLeaf2D:
        rs = apps::run_cloverleaf2d(o, apps::cloverleaf2d_small());
        break;
      case AppId::CloverLeaf3D:
        rs = apps::run_cloverleaf3d(o, apps::cloverleaf3d_small());
        break;
      case AppId::OpenSBLI_SA:
        rs = apps::run_opensbli_sa(o, apps::opensbli_small());
        break;
      case AppId::OpenSBLI_SN:
        rs = apps::run_opensbli_sn(o, apps::opensbli_small());
        break;
      case AppId::RTM:
        rs = apps::run_rtm(o, apps::rtm_small());
        break;
      case AppId::Acoustic:
        rs = apps::run_acoustic(o, apps::acoustic_small());
        break;
      case AppId::MGCFD: {
        op2::Options oo;  // OP2 app: backend name maps onto exec kinds
        oo.exec = be.b == ops::Backend::Serial ? op2::Exec::Serial
                  : be.b == ops::Backend::SyclFlat ||
                          be.b == ops::Backend::SyclNd
                      ? op2::Exec::Sycl
                      : op2::Exec::Threads;
        rs = apps::run_mgcfd(oo, apps::mgcfd_small());
        break;
      }
    }
    t.add_row({be.name, report::fmt(rs.checksum, 9)});
  }
  std::cout << to_string(app) << " functional validation:\n";
  t.render(std::cout);
  std::cout << "(all backends must print the same checksum)\n";
  return 0;
}

int cmd_stream() {
  ops::Options o;
  o.mode = ops::Mode::ModelOnly;
  const auto rs = stream::run(o, 1u << 28, 1);
  report::Table t({"platform", "Triad GB/s"});
  for (PlatformId p : kAllPlatforms) {
    const Variant v = p == PlatformId::Max1100
                          ? Variant{Model::SYCLNDRange, Toolchain::DPCPP}
                          : study::native_variant(p);
    const hw::DeviceModel dm(p, v, AppId::CloverLeaf2D);
    for (const auto& lp : rs.profiles)
      if (lp.name == "stream_triad")
        t.add_row({std::string(to_string(p)),
                   report::fmt(lp.total_bytes() /
                                   dm.kernel_time(lp).seconds / 1e9,
                               0)});
  }
  t.render(std::cout);
  return 0;
}

/// Every supported experiment cell as a bench-scale service request:
/// the workload the serve soak and the report's service exercise share.
std::vector<study::StudyRequest> service_matrix() {
  std::vector<study::StudyRequest> reqs;
  for (AppId a : kAllApps)
    for (PlatformId p : kAllPlatforms) {
      const auto vars = a == AppId::MGCFD ? study::mgcfd_variants(p)
                                          : study::structured_variants(p);
      for (const Variant& v : vars)
        reqs.push_back({a, p, v, study::StudyRequest::Scale::Bench});
    }
  return reqs;
}

void render_service_stats(std::ostream& os, const study::ServiceStats& s) {
  report::Table t({"metric", "value"});
  t.add_row({"requests completed", std::to_string(s.completed)});
  t.add_row({"fresh computes", std::to_string(s.computed)});
  t.add_row({"coalesced waiters", std::to_string(s.coalesced)});
  t.add_row({"cache hits", std::to_string(s.cache_hits)});
  t.add_row({"  from persistent cache", std::to_string(s.persistent_hits)});
  t.add_row({"typed errors", std::to_string(s.errors)});
  t.add_row({"admission rounds", std::to_string(s.batches)});
  t.add_row({"largest round", std::to_string(s.max_batch)});
  t.add_row({"cold schedule builds", std::to_string(s.schedule_builds)});
  t.add_row({"dedup ratio", report::fmt_percent(s.dedup_ratio())});
  t.add_row({"cache-hit rate", report::fmt_percent(s.cache_hit_rate())});
  t.add_row({"latency mean", report::fmt(s.mean_ms, 3) + " ms"});
  t.add_row({"latency p50", report::fmt(s.p50_ms, 3) + " ms"});
  t.add_row({"latency p95", report::fmt(s.p95_ms, 3) + " ms"});
  t.add_row({"latency p99", report::fmt(s.p99_ms, 3) + " ms"});
  t.render(os);
}

int cmd_serve(std::size_t n_clients, std::size_t n_requests,
              const std::string& cache_path) {
  study::ServiceConfig cfg = study::ServiceConfig::from_env();
  if (!cache_path.empty()) cfg.cache_path = cache_path;
  study::Service svc(cfg);
  const auto matrix = service_matrix();

  std::cout << "study service: " << n_clients << " sessions x " << n_requests
            << " requests over " << matrix.size() << " distinct cells\n";
  std::vector<std::thread> clients;
  std::vector<std::uint64_t> client_errors(n_clients, 0);
  clients.reserve(n_clients);
  for (std::size_t c = 0; c < n_clients; ++c) {
    clients.emplace_back([&, c] {
      study::Session session(svc, "client-" + std::to_string(c));
      for (std::size_t i = 0; i < n_requests; ++i) {
        // Deterministic per-client stride through the matrix: plenty of
        // cross-client duplication (the coalescing/caching story), no
        // shared RNG.
        const auto& q = matrix[(c * 7 + i) % matrix.size()];
        try {
          (void)session.query(q);
        } catch (const study::service_error&) {
          client_errors[c] += 1;
        }
      }
    });
  }
  for (auto& t : clients) t.join();

  const auto s = svc.stats();
  render_service_stats(std::cout, s);
  std::uint64_t errors = 0;
  for (auto e : client_errors) errors += e;
  if (errors != 0)
    std::cout << errors << " requests ended in typed errors "
              << "(fault injection armed?)\n";
  svc.shutdown();
  return 0;
}

int cmd_client(AppId app, std::optional<PlatformId> platform,
               std::optional<Variant> variant, std::optional<Strategy> strategy,
               const std::string& cache_path) {
  study::ServiceConfig cfg = study::ServiceConfig::from_env();
  if (!cache_path.empty()) cfg.cache_path = cache_path;
  if (cfg.cache_path.empty()) cfg.cache_path = "syclport_service_cache.json";
  study::Service svc(cfg);
  study::Session session(svc, "cli");

  const PlatformId p = platform.value_or(PlatformId::A100);
  Variant v = variant.value_or(study::native_variant(p));
  if (app == AppId::MGCFD && v.strategy == Strategy::None)
    v.strategy = strategy.value_or(Strategy::Atomics);
  study::StudyRequest q{app, p, v, study::StudyRequest::Scale::Paper};

  try {
    const auto reply = session.query(q);
    const auto& r = reply.result;
    std::cout << study::request_key(q) << "\n";
    if (r.ok()) {
      std::cout << "runtime " << report::fmt(r.runtime_s, 3) << " s, eff bw "
                << report::fmt(r.eff_bw_gbs, 0) << " GB/s, efficiency "
                << report::fmt_percent(r.efficiency) << "\n";
    } else {
      std::cout << "cell status: " << to_string(r.status) << "\n";
    }
    std::cout << (reply.cache_hit ? "served from cache" : "computed") << " in "
              << report::fmt(reply.latency_ms, 3) << " ms ("
              << reply.bytes.size() << " result bytes)\n";
  } catch (const study::service_error& e) {
    std::cerr << "service error (" << study::to_string(e.kind)
              << "): " << e.what() << "\n";
    svc.shutdown();
    return 1;
  }
  svc.shutdown();
  return 0;
}

int cmd_report(const std::string& out_path) {
  study::StudyRunner runner;
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  out << "# syclport study report\n\n"
      << "Architectural efficiency (fraction of the platform's STREAM "
         "Triad bandwidth)\nfor every application x platform x variant, "
         "at the paper's problem sizes.\nFailed cells carry the paper's "
         "reported failure mode.\n";

  auto emit = [&](AppId app) {
    out << "\n## " << to_string(app) << "\n\n";
    out << "| platform | variant | runtime | efficiency |\n";
    out << "|---|---|---|---|\n";
    for (PlatformId p : kAllPlatforms) {
      const auto vars = app == AppId::MGCFD ? study::mgcfd_variants(p)
                                            : study::structured_variants(p);
      for (const Variant& v : vars) {
        const auto r = runner.run(app, p, v);
        out << "| " << to_string(p) << " | " << to_string(v) << " | ";
        if (r.ok()) {
          out << report::fmt(r.runtime_s, 3) << " s | "
              << report::fmt_percent(r.efficiency) << " |\n";
        } else {
          out << "— | *" << to_string(r.status) << "* |\n";
        }
      }
    }
  };
  for (AppId a : kAllApps) emit(a);

  out << "\n## Pennycook PP metric (structured apps, supported-only)\n\n"
      << "| variant family | PP |\n|---|---|\n";
  struct Fam { Model m; Toolchain tc; const char* name; };
  for (const Fam f :
       {Fam{Model::SYCLNDRange, Toolchain::DPCPP, "DPC++ nd_range"},
        Fam{Model::SYCLNDRange, Toolchain::OpenSYCL, "OpenSYCL nd_range"},
        Fam{Model::SYCLFlat, Toolchain::DPCPP, "DPC++ flat"},
        Fam{Model::SYCLFlat, Toolchain::OpenSYCL, "OpenSYCL flat"}}) {
    std::vector<double> per_app;
    for (AppId a : kStructuredApps) {
      std::vector<double> effs;
      for (PlatformId p : kAllPlatforms) {
        double e = 0.0;
        for (const Variant& v : study::structured_variants(p)) {
          if (v.model != f.m || v.toolchain != f.tc) continue;
          const auto r = runner.run(a, p, v);
          if (r.ok()) e = r.efficiency;
        }
        effs.push_back(e);
      }
      per_app.push_back(pp_supported_only(effs));
    }
    double mean = 0.0;
    for (double v : per_app) mean += v;
    mean /= static_cast<double>(per_app.size());
    out << "| " << f.name << " | " << report::fmt(mean, 2) << " |\n";
  }

  // Allocation/page-placement telemetry of this process: a small
  // functional BabelStream run exercises the rt::mem paths (pooled
  // dats, parallel first-touch, streaming fills), then the cumulative
  // counters are reported.
  {
    ops::Options o;
    (void)stream::run(o, 1u << 21, 2);
    const auto ms = sycl::launch_log::memory_stats();
    out << "\n## Memory subsystem (rt::mem telemetry, this process)\n\n"
        << "| metric | value |\n|---|---|\n"
        << "| allocations | " << ms.alloc_calls << " |\n"
        << "| pool hit rate | " << report::fmt_percent(ms.pool_hit_rate())
        << " |\n"
        << "| bytes allocated | " << ms.bytes_allocated << " |\n"
        << "| bytes first-touched (parallel) | " << ms.bytes_first_touched
        << " |\n"
        << "| huge-page coverage | "
        << report::fmt_percent(ms.hugepage_coverage()) << " |\n"
        << "| streaming fill bytes | " << ms.stream_fill_bytes << " |\n"
        << "| streaming copy bytes | " << ms.stream_copy_bytes << " |\n"
        << "| pool fallbacks (degraded allocations) | " << ms.pool_fallbacks
        << " |\n";

    // Resilience telemetry (docs/resilience.md): zero everywhere unless
    // SYCLPORT_FAULT armed a plan for this process, in which case every
    // injected fault must show a matching recovery (or the run ended
    // with a typed error before this report was written).
    const auto fs = sycl::launch_log::fault_stats();
    namespace fault = syclport::rt::fault;
    out << "\n## Resilience (fault injection telemetry, this process)\n\n"
        << "| site | injected | recovered |\n|---|---|---|\n";
    for (std::size_t s = 0; s < fault::kSiteCount; ++s) {
      const auto site = static_cast<fault::Site>(s);
      if (fs.injected_at(site) == 0 && fs.recovered_at(site) == 0) continue;
      out << "| " << fault::to_string(site) << " | " << fs.injected_at(site)
          << " | " << fs.recovered_at(site) << " |\n";
    }
    out << "| total | " << fs.total_injected() << " | "
        << fs.total_recovered() << " |\n";
  }

  // Elastic recovery (docs/resilience.md "Elastic recovery"): a small
  // in-process exercise - 3 ranks, a seeded mid-run kill, shrink
  // recovery from the auto-checkpoint - populates the recovery
  // telemetry reported below.
  {
    namespace fault = syclport::rt::fault;
    namespace mpi = syclport::mpi;
    namespace dist = syclport::ops::dist;
    const std::string ckpt = "report_elastic_ckpt.bin";
    fault::configure("7:rank.kill=@2x1");
    mpi::ElasticOptions eo;
    eo.policy = mpi::Recovery::Shrink;
    eo.ckpt_every = 2;
    eo.ckpt_path = ckpt;
    constexpr int kSteps = 6;
    mpi::run_elastic(3, kSteps, eo, [&](mpi::Comm& comm, mpi::Epoch& ep) {
      dist::DistContext ctx(comm, 2);
      dist::DistDat<double> u(ctx, {16, 16, 1}, 1);
      u.init([](std::size_t i, std::size_t j, std::size_t) {
        return static_cast<double>(i * 31 + j);
      });
      const std::vector<dist::CkptField<double>> fields{{"u", &u}};
      if (ep.resuming()) dist::restore_canonical(ep.checkpoint_path(), fields);
      for (int s = ep.start_step(); s < kSteps; ++s) {
        u.exchange_halos();
        u.for_owned([&](std::size_t, std::size_t, std::size_t,
                        std::ptrdiff_t li, std::ptrdiff_t lj,
                        std::ptrdiff_t lk) {
          u.field().at(li, lj, lk) *= 1.0001;
        });
        ep.step_done(s, [&] {
          dist::checkpoint_canonical(ep.checkpoint_path(), fields);
        });
      }
    });
    fault::clear();
    std::remove(ckpt.c_str());

    const auto recs = sycl::launch_log::instance().recovery_snapshot();
    out << "\n## Elastic recovery (seeded kill exercise, this process)\n\n"
        << "| epoch | policy | ranks | failed rank | detect (ms) | rollback "
           "steps | agreement |\n|---|---|---|---|---|---|---|\n";
    for (const auto& r : recs) {
      char token[20];
      std::snprintf(token, sizeof token, "%016llx",
                    static_cast<unsigned long long>(r.agreement));
      out << "| " << r.epoch << " | " << r.policy << " | " << r.ranks_before
          << "->" << r.ranks_after << " | " << r.failed_rank << " | "
          << report::fmt(r.detect_ms, 3) << " | " << r.rollback_steps << " | "
          << token << " |\n";
    }
  }

  // Cross-loop fusion telemetry (docs/fusion.md): a small executed
  // Acoustic run under SYCLPORT_FUSION=on populates the launch log's
  // fusion records - one per chain flush, carrying the dataflow
  // partition and the modeled DRAM bytes the fused schedule eliminated.
  {
    auto& log = sycl::launch_log::instance();
    log.clear();
    log.set_enabled(true);
    setenv("SYCLPORT_FUSION", "on", 1);
    ops::Options o;
    o.backend = ops::Backend::Serial;
    (void)apps::run_acoustic(o, apps::acoustic_small());
    unsetenv("SYCLPORT_FUSION");
    log.set_enabled(false);

    const auto fstats = log.fusion_stats();
    out << "\n## Cross-loop fusion (acoustic exercise, this process)\n\n"
        << "| metric | value |\n|---|---|\n"
        << "| chain flushes | " << fstats.chains << " |\n"
        << "| fused flushes | " << fstats.fused_chains << " |\n"
        << "| fusable bytes | " << report::fmt(fstats.fusable_bytes / 1e6, 1)
        << " MB |\n"
        << "| eliminated bytes | "
        << report::fmt(fstats.eliminated_bytes / 1e6, 1) << " MB |\n"
        << "| rw double-buffer bytes | "
        << report::fmt(fstats.rw_copy_bytes / 1e6, 1) << " MB |\n";

    // Per-chain-site breakdown (aggregated over flushes of each site).
    struct Agg {
      std::size_t flushes = 0, loops = 0, segments = 0, tile = 0;
      double fusable = 0.0, eliminated = 0.0;
    };
    std::map<std::string, Agg> sites;
    for (const auto& r : log.fusions_snapshot()) {
      Agg& a = sites[r.chain];
      a.flushes += 1;
      a.loops = r.loops;
      a.segments = r.segments;
      a.tile = std::max(a.tile, r.tile);
      a.fusable += r.fusable_bytes;
      a.eliminated += r.eliminated_bytes;
    }
    out << "\n| chain site | flushes | loops | segments | tile | "
        << "eliminated |\n|---|---|---|---|---|---|\n";
    for (const auto& [name, a] : sites)
      out << "| `" << name << "` | " << a.flushes << " | " << a.loops
          << " | " << a.segments << " | " << a.tile << " | "
          << report::fmt(a.eliminated / 1e6, 1) << " MB |\n";
    log.clear();
  }

  // Kernel-variant and transfer-learning telemetry (docs/tuning.md):
  // two tuned Acoustic runs sharing a cache file. The first (cold) runs
  // the full variant race per site; the second models a different
  // machine (new fingerprint), so the cold winners are not trusted
  // directly but seed its search pool - the per-launch records carry
  // the variant id that served each launch and the donor provenance.
  {
    namespace at = syclport::rt::autotune;
    auto& log = sycl::launch_log::instance();
    const char* kCachePath = "syclport_report_tune_cache.json";
    std::remove(kCachePath);
    // Unfused: fused chains tile the range, and per-tile shapes would
    // fragment the tuning sites; here the point is the variant race, so
    // keep one stable site per kernel and run enough steps to converge.
    setenv("SYCLPORT_FUSION", "off", 1);

    auto run_tuned = [&](const char* fp) {
      log.clear();
      log.set_enabled(true);
      at::Autotuner::instance().reset(at::Autotuner::Mode::On, fp,
                                      kCachePath);
      ops::Options o;
      o.backend = ops::Backend::SyclFlat;
      o.tune = true;
      apps::ProblemSize ps = apps::acoustic_small();
      ps.iters = 160;
      (void)apps::run_acoustic(o, ps);
      at::Autotuner::instance().reset(at::Autotuner::Mode::Off, "", "");
      log.set_enabled(false);
    };

    struct VAgg {
      std::size_t launches = 0, explored = 0;
      std::set<std::string> variants;
      std::string locked;  // variant of the latest exploiting launch
      std::string seed;    // transfer provenance ("" = full search)
    };
    auto emit_table = [&](const char* title) {
      std::map<std::string, VAgg> per_kernel;
      for (const auto& r : log.snapshot()) {
        if (r.tune_phase == at::Phase::None) continue;
        VAgg& a = per_kernel[r.kernel_name];
        a.launches += 1;
        if (r.tune_phase == at::Phase::Exploring) a.explored += 1;
        const std::string v =
            r.tune_variant.empty() ? "ref" : r.tune_variant;
        a.variants.insert(v);
        if (r.tune_phase == at::Phase::Exploiting) a.locked = v;
        if (a.seed.empty() && !r.tune_seed.empty()) a.seed = r.tune_seed;
      }
      out << "\n### " << title << "\n\n"
          << "| kernel site | launches | explored | variants raced | "
          << "locked variant | seeded from |\n|---|---|---|---|---|---|\n";
      for (const auto& [name, a] : per_kernel)
        out << "| `" << name << "` | " << a.launches << " | " << a.explored
            << " | " << a.variants.size() << " | "
            << (a.locked.empty() ? "-" : a.locked) << " | "
            << (a.seed.empty() ? "full search" : "`" + a.seed + "`")
            << " |\n";
    };

    out << "\n## Kernel variants (tuned acoustic exercise, this process)\n\n"
        << "Per tuned launch site: how many launches the variant race\n"
        << "consumed, how many distinct kernel variants served them, the\n"
        << "locked-in winner, and the transfer-seed provenance (`full\n"
        << "search` for a cold site with no eligible donor).\n";
    run_tuned("study-report-machine-a");
    emit_table("cold machine (full search)");
    run_tuned("study-report-machine-b");
    emit_table("warm machine (transfer-seeded from the cold cache)");
    log.clear();
    unsetenv("SYCLPORT_FUSION");
    std::remove(kCachePath);
  }

  // Launch-timing tails: an executed Acoustic run with the launch log
  // enabled, summarized per kernel site as p50/p95/p99 host seconds -
  // mean-only summaries hide exactly the stragglers a bandwidth study
  // cares about.
  {
    auto& log = sycl::launch_log::instance();
    log.clear();
    log.set_enabled(true);
    ops::Options o;
    o.backend = ops::Backend::SyclFlat;
    (void)apps::run_acoustic(o, apps::acoustic_small());
    log.set_enabled(false);
    out << "\n## Launch timing (executed acoustic exercise, this process)\n\n"
        << "| kernel site | launches | total | mean | p50 | p95 | p99 |\n"
        << "|---|---|---|---|---|---|---|\n";
    auto row = [&](const std::string& name, const sycl::TimingSummary& ts) {
      out << "| `" << name << "` | " << ts.count << " | "
          << report::fmt(ts.total_s * 1e3, 2) << " ms | "
          << report::fmt(ts.mean_s * 1e6, 1) << " us | "
          << report::fmt(ts.p50_s * 1e6, 1) << " us | "
          << report::fmt(ts.p95_s * 1e6, 1) << " us | "
          << report::fmt(ts.p99_s * 1e6, 1) << " us |\n";
    };
    for (const auto& [name, ts] : log.kernel_timing_summaries()) row(name, ts);
    row("(all)", log.timing_summary());
    log.clear();
  }

  // Unstructured locality decisions (docs/unstructured.md): executed
  // MG-CFD exercises under the seed configuration and under the
  // renumber+staged engine. Every indirect-increment loop appends one
  // decision record per launch: the strategy/layout/ordering it ran
  // with and its measured cold gather line factor next to the hardware
  // model's prediction at half the host's LLC.
  {
    auto& log = sycl::launch_log::instance();
    auto run_case = [&](const char* ordering, Strategy s) {
      setenv("SYCLPORT_RENUMBER", ordering, 1);
      op2::Options o;
      o.exec = op2::Exec::Serial;
      o.strategy = s;
      o.tune = false;  // report the explicit configs, not a tuner race
      (void)apps::run_mgcfd(o, apps::mgcfd_small());
      unsetenv("SYCLPORT_RENUMBER");
    };
    log.clear();
    log.set_enabled(true);
    run_case("identity", Strategy::Atomics);
    run_case("rcm", Strategy::Staged);
    log.set_enabled(false);

    struct LAgg {
      std::size_t launches = 0;
      double measured = 0.0, predicted = 0.0;
    };
    std::map<std::tuple<std::string, std::string, std::string, std::string>,
             LAgg>
        decisions;
    for (const auto& r : log.localities_snapshot()) {
      LAgg& a = decisions[{r.loop, r.strategy, r.layout, r.ordering}];
      a.launches += 1;
      a.measured = r.measured_gather;
      a.predicted = r.predicted_gather;
    }
    out << "\n## Unstructured locality decisions (executed MG-CFD, this "
           "process)\n\n"
        << "| loop | strategy | layout | ordering | launches | "
        << "measured gather | predicted gather |\n"
        << "|---|---|---|---|---|---|---|\n";
    for (const auto& [key, a] : decisions)
      out << "| `" << std::get<0>(key) << "` | " << std::get<1>(key) << " | "
          << std::get<2>(key) << " | " << std::get<3>(key) << " | "
          << a.launches << " | " << report::fmt(a.measured, 2) << " | "
          << report::fmt(a.predicted, 2) << " |\n";
    log.clear();
  }

  // Study-service exercise (docs/service.md): the full bench-scale
  // matrix through the in-process daemon from four concurrent sessions,
  // two passes each - the second pass is all warm cache hits - then the
  // admission/caching telemetry with its tail-latency percentiles.
  {
    study::Service svc({/*cache_path=*/"", /*max_batch=*/256, /*spin_us=*/50});
    const auto matrix = service_matrix();
    std::vector<std::thread> clients;
    for (std::size_t c = 0; c < 4; ++c)
      clients.emplace_back([&svc, &matrix, c] {
        study::Session session(svc, "report-" + std::to_string(c));
        for (std::size_t pass = 0; pass < 2; ++pass)
          for (std::size_t i = 0; i < matrix.size(); ++i) {
            try {
              (void)session.query(matrix[(c * 11 + i) % matrix.size()]);
            } catch (const study::service_error&) {
            }
          }
      });
    for (auto& t : clients) t.join();
    const auto s = svc.stats();
    out << "\n## Study service (concurrent soak, this process)\n\n"
        << "| metric | value |\n|---|---|\n"
        << "| requests completed | " << s.completed << " |\n"
        << "| fresh computes | " << s.computed << " |\n"
        << "| coalesced waiters | " << s.coalesced << " |\n"
        << "| cache hits | " << s.cache_hits << " |\n"
        << "| typed errors | " << s.errors << " |\n"
        << "| admission rounds | " << s.batches << " |\n"
        << "| largest round | " << s.max_batch << " |\n"
        << "| cold schedule builds | " << s.schedule_builds << " |\n"
        << "| dedup ratio | " << report::fmt_percent(s.dedup_ratio()) << " |\n"
        << "| cache-hit rate | " << report::fmt_percent(s.cache_hit_rate())
        << " |\n"
        << "| latency mean / p50 / p95 / p99 | " << report::fmt(s.mean_ms, 3)
        << " / " << report::fmt(s.p50_ms, 3) << " / "
        << report::fmt(s.p95_ms, 3) << " / " << report::fmt(s.p99_ms, 3)
        << " ms |\n";
    svc.shutdown();
  }
  std::cout << "report written to " << out_path << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) return usage();
  const std::string cmd = args[0];

  std::map<std::string, std::string> opts;
  for (std::size_t i = 1; i + 1 < args.size(); i += 2) {
    if (args[i].rfind("--", 0) != 0) return usage();
    opts[args[i].substr(2)] = args[i + 1];
  }

  if (cmd == "list") return cmd_list();
  if (cmd == "stream") return cmd_stream();
  if (cmd == "report")
    return cmd_report(opts.count("out") ? opts["out"] : "study_report.md");
  if (cmd == "serve") {
    const auto num = [&](const char* name, std::size_t fallback) {
      if (!opts.count(name)) return fallback;
      const long v = std::strtol(opts[name].c_str(), nullptr, 10);
      return v > 0 ? static_cast<std::size_t>(v) : fallback;
    };
    return cmd_serve(num("clients", 8), num("requests", 64),
                     opts.count("cache") ? opts["cache"] : "");
  }

  const auto app_it = opts.find("app");
  if (app_it == opts.end()) return usage();
  const auto app = parse_app_slug(app_it->second);
  if (!app) {
    std::cerr << "unknown app: " << app_it->second << "\n";
    return 2;
  }

  if (cmd == "validate")
    return cmd_validate(*app, opts.count("backend") ? opts["backend"] : "");

  if (cmd == "run" || cmd == "client") {
    std::optional<PlatformId> platform;
    if (opts.count("platform")) {
      platform = parse_platform_slug(opts["platform"]);
      if (!platform) {
        std::cerr << "unknown platform: " << opts["platform"] << "\n";
        return 2;
      }
    }
    std::optional<Variant> variant;
    if (opts.count("variant")) {
      variant = parse_variant(opts["variant"]);
      if (!variant) {
        std::cerr << "unknown variant: " << opts["variant"] << "\n";
        return 2;
      }
    }
    std::optional<Strategy> strategy;
    if (opts.count("strategy")) {
      strategy = parse_strategy(opts["strategy"]);
      if (!strategy) {
        std::cerr << "unknown strategy: " << opts["strategy"] << "\n";
        return 2;
      }
    }
    if (cmd == "client")
      return cmd_client(*app, platform, variant, strategy,
                        opts.count("cache") ? opts["cache"] : "");
    return cmd_run(*app, platform, variant, strategy,
                   opts.count("trace") ? opts["trace"] : "");
  }
  return usage();
}
