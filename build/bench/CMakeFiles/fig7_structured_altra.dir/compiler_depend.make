# Empty compiler generated dependencies file for fig7_structured_altra.
# This may be replaced when dependencies are built.
