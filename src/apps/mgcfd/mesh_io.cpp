#include "apps/mgcfd/mesh_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace syclport::apps::mgcfd {

namespace {

[[noreturn]] void fail(const std::string& path, const std::string& what) {
  throw std::runtime_error("mesh_io: " + path + ": " + what);
}

/// Next non-comment, non-empty line.
bool next_line(std::istream& in, std::string& line) {
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '#') return true;
  }
  return false;
}

}  // namespace

void save_mesh(const std::string& path, const MultigridMesh& mesh) {
  std::ofstream out(path);
  if (!out) fail(path, "cannot open for writing");
  out.precision(17);  // round-trip exact doubles
  out << "syclport-mesh 1\n";
  out << "levels " << mesh.levels.size() << "\n";
  for (std::size_t l = 0; l < mesh.levels.size(); ++l) {
    const Level& lvl = mesh.levels[l];
    out << "level " << l << " dims " << lvl.dims[0] << " " << lvl.dims[1]
        << " " << lvl.dims[2] << " nodes " << lvl.nodes->size() << " edges "
        << lvl.edges->size() << " arity " << lvl.e2n->arity() << "\n";
    for (const auto& c : lvl.coords)
      out << c[0] << " " << c[1] << " " << c[2] << "\n";
    for (std::size_t e = 0; e < lvl.edges->size(); ++e) {
      for (int i = 0; i < lvl.e2n->arity(); ++i)
        out << lvl.e2n->at(e, i) << (i + 1 == lvl.e2n->arity() ? "\n" : " ");
    }
    if (l > 0) {
      const auto& f2c = *lvl.from_fine;
      out << "fromfine " << f2c.from().size() << "\n";
      for (std::size_t n = 0; n < f2c.from().size(); ++n)
        out << f2c.at(n, 0) << "\n";
    }
  }
  if (!out) fail(path, "write error");
}

MultigridMesh load_mesh(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail(path, "cannot open for reading");
  std::string line, word;

  if (!next_line(in, line) || line.rfind("syclport-mesh 1", 0) != 0)
    fail(path, "bad magic (expected 'syclport-mesh 1')");
  if (!next_line(in, line)) fail(path, "missing levels header");
  std::size_t nlevels = 0;
  {
    std::istringstream ss(line);
    ss >> word >> nlevels;
    if (word != "levels" || nlevels == 0) fail(path, "bad levels header");
  }

  MultigridMesh mesh;
  for (std::size_t l = 0; l < nlevels; ++l) {
    if (!next_line(in, line)) fail(path, "missing level header");
    std::istringstream ss(line);
    std::size_t idx = 0, nnodes = 0, nedges = 0;
    int arity = 0;
    std::array<std::size_t, 3> dims{};
    std::string w_level, w_dims, w_nodes, w_edges, w_arity;
    ss >> w_level >> idx >> w_dims >> dims[0] >> dims[1] >> dims[2] >>
        w_nodes >> nnodes >> w_edges >> nedges >> w_arity >> arity;
    if (w_level != "level" || idx != l || w_nodes != "nodes" ||
        w_edges != "edges" || arity < 1)
      fail(path, "bad level header at level " + std::to_string(l));

    Level lvl;
    lvl.dims = dims;
    lvl.nodes = std::make_unique<op2::Set>("nodes_" + std::to_string(l),
                                           nnodes);
    lvl.edges = std::make_unique<op2::Set>("edges_" + std::to_string(l),
                                           nedges);
    lvl.e2n = std::make_unique<op2::Map>(*lvl.edges, *lvl.nodes, arity,
                                         "e2n_" + std::to_string(l));
    lvl.coords.resize(nnodes);
    for (std::size_t n = 0; n < nnodes; ++n) {
      if (!next_line(in, line)) fail(path, "truncated coords");
      std::istringstream cs(line);
      if (!(cs >> lvl.coords[n][0] >> lvl.coords[n][1] >> lvl.coords[n][2]))
        fail(path, "bad coord line");
    }
    for (std::size_t e = 0; e < nedges; ++e) {
      if (!next_line(in, line)) fail(path, "truncated edges");
      std::istringstream es(line);
      for (int i = 0; i < arity; ++i)
        if (!(es >> lvl.e2n->at(e, i))) fail(path, "bad edge line");
    }
    lvl.e2n->check();

    if (l > 0) {
      if (!next_line(in, line)) fail(path, "missing fromfine header");
      std::istringstream fs(line);
      std::size_t nfine = 0;
      fs >> word >> nfine;
      const std::size_t expect = mesh.levels[l - 1].nodes->size();
      if (word != "fromfine" || nfine != expect)
        fail(path, "bad fromfine header");
      lvl.from_fine = std::make_unique<op2::Map>(
          *mesh.levels[l - 1].nodes, *lvl.nodes, 1,
          "f2c_" + std::to_string(l));
      for (std::size_t n = 0; n < nfine; ++n) {
        if (!next_line(in, line)) fail(path, "truncated fromfine");
        std::istringstream ms(line);
        if (!(ms >> lvl.from_fine->at(n, 0))) fail(path, "bad fromfine line");
      }
      lvl.from_fine->check();
    }
    mesh.levels.push_back(std::move(lvl));
  }
  return mesh;
}

}  // namespace syclport::apps::mgcfd
