// Ablation: out-of-order queue scheduling (docs/queue.md).
//
// Three experiments on the miniSYCL DAG scheduler:
//   1. independent - N command groups with disjoint footprints, each
//      emulating a fixed-latency device kernel. An in-order queue pays
//      N back-to-back latencies; the out-of-order queue keeps several
//      in flight, so wall time shrinks toward N/workers. This is the
//      kernel-launch serialization effect the paper discusses for
//      small (boundary) kernels, made measurable.
//   2. chain - the same N commands but RAW-dependent on one buffer.
//      The DAG must serialize them, so the out-of-order queue can win
//      nothing; the per-launch difference against the in-order queue
//      is the pure scheduling overhead of DAG bookkeeping.
//   3. dist overlap - 2-rank distributed Jacobi sweeps, blocking
//      (import halo, then sweep) vs overlapped (interior sweep runs as
//      an asynchronous command while the halo receives drain).
//
// The command records in sycl::launch_log provide submit->start
// latency and dependency-edge counts per command.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <iostream>
#include <mutex>
#include <thread>
#include <vector>

#include "core/report.hpp"
#include "core/timing.hpp"
#include "ops/dist.hpp"
#include "ops/ops.hpp"
#include "sycl/sycl.hpp"

using namespace syclport;
namespace ops = syclport::ops;
namespace dist = syclport::ops::dist;
namespace mpi = syclport::mpi;

namespace {

constexpr int kKernels = 32;
constexpr std::size_t kElems = 1024;
constexpr auto kKernelLatency = std::chrono::microseconds(500);

/// One emulated small device kernel: fixed latency plus a touch of the
/// command's own buffer (so the footprint is real, not a placebo).
void small_kernel(double* p) {
  std::this_thread::sleep_for(kKernelLatency);
  for (std::size_t i = 0; i < kElems; ++i) p[i] += 1.0;
}

double run_independent(sycl::queue q) {
  std::vector<std::vector<double>> bufs(
      kKernels, std::vector<double>(kElems, 0.0));
  WallTimer t;
  for (int c = 0; c < kKernels; ++c) {
    double* p = bufs[static_cast<std::size_t>(c)].data();
    q.submit([&](sycl::handler& h) {
      h.require(p, sycl::access_mode::read_write);
      h.single_task([p] { small_kernel(p); });
    });
  }
  q.wait();
  return t.seconds();
}

double run_chain(sycl::queue q) {
  std::vector<double> buf(kElems, 0.0);
  double* p = buf.data();
  WallTimer t;
  for (int c = 0; c < kKernels; ++c) {
    q.submit([&](sycl::handler& h) {
      h.require(p, sycl::access_mode::read_write);
      h.single_task([p] { small_kernel(p); });
    });
  }
  q.wait();
  return t.seconds();
}

struct DistResult {
  double blocking_s = 0.0;
  double overlap_s = 0.0;
};

DistResult run_dist(std::size_t n, int iters) {
  DistResult res;
  std::mutex mu;
  mpi::run(2, [&](mpi::Comm& comm) {
    dist::DistContext ctx(comm, 2);
    dist::DistDat<double> a(ctx, {n, n, 1}, 1), b(ctx, {n, n, 1}, 1);
    auto kernel = [](ops::ACC<double> out, ops::ACC<double> in) {
      out(0, 0) = 0.25 * (in(1, 0) + in(-1, 0) + in(0, 1) + in(0, -1));
    };
    auto init = [](std::size_t i, std::size_t j, std::size_t) {
      return std::sin(0.1 * static_cast<double>(i)) +
             std::cos(0.2 * static_cast<double>(j));
    };

    auto blocking_iter = [&] {
      dist::par_loop(ctx, kernel, dist::arg(b, ops::S_PT, ops::Acc::W),
                     dist::arg(a, ops::S2D_5PT, ops::Acc::R));
      std::swap(a.field().data, b.field().data);
    };
    auto overlap_iter = [&] {
      dist::par_loop_overlap(ctx, kernel,
                             dist::arg(b, ops::S_PT, ops::Acc::W),
                             dist::arg(a, ops::S2D_5PT, ops::Acc::R));
      std::swap(a.field().data, b.field().data);
    };

    // Warm caches, first-touch pages and the scheduler workers, then
    // time both paths interleaved and keep the best of ten - the
    // usual guard against timeslicing noise on a shared host.
    a.init(init);
    blocking_iter();
    overlap_iter();
    double blocking = 1e30, overlap = 1e30;
    for (int rep = 0; rep < 10; ++rep) {
      comm.barrier();
      WallTimer tb;
      for (int it = 0; it < iters; ++it) blocking_iter();
      blocking = std::min(blocking, tb.seconds());
      comm.barrier();
      WallTimer to;
      for (int it = 0; it < iters; ++it) overlap_iter();
      overlap = std::min(overlap, to.seconds());
    }

    if (comm.rank() == 0) {
      std::lock_guard lock(mu);
      res.blocking_s = blocking;
      res.overlap_s = overlap;
    }
  });
  return res;
}

}  // namespace

int main() {
  std::cout << "=== Ablation: out-of-order queue / halo overlap ===\n\n";
  auto& sched = sycl::detail::Scheduler::instance();
  std::cout << "scheduler workers: " << sched.workers() << "\n\n";

  report::Table t({"section", "queue", "metric", "value"});

  // 1. Independent kernels: the latency-hiding case.
  const sycl::property_list in_order_props{sycl::property::queue::in_order{}};
  const double ind_ordered = run_independent(sycl::queue{in_order_props});

  auto& log = sycl::launch_log::instance();
  log.clear();
  log.set_enabled(true);
  const double ind_ooo = run_independent(sycl::queue{});
  log.set_enabled(false);
  const auto ind_cmds = log.commands_snapshot();
  log.clear();

  double mean_latency = 0.0, mean_edges = 0.0;
  for (const auto& c : ind_cmds) {
    mean_latency += c.profile.start_seconds - c.profile.submit_seconds;
    mean_edges += static_cast<double>(c.profile.dep_edges);
  }
  if (!ind_cmds.empty()) {
    mean_latency /= static_cast<double>(ind_cmds.size());
    mean_edges /= static_cast<double>(ind_cmds.size());
  }
  const double ind_ratio = ind_ooo / ind_ordered;
  t.add_row({"independent", "in_order", "wall_ms",
             report::fmt(ind_ordered * 1e3, 3)});
  t.add_row({"independent", "out_of_order", "wall_ms",
             report::fmt(ind_ooo * 1e3, 3)});
  t.add_row({"independent", "out_of_order", "wall_ratio",
             report::fmt(ind_ratio, 3)});
  t.add_row({"independent", "out_of_order", "submit_to_start_us",
             report::fmt(mean_latency * 1e6, 2)});
  t.add_row({"independent", "out_of_order", "mean_dep_edges",
             report::fmt(mean_edges, 2)});
  std::cout << kKernels << " independent kernels: in-order "
            << report::fmt(ind_ordered * 1e3, 2) << " ms, out-of-order "
            << report::fmt(ind_ooo * 1e3, 2) << " ms (ratio "
            << report::fmt(ind_ratio, 2) << ", target <= 0.7)\n";

  // 2. Dependent chain: DAG bookkeeping overhead per launch.
  const double ch_ordered = run_chain(sycl::queue{in_order_props});

  log.clear();
  log.set_enabled(true);
  const double ch_ooo = run_chain(sycl::queue{});
  log.set_enabled(false);
  const auto ch_cmds = log.commands_snapshot();
  log.clear();

  double ch_edges = 0.0;
  for (const auto& c : ch_cmds)
    ch_edges += static_cast<double>(c.profile.dep_edges);
  if (!ch_cmds.empty()) ch_edges /= static_cast<double>(ch_cmds.size());
  const double overhead_us = (ch_ooo - ch_ordered) / kKernels * 1e6;
  t.add_row({"chain", "in_order", "wall_ms",
             report::fmt(ch_ordered * 1e3, 3)});
  t.add_row({"chain", "out_of_order", "wall_ms",
             report::fmt(ch_ooo * 1e3, 3)});
  t.add_row({"chain", "out_of_order", "sched_overhead_us_per_launch",
             report::fmt(overhead_us, 2)});
  t.add_row({"chain", "out_of_order", "mean_dep_edges",
             report::fmt(ch_edges, 2)});
  std::cout << kKernels << "-deep RAW chain: in-order "
            << report::fmt(ch_ordered * 1e3, 2) << " ms, out-of-order "
            << report::fmt(ch_ooo * 1e3, 2) << " ms ("
            << report::fmt(overhead_us, 2)
            << " us/launch DAG overhead, mean dep edges "
            << report::fmt(ch_edges, 2) << ")\n";

  // 3. Distributed sweep: halo/compute overlap. par_loop_overlap picks
  // its strategy from Scheduler::concurrency_available(): an async
  // queue command on multi-core hosts, inline ordering (sends in
  // flight during the interior sweep) on single-core ones where a
  // worker handoff buys no wall-clock overlap.
  const char* strategy =
      sycl::detail::Scheduler::concurrency_available() ? "queue" : "inline";
  const DistResult d = run_dist(/*n=*/512, /*iters=*/12);
  t.add_row({"dist_jacobi", "blocking", "wall_ms",
             report::fmt(d.blocking_s * 1e3, 3)});
  t.add_row({"dist_jacobi", "overlap", "wall_ms",
             report::fmt(d.overlap_s * 1e3, 3)});
  t.add_row({"dist_jacobi", "overlap", "wall_ratio",
             report::fmt(d.overlap_s / d.blocking_s, 3)});
  t.add_row({"dist_jacobi", "overlap", "strategy", strategy});
  std::cout << "2-rank Jacobi 512x512 x12: blocking "
            << report::fmt(d.blocking_s * 1e3, 2) << " ms, overlapped "
            << report::fmt(d.overlap_s * 1e3, 2) << " ms (ratio "
            << report::fmt(d.overlap_s / d.blocking_s, 2)
            << ", target <= 1.0, strategy " << strategy << ")\n";

  std::cout << "\n";
  t.render(std::cout);
  if (t.save_csv("ablation_async.csv"))
    std::cout << "\nwrote ablation_async.csv\n";
  std::cout << "(independent kernels overlap across scheduler workers; "
               "dependent chains degenerate to in-order plus bounded "
               "bookkeeping; interior sweeps hide halo latency.)\n";
  return 0;
}
