// Tests for the extended miniSYCL surface: group algorithms, sub-group
// shuffles and sycl::vec.

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "sycl/sycl.hpp"

TEST(GroupAlgorithms, ReduceOverGroup) {
  sycl::queue q;
  const std::size_t n = 128, wg = 32;
  std::vector<double> out(n, 0.0);
  double* p = out.data();
  q.parallel_for(sycl::nd_range<1>(sycl::range<1>(n), sycl::range<1>(wg)),
                 [=](sycl::nd_item<1> it) {
                   const double mine =
                       static_cast<double>(it.get_local_id(0) + 1);
                   const double total = sycl::reduce_over_group(
                       it.get_group(), mine, sycl::plus<double>{});
                   p[it.get_global_id(0)] = total;
                 });
  const double expect = 32.0 * 33.0 / 2.0;
  for (double v : out) EXPECT_DOUBLE_EQ(v, expect);
}

TEST(GroupAlgorithms, ReduceMin) {
  sycl::queue q;
  const std::size_t wg = 16;
  std::vector<double> out(wg, 0.0);
  double* p = out.data();
  q.parallel_for(sycl::nd_range<1>(sycl::range<1>(wg), sycl::range<1>(wg)),
                 [=](sycl::nd_item<1> it) {
                   const double mine =
                       100.0 - static_cast<double>(it.get_local_id(0));
                   p[it.get_local_id(0)] = sycl::reduce_over_group(
                       it.get_group(), mine, sycl::minimum<double>{});
                 });
  for (double v : out) EXPECT_DOUBLE_EQ(v, 100.0 - 15.0);
}

TEST(GroupAlgorithms, Broadcast) {
  sycl::queue q;
  const std::size_t wg = 8;
  std::vector<int> out(wg, -1);
  int* p = out.data();
  q.parallel_for(sycl::nd_range<1>(sycl::range<1>(wg), sycl::range<1>(wg)),
                 [=](sycl::nd_item<1> it) {
                   const int mine = static_cast<int>(it.get_local_id(0)) * 7;
                   p[it.get_local_id(0)] =
                       sycl::group_broadcast(it.get_group(), mine, 3);
                 });
  for (int v : out) EXPECT_EQ(v, 21);
}

TEST(GroupAlgorithms, InclusiveAndExclusiveScan) {
  sycl::queue q;
  const std::size_t wg = 16;
  std::vector<int> inc(wg), exc(wg);
  int* pi = inc.data();
  int* pe = exc.data();
  q.parallel_for(sycl::nd_range<1>(sycl::range<1>(wg), sycl::range<1>(wg)),
                 [=](sycl::nd_item<1> it) {
                   const int mine = 1;
                   const auto g = it.get_group();
                   pi[it.get_local_id(0)] = sycl::inclusive_scan_over_group(
                       g, mine, sycl::plus<int>{});
                   pe[it.get_local_id(0)] = sycl::exclusive_scan_over_group(
                       g, mine, sycl::plus<int>{});
                 });
  for (std::size_t i = 0; i < wg; ++i) {
    EXPECT_EQ(inc[i], static_cast<int>(i) + 1);
    EXPECT_EQ(exc[i], static_cast<int>(i));
  }
}

TEST(GroupAlgorithms, VoteFunctions) {
  sycl::queue q;
  const std::size_t wg = 16;
  int any_result = -1, all_result = -1;
  int* pa = &any_result;
  int* pl = &all_result;
  q.parallel_for(sycl::nd_range<1>(sycl::range<1>(wg), sycl::range<1>(wg)),
                 [=](sycl::nd_item<1> it) {
                   const auto g = it.get_group();
                   const bool one_true = it.get_local_id(0) == 5;
                   const bool a = sycl::any_of_group(g, one_true);
                   const bool l = sycl::all_of_group(g, one_true);
                   if (it.get_local_id(0) == 0) {
                     *pa = a ? 1 : 0;
                     *pl = l ? 1 : 0;
                   }
                 });
  EXPECT_EQ(any_result, 1);
  EXPECT_EQ(all_result, 0);
}

TEST(GroupAlgorithms, MultipleCallsInOneKernel) {
  sycl::queue q;
  const std::size_t wg = 8;
  std::vector<double> out(wg);
  double* p = out.data();
  q.parallel_for(sycl::nd_range<1>(sycl::range<1>(wg), sycl::range<1>(wg)),
                 [=](sycl::nd_item<1> it) {
                   const auto g = it.get_group();
                   const double a = sycl::reduce_over_group(
                       g, 1.0, sycl::plus<double>{});  // 8
                   const double b = sycl::reduce_over_group(
                       g, a, sycl::plus<double>{});  // 64
                   p[it.get_local_id(0)] = b;
                 });
  for (double v : out) EXPECT_DOUBLE_EQ(v, 64.0);
}

TEST(SubGroup, IdsPartitionTheGroup) {
  sycl::device_profile prof;
  prof.sub_group_size = 8;
  sycl::queue q{sycl::device(prof)};
  const std::size_t wg = 32;
  std::vector<int> sgid(wg), lid(wg), sz(wg);
  int* pg = sgid.data();
  int* pl = lid.data();
  int* ps = sz.data();
  q.parallel_for(sycl::nd_range<1>(sycl::range<1>(wg), sycl::range<1>(wg)),
                 [=](sycl::nd_item<1> it) {
                   const auto sg = it.get_sub_group();
                   const auto i = it.get_local_id(0);
                   pg[i] = static_cast<int>(sg.get_group_linear_id());
                   pl[i] = static_cast<int>(sg.get_local_linear_id());
                   ps[i] = static_cast<int>(sg.get_local_linear_range());
                 });
  for (std::size_t i = 0; i < wg; ++i) {
    EXPECT_EQ(sgid[i], static_cast<int>(i / 8));
    EXPECT_EQ(lid[i], static_cast<int>(i % 8));
    EXPECT_EQ(sz[i], 8);
  }
}

TEST(SubGroup, PartialTrailingSubGroup) {
  sycl::device_profile prof;
  prof.sub_group_size = 8;
  sycl::queue q{sycl::device(prof)};
  const std::size_t wg = 12;  // sub-groups of 8 and 4
  std::vector<int> sz(wg);
  int* ps = sz.data();
  q.parallel_for(sycl::nd_range<1>(sycl::range<1>(wg), sycl::range<1>(wg)),
                 [=](sycl::nd_item<1> it) {
                   ps[it.get_local_id(0)] = static_cast<int>(
                       it.get_sub_group().get_local_linear_range());
                 });
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(sz[i], 8);
  for (std::size_t i = 8; i < 12; ++i) EXPECT_EQ(sz[i], 4);
}

TEST(SubGroup, ShuffleDownWithinSubGroupOnly) {
  sycl::device_profile prof;
  prof.sub_group_size = 4;
  sycl::queue q{sycl::device(prof)};
  const std::size_t wg = 8;
  std::vector<double> out(wg);
  double* p = out.data();
  q.parallel_for(sycl::nd_range<1>(sycl::range<1>(wg), sycl::range<1>(wg)),
                 [=](sycl::nd_item<1> it) {
                   const auto sg = it.get_sub_group();
                   const double mine =
                       static_cast<double>(it.get_local_id(0));
                   p[it.get_local_id(0)] = sg.shuffle_down(mine, 1);
                 });
  // Sub-group 0 holds {0,1,2,3}: shuffle_down(1) -> {1,2,3,3 (clamped)}.
  EXPECT_DOUBLE_EQ(out[0], 1.0);
  EXPECT_DOUBLE_EQ(out[2], 3.0);
  EXPECT_DOUBLE_EQ(out[3], 3.0);  // no bleed from sub-group 1
  EXPECT_DOUBLE_EQ(out[4], 5.0);
  EXPECT_DOUBLE_EQ(out[7], 7.0);
}

TEST(SubGroup, ShuffleXorButterfly) {
  sycl::device_profile prof;
  prof.sub_group_size = 4;
  sycl::queue q{sycl::device(prof)};
  const std::size_t wg = 4;
  std::vector<double> out(wg);
  double* p = out.data();
  q.parallel_for(sycl::nd_range<1>(sycl::range<1>(wg), sycl::range<1>(wg)),
                 [=](sycl::nd_item<1> it) {
                   const auto sg = it.get_sub_group();
                   double v = static_cast<double>(it.get_local_id(0) + 1);
                   // Butterfly reduction: after log2(4) rounds all hold 10.
                   v += sg.shuffle_xor(v, 1);
                   v += sg.shuffle_xor(v, 2);
                   p[it.get_local_id(0)] = v;
                 });
  for (double v : out) EXPECT_DOUBLE_EQ(v, 10.0);
}

TEST(Vec, ArithmeticAndAccessors) {
  sycl::double4 a(1.0, 2.0, 3.0, 4.0);
  sycl::double4 b(0.5);
  auto c = a + b * 2.0;
  EXPECT_DOUBLE_EQ(c.x(), 2.0);
  EXPECT_DOUBLE_EQ(c.w(), 5.0);
  EXPECT_DOUBLE_EQ((a * b).hsum(), 5.0);
  EXPECT_EQ(sycl::float3::size(), 3);
}

TEST(Vec, LoadStoreRoundTrip) {
  std::vector<float> data(12);
  std::iota(data.begin(), data.end(), 0.0f);
  sycl::float4 v;
  v.load(1, data.data());  // elements 4..7
  EXPECT_FLOAT_EQ(v.x(), 4.0f);
  EXPECT_FLOAT_EQ(v.w(), 7.0f);
  v = v * 2.0f;
  v.store(2, data.data());  // elements 8..11
  EXPECT_FLOAT_EQ(data[8], 8.0f);
  EXPECT_FLOAT_EQ(data[11], 14.0f);
}

TEST(Vec, ComparisonAndSplat) {
  sycl::int2 a(3, 3);
  sycl::int2 b(3);
  EXPECT_EQ(a, b);
  EXPECT_FALSE((a == sycl::int2(3, 4)));
}
