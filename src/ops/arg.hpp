#pragma once
/// \file arg.hpp
/// par_loop arguments and the kernel-side views:
///  - DatArg / arg(): a dat with its stencil and access mode;
///  - RedArg / reduce(): a global reduction target;
///  - ACC<T>: the positioned accessor kernels index with relative
///    offsets, fastest dimension first: acc(dx[,dy[,dz]]) and the
///    multi-component form acc(c, dx[,dy[,dz]]);
///  - Reducer<T>: the kernel-side combiner (atomic, backend-agnostic).

#include <cstddef>

#include "core/reducer.hpp"
#include "ops/dat.hpp"
#include "ops/stencil.hpp"

namespace syclport::ops {

/// Access modes, as in OPS (INC only used for global reductions here;
/// structured kernels write only their own point).
enum class Acc : std::uint8_t { R, W, RW };

using syclport::Reducer;
using syclport::RedOp;

template <typename T>
struct DatArg {
  Dat<T>* dat;
  Stencil st;
  Acc acc;
};

template <typename T>
[[nodiscard]] DatArg<T> arg(Dat<T>& d, Stencil st, Acc a) {
  return {&d, st, a};
}

template <typename T>
struct RedArg {
  T* target;
  RedOp op;
};

template <typename T>
[[nodiscard]] RedArg<T> reduce(T& target, RedOp op) {
  return {&target, op};
}

/// Kernel-side accessor positioned at the current iteration point.
template <typename T>
class ACC {
 public:
  ACC(T* p, std::ptrdiff_t sx, std::ptrdiff_t sy, std::ptrdiff_t sz)
      : p_(p), sx_(sx), sy_(sy), sz_(sz) {}

  // Single-component relative access (fastest offset first).
  [[nodiscard]] T& operator()(int dx) const { return p_[dx * sx_]; }
  [[nodiscard]] T& operator()(int dx, int dy) const {
    return p_[dx * sx_ + dy * sy_];
  }
  [[nodiscard]] T& operator()(int dx, int dy, int dz) const {
    return p_[dx * sx_ + dy * sy_ + dz * sz_];
  }

  // Multi-component access: component index first.
  [[nodiscard]] T& comp(int c, int dx) const { return p_[c + dx * sx_]; }
  [[nodiscard]] T& comp(int c, int dx, int dy) const {
    return p_[c + dx * sx_ + dy * sy_];
  }
  [[nodiscard]] T& comp(int c, int dx, int dy, int dz) const {
    return p_[c + dx * sx_ + dy * sy_ + dz * sz_];
  }

 private:
  T* p_;
  std::ptrdiff_t sx_, sy_, sz_;
};

}  // namespace syclport::ops
