#pragma once
/// \file comm.hpp
/// mini-MPI: an in-process message-passing substrate. The study's DSLs
/// use the MPI and MPI+X execution models; this module provides real
/// message-passing semantics (typed point-to-point sends/receives with
/// tags, barriers, reductions, gathers) between ranks that run as
/// threads of one process. Wire format and transport are irrelevant to
/// the paper's results - ownership, packing and exchange *structure*
/// are what OPS/OP2 exercise, and those are faithfully reproduced.

#include <condition_variable>
#include <cstddef>
#include <cstring>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <stdexcept>
#include <vector>

namespace syclport::mpi {

/// Reduction operations supported by allreduce.
enum class Op { Sum, Min, Max };

namespace detail {
struct Message {
  int src;
  int tag;
  std::vector<std::byte> payload;
};

/// Shared state of one communicator world.
struct World {
  explicit World(int n) : size(n), mailboxes(static_cast<std::size_t>(n)) {}

  int size;
  std::mutex mu;
  std::condition_variable cv;

  /// mailboxes[dst] holds messages awaiting receipt, FIFO per (src,tag).
  std::vector<std::deque<Message>> mailboxes;

  // Barrier / collective state.
  int barrier_count = 0;
  std::uint64_t barrier_generation = 0;
  std::vector<std::vector<std::byte>> gather_slots;
};
}  // namespace detail

/// A rank's handle to the world: the mini-MPI equivalent of an
/// MPI_Comm + rank id.
class Comm {
 public:
  Comm(std::shared_ptr<detail::World> world, int rank)
      : world_(std::move(world)), rank_(rank) {}

  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] int size() const noexcept { return world_->size; }

  /// Blocking typed send (buffered: copies payload and returns).
  template <typename T>
  void send(int dest, int tag, std::span<const T> data) {
    send_bytes(dest, tag, std::as_bytes(data));
  }
  template <typename T>
  void send(int dest, int tag, const T& scalar) {
    send(dest, tag, std::span<const T>(&scalar, 1));
  }

  /// Blocking typed receive; message size must match exactly.
  template <typename T>
  void recv(int src, int tag, std::span<T> out) {
    recv_bytes(src, tag, std::as_writable_bytes(out));
  }
  template <typename T>
  void recv(int src, int tag, T& scalar) {
    recv(src, tag, std::span<T>(&scalar, 1));
  }

  /// Paired exchange with a neighbour (send then receive, deadlock-free
  /// because sends are buffered).
  template <typename T>
  void sendrecv(int peer, int tag, std::span<const T> out, std::span<T> in) {
    send(peer, tag, out);
    recv(peer, tag, in);
  }

  /// Non-blocking operations. Sends are buffered, so isend completes
  /// immediately; irecv defers the matching receive until wait() - the
  /// usual MPI contract (the receive buffer must stay alive and
  /// untouched until the request is waited on) is therefore preserved.
  class Request {
   public:
    Request() = default;
    void wait() {
      if (complete_) complete_();
      complete_ = nullptr;
    }
    [[nodiscard]] bool pending() const { return static_cast<bool>(complete_); }

   private:
    friend class Comm;
    explicit Request(std::function<void()> c) : complete_(std::move(c)) {}
    std::function<void()> complete_;
  };

  template <typename T>
  [[nodiscard]] Request isend(int dest, int tag, std::span<const T> data) {
    send(dest, tag, data);  // buffered: completes eagerly
    return Request{};
  }

  template <typename T>
  [[nodiscard]] Request irecv(int src, int tag, std::span<T> out) {
    return Request([this, src, tag, out] { recv(src, tag, out); });
  }

  static void waitall(std::span<Request> reqs) {
    for (Request& r : reqs) r.wait();
  }

  void barrier();

  /// Allreduce of a scalar (Sum/Min/Max).
  template <typename T>
  [[nodiscard]] T allreduce(T local, Op op) {
    std::vector<T> all(static_cast<std::size_t>(size()));
    allgather_impl(&local, sizeof(T), all.data());
    T acc = all[0];
    for (std::size_t i = 1; i < all.size(); ++i) {
      switch (op) {
        case Op::Sum: acc = acc + all[i]; break;
        case Op::Min: acc = all[i] < acc ? all[i] : acc; break;
        case Op::Max: acc = acc < all[i] ? all[i] : acc; break;
      }
    }
    return acc;
  }

  /// Gather one value per rank to every rank.
  template <typename T>
  [[nodiscard]] std::vector<T> allgather(T local) {
    std::vector<T> all(static_cast<std::size_t>(size()));
    allgather_impl(&local, sizeof(T), all.data());
    return all;
  }

 private:
  void send_bytes(int dest, int tag, std::span<const std::byte> data);
  void recv_bytes(int src, int tag, std::span<std::byte> out);
  void allgather_impl(const void* local, std::size_t bytes, void* out);

  std::shared_ptr<detail::World> world_;
  int rank_;
};

/// Launch `nranks` copies of `rank_fn` as threads sharing one world and
/// join them all. Exceptions from any rank are rethrown (first wins).
void run(int nranks, const std::function<void(Comm&)>& rank_fn);

}  // namespace syclport::mpi
