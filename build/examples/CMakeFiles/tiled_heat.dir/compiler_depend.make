# Empty compiler generated dependencies file for tiled_heat.
# This may be replaced when dependencies are built.
