// Unit tests for the rt::mem subsystem: size-class pool, first-touch
// initialisation modes, streaming fill/copy, the Array<T> dat backing,
// USM leak/alignment round-trips through it, and the autotuner's
// first-touch axis wire format.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <thread>
#include <vector>

#include "runtime/autotune/autotune.hpp"
#include "runtime/mem/array.hpp"
#include "runtime/mem/mem.hpp"
#include "runtime/mem/stream.hpp"
#include "sycl/sycl.hpp"

namespace mem = syclport::rt::mem;

namespace {

/// Restore the default config after a test that swaps it.
struct ConfigGuard {
  mem::Config saved = mem::config();
  ~ConfigGuard() { mem::set_config_for_testing(saved); }
};

}  // namespace

TEST(MemSizeClass, SmallRequestsShareTheFloorClass) {
  EXPECT_EQ(mem::size_class_bytes(1), 4096u);
  EXPECT_EQ(mem::size_class_bytes(64), 4096u);
  EXPECT_EQ(mem::size_class_bytes(4096), 4096u);
}

TEST(MemSizeClass, PowerOfTwoBoundaries) {
  EXPECT_EQ(mem::size_class_bytes(4097), 8192u);
  EXPECT_EQ(mem::size_class_bytes(8192), 8192u);
  EXPECT_EQ(mem::size_class_bytes(8193), 16384u);
  EXPECT_EQ(mem::size_class_bytes(1u << 20), 1u << 20);
  EXPECT_EQ(mem::size_class_bytes((1u << 20) + 1), 2u << 20);
}

TEST(MemSizeClass, HugeRequestsRoundToPagesNotClasses) {
  // Beyond the largest pooled class the request is page/huge-page
  // rounded, not doubled to the next power of two.
  const std::size_t big = (std::size_t{1} << 30) + 1;
  const std::size_t rounded = mem::size_class_bytes(big);
  EXPECT_GE(rounded, big);
  EXPECT_LT(rounded, 2 * big);
}

TEST(MemPool, ReusesFreedBlocksOfTheSameClass) {
  ConfigGuard g;
  mem::Config c = mem::config();
  c.pool = true;
  mem::set_config_for_testing(c);

  constexpr std::size_t kBytes = 64u << 10;
  void* p = mem::alloc(kBytes, mem::Init::Touch);
  ASSERT_NE(p, nullptr);
  mem::dealloc(p);

  const auto before = mem::stats();
  void* q = mem::alloc(kBytes, mem::Init::Touch);
  const auto after = mem::stats();
  EXPECT_EQ(after.pool_hits, before.pool_hits + 1);
  // LIFO thread cache: the same block comes back.
  EXPECT_EQ(q, p);
  mem::dealloc(q);
  mem::trim();
}

TEST(MemPool, DisabledPoolGoesToTheOsEveryTime) {
  ConfigGuard g;
  mem::Config c = mem::config();
  c.pool = false;
  mem::set_config_for_testing(c);

  void* p = mem::alloc(32u << 10);
  mem::dealloc(p);
  const auto before = mem::stats();
  void* q = mem::alloc(32u << 10);
  const auto after = mem::stats();
  EXPECT_EQ(after.pool_hits, before.pool_hits);
  EXPECT_EQ(after.fresh_allocs, before.fresh_allocs + 1);
  mem::dealloc(q);
}

TEST(MemPool, OutstandingAndPooledBytesBalance) {
  ConfigGuard g;
  mem::set_config_for_testing(mem::config());  // flush pool to a known state
  mem::trim();

  const auto base = mem::stats();
  constexpr std::size_t kBytes = 128u << 10;
  void* p = mem::alloc(kBytes);
  auto s = mem::stats();
  EXPECT_EQ(s.bytes_outstanding, base.bytes_outstanding + kBytes);
  mem::dealloc(p);
  s = mem::stats();
  EXPECT_EQ(s.bytes_outstanding, base.bytes_outstanding);
  EXPECT_GE(s.bytes_pooled, base.bytes_pooled + kBytes);
  mem::trim();
  s = mem::stats();
  EXPECT_EQ(s.bytes_pooled, 0u);
}

TEST(MemPool, ZeroInitAlwaysZeroesReusedDirtyBlocks) {
  ConfigGuard g;
  mem::Config c = mem::config();
  c.pool = true;
  mem::set_config_for_testing(c);

  constexpr std::size_t kCount = (256u << 10) / sizeof(std::uint64_t);
  auto* p = static_cast<std::uint64_t*>(
      mem::alloc(kCount * sizeof(std::uint64_t), mem::Init::Touch));
  for (std::size_t i = 0; i < kCount; ++i) p[i] = 0xDEADBEEFCAFEF00Dull;
  mem::dealloc(p);

  auto* q = static_cast<std::uint64_t*>(
      mem::alloc(kCount * sizeof(std::uint64_t), mem::Init::Zero));
  for (std::size_t i = 0; i < kCount; ++i) ASSERT_EQ(q[i], 0u) << "i=" << i;
  mem::dealloc(q);
  mem::trim();
}

TEST(MemPool, AlignmentIsAtLeastCacheLine) {
  for (const std::size_t bytes : {std::size_t{64}, std::size_t{4096},
                                  std::size_t{1u << 20}}) {
    void* p = mem::alloc(bytes);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 64, 0u);
    mem::dealloc(p);
  }
}

TEST(MemPool, HugePathAlignsToTwoMiB) {
  ConfigGuard g;
  mem::Config c = mem::config();
  c.hugepages = true;
  mem::set_config_for_testing(c);

  const auto before = mem::stats();
  void* p = mem::alloc(4u << 20);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % (2u << 20), 0u);
  const auto after = mem::stats();
  EXPECT_GE(after.hugepage_bytes, before.hugepage_bytes + (4u << 20));
  EXPECT_GT(after.hugepage_coverage(), 0.0);
  mem::dealloc(p);
  mem::trim();
}

TEST(MemPool, DoubleFreeAndNullAreIgnored) {
  mem::dealloc(nullptr);
  void* p = mem::alloc(4096);
  mem::dealloc(p);
  mem::dealloc(p);  // registry entry already consumed or pooled: no crash
  mem::trim();
}

TEST(MemFirstTouch, ParallelZeroMatchesSerialContent) {
  // Determinism: the parallel streaming zero and a serial memset must
  // produce identical bytes (TSan additionally checks the parallel
  // path is race-free).
  constexpr std::size_t kCount = (4u << 20) / sizeof(double);
  auto* p =
      static_cast<double*>(mem::alloc(kCount * sizeof(double), mem::Init::Zero));
  for (std::size_t i = 0; i < kCount; ++i) ASSERT_EQ(p[i], 0.0) << "i=" << i;
  mem::dealloc(p);
  mem::trim();
}

TEST(MemFirstTouch, SerialModeStillZeroes) {
  ConfigGuard g;
  mem::Config c = mem::config();
  c.first_touch = false;
  mem::set_config_for_testing(c);
  constexpr std::size_t kCount = (1u << 20) / sizeof(std::uint32_t);
  auto* p = static_cast<std::uint32_t*>(
      mem::alloc(kCount * sizeof(std::uint32_t), mem::Init::Zero));
  for (std::size_t i = 0; i < kCount; ++i) ASSERT_EQ(p[i], 0u);
  mem::dealloc(p);
  mem::trim();
}

TEST(MemFirstTouch, OverrideIsThreadLocal) {
  mem::set_first_touch_override(false);
  EXPECT_FALSE(mem::first_touch_active());
  bool other_thread_sees_config = false;
  std::thread([&] {
    other_thread_sees_config =
        !mem::first_touch_override().has_value() &&
        mem::first_touch_active() == mem::config().first_touch;
  }).join();
  EXPECT_TRUE(other_thread_sees_config);
  mem::set_first_touch_override(std::nullopt);
  EXPECT_EQ(mem::first_touch_active(), mem::config().first_touch);
}

TEST(MemFirstTouch, TouchCountsTelemetry) {
  ConfigGuard g;
  mem::Config c = mem::config();
  c.first_touch = true;
  c.pool = false;  // force a fresh block so Touch actually runs
  mem::set_config_for_testing(c);
  const auto before = mem::stats();
  constexpr std::size_t kBytes = 2u << 20;
  void* p = mem::alloc(kBytes, mem::Init::Touch);
  const auto after = mem::stats();
  EXPECT_GE(after.bytes_first_touched, before.bytes_first_touched + kBytes);
  mem::dealloc(p);
}

TEST(MemStream, ParallelFillWritesEveryElement) {
  constexpr std::size_t kCount = (3u << 20) / sizeof(double) + 3;  // odd tail
  std::vector<double> v(kCount, -1.0);
  mem::parallel_fill(v.data(), v.size(), 2.5);
  for (std::size_t i = 0; i < kCount; ++i) ASSERT_EQ(v[i], 2.5) << "i=" << i;
}

TEST(MemStream, ParallelCopyMatchesMemcpy) {
  constexpr std::size_t kBytes = (2u << 20) + 13;  // unaligned tail
  std::vector<std::uint8_t> src(kBytes), dst(kBytes, 0);
  for (std::size_t i = 0; i < kBytes; ++i)
    src[i] = static_cast<std::uint8_t>(i * 131 + 7);
  mem::parallel_copy(dst.data(), src.data(), kBytes);
  EXPECT_EQ(std::memcmp(dst.data(), src.data(), kBytes), 0);
}

TEST(MemStream, FillAndCopyTelemetryAdvances) {
  const auto before = mem::stats();
  std::vector<double> a(1u << 16, 0.0), b(1u << 16, 1.0);
  mem::parallel_fill(a.data(), a.size(), 3.0);
  mem::parallel_copy(b.data(), a.data(), a.size() * sizeof(double));
  const auto after = mem::stats();
  EXPECT_GE(after.stream_fill_bytes,
            before.stream_fill_bytes + a.size() * sizeof(double));
  EXPECT_GE(after.stream_copy_bytes,
            before.stream_copy_bytes + a.size() * sizeof(double));
}

TEST(MemArray, ZeroInitAndFill) {
  syclport::rt::mem::Array<double> a(1000);
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], 0.0);
  a.fill(4.0);
  for (const double x : a) ASSERT_EQ(x, 4.0);
}

TEST(MemArray, AssignReallocatesOnlyOnSizeChange) {
  syclport::rt::mem::Array<float> a(100);
  const float* before = a.data();
  a.assign(100, 7.0f);
  EXPECT_EQ(a.data(), before);  // same size: storage kept
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], 7.0f);
  a.assign(200, 1.0f);
  EXPECT_EQ(a.size(), 200u);
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], 1.0f);
}

TEST(MemArray, MoveTransfersOwnership) {
  syclport::rt::mem::Array<int> a(64);
  a.fill(3);
  int* p = a.data();
  syclport::rt::mem::Array<int> b(std::move(a));
  EXPECT_EQ(b.data(), p);
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(b[63], 3);
}

TEST(MemUsm, OutstandingBytesTracksAllocAndFree) {
  sycl::queue q;
  const std::size_t base = sycl::usm_outstanding_bytes();
  double* p = sycl::malloc_device<double>(1u << 16, q);
  EXPECT_EQ(sycl::usm_outstanding_bytes(), base + (1u << 16) * sizeof(double));
  double* r = sycl::malloc_shared<double>(100, q);
  EXPECT_EQ(sycl::usm_outstanding_bytes(),
            base + (1u << 16) * sizeof(double) + 100 * sizeof(double));
  sycl::free(p, q);
  sycl::free(r, q);
  EXPECT_EQ(sycl::usm_outstanding_bytes(), base);
}

TEST(MemUsm, RecycledPointerReRegistersCleanly) {
  // The pool can hand the same address back; the registry must replace
  // the stale byte count, not double-count it.
  sycl::queue q;
  const std::size_t base = sycl::usm_outstanding_bytes();
  for (int i = 0; i < 8; ++i) {
    float* p = sycl::malloc_device<float>(1u << 14, q);
    sycl::free(p, q);
  }
  EXPECT_EQ(sycl::usm_outstanding_bytes(), base);
  mem::trim();
}

TEST(MemUsm, LargeUsmIsHugeAligned) {
  sycl::queue q;
  double* p = sycl::malloc_device<double>((8u << 20) / sizeof(double), q);
  if (mem::config().hugepages) {
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % (2u << 20), 0u);
  }
  sycl::free(p, q);
  mem::trim();
}

TEST(MemBuffer, DiscardWriteSkipsZeroAndSeesKernelValues) {
  sycl::queue q;
  constexpr std::size_t n = 1u << 16;
  sycl::buffer<double, 1> buf{sycl::range<1>(n)};
  q.submit([&](sycl::handler& h) {
    sycl::accessor acc{buf, h, sycl::write_only, sycl::no_init};
    h.parallel_for(sycl::range<1>(n), [=](sycl::item<1> it) {
      acc[it.get_linear_id()] = static_cast<double>(it.get_linear_id());
    });
  });
  q.wait();
  sycl::host_accessor host{buf};
  for (std::size_t i = 0; i < n; ++i)
    ASSERT_EQ(host[i], static_cast<double>(i)) << "i=" << i;
}

TEST(MemBuffer, ReadOfUntouchedBufferSeesZeros) {
  // A buffer that was never written materialises as zeros on first
  // read (lazy zero-fill), matching the eager-zero seed semantics.
  sycl::queue q;
  constexpr std::size_t n = 4096;
  sycl::buffer<int, 1> buf{sycl::range<1>(n)};
  long long sum = -1;
  {
    sycl::buffer<long long, 1> out{sycl::range<1>(1)};
    q.submit([&](sycl::handler& h) {
      sycl::accessor in{buf, h, sycl::read_only};
      sycl::accessor o{out, h, sycl::read_write};
      h.single_task([=] {
        long long s = 0;
        for (std::size_t i = 0; i < n; ++i) s += in[i];
        o[0] = s;
      });
    });
    q.wait();
    sycl::host_accessor ho{out};
    sum = ho[0];
  }
  EXPECT_EQ(sum, 0);
}

TEST(MemBuffer, HandlerFillThenCopy) {
  sycl::queue q;
  constexpr std::size_t n = 1u << 14;
  sycl::buffer<double, 1> a{sycl::range<1>(n)}, b{sycl::range<1>(n)};
  q.submit([&](sycl::handler& h) {
    sycl::accessor acc{a, h, sycl::write_only, sycl::no_init};
    h.fill(acc, 1.5);
  });
  q.submit([&](sycl::handler& h) {
    sycl::accessor src{a, h, sycl::read_only};
    sycl::accessor dst{b, h, sycl::write_only, sycl::no_init};
    h.copy(src, dst);
  });
  q.wait();
  sycl::host_accessor hb{b};
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hb[i], 1.5);
}

TEST(MemBuffer, QueueFillAndMemcpyOnUsm) {
  sycl::queue q;
  constexpr std::size_t n = 1u << 15;
  double* a = sycl::malloc_device<double>(n, q);
  double* b = sycl::malloc_device<double>(n, q);
  q.fill(a, 2.25, n);
  q.wait();
  q.memcpy(b, a, n * sizeof(double));
  q.wait();
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(b[i], 2.25) << "i=" << i;
  sycl::free(a, q);
  sycl::free(b, q);
}

TEST(MemAutotune, FirstTouchRoundTripsThroughWireFormat) {
  namespace at = syclport::rt::autotune;
  at::Config c;
  c.tile = 32;
  c.first_touch = true;
  const std::string wire = c.to_string();
  EXPECT_NE(wire.find("first_touch=on"), std::string::npos);
  const auto back = at::Config::parse(wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, c);

  c.first_touch = false;
  const auto back2 = at::Config::parse(c.to_string());
  ASSERT_TRUE(back2.has_value());
  EXPECT_EQ(back2->first_touch, std::optional<bool>(false));

  EXPECT_FALSE(at::Config::parse("first_touch=sideways").has_value());
}

TEST(MemPool, TinyArenaCapDegradesGracefullyNotFatally) {
  // With the arena cap below a single block's class, nothing is ever
  // pooled - every request must still be served (from the OS), and the
  // initialisation contract must still hold.
  ConfigGuard g;
  mem::Config c = mem::config();
  c.pool = true;
  c.pool_max_bytes = 32u << 10;
  mem::set_config_for_testing(c);
  mem::reset_stats_for_testing();

  constexpr std::size_t kBytes = 64u << 10;  // class > cap
  void* p = mem::alloc(kBytes, mem::Init::Zero);
  ASSERT_NE(p, nullptr);
  std::memset(p, 0x5A, kBytes);
  mem::dealloc(p);  // over the cap: straight back to the OS

  void* q = mem::alloc(kBytes, mem::Init::Zero);
  ASSERT_NE(q, nullptr);
  const auto* bytes = static_cast<const unsigned char*>(q);
  for (std::size_t i = 0; i < kBytes; i += 997) EXPECT_EQ(bytes[i], 0u);
  const auto s = mem::stats();
  EXPECT_EQ(s.pool_hits, 0u);  // the saturated pool never served a hit
  EXPECT_GE(s.fresh_allocs, 2u);
  EXPECT_EQ(s.pool_fallbacks, 0u);  // degraded, but no allocation failed
  mem::dealloc(q);
}
