file(REMOVE_RECURSE
  "CMakeFiles/distributed_mgcfd.dir/distributed_mgcfd.cpp.o"
  "CMakeFiles/distributed_mgcfd.dir/distributed_mgcfd.cpp.o.d"
  "distributed_mgcfd"
  "distributed_mgcfd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_mgcfd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
