// Figure 9 reproduction: MG-CFD (Rotor37-scale) runtimes on the three
// CPU platforms. The failing SYCL variant/compiler combinations the
// paper reports (internal compiler errors, crashes, incorrect results,
// §4.3) appear as annotated gaps, exactly as in the figure.

#include <iostream>

#include "common/figures.hpp"

using namespace syclport;

int main() {
  study::StudyRunner runner;
  bench::mgcfd_figure(std::cout, runner,
                      {PlatformId::Xeon8360Y, PlatformId::GenoaX,
                       PlatformId::Altra},
                      "Figure 9: MG-CFD (Rotor37) on CPU architectures",
                      "fig9_mgcfd_cpu");
  return 0;
}
