file(REMOVE_RECURSE
  "CMakeFiles/fig7_structured_altra.dir/fig7_structured_altra.cpp.o"
  "CMakeFiles/fig7_structured_altra.dir/fig7_structured_altra.cpp.o.d"
  "fig7_structured_altra"
  "fig7_structured_altra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_structured_altra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
