// portability_report: the study harness as a library - run your own
// mini performance-portability study. Sweeps two applications over all
// six platforms and every variant, prints the efficiency matrix and the
// Pennycook PP metric per variant family - the paper's §4.4 analysis as
// a reusable 60-line program.
//
// Build & run:  ./build/examples/portability_report

#include <iostream>
#include <vector>

#include "core/pp_metric.hpp"
#include "core/report.hpp"
#include "study/study.hpp"

using namespace syclport;

int main() {
  study::StudyRunner runner;
  // Reduced problem sizes so the report builds in seconds.
  runner.set_structured_size(AppId::CloverLeaf2D, {{2048, 2048, 1}, 10});
  runner.set_structured_size(AppId::RTM, {{192, 192, 192}, 10});

  const std::vector<AppId> apps{AppId::CloverLeaf2D, AppId::RTM};

  report::Table t({"platform", "variant", "CloverLeaf2D", "RTM"});
  for (PlatformId p : kAllPlatforms) {
    for (const Variant& v : study::structured_variants(p)) {
      std::vector<std::string> row{std::string(to_string(p)), to_string(v)};
      for (AppId a : apps) {
        const auto r = runner.run(a, p, v);
        row.push_back(r.ok() ? report::fmt_percent(r.efficiency)
                             : std::string(to_string(r.status)));
      }
      t.add_row(row);
    }
  }
  std::cout << "architectural efficiency (fraction of STREAM Triad):\n";
  t.render(std::cout);

  std::cout << "\nPennycook PP metric per variant family:\n";
  report::Table pp({"variant family", "PP (supported-only)"});
  struct Fam { Model m; Toolchain tc; const char* name; };
  for (const Fam f : {Fam{Model::SYCLNDRange, Toolchain::DPCPP, "DPC++ nd_range"},
                      Fam{Model::SYCLNDRange, Toolchain::OpenSYCL,
                          "OpenSYCL nd_range"},
                      Fam{Model::SYCLFlat, Toolchain::DPCPP, "DPC++ flat"},
                      Fam{Model::SYCLFlat, Toolchain::OpenSYCL,
                          "OpenSYCL flat"}}) {
    std::vector<double> per_app;
    for (AppId a : apps) {
      std::vector<double> effs;
      for (PlatformId p : kAllPlatforms) {
        double e = 0.0;
        for (const Variant& v : study::structured_variants(p)) {
          if (v.model != f.m || v.toolchain != f.tc) continue;
          const auto r = runner.run(a, p, v);
          if (r.ok()) e = r.efficiency;
        }
        effs.push_back(e);
      }
      per_app.push_back(pp_supported_only(effs));
    }
    pp.add_row({f.name,
                report::fmt(0.5 * (per_app[0] + per_app[1]), 2)});
  }
  pp.render(std::cout);
  return 0;
}
