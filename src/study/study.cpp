#include "study/study.hpp"

#include <algorithm>

#include "hwmodel/comm_model.hpp"
#include "hwmodel/platform.hpp"

namespace syclport::study {

namespace {

constexpr double kPaperMgcfdNodes = 8e6;  // NASA Rotor37 (paper §3)

ops::Backend ops_backend(const Variant& v) {
  switch (v.model) {
    case Model::MPI: return ops::Backend::MPI;
    case Model::MPI_OpenMP: return ops::Backend::MPIThreads;
    case Model::SYCLFlat: return ops::Backend::SyclFlat;
    case Model::SYCLNDRange: return ops::Backend::SyclNd;
    default: return ops::Backend::Threads;
  }
}

}  // namespace

std::vector<Variant> structured_variants(PlatformId p) {
  const Variant dpcpp_flat{Model::SYCLFlat, Toolchain::DPCPP};
  const Variant dpcpp_nd{Model::SYCLNDRange, Toolchain::DPCPP};
  const Variant osycl_flat{Model::SYCLFlat, Toolchain::OpenSYCL};
  const Variant osycl_nd{Model::SYCLNDRange, Toolchain::OpenSYCL};
  switch (p) {
    case PlatformId::A100:
      return {{Model::CUDA, Toolchain::Native}, dpcpp_flat, dpcpp_nd,
              osycl_flat, osycl_nd};
    case PlatformId::MI250X:
      return {{Model::HIP, Toolchain::Native},
              {Model::OpenMPOffload, Toolchain::Cray},
              dpcpp_flat, dpcpp_nd, osycl_flat, osycl_nd};
    case PlatformId::Max1100:
      return {{Model::OpenMPOffload, Toolchain::Native}, dpcpp_flat, dpcpp_nd,
              osycl_flat, osycl_nd};
    case PlatformId::Xeon8360Y:
    case PlatformId::GenoaX:
      return {{Model::MPI, Toolchain::Native},
              {Model::MPI_OpenMP, Toolchain::Native},
              dpcpp_flat, dpcpp_nd, osycl_flat, osycl_nd};
    case PlatformId::Altra:
      return {{Model::MPI, Toolchain::Native},
              {Model::OpenMP, Toolchain::Native},
              osycl_flat, osycl_nd};
  }
  return {};
}

std::vector<Variant> mgcfd_variants(PlatformId p) {
  auto with_strategies = [](Model m, Toolchain t) {
    std::vector<Variant> v;
    for (Strategy s : kMgcfdStrategies) v.push_back({m, t, s});
    return v;
  };
  std::vector<Variant> out;
  auto append = [&](std::vector<Variant> v) {
    out.insert(out.end(), v.begin(), v.end());
  };
  switch (p) {
    case PlatformId::A100:
      append(with_strategies(Model::CUDA, Toolchain::Native));
      append(with_strategies(Model::SYCLNDRange, Toolchain::DPCPP));
      append(with_strategies(Model::SYCLNDRange, Toolchain::OpenSYCL));
      break;
    case PlatformId::MI250X:
      append(with_strategies(Model::HIP, Toolchain::Native));
      append(with_strategies(Model::SYCLNDRange, Toolchain::DPCPP));
      append(with_strategies(Model::SYCLNDRange, Toolchain::OpenSYCL));
      break;
    case PlatformId::Max1100:  // no native version exists (paper §4.3)
      append(with_strategies(Model::SYCLNDRange, Toolchain::DPCPP));
      append(with_strategies(Model::SYCLNDRange, Toolchain::OpenSYCL));
      break;
    case PlatformId::Xeon8360Y:
    case PlatformId::GenoaX:
      out.push_back({Model::MPI, Toolchain::Native, Strategy::None});
      out.push_back(
          {Model::MPI_OpenMP, Toolchain::Native, Strategy::Hierarchical});
      append(with_strategies(Model::SYCLNDRange, Toolchain::DPCPP));
      append(with_strategies(Model::SYCLNDRange, Toolchain::OpenSYCL));
      break;
    case PlatformId::Altra:
      out.push_back({Model::MPI, Toolchain::Native, Strategy::None});
      out.push_back({Model::OpenMP, Toolchain::Native, Strategy::Hierarchical});
      append(with_strategies(Model::SYCLNDRange, Toolchain::OpenSYCL));
      break;
  }
  return out;
}

void scale_mgcfd_profiles(std::vector<hw::LoopProfile>& profiles,
                          const apps::MgcfdConfig& cfg) {
  // Scale bench-mesh traffic to the paper's 8M-vertex Rotor37.
  const double nodes = static_cast<double>(cfg.ni * cfg.nj * cfg.nk);
  const double scale = kPaperMgcfdNodes / nodes;
  for (auto& lp : profiles) {
    lp.extent[0] =
        static_cast<std::size_t>(static_cast<double>(lp.extent[0]) * scale);
    lp.bytes_read *= scale;
    lp.bytes_written *= scale;
    lp.bytes_read_indirect *= scale;
    lp.bytes_written_indirect *= scale;
    lp.map_bytes *= scale;
    lp.flops *= scale;
    lp.working_set *= scale;
    lp.staged_bytes *= scale;
    lp.atomic_updates = static_cast<std::size_t>(
        static_cast<double>(lp.atomic_updates) * scale);
    // Traffic scaled by S means a cache holds 1/S of the working set:
    // re-sample the gather reuse profile at cache/S.
    const auto measured = lp.gather_factor_at;
    for (std::size_t c = 0; c < hw::kGatherCachePoints.size(); ++c)
      lp.gather_factor_at[c] = hw::interp_gather_curve(
          measured, hw::kGatherCachePoints[c] / scale);
    lp.gather_line_factor = lp.gather_factor_at.front();
  }
}

Variant native_variant(PlatformId p) {
  switch (p) {
    case PlatformId::A100: return {Model::CUDA, Toolchain::Native};
    case PlatformId::MI250X: return {Model::HIP, Toolchain::Native};
    case PlatformId::Max1100: return {Model::OpenMPOffload, Toolchain::Native};
    default: return {Model::MPI, Toolchain::Native};
  }
}

apps::ProblemSize StudyRunner::size_for(AppId app) const {
  if (auto it = size_override_.find(app); it != size_override_.end())
    return it->second;
  switch (app) {
    case AppId::CloverLeaf2D: return apps::cloverleaf2d_paper();
    case AppId::CloverLeaf3D: return apps::cloverleaf3d_paper();
    case AppId::OpenSBLI_SA:
    case AppId::OpenSBLI_SN: return apps::opensbli_paper();
    case AppId::RTM: return apps::rtm_paper();
    case AppId::Acoustic: return apps::acoustic_paper();
    case AppId::MGCFD: return {};  // handled via MgcfdConfig
  }
  return {};
}

void StudyRunner::set_structured_size(AppId app, apps::ProblemSize ps) {
  size_override_[app] = ps;
  schedules_.clear();
}

const std::vector<hw::LoopProfile>& StudyRunner::schedule(AppId app,
                                                          const Variant& v) {
  const ScheduleKey key{app, v.uses_mpi(),
                        app == AppId::MGCFD ? v.strategy : Strategy::None};
  if (auto it = schedules_.find(key); it != schedules_.end())
    return it->second;

  std::vector<hw::LoopProfile> profiles;
  if (app == AppId::MGCFD) {
    op2::Options o;
    o.mode = op2::Mode::ModelOnly;
    o.exec = op2::Exec::Serial;
    o.strategy = v.strategy == Strategy::None ? Strategy::Atomics : v.strategy;
    // GPU hierarchical blocks of 256, CPU 4096 (paper §4.3); the
    // runner does not know the platform here, so the GPU size is used
    // and the block-count effect on CPUs is secondary (documented).
    o.block_size = 256;
    apps::MgcfdConfig cfg = mgcfd_cfg_;
    auto rs = apps::run_mgcfd(o, cfg);
    profiles = std::move(rs.profiles);
    scale_mgcfd_profiles(profiles, cfg);
  } else {
    ops::Options o;
    o.mode = ops::Mode::ModelOnly;
    o.backend = ops_backend(v);
    const apps::ProblemSize ps = size_for(app);
    apps::RunSummary rs;
    switch (app) {
      case AppId::CloverLeaf2D: rs = apps::run_cloverleaf2d(o, ps); break;
      case AppId::CloverLeaf3D: rs = apps::run_cloverleaf3d(o, ps); break;
      case AppId::OpenSBLI_SA: rs = apps::run_opensbli_sa(o, ps); break;
      case AppId::OpenSBLI_SN: rs = apps::run_opensbli_sn(o, ps); break;
      case AppId::RTM: rs = apps::run_rtm(o, ps); break;
      case AppId::Acoustic: rs = apps::run_acoustic(o, ps); break;
      case AppId::MGCFD: break;
    }
    profiles = std::move(rs.profiles);
  }
  return schedules_.emplace(key, std::move(profiles)).first->second;
}

ExperimentResult StudyRunner::run(AppId app, PlatformId platform,
                                  const Variant& v) {
  ExperimentResult r;
  r.status = SupportMatrix::paper().status(platform, app, v);
  if (r.status != Status::Ok) return r;
  return aggregate_cell(schedule(app, v), app, platform, v);
}

ExperimentResult aggregate_cell(std::span<const hw::LoopProfile> profiles,
                                AppId app, PlatformId platform,
                                const Variant& v) {
  ExperimentResult r;
  const hw::DeviceModel dm(platform, v, app);
  const hw::Platform& hwp = dm.hw();
  const int ranks = hw::ranks_for(platform, v);

  for (const auto& lp : profiles) {
    const hw::KernelTime kt = dm.kernel_time(lp);
    r.runtime_s += kt.seconds;
    if (lp.cls == hw::KernelClass::Boundary) r.boundary_s += kt.seconds;
    r.useful_bytes += kt.useful_bytes;
    r.flops += lp.flops;
    if (v.uses_mpi() && lp.halo_depth > 0 && ranks > 1) {
      const double h = hw::halo_exchange_time_s(
          hwp, ranks, lp.dims, lp.extent, lp.halo_depth,
          static_cast<std::size_t>(lp.halo_point_bytes));
      r.halo_s += h;
      r.runtime_s += h;
    }
  }
  if (r.runtime_s > 0.0) {
    r.eff_bw_gbs = r.useful_bytes / r.runtime_s / 1e9;
    r.efficiency = r.eff_bw_gbs / hwp.stream_bw_gbs;
  }
  return r;
}

}  // namespace syclport::study
