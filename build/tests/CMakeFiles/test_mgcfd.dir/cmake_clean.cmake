file(REMOVE_RECURSE
  "CMakeFiles/test_mgcfd.dir/test_mgcfd.cpp.o"
  "CMakeFiles/test_mgcfd.dir/test_mgcfd.cpp.o.d"
  "test_mgcfd"
  "test_mgcfd.pdb"
  "test_mgcfd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mgcfd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
