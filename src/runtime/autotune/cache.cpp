#include "runtime/autotune/cache.hpp"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/crc32.hpp"
#include "runtime/fault/checkpoint.hpp"
#include "runtime/fault/fault.hpp"

namespace syclport::rt::autotune {

namespace {

/// Current on-disk format version. v2 added the content checksum; v3
/// added the per-entry `fp` field (transfer-learning donor provenance)
/// and new Config axes; v4 added the layout/indirect axes (op2
/// unstructured tuning), so older files - and anything newer/foreign -
/// are rejected wholesale, which the caller treats as a cold cache:
/// retuning is always safe, trusting a stale or damaged winner is not.
constexpr int kCacheVersion = 4;

/// Extract the value of `"field": "..."` from one line; nullopt when
/// the field is absent. Values never contain quotes (keys and configs
/// are built from identifier-ish characters only).
[[nodiscard]] std::optional<std::string> quoted_field(const std::string& line,
                                                      std::string_view field) {
  std::string probe = "\"";
  probe += field;
  probe += "\": \"";
  const auto at = line.find(probe);
  if (at == std::string::npos) return std::nullopt;
  const auto begin = at + probe.size();
  const auto end = line.find('"', begin);
  if (end == std::string::npos) return std::nullopt;
  return line.substr(begin, end - begin);
}

/// CRC-32 over the *semantic* content - fingerprint plus every
/// (key, config, fp) triple in order - rather than the raw bytes.
/// Formatting and individually-dropped unparseable lines do not perturb
/// it, but truncation, a damaged winner, or a tampered entry all do.
[[nodiscard]] std::uint32_t content_crc(const CacheData& data) {
  std::uint32_t c =
      crc32_update(0, data.fingerprint.data(), data.fingerprint.size());
  for (const auto& e : data.entries) {
    c = crc32_update(c, e.key.data(), e.key.size());
    c = crc32_update(c, "=", 1);
    const std::string text = e.config.to_string();
    c = crc32_update(c, text.data(), text.size());
    c = crc32_update(c, "=", 1);
    c = crc32_update(c, e.fp.data(), e.fp.size());
    c = crc32_update(c, "\n", 1);
  }
  return c;
}

[[nodiscard]] std::string crc_hex(std::uint32_t crc) {
  char buf[9];
  std::snprintf(buf, sizeof buf, "%08x", crc);
  return buf;
}

}  // namespace

bool write_cache(const std::string& path, const CacheData& data) {
  std::ostringstream out;
  out << "{ \"syclport_tune_cache\": " << kCacheVersion << ",\n";
  out << "  \"fingerprint\": \"" << data.fingerprint << "\",\n";
  out << "  \"crc\": \"" << crc_hex(content_crc(data)) << "\",\n";
  out << "  \"kernels\": [\n";
  for (std::size_t i = 0; i < data.entries.size(); ++i) {
    const auto& e = data.entries[i];
    out << "    { \"key\": \"" << e.key << "\", \"config\": \""
        << e.config.to_string() << "\", \"fp\": \"" << e.fp << "\" }"
        << (i + 1 < data.entries.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return fault::write_file_atomic(path, out.str());
}

void merge_entries(CacheData& data, const CacheData& other) {
  for (const auto& e : other.entries) {
    const std::string& fp = e.fp.empty() ? other.fingerprint : e.fp;
    const bool have = std::any_of(
        data.entries.begin(), data.entries.end(),
        [&](const CacheData::Entry& mine) {
          return mine.key == e.key &&
                 (mine.fp.empty() ? data.fingerprint : mine.fp) == fp;
        });
    if (!have) data.entries.push_back({e.key, e.config, fp});
  }
}

bool write_cache_merged(const std::string& path, const CacheData& data) {
  CacheData merged = data;
  if (const auto existing = read_cache(path)) merge_entries(merged, *existing);
  return write_cache(path, merged);
}

std::optional<CacheData> read_cache(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string text = std::move(buf).str();

  // cache.corrupt: flip one deterministic bit of the in-memory image
  // before parsing - the validation below must reject the file and the
  // caller must silently fall back to retuning.
  if (fault::armed() && !text.empty())
    if (const auto r = fault::roll(fault::Site::CacheCorrupt); r.fire)
      text[r.value % text.size()] ^=
          static_cast<char>(1u << ((r.value >> 8) % 8));

  CacheData data;
  int version = 0;
  std::optional<std::uint32_t> stored_crc;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    constexpr std::string_view version_probe = "\"syclport_tune_cache\": ";
    if (const auto at = line.find(version_probe); at != std::string::npos) {
      const char* b = line.data() + at + version_probe.size();
      std::from_chars(b, line.data() + line.size(), version);
      continue;
    }
    if (auto crc = quoted_field(line, "crc")) {
      std::uint32_t v = 0;
      const auto [p, ec] =
          std::from_chars(crc->data(), crc->data() + crc->size(), v, 16);
      if (ec == std::errc{} && p == crc->data() + crc->size())
        stored_crc = v;
      continue;
    }
    if (auto fp = quoted_field(line, "fingerprint")) {
      data.fingerprint = std::move(*fp);
      continue;
    }
    const auto key = quoted_field(line, "key");
    if (!key) continue;
    const auto cfg_text = quoted_field(line, "config");
    if (!cfg_text) continue;
    const auto fp = quoted_field(line, "fp");
    if (auto cfg = Config::parse(*cfg_text))
      data.entries.push_back(
          {std::move(*key), std::move(*cfg), fp ? std::move(*fp) : ""});
  }
  // Reject anything that is not a well-formed current-version file with
  // a matching content checksum: v1 leftovers, foreign files, truncated
  // or bit-flipped writes. The caller retunes from scratch - slower,
  // never wrong.
  if (version != kCacheVersion || !stored_crc ||
      *stored_crc != content_crc(data)) {
    if (fault::armed()) fault::note_recovered(fault::Site::CacheCorrupt);
    return std::nullopt;
  }
  return data;
}

}  // namespace syclport::rt::autotune
