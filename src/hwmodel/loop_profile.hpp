#pragma once
/// \file loop_profile.hpp
/// The DSL -> hardware-model interface. Every OPS/OP2 par_loop emits one
/// LoopProfile per invocation (or per schedule entry in model-only
/// mode); the DeviceModel turns a profile into modeled seconds on a
/// given (platform, variant).

#include <array>
#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

#include "core/types.hpp"

namespace syclport::hw {

/// Cache capacities (bytes) at which gather reuse profiles are sampled;
/// shared between the OP2 locality analyser and the device model. The
/// low end exists because bench-scale meshes are later rescaled to the
/// paper's 8M-vertex mesh: scaling traffic by S shrinks the effective
/// cache by S (see StudyRunner::schedule).
inline constexpr std::array<double, 8> kGatherCachePoints = {
    64e3, 256e3, 1e6, 4e6, 16e6, 64e6, 256e6, 1e9};

/// Log-linear interpolation of a sampled gather-factor curve at `cache`
/// bytes (clamped to the sampled range).
[[nodiscard]] inline double interp_gather_curve(
    const std::array<double, kGatherCachePoints.size()>& f, double cache) {
  const auto& pts = kGatherCachePoints;
  if (cache <= pts.front()) return f.front();
  if (cache >= pts.back()) return f.back();
  for (std::size_t i = 1; i < pts.size(); ++i) {
    if (cache <= pts[i]) {
      const double t = (cache <= 0 ? 0.0
                                   : ( // log-linear in cache size
                                         (std::log(cache) - std::log(pts[i - 1])) /
                                         (std::log(pts[i]) - std::log(pts[i - 1]))));
      return f[i - 1] + t * (f[i] - f[i - 1]);
    }
  }
  return f.back();
}

/// Broad behavioural class of a kernel; quirk entries and model terms
/// key off this.
enum class KernelClass : std::uint8_t {
  Interior,     ///< bulk structured-mesh sweep
  Boundary,     ///< boundary-condition loop (small, latency bound)
  Reduction,    ///< loop with a global reduction
  EdgeFlux,     ///< unstructured indirect gather+scatter over edges
  VertexUpdate, ///< unstructured direct loop over vertices/cells
  MGTransfer,   ///< multigrid restrict/prolong (indirect, no conflicts)
};

enum class ReductionKind : std::uint8_t { None, BuiltIn, Tree };

/// One dat argument's contribution to a loop's traffic, with identity.
/// This is the name-level dependence information the fusion analyses
/// need: a producer->consumer edge exists when one loop's written
/// access matches a later loop's read access by `id` (the dat object's
/// address, stable for the process lifetime). `name` is carried for
/// reports only. `bytes` is the unique interior footprint of the
/// access (iteration points x components x element size, no halo).
struct DatAccess {
  const void* id = nullptr;
  std::string name;
  double bytes = 0.0;
  bool read = false;
  bool write = false;
  int radius_slow = 0;  ///< slow-dimension stencil radius of the access
  int radius_max = 0;   ///< max stencil radius over all dimensions
};

/// Performance-relevant facts about one parallel loop execution.
struct LoopProfile {
  std::string name;
  KernelClass cls = KernelClass::Interior;
  int dims = 1;
  /// Iteration-space extent; index 0 slowest-varying, last used index
  /// fastest-varying (unit stride), matching sycl::range convention.
  std::array<std::size_t, 3> extent{1, 1, 1};

  double bytes_read = 0.0;    ///< compulsory unique bytes read (footprints)
  double bytes_written = 0.0; ///< unique bytes written
  double flops = 0.0;         ///< total floating-point operations
  std::size_t elem_bytes = 8; ///< 8 = FP64, 4 = FP32

  /// Stencil radii by direction (0 for pointwise); drive the
  /// layer-condition cache model.
  int radius_fast = 0;
  int radius_mid = 0;
  int radius_slow = 0;
  int n_arrays = 1;           ///< distinct arrays streamed by the sweep
  /// Bytes of bytes_read that are accessed through a stencil with
  /// nonzero radius (the portion the layer-condition multiplier
  /// re-reads when the cache window does not fit).
  double bytes_read_stencil = 0.0;
  /// Per-grid-point payload of the stencil-read arrays (sum of
  /// ncomp x elem over stencil args): the layer-condition window unit.
  double stencil_point_bytes = 0.0;
  /// Total bytes moved between registers and L1/LSU by the kernel
  /// (every stencil tap counted): items x touches x elem. High-order
  /// stencils become L1-bound long before DRAM saturates - the
  /// mechanism behind RTM/Acoustic's sub-50% efficiencies (paper §4.1).
  double cache_access_bytes = 0.0;

  ReductionKind reduction = ReductionKind::None;

  /// Per-dat access records in argument order (empty for loops recorded
  /// before PR 6 or for synthetic profiles). ablation_fusion and the
  /// fused-traffic model use these to tighten the whole-loop byte
  /// estimate into a true dependence bound.
  std::vector<DatAccess> accesses;

  /// Working set of this loop (bytes); with the preceding loops touching
  /// the same fields, determines last-level-cache reuse.
  double working_set = 0.0;

  // ---- unstructured-mesh extras (zero for structured loops) ----------
  double map_bytes = 0.0;        ///< mapping-table bytes streamed
  /// Portions of bytes_read / bytes_written accessed through a mapping
  /// table (gathers/scatters); these pay the gather_line_factor.
  double bytes_read_indirect = 0.0;
  double bytes_written_indirect = 0.0;
  std::size_t atomic_updates = 0;///< indirect increments done atomically
  /// Measured gather locality: average unique cache lines touched per
  /// sub_group-wide wave of work-items, divided by the ideal (fully
  /// coalesced) line count. 1 = perfect locality; larger = scattered.
  /// This is the *cold* (no-reuse) factor.
  double gather_line_factor = 1.0;
  /// Reuse-distance profile: the same factor assuming an LRU cache of
  /// kGatherCachePoints[i] bytes retains recently fetched lines. The
  /// device model interpolates at the platform's last-level cache -
  /// this is where the paper's 91%/58%/83% L2 hit-rate separation of
  /// the strategies comes from (§4.3).
  std::array<double, kGatherCachePoints.size()> gather_factor_at{
      1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0};
  /// Number of parallel sweeps this logical loop is split into
  /// (e.g. one per colour for global colouring): multiplies launch cost.
  std::size_t launches = 1;
  /// Staged lowering (Strategy::Staged): indirect reads were gathered
  /// into contiguous scratch tiles and increments accumulated in a
  /// per-tile arena scattered back in element order - no atomics, and
  /// the compute sweep vectorizes (the operands are dense streams).
  bool staged = false;
  /// Scratch traffic of the staging (gather buffers + arena, write and
  /// read-back). Cache-resident by construction on CPUs (a super-tile
  /// is sized to the shared cache), so it is charged against the L1/LSU
  /// ceiling there; on GPUs the ordered scatter's partitioned re-scan
  /// defeats that residency and the traffic hits DRAM multiplied.
  double staged_bytes = 0.0;

  // ---- distributed-memory extras (zero when not running under MPI) ----
  /// Halo depth exchanged before this loop (stencil radius of its reads).
  int halo_depth = 0;
  /// Bytes per grid point in the exchanged halos (elem size x components
  /// summed over exchanged dats).
  double halo_point_bytes = 0.0;

  [[nodiscard]] std::size_t items() const {
    std::size_t n = 1;
    for (int d = 0; d < dims; ++d) n *= extent[static_cast<std::size_t>(d)];
    return n;
  }
  [[nodiscard]] double total_bytes() const {
    return bytes_read + bytes_written + map_bytes;
  }
};

}  // namespace syclport::hw
