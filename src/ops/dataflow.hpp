#pragma once
/// \file dataflow.hpp
/// Producer/consumer dependence analysis over captured loop footprints:
/// the chain-level mirror of the RAW/WAR/WAW derivation the out-of-order
/// scheduler (sycl/detail/scheduler.hpp) performs per accessor at submit
/// time, lifted to whole par_loops. Each captured loop carries one
/// AccessBox per dat argument and kind - the iteration box inflated by
/// the stencil radii for reads, the box itself for writes (structured
/// kernels write only their own point) - and two loops conflict on a dat
/// only when their boxes actually intersect, so e.g. opposite-face halo
/// loops on the same field stay independent.
///
/// ops::LoopChain uses this to partition a captured chain into segments
/// that are legal to execute as one overlap-tiled fused sweep:
///  - WAR (a later loop writes rows an earlier loop read): overlap
///    re-execution of the earlier loop would re-read already-overwritten
///    rows, so the chain is split at the offending edge;
///  - a reduction terminates its segment: the reducing loop must see
///    every row exactly once, which holds only at zero ghost expansion,
///    i.e. when it is the last loop of its segment;
///  - an RW dat read through a nonzero-radius stencil isolates its loop:
///    the row double-buffer restores exactly the rows a loop re-executes,
///    which covers in-place reads only when they are pointwise;
///  - WAW splits unless both writers tile with the same ghost expansion
///    (no slow read radius strictly after the first writer): with a
///    deeper expansion the first writer re-executes a row in a LATER
///    tile than the second writer's final write and would win the race
///    the program order says it must lose;
///  - RAW (and expansion-equal WAW) are legal inside a segment: tiles
///    run the loops in program order and re-execution is deterministic,
///    with in-place updates healed by the double-buffer.

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/crc32.hpp"

namespace syclport::ops::dataflow {

/// Axis-aligned footprint of one dat access of one captured loop,
/// interior-relative, slowest dimension first (Range layout).
struct AccessBox {
  const void* dat = nullptr;
  std::array<long, 3> lo{0, 0, 0};
  std::array<long, 3> hi{1, 1, 1};
  bool read = false;   ///< box inflated by the stencil radii
  bool write = false;  ///< box is the iteration range itself
  double bytes = 0.0;  ///< unique footprint bytes of the access
};

[[nodiscard]] inline bool boxes_intersect(const AccessBox& a,
                                          const AccessBox& b, int dims) {
  for (int d = 0; d < dims; ++d) {
    const auto i = static_cast<std::size_t>(d);
    if (a.hi[i] <= b.lo[i] || b.hi[i] <= a.lo[i]) return false;
  }
  return true;
}

/// One captured loop, as the partitioner sees it.
struct Node {
  const char* name = "(loop)";
  std::array<long, 3> lo{0, 0, 0};
  std::array<long, 3> hi{1, 1, 1};
  bool reduction = false;
  int radius_slow = 0;     ///< max slow-dim read radius (R and RW args)
  int rw_max_radius = 0;   ///< max stencil radius over RW args (any dim)
  std::vector<AccessBox> acc;
};

/// Segment boundaries of a captured chain: cuts.front() == 0,
/// cuts.back() == nodes.size(); segment k is [cuts[k], cuts[k+1]).
[[nodiscard]] inline std::vector<std::size_t> partition(
    const std::vector<Node>& nodes, int dims) {
  // Inclusive prefix of slow read radii: the ghost expansions of loops
  // i < j differ by rad_pfx[j] - rad_pfx[i] (suffix-sum construction).
  std::vector<int> rad_pfx(nodes.size(), 0);
  for (std::size_t j = 0; j < nodes.size(); ++j)
    rad_pfx[j] = (j ? rad_pfx[j - 1] : 0) + nodes[j].radius_slow;

  std::vector<std::size_t> cuts{0};
  std::size_t seg = 0;
  for (std::size_t j = 1; j < nodes.size(); ++j) {
    bool cut = nodes[j - 1].reduction || nodes[j - 1].rw_max_radius > 0 ||
               nodes[j].rw_max_radius > 0;
    if (!cut) {
      for (const AccessBox& w : nodes[j].acc) {
        if (!w.write || cut) continue;
        for (std::size_t i = seg; i < j && !cut; ++i)
          for (const AccessBox& x : nodes[i].acc) {
            // WAR across the segment always splits; WAW splits unless
            // the expansions match (equal suffix radii), where the
            // later writer's in-tile program order still wins.
            const bool war = x.read && x.dat == w.dat;
            const bool waw = x.write && x.dat == w.dat &&
                             rad_pfx[j] - rad_pfx[i] > 0;
            if ((war || waw) && boxes_intersect(x, w, dims)) {
              cut = true;
              break;
            }
          }
      }
    }
    if (cut) {
      cuts.push_back(j);
      seg = j;
    }
  }
  cuts.push_back(nodes.size());
  return cuts;
}

/// Bytes of the box intersection of two accesses to the same dat,
/// derived from the writer's per-point payload (identical for both
/// sides of a same-dat edge: components x element size).
[[nodiscard]] inline double overlap_bytes(const AccessBox& w,
                                          const AccessBox& x, int dims) {
  double wvol = 1.0, ovol = 1.0;
  for (int d = 0; d < dims; ++d) {
    const auto i = static_cast<std::size_t>(d);
    wvol *= static_cast<double>(std::max(0L, w.hi[i] - w.lo[i]));
    ovol *= static_cast<double>(std::max(
        0L, std::min(w.hi[i], x.hi[i]) - std::max(w.lo[i], x.lo[i])));
  }
  return wvol <= 0.0 ? 0.0 : w.bytes * (ovol / wvol);
}

/// Box-refined bound on the DRAM bytes fusion can eliminate inside
/// segment [b, e): for every dat one loop writes and a later loop reads
/// (before the next overwrite), the writeback + re-read round trip
/// (2 x the overlap of written and read boxes), plus one re-read per
/// additional consumer. Disjoint boxes - opposite-face boundary loops
/// on one field - contribute nothing: those loops may share a segment
/// but fusing them moves no traffic.
[[nodiscard]] inline double internal_edge_bytes(const std::vector<Node>& nodes,
                                                std::size_t b, std::size_t e,
                                                int dims) {
  double sum = 0.0;
  for (std::size_t i = b; i < e; ++i) {
    for (const AccessBox& w : nodes[i].acc) {
      if (!w.write) continue;
      bool consumed = false;
      for (std::size_t j = i + 1; j < e; ++j) {
        bool overwritten = false;
        for (const AccessBox& x : nodes[j].acc) {
          if (x.dat != w.dat) continue;
          if (x.read) {
            const double ov = overlap_bytes(w, x, dims);
            if (ov > 0.0) {
              sum += (consumed ? 1.0 : 2.0) * ov;
              consumed = true;
            }
          }
          if (x.write && boxes_intersect(x, w, dims)) overwritten = true;
        }
        if (overwritten) break;
      }
    }
  }
  return sum;
}

/// Stable per-composition autotune site name for a captured chain:
/// "(chain:XXXXXXXX)" where XXXXXXXX is a CRC over the queued loops'
/// kernel names and iteration boxes. Interned (process lifetime) so the
/// pointer satisfies rt::autotune::Site's `const char* name`. Two
/// different compositions no longer collide under one "(loop_chain)"
/// entry, and the same composition hashes identically across runs, so
/// the persistent cache still round-trips.
[[nodiscard]] inline const char* intern_chain_name(
    const std::vector<Node>& nodes) {
  const std::uint32_t n32 = static_cast<std::uint32_t>(nodes.size());
  std::uint32_t crc = crc32_update(0, &n32, sizeof n32);
  for (const Node& nd : nodes) {
    for (const char* c = nd.name; *c != '\0'; ++c)
      crc = crc32_update(crc, c, 1);
    crc = crc32_update(crc, nd.lo.data(), sizeof nd.lo);
    crc = crc32_update(crc, nd.hi.data(), sizeof nd.hi);
  }
  static std::mutex mu;
  static std::unordered_map<std::uint32_t, std::unique_ptr<std::string>> names;
  std::lock_guard lock(mu);
  auto& slot = names[crc];
  if (!slot) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "(chain:%08x)", crc);
    slot = std::make_unique<std::string>(buf);
  }
  return slot->c_str();
}

}  // namespace syclport::ops::dataflow
