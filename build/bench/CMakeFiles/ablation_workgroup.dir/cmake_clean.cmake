file(REMOVE_RECURSE
  "CMakeFiles/ablation_workgroup.dir/ablation_workgroup.cpp.o"
  "CMakeFiles/ablation_workgroup.dir/ablation_workgroup.cpp.o.d"
  "ablation_workgroup"
  "ablation_workgroup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_workgroup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
