# Empty dependencies file for hwmodel.
# This may be replaced when dependencies are built.
