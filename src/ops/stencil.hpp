#pragma once
/// \file stencil.hpp
/// OPS access stencils. A stencil declares, per dat argument of a
/// par_loop, which relative points the kernel may touch; the DSL uses
/// the radii both to compute transfer footprints (the paper's effective
/// bandwidth numerator) and to drive the halo-exchange and cache
/// models. Offsets are ordered fastest-first: (dx[, dy[, dz]]).

#include <algorithm>
#include <array>
#include <cstddef>
#include <vector>

namespace syclport::ops {

struct Stencil {
  /// Radii by direction, fastest dimension first.
  int radius_x = 0;  ///< fastest (unit-stride)
  int radius_y = 0;
  int radius_z = 0;  ///< slowest (3D only)
  /// Number of points in the stencil (affects nothing but metadata).
  int points = 1;

  [[nodiscard]] int max_radius() const {
    return std::max({radius_x, radius_y, radius_z});
  }
};

/// Point stencil (the written point itself).
inline constexpr Stencil S_PT{0, 0, 0, 1};

/// Standard star stencils.
inline constexpr Stencil S2D_5PT{1, 1, 0, 5};
inline constexpr Stencil S3D_7PT{1, 1, 1, 7};

/// r-radius star in `dims` dimensions (e.g. the 8th-order 25-point
/// star of RTM/Acoustic is star(4, 3)).
[[nodiscard]] constexpr Stencil star(int radius, int dims) {
  Stencil s;
  s.radius_x = radius;
  s.radius_y = dims >= 2 ? radius : 0;
  s.radius_z = dims >= 3 ? radius : 0;
  s.points = 1 + 2 * radius * dims;
  return s;
}

/// One-sided offset stencils used by staggered-grid hydro kernels
/// (e.g. CloverLeaf face quantities): covers offsets 0..1 per direction.
[[nodiscard]] constexpr Stencil face2d() { return Stencil{1, 1, 0, 4}; }
[[nodiscard]] constexpr Stencil face3d() { return Stencil{1, 1, 1, 8}; }

}  // namespace syclport::ops
