// Tests for distributed OP2 (src/op2/dist.*): partition-localized
// meshes with owner-compute halo import / export-add must reproduce the
// shared-memory OP2 results for gather loops, scatter (INC) loops and
// iterated combinations, across rank counts.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <mutex>
#include <span>
#include <stdexcept>
#include <vector>

#include "apps/mgcfd/mesh.hpp"
#include "op2/dist.hpp"

namespace op2 = syclport::op2;
namespace dist = syclport::op2::dist;
namespace mpi = syclport::mpi;
using syclport::Strategy;

namespace {

double node_value(int g, int c) {
  return std::sin(0.013 * g) + 0.25 * c;
}
double edge_weight(int g, int /*c*/) { return 0.5 + 0.001 * (g % 97); }

/// Shared-memory reference: one scatter round on the global mesh.
/// Every edge adds w * (v[b] - v[a]) to node a and the negation to b.
std::vector<double> shared_scatter(const op2::Map& e2n, int rounds) {
  const std::size_t nn = e2n.to().size();
  const std::size_t ne = e2n.from().size();
  std::vector<double> v(nn), d(nn, 0.0);
  for (std::size_t g = 0; g < nn; ++g) v[g] = node_value(static_cast<int>(g), 0);
  for (int r = 0; r < rounds; ++r) {
    std::fill(d.begin(), d.end(), 0.0);
    for (std::size_t e = 0; e < ne; ++e) {
      const auto a = static_cast<std::size_t>(e2n.at(e, 0));
      const auto b = static_cast<std::size_t>(e2n.at(e, 1));
      const double f = edge_weight(static_cast<int>(e), 0) * (v[b] - v[a]);
      d[a] += f;
      d[b] -= f;
    }
    for (std::size_t g = 0; g < nn; ++g) v[g] += 0.1 * d[g];
  }
  return v;
}

}  // namespace

TEST(DistOp2, MeshLocalizationPartitionsNodesAndEdges) {
  auto mesh = syclport::apps::mgcfd::build_rotor_mesh(14, 12, 8, 1);
  const int nranks = 4;
  std::mutex mu;
  std::size_t total_owned = 0, total_edges = 0;
  mpi::run(nranks, [&](mpi::Comm& comm) {
    dist::DistMesh dm(comm, *mesh.levels[0].e2n, mesh.levels[0].coords);
    // Sanity: local map is valid, halo after owned, lists consistent.
    EXPECT_EQ(dm.nodes().size(), dm.n_owned_nodes() + dm.n_halo_nodes());
    for (int peer = 0; peer < nranks; ++peer) {
      for (int li : dm.recv_idx()[static_cast<std::size_t>(peer)])
        EXPECT_GE(li, static_cast<int>(dm.n_owned_nodes()));
      for (int li : dm.send_idx()[static_cast<std::size_t>(peer)])
        EXPECT_LT(li, static_cast<int>(dm.n_owned_nodes()));
    }
    std::lock_guard lock(mu);
    total_owned += dm.n_owned_nodes();
    total_edges += dm.edges().size();
  });
  EXPECT_EQ(total_owned, mesh.fine_nodes());
  EXPECT_EQ(total_edges, mesh.fine_edges());
}

TEST(DistOp2, ImportHaloFetchesOwnerValues) {
  auto mesh = syclport::apps::mgcfd::build_rotor_mesh(12, 10, 8, 1);
  mpi::run(3, [&](mpi::Comm& comm) {
    dist::DistMesh dm(comm, *mesh.levels[0].e2n, mesh.levels[0].coords);
    dist::DistNodeDat<double> v(dm, 2, "v");
    v.init_owned(node_value);
    v.import_halo();
    // Every halo slot must now hold the owner's value for that node.
    for (std::size_t h = 0; h < dm.n_halo_nodes(); ++h) {
      const int g = dm.halo_node_gid()[h];
      for (int c = 0; c < 2; ++c)
        EXPECT_DOUBLE_EQ(v.dat().at(dm.n_owned_nodes() + h, c),
                         node_value(g, c))
            << "halo slot " << h;
    }
  });
}

TEST(DistOp2, ScatterLoopMatchesSharedMemory) {
  auto mesh = syclport::apps::mgcfd::build_rotor_mesh(12, 10, 8, 1);
  const auto ref = shared_scatter(*mesh.levels[0].e2n, 3);

  for (int nranks : {2, 4, 5}) {
    double max_err = 1.0;
    std::mutex mu;
    mpi::run(nranks, [&](mpi::Comm& comm) {
      dist::DistMesh dm(comm, *mesh.levels[0].e2n, mesh.levels[0].coords);
      dist::DistNodeDat<double> v(dm, 1, "v");
      dist::DistNodeDat<double> d(dm, 1, "d");
      dist::DistEdgeDat<double> w(dm, 1, "w");
      v.init_owned(node_value);
      w.init(edge_weight);

      op2::Options oo;
      oo.exec = op2::Exec::Serial;
      oo.strategy = Strategy::Atomics;
      oo.record = false;
      op2::Context ctx(oo);

      for (int r = 0; r < 3; ++r) {
        v.import_halo();
        op2::par_loop(ctx, {"flux"}, dm.edges(),
                      [](const double* ww, const double* va,
                         const double* vb, op2::Inc<double> da,
                         op2::Inc<double> db) {
                        const double f = ww[0] * (vb[0] - va[0]);
                        da.add(0, f);
                        db.add(0, -f);
                      },
                      op2::arg_direct(w.dat(), op2::Acc::R),
                      op2::arg_indirect(v.dat(), dm.e2n(), 0, op2::Acc::R),
                      op2::arg_indirect(v.dat(), dm.e2n(), 1, op2::Acc::R),
                      op2::arg_inc(d.dat(), dm.e2n(), 0),
                      op2::arg_inc(d.dat(), dm.e2n(), 1));
        d.export_add();
        // Owned update + zero owned deltas for the next round.
        for (std::size_t i = 0; i < dm.n_owned_nodes(); ++i) {
          v.dat().at(i) += 0.1 * d.dat().at(i);
          d.dat().at(i) = 0.0;
        }
      }
      // Compare owned values against the shared-memory reference.
      double err = 0.0;
      for (std::size_t i = 0; i < dm.n_owned_nodes(); ++i)
        err = std::max(err,
                       std::fabs(v.dat().at(i) -
                                 ref[static_cast<std::size_t>(
                                     dm.owned_node_gid()[i])]));
      const double gerr = comm.allreduce(err, mpi::Op::Max);
      std::lock_guard lock(mu);
      max_err = gerr;
    });
    EXPECT_NEAR(max_err, 0.0, 1e-12) << nranks << " ranks";
  }
}

TEST(DistOp2, ConservationAcrossRanks) {
  // Antisymmetric edge increments must sum to zero globally even when
  // the two endpoints live on different ranks.
  auto mesh = syclport::apps::mgcfd::build_rotor_mesh(10, 10, 6, 1);
  mpi::run(4, [&](mpi::Comm& comm) {
    dist::DistMesh dm(comm, *mesh.levels[0].e2n, mesh.levels[0].coords);
    dist::DistNodeDat<double> d(dm, 1, "d");
    op2::Options oo;
    oo.exec = op2::Exec::Serial;
    oo.record = false;
    op2::Context ctx(oo);
    op2::par_loop(ctx, {"pm"}, dm.edges(),
                  [](op2::Inc<double> a, op2::Inc<double> b) {
                    a.add(0, 1.0);
                    b.add(0, -1.0);
                  },
                  op2::arg_inc(d.dat(), dm.e2n(), 0),
                  op2::arg_inc(d.dat(), dm.e2n(), 1));
    d.export_add();
    EXPECT_NEAR(d.global_sum(), 0.0, 1e-12);
  });
}

TEST(DistOp2, SingleRankDegeneratesToSharedMemory) {
  auto mesh = syclport::apps::mgcfd::build_rotor_mesh(8, 8, 6, 1);
  mpi::run(1, [&](mpi::Comm& comm) {
    dist::DistMesh dm(comm, *mesh.levels[0].e2n, mesh.levels[0].coords);
    EXPECT_EQ(dm.n_owned_nodes(), mesh.fine_nodes());
    EXPECT_EQ(dm.n_halo_nodes(), 0u);
    EXPECT_EQ(dm.edges().size(), mesh.fine_edges());
  });
}

// ---------------------------------------------------------------------
// Halo/compute overlap for unstructured meshes: interior edges sweep as
// an asynchronous queue command while the halo import drains.

TEST(DistOp2, InteriorBoundaryEdgesPartitionOwnedEdges) {
  auto mesh = syclport::apps::mgcfd::build_rotor_mesh(14, 12, 8, 1);
  mpi::run(4, [&](mpi::Comm& comm) {
    dist::DistMesh dm(comm, *mesh.levels[0].e2n, mesh.levels[0].coords);
    const auto& in = dm.interior_edges();
    const auto& bd = dm.boundary_edges();
    EXPECT_EQ(in.size() + bd.size(), dm.edges().size());
    std::vector<char> seen(dm.edges().size(), 0);
    for (int e : in) seen[static_cast<std::size_t>(e)]++;
    for (int e : bd) seen[static_cast<std::size_t>(e)]++;
    for (char c : seen) EXPECT_EQ(c, 1);  // disjoint and complete
    // Interior edges reference owned nodes only; boundary edges touch
    // at least one halo slot.
    const auto owned = static_cast<int>(dm.n_owned_nodes());
    for (int e : in)
      for (int i = 0; i < dm.e2n().arity(); ++i)
        EXPECT_LT(dm.e2n().at(static_cast<std::size_t>(e), i), owned);
    for (int e : bd) {
      bool halo = false;
      for (int i = 0; i < dm.e2n().arity(); ++i)
        halo |= dm.e2n().at(static_cast<std::size_t>(e), i) >= owned;
      EXPECT_TRUE(halo);
    }
  });
}

TEST(DistOp2, OverlapScatterMatchesSharedMemory) {
  auto mesh = syclport::apps::mgcfd::build_rotor_mesh(12, 10, 8, 1);
  const auto ref = shared_scatter(*mesh.levels[0].e2n, 3);

  for (const char* mode : {"queue", "inline"}) {
  ::setenv("SYCLPORT_OVERLAP", mode, 1);
  for (int nranks : {1, 2, 4}) {
    double max_err = 1.0;
    std::mutex mu;
    mpi::run(nranks, [&](mpi::Comm& comm) {
      dist::DistMesh dm(comm, *mesh.levels[0].e2n, mesh.levels[0].coords);
      dist::DistNodeDat<double> v(dm, 1, "v");
      dist::DistNodeDat<double> d(dm, 1, "d");
      dist::DistEdgeDat<double> w(dm, 1, "w");
      v.init_owned(node_value);
      w.init(edge_weight);

      op2::Options oo;
      oo.exec = op2::Exec::Serial;
      oo.strategy = Strategy::Atomics;
      oo.record = false;
      op2::Context ctx(oo);

      for (int r = 0; r < 3; ++r) {
        // Interior edges sweep while the halo import is in flight.
        dist::par_loop_overlap(
            ctx, {"flux"}, dm, v,
            [](const double* ww, const double* va, const double* vb,
               op2::Inc<double> da, op2::Inc<double> db) {
              const double f = ww[0] * (vb[0] - va[0]);
              da.add(0, f);
              db.add(0, -f);
            },
            op2::arg_direct(w.dat(), op2::Acc::R),
            op2::arg_indirect(v.dat(), dm.e2n(), 0, op2::Acc::R),
            op2::arg_indirect(v.dat(), dm.e2n(), 1, op2::Acc::R),
            op2::arg_inc(d.dat(), dm.e2n(), 0),
            op2::arg_inc(d.dat(), dm.e2n(), 1));
        d.export_add();
        for (std::size_t i = 0; i < dm.n_owned_nodes(); ++i) {
          v.dat().at(i) += 0.1 * d.dat().at(i);
          d.dat().at(i) = 0.0;
        }
      }
      double err = 0.0;
      for (std::size_t i = 0; i < dm.n_owned_nodes(); ++i)
        err = std::max(err,
                       std::fabs(v.dat().at(i) -
                                 ref[static_cast<std::size_t>(
                                     dm.owned_node_gid()[i])]));
      const double gerr = comm.allreduce(err, mpi::Op::Max);
      std::lock_guard lock(mu);
      max_err = gerr;
    });
    EXPECT_NEAR(max_err, 0.0, 1e-12) << nranks << " ranks, " << mode;
  }
  }
  ::unsetenv("SYCLPORT_OVERLAP");
}

TEST(DistOp2, SubsetLoopRejectsOversizedList) {
  auto mesh = syclport::apps::mgcfd::build_rotor_mesh(8, 8, 6, 1);
  mpi::run(1, [&](mpi::Comm& comm) {
    dist::DistMesh dm(comm, *mesh.levels[0].e2n, mesh.levels[0].coords);
    dist::DistNodeDat<double> d(dm, 1, "d");
    op2::Options oo;
    oo.exec = op2::Exec::Serial;
    oo.record = false;
    op2::Context ctx(oo);
    std::vector<int> too_many(dm.edges().size() + 1, 0);
    EXPECT_THROW(
        op2::par_loop_subset(ctx, {"x"}, dm.edges(),
                             std::span<const int>(too_many),
                             [](op2::Inc<double> a) { a.add(0, 1.0); },
                             op2::arg_inc(d.dat(), dm.e2n(), 0)),
        std::invalid_argument);
  });
}
