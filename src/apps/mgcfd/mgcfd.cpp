#include "apps/mgcfd/mgcfd.hpp"

#include <cmath>

namespace syclport::apps {

namespace {
constexpr double kGamma = 1.4;
constexpr double kCfl = 0.05;
constexpr int kVars = 5;  // rho, rho*u, rho*v, rho*w, rho*E

struct Primitives {
  double rho, u, v, w, p, c;
};

Primitives primitives(const double* q) {
  Primitives pr;
  pr.rho = q[0] > 1e-10 ? q[0] : 1e-10;
  pr.u = q[1] / pr.rho;
  pr.v = q[2] / pr.rho;
  pr.w = q[3] / pr.rho;
  const double ke = 0.5 * pr.rho * (pr.u * pr.u + pr.v * pr.v + pr.w * pr.w);
  pr.p = (kGamma - 1.0) * (q[4] - ke);
  if (pr.p < 1e-10) pr.p = 1e-10;
  pr.c = std::sqrt(kGamma * pr.p / pr.rho);
  return pr;
}

/// Euler flux of state q projected on face normal n (not normalized).
void euler_flux(const double* q, const Primitives& pr, const double n[3],
                double out[kVars]) {
  const double un = pr.u * n[0] + pr.v * n[1] + pr.w * n[2];
  out[0] = pr.rho * un;
  out[1] = q[1] * un + pr.p * n[0];
  out[2] = q[2] * un + pr.p * n[1];
  out[3] = q[3] * un + pr.p * n[2];
  out[4] = (q[4] + pr.p) * un;
}

/// Per-level solver state.
struct LevelData {
  std::unique_ptr<op2::Dat<double>> vars;     ///< 5 per node
  std::unique_ptr<op2::Dat<double>> fluxes;   ///< 5 per node
  std::unique_ptr<op2::Dat<double>> sf;       ///< step factor
  std::unique_ptr<op2::Dat<double>> weights;  ///< 3 per edge (normal)
  std::unique_ptr<op2::Dat<double>> restrict_count;  ///< fine nodes per coarse
};

}  // namespace

RunSummary run_mgcfd(const op2::Options& opt, mgcfd::MultigridMesh& mesh,
                     int iters) {
  op2::Context ctx(opt);
  const int nlevels = static_cast<int>(mesh.levels.size());
  std::vector<LevelData> data(static_cast<std::size_t>(nlevels));
  const bool exec = ctx.executing();

  for (int l = 0; l < nlevels; ++l) {
    auto& lvl = mesh.levels[static_cast<std::size_t>(l)];
    auto& d = data[static_cast<std::size_t>(l)];
    d.vars = std::make_unique<op2::Dat<double>>(*lvl.nodes, kVars, "vars", exec);
    d.fluxes =
        std::make_unique<op2::Dat<double>>(*lvl.nodes, kVars, "fluxes", exec);
    d.sf = std::make_unique<op2::Dat<double>>(*lvl.nodes, 1, "sf", exec);
    d.weights =
        std::make_unique<op2::Dat<double>>(*lvl.edges, 3, "weights", exec);
    if (l > 0)
      d.restrict_count =
          std::make_unique<op2::Dat<double>>(*lvl.nodes, 1, "rcount", exec);
    if (opt.layout) {
      // Options-requested physical layout for the solver state; the
      // initializers below go through layout-aware at().
      d.vars->set_layout(*opt.layout);
      d.fluxes->set_layout(*opt.layout);
      d.sf->set_layout(*opt.layout);
      d.weights->set_layout(*opt.layout);
      if (d.restrict_count) d.restrict_count->set_layout(*opt.layout);
    }

    if (!exec) continue;
    // Freestream + radial perturbation initial state.
    for (std::size_t n = 0; n < lvl.nodes->size(); ++n) {
      const auto& x = lvl.coords[n];
      const double r2 = x[0] * x[0] + x[1] * x[1];
      const double rho = 1.0 + 0.05 * std::exp(-4.0 * r2);
      const double u = 0.3, v = 0.05 * x[0], w = 0.0;
      const double p = 1.0 / kGamma;
      d.vars->at(n, 0) = rho;
      d.vars->at(n, 1) = rho * u;
      d.vars->at(n, 2) = rho * v;
      d.vars->at(n, 3) = rho * w;
      d.vars->at(n, 4) =
          p / (kGamma - 1.0) + 0.5 * rho * (u * u + v * v + w * w);
    }
    // Edge weights: half the node-to-node vector ("face normal").
    for (std::size_t e = 0; e < lvl.edges->size(); ++e) {
      const auto& a = lvl.coords[static_cast<std::size_t>(lvl.e2n->at(e, 0))];
      const auto& b = lvl.coords[static_cast<std::size_t>(lvl.e2n->at(e, 1))];
      for (int c = 0; c < 3; ++c) d.weights->at(e, c) = 0.5 * (b[c] - a[c]);
    }
    // Restriction counts (how many fine nodes land on each coarse node).
    if (l > 0) {
      const auto& f2c = *lvl.from_fine;
      for (std::size_t n = 0; n < f2c.from().size(); ++n)
        d.restrict_count->at(static_cast<std::size_t>(f2c.at(n, 0))) += 1.0;
    }
  }

  RunSummary rs;
  double rms = 0.0;
  for (int it = 0; it < iters; ++it) {
    // --- down sweep: smooth every level, restrict to the next ----------
    for (int l = 0; l < nlevels; ++l) {
      auto& lvl = mesh.levels[static_cast<std::size_t>(l)];
      auto& d = data[static_cast<std::size_t>(l)];

      op2::par_loop(ctx, {"compute_step_factor", 18.0}, *lvl.nodes,
                    [](const double* q, double* sf) {
                      const Primitives pr = primitives(q);
                      const double speed =
                          std::sqrt(pr.u * pr.u + pr.v * pr.v + pr.w * pr.w) +
                          pr.c;
                      sf[0] = kCfl / speed;
                    },
                    op2::arg_direct(*d.vars, op2::Acc::R),
                    op2::arg_direct(*d.sf, op2::Acc::W));

      op2::par_loop(ctx, {"compute_flux", 130.0}, *lvl.edges,
                    [](const double* wv, const double* qa, const double* qb,
                       op2::Inc<double> fa, op2::Inc<double> fb) {
                      const Primitives pa = primitives(qa);
                      const Primitives pb = primitives(qb);
                      const double n[3] = {wv[0], wv[1], wv[2]};
                      double Fa[kVars], Fb[kVars];
                      euler_flux(qa, pa, n, Fa);
                      euler_flux(qb, pb, n, Fb);
                      const double nn = std::sqrt(n[0] * n[0] + n[1] * n[1] +
                                                  n[2] * n[2]);
                      const double la =
                          std::fabs(pa.u * n[0] + pa.v * n[1] + pa.w * n[2]) +
                          pa.c * nn;
                      const double lb =
                          std::fabs(pb.u * n[0] + pb.v * n[1] + pb.w * n[2]) +
                          pb.c * nn;
                      const double lam = la > lb ? la : lb;
                      for (int c = 0; c < kVars; ++c) {
                        const double f =
                            0.5 * (Fa[c] + Fb[c]) - 0.5 * lam * (qb[c] - qa[c]);
                        fa.add(c, -f);
                        fb.add(c, f);
                      }
                    },
                    op2::arg_direct(*d.weights, op2::Acc::R),
                    op2::arg_indirect(*d.vars, *lvl.e2n, 0, op2::Acc::R),
                    op2::arg_indirect(*d.vars, *lvl.e2n, 1, op2::Acc::R),
                    op2::arg_inc(*d.fluxes, *lvl.e2n, 0),
                    op2::arg_inc(*d.fluxes, *lvl.e2n, 1));

      op2::par_loop(ctx, {"time_step", 16.0}, *lvl.nodes,
                    [](double* q, double* f, const double* sf) {
                      for (int c = 0; c < kVars; ++c) {
                        q[c] += sf[0] * f[c];
                        f[c] = 0.0;
                      }
                    },
                    op2::arg_direct(*d.vars, op2::Acc::RW),
                    op2::arg_direct(*d.fluxes, op2::Acc::RW),
                    op2::arg_direct(*d.sf, op2::Acc::R));

      if (l + 1 < nlevels) {
        auto& coarse_lvl = mesh.levels[static_cast<std::size_t>(l + 1)];
        auto& cd = data[static_cast<std::size_t>(l + 1)];
        op2::par_loop(ctx, {"mg_zero", 0.0}, *coarse_lvl.nodes,
                      [](double* q) {
                        for (int c = 0; c < kVars; ++c) q[c] = 0.0;
                      },
                      op2::arg_direct(*cd.vars, op2::Acc::W));
        op2::par_loop(ctx, {"mg_restrict", 5.0}, *lvl.nodes,
                      [](const double* q, op2::Inc<double> cq) {
                        for (int c = 0; c < kVars; ++c) cq.add(c, q[c]);
                      },
                      op2::arg_direct(*d.vars, op2::Acc::R),
                      op2::arg_inc(*cd.vars, *coarse_lvl.from_fine, 0));
        op2::par_loop(ctx, {"mg_normalise", 5.0}, *coarse_lvl.nodes,
                      [](double* q, const double* cnt) {
                        const double inv = 1.0 / (cnt[0] > 0 ? cnt[0] : 1.0);
                        for (int c = 0; c < kVars; ++c) q[c] *= inv;
                      },
                      op2::arg_direct(*cd.vars, op2::Acc::RW),
                      op2::arg_direct(*cd.restrict_count, op2::Acc::R));
      }
    }

    // --- up sweep: prolong coarse corrections back to fine -----------------
    for (int l = nlevels - 1; l > 0; --l) {
      auto& coarse_lvl = mesh.levels[static_cast<std::size_t>(l)];
      auto& cd = data[static_cast<std::size_t>(l)];
      auto& fd = data[static_cast<std::size_t>(l - 1)];
      op2::par_loop(ctx, {"mg_prolong", 15.0},
                    *mesh.levels[static_cast<std::size_t>(l - 1)].nodes,
                    [](double* q, const double* cq) {
                      for (int c = 0; c < kVars; ++c)
                        q[c] += 0.05 * (cq[c] - q[c]);
                    },
                    op2::arg_direct(*fd.vars, op2::Acc::RW),
                    op2::arg_indirect(*cd.vars, *coarse_lvl.from_fine, 0,
                                      op2::Acc::R));
    }

    // --- residual RMS on the fine level (monitoring reduction) -------------
    rms = 0.0;
    op2::par_loop(ctx, {"residual_rms", 12.0},
                  *mesh.levels.front().nodes,
                  [](const double* q, op2::Reducer<double> r) {
                    double s = 0.0;
                    for (int c = 0; c < kVars; ++c) s += q[c] * q[c];
                    r += s;
                  },
                  op2::arg_direct(*data.front().vars, op2::Acc::R),
                  op2::arg_gbl(rms, op2::RedOp::Sum));
  }

  rs.profiles = std::move(ctx.profiles);
  if (exec) {
    double mass = 0.0;
    auto& v = *data.front().vars;
    for (std::size_t n = 0; n < mesh.fine_nodes(); ++n) mass += v.at(n, 0);
    rs.checksum = mass;
  }
  return rs;
}

RunSummary run_mgcfd(const op2::Options& opt, const MgcfdConfig& cfg) {
  auto mesh = mgcfd::build_rotor_mesh(cfg.ni, cfg.nj, cfg.nk, cfg.levels);
  // SYCLPORT_RENUMBER (identity|mintarget|rcm|morton|hilbert) reorders
  // the fresh mesh before any dats exist; unset keeps the generator's
  // lexicographic numbering, the seed behaviour.
  mgcfd::renumber_mesh(
      mesh, op2::ordering_from_env().value_or(op2::Ordering::Identity));
  return run_mgcfd(opt, mesh, cfg.iters);
}

}  // namespace syclport::apps
