// Tests for the lazy loop-chain executor with overlapped temporal
// tiling (ops/loop_chain.hpp): tiled execution must be bit-identical to
// the sequential schedule for stencil chains of any depth, for every
// tile size; invalid chains must be rejected.

#include <gtest/gtest.h>

#include <cmath>
#include <optional>
#include <vector>

#include "ops/loop_chain.hpp"
#include "ops/ops.hpp"
#include "runtime/autotune/autotune.hpp"

namespace ops = syclport::ops;

namespace {

ops::Options serial() {
  ops::Options o;
  o.backend = ops::Backend::Serial;
  return o;
}

/// A 3-loop producer-consumer chain: b = lap(a); c = lap(b); d = lap(c).
/// Returns the interior sum of d.
double run_chain(std::size_t n, std::size_t tile) {
  ops::Context ctx(serial());
  ops::Block grid(ctx, "g", 2, {n, n, 1});
  ops::Dat<double> a(grid, "a", 1, 1), b(grid, "b", 1, 1), c(grid, "c", 1, 1),
      d(grid, "d", 1, 1);
  for (long i = -1; i <= static_cast<long>(n); ++i)
    for (long j = -1; j <= static_cast<long>(n); ++j)
      a.at(i, j) = std::sin(0.3 * i) * std::cos(0.4 * j);

  auto lap = [](ops::ACC<double> out, ops::ACC<double> in) {
    out(0, 0) = in(0, 0) + 0.2 * (in(1, 0) + in(-1, 0) + in(0, 1) + in(0, -1) -
                                  4.0 * in(0, 0));
  };
  ops::LoopChain chain(ctx, grid);
  chain.enqueue({"l1"}, lap, ops::arg(b, ops::S_PT, ops::Acc::W),
                ops::arg(a, ops::S2D_5PT, ops::Acc::R));
  chain.enqueue({"l2"}, lap, ops::arg(c, ops::S_PT, ops::Acc::W),
                ops::arg(b, ops::S2D_5PT, ops::Acc::R));
  chain.enqueue({"l3"}, lap, ops::arg(d, ops::S_PT, ops::Acc::W),
                ops::arg(c, ops::S2D_5PT, ops::Acc::R));
  chain.execute(tile);
  return d.interior_sum();
}

}  // namespace

TEST(LoopChain, UntiledMatchesDirectExecution) {
  // tile=0 (reference) must equal running par_loops directly.
  ops::Context ctx(serial());
  ops::Block grid(ctx, "g", 2, {16, 16, 1});
  ops::Dat<double> a(grid, "a", 1, 1), b(grid, "b", 1, 1);
  for (long i = 0; i < 16; ++i)
    for (long j = 0; j < 16; ++j) a.at(i, j) = i * 16.0 + j;

  ops::LoopChain chain(ctx, grid);
  chain.enqueue({"copy"},
                [](ops::ACC<double> out, ops::ACC<double> in) {
                  out(0, 0) = 2.0 * in(0, 0);
                },
                ops::arg(b, ops::S_PT, ops::Acc::W),
                ops::arg(a, ops::S_PT, ops::Acc::R));
  EXPECT_EQ(chain.size(), 1u);
  chain.execute(0);
  EXPECT_EQ(chain.size(), 0u);
  EXPECT_DOUBLE_EQ(b.interior_sum(), 2.0 * a.interior_sum());
}

TEST(LoopChain, TiledIdenticalToSequentialForAllTileSizes) {
  const double ref = run_chain(24, 0);
  for (std::size_t tile : {1u, 2u, 3u, 5u, 8u, 16u, 24u, 100u}) {
    EXPECT_DOUBLE_EQ(run_chain(24, tile), ref) << "tile=" << tile;
  }
}

TEST(LoopChain, DeepChainWithMixedRadii) {
  // Radius-2 then radius-1 then pointwise; expansion must accumulate.
  ops::Context ctx(serial());
  const std::size_t n = 20;
  ops::Block grid(ctx, "g", 2, {n, n, 1});
  ops::Dat<double> a(grid, "a", 1, 2), b(grid, "b", 1, 2), c(grid, "c", 1, 2),
      d(grid, "d", 1, 2);
  for (long i = -2; i <= static_cast<long>(n) + 1; ++i)
    for (long j = -2; j <= static_cast<long>(n) + 1; ++j)
      a.at(i, j) = 0.1 * i - 0.2 * j + 0.01 * i * j;

  auto build_and_run = [&](std::size_t tile) {
    b.fill(0.0);
    c.fill(0.0);
    d.fill(0.0);
    ops::LoopChain chain(ctx, grid);
    chain.enqueue({"r2"},
                  [](ops::ACC<double> out, ops::ACC<double> in) {
                    out(0, 0) = in(2, 0) + in(-2, 0) + in(0, 2) + in(0, -2);
                  },
                  ops::arg(b, ops::S_PT, ops::Acc::W),
                  ops::arg(a, ops::star(2, 2), ops::Acc::R));
    chain.enqueue({"r1"},
                  [](ops::ACC<double> out, ops::ACC<double> in) {
                    out(0, 0) = in(1, 0) - in(-1, 0) + 0.5 * in(0, 0);
                  },
                  ops::arg(c, ops::S_PT, ops::Acc::W),
                  ops::arg(b, ops::S2D_5PT, ops::Acc::R));
    chain.enqueue({"pt"},
                  [](ops::ACC<double> out, ops::ACC<double> in) {
                    out(0, 0) = in(0, 0) * in(0, 0);
                  },
                  ops::arg(d, ops::S_PT, ops::Acc::W),
                  ops::arg(c, ops::S_PT, ops::Acc::R));
    chain.execute(tile);
    return d.interior_sum();
  };
  const double ref = build_and_run(0);
  for (std::size_t tile : {2u, 4u, 7u, 13u}) {
    EXPECT_DOUBLE_EQ(build_and_run(tile), ref) << "tile=" << tile;
  }
}

TEST(LoopChain, TileLargerThanExtentRunsUntiled) {
  // tile >= extent must collapse to the single-sweep reference
  // schedule - no overlap expansion, bit-identical result.
  const double ref = run_chain(12, 0);
  EXPECT_DOUBLE_EQ(run_chain(12, 12), ref);    // exactly one tile
  EXPECT_DOUBLE_EQ(run_chain(12, 13), ref);    // first tile covers all
  EXPECT_DOUBLE_EQ(run_chain(12, 1000), ref);  // tile >> extent
}

TEST(LoopChain, RadiusZeroChainNeedsNoExpansion) {
  // A chain of pointwise loops has zero slow radius everywhere; every
  // tiling must match the reference exactly (expansion stays 0).
  ops::Context ctx(serial());
  const std::size_t n = 10;
  ops::Block grid(ctx, "g", 2, {n, n, 1});
  ops::Dat<double> a(grid, "a", 1, 1), b(grid, "b", 1, 1), c(grid, "c", 1, 1);
  for (long i = 0; i < static_cast<long>(n); ++i)
    for (long j = 0; j < static_cast<long>(n); ++j)
      a.at(i, j) = 1.0 + 0.5 * static_cast<double>(i * 10 + j);

  auto build_and_run = [&](std::size_t tile) {
    b.fill(0.0);
    c.fill(0.0);
    ops::LoopChain chain(ctx, grid);
    chain.enqueue({"sq"},
                  [](ops::ACC<double> out, ops::ACC<double> in) {
                    out(0, 0) = in(0, 0) * in(0, 0);
                  },
                  ops::arg(b, ops::S_PT, ops::Acc::W),
                  ops::arg(a, ops::S_PT, ops::Acc::R));
    chain.enqueue({"half"},
                  [](ops::ACC<double> out, ops::ACC<double> in) {
                    out(0, 0) = 0.5 * in(0, 0);
                  },
                  ops::arg(c, ops::S_PT, ops::Acc::W),
                  ops::arg(b, ops::S_PT, ops::Acc::R));
    chain.execute(tile);
    return c.interior_sum();
  };
  const double ref = build_and_run(0);
  for (std::size_t tile : {1u, 3u, 10u}) {
    EXPECT_DOUBLE_EQ(build_and_run(tile), ref) << "tile=" << tile;
  }
}

TEST(LoopChain, AutotunedExecutePicksTileAndStaysExact) {
  // execute() with no explicit tile hands the depth to the autotuner;
  // whatever it explores, every chain run must stay bit-identical to
  // the reference schedule.
  namespace at = syclport::rt::autotune;
  at::Autotuner::instance().reset(at::Autotuner::Mode::On, "fp-chain", "");

  const std::size_t n = 24;
  ops::Options o = serial();
  o.tune = true;
  ops::Context ctx(o);
  ops::Block grid(ctx, "g", 2, {n, n, 1});
  ops::Dat<double> a(grid, "a", 1, 1), b(grid, "b", 1, 1), c(grid, "c", 1, 1);
  for (long i = -1; i <= static_cast<long>(n); ++i)
    for (long j = -1; j <= static_cast<long>(n); ++j)
      a.at(i, j) = std::sin(0.2 * i) + std::cos(0.3 * j);

  auto lap = [](ops::ACC<double> out, ops::ACC<double> in) {
    out(0, 0) = 0.25 * (in(1, 0) + in(-1, 0) + in(0, 1) + in(0, -1));
  };
  auto run_once = [&](std::optional<std::size_t> tile) {
    b.fill(0.0);
    c.fill(0.0);
    ops::LoopChain chain(ctx, grid);
    chain.enqueue({"t1"}, lap, ops::arg(b, ops::S_PT, ops::Acc::W),
                  ops::arg(a, ops::S2D_5PT, ops::Acc::R));
    chain.enqueue({"t2"}, lap, ops::arg(c, ops::S_PT, ops::Acc::W),
                  ops::arg(b, ops::S2D_5PT, ops::Acc::R));
    chain.execute(tile);
    return c.interior_sum();
  };
  const double ref = run_once(0);
  for (int i = 0; i < 40; ++i)  // spans explore + exploit rounds
    EXPECT_DOUBLE_EQ(run_once(std::nullopt), ref) << "run " << i;

  at::Autotuner::instance().reset(at::Autotuner::Mode::Off, "", "");
}

TEST(LoopChain, RejectsInPlaceDats) {
  ops::Context ctx(serial());
  ops::Block grid(ctx, "g", 2, {8, 8, 1});
  ops::Dat<double> a(grid, "a", 1, 1);
  ops::LoopChain chain(ctx, grid);
  EXPECT_THROW(chain.enqueue({"rw"}, [](ops::ACC<double> x) { x(0, 0) += 1; },
                             ops::arg(a, ops::S_PT, ops::Acc::RW)),
               std::invalid_argument);
}

TEST(LoopChain, RejectsReductions) {
  ops::Context ctx(serial());
  ops::Block grid(ctx, "g", 2, {8, 8, 1});
  ops::Dat<double> a(grid, "a", 1, 1);
  double s = 0.0;
  ops::LoopChain chain(ctx, grid);
  EXPECT_THROW(
      chain.enqueue({"red"},
                    [](ops::ACC<double> x, ops::Reducer<double> r) {
                      r += x(0, 0);
                    },
                    ops::arg(a, ops::S_PT, ops::Acc::R),
                    ops::reduce(s, ops::RedOp::Sum)),
      std::invalid_argument);
}

TEST(LoopChain, RejectsWriteAfterReadAcrossChain) {
  // b = f(a); a = g(b) - tile overlap would re-read clobbered rows of a.
  ops::Context ctx(serial());
  ops::Block grid(ctx, "g", 2, {8, 8, 1});
  ops::Dat<double> a(grid, "a", 1, 1), b(grid, "b", 1, 1);
  ops::LoopChain chain(ctx, grid);
  chain.enqueue({"f"},
                [](ops::ACC<double> out, ops::ACC<double> in) {
                  out(0, 0) = in(0, 1);
                },
                ops::arg(b, ops::S_PT, ops::Acc::W),
                ops::arg(a, ops::S2D_5PT, ops::Acc::R));
  EXPECT_THROW(chain.enqueue({"g"},
                             [](ops::ACC<double> out, ops::ACC<double> in) {
                               out(0, 0) = in(0, -1);
                             },
                             ops::arg(a, ops::S_PT, ops::Acc::W),
                             ops::arg(b, ops::S2D_5PT, ops::Acc::R)),
               std::invalid_argument);
}
