#pragma once
/// \file autotune/autotune.hpp
/// Online per-kernel autotuner with a persistent, device-fingerprinted
/// tuning cache.
///
/// The paper's conclusion (§4.4) is that no single schedule /
/// work-group shape / overlap strategy is performance portable - the
/// winner differs per kernel and per platform. The runtime has carried
/// all of those knobs since PR 1/PR 2, but as static env vars. This
/// module searches them instead: each launch site is identified by a
/// stable key (Site), its first N launches explore a candidate set
/// seeded from hwmodel priors using successive halving (each surviving
/// candidate gets twice the measurements of the previous round; the
/// slower half is dropped between rounds), and the winner is locked in
/// and persisted keyed by a device fingerprint, so warm runs skip the
/// search entirely.
///
/// Modes (SYCLPORT_TUNE): `off` (default - every path behaves exactly
/// as before), `on` (tune, consult + update the cache file), `force`
/// (re-explore even with a valid cache, then overwrite it). The cache
/// path is SYCLPORT_TUNE_CACHE (default `.syclport_tune.json`).
/// ops/op2 `Options::tune` overrides the env per loop via ScopedTune.
///
/// Thread safety: all tuner state sits behind one mutex; decide() and
/// report() are called from app threads and scheduler workers alike
/// (exploration under the out-of-order queue is exercised by
/// tests/test_autotune.cpp and the TSan preset). The disabled path
/// costs one relaxed atomic load plus a thread-local check.

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "runtime/autotune/cache.hpp"
#include "runtime/autotune/config.hpp"
#include "runtime/thread_pool.hpp"

namespace syclport::rt::autotune {

class Autotuner {
 public:
  enum class Mode : std::uint8_t { Off, On, Force };

  /// The process-wide tuner: mode and cache path from the environment,
  /// fingerprint measured lazily on first tuned launch.
  static Autotuner& instance();

  /// Standalone instance for tests/benches (explicit fingerprint, no
  /// env coupling). An empty cache_path disables persistence.
  Autotuner(Mode mode, std::string fingerprint, std::string cache_path);

  /// True when launches should consult the tuner: the thread-local
  /// ScopedTune override if present, else mode != Off.
  [[nodiscard]] bool enabled() const noexcept;
  [[nodiscard]] Mode mode() const noexcept { return mode_; }

  /// What decide() handed out, fed back through report().
  struct Decision {
    Phase phase = Phase::None;
    Config config;
    std::uint32_t key_id = 0;
    std::uint32_t candidate = 0;
    /// Transfer provenance: the key (and, for a cross-machine donor,
    /// `@fingerprint`) of the already-tuned site that seeded this
    /// site's search pool; nullptr for an unseeded (full) search.
    /// Points at tuner-owned storage stable until reset().
    const char* seeded_from = nullptr;
  };

  /// Pick the configuration that should serve the next launch of
  /// `site`: the cached/locked-in winner (Exploiting) or the next
  /// search candidate (Exploring).
  [[nodiscard]] Decision decide(const Site& site);

  /// Report the measured wall seconds of a launch served by `d`.
  /// Exploiting reports refresh the winner's stats only; exploring
  /// reports drive the successive-halving race.
  void report(const Decision& d, double seconds);

  /// Winner for `site`, once the race finished (or a cache hit).
  [[nodiscard]] std::optional<Config> best(const Site& site) const;
  [[nodiscard]] bool converged(const Site& site) const;

  /// Total launches served by search candidates (not winners) since
  /// construction/reset - the bench's convergence-cost metric.
  [[nodiscard]] std::uint64_t explored_launches() const;

  /// Seed the candidate-ordering priors (hwmodel/tuning_priors.cpp).
  /// Affects kernels first seen after the call.
  void set_priors(const Priors& p);

  /// Cross-site transfer learning (SYCLPORT_TUNE_TRANSFER, default on):
  /// a cold site seeds its successive-halving pool from the nearest
  /// already-tuned site - same axis set, closest footprint class,
  /// closest platform by fingerprint distance - instead of racing the
  /// full cross product. Force mode always runs the full search.
  void set_transfer(bool on) noexcept { transfer_ = on; }
  [[nodiscard]] bool transfer() const noexcept { return transfer_; }

  /// Which site seeded `site`'s search ("" when it ran a full search or
  /// was served from the cache) - the provenance launch_log records.
  [[nodiscard]] std::string seeded_from(const Site& site) const;

  /// Persist every decided kernel now. Called automatically whenever a
  /// race finishes; exposed for tests.
  bool save() const;

  /// Drop all in-memory state, then adopt the given mode/fingerprint/
  /// cache path and reload the cache - a warm process start without
  /// restarting the process (bench/ablation_autotune, tests).
  void reset(Mode mode, std::string fingerprint, std::string cache_path);

  [[nodiscard]] const std::string& cache_path() const { return cache_path_; }
  /// Fingerprint in use (measures the device on first call if the
  /// instance was constructed with an empty one).
  [[nodiscard]] const std::string& fingerprint();

 private:
  struct Candidate {
    Config cfg;
    double best_s = 1e30;  ///< min measured seconds across all rounds
    int runs = 0;          ///< completed runs in the current round
    int assigned = 0;      ///< decisions handed out in the current round
  };

  struct KeyState {
    std::string key;
    std::vector<Candidate> all;  ///< stable storage; Decision::candidate
                                 ///< indexes it even across rounds
    std::vector<std::uint32_t> alive;  ///< indices into `all` still racing
    int runs_per_cand = 1;
    bool decided = false;
    bool from_cache = false;
    Config best;
    double best_s = 1e30;
    /// Transfer provenance: donor key (+ `@fp` for a foreign machine)
    /// whose winner seeded this site's pool; empty for a full search.
    std::string seeded_from;
  };

  void ensure_loaded_locked();
  void advance_round_locked(KeyState& st);
  bool save_locked() const;
  /// Nearest already-tuned donor for a cold `site` (nullopt when
  /// transfer is off or nothing compatible is tuned yet).
  struct Donor {
    Config config;
    std::string provenance;
  };
  [[nodiscard]] std::optional<Donor> find_donor_locked(
      const Site& site, const std::string& key) const;

  mutable std::mutex mu_;
  Mode mode_ = Mode::Off;
  std::string fingerprint_;  ///< empty = measure lazily
  std::string cache_path_;
  bool loaded_ = false;
  bool transfer_ = true;
  Priors priors_;
  std::vector<std::unique_ptr<KeyState>> states_;
  std::unordered_map<std::string, std::uint32_t> index_;
  std::vector<CacheData::Entry> cached_;  ///< from the file
  std::uint64_t explored_ = 0;
};

/// Thread-local enable override, the ops/op2 `Options::tune`
/// passthrough: true/false pins tuning on/off for launches issued from
/// this thread while the scope lives; nullopt leaves the env-derived
/// mode in charge. Nests; restores the previous override.
class ScopedTune {
 public:
  explicit ScopedTune(std::optional<bool> enable) noexcept;
  ~ScopedTune();
  ScopedTune(const ScopedTune&) = delete;
  ScopedTune& operator=(const ScopedTune&) = delete;

 private:
  std::optional<bool> saved_;
};

/// Phase/config of the innermost tuning scope active on this thread
/// (Phase::None / nullptr outside any). launch_log reads these to
/// record which configuration served each launch.
[[nodiscard]] Phase current_phase() noexcept;
[[nodiscard]] const Config* current_config() noexcept;
/// Transfer-seed provenance of the innermost tuning scope (nullptr when
/// the site's search was not seeded, or outside any scope).
[[nodiscard]] const char* current_seed() noexcept;

/// Field-wise log-space distance between two device fingerprints
/// (fingerprint.hpp format): 0 for identical machines, growing with
/// every doubling of cores / cache sizes / triad bandwidth that
/// separates the two. Unparseable fingerprints compare maximally far.
[[nodiscard]] double fingerprint_distance(std::string_view a,
                                          std::string_view b) noexcept;

/// The tuned replacement for rt::ScopedLaunchParams on every hot path.
///
/// Applies, for the lifetime of the scope, the launch parameters that
/// should serve this launch: explicit caller overrides always win
/// (and remove the schedule/grain axis from the search); otherwise,
/// when tuning is enabled and no tuning scope is already active on
/// this thread, the tuner's decision for the site. The destructor
/// reports the measured wall time of the scope back to the tuner
/// (skipped when unwinding an exception). When tuning is off this is
/// exactly a ScopedLaunchParams.
class TunedLaunchParams {
 public:
  explicit TunedLaunchParams(const Site& site,
                             std::optional<Schedule> schedule = std::nullopt,
                             std::optional<std::size_t> grain = std::nullopt);
  ~TunedLaunchParams();
  TunedLaunchParams(const TunedLaunchParams&) = delete;
  TunedLaunchParams& operator=(const TunedLaunchParams&) = delete;

  /// Phase::None when this scope ended up as a plain ScopedLaunchParams.
  [[nodiscard]] Phase phase() const noexcept { return decision_.phase; }
  /// The decided configuration (meaningful when phase() != None);
  /// callers read the axes they declared (local shape, overlap, tile).
  [[nodiscard]] const Config& config() const noexcept {
    return decision_.config;
  }

 private:
  LaunchParams saved_;
  Autotuner::Decision decision_;
  bool owns_scope_ = false;
  /// First-touch override state (kFirstTouch axis): previous value of
  /// the rt::mem thread-local, restored by the destructor.
  std::optional<bool> saved_ft_;
  bool ft_set_ = false;
  int uncaught_ = 0;
  std::chrono::steady_clock::time_point t0_;
};

}  // namespace syclport::rt::autotune
