#include "op2/layout.hpp"

#include <array>

#include "runtime/env.hpp"

namespace syclport::op2 {

Layout default_layout() {
  static const Layout cached = [] {
    static constexpr std::array<std::string_view, 3> kNames = {"aos", "soa",
                                                               "aosoa"};
    if (const auto idx = rt::env::get_choice("SYCLPORT_LAYOUT", kNames))
      return static_cast<Layout>(*idx);
    return Layout::AoS;
  }();
  return cached;
}

}  // namespace syclport::op2
