#pragma once
/// \file variant_model.hpp
/// Analytic priors for the kernel-variant axes and the platform
/// distance the transfer-learning autotuner ranks donors by.
///
/// Two jobs:
///   - predicted_variant_speedup: a roofline-style estimate of what a
///     (reg_tile, vec_width, unroll) shape buys on a platform - the
///     bandwidth term is untouched (variants cannot create DRAM
///     bandwidth), the issue/ILP term shrinks with the exposed
///     parallelism. The bench compares this prediction against the
///     delivered speedup per platform.
///   - platform_distance / synthetic_fingerprint: the modeled analogue
///     of the runtime's device fingerprint, so cache entries can be
///     attributed to calibrated platforms and ranked by how far apart
///     two machines are (the transfer seeder's dominant score term).

#include <string>

#include "hwmodel/platform.hpp"
#include "runtime/autotune/variant.hpp"

namespace syclport::hw {

/// Log-space distance between two calibrated platforms: doublings of
/// core count, STREAM bandwidth, LLC capacity and SIMD width separating
/// them, plus a flat penalty when one is a GPU and the other is not
/// (their winners never transfer well, paper §4.4).
[[nodiscard]] double platform_distance(const Platform& a, const Platform& b);

/// A device fingerprint string (fingerprint.hpp wire format) derived
/// from the calibrated descriptor instead of measured on the host:
/// `cores=..;l1d=..;l2=..;llc=..;triad_log2=..`. Lets tests and the
/// bench populate caches "as if written on" a modeled platform and lets
/// rt::autotune::fingerprint_distance rank those entries.
[[nodiscard]] std::string synthetic_fingerprint(const Platform& p);

/// Predicted speedup of running variant `vp` instead of the reference
/// loop for a streaming kernel moving `bytes_per_item` per iteration on
/// platform `p`. >= 1 means the model expects the shape to help; the
/// bandwidth-bound regime returns ~1 (nothing to win), issue-bound
/// kernels gain up to the exposed ILP.
[[nodiscard]] double predicted_variant_speedup(
    const Platform& p, const rt::autotune::VariantParams& vp,
    double bytes_per_item = 24.0);

}  // namespace syclport::hw
