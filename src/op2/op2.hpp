#pragma once
/// \file op2.hpp
/// Umbrella header for the OP2 unstructured-mesh DSL reproduction.

#include "op2/arg.hpp"        // IWYU pragma: export
#include "op2/checkpoint.hpp" // IWYU pragma: export
#include "op2/context.hpp"    // IWYU pragma: export
#include "op2/dat.hpp"       // IWYU pragma: export
#include "op2/locality.hpp"  // IWYU pragma: export
#include "op2/loop_chain.hpp" // IWYU pragma: export
#include "op2/par_loop.hpp"  // IWYU pragma: export
#include "op2/partition.hpp" // IWYU pragma: export
#include "op2/plan.hpp"      // IWYU pragma: export
#include "op2/renumber.hpp"  // IWYU pragma: export
#include "op2/set.hpp"       // IWYU pragma: export
