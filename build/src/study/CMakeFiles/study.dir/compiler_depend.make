# Empty compiler generated dependencies file for study.
# This may be replaced when dependencies are built.
