// Ablation: the rt::mem memory subsystem.
//
// BabelStream's CPU guidance and the paper's CPU efficiency analysis
// both hinge on memory placement: a bandwidth-bound sweep only reaches
// the platform's STREAM figure if its pages were committed by the cores
// that stream them (parallel first touch), are not being re-faulted
// every timestep (allocation pooling), and do not thrash the TLB (huge
// pages). This bench isolates the three levers the subsystem adds:
//
//   1. allocation churn  - per-"timestep" allocate/fill/free of
//                          temporaries, pooled vs straight to the OS
//                          (malloc churn); the pool must win;
//   2. first touch       - Triad bandwidth over arrays initialised with
//                          parallel first-touch vs a serial touch loop;
//                          parallel must be no worse, and wins big on
//                          multi-NUMA hosts;
//   3. huge pages        - Triad bandwidth with the 2 MiB path on/off
//                          (TLB pressure on multi-GiB working sets);
//   4. streaming fills   - fill bandwidth with non-temporal stores
//                          on/off (write-allocate RFO traffic, the
//                          store_traffic_factor the hwmodel exposes).
//
// Emits ablation_memory.csv next to the binary like the other
// ablations.

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <iostream>
#include <vector>

#include "core/report.hpp"
#include "core/timing.hpp"
#include "runtime/mem/mem.hpp"
#include "runtime/mem/stream.hpp"
#include "runtime/thread_pool.hpp"

using namespace syclport;
namespace mem = rt::mem;

namespace {

/// Median-of-reps wall seconds of `fn()`.
template <typename F>
double timed_median(int reps, F&& fn) {
  std::vector<double> t;
  t.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    WallTimer w;
    fn();
    t.push_back(w.seconds());
  }
  std::sort(t.begin(), t.end());
  return t[t.size() / 2];
}

/// Set a config variant, flushing the pool so measurements start clean.
void apply(bool pool, bool hugepages, bool first_touch, bool stream_stores) {
  mem::Config c;
  c.pool = pool;
  c.hugepages = hugepages;
  c.first_touch = first_touch;
  c.stream_stores = stream_stores;
  mem::set_config_for_testing(c);
}

// -- 1. allocation churn ----------------------------------------------

/// One simulated timestep: allocate a set of temporaries, touch them,
/// free them - the lifecycle of per-sweep scratch in the OPS apps.
double churn_us_per_step(bool pooled) {
  apply(pooled, true, true, true);
  constexpr std::size_t kBytes = 1u << 20;  // 1 MiB temporaries
  constexpr int kArrays = 4;
  auto step = [&] {
    void* p[kArrays];
    for (auto& q : p) {
      q = mem::alloc(kBytes, mem::Init::Touch);
      std::memset(q, 1, 4096);  // use the block so the alloc is not dead
    }
    for (auto* q : p) mem::dealloc(q);
  };
  for (int i = 0; i < 32; ++i) step();  // warm pool + page cache
  const int batch = 512;
  const double s = timed_median(5, [&] {
    for (int i = 0; i < batch; ++i) step();
  });
  mem::trim();
  return s / batch * 1e6;
}

// -- 2/3. Triad bandwidth under placement variants ---------------------

double triad_gbs(std::size_t n, double* a, const double* b, const double* c) {
  rt::ThreadPool& pool = rt::ThreadPool::global();
  auto sweep = [&] {
    rt::ScopedLaunchParams scope(rt::Schedule::Static, std::nullopt);
    pool.parallel_for(n, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) a[i] = b[i] + 0.4 * c[i];
    });
  };
  sweep();  // warm up
  const double s = timed_median(9, sweep);
  return 3.0 * static_cast<double>(n) * sizeof(double) / s / 1e9;
}

/// Triad over arrays placed by the subsystem (parallel first touch when
/// `parallel_touch`, serial page-touch loop otherwise) with the given
/// huge-page setting.
double placed_triad_gbs(std::size_t n, bool parallel_touch, bool hugepages) {
  apply(false, hugepages, parallel_touch, true);  // pool off: fresh pages
  const std::size_t bytes = n * sizeof(double);
  auto* a = static_cast<double*>(mem::alloc(bytes, mem::Init::None));
  auto* b = static_cast<double*>(mem::alloc(bytes, mem::Init::None));
  auto* c = static_cast<double*>(mem::alloc(bytes, mem::Init::None));
  if (parallel_touch) {
    // Parallel placement: the same static worker-to-range map the
    // triad sweep uses streams the initial values in.
    mem::parallel_fill(a, n, 0.0);
    mem::parallel_fill(b, n, 1.0);
    mem::parallel_fill(c, n, 2.0);
  } else {
    // Serial touch: every page lands on the calling thread's domain.
    std::fill_n(a, n, 0.0);
    std::fill_n(b, n, 1.0);
    std::fill_n(c, n, 2.0);
  }
  const double gbs = triad_gbs(n, a, b, c);
  mem::dealloc(a);
  mem::dealloc(b);
  mem::dealloc(c);
  mem::trim();
  return gbs;
}

// -- 4. streaming fills -----------------------------------------------

double fill_gbs(std::size_t n, bool stream_stores) {
  apply(false, true, true, stream_stores);
  auto* a = static_cast<double*>(mem::alloc(n * sizeof(double)));
  auto fill = [&] { mem::parallel_fill(a, n, 3.0); };
  fill();  // warm up
  const double s = timed_median(9, fill);
  mem::dealloc(a);
  mem::trim();
  return static_cast<double>(n) * sizeof(double) / s / 1e9;
}

}  // namespace

int main() {
  rt::ThreadPool& pool = rt::ThreadPool::global();
  std::cout << "=== Ablation: memory subsystem (pool / first touch / huge "
               "pages / streaming stores), "
            << pool.size() << " workers ===\n\n";

  report::Table t({"experiment", "variant", "metric", "value"});

  std::cout << "-- allocation churn (4 x 1 MiB temporaries per step) --\n";
  const double churn_os = churn_us_per_step(false);
  const double churn_pool = churn_us_per_step(true);
  std::cout << "  malloc churn (pool off): " << report::fmt(churn_os, 2)
            << " us/step\n  pooled           (on): "
            << report::fmt(churn_pool, 2) << " us/step  ("
            << report::fmt(churn_os / churn_pool, 2) << "x)\n";
  t.add_row({"alloc_churn", "pool_off", "us_per_step",
             report::fmt(churn_os, 3)});
  t.add_row({"alloc_churn", "pool_on", "us_per_step",
             report::fmt(churn_pool, 3)});

  const std::size_t n = 1u << 24;  // 128 MiB per array, 384 MiB triad set
  std::cout << "\n-- triad after placement (" << (3 * n * sizeof(double) >> 20)
            << " MiB working set) --\n";
  const double ft_serial = placed_triad_gbs(n, false, true);
  const double ft_parallel = placed_triad_gbs(n, true, true);
  std::cout << "  serial touch  : " << report::fmt(ft_serial, 2)
            << " GB/s\n  parallel touch: " << report::fmt(ft_parallel, 2)
            << " GB/s\n";
  t.add_row({"first_touch", "serial", "GB_per_s", report::fmt(ft_serial, 3)});
  t.add_row({"first_touch", "parallel", "GB_per_s",
             report::fmt(ft_parallel, 3)});

  std::cout << "\n-- huge pages (parallel touch, 2 MiB path on/off) --\n";
  const double hp_off = placed_triad_gbs(n, true, false);
  const double hp_on = placed_triad_gbs(n, true, true);
  std::cout << "  4 KiB pages: " << report::fmt(hp_off, 2)
            << " GB/s\n  2 MiB path : " << report::fmt(hp_on, 2) << " GB/s\n";
  t.add_row({"hugepages", "off", "GB_per_s", report::fmt(hp_off, 3)});
  t.add_row({"hugepages", "on", "GB_per_s", report::fmt(hp_on, 3)});

  std::cout << "\n-- fill bandwidth (non-temporal stores on/off) --\n";
  const double nt_off = fill_gbs(n, false);
  const double nt_on = fill_gbs(n, true);
  std::cout << "  plain stores: " << report::fmt(nt_off, 2)
            << " GB/s\n  NT stores   : " << report::fmt(nt_on, 2)
            << " GB/s\n";
  t.add_row({"stream_stores", "off", "GB_per_s", report::fmt(nt_off, 3)});
  t.add_row({"stream_stores", "on", "GB_per_s", report::fmt(nt_on, 3)});

  std::cout << "\n-- subsystem telemetry after the run --\n";
  const auto s = mem::stats();
  std::cout << "  alloc calls " << s.alloc_calls << ", pool hit rate "
            << report::fmt(100.0 * s.pool_hit_rate(), 1)
            << "%, huge-page coverage "
            << report::fmt(100.0 * s.hugepage_coverage(), 1)
            << "%, first-touched " << (s.bytes_first_touched >> 20)
            << " MiB\n";
  t.add_row({"telemetry", "-", "pool_hit_rate_pct",
             report::fmt(100.0 * s.pool_hit_rate(), 2)});
  t.add_row({"telemetry", "-", "hugepage_coverage_pct",
             report::fmt(100.0 * s.hugepage_coverage(), 2)});

  std::cout << "\n";
  t.render(std::cout);
  if (t.save_csv("ablation_memory.csv"))
    std::cout << "\nwrote ablation_memory.csv\n";
  std::cout << "(pooled churn must beat malloc churn; parallel first touch "
               "must be no worse than serial touch - the gap scales with "
               "NUMA domain count; NT fills avoid the write-allocate read "
               "so they approach the one-way store bandwidth.)\n";
  // Leave the process with the environment-derived defaults.
  mem::set_config_for_testing(mem::Config{});
  return 0;
}
