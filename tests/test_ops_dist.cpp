// Tests for the distributed OPS backend (src/ops/dist.hpp): rank-local
// execution with real halo exchanges must reproduce the shared-memory
// OPS results exactly, for 2D and 3D, several rank counts and stencil
// radii, including global reductions.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <mutex>

#include "ops/dist.hpp"
#include "ops/ops.hpp"

namespace ops = syclport::ops;
namespace dist = syclport::ops::dist;
namespace mpi = syclport::mpi;

namespace {

double init_value(std::size_t i, std::size_t j, std::size_t k) {
  return std::sin(0.37 * static_cast<double>(i)) +
         std::cos(0.23 * static_cast<double>(j)) +
         0.11 * static_cast<double>(k);
}

/// Shared-memory OPS reference: `iters` Jacobi sweeps over an n x n
/// grid (halo cells are zero, exactly like the distributed physical
/// ghosts), returning the interior sum.
double shared_jacobi_2d(std::size_t n, int iters) {
  ops::Context ctx{ops::Options{}};
  ops::Block grid(ctx, "g", 2, {n, n, 1});
  ops::Dat<double> a(grid, "a", 1, 1), b(grid, "b", 1, 1);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      a.at(static_cast<long>(i), static_cast<long>(j)) = init_value(i, j, 0);
  for (int it = 0; it < iters; ++it) {
    ops::par_loop(ctx, {"jacobi"}, grid, ops::Range::all(grid),
                  [](ops::ACC<double> out, ops::ACC<double> in) {
                    out(0, 0) = 0.25 * (in(1, 0) + in(-1, 0) + in(0, 1) +
                                        in(0, -1));
                  },
                  ops::arg(b, ops::S_PT, ops::Acc::W),
                  ops::arg(a, ops::S2D_5PT, ops::Acc::R));
    std::swap(a, b);
  }
  return a.interior_sum();
}

double dist_jacobi_2d(std::size_t n, int iters, int nranks) {
  double result = 0.0;
  std::mutex mu;
  mpi::run(nranks, [&](mpi::Comm& comm) {
    dist::DistContext ctx(comm, 2);
    dist::DistDat<double> a(ctx, {n, n, 1}, 1), b(ctx, {n, n, 1}, 1);
    a.init([](std::size_t i, std::size_t j, std::size_t k) {
      return init_value(i, j, k);
    });
    for (int it = 0; it < iters; ++it) {
      dist::par_loop(ctx,
                     [](ops::ACC<double> out, ops::ACC<double> in) {
                       out(0, 0) = 0.25 * (in(1, 0) + in(-1, 0) + in(0, 1) +
                                           in(0, -1));
                     },
                     dist::arg(b, ops::S_PT, ops::Acc::W),
                     dist::arg(a, ops::S2D_5PT, ops::Acc::R));
      std::swap(a.field().data, b.field().data);
    }
    const double sum = a.global_sum();
    std::lock_guard lock(mu);
    result = sum;
  });
  return result;
}

}  // namespace

TEST(DistOps, MatchesSharedMemoryJacobi2D) {
  const double ref = shared_jacobi_2d(24, 8);
  for (int nranks : {1, 2, 4, 6}) {
    EXPECT_NEAR(dist_jacobi_2d(24, 8, nranks), ref, 1e-11)
        << nranks << " ranks";
  }
}

TEST(DistOps, AwkwardGridSizes) {
  // Non-divisible extents exercise the block-distribution remainders.
  const double ref = shared_jacobi_2d(23, 5);
  EXPECT_NEAR(dist_jacobi_2d(23, 5, 4), ref, 1e-11);
  EXPECT_NEAR(dist_jacobi_2d(23, 5, 5), ref, 1e-11);
}

TEST(DistOps, ThreeDimensionalStencil) {
  const std::size_t n = 10;
  // Shared reference.
  ops::Context sctx{ops::Options{}};
  ops::Block grid(sctx, "g", 3, {n, n, n});
  ops::Dat<double> sa(grid, "a", 1, 1), sb(grid, "b", 1, 1);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      for (std::size_t k = 0; k < n; ++k)
        sa.at(static_cast<long>(i), static_cast<long>(j),
              static_cast<long>(k)) = init_value(i, j, k);
  ops::par_loop(sctx, {"avg"}, grid, ops::Range::all(grid),
                [](ops::ACC<double> out, ops::ACC<double> in) {
                  out(0, 0, 0) = in(1, 0, 0) + in(-1, 0, 0) + in(0, 1, 0) +
                                 in(0, -1, 0) + in(0, 0, 1) + in(0, 0, -1);
                },
                ops::arg(sb, ops::S_PT, ops::Acc::W),
                ops::arg(sa, ops::S3D_7PT, ops::Acc::R));
  const double ref = sb.interior_sum();

  double got = 0.0;
  std::mutex mu;
  mpi::run(8, [&](mpi::Comm& comm) {
    dist::DistContext ctx(comm, 3);
    dist::DistDat<double> a(ctx, {n, n, n}, 1), b(ctx, {n, n, n}, 1);
    a.init(init_value);
    dist::par_loop(ctx,
                   [](ops::ACC<double> out, ops::ACC<double> in) {
                     out(0, 0, 0) = in(1, 0, 0) + in(-1, 0, 0) + in(0, 1, 0) +
                                    in(0, -1, 0) + in(0, 0, 1) + in(0, 0, -1);
                   },
                   dist::arg(b, ops::S_PT, ops::Acc::W),
                   dist::arg(a, ops::S3D_7PT, ops::Acc::R));
    const double sum = b.global_sum();
    std::lock_guard lock(mu);
    got = sum;
  });
  EXPECT_NEAR(got, ref, 1e-11);
}

TEST(DistOps, Radius2StencilUsesDeepHalo) {
  const std::size_t n = 16;
  double got = -1.0;
  std::mutex mu;
  mpi::run(4, [&](mpi::Comm& comm) {
    dist::DistContext ctx(comm, 2);
    dist::DistDat<double> a(ctx, {n, n, 1}, 2), b(ctx, {n, n, 1}, 2);
    a.init([](std::size_t i, std::size_t j, std::size_t) {
      return static_cast<double>(i + j);
    });
    dist::par_loop(ctx,
                   [](ops::ACC<double> out, ops::ACC<double> in) {
                     out(0, 0) = in(2, 0) + in(-2, 0);
                   },
                   dist::arg(b, ops::S_PT, ops::Acc::W),
                   dist::arg(a, ops::Stencil{2, 0, 0, 2}, ops::Acc::R));
    // Interior point away from physical boundaries: (i+j+2)+(i+j-2)=2(i+j).
    double local_err = 0.0;
    b.for_owned([&](std::size_t gi, std::size_t gj, std::size_t,
                    std::ptrdiff_t li, std::ptrdiff_t lj, std::ptrdiff_t lk) {
      if (gj < 2 || gj >= n - 2) return;  // touched physical ghosts
      local_err += std::fabs(b.field().at(li, lj, lk) -
                             2.0 * static_cast<double>(gi + gj));
    });
    const double err = comm.allreduce(local_err, mpi::Op::Sum);
    std::lock_guard lock(mu);
    got = err;
  });
  EXPECT_NEAR(got, 0.0, 1e-12);
}

TEST(DistOps, GlobalReductionAcrossRanks) {
  const std::size_t n = 20;
  double sum = 0.0, mx = 0.0;
  std::mutex mu;
  mpi::run(4, [&](mpi::Comm& comm) {
    dist::DistContext ctx(comm, 2);
    dist::DistDat<double> a(ctx, {n, n, 1}, 1);
    a.init([](std::size_t i, std::size_t j, std::size_t) {
      return static_cast<double>(i * 20 + j);
    });
    double s = 0.0, m = -1e300;
    dist::par_loop(ctx,
                   [](ops::ACC<double> v, ops::Reducer<double> rs,
                      ops::Reducer<double> rm) {
                     rs += v(0, 0);
                     rm.combine(v(0, 0));
                   },
                   dist::arg(a, ops::S_PT, ops::Acc::R),
                   dist::reduce(s, ops::RedOp::Sum),
                   dist::reduce(m, ops::RedOp::Max));
    std::lock_guard lock(mu);
    sum = s;
    mx = m;
  });
  EXPECT_DOUBLE_EQ(sum, 399.0 * 400.0 / 2.0);
  EXPECT_DOUBLE_EQ(mx, 399.0);
}

TEST(DistOps, StencilExceedingHaloRejected) {
  mpi::run(2, [&](mpi::Comm& comm) {
    dist::DistContext ctx(comm, 2);
    dist::DistDat<double> a(ctx, {8, 8, 1}, 1);
    EXPECT_THROW((void)dist::arg(a, ops::star(2, 2), ops::Acc::R),
                 std::invalid_argument);
  });
}

TEST(DistOps, LoopWithoutDatRejected) {
  mpi::run(1, [&](mpi::Comm& comm) {
    dist::DistContext ctx(comm, 2);
    double s = 0.0;
    EXPECT_THROW(dist::par_loop(ctx, [](ops::Reducer<double>) {},
                                dist::reduce(s, ops::RedOp::Sum)),
                 std::invalid_argument);
  });
}

// ---------------------------------------------------------------------
// Halo/compute overlap (dist::par_loop_overlap): interior sweeps run as
// asynchronous queue commands while the halo receives drain; results
// must match the blocking path point-for-point.

namespace {

/// Pin the overlap strategy (queue handoff vs inline ordering) for the
/// duration of a test body, so both paths are covered regardless of the
/// host's core count.
struct ScopedOverlapMode {
  explicit ScopedOverlapMode(const char* mode) {
    ::setenv("SYCLPORT_OVERLAP", mode, 1);
  }
  ~ScopedOverlapMode() { ::unsetenv("SYCLPORT_OVERLAP"); }
};

constexpr const char* kOverlapModes[] = {"queue", "inline"};

double dist_jacobi_2d_overlap(std::size_t n, int iters, int nranks) {
  double result = 0.0;
  std::mutex mu;
  mpi::run(nranks, [&](mpi::Comm& comm) {
    dist::DistContext ctx(comm, 2);
    dist::DistDat<double> a(ctx, {n, n, 1}, 1), b(ctx, {n, n, 1}, 1);
    a.init([](std::size_t i, std::size_t j, std::size_t k) {
      return init_value(i, j, k);
    });
    for (int it = 0; it < iters; ++it) {
      dist::par_loop_overlap(
          ctx,
          [](ops::ACC<double> out, ops::ACC<double> in) {
            out(0, 0) =
                0.25 * (in(1, 0) + in(-1, 0) + in(0, 1) + in(0, -1));
          },
          dist::arg(b, ops::S_PT, ops::Acc::W),
          dist::arg(a, ops::S2D_5PT, ops::Acc::R));
      std::swap(a.field().data, b.field().data);
    }
    const double sum = a.global_sum();
    std::lock_guard lock(mu);
    result = sum;
  });
  return result;
}

}  // namespace

TEST(DistOpsOverlap, MatchesBlockingJacobi2D) {
  const double ref = shared_jacobi_2d(24, 8);
  for (const char* mode : kOverlapModes) {
    ScopedOverlapMode scoped(mode);
    for (int nranks : {1, 2, 4, 6}) {
      EXPECT_NEAR(dist_jacobi_2d_overlap(24, 8, nranks), ref, 1e-11)
          << nranks << " ranks, " << mode;
    }
  }
}

TEST(DistOpsOverlap, AwkwardGridSizes) {
  const double ref = shared_jacobi_2d(23, 5);
  for (const char* mode : kOverlapModes) {
    ScopedOverlapMode scoped(mode);
    EXPECT_NEAR(dist_jacobi_2d_overlap(23, 5, 4), ref, 1e-11) << mode;
    EXPECT_NEAR(dist_jacobi_2d_overlap(23, 5, 5), ref, 1e-11) << mode;
  }
}

TEST(DistOpsOverlap, PointForPointIdenticalToBlocking) {
  // Not just the sum: every owned point must match the blocking sweep
  // bit-for-bit (same inputs per point, no reduction reordering).
  const std::size_t n = 20;
  for (const char* mode : kOverlapModes) {
  ScopedOverlapMode scoped(mode);
  double max_err = 1.0;
  std::mutex mu;
  mpi::run(4, [&](mpi::Comm& comm) {
    dist::DistContext ctx(comm, 2);
    dist::DistDat<double> a(ctx, {n, n, 1}, 1);
    dist::DistDat<double> blocking(ctx, {n, n, 1}, 1);
    dist::DistDat<double> overlapped(ctx, {n, n, 1}, 1);
    a.init(init_value);
    auto kernel = [](ops::ACC<double> out, ops::ACC<double> in) {
      out(0, 0) = in(1, 0) + 2.0 * in(-1, 0) + 3.0 * in(0, 1) +
                  4.0 * in(0, -1) + 5.0 * in(0, 0);
    };
    dist::par_loop(ctx, kernel,
                   dist::arg(blocking, ops::S_PT, ops::Acc::W),
                   dist::arg(a, ops::S2D_5PT, ops::Acc::R));
    dist::par_loop_overlap(ctx, kernel,
                           dist::arg(overlapped, ops::S_PT, ops::Acc::W),
                           dist::arg(a, ops::S2D_5PT, ops::Acc::R));
    double err = 0.0;
    blocking.for_owned([&](std::size_t, std::size_t, std::size_t,
                           std::ptrdiff_t li, std::ptrdiff_t lj,
                           std::ptrdiff_t lk) {
      err = std::max(err, std::fabs(blocking.field().at(li, lj, lk) -
                                    overlapped.field().at(li, lj, lk)));
    });
    const double gerr = comm.allreduce(err, mpi::Op::Max);
    std::lock_guard lock(mu);
    max_err = gerr;
  });
  EXPECT_EQ(max_err, 0.0) << mode;
  }
}

TEST(DistOpsOverlap, ThreeDimensionalStencil) {
  const std::size_t n = 10;
  ops::Context sctx{ops::Options{}};
  ops::Block grid(sctx, "g", 3, {n, n, n});
  ops::Dat<double> sa(grid, "a", 1, 1), sb(grid, "b", 1, 1);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      for (std::size_t k = 0; k < n; ++k)
        sa.at(static_cast<long>(i), static_cast<long>(j),
              static_cast<long>(k)) = init_value(i, j, k);
  ops::par_loop(sctx, {"avg"}, grid, ops::Range::all(grid),
                [](ops::ACC<double> out, ops::ACC<double> in) {
                  out(0, 0, 0) = in(1, 0, 0) + in(-1, 0, 0) + in(0, 1, 0) +
                                 in(0, -1, 0) + in(0, 0, 1) + in(0, 0, -1);
                },
                ops::arg(sb, ops::S_PT, ops::Acc::W),
                ops::arg(sa, ops::S3D_7PT, ops::Acc::R));
  const double ref = sb.interior_sum();

  for (const char* mode : kOverlapModes) {
  ScopedOverlapMode scoped(mode);
  double got = 0.0;
  std::mutex mu;
  mpi::run(8, [&](mpi::Comm& comm) {
    dist::DistContext ctx(comm, 3);
    dist::DistDat<double> a(ctx, {n, n, n}, 1), b(ctx, {n, n, n}, 1);
    a.init(init_value);
    dist::par_loop_overlap(
        ctx,
        [](ops::ACC<double> out, ops::ACC<double> in) {
          out(0, 0, 0) = in(1, 0, 0) + in(-1, 0, 0) + in(0, 1, 0) +
                         in(0, -1, 0) + in(0, 0, 1) + in(0, 0, -1);
        },
        dist::arg(b, ops::S_PT, ops::Acc::W),
        dist::arg(a, ops::S3D_7PT, ops::Acc::R));
    const double sum = b.global_sum();
    std::lock_guard lock(mu);
    got = sum;
  });
  EXPECT_NEAR(got, ref, 1e-11) << mode;
  }
}

TEST(DistOpsOverlap, ReductionRidesAlong) {
  const std::size_t n = 16;
  for (const char* mode : kOverlapModes) {
  ScopedOverlapMode scoped(mode);
  double sum = 0.0;
  std::mutex mu;
  mpi::run(4, [&](mpi::Comm& comm) {
    dist::DistContext ctx(comm, 2);
    dist::DistDat<double> a(ctx, {n, n, 1}, 1), b(ctx, {n, n, 1}, 1);
    a.init([](std::size_t i, std::size_t j, std::size_t) {
      return static_cast<double>(i) - 0.5 * static_cast<double>(j);
    });
    double s = 0.0;
    dist::par_loop_overlap(
        ctx,
        [](ops::ACC<double> out, ops::ACC<double> in,
           ops::Reducer<double> rs) {
          out(0, 0) = 0.5 * (in(1, 0) + in(-1, 0));
          rs += out(0, 0);
        },
        dist::arg(b, ops::S_PT, ops::Acc::W),
        dist::arg(a, ops::S2D_5PT, ops::Acc::R),
        dist::reduce(s, ops::RedOp::Sum));
    std::lock_guard lock(mu);
    sum = s;
  });
  // Blocking reference on a single rank.
  double ref = 0.0;
  mpi::run(1, [&](mpi::Comm& comm) {
    dist::DistContext ctx(comm, 2);
    dist::DistDat<double> a(ctx, {n, n, 1}, 1), b(ctx, {n, n, 1}, 1);
    a.init([](std::size_t i, std::size_t j, std::size_t) {
      return static_cast<double>(i) - 0.5 * static_cast<double>(j);
    });
    double s = 0.0;
    dist::par_loop(ctx,
                   [](ops::ACC<double> out, ops::ACC<double> in,
                      ops::Reducer<double> rs) {
                     out(0, 0) = 0.5 * (in(1, 0) + in(-1, 0));
                     rs += out(0, 0);
                   },
                   dist::arg(b, ops::S_PT, ops::Acc::W),
                   dist::arg(a, ops::S2D_5PT, ops::Acc::R),
                   dist::reduce(s, ops::RedOp::Sum));
    std::lock_guard lock(mu);
    ref = s;
  });
  EXPECT_NEAR(sum, ref, 1e-10) << mode;
  }
}
